(* Fleet autoscaling end to end: a load spike breaches the p99 SLO,
   the controller scales out with warm clones until the SLO recovers,
   and the post-spike drain scales the fleet back in.

     dune exec examples/fleet_autoscale.exe *)

let show label (tr : Fleet.Controller.tenant_result) =
  Printf.printf "%-28s %s\n" label (Format.asprintf "%a" Fleet.Controller.pp_tenant_result tr)

let () =
  Printf.printf "== SLO-driven scale-out under a rate spike ==\n\n";
  Printf.printf
    "Each replica is capped at 10%% of a CPU (cgroup cpu.max semantics), so\n\
     capacity is budget-rate: a tenant offered more than its replicas'\n\
     aggregate budget breaches the windowed p99, and every scale-out is a\n\
     warm clone from the template pool, re-verified before taking traffic.\n\n";
  let autoscaler =
    {
      Fleet.Autoscaler.default_config with
      Fleet.Autoscaler.slo_p99_us = 400.0;
      window = 150;
      min_replicas = 1;
      max_replicas = 6;
    }
  in
  let spike =
    {
      Fleet.Controller.default_tenant with
      Fleet.Controller.name = "spike";
      rate_rps = 60_000.0;
      requests = 4_000;
    }
  in
  let cfg =
    { Fleet.Controller.default_config with Fleet.Controller.tenants = [ spike ]; autoscaler }
  in
  let r = Fleet.Controller.run cfg in
  let tr = List.hd r.Fleet.Controller.tenants in
  show "spike (60k rps):" tr;
  let hits, misses =
    List.partition (fun s -> s.Fleet.Controller.s_pool_hit) tr.Fleet.Controller.tr_spawns
  in
  let mean l =
    match l with
    | [] -> 0.0
    | _ ->
        List.fold_left (fun a s -> a +. s.Fleet.Controller.s_ns) 0.0 l /. float_of_int (List.length l)
  in
  Printf.printf "\n  spawns: %d pool-hit (mean %.0f ns) / %d pool-miss (mean %.0f ns)\n"
    (List.length hits) (mean hits) (List.length misses) (mean misses);
  Printf.printf "  scale-outs=%d breaches=%d verify-failures=%d throttle-events=%d\n\n"
    tr.Fleet.Controller.tr_scale_outs tr.Fleet.Controller.tr_breaches
    tr.Fleet.Controller.tr_verify_failures tr.Fleet.Controller.tr_throttle_events;

  Printf.printf "== Scale-in after the spike drains ==\n\n";
  Printf.printf
    "The same tenant at a gentle rate: calm windows under the SLO walk the\n\
     fleet back down to min_replicas; each scaled-in replica is destroyed\n\
     (CoW references dropped, segments reclaimed, frames freed).\n\n";
  let drain =
    {
      Fleet.Controller.default_tenant with
      Fleet.Controller.name = "drain";
      rate_rps = 4_000.0;
      requests = 2_000;
    }
  in
  let drain_autoscaler =
    { autoscaler with Fleet.Autoscaler.idle_windows = 2; scale_in_factor = 0.5 }
  in
  (* Bootstrap the fleet at 3 replicas; the calm stream lets the
     autoscaler pull it back toward min_replicas = 1. *)
  let r =
    Fleet.Controller.run
      {
        cfg with
        Fleet.Controller.tenants = [ drain ];
        autoscaler = drain_autoscaler;
        initial_replicas = 3;
      }
  in
  show "drain (4k rps):" (List.hd r.Fleet.Controller.tenants);

  Printf.printf "\n== Per-tenant isolation: admission control sheds the abuser ==\n\n";
  let polite =
    {
      Fleet.Controller.default_tenant with
      Fleet.Controller.name = "polite";
      rate_rps = 10_000.0;
      requests = 1_500;
    }
  in
  let greedy =
    {
      Fleet.Controller.default_tenant with
      Fleet.Controller.name = "greedy";
      rate_rps = 50_000.0;
      requests = 3_000;
      admission_rps = 15_000.0;
      max_inflight = 64;
    }
  in
  let r =
    Fleet.Controller.run
      { cfg with Fleet.Controller.tenants = [ polite; greedy ] }
  in
  List.iter (fun tr -> show (tr.Fleet.Controller.tr_name ^ ":") tr) r.Fleet.Controller.tenants
