(* Security walkthrough: a compromised guest kernel tries every escape
   and DoS avenue from Sections 3.4/4/6, against live simulated state.

     dune exec examples/security_attacks.exe *)

let () =
  Analysis.checked ~label:"security_attacks" @@ fun () ->
  Printf.printf "CKI threat model: the guest kernel is compromised and runs in kernel\n";
  Printf.printf "mode with PKRS = PKRS_GUEST.  Each attack below executes for real\n";
  Printf.printf "against the simulated CPU, page tables and KSM state.\n\n";
  let c = Cki.Container.create_standalone ~mem_mib:256 () in
  let results = Cki.Attacks.all c in
  List.iter
    (fun (name, outcome) ->
      match outcome with
      | Cki.Attacks.Blocked mech -> Printf.printf "  [blocked] %-28s -- %s\n" name mech
      | Cki.Attacks.Succeeded -> Printf.printf "  [ESCAPE!] %-28s\n" name)
    results;
  let blocked = List.length (List.filter (fun (_, o) -> Cki.Attacks.is_blocked o) results) in
  Printf.printf "\n%d/%d attacks blocked.\n\n" blocked (List.length results);

  (* Show the defence-in-depth pieces individually. *)
  let cpu = Cki.Container.cpu c 0 in
  Cki.Container.enter_guest_kernel cpu;
  Printf.printf "defences in play:\n";
  Printf.printf "  - PKRS while guest runs: %#x (KSM no-access, PTPs read-only)\n" cpu.Hw.Cpu.pkrs;
  Printf.printf "  - blocked instructions trap: %s\n"
    (match Hw.Cpu.exec_priv cpu (Hw.Priv.Wrmsr 0x830 (* ICR: send IPI *)) with
    | Error (Hw.Cpu.Blocked_instruction _) -> "wrmsr(ICR) -> #GP to host"
    | _ -> "UNEXPECTED");
  let gates = Cki.Container.gates c in
  Printf.printf "  - forged interrupts caught so far: %d\n" (Cki.Gates.forged_blocked gates);
  Printf.printf "  - PKRS gate tampers caught so far: %d\n" (Cki.Gates.tampers_blocked gates);
  Printf.printf "  - IDT locked: %b\n" (Hw.Idt.is_locked (Cki.Ksm.idt (Cki.Container.ksm c)));

  (* DoS containment: a guest kernel stuck with interrupts "disabled"
     cannot block host preemption, because cli is blocked and sysret
     pins IF on. *)
  Cki.Container.enter_guest_kernel cpu;
  cpu.Hw.Cpu.if_flag <- false;
  (match Hw.Cpu.exec_priv cpu Hw.Priv.Sysret with
  | Ok () -> Printf.printf "  - sysret with IF=0 in guest: IF forced back to %b\n" cpu.Hw.Cpu.if_flag
  | Error _ -> ());
  Printf.printf "\nAll mechanisms correspond to Figure 9's isolation primitives.\n";
  ((), [ c ])

let () =
  print_endline "[analysis] post-attack machine scan + trace lint: no residue, clean"
