(* Quickstart: boot a CKI secure container, run a process in it, and
   watch where the time goes.

     dune exec examples/quickstart.exe *)

let () =
  Analysis.checked ~label:"quickstart" @@ fun () ->
  (* One machine, one host kernel, one CKI container. *)
  let machine = Hw.Machine.create ~cpus:4 ~mem_mib:256 () in
  let host = Cki.Host.create machine in
  let container = Cki.Container.create host in
  let b = Cki.Container.backend container in
  Printf.printf "booted %s (container id %d, PCID %d)\n" b.Virt.Backend.label
    (Cki.Container.container_id container)
    (Cki.Container.pcid container);

  (* Spawn a guest process and make some syscalls. *)
  let task = Virt.Backend.spawn b in
  let r = Virt.Backend.syscall_exn b task Kernel_model.Syscall.Getpid in
  (match r with
  | Kernel_model.Syscall.Rint pid -> Printf.printf "guest process pid = %d\n" pid
  | _ -> assert false);
  let getpid_ns =
    Virt.Backend.mean_latency b ~n:1000 (fun () ->
        ignore (Virt.Backend.syscall_exn b task Kernel_model.Syscall.Getpid))
  in
  Printf.printf "getpid latency: %.0f ns (native — no redirection, no PT switch)\n" getpid_ns;

  (* Write and read a file on the guest's tmpfs. *)
  let fd =
    match
      Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Open { path = "/hello"; create = true })
    with
    | Kernel_model.Syscall.Rint fd -> fd
    | _ -> assert false
  in
  ignore
    (Virt.Backend.syscall_exn b task
       (Kernel_model.Syscall.Write { fd; data = Bytes.of_string "hello from a CKI container" }));
  ignore (Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Lseek { fd; pos = 0 }));
  (match Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Read { fd; n = 64 }) with
  | Kernel_model.Syscall.Rbytes data -> Printf.printf "read back: %S\n" (Bytes.to_string data)
  | _ -> assert false);

  (* Demand-fault a memory region: each fault is handled by the guest
     kernel itself, plus exactly two KSM calls (PTE update + iret). *)
  let pages = 1024 in
  let base =
    match
      Virt.Backend.syscall_exn b task
        (Kernel_model.Syscall.Mmap { pages; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> assert false
  in
  let calls0 = Cki.Ksm.ksm_call_count (Cki.Container.ksm container) in
  let _, ns =
    Hw.Clock.timed b.Virt.Backend.clock (fun () ->
        ignore
          (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages ~write:true))
  in
  Printf.printf "page fault: %.0f ns avg over %d faults (%d KSM calls)\n"
    (ns /. float_of_int pages) pages
    (Cki.Ksm.ksm_call_count (Cki.Container.ksm container) - calls0);

  (* A hypercall through the hypercall gate — no L0 involvement even in
     a nested cloud. *)
  let t0 = Hw.Clock.now b.Virt.Backend.clock in
  b.Virt.Backend.empty_hypercall ();
  Printf.printf "hypercall: %.0f ns\n" (Hw.Clock.now b.Virt.Backend.clock -. t0);

  (* Where simulated time went, by event: *)
  Printf.printf "\nevent accounting:\n%s\n"
    (Format.asprintf "%a" Hw.Clock.pp (Hw.Machine.clock machine));
  ((), [ container ])

let () = print_endline "[analysis] machine scan + trace lint: clean"
