(* Key-value serving example (the Figure 16 scenario): a memcached-like
   server under a memtier-style client sweep, on CKI vs the baselines,
   bare-metal and nested.

     dune exec examples/kv_serving.exe *)

let cki_containers : Cki.Container.t list ref = ref []

let track c =
  cki_containers := c :: !cki_containers;
  Cki.Container.backend c

let () =
  (Analysis.checked ~label:"kv_serving" @@ fun () ->
  let clients = [ 4; 16; 64 ] in
  let backends =
    [
      ("RunC-BM", fun () -> Virt.Runc.create (Hw.Machine.create ~mem_mib:256 ()));
      ("HVM-NST", fun () -> Virt.Hvm.create ~env:Virt.Env.Nested (Hw.Machine.create ~mem_mib:256 ()));
      ("PVM-BM", fun () -> Virt.Pvm.create (Hw.Machine.create ~mem_mib:256 ()));
      ("CKI-BM", fun () -> track (Cki.Container.create_standalone ~mem_mib:256 ()));
      ( "CKI-NST",
        fun () -> track (Cki.Container.create_standalone ~env:Virt.Env.Nested ~mem_mib:256 ()) );
    ]
  in
  List.iter
    (fun flavor ->
      Printf.printf "\n%s, 1:1 GET/SET, 500 B values (k ops/s):\n"
        (Workloads.Kv.show_flavor flavor);
      Printf.printf "%-9s" "clients";
      List.iter (fun c -> Printf.printf "%10d" c) clients;
      print_newline ();
      List.iter
        (fun (name, mk) ->
          Printf.printf "%-9s" name;
          List.iter
            (fun c ->
              let thr = Workloads.Kv.run_memtier (mk ()) ~flavor ~clients:c ~requests:1_500 in
              Printf.printf "%10.1f" (thr /. 1e3))
            clients;
          print_newline ())
        backends)
    [ Workloads.Kv.Memcached; Workloads.Kv.Redis ];
  Printf.printf
    "\nPer request the server pays: recv+send syscalls (PVM: +2 mode +2 CR3\n\
     switches each), a VirtIO doorbell (HVM-NST: 6.7 us L0-redirected exit;\n\
     PVM: MMIO emulation; CKI: 390 ns hypercall gate) and a completion\n\
     interrupt (HVM: exit + inject + EOI exit).  That is the whole story\n\
     of Figure 16.\n";
  ((), !cki_containers));
  Printf.printf "[analysis] %d CKI containers scanned + trace linted: clean\n"
    (List.length !cki_containers)
