(* Nested cloud scenario: the motivating deployment of Section 2.2 —
   secure containers inside an IaaS VM.  Runs the same Redis-like
   serving workload on HVM, PVM and CKI in both bare-metal and nested
   environments and shows how each degrades.

     dune exec examples/nested_cloud.exe *)

let machine () = Hw.Machine.create ~cpus:4 ~mem_mib:256 ()

(* CKI containers created along the way, sanitized at the end. *)
let cki_containers : Cki.Container.t list ref = ref []

let track c =
  cki_containers := c :: !cki_containers;
  Cki.Container.backend c

let backends =
  [
    ("HVM-BM", fun () -> Virt.Hvm.create (machine ()));
    ("HVM-NST", fun () -> Virt.Hvm.create ~env:Virt.Env.Nested (machine ()));
    ("PVM-BM", fun () -> Virt.Pvm.create (machine ()));
    ("PVM-NST", fun () -> Virt.Pvm.create ~env:Virt.Env.Nested (machine ()));
    ("CKI-BM", fun () -> track (Cki.Container.create_standalone ~mem_mib:256 ()));
    ( "CKI-NST",
      fun () -> track (Cki.Container.create_standalone ~env:Virt.Env.Nested ~mem_mib:256 ()) );
  ]

let () =
  Analysis.checked ~label:"nested_cloud" @@ fun () ->
  Printf.printf "Secure containers in a nested cloud (L2 container / L1 host / L0 IaaS)\n";
  Printf.printf "=======================================================================\n\n";
  (* 1. The microbenchmark collapse: an empty hypercall. *)
  Printf.printf "empty hypercall (guest kernel -> host kernel):\n";
  List.iter
    (fun (name, mk) ->
      let b = mk () in
      let t0 = Hw.Clock.now b.Virt.Backend.clock in
      b.Virt.Backend.empty_hypercall ();
      Printf.printf "  %-8s %7.0f ns%s\n" name
        (Hw.Clock.now b.Virt.Backend.clock -. t0)
        (if name = "HVM-NST" then "   <- every L2 exit bounces through L0" else ""))
    backends;

  (* 2. Page-fault path under nesting. *)
  Printf.printf "\npage fault (demand paging a 4 MiB region):\n";
  List.iter
    (fun (name, mk) ->
      let b = mk () in
      let task = Virt.Backend.spawn b in
      let pages = 1024 in
      let base =
        match
          Virt.Backend.syscall_exn b task
            (Kernel_model.Syscall.Mmap { pages; prot = Kernel_model.Vma.prot_rw })
        with
        | Kernel_model.Syscall.Rint v -> v
        | _ -> assert false
      in
      let _, ns =
        Hw.Clock.timed b.Virt.Backend.clock (fun () ->
            ignore
              (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages ~write:true))
      in
      Printf.printf "  %-8s %7.0f ns/fault\n" name (ns /. float_of_int pages))
    backends;

  (* 3. End-to-end: a Redis-like server under load. *)
  Printf.printf "\nredis-like server, 64 clients, 1:1 GET/SET (k ops/s):\n";
  List.iter
    (fun (name, mk) ->
      let thr =
        Workloads.Kv.run_memtier (mk ()) ~flavor:Workloads.Kv.Redis ~clients:64 ~requests:2000
      in
      Printf.printf "  %-8s %8.1f\n" name (thr /. 1e3))
    backends;
  Printf.printf
    "\nCKI's exits never involve L0: its nested numbers track bare-metal, while\n\
     HVM's nested I/O collapses and PVM keeps paying syscall redirection.\n";
  ((), !cki_containers)

let () =
  Printf.printf "[analysis] %d CKI containers scanned + trace linted: clean\n"
    (List.length !cki_containers)
