(* Live migration end to end: iterative pre-copy over a two-host
   fabric, compared against pure stop-and-copy, then a source crash
   mid-round failing over to the round-0 checkpoint.

     dune exec examples/live_migration.exe *)

let () =
  Printf.printf "== Iterative pre-copy: the source serves while frames ship ==\n\n";
  Printf.printf
    "Round 0 ships a consistent checkpoint while the app keeps writing;\n\
     every writable page is then write-protected through the KSM (with a\n\
     full TLB shootdown) so writes fault into a dirty log.  Each round\n\
     re-sends only what the previous round's wire time let the app dirty —\n\
     the dirty set shrinks geometrically until only a handful of frames\n\
     ship inside the blackout.\n\n";
  let fab = Migrate.Fabric.create ~hosts:2 () in
  let a = Migrate.Chaos.boot_app fab ~hid:0 in
  ignore (Migrate.Fabric.expose fab ~name:"svc" ~home:0);
  let st =
    match
      Migrate.Engine.migrate fab ~src:0 ~dst:1 ~name:"svc" a.Migrate.Chaos.container
        ~work:(Migrate.Chaos.work_of a) Migrate.Engine.default_opts
    with
    | Ok st -> st
    | Error e -> failwith (Migrate.Engine.show_error e)
  in
  List.iter
    (fun r ->
      Printf.printf "  round %d: %4d dirty frames shipped in %.0f ns\n" r.Migrate.Engine.r_round
        r.Migrate.Engine.r_dirty r.Migrate.Engine.r_transfer_ns)
    st.Migrate.Engine.rounds;
  Printf.printf "\n  downtime %.0f ns, %d full + %d resent frames, verified before cutover\n\n"
    st.Migrate.Engine.downtime_ns st.Migrate.Engine.frames_full st.Migrate.Engine.frames_resent;

  Printf.printf "== The baseline: stop-and-copy ships everything in the blackout ==\n\n";
  let fab2 = Migrate.Fabric.create ~hosts:2 () in
  let b = Migrate.Chaos.boot_app fab2 ~hid:0 in
  ignore (Migrate.Fabric.expose fab2 ~name:"svc" ~home:0);
  let sc =
    match
      Migrate.Engine.migrate fab2 ~src:0 ~dst:1 ~name:"svc" b.Migrate.Chaos.container
        ~work:(Migrate.Chaos.work_of b)
        { Migrate.Engine.default_opts with Migrate.Engine.rounds_max = 0 }
    with
    | Ok st -> st
    | Error e -> failwith (Migrate.Engine.show_error e)
  in
  Printf.printf "  stop-and-copy downtime %.0f ns — pre-copy cut it to %.1f%%\n\n"
    sc.Migrate.Engine.downtime_ns
    (100.0 *. st.Migrate.Engine.downtime_ns /. sc.Migrate.Engine.downtime_ns);

  Printf.printf "== Chaos: a source crash mid-round fails over, cleanly ==\n\n";
  Printf.printf
    "Rounds are wire traffic, not target state: the only consistent restore\n\
     points are the checkpoint and final images, so a crashed source fails\n\
     over to the (re-verified) checkpoint — never a half-applied round.\n\n";
  List.iter
    (fun (v : Migrate.Chaos.verdict) ->
      Printf.printf "  %-12s -> host %d live, %d findings, %d leaked frames: %s\n"
        (Migrate.Chaos.scenario_name v.Migrate.Chaos.scenario)
        v.Migrate.Chaos.live_hid v.Migrate.Chaos.analysis_findings v.Migrate.Chaos.leaked_frames
        (if v.Migrate.Chaos.ok then "ok" else "VIOLATION"))
    (Migrate.Chaos.all ());
  Printf.printf "\nEvery scenario ends with exactly one analysis-clean live copy.\n"
