(* SQLite-on-tmpfs example (the Figure 14 scenario): run the db_bench
   access patterns inside different secure containers and compare
   throughput + syscall rates.

     dune exec examples/sqlite_tmpfs.exe *)

let cki_containers : Cki.Container.t list ref = ref []

let track c =
  cki_containers := c :: !cki_containers;
  Cki.Container.backend c

let () =
  (Analysis.checked ~label:"sqlite_tmpfs" @@ fun () ->
  let ops = 1_500 in
  let backends =
    [
      ("RunC", fun () -> Virt.Runc.create (Hw.Machine.create ~mem_mib:256 ()));
      ("PVM", fun () -> Virt.Pvm.create (Hw.Machine.create ~mem_mib:256 ()));
      ("CKI", fun () -> track (Cki.Container.create_standalone ~mem_mib:256 ()));
    ]
  in
  Printf.printf "SQLite db_bench on tmpfs, %d ops per pattern (k ops/s)\n\n" ops;
  Printf.printf "%-15s" "pattern";
  List.iter (fun (n, _) -> Printf.printf "%10s" n) backends;
  Printf.printf "%14s\n" "syscalls/op";
  List.iter
    (fun p ->
      Printf.printf "%-15s" (Workloads.Sqlite.pattern_name p);
      let spo = ref 0.0 in
      List.iter
        (fun (_, mk) ->
          let r = Workloads.Sqlite.run_pattern (mk ()) p ~ops in
          spo := r.Workloads.Sqlite.syscalls_per_op;
          Printf.printf "%10.1f" (r.Workloads.Sqlite.ops_per_sec /. 1e3))
        backends;
      Printf.printf "%14.1f\n" !spo)
    Workloads.Sqlite.all_patterns;
  Printf.printf
    "\nWrite patterns are syscall-dense (journal create/write/fsync/unlink per\n\
     txn), so PVM's redirected syscalls cost ~20-30%% of throughput; batched\n\
     and read patterns amortize; CKI's native syscalls track RunC everywhere.\n";
  ((), !cki_containers));
  Printf.printf "[analysis] %d CKI containers scanned + trace linted: clean\n"
    (List.length !cki_containers)
