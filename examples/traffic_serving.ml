(* Traffic serving through the host I/O plane: an open-loop load
   generator drives a container fleet over the shared-memory virtio
   rings and the software switch, comparing notification costs across
   backends and EVENT_IDX coalescing windows.

     dune exec examples/traffic_serving.exe *)

let serve cfg =
  Analysis.checked
    ~label:(Printf.sprintf "traffic_serving/%s-w%d" cfg.Ioplane.Serve.backend cfg.Ioplane.Serve.window)
    (fun () -> Ioplane.Serve.run cfg)

let () =
  let base =
    {
      Ioplane.Serve.default_config with
      Ioplane.Serve.containers = 4;
      requests_per_container = 100;
      rate_rps = 200_000.0;
    }
  in
  Printf.printf "Four-container fleets, open-loop memcached load, naive notification:\n\n";
  List.iter
    (fun backend -> Format.printf "%a@." Ioplane.Serve.pp_result (serve { base with Ioplane.Serve.backend; window = 0 }))
    [ "runc"; "hvm"; "pvm"; "cki" ];
  Printf.printf "\nCKI with EVENT_IDX interrupt coalescing (the batch window caps how long\n";
  Printf.printf "a completion can sit unsignaled; doorbells and interrupts collapse):\n\n";
  List.iter
    (fun window -> Format.printf "%a@." Ioplane.Serve.pp_result (serve { base with Ioplane.Serve.backend = "cki"; window }))
    [ 1; 4; 8 ];
  Printf.printf "\nEight containers, coalesced, multiplexed over preempted vCPU timeslices:\n\n";
  Format.printf "%a@." Ioplane.Serve.pp_result
    (serve
       {
         base with
         Ioplane.Serve.backend = "cki";
         containers = 8;
         window = 4;
         use_sched = true;
         fsync_every = 8;
       })
