(* Tests for Hw: TLB, PKS, privileged instructions, CPU, IDT, EPT,
   VMCS, clock. *)

open Alcotest

let check_int = check int
let check_bool = check bool

(* ------------------------------- Tlb ------------------------------ *)

let entry pfn = { Hw.Tlb.pfn; flags = Hw.Pte.default_flags; level = 1 }

let test_tlb_hit_miss () =
  let t = Hw.Tlb.create ~capacity:4 () in
  check_bool "cold miss" true (Hw.Tlb.lookup t ~pcid:1 0x1000 = None);
  Hw.Tlb.insert t ~pcid:1 ~va:0x1000 (entry 7);
  (match Hw.Tlb.lookup t ~pcid:1 0x1abc with
  | Some e -> check_int "hit pfn" 7 e.Hw.Tlb.pfn
  | None -> fail "expected hit");
  check_int "hits" 1 (Hw.Tlb.hits t);
  check_int "misses" 1 (Hw.Tlb.misses t)

let test_tlb_pcid_isolation () =
  let t = Hw.Tlb.create () in
  Hw.Tlb.insert t ~pcid:1 ~va:0x1000 (entry 7);
  check_bool "other pcid misses" true (Hw.Tlb.lookup t ~pcid:2 0x1000 = None);
  (* invlpg in pcid 2 must not remove pcid 1's entry *)
  Hw.Tlb.invlpg t ~pcid:2 0x1000;
  check_bool "pcid 1 survives" true (Hw.Tlb.lookup t ~pcid:1 0x1000 <> None);
  Hw.Tlb.invlpg t ~pcid:1 0x1000;
  check_bool "pcid 1 flushed" true (Hw.Tlb.lookup t ~pcid:1 0x1000 = None)

let test_tlb_flush_pcid () =
  let t = Hw.Tlb.create () in
  Hw.Tlb.insert t ~pcid:1 ~va:0x1000 (entry 1);
  Hw.Tlb.insert t ~pcid:1 ~va:0x2000 (entry 2);
  Hw.Tlb.insert t ~pcid:2 ~va:0x3000 (entry 3);
  Hw.Tlb.flush_pcid t ~pcid:1;
  check_int "pcid1 empty" 0 (Hw.Tlb.entries_for t ~pcid:1);
  check_int "pcid2 intact" 1 (Hw.Tlb.entries_for t ~pcid:2);
  Hw.Tlb.flush_all t;
  check_int "all empty" 0 (Hw.Tlb.size t)

let test_tlb_capacity () =
  let t = Hw.Tlb.create ~capacity:8 () in
  for i = 0 to 63 do
    Hw.Tlb.insert t ~pcid:1 ~va:(i * 4096) (entry i)
  done;
  check_bool "bounded" true (Hw.Tlb.size t <= 8)

let test_tlb_huge_entry () =
  let t = Hw.Tlb.create () in
  Hw.Tlb.insert t ~pcid:1 ~va:0x40000000 { Hw.Tlb.pfn = 99; flags = Hw.Pte.default_flags; level = 2 };
  (match Hw.Tlb.lookup t ~pcid:1 (0x40000000 + (17 * 4096)) with
  | Some e -> check_int "huge covers 2M" 99 e.Hw.Tlb.pfn
  | None -> fail "expected huge hit")

(* ------------------------------- Pks ------------------------------ *)

let test_pks_make_perm () =
  let r = Hw.Pks.make [ (1, Hw.Pks.No_access); (2, Hw.Pks.Read_only) ] in
  check_bool "key0 rw" true (Hw.Pks.perm_of r ~key:0 = Hw.Pks.Read_write);
  check_bool "key1 none" true (Hw.Pks.perm_of r ~key:1 = Hw.Pks.No_access);
  check_bool "key2 ro" true (Hw.Pks.perm_of r ~key:2 = Hw.Pks.Read_only);
  check_bool "all access is zero" true (Hw.Pks.all_access = 0)

let test_pks_allows () =
  let r = Hw.Pks.pkrs_guest in
  check_bool "guest reads own pages" true (Hw.Pks.allows r ~key:Hw.Pks.pkey_guest Hw.Pks.Read);
  check_bool "guest writes own pages" true (Hw.Pks.allows r ~key:Hw.Pks.pkey_guest Hw.Pks.Write);
  check_bool "guest reads PTPs" true (Hw.Pks.allows r ~key:Hw.Pks.pkey_ptp Hw.Pks.Read);
  check_bool "guest cannot write PTPs" false (Hw.Pks.allows r ~key:Hw.Pks.pkey_ptp Hw.Pks.Write);
  check_bool "guest cannot read KSM" false (Hw.Pks.allows r ~key:Hw.Pks.pkey_ksm Hw.Pks.Read);
  check_bool "ksm rights unrestricted" true
    (Hw.Pks.allows Hw.Pks.pkrs_ksm ~key:Hw.Pks.pkey_ksm Hw.Pks.Write)

let prop_pks_roundtrip =
  QCheck.Test.make ~name:"pks make/perm_of roundtrip" ~count:200
    QCheck.(pair (int_bound 15) (int_bound 2))
    (fun (key, p) ->
      let perm = match p with 0 -> Hw.Pks.Read_write | 1 -> Hw.Pks.Read_only | _ -> Hw.Pks.No_access in
      let r = Hw.Pks.make [ (key, perm) ] in
      Hw.Pks.perm_of r ~key = perm)

(* ------------------------------ Priv ------------------------------ *)

let test_priv_policy_matches_table3 () =
  (* Spot-check the policy rows of Table 3. *)
  let blocked = Hw.Priv.blocked_in_guest in
  check_bool "lidt blocked" true (blocked Hw.Priv.Lidt);
  check_bool "wrmsr blocked" true (blocked (Hw.Priv.Wrmsr 0));
  check_bool "read cr harmless" false (blocked (Hw.Priv.Mov_from_cr 0));
  check_bool "mov cr3 blocked" true (blocked Hw.Priv.Mov_to_cr3);
  check_bool "clac allowed" false (blocked Hw.Priv.Clac);
  check_bool "invlpg allowed" false (blocked (Hw.Priv.Invlpg 0));
  check_bool "invpcid blocked" true (blocked Hw.Priv.Invpcid);
  check_bool "swapgs allowed" false (blocked Hw.Priv.Swapgs);
  check_bool "sysret allowed" false (blocked Hw.Priv.Sysret);
  check_bool "iret blocked" true (blocked Hw.Priv.Iret);
  check_bool "hlt allowed" false (blocked Hw.Priv.Hlt);
  check_bool "cli blocked" true (blocked Hw.Priv.Cli);
  check_bool "out blocked" true (blocked (Hw.Priv.Out_port 0));
  check_bool "wrpkrs allowed" false (blocked (Hw.Priv.Wrpkrs 0))

let test_priv_virtualization_consistency () =
  (* Every blocked instruction must be virtualized by some non-native
     mechanism; allowed ones are Native (or unused). *)
  List.iter
    (fun inst ->
      let v = Hw.Priv.virtualized_as inst in
      if Hw.Priv.blocked_in_guest inst then
        check_bool (Hw.Priv.mnemonic inst ^ " has replacement") true (v <> Hw.Priv.Native)
      else
        check_bool (Hw.Priv.mnemonic inst ^ " stays native") true
          (v = Hw.Priv.Native || v = Hw.Priv.Hypercall (* hlt pauses via hypercall *)))
    Hw.Priv.all_examples

(* ------------------------------- Cpu ------------------------------ *)

let mk_cpu () = Hw.Cpu.create (Hw.Clock.create ())

let test_cpu_blocks_in_guest () =
  let cpu = mk_cpu () in
  List.iter
    (fun inst ->
      (* reset per instruction: sysret drops to user mode *)
      cpu.Hw.Cpu.mode <- Hw.Cpu.Kernel;
      cpu.Hw.Cpu.pkrs <- Hw.Pks.pkrs_guest;
      match Hw.Cpu.exec_priv cpu inst with
      | Error (Hw.Cpu.Blocked_instruction _) ->
          check_bool (Hw.Priv.mnemonic inst) true (Hw.Priv.blocked_in_guest inst)
      | Ok () -> check_bool (Hw.Priv.mnemonic inst) false (Hw.Priv.blocked_in_guest inst)
      | Error e -> fail (Hw.Cpu.show_fault e))
    Hw.Priv.all_examples

let test_cpu_monitor_mode_unrestricted () =
  let cpu = mk_cpu () in
  List.iter
    (fun inst ->
      cpu.Hw.Cpu.mode <- Hw.Cpu.Kernel;
      cpu.Hw.Cpu.pkrs <- Hw.Pks.all_access;
      match Hw.Cpu.exec_priv cpu inst with
      | Ok () -> ()
      | Error e -> fail (Hw.Priv.mnemonic inst ^ ": " ^ Hw.Cpu.show_fault e))
    Hw.Priv.all_examples

let test_cpu_user_mode_faults () =
  let cpu = mk_cpu () in
  cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  match Hw.Cpu.exec_priv cpu Hw.Priv.Hlt with
  | Error (Hw.Cpu.Not_kernel_mode _) -> ()
  | _ -> fail "expected ring-3 #GP"

let test_cpu_wrpkrs_swapgs () =
  let cpu = mk_cpu () in
  Hw.Cpu.exec_priv_exn cpu (Hw.Priv.Wrpkrs Hw.Pks.pkrs_guest);
  check_int "pkrs written" Hw.Pks.pkrs_guest cpu.Hw.Cpu.pkrs;
  cpu.Hw.Cpu.gs_base <- 1;
  cpu.Hw.Cpu.kernel_gs_base <- 2;
  Hw.Cpu.exec_priv_exn cpu Hw.Priv.Swapgs;
  check_int "gs swapped" 2 cpu.Hw.Cpu.gs_base;
  check_int "kernel_gs swapped" 1 cpu.Hw.Cpu.kernel_gs_base

let test_cpu_sysret_if_pinning () =
  let cpu = mk_cpu () in
  (* Native kernel (pkrs=0) may sysret with IF=0. *)
  cpu.Hw.Cpu.if_flag <- false;
  Hw.Cpu.exec_priv_exn cpu Hw.Priv.Sysret;
  check_bool "native keeps IF" false cpu.Hw.Cpu.if_flag;
  (* Guest kernel (pkrs!=0): IF forced on (extension E3). *)
  cpu.Hw.Cpu.mode <- Hw.Cpu.Kernel;
  cpu.Hw.Cpu.pkrs <- Hw.Pks.pkrs_guest;
  cpu.Hw.Cpu.if_flag <- false;
  Hw.Cpu.exec_priv_exn cpu Hw.Priv.Sysret;
  check_bool "guest IF pinned on" true cpu.Hw.Cpu.if_flag;
  check_bool "in user mode" true (cpu.Hw.Cpu.mode = Hw.Cpu.User)

let test_cpu_iret_restores_pkrs () =
  let cpu = mk_cpu () in
  cpu.Hw.Cpu.pkrs <- Hw.Pks.pkrs_guest;
  Hw.Cpu.hw_interrupt_entry cpu ~pks_switch:true;
  check_int "pkrs zeroed on hw intr" Hw.Pks.all_access cpu.Hw.Cpu.pkrs;
  check_bool "IF off in handler" false cpu.Hw.Cpu.if_flag;
  Hw.Cpu.exec_priv_exn cpu Hw.Priv.Iret;
  check_int "pkrs restored" Hw.Pks.pkrs_guest cpu.Hw.Cpu.pkrs

let test_cpu_access_checks () =
  let clock = Hw.Clock.create () in
  let cpu = Hw.Cpu.create clock in
  let m = Hw.Phys_mem.create ~frames:4096 in
  let pt = Hw.Page_table.create m ~owner:Hw.Phys_mem.Host in
  ignore
    (Hw.Page_table.map pt ~va:0x1000 ~pfn:10
       ~flags:{ Hw.Pte.default_flags with user = true } ());
  ignore
    (Hw.Page_table.map pt ~va:0x2000 ~pfn:11
       ~flags:{ Hw.Pte.default_flags with user = false; pkey = Hw.Pks.pkey_ksm } ());
  (* user mode reads user page *)
  cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  (match Hw.Cpu.access cpu pt ~va:0x1234 ~access_kind:Hw.Pks.Read () with
  | Ok pa -> check_int "user pa" ((10 * 4096) lor 0x234) pa
  | Error e -> fail (Hw.Cpu.show_fault e));
  (* user mode cannot touch supervisor page *)
  (match Hw.Cpu.access cpu pt ~va:0x2000 ~access_kind:Hw.Pks.Read () with
  | Error (Hw.Cpu.Priv_page_violation _) -> ()
  | _ -> fail "expected U/K violation");
  (* guest kernel (pkrs_guest) cannot touch pkey_ksm page *)
  cpu.Hw.Cpu.mode <- Hw.Cpu.Kernel;
  cpu.Hw.Cpu.pkrs <- Hw.Pks.pkrs_guest;
  (match Hw.Cpu.access cpu pt ~va:0x2000 ~access_kind:Hw.Pks.Read () with
  | Error (Hw.Cpu.Pks_violation { key; _ }) -> check_int "ksm key" Hw.Pks.pkey_ksm key
  | _ -> fail "expected PKS violation");
  (* monitor rights pass *)
  cpu.Hw.Cpu.pkrs <- Hw.Pks.all_access;
  (match Hw.Cpu.access cpu pt ~va:0x2000 ~access_kind:Hw.Pks.Write () with
  | Ok _ -> ()
  | Error e -> fail (Hw.Cpu.show_fault e));
  (* unmapped *)
  match Hw.Cpu.access cpu pt ~va:0x999000 ~access_kind:Hw.Pks.Read () with
  | Error (Hw.Cpu.Not_present _) -> ()
  | _ -> fail "expected not present"

let test_cpu_access_uses_tlb () =
  let clock = Hw.Clock.create () in
  let cpu = Hw.Cpu.create clock in
  let m = Hw.Phys_mem.create ~frames:4096 in
  let pt = Hw.Page_table.create m ~owner:Hw.Phys_mem.Host in
  ignore (Hw.Page_table.map pt ~va:0x1000 ~pfn:10 ~flags:{ Hw.Pte.default_flags with user = true } ());
  ignore (Hw.Cpu.access cpu pt ~va:0x1000 ~access_kind:Hw.Pks.Read ());
  let walks = Hw.Clock.occurrences clock "tlb_miss_walk" in
  ignore (Hw.Cpu.access cpu pt ~va:0x1000 ~access_kind:Hw.Pks.Read ());
  check_int "second access: no extra walk" walks (Hw.Clock.occurrences clock "tlb_miss_walk");
  check_bool "tlb hit recorded" true (Hw.Clock.occurrences clock "tlb_hit" >= 1)

(* ------------------------------- Idt ------------------------------ *)

let test_idt_lock () =
  let idt = Hw.Idt.create () in
  Hw.Idt.set idt
    { Hw.Idt.vector = 32; handler = "h"; ist = Some 1; pks_switch = true; user_invocable = false };
  check_bool "installed" true (Hw.Idt.get idt 32 <> None);
  Hw.Idt.lock idt;
  check_raises "locked" (Invalid_argument "Idt.set: IDT locked") (fun () ->
      Hw.Idt.set idt
        { Hw.Idt.vector = 33; handler = "x"; ist = None; pks_switch = false; user_invocable = false })

let test_idt_delivery_pks_switch () =
  let idt = Hw.Idt.create () in
  Hw.Idt.set idt
    { Hw.Idt.vector = 32; handler = "gate"; ist = Some 1; pks_switch = true; user_invocable = false };
  let cpu = mk_cpu () in
  cpu.Hw.Cpu.pkrs <- Hw.Pks.pkrs_guest;
  ignore (Hw.Idt.deliver idt cpu ~kind:Hw.Idt.Hardware 32);
  check_int "hardware delivery zeroes pkrs" Hw.Pks.all_access cpu.Hw.Cpu.pkrs;
  (* Software int leaves PKRS alone — the anti-forgery property. *)
  let cpu2 = mk_cpu () in
  cpu2.Hw.Cpu.pkrs <- Hw.Pks.pkrs_guest;
  ignore (Hw.Idt.deliver idt cpu2 ~kind:Hw.Idt.Software 32);
  check_int "software int keeps pkrs" Hw.Pks.pkrs_guest cpu2.Hw.Cpu.pkrs

(* ------------------------------- Ept ------------------------------ *)

let test_ept_map_translate () =
  let m = Hw.Phys_mem.create ~frames:4096 in
  let ept = Hw.Ept.create m ~huge:false in
  Hw.Ept.map ept ~gfn:5 ~hfn:500;
  check_int "translate" ((500 * 4096) lor 0x123) (Hw.Ept.translate ept ((5 * 4096) lor 0x123));
  (match Hw.Ept.translate ept (99 * 4096) with
  | exception Hw.Ept.Ept_violation { gpa } -> check_int "violation gpa" (99 * 4096) gpa
  | _ -> fail "expected EPT violation");
  check_int "violations counted" 1 (Hw.Ept.violations ept);
  check_int "2d walk refs" 24 (Hw.Ept.walk_refs ept)

let test_ept_huge () =
  let m = Hw.Phys_mem.create ~frames:4096 in
  let ept = Hw.Ept.create m ~huge:true in
  Hw.Ept.map_huge ept ~gfn:512 ~hfn:1024;
  check_int "huge translate" ((1024 * 4096) + (5 * 4096)) (Hw.Ept.translate ept ((517 * 4096)));
  check_int "huge walk refs" 15 (Hw.Ept.walk_refs ept)

(* ------------------------------ Vmcs ------------------------------ *)

let test_vmcs_exits () =
  let clock = Hw.Clock.create () in
  let v = Hw.Vmcs.create ~id:1 ~nested:false in
  let c1 = Hw.Vmcs.vm_exit v clock Hw.Vmcs.Hypercall in
  check_bool "bm cost" true (c1 = Hw.Cost.vmexit_bm);
  let vn = Hw.Vmcs.create ~id:2 ~nested:true in
  let c2 = Hw.Vmcs.vm_exit vn clock (Hw.Vmcs.Ept_violation 0) in
  check_bool "nested costlier" true (c2 > c1);
  check_int "exit count" 1 (Hw.Vmcs.exits v);
  check_int "by reason" 1 (Hw.Vmcs.exits_for vn "ept_violation")

(* ------------------------------ Clock ----------------------------- *)

let test_clock_accounting () =
  let c = Hw.Clock.create () in
  Hw.Clock.charge c "x" 10.0;
  Hw.Clock.charge c "x" 5.0;
  Hw.Clock.advance c 2.0;
  check_bool "now" true (Hw.Clock.now c = 17.0);
  check_int "occurrences" 2 (Hw.Clock.occurrences c "x");
  check_bool "spent" true (Hw.Clock.spent_on c "x" = 15.0);
  let (), d = Hw.Clock.timed c (fun () -> Hw.Clock.charge c "y" 3.0) in
  check_bool "timed" true (d = 3.0);
  Hw.Clock.reset c;
  check_bool "reset" true (Hw.Clock.now c = 0.0 && Hw.Clock.occurrences c "x" = 0)

(* ---------------------------- Machine ----------------------------- *)

let test_machine_irq_queue () =
  let m = Hw.Machine.create ~cpus:2 ~mem_mib:1 () in
  check_bool "no pending" false (Hw.Machine.has_pending m ~cpu:0);
  Hw.Machine.raise_irq m ~cpu:0 ~vector:32;
  Hw.Machine.raise_irq m ~cpu:1 ~vector:33;
  Hw.Machine.raise_irq m ~cpu:0 ~vector:34;
  check_bool "pending" true (Hw.Machine.has_pending m ~cpu:0);
  check_bool "fifo per cpu" true (Hw.Machine.take_irq m ~cpu:0 = Some 32);
  check_bool "next" true (Hw.Machine.take_irq m ~cpu:0 = Some 34);
  check_bool "drained" true (Hw.Machine.take_irq m ~cpu:0 = None);
  check_bool "cpu1 intact" true (Hw.Machine.take_irq m ~cpu:1 = Some 33);
  let p1 = Hw.Machine.fresh_pcid m in
  let p2 = Hw.Machine.fresh_pcid m in
  check_bool "pcids distinct" true (p1 <> p2)

let suite =
  [
    ( "hw/tlb",
      [
        test_case "hit/miss" `Quick test_tlb_hit_miss;
        test_case "PCID isolation (invlpg)" `Quick test_tlb_pcid_isolation;
        test_case "flush pcid / all" `Quick test_tlb_flush_pcid;
        test_case "capacity bound" `Quick test_tlb_capacity;
        test_case "2 MiB entries" `Quick test_tlb_huge_entry;
      ] );
    ( "hw/pks",
      [
        test_case "make/perm_of" `Quick test_pks_make_perm;
        test_case "allows + CKI layout" `Quick test_pks_allows;
        QCheck_alcotest.to_alcotest prop_pks_roundtrip;
      ] );
    ( "hw/priv",
      [
        test_case "Table 3 policy" `Quick test_priv_policy_matches_table3;
        test_case "virtualization consistency" `Quick test_priv_virtualization_consistency;
      ] );
    ( "hw/cpu",
      [
        test_case "blocks destructive insns in guest" `Quick test_cpu_blocks_in_guest;
        test_case "monitor mode unrestricted" `Quick test_cpu_monitor_mode_unrestricted;
        test_case "ring-3 #GP" `Quick test_cpu_user_mode_faults;
        test_case "wrpkrs + swapgs" `Quick test_cpu_wrpkrs_swapgs;
        test_case "sysret IF pinning (E3)" `Quick test_cpu_sysret_if_pinning;
        test_case "iret restores PKRS (E4)" `Quick test_cpu_iret_restores_pkrs;
        test_case "access permission checks" `Quick test_cpu_access_checks;
        test_case "access consults TLB" `Quick test_cpu_access_uses_tlb;
      ] );
    ( "hw/idt",
      [
        test_case "set/lock" `Quick test_idt_lock;
        test_case "PKS switch on hardware delivery only" `Quick test_idt_delivery_pks_switch;
      ] );
    ( "hw/ept",
      [
        test_case "map/translate/violation" `Quick test_ept_map_translate;
        test_case "huge mappings" `Quick test_ept_huge;
      ] );
    ("hw/vmcs", [ test_case "exit accounting" `Quick test_vmcs_exits ]);
    ("hw/clock", [ test_case "accounting" `Quick test_clock_accounting ]);
    ("hw/machine", [ test_case "irq queue + pcids" `Quick test_machine_irq_queue ]);
  ]
