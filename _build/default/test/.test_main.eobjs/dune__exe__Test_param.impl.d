test/test_param.ml: Alcotest Cki Float Hw Lazy List Virt Workloads
