test/test_hw_cpu.ml: Alcotest Hw List QCheck QCheck_alcotest
