test/test_extensions.ml: Alcotest Cki Float Hw Kernel_model List Printf Virt Workloads
