test/test_cki.ml: Alcotest Array Cki Float Hw Kernel_model List QCheck QCheck_alcotest Virt
