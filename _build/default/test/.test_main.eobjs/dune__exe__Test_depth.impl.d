test/test_depth.ml: Alcotest Bytes Cki Float Hw Kernel_model List Printf QCheck QCheck_alcotest Virt Workloads
