test/test_hw_mem.ml: Alcotest Hashtbl Hw List QCheck QCheck_alcotest
