test/test_integration.ml: Alcotest Bytes Cki Float Hw Kernel_model List Virt Workloads
