test/test_virt.ml: Alcotest Cki Float Hw Kernel_model Virt
