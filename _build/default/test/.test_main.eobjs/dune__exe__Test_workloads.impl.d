test/test_workloads.ml: Alcotest Cki Float Hashtbl Hw Kernel_model List QCheck QCheck_alcotest Report String Virt Workloads
