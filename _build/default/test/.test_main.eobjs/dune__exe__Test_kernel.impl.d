test/test_kernel.ml: Alcotest Bytes Hw Kernel_model List QCheck QCheck_alcotest
