(* Tests for the CKI core: KSM invariants, gates, per-vCPU areas,
   container platform behaviour, ablations, and the attack suite. *)

open Alcotest

let check_int = check int
let check_bool = check bool

let mk_container ?(cfg = Cki.Config.default) () =
  Cki.Container.create_standalone ~cfg ~mem_mib:128 ()

let buddy_alloc c () = Kernel_model.Buddy.alloc (Cki.Container.buddy c)

let expect_ok label = function
  | Ok v -> v
  | Error e -> fail (label ^ ": " ^ Cki.Ksm.show_error e)

(* ------------------------------- KSM ------------------------------ *)

let test_ksm_declare_ptp () =
  let c = mk_container () in
  let ksm = Cki.Container.ksm c in
  let pfn = buddy_alloc c () in
  expect_ok "declare" (Cki.Ksm.declare_ptp ksm ~pfn ~level:1);
  check_bool "declared" true (Cki.Ksm.is_declared_ptp ksm pfn);
  (match Cki.Ksm.declare_ptp ksm ~pfn ~level:1 with
  | Error (Cki.Ksm.Already_declared _) -> ()
  | _ -> fail "double declaration must be rejected");
  expect_ok "undeclare" (Cki.Ksm.undeclare_ptp ksm ~pfn);
  check_bool "undeclared" false (Cki.Ksm.is_declared_ptp ksm pfn)

(* A frame guaranteed to be outside the container's delegated segment:
   freshly allocated to the host. *)
let foreign_frame c =
  let mem = Hw.Machine.mem (Cki.Host.machine c.Cki.Container.host) in
  Hw.Phys_mem.alloc mem ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data

let test_ksm_declare_foreign_frame () =
  let c = mk_container () in
  let ksm = Cki.Container.ksm c in
  match Cki.Ksm.declare_ptp ksm ~pfn:(foreign_frame c) ~level:1 with
  | Error (Cki.Ksm.Not_guest_frame _) -> ()
  | _ -> fail "foreign frame must be rejected"

let test_ksm_ptp_readonly_in_direct_map () =
  let c = mk_container () in
  let ksm = Cki.Container.ksm c in
  let pfn = buddy_alloc c () in
  expect_ok "declare" (Cki.Ksm.declare_ptp ksm ~pfn ~level:1);
  (* The direct-map PTE for the declared PTP now carries pkey_ptp:
     writes with guest rights must be refused by the PKS check. *)
  let cpu = Cki.Container.cpu c 0 in
  Cki.Container.enter_guest_kernel cpu;
  let mem = Hw.Machine.mem (Cki.Host.machine c.Cki.Container.host) in
  let pt = Hw.Page_table.of_root mem (Cki.Ksm.kernel_root ksm) in
  let va = Cki.Layout.direct_va_of_pa (Hw.Addr.pa_of_pfn pfn) in
  (match Hw.Cpu.access cpu pt ~va ~access_kind:Hw.Pks.Write () with
  | Error (Hw.Cpu.Pks_violation { key; _ }) -> check_int "ptp key" Hw.Pks.pkey_ptp key
  | _ -> fail "guest write to PTP must fault");
  (* ... but the guest may still *read* it (Read_only domain). *)
  match Hw.Cpu.access cpu pt ~va ~access_kind:Hw.Pks.Read () with
  | Ok _ -> ()
  | Error e -> fail ("read should pass: " ^ Hw.Cpu.show_fault e)

let test_ksm_guest_map_validations () =
  let c = mk_container () in
  let ksm = Cki.Container.ksm c in
  let root = Cki.Ksm.kernel_root ksm in
  let alloc_ptp = buddy_alloc c in
  let data = buddy_alloc c () in
  let user_rw = { Hw.Pte.default_flags with user = true; nx = true } in
  (* valid mapping *)
  expect_ok "valid map" (Cki.Ksm.guest_map ksm ~root ~va:0x40000000 ~pfn:data ~flags:user_rw ~alloc_ptp);
  (* mapping into the KSM VA range *)
  (match Cki.Ksm.guest_map ksm ~root ~va:Cki.Layout.ksm_base ~pfn:data ~flags:user_rw ~alloc_ptp with
  | Error (Cki.Ksm.Reserved_range _) -> ()
  | _ -> fail "KSM range must be reserved");
  (* mapping the per-vCPU constant address *)
  (match
     Cki.Ksm.guest_map ksm ~root ~va:Cki.Layout.pervcpu_base ~pfn:data ~flags:user_rw ~alloc_ptp
   with
  | Error (Cki.Ksm.Reserved_range _) -> ()
  | _ -> fail "per-vCPU range must be reserved");
  (* mapping a declared PTP *)
  let ptp = buddy_alloc c () in
  expect_ok "declare" (Cki.Ksm.declare_ptp ksm ~pfn:ptp ~level:1);
  (match Cki.Ksm.guest_map ksm ~root ~va:0x40002000 ~pfn:ptp ~flags:user_rw ~alloc_ptp with
  | Error (Cki.Ksm.Maps_declared_ptp _) -> ()
  | _ -> fail "mapping a PTP must be rejected");
  (* kernel-executable mapping after freeze *)
  (match
     Cki.Ksm.guest_map ksm ~root ~va:0x40003000 ~pfn:data
       ~flags:{ Hw.Pte.default_flags with user = false; nx = false }
       ~alloc_ptp
   with
  | Error (Cki.Ksm.Kernel_executable_mapping _) -> ()
  | _ -> fail "new kernel-exec mapping must be rejected");
  (* frame outside the delegated segments *)
  match Cki.Ksm.guest_map ksm ~root ~va:0x40004000 ~pfn:(foreign_frame c) ~flags:user_rw ~alloc_ptp with
  | Error (Cki.Ksm.Targets_monitor_memory _) -> ()
  | _ -> fail "foreign frame must be rejected"

let test_ksm_guest_map_walkable () =
  let c = mk_container () in
  let ksm = Cki.Container.ksm c in
  let root = Cki.Ksm.kernel_root ksm in
  let data = buddy_alloc c () in
  expect_ok "map"
    (Cki.Ksm.guest_map ksm ~root ~va:0x50000000 ~pfn:data
       ~flags:{ Hw.Pte.default_flags with user = true; nx = true }
       ~alloc_ptp:(buddy_alloc c));
  let mem = Hw.Machine.mem (Cki.Host.machine c.Cki.Container.host) in
  let pt = Hw.Page_table.of_root mem root in
  let w = Hw.Page_table.walk pt 0x50000000 in
  check_int "mapped to the guest frame" data (Hw.Pte.pfn w.Hw.Page_table.pte);
  (* unmap *)
  expect_ok "unmap" (Cki.Ksm.guest_unmap ksm ~root ~va:0x50000000);
  check_bool "gone" false (Hw.Page_table.is_mapped pt 0x50000000)

let test_ksm_intermediate_ptps_declared () =
  let c = mk_container () in
  let ksm = Cki.Container.ksm c in
  let root = Cki.Ksm.kernel_root ksm in
  let data = buddy_alloc c () in
  let allocated = ref [] in
  let alloc_ptp () =
    let f = Kernel_model.Buddy.alloc (Cki.Container.buddy c) in
    allocated := f :: !allocated;
    f
  in
  expect_ok "map"
    (Cki.Ksm.guest_map ksm ~root ~va:0x60000000 ~pfn:data
       ~flags:{ Hw.Pte.default_flags with user = true; nx = true }
       ~alloc_ptp);
  check_bool "intermediates were needed" true (List.length !allocated >= 1);
  List.iter
    (fun f -> check_bool "intermediate declared as PTP" true (Cki.Ksm.is_declared_ptp ksm f))
    !allocated

let test_ksm_declare_root_and_copies () =
  let c = mk_container () in
  let ksm = Cki.Container.ksm c in
  let root = buddy_alloc c () in
  expect_ok "declare_root" (Cki.Ksm.declare_root ksm ~pfn:root);
  match Cki.Ksm.root_copies ksm root with
  | None -> fail "no copies"
  | Some copies ->
      check_int "one copy per vCPU" Cki.Config.default.Cki.Config.vcpus (Array.length copies);
      let mem = Hw.Machine.mem (Cki.Host.machine c.Cki.Container.host) in
      (* each copy maps the KSM subtree and a *different* per-vCPU
         subtree at the constant VA *)
      let pervcpu_entries =
        Array.map
          (fun copy -> Hw.Phys_mem.read_entry mem ~pfn:copy ~index:Cki.Layout.l4_pervcpu)
          copies
      in
      check_bool "per-vCPU slots present" true
        (Array.for_all Hw.Pte.is_present pervcpu_entries);
      check_bool "per-vCPU slots differ" true
        (Array.length copies < 2 || pervcpu_entries.(0) <> pervcpu_entries.(1));
      let ksm_entries =
        Array.map (fun copy -> Hw.Phys_mem.read_entry mem ~pfn:copy ~index:Cki.Layout.l4_ksm) copies
      in
      check_bool "KSM subtree in every copy" true (Array.for_all Hw.Pte.is_present ksm_entries)

let test_ksm_top_level_propagation () =
  let c = mk_container () in
  let ksm = Cki.Container.ksm c in
  let root = buddy_alloc c () in
  expect_ok "declare_root" (Cki.Ksm.declare_root ksm ~pfn:root);
  let data = buddy_alloc c () in
  expect_ok "map"
    (Cki.Ksm.guest_map ksm ~root ~va:0x70000000 ~pfn:data
       ~flags:{ Hw.Pte.default_flags with user = true; nx = true }
       ~alloc_ptp:(buddy_alloc c));
  let mem = Hw.Machine.mem (Cki.Host.machine c.Cki.Container.host) in
  let idx = Hw.Addr.index_at_level ~lvl:4 0x70000000 in
  let original = Hw.Phys_mem.read_entry mem ~pfn:root ~index:idx in
  check_bool "L4 slot filled" true (Hw.Pte.is_present original);
  (match Cki.Ksm.root_copies ksm root with
  | Some copies ->
      Array.iter
        (fun copy ->
          check_bool "copy mirrors top-level write" true
            (Hw.Phys_mem.read_entry mem ~pfn:copy ~index:idx = original))
        copies
  | None -> fail "no copies");
  (* walking through a copy resolves the same data page *)
  match Cki.Ksm.load_cr3 ksm ~vcpu:0 ~root with
  | Ok copy ->
      let pt = Hw.Page_table.of_root mem copy in
      check_int "copy resolves mapping" data
        (Hw.Pte.pfn (Hw.Page_table.walk pt 0x70000000).Hw.Page_table.pte)
  | Error e -> fail (Cki.Ksm.show_error e)

let test_ksm_load_cr3_validation () =
  let c = mk_container () in
  let ksm = Cki.Container.ksm c in
  let rogue = buddy_alloc c () in
  (match Cki.Ksm.load_cr3 ksm ~vcpu:0 ~root:rogue with
  | Error (Cki.Ksm.Undeclared_root _) -> ()
  | _ -> fail "undeclared root must be rejected");
  (match Cki.Ksm.load_cr3 ksm ~vcpu:99 ~root:(Cki.Ksm.kernel_root ksm) with
  | Error (Cki.Ksm.Bad_vcpu _) -> ()
  | _ -> fail "bad vcpu must be rejected");
  match Cki.Ksm.load_cr3 ksm ~vcpu:1 ~root:(Cki.Ksm.kernel_root ksm) with
  | Ok copy -> check_bool "copy differs from original" true (copy <> Cki.Ksm.kernel_root ksm)
  | Error e -> fail (Cki.Ksm.show_error e)

let test_ksm_ad_propagation () =
  let c = mk_container () in
  let ksm = Cki.Container.ksm c in
  let root = buddy_alloc c () in
  expect_ok "declare_root" (Cki.Ksm.declare_root ksm ~pfn:root);
  let data = buddy_alloc c () in
  expect_ok "map"
    (Cki.Ksm.guest_map ksm ~root ~va:0x70000000 ~pfn:data
       ~flags:{ Hw.Pte.default_flags with user = true; nx = true }
       ~alloc_ptp:(buddy_alloc c));
  let mem = Hw.Machine.mem (Cki.Host.machine c.Cki.Container.host) in
  let idx = Hw.Addr.index_at_level ~lvl:4 0x70000000 in
  (* hardware sets A/D in the per-vCPU copy during a walk *)
  (match Cki.Ksm.root_copies ksm root with
  | Some copies ->
      let e = Hw.Phys_mem.read_entry mem ~pfn:copies.(1) ~index:idx in
      Hw.Phys_mem.write_entry mem ~pfn:copies.(1) ~index:idx (Hw.Pte.mark_dirty (Hw.Pte.mark_accessed e))
  | None -> fail "no copies");
  match Cki.Ksm.read_top_pte ksm ~root ~idx with
  | Ok e ->
      check_bool "A propagated" true (Hw.Pte.is_accessed e);
      check_bool "D propagated" true (Hw.Pte.is_dirty e)
  | Error e -> fail (Cki.Ksm.show_error e)

let test_ksm_release_root () =
  let c = mk_container () in
  let ksm = Cki.Container.ksm c in
  let buddy = Cki.Container.buddy c in
  let free_before = Kernel_model.Buddy.free_frames buddy in
  let root = Kernel_model.Buddy.alloc buddy in
  expect_ok "declare_root" (Cki.Ksm.declare_root ksm ~pfn:root);
  let data = Kernel_model.Buddy.alloc buddy in
  expect_ok "map"
    (Cki.Ksm.guest_map ksm ~root ~va:0x70000000 ~pfn:data
       ~flags:{ Hw.Pte.default_flags with user = true; nx = true }
       ~alloc_ptp:(fun () -> Kernel_model.Buddy.alloc buddy));
  expect_ok "release" (Cki.Ksm.release_root ksm ~root ~free_ptp:(Kernel_model.Buddy.free buddy));
  Kernel_model.Buddy.free buddy root;
  Kernel_model.Buddy.free buddy data;
  check_int "all guest frames recovered" free_before (Kernel_model.Buddy.free_frames buddy);
  match Cki.Ksm.load_cr3 ksm ~vcpu:0 ~root with
  | Error (Cki.Ksm.Undeclared_root _) -> ()
  | _ -> fail "released root must not be loadable"

let test_ksm_call_costs () =
  let c = mk_container () in
  let ksm = Cki.Container.ksm c in
  let clock = Hw.Machine.clock (Cki.Host.machine c.Cki.Container.host) in
  let calls0 = Cki.Ksm.ksm_call_count ksm in
  let t0 = Hw.Clock.now clock in
  Cki.Ksm.iret ksm;
  check_int "one call" (calls0 + 1) (Cki.Ksm.ksm_call_count ksm);
  check_bool "charged 38.5ns" true (Hw.Clock.now clock -. t0 = Hw.Cost.ksm_call)

(* QCheck: after arbitrary *valid* mapping activity, no user-reachable
   leaf PTE ever maps a declared PTP or KSM memory. *)
let prop_ksm_isolation_invariant =
  QCheck.Test.make ~name:"KSM invariant: no leaf maps a PTP or monitor memory" ~count:20
    QCheck.(small_list (pair (int_bound 4095) bool))
    (fun ops ->
      let c = mk_container () in
      let ksm = Cki.Container.ksm c in
      let root = Cki.Ksm.kernel_root ksm in
      let buddy = Cki.Container.buddy c in
      List.iter
        (fun (slot, write) ->
          let va = 0x40000000 + (slot * 4096) in
          if write then begin
            let data = Kernel_model.Buddy.alloc buddy in
            match
              Cki.Ksm.guest_map ksm ~root ~va ~pfn:data
                ~flags:{ Hw.Pte.default_flags with user = true; nx = true }
                ~alloc_ptp:(fun () -> Kernel_model.Buddy.alloc buddy)
            with
            | Ok () -> ()
            | Error e -> failwith (Cki.Ksm.show_error e)
          end
          else ignore (Cki.Ksm.guest_unmap ksm ~root ~va))
        ops;
      let mem = Hw.Machine.mem (Cki.Host.machine c.Cki.Container.host) in
      let pt = Hw.Page_table.of_root mem root in
      Hw.Page_table.fold_leaves pt
        (fun acc ~va ~pte ~level:_ ->
          acc
          &&
          if va < Cki.Layout.user_top || Cki.Layout.in_direct_map va then
            let pfn = Hw.Pte.pfn pte in
            (not (Cki.Ksm.is_declared_ptp ksm pfn && va < Cki.Layout.user_top))
            && (match Hw.Phys_mem.owner mem pfn with
               | Hw.Phys_mem.Ksm _ -> false
               | Hw.Phys_mem.Host | Hw.Phys_mem.Free | Hw.Phys_mem.Container _ -> true)
          else true)
        true)

(* ------------------------------ Gates ----------------------------- *)

let test_gate_ksm_call_roundtrip () =
  let c = mk_container () in
  let cpu = Cki.Container.cpu c 0 in
  Cki.Container.enter_guest_kernel cpu;
  let gates = Cki.Container.gates c in
  (match Cki.Gates.ksm_call gates cpu ~vcpu:0 (fun () -> 42) with
  | Ok v -> check_int "handler result" 42 v
  | Error e -> fail (Cki.Gates.show_error e));
  check_int "guest rights restored" Hw.Pks.pkrs_guest cpu.Hw.Cpu.pkrs

let test_gate_tamper_detection () =
  let c = mk_container () in
  let cpu = Cki.Container.cpu c 0 in
  Cki.Container.enter_guest_kernel cpu;
  let gates = Cki.Container.gates c in
  (match Cki.Gates.ksm_call gates cpu ~vcpu:0 ~tamper_exit:Hw.Pks.all_access (fun () -> ()) with
  | Error Cki.Gates.Pkrs_tamper_detected -> ()
  | _ -> fail "exit tamper must be detected");
  check_int "abort restores guest rights" Hw.Pks.pkrs_guest cpu.Hw.Cpu.pkrs;
  check_bool "counted" true (Cki.Gates.tampers_blocked gates >= 1)

let test_gate_hypercall_context () =
  let c = mk_container () in
  let cpu = Cki.Container.cpu c 0 in
  Cki.Container.enter_guest_kernel cpu;
  let guest_cr3 = cpu.Hw.Cpu.cr3 in
  let gates = Cki.Container.gates c in
  let host_saw = ref None in
  (match
     Cki.Gates.hypercall gates cpu ~vcpu:0 ~request:Kernel_model.Platform.Timer (fun k ->
         host_saw := Some k;
         (* While the host runs, the CPU is in the host address space. *)
         check_bool "host cr3 active" true (cpu.Hw.Cpu.cr3 <> guest_cr3))
   with
  | Ok () -> ()
  | Error e -> fail (Cki.Gates.show_error e));
  check_bool "request delivered" true (!host_saw = Some Kernel_model.Platform.Timer);
  check_int "guest cr3 restored" guest_cr3 cpu.Hw.Cpu.cr3;
  check_int "guest rights restored" Hw.Pks.pkrs_guest cpu.Hw.Cpu.pkrs

let test_gate_interrupt_hardware_vs_forged () =
  let c = mk_container () in
  let cpu = Cki.Container.cpu c 0 in
  Cki.Container.enter_guest_kernel cpu;
  let gates = Cki.Container.gates c in
  let handled = ref 0 in
  (match
     Cki.Gates.interrupt gates cpu ~vcpu:0 ~vector:Hw.Idt.vec_timer ~kind:Hw.Idt.Hardware
       (fun _ -> incr handled)
   with
  | Ok () -> ()
  | Error e -> fail (Cki.Gates.show_error e));
  check_int "handled" 1 !handled;
  check_int "PKRS restored after iret" Hw.Pks.pkrs_guest cpu.Hw.Cpu.pkrs;
  (* forged (software) entry *)
  Cki.Container.enter_guest_kernel cpu;
  (match
     Cki.Gates.interrupt gates cpu ~vcpu:0 ~vector:Hw.Idt.vec_timer ~kind:Hw.Idt.Software
       (fun _ -> incr handled)
   with
  | Error Cki.Gates.Forgery_detected -> ()
  | _ -> fail "forged interrupt must be detected");
  check_int "host handler never ran" 1 !handled;
  check_bool "counted" true (Cki.Gates.forged_blocked gates >= 1)

let test_pervcpu_stack_discipline () =
  let c = mk_container () in
  let area = Cki.Pervcpu.area (Cki.Ksm.pervcpu (Cki.Container.ksm c)) 0 in
  Cki.Pervcpu.push_stack area;
  Cki.Pervcpu.push_stack area;
  Cki.Pervcpu.pop_stack area;
  Cki.Pervcpu.pop_stack area;
  check_raises "underflow" (Failure "Pervcpu: secure stack underflow") (fun () ->
      Cki.Pervcpu.pop_stack area)

(* ---------------------------- Container --------------------------- *)

let test_container_microbench () =
  let c = mk_container () in
  let b = Cki.Container.backend c in
  let task = Virt.Backend.spawn b in
  let getpid =
    Virt.Backend.mean_latency b ~n:200 (fun () ->
        ignore (Virt.Backend.syscall_exn b task Kernel_model.Syscall.Getpid))
  in
  check_bool "getpid = 90ns" true (Float.abs (getpid -. 90.0) < 2.0);
  let base =
    match
      Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Mmap { pages = 256; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> fail "mmap"
  in
  let _, ns =
    Hw.Clock.timed b.Virt.Backend.clock (fun () ->
        ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages:256 ~write:true))
  in
  check_bool "pgfault = 1067ns" true (Float.abs ((ns /. 256.0) -. 1067.0) < 25.0);
  let t0 = Hw.Clock.now b.Virt.Backend.clock in
  b.Virt.Backend.empty_hypercall ();
  check_bool "hypercall = 390ns" true
    (Float.abs (Hw.Clock.now b.Virt.Backend.clock -. t0 -. 390.0) < 1.0)

let test_container_ablations () =
  let getpid cfg =
    let b = Cki.Container.backend (mk_container ~cfg ()) in
    let task = Virt.Backend.spawn b in
    Virt.Backend.mean_latency b ~n:100 (fun () ->
        ignore (Virt.Backend.syscall_exn b task Kernel_model.Syscall.Getpid))
  in
  check_bool "wo-OPT2 = 238ns" true (Float.abs (getpid Cki.Config.wo_opt2 -. 238.0) < 2.0);
  check_bool "wo-OPT3 = 153ns" true (Float.abs (getpid Cki.Config.wo_opt3 -. 153.0) < 2.0)

let test_container_fault_charges_two_ksm_calls () =
  let c = mk_container () in
  let b = Cki.Container.backend c in
  let task = Virt.Backend.spawn b in
  let ksm = Cki.Container.ksm c in
  let base =
    match
      Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Mmap { pages = 1; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> fail "mmap"
  in
  (* Warm the intermediate tables with a first fault in the same region. *)
  Kernel_model.Mm.touch task.Kernel_model.Task.mm base ~write:true;
  let base2 =
    match
      Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Mmap { pages = 1; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> fail "mmap"
  in
  let calls0 = Cki.Ksm.ksm_call_count ksm in
  Kernel_model.Mm.touch task.Kernel_model.Task.mm base2 ~write:true;
  (* PTE update + iret = exactly 2 KSM calls = the paper's 77 ns *)
  check_int "2 KSM calls per steady-state fault" (calls0 + 2) (Cki.Ksm.ksm_call_count ksm)

let test_container_aspace_lifecycle () =
  let c = mk_container () in
  let b = Cki.Container.backend c in
  let buddy = Cki.Container.buddy c in
  let free0 = Kernel_model.Buddy.free_frames buddy in
  let task = Virt.Backend.spawn b in
  let base =
    match
      Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Mmap { pages = 32; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> fail "mmap"
  in
  ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages:32 ~write:true);
  ignore (Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Exit 0));
  check_int "exit returns every guest frame" free0 (Kernel_model.Buddy.free_frames buddy)

let test_container_pti_ablation_costs_more () =
  let fault_cost cfg =
    let c = mk_container ~cfg () in
    let b = Cki.Container.backend c in
    let task = Virt.Backend.spawn b in
    let base =
      match
        Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Mmap { pages = 64; prot = Kernel_model.Vma.prot_rw })
      with
      | Kernel_model.Syscall.Rint v -> v
      | _ -> fail "mmap"
    in
    let _, ns =
      Hw.Clock.timed b.Virt.Backend.clock (fun () ->
          ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages:64 ~write:true))
    in
    ns /. 64.0
  in
  let without = fault_cost Cki.Config.default in
  let with_pti = fault_cost { Cki.Config.default with Cki.Config.pti_in_gates = true } in
  check_bool "eliding PTI/IBRS in gates saves time" true (with_pti > without +. 200.0)

let test_two_containers_isolated_segments () =
  let machine = Hw.Machine.create ~cpus:2 ~mem_mib:128 () in
  let host = Cki.Host.create machine in
  let cfg = { Cki.Config.default with Cki.Config.segment_frames = 2048 } in
  let c1 = Cki.Container.create ~cfg host in
  let c2 = Cki.Container.create ~cfg host in
  check_bool "distinct ids" true (Cki.Container.container_id c1 <> Cki.Container.container_id c2);
  check_bool "distinct pcids" true (Cki.Container.pcid c1 <> Cki.Container.pcid c2);
  let d1 = Cki.Host.delegations_of host ~container:(Cki.Container.container_id c1) in
  let d2 = Cki.Host.delegations_of host ~container:(Cki.Container.container_id c2) in
  check_int "one segment each" 1 (List.length d1);
  (* segments must not overlap *)
  match (d1, d2) with
  | [ s1 ], [ s2 ] ->
      let open Cki.Host in
      check_bool "disjoint" true
        (s1.base + s1.frames <= s2.base || s2.base + s2.frames <= s1.base)
  | _ -> fail "unexpected delegations"

(* ----------------------------- Attacks ---------------------------- *)

let test_all_attacks_blocked () =
  let c = mk_container () in
  List.iter
    (fun (name, outcome) -> check_bool name true (Cki.Attacks.is_blocked outcome))
    (Cki.Attacks.all c)

let suite =
  [
    ( "cki/ksm",
      [
        test_case "declare/undeclare PTP" `Quick test_ksm_declare_ptp;
        test_case "foreign frame rejected" `Quick test_ksm_declare_foreign_frame;
        test_case "PTP read-only via pkey (I2)" `Quick test_ksm_ptp_readonly_in_direct_map;
        test_case "guest_map validations" `Quick test_ksm_guest_map_validations;
        test_case "guest_map walkable + unmap" `Quick test_ksm_guest_map_walkable;
        test_case "intermediate PTPs declared (I1)" `Quick test_ksm_intermediate_ptps_declared;
        test_case "declare_root builds per-vCPU copies" `Quick test_ksm_declare_root_and_copies;
        test_case "top-level writes propagate to copies" `Quick test_ksm_top_level_propagation;
        test_case "CR3 validation (I3)" `Quick test_ksm_load_cr3_validation;
        test_case "A/D propagation from copies" `Quick test_ksm_ad_propagation;
        test_case "release_root recovers frames" `Quick test_ksm_release_root;
        test_case "KSM call cost accounting" `Quick test_ksm_call_costs;
        QCheck_alcotest.to_alcotest prop_ksm_isolation_invariant;
      ] );
    ( "cki/gates",
      [
        test_case "KSM call gate roundtrip" `Quick test_gate_ksm_call_roundtrip;
        test_case "PKRS tamper detection" `Quick test_gate_tamper_detection;
        test_case "hypercall context switch" `Quick test_gate_hypercall_context;
        test_case "interrupt: hardware ok, forged blocked" `Quick test_gate_interrupt_hardware_vs_forged;
        test_case "per-vCPU secure stack discipline" `Quick test_pervcpu_stack_discipline;
      ] );
    ( "cki/container",
      [
        test_case "microbench anchors (90/1067/390)" `Quick test_container_microbench;
        test_case "OPT2/OPT3 ablations (238/153)" `Quick test_container_ablations;
        test_case "2 KSM calls per fault" `Quick test_container_fault_charges_two_ksm_calls;
        test_case "address-space lifecycle" `Quick test_container_aspace_lifecycle;
        test_case "PTI-in-gates ablation" `Quick test_container_pti_ablation_costs_more;
        test_case "two containers, disjoint segments" `Quick test_two_containers_isolated_segments;
      ] );
    ("cki/attacks", [ test_case "all attacks blocked" `Quick test_all_attacks_blocked ]);
  ]
