(* Parameterized suites: one alcotest case per Table 3 instruction, per
   attack scenario, and per SQLite pattern, so a regression pinpoints
   the exact row that broke. *)

open Alcotest

(* One case per privileged instruction: the simulated CPU's observed
   behaviour in guest context must match the Table 3 policy, and the
   KSM/hypercall replacement must exist for blocked rows. *)
let table3_cases =
  List.map
    (fun inst ->
      test_case (Hw.Priv.mnemonic inst ^ " policy row") `Quick (fun () ->
          let cpu = Hw.Cpu.create (Hw.Clock.create ()) in
          cpu.Hw.Cpu.mode <- Hw.Cpu.Kernel;
          cpu.Hw.Cpu.pkrs <- Hw.Pks.pkrs_guest;
          let observed_blocked =
            match Hw.Cpu.exec_priv cpu inst with
            | Error (Hw.Cpu.Blocked_instruction _) -> true
            | Ok () -> false
            | Error e -> fail (Hw.Cpu.show_fault e)
          in
          check bool "observed = policy" (Hw.Priv.blocked_in_guest inst) observed_blocked;
          if observed_blocked then
            check bool "blocked row has a virtualization" true
              (Hw.Priv.virtualized_as inst <> Hw.Priv.Native)))
    Hw.Priv.all_examples

(* One case per attack scenario. *)
let attack_cases =
  let c = lazy (Cki.Container.create_standalone ~mem_mib:192 ()) in
  List.map
    (fun (name, attack) ->
      test_case ("attack: " ^ name) `Quick (fun () ->
          let c = Lazy.force c in
          check bool "blocked" true (Cki.Attacks.is_blocked (attack c))))
    [
      ("lidt", fun c -> Cki.Attacks.attempt_priv_instruction c Hw.Priv.Lidt);
      ("lgdt", fun c -> Cki.Attacks.attempt_priv_instruction c Hw.Priv.Lgdt);
      ("ltr", fun c -> Cki.Attacks.attempt_priv_instruction c Hw.Priv.Ltr);
      ("rdmsr", fun c -> Cki.Attacks.attempt_priv_instruction c (Hw.Priv.Rdmsr 0x10));
      ("wrmsr", fun c -> Cki.Attacks.attempt_priv_instruction c (Hw.Priv.Wrmsr 0x10));
      ("mov cr0", fun c -> Cki.Attacks.attempt_priv_instruction c Hw.Priv.Mov_to_cr0);
      ("mov cr3", fun c -> Cki.Attacks.attempt_priv_instruction c Hw.Priv.Mov_to_cr3);
      ("mov cr4", fun c -> Cki.Attacks.attempt_priv_instruction c Hw.Priv.Mov_to_cr4);
      ("invpcid", fun c -> Cki.Attacks.attempt_priv_instruction c Hw.Priv.Invpcid);
      ("iret", fun c -> Cki.Attacks.attempt_priv_instruction c Hw.Priv.Iret);
      ("sti", fun c -> Cki.Attacks.attempt_priv_instruction c Hw.Priv.Sti);
      ("cli", fun c -> Cki.Attacks.attempt_priv_instruction c Hw.Priv.Cli);
      ("popf", fun c -> Cki.Attacks.attempt_priv_instruction c Hw.Priv.Popf);
      ("in", fun c -> Cki.Attacks.attempt_priv_instruction c (Hw.Priv.In_port 0x60));
      ("out", fun c -> Cki.Attacks.attempt_priv_instruction c (Hw.Priv.Out_port 0x60));
      ("smsw", fun c -> Cki.Attacks.attempt_priv_instruction c Hw.Priv.Smsw);
      ("ptp write", Cki.Attacks.attempt_ptp_write);
      ("map KSM", Cki.Attacks.attempt_map_ksm_memory);
      ("map PTP writable", Cki.Attacks.attempt_map_ptp_writable);
      ("kernel-exec mapping", Cki.Attacks.attempt_kernel_exec_mapping);
      ("CR3 hijack", Cki.Attacks.attempt_cr3_hijack);
      ("gate PKRS tamper", Cki.Attacks.attempt_gate_pkrs_tamper);
      ("interrupt forgery", Cki.Attacks.attempt_interrupt_forgery);
      ("interrupt monopolize", Cki.Attacks.attempt_interrupt_monopolize);
      ("IDT rewrite", Cki.Attacks.attempt_idt_rewrite);
      ("cross-TLB flush", fun c -> Cki.Attacks.attempt_cross_container_tlb_flush c ~victim_pcid:77);
      ("per-vCPU read", Cki.Attacks.attempt_pervcpu_read);
    ]

(* One case per SQLite pattern: CKI within 3% of RunC on all seven
   (native syscalls + tmpfs = no virtualization tax anywhere). *)
let sqlite_cases =
  List.map
    (fun p ->
      test_case ("sqlite " ^ Workloads.Sqlite.pattern_name p ^ ": CKI ~ RunC") `Slow (fun () ->
          let ops = 400 in
          let runc = Virt.Runc.create (Hw.Machine.create ~mem_mib:128 ()) in
          let cki = Cki.Container.backend (Cki.Container.create_standalone ~mem_mib:192 ()) in
          let r = (Workloads.Sqlite.run_pattern runc p ~ops).Workloads.Sqlite.ops_per_sec in
          let c = (Workloads.Sqlite.run_pattern cki p ~ops).Workloads.Sqlite.ops_per_sec in
          check bool "within 3%" true (Float.abs (1.0 -. (c /. r)) < 0.03)))
    Workloads.Sqlite.all_patterns

(* One case per lmbench op asserting the Figure 11 worst-case is PVM. *)
let lmbench_cases =
  let suites =
    lazy
      (let runc = Workloads.Lmbench.run_suite ~iters:30 (Virt.Runc.create (Hw.Machine.create ~mem_mib:128 ())) in
       let pvm = Workloads.Lmbench.run_suite ~iters:30 (Virt.Pvm.create (Hw.Machine.create ~mem_mib:128 ())) in
       (runc, pvm))
  in
  List.map
    (fun op ->
      test_case ("lmbench " ^ Workloads.Lmbench.op_name op ^ ": PVM slowest") `Slow (fun () ->
          let runc, pvm = Lazy.force suites in
          check bool "PVM >= RunC" true (List.assoc op pvm >= List.assoc op runc)))
    Workloads.Lmbench.all_ops

let suite =
  [
    ("param/table3", table3_cases);
    ("param/attacks", attack_cases);
    ("param/sqlite", sqlite_cases);
    ("param/lmbench", lmbench_cases);
  ]
