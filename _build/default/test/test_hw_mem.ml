(* Tests for Hw: addresses, PTEs, physical memory, page tables. *)

open Alcotest

let check_int = check int
let check_bool = check bool

(* ------------------------------ Addr ------------------------------ *)

let test_page_alignment () =
  check_int "align_down" 0x2000 (Hw.Addr.page_align_down 0x2abc);
  check_int "align_up" 0x3000 (Hw.Addr.page_align_up 0x2abc);
  check_int "align_up exact" 0x2000 (Hw.Addr.page_align_up 0x2000);
  check_bool "aligned" true (Hw.Addr.is_page_aligned 0x4000);
  check_bool "unaligned" false (Hw.Addr.is_page_aligned 0x4001)

let test_pfn_roundtrip () =
  check_int "pfn" 5 (Hw.Addr.pfn_of_pa (5 * 4096));
  check_int "pa" (7 * 4096) (Hw.Addr.pa_of_pfn 7);
  check_int "offset" 0xabc (Hw.Addr.page_offset 0x2abc)

let test_index_at_level () =
  (* va = idx4<<39 | idx3<<30 | idx2<<21 | idx1<<12 *)
  let va = (3 lsl 39) lor (5 lsl 30) lor (7 lsl 21) lor (11 lsl 12) lor 0x123 in
  check_int "l4" 3 (Hw.Addr.index_at_level ~lvl:4 va);
  check_int "l3" 5 (Hw.Addr.index_at_level ~lvl:3 va);
  check_int "l2" 7 (Hw.Addr.index_at_level ~lvl:2 va);
  check_int "l1" 11 (Hw.Addr.index_at_level ~lvl:1 va);
  check_raises "bad level" (Invalid_argument "Addr.index_at_level") (fun () ->
      ignore (Hw.Addr.index_at_level ~lvl:5 va))

let test_pages_of_bytes () =
  check_int "zero" 0 (Hw.Addr.pages_of_bytes 0);
  check_int "one byte" 1 (Hw.Addr.pages_of_bytes 1);
  check_int "exact" 2 (Hw.Addr.pages_of_bytes 8192);
  check_int "over" 3 (Hw.Addr.pages_of_bytes 8193)

(* ------------------------------ Pte ------------------------------- *)

let test_pte_roundtrip () =
  let flags = { Hw.Pte.writable = true; user = true; nx = true; huge = false; pkey = 5 } in
  let e = Hw.Pte.make ~pfn:1234 ~flags in
  check_bool "present" true (Hw.Pte.is_present e);
  check_int "pfn" 1234 (Hw.Pte.pfn e);
  check_int "pkey" 5 (Hw.Pte.pkey e);
  check_bool "w" true (Hw.Pte.is_writable e);
  check_bool "u" true (Hw.Pte.is_user e);
  check_bool "nx" true (Hw.Pte.is_nx e);
  check_bool "huge" false (Hw.Pte.is_huge e)

let test_pte_empty_and_bits () =
  check_bool "empty not present" false (Hw.Pte.is_present Hw.Pte.empty);
  let e = Hw.Pte.make ~pfn:1 ~flags:Hw.Pte.default_flags in
  let e = Hw.Pte.mark_accessed e in
  let e = Hw.Pte.mark_dirty e in
  check_bool "A" true (Hw.Pte.is_accessed e);
  check_bool "D" true (Hw.Pte.is_dirty e);
  let e = Hw.Pte.clear_accessed_dirty e in
  check_bool "A cleared" false (Hw.Pte.is_accessed e);
  check_bool "D cleared" false (Hw.Pte.is_dirty e)

let test_pte_with_pkey () =
  let e = Hw.Pte.make ~pfn:42 ~flags:Hw.Pte.default_flags in
  let e = Hw.Pte.with_pkey e 9 in
  check_int "pkey updated" 9 (Hw.Pte.pkey e);
  check_int "pfn preserved" 42 (Hw.Pte.pfn e);
  check_raises "pkey range" (Invalid_argument "Pte.with_pkey") (fun () ->
      ignore (Hw.Pte.with_pkey e 16))

let test_pte_bad_args () =
  check_raises "pfn range" (Invalid_argument "Pte.make: pfn out of range") (fun () ->
      ignore (Hw.Pte.make ~pfn:(-1) ~flags:Hw.Pte.default_flags));
  check_raises "pkey range" (Invalid_argument "Pte.make: pkey out of range") (fun () ->
      ignore (Hw.Pte.make ~pfn:1 ~flags:{ Hw.Pte.default_flags with pkey = 16 }))

let prop_pte_roundtrip =
  QCheck.Test.make ~name:"pte encode/decode roundtrip" ~count:500
    QCheck.(quad (int_bound 100000) bool bool (int_bound 15))
    (fun (pfn, w, u, pkey) ->
      let flags = { Hw.Pte.writable = w; user = u; nx = false; huge = false; pkey } in
      let e = Hw.Pte.make ~pfn ~flags in
      Hw.Pte.pfn e = pfn && Hw.Pte.flags_of e = flags)

(* ---------------------------- Phys_mem ---------------------------- *)

let test_phys_alloc_free () =
  let m = Hw.Phys_mem.create ~frames:64 in
  let a = Hw.Phys_mem.alloc m ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data in
  let b = Hw.Phys_mem.alloc m ~owner:(Hw.Phys_mem.Container 1) ~kind:Hw.Phys_mem.Data in
  check_bool "distinct" true (a <> b);
  check_bool "owner a" true (Hw.Phys_mem.owner m a = Hw.Phys_mem.Host);
  check_bool "owner b" true (Hw.Phys_mem.owner m b = Hw.Phys_mem.Container 1);
  check_int "free count" 62 (Hw.Phys_mem.free_frames m);
  Hw.Phys_mem.free m a;
  check_int "free count after" 63 (Hw.Phys_mem.free_frames m);
  check_raises "double free" (Invalid_argument "Phys_mem.free: double free") (fun () ->
      Hw.Phys_mem.free m a)

let test_phys_contiguous () =
  let m = Hw.Phys_mem.create ~frames:32 in
  let base = Hw.Phys_mem.alloc_contiguous m ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data ~count:8 in
  for i = base to base + 7 do
    check_bool "owned" true (Hw.Phys_mem.owner m i = Hw.Phys_mem.Host)
  done;
  (* Fragment: free middle, ask for a larger run. *)
  Hw.Phys_mem.free m (base + 3);
  let base2 = Hw.Phys_mem.alloc_contiguous m ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data ~count:16 in
  check_bool "skips fragmented hole" true (base2 >= base + 8)

let test_phys_oom () =
  let m = Hw.Phys_mem.create ~frames:4 in
  for _ = 1 to 4 do
    ignore (Hw.Phys_mem.alloc m ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data)
  done;
  check_raises "oom" Hw.Phys_mem.Out_of_memory (fun () ->
      ignore (Hw.Phys_mem.alloc m ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data));
  check_raises "contig oom" Hw.Phys_mem.Out_of_memory (fun () ->
      ignore (Hw.Phys_mem.alloc_contiguous m ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data ~count:2))

let test_phys_table_entries () =
  let m = Hw.Phys_mem.create ~frames:8 in
  let f = Hw.Phys_mem.alloc m ~owner:Hw.Phys_mem.Host ~kind:(Hw.Phys_mem.Page_table 1) in
  Hw.Phys_mem.write_entry m ~pfn:f ~index:5 42L;
  check_bool "read back" true (Hw.Phys_mem.read_entry m ~pfn:f ~index:5 = 42L);
  check_bool "other slot zero" true (Hw.Phys_mem.read_entry m ~pfn:f ~index:6 = 0L);
  Hw.Phys_mem.clear_table m f;
  check_bool "cleared" true (Hw.Phys_mem.read_entry m ~pfn:f ~index:5 = 0L);
  check_raises "bad index" (Invalid_argument "Phys_mem.read_entry") (fun () ->
      ignore (Hw.Phys_mem.read_entry m ~pfn:f ~index:512))

let test_phys_refcount () =
  let m = Hw.Phys_mem.create ~frames:8 in
  let f = Hw.Phys_mem.alloc m ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data in
  Hw.Phys_mem.incr_ref m f;
  Hw.Phys_mem.incr_ref m f;
  check_int "refcount" 2 (Hw.Phys_mem.refcount m f);
  Hw.Phys_mem.decr_ref m f;
  check_int "refcount down" 1 (Hw.Phys_mem.refcount m f);
  Hw.Phys_mem.decr_ref m f;
  check_raises "underflow" (Invalid_argument "Phys_mem.decr_ref: refcount underflow") (fun () ->
      Hw.Phys_mem.decr_ref m f)

(* --------------------------- Page_table --------------------------- *)

let mk_pt () =
  let m = Hw.Phys_mem.create ~frames:4096 in
  (m, Hw.Page_table.create m ~owner:Hw.Phys_mem.Host)

let test_map_walk () =
  let _, pt = mk_pt () in
  ignore (Hw.Page_table.map pt ~va:0x1234000 ~pfn:77 ~flags:Hw.Pte.default_flags ());
  let w = Hw.Page_table.walk pt 0x1234567 in
  check_int "pfn" 77 (Hw.Pte.pfn w.Hw.Page_table.pte);
  check_int "leaf level" 1 w.Hw.Page_table.leaf_level;
  check_int "refs = 4 levels" 4 w.Hw.Page_table.refs;
  check_int "translate" ((77 * 4096) lor 0x567) (Hw.Page_table.translate pt 0x1234567)

let test_walk_fault () =
  let _, pt = mk_pt () in
  check_bool "unmapped" false (Hw.Page_table.is_mapped pt 0x9999000);
  (match Hw.Page_table.walk pt 0x9999000 with
  | exception Hw.Page_table.Translation_fault { va; _ } -> check_int "fault va" 0x9999000 va
  | _ -> fail "expected fault");
  ignore (Hw.Page_table.map pt ~va:0x9999000 ~pfn:1 ~flags:Hw.Pte.default_flags ());
  check_bool "mapped now" true (Hw.Page_table.is_mapped pt 0x9999000)

let test_unmap_update () =
  let _, pt = mk_pt () in
  ignore (Hw.Page_table.map pt ~va:0x4000 ~pfn:9 ~flags:Hw.Pte.default_flags ());
  Hw.Page_table.update pt 0x4000 (fun e -> Hw.Pte.with_writable e false);
  let w = Hw.Page_table.walk pt 0x4000 in
  check_bool "read-only now" false (Hw.Pte.is_writable w.Hw.Page_table.pte);
  let old = Hw.Page_table.unmap pt 0x4000 in
  check_int "unmapped pfn" 9 (Hw.Pte.pfn old);
  check_bool "gone" false (Hw.Page_table.is_mapped pt 0x4000);
  check_bool "unmap idempotent" true (Hw.Page_table.unmap pt 0x4000 = Hw.Pte.empty)

let test_huge_map () =
  let _, pt = mk_pt () in
  let va = 0x4000_0000 in
  ignore (Hw.Page_table.map_huge pt ~va ~pfn:512 ~flags:Hw.Pte.default_flags ());
  let w = Hw.Page_table.walk pt (va + 0x12345) in
  check_int "huge leaf level" 2 w.Hw.Page_table.leaf_level;
  check_int "refs = 3" 3 w.Hw.Page_table.refs;
  check_int "translate inside huge" ((512 * 4096) lor 0x12345) (Hw.Page_table.translate pt (va + 0x12345));
  check_raises "unaligned huge" (Invalid_argument "Page_table.map_huge: va not 2 MiB aligned")
    (fun () -> ignore (Hw.Page_table.map_huge pt ~va:0x1000 ~pfn:0 ~flags:Hw.Pte.default_flags ()))

let test_accessed_dirty () =
  let _, pt = mk_pt () in
  ignore (Hw.Page_table.map pt ~va:0x7000 ~pfn:3 ~flags:Hw.Pte.default_flags ());
  Hw.Page_table.set_accessed_dirty pt 0x7000 ~write:true;
  let w = Hw.Page_table.walk pt 0x7000 in
  check_bool "A" true (Hw.Pte.is_accessed w.Hw.Page_table.pte);
  check_bool "D" true (Hw.Pte.is_dirty w.Hw.Page_table.pte)

let test_count_mappings () =
  let _, pt = mk_pt () in
  for i = 0 to 9 do
    ignore (Hw.Page_table.map pt ~va:(0x10000 + (i * 4096)) ~pfn:i ~flags:Hw.Pte.default_flags ())
  done;
  check_int "count" 10 (Hw.Page_table.count_mappings pt);
  ignore (Hw.Page_table.unmap pt 0x10000);
  check_int "count after unmap" 9 (Hw.Page_table.count_mappings pt)

let prop_map_then_walk =
  QCheck.Test.make ~name:"random map set: walk agrees with mapping" ~count:50
    QCheck.(small_list (pair (int_bound 0xFFFF) (int_bound 3000)))
    (fun pairs ->
      let _, pt = mk_pt () in
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (vpn, pfn) ->
          let va = vpn * 4096 in
          ignore (Hw.Page_table.map pt ~va ~pfn ~flags:Hw.Pte.default_flags ());
          Hashtbl.replace tbl va pfn)
        pairs;
      Hashtbl.fold
        (fun va pfn acc ->
          acc && Hw.Pte.pfn (Hw.Page_table.walk pt va).Hw.Page_table.pte = pfn)
        tbl true)

let suite =
  [
    ( "hw/addr",
      [
        test_case "page alignment" `Quick test_page_alignment;
        test_case "pfn roundtrip" `Quick test_pfn_roundtrip;
        test_case "index at level" `Quick test_index_at_level;
        test_case "pages of bytes" `Quick test_pages_of_bytes;
      ] );
    ( "hw/pte",
      [
        test_case "roundtrip" `Quick test_pte_roundtrip;
        test_case "empty + A/D bits" `Quick test_pte_empty_and_bits;
        test_case "with_pkey" `Quick test_pte_with_pkey;
        test_case "bad args" `Quick test_pte_bad_args;
        QCheck_alcotest.to_alcotest prop_pte_roundtrip;
      ] );
    ( "hw/phys_mem",
      [
        test_case "alloc/free" `Quick test_phys_alloc_free;
        test_case "contiguous + fragmentation" `Quick test_phys_contiguous;
        test_case "out of memory" `Quick test_phys_oom;
        test_case "table entries" `Quick test_phys_table_entries;
        test_case "refcount" `Quick test_phys_refcount;
      ] );
    ( "hw/page_table",
      [
        test_case "map + walk + translate" `Quick test_map_walk;
        test_case "translation fault" `Quick test_walk_fault;
        test_case "unmap + update" `Quick test_unmap_update;
        test_case "2 MiB huge mappings" `Quick test_huge_map;
        test_case "accessed/dirty" `Quick test_accessed_dirty;
        test_case "count mappings" `Quick test_count_mappings;
        QCheck_alcotest.to_alcotest prop_map_then_walk;
      ] );
  ]
