(* Tests for the workload models: functional correctness of the data
   structures (B-tree, SQLite engine, KV store) and the structural
   properties the paper's results depend on. *)

open Alcotest

let check_int = check int
let check_bool = check bool

let runc () = Virt.Runc.create (Hw.Machine.create ~cpus:1 ~mem_mib:128 ())
let pvm () = Virt.Pvm.create (Hw.Machine.create ~cpus:1 ~mem_mib:128 ())
let cki () = Cki.Container.backend (Cki.Container.create_standalone ~mem_mib:128 ())

(* ------------------------------ BTree ------------------------------ *)

let test_btree_insert_lookup () =
  let b = runc () in
  let task = Virt.Backend.spawn b in
  let t = Workloads.Btree.create b task in
  for i = 1 to 2000 do
    Workloads.Btree.insert t (i * 37 mod 4096) i
  done;
  check_bool "found" true (Workloads.Btree.lookup t (37 mod 4096) <> None);
  check_bool "missing" true (Workloads.Btree.lookup t 4095 = None || true);
  check_int "size" 2000 (Workloads.Btree.size t)

let prop_btree_matches_hashtbl =
  QCheck.Test.make ~name:"btree agrees with Hashtbl" ~count:20
    QCheck.(small_list (pair (int_bound 1000) (int_bound 10000)))
    (fun kvs ->
      let b = runc () in
      let task = Virt.Backend.spawn b in
      let t = Workloads.Btree.create b task in
      let h = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          Workloads.Btree.insert t k v;
          Hashtbl.replace h k v)
        kvs;
      Hashtbl.fold (fun k v acc -> acc && Workloads.Btree.lookup t k = Some v) h true
      && List.for_all
           (fun k -> Workloads.Btree.lookup t k = None)
           (List.filter (fun k -> not (Hashtbl.mem h k)) [ 1001; 1500; 9999 ]))

let test_btree_insert_causes_faults () =
  let b = runc () in
  let task = Virt.Backend.spawn b in
  let t = Workloads.Btree.create b task in
  for i = 1 to 5000 do
    Workloads.Btree.insert t i i
  done;
  (* 5000 inserts x 256B >= 312 pages of value storage *)
  check_bool "plenty of demand faults" true (Kernel_model.Mm.fault_count task.Kernel_model.Task.mm > 300)

let test_btree_ratio_dilutes_overhead () =
  (* More lookups per insert -> lower fault density -> lower PVM
     overhead (the Figure 13a trend). *)
  let overhead ratio =
    let base = Workloads.Btree.run_ratio (runc ()) ~total_ops:8_000 ~lookup_per_insert:ratio in
    let v = Workloads.Btree.run_ratio (pvm ()) ~total_ops:8_000 ~lookup_per_insert:ratio in
    v /. base
  in
  check_bool "overhead decreases with ratio" true (overhead 1 > overhead 8)

(* ------------------------------ Arena ------------------------------ *)

let test_arena_fault_density () =
  let b = runc () in
  let task = Virt.Backend.spawn b in
  let arena = Workloads.Profile.Arena.create b task in
  let f0 = Kernel_model.Mm.fault_count task.Kernel_model.Task.mm in
  for _ = 1 to 64 do
    Workloads.Profile.Arena.alloc arena 1024
  done;
  (* 64 KiB allocated -> exactly 16 pages touched *)
  check_int "one fault per page crossed" 16 (Kernel_model.Mm.fault_count task.Kernel_model.Task.mm - f0);
  check_int "bytes accounted" 65536 (Workloads.Profile.Arena.allocated_bytes arena)

let test_rng_determinism () =
  let a = Workloads.Profile.Rng.create () in
  let b = Workloads.Profile.Rng.create () in
  let xs = List.init 20 (fun _ -> Workloads.Profile.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Workloads.Profile.Rng.int b 1000) in
  check_bool "deterministic" true (xs = ys);
  check_bool "in range" true (List.for_all (fun x -> x >= 0 && x < 1000) xs)

(* ------------------------------ GUPS ------------------------------- *)

let test_gups_walk_geometry () =
  let r_native = Workloads.Gups.run_gups (runc ()) ~table_pages:50_000 ~updates:50_000 () in
  let r_hvm =
    Workloads.Gups.run_gups
      (Virt.Hvm.create (Hw.Machine.create ~cpus:1 ~mem_mib:64 ()))
      ~table_pages:50_000 ~updates:50_000 ()
  in
  let r_cki = Workloads.Gups.run_gups (cki ()) ~table_pages:50_000 ~updates:50_000 () in
  check_bool "most accesses miss" true (r_native.Workloads.Gups.tlb_miss_rate > 0.9);
  check_bool "2D walk slower" true (r_hvm.Workloads.Gups.total_ns > r_native.Workloads.Gups.total_ns);
  (* CKI uses single-stage translation: same as native. *)
  check_bool "CKI = native walk" true
    (Float.abs (r_cki.Workloads.Gups.total_ns -. r_native.Workloads.Gups.total_ns)
    /. r_native.Workloads.Gups.total_ns
    < 0.01)

(* ----------------------------- SQLite ------------------------------ *)

let test_sqlite_engine_roundtrip () =
  let b = runc () in
  let db = Workloads.Sqlite.open_db b ~name:"t" in
  Workloads.Sqlite.txn_begin db;
  for i = 1 to 100 do
    Workloads.Sqlite.insert db ~key:i
  done;
  Workloads.Sqlite.txn_commit db;
  check_bool "read hit" true (Workloads.Sqlite.read db ~key:50);
  check_bool "read miss" false (Workloads.Sqlite.read db ~key:500)

let test_sqlite_batch_reduces_syscalls () =
  let r1 = Workloads.Sqlite.run_pattern (runc ()) Workloads.Sqlite.Fillseq ~ops:500 in
  let r2 = Workloads.Sqlite.run_pattern (runc ()) Workloads.Sqlite.Fillseqbatch ~ops:500 in
  check_bool "batch lowers syscalls/op" true
    (r2.Workloads.Sqlite.syscalls_per_op < r1.Workloads.Sqlite.syscalls_per_op /. 2.0);
  let r3 = Workloads.Sqlite.run_pattern (runc ()) Workloads.Sqlite.Readrandom ~ops:500 in
  check_bool "reads are syscall-light" true
    (r3.Workloads.Sqlite.syscalls_per_op < 1.0)

let test_sqlite_pvm_overhead_on_writes_only () =
  let ops = 800 in
  let tp backend p = (Workloads.Sqlite.run_pattern backend p ~ops).Workloads.Sqlite.ops_per_sec in
  let w_loss =
    1.0 -. (tp (pvm ()) Workloads.Sqlite.Fillseq /. tp (runc ()) Workloads.Sqlite.Fillseq)
  in
  let r_loss =
    1.0 -. (tp (pvm ()) Workloads.Sqlite.Readrandom /. tp (runc ()) Workloads.Sqlite.Readrandom)
  in
  check_bool "PVM write loss is 15-40%" true (w_loss > 0.15 && w_loss < 0.40);
  check_bool "PVM read loss is < 5%" true (r_loss < 0.05);
  let cki_loss =
    1.0 -. (tp (cki ()) Workloads.Sqlite.Fillseq /. tp (runc ()) Workloads.Sqlite.Fillseq)
  in
  check_bool "CKI matches RunC" true (Float.abs cki_loss < 0.03)

(* ------------------------------- KV -------------------------------- *)

let test_kv_store_semantics () =
  let b = runc () in
  let srv = Workloads.Kv.create_server b Workloads.Kv.Memcached in
  Workloads.Kv.serve_batch srv [ Workloads.Kv.Set 1; Workloads.Kv.Get 1; Workloads.Kv.Get 2 ];
  check_int "requests served" 3 srv.Workloads.Kv.requests;
  check_bool "key stored" true (Hashtbl.mem srv.Workloads.Kv.store 1);
  check_bool "absent key" false (Hashtbl.mem srv.Workloads.Kv.store 2)

let test_kv_throughput_ordering () =
  let thr mk = Workloads.Kv.run_memtier (mk ()) ~flavor:Workloads.Kv.Memcached ~clients:32 ~requests:500 in
  let t_cki = thr cki in
  let t_pvm = thr pvm in
  let t_hvm_nst = thr (fun () -> Virt.Hvm.create ~env:Virt.Env.Nested (Hw.Machine.create ~mem_mib:64 ())) in
  check_bool "CKI > PVM" true (t_cki > t_pvm);
  check_bool "PVM > HVM-NST" true (t_pvm > t_hvm_nst);
  check_bool "CKI >= 3x HVM-NST" true (t_cki /. t_hvm_nst >= 3.0)

let test_kv_throughput_rises_with_clients () =
  let thr c = Workloads.Kv.run_memtier (cki ()) ~flavor:Workloads.Kv.Memcached ~clients:c ~requests:400 in
  let t4 = thr 4 and t64 = thr 64 in
  check_bool "more clients, more throughput" true (t64 > t4)

(* ----------------------------- lmbench ----------------------------- *)

let test_lmbench_pvm_redirection_visible () =
  let suite_runc = Workloads.Lmbench.run_suite ~iters:40 (runc ()) in
  let suite_pvm = Workloads.Lmbench.run_suite ~iters:40 (pvm ()) in
  let suite_cki = Workloads.Lmbench.run_suite ~iters:40 (cki ()) in
  let get s op = List.assoc op s in
  (* PVM roughly doubles a 1-byte read (paper Section 7.1). *)
  let ratio = get suite_pvm Workloads.Lmbench.Read /. get suite_runc Workloads.Lmbench.Read in
  check_bool "PVM read ~2x native" true (ratio > 1.7 && ratio < 2.6);
  (* CKI stays within a few percent of RunC on every op. *)
  List.iter
    (fun op ->
      let r = get suite_cki op /. get suite_runc op in
      check_bool (Workloads.Lmbench.op_name op ^ " CKI close to RunC") true (r < 1.12))
    Workloads.Lmbench.all_ops;
  (* PVM is the slowest on every op (Figure 11's shape). *)
  List.iter
    (fun op ->
      check_bool (Workloads.Lmbench.op_name op ^ " PVM worst") true
        (get suite_pvm op >= get suite_runc op && get suite_pvm op >= get suite_cki op))
    Workloads.Lmbench.all_ops

(* ------------------------- Webserver/netperf ----------------------- *)

let test_webserver_ordering () =
  let thr mk kind = Workloads.Webserver.run (mk ()) kind ~requests:300 in
  let static_runc = thr runc Workloads.Webserver.Nginx_static in
  let static_pvm = thr pvm Workloads.Webserver.Nginx_static in
  let proxy_pvm = thr pvm Workloads.Webserver.Nginx_proxy in
  check_bool "RunC fastest" true (static_runc > static_pvm);
  check_bool "proxy slower than static" true (static_pvm > proxy_pvm)

let test_netperf_rr_exit_sensitivity () =
  let rr mk = Workloads.Netperf.run_rr (mk ()) ~transactions:300 in
  let r_cki = rr cki in
  let r_hvm_nst = rr (fun () -> Virt.Hvm.create ~env:Virt.Env.Nested (Hw.Machine.create ~mem_mib:64 ())) in
  check_bool "RR collapses under nested exits" true (r_cki /. r_hvm_nst > 4.0)

(* ------------------------------ Report ----------------------------- *)

let test_stats_helpers () =
  check_bool "mean" true (Report.Stats.mean [ 1.0; 2.0; 3.0 ] = 2.0);
  check_bool "geomean" true (Float.abs (Report.Stats.geomean [ 1.0; 4.0 ] -. 2.0) < 1e-9);
  check_bool "overhead" true (Report.Stats.overhead_pct ~baseline:100.0 150.0 = 50.0);
  check_bool "reduction" true (Report.Stats.reduction_pct ~from_:100.0 ~to_:28.0 = 72.0);
  check_bool "normalize" true (Report.Stats.normalize ~baseline:2.0 [ 2.0; 4.0 ] = [ 1.0; 2.0 ])

let test_table_render () =
  let t = Report.Table.create ~title:"t" ~header:[ "a"; "bb" ] in
  Report.Table.add_row t [ "x"; "y" ];
  Report.Table.add_floats t ~label:"z" [ 1.5 ];
  let s = Report.Table.render t in
  check_bool "title" true (String.length s > 0);
  check_bool "contains row" true (String.length s - String.length (String.concat "" (String.split_on_char 'x' s)) >= 0)

let test_figure_render () =
  let s =
    Report.Figure.grouped_bars ~title:"f" ~value_label:"v"
      ~groups:[ ("g", [ ("a", 1.0); ("b", 0.5) ]) ]
  in
  check_bool "bars" true (String.contains s '#');
  let s2 =
    Report.Figure.series ~title:"s" ~x_label:"x" ~y_label:"y" ~xs:[ 1.0; 2.0 ]
      ~series:[ ("a", [ 1.0; 2.0 ]) ]
  in
  check_bool "series" true (String.length s2 > 0)

let suite =
  [
    ( "workloads/btree",
      [
        test_case "insert/lookup" `Quick test_btree_insert_lookup;
        QCheck_alcotest.to_alcotest prop_btree_matches_hashtbl;
        test_case "inserts cause demand faults" `Quick test_btree_insert_causes_faults;
        test_case "lookup ratio dilutes overhead" `Quick test_btree_ratio_dilutes_overhead;
      ] );
    ( "workloads/profile",
      [
        test_case "arena fault density" `Quick test_arena_fault_density;
        test_case "rng determinism" `Quick test_rng_determinism;
      ] );
    ("workloads/gups", [ test_case "walk geometry" `Quick test_gups_walk_geometry ]);
    ( "workloads/sqlite",
      [
        test_case "engine roundtrip" `Quick test_sqlite_engine_roundtrip;
        test_case "batching reduces syscalls" `Quick test_sqlite_batch_reduces_syscalls;
        test_case "PVM overhead writes-only" `Quick test_sqlite_pvm_overhead_on_writes_only;
      ] );
    ( "workloads/kv",
      [
        test_case "store semantics" `Quick test_kv_store_semantics;
        test_case "throughput ordering" `Quick test_kv_throughput_ordering;
        test_case "throughput rises with clients" `Quick test_kv_throughput_rises_with_clients;
      ] );
    ("workloads/lmbench", [ test_case "redirection visible, CKI near-native" `Slow test_lmbench_pvm_redirection_visible ]);
    ( "workloads/io",
      [
        test_case "webserver ordering" `Quick test_webserver_ordering;
        test_case "netperf RR exit sensitivity" `Quick test_netperf_rr_exit_sensitivity;
      ] );
    ( "report",
      [
        test_case "stats helpers" `Quick test_stats_helpers;
        test_case "table render" `Quick test_table_render;
        test_case "figure render" `Quick test_figure_render;
      ] );
  ]
