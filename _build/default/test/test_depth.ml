(* Second-wave tests: edge cases, error paths, property tests, and the
   vCPU scheduler. *)

open Alcotest

let check_int = check int
let check_bool = check bool

(* ------------------------- hw edge cases --------------------------- *)

let test_pte_huge_flag_roundtrip () =
  let e = Hw.Pte.make ~pfn:1024 ~flags:{ Hw.Pte.default_flags with huge = true; pkey = 3 } in
  check_bool "huge" true (Hw.Pte.is_huge e);
  check_int "pkey survives" 3 (Hw.Pte.pkey e);
  let f = Hw.Pte.flags_of e in
  check_bool "flags roundtrip" true f.Hw.Pte.huge

let test_cpu_nx_and_write_violations () =
  let clock = Hw.Clock.create () in
  let cpu = Hw.Cpu.create clock in
  let m = Hw.Phys_mem.create ~frames:2048 in
  let pt = Hw.Page_table.create m ~owner:Hw.Phys_mem.Host in
  ignore
    (Hw.Page_table.map pt ~va:0x1000 ~pfn:1
       ~flags:{ Hw.Pte.default_flags with user = true; nx = true } ());
  ignore
    (Hw.Page_table.map pt ~va:0x2000 ~pfn:2
       ~flags:{ Hw.Pte.default_flags with user = true; writable = false } ());
  cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  (match Hw.Cpu.access cpu pt ~va:0x1000 ~access_kind:Hw.Pks.Read ~exec:true () with
  | Error (Hw.Cpu.Nx_violation _) -> ()
  | _ -> fail "expected NX violation");
  (match Hw.Cpu.access cpu pt ~va:0x2000 ~access_kind:Hw.Pks.Write () with
  | Error (Hw.Cpu.Write_violation _) -> ()
  | _ -> fail "expected write violation");
  match Hw.Cpu.access cpu pt ~va:0x2000 ~access_kind:Hw.Pks.Read () with
  | Ok _ -> ()
  | Error e -> fail (Hw.Cpu.show_fault e)

let test_cpu_pkru_governs_user_pages () =
  let clock = Hw.Clock.create () in
  let cpu = Hw.Cpu.create clock in
  let m = Hw.Phys_mem.create ~frames:2048 in
  let pt = Hw.Page_table.create m ~owner:Hw.Phys_mem.Host in
  ignore
    (Hw.Page_table.map pt ~va:0x3000 ~pfn:3
       ~flags:{ Hw.Pte.default_flags with user = true; pkey = 5 } ());
  cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  cpu.Hw.Cpu.pkru <- Hw.Pks.make [ (5, Hw.Pks.No_access) ];
  (match Hw.Cpu.access cpu pt ~va:0x3000 ~access_kind:Hw.Pks.Read () with
  | Error (Hw.Cpu.Pks_violation { key = 5; _ }) -> ()
  | _ -> fail "PKRU must govern user pages");
  (* PKRS does not apply to user pages *)
  cpu.Hw.Cpu.pkru <- Hw.Pks.all_access;
  cpu.Hw.Cpu.pkrs <- Hw.Pks.make [ (5, Hw.Pks.No_access) ];
  match Hw.Cpu.access cpu pt ~va:0x3000 ~access_kind:Hw.Pks.Read () with
  | Ok _ -> ()
  | Error e -> fail (Hw.Cpu.show_fault e)

let test_nested_interrupts_pkrs_stack () =
  let cpu = Hw.Cpu.create (Hw.Clock.create ()) in
  cpu.Hw.Cpu.pkrs <- Hw.Pks.pkrs_guest;
  Hw.Cpu.hw_interrupt_entry cpu ~pks_switch:true;
  (* nested interrupt while handling the first *)
  Hw.Cpu.hw_interrupt_entry cpu ~pks_switch:true;
  check_int "two saved" 2 (List.length cpu.Hw.Cpu.saved_pkrs);
  Hw.Cpu.exec_priv_exn cpu Hw.Priv.Iret;
  check_int "inner restores to 0" Hw.Pks.all_access cpu.Hw.Cpu.pkrs;
  Hw.Cpu.exec_priv_exn cpu Hw.Priv.Iret;
  check_int "outer restores guest" Hw.Pks.pkrs_guest cpu.Hw.Cpu.pkrs

let prop_tlb_never_exceeds_capacity =
  QCheck.Test.make ~name:"tlb stays within capacity" ~count:50
    QCheck.(small_list (pair (int_bound 3) (int_bound 500)))
    (fun ops ->
      let t = Hw.Tlb.create ~capacity:16 () in
      List.iter
        (fun (pcid, vpn) ->
          Hw.Tlb.insert t ~pcid ~va:(vpn * 4096)
            { Hw.Tlb.pfn = vpn; flags = Hw.Pte.default_flags; level = 1 })
        ops;
      Hw.Tlb.size t <= 16)

let prop_index_at_level_reconstructs =
  QCheck.Test.make ~name:"page-table indices reconstruct the vpn" ~count:300
    QCheck.(int_bound ((1 lsl 36) - 1))
    (fun vpn ->
      let va = vpn * 4096 in
      let i4 = Hw.Addr.index_at_level ~lvl:4 va in
      let i3 = Hw.Addr.index_at_level ~lvl:3 va in
      let i2 = Hw.Addr.index_at_level ~lvl:2 va in
      let i1 = Hw.Addr.index_at_level ~lvl:1 va in
      (((((i4 * 512) + i3) * 512) + i2) * 512) + i1 = vpn)

(* ---------------------- kernel error paths ------------------------- *)

let mk_kernel () =
  Kernel_model.Kernel.create (Kernel_model.Platform.bare (Hw.Machine.create ~mem_mib:64 ()))

let test_syscall_error_paths () =
  let k = mk_kernel () in
  let t = Kernel_model.Kernel.spawn k in
  let expect_err name sc =
    match Kernel_model.Kernel.syscall k t sc with
    | Kernel_model.Syscall.Rerr _ -> ()
    | _ -> fail (name ^ ": expected error")
  in
  expect_err "read bad fd" (Kernel_model.Syscall.Read { fd = 99; n = 1 });
  expect_err "write bad fd" (Kernel_model.Syscall.Write { fd = 99; data = Bytes.empty });
  expect_err "open missing" (Kernel_model.Syscall.Open { path = "/missing"; create = false });
  expect_err "stat missing" (Kernel_model.Syscall.Stat "/missing");
  expect_err "unlink missing" (Kernel_model.Syscall.Unlink "/missing");
  expect_err "fstat bad fd" (Kernel_model.Syscall.Fstat 99);
  expect_err "lseek bad fd" (Kernel_model.Syscall.Lseek { fd = 99; pos = 0 });
  (* mkdir twice *)
  ignore (Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Mkdir "/d"));
  expect_err "mkdir exists" (Kernel_model.Syscall.Mkdir "/d")

let test_read_write_positions () =
  let k = mk_kernel () in
  let t = Kernel_model.Kernel.spawn k in
  let fd =
    match Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Open { path = "/f"; create = true }) with
    | Kernel_model.Syscall.Rint fd -> fd
    | _ -> fail "open"
  in
  ignore (Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Write { fd; data = Bytes.of_string "abcdef" }));
  (* position advanced: read at EOF is empty *)
  (match Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Read { fd; n = 3 }) with
  | Kernel_model.Syscall.Rbytes b -> check_int "eof" 0 (Bytes.length b)
  | _ -> fail "read");
  ignore (Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Lseek { fd; pos = 2 }));
  match Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Read { fd; n = 2 }) with
  | Kernel_model.Syscall.Rbytes b -> check_bool "mid read" true (Bytes.to_string b = "cd")
  | _ -> fail "read"

let test_vfs_lookup_cost_per_component () =
  let k = mk_kernel () in
  let t = Kernel_model.Kernel.spawn k in
  let clock = Kernel_model.Kernel.clock k in
  ignore (Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Mkdir "/a"));
  ignore (Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Mkdir "/a/b"));
  let before = Hw.Clock.occurrences clock "vfs_lookup" in
  ignore (Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Mkdir "/a/b/c"));
  (* resolving "/a/b" for the parent = 2 components *)
  check_int "2 lookups" (before + 2) (Hw.Clock.occurrences clock "vfs_lookup")

let test_slab_many_sizes () =
  let b = Kernel_model.Buddy.create ~base:0 ~frames:128 in
  List.iter
    (fun size ->
      let s = Kernel_model.Slab.create ~name:"t" ~obj_size:size b in
      let hs = List.init 100 (fun _ -> Kernel_model.Slab.alloc s) in
      List.iter (Kernel_model.Slab.free s) hs;
      check_int (Printf.sprintf "size %d drained" size) 0 (Kernel_model.Slab.allocated s))
    [ 16; 64; 256; 1024; 4096 ];
  check_raises "oversized" (Invalid_argument "Slab.create: bad obj_size") (fun () ->
      ignore (Kernel_model.Slab.create ~name:"x" ~obj_size:8192 b))

let prop_vma_no_overlap_after_ops =
  QCheck.Test.make ~name:"vma areas never overlap" ~count:60
    QCheck.(small_list (pair (int_bound 60) (pair (int_range 1 8) (int_bound 2))))
    (fun ops ->
      let v = Kernel_model.Vma.create () in
      List.iter
        (fun (slot, (pages, kind)) ->
          let start = 0x100000 + (slot * 16 * 4096) in
          let stop = start + (pages * 4096) in
          match kind with
          | 0 -> (
              try ignore (Kernel_model.Vma.add v ~start ~stop ~prot:Kernel_model.Vma.prot_rw ~backing:Kernel_model.Vma.Anon)
              with Kernel_model.Vma.Overlap -> ())
          | 1 -> ignore (Kernel_model.Vma.remove v ~start ~stop)
          | _ -> ignore (Kernel_model.Vma.protect v ~start ~stop ~prot:Kernel_model.Vma.prot_ro))
        ops;
      (* collect and check pairwise disjointness *)
      let areas = ref [] in
      Kernel_model.Vma.iter v (fun a -> areas := (a.Kernel_model.Vma.start, a.Kernel_model.Vma.stop) :: !areas);
      let sorted = List.sort compare !areas in
      let rec ok = function
        | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && ok rest
        | [ _ ] | [] -> true
      in
      ok sorted)

(* ------------------------ cki depth -------------------------------- *)

let test_config_labels () =
  check (string) "default" "CKI" (Cki.Config.label Cki.Config.default);
  check (string) "wo2" "CKI-wo-OPT2" (Cki.Config.label Cki.Config.wo_opt2);
  check (string) "wo3" "CKI-wo-OPT3" (Cki.Config.label Cki.Config.wo_opt3);
  check (string) "pku" "Design-PKU" (Cki.Config.label Cki.Config.pku_design);
  check (string) "2M" "CKI-2M" (Cki.Config.label { Cki.Config.default with Cki.Config.hugepages = true })

let test_layout_regions_disjoint () =
  let l4s = [ Cki.Layout.l4_direct; Cki.Layout.l4_kernel_image; Cki.Layout.l4_ksm; Cki.Layout.l4_pervcpu ] in
  check_int "distinct L4 slots" 4 (List.length (List.sort_uniq compare l4s));
  check_bool "above user space" true (List.for_all (fun i -> i > Cki.Layout.l4_user_max) l4s);
  check_int "direct map roundtrip" 0x1234000
    (Cki.Layout.pa_of_direct_va (Cki.Layout.direct_va_of_pa 0x1234000));
  check_bool "classifiers" true
    (Cki.Layout.in_user 0x1000
    && Cki.Layout.in_direct_map (Cki.Layout.direct_va_of_pa 0)
    && Cki.Layout.in_ksm Cki.Layout.ksm_base
    && Cki.Layout.in_pervcpu Cki.Layout.pervcpu_base)

let test_ksm_read_top_pte_unknown_root () =
  let c = Cki.Container.create_standalone ~mem_mib:128 () in
  let ksm = Cki.Container.ksm c in
  match Cki.Ksm.read_top_pte ksm ~root:12345 ~idx:0 with
  | Error (Cki.Ksm.Undeclared_root _) -> ()
  | _ -> fail "unknown root must be rejected"

let test_gates_reject_user_mode () =
  let c = Cki.Container.create_standalone ~mem_mib:128 () in
  let cpu = Cki.Container.cpu c 0 in
  cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  (match Cki.Gates.ksm_call (Cki.Container.gates c) cpu ~vcpu:0 (fun () -> ()) with
  | Error Cki.Gates.Not_kernel_mode -> ()
  | _ -> fail "user-mode KSM call must fail");
  match
    Cki.Gates.hypercall (Cki.Container.gates c) cpu ~vcpu:0 ~request:Kernel_model.Platform.Timer
      (fun _ -> ())
  with
  | Error Cki.Gates.Not_kernel_mode -> ()
  | _ -> fail "user-mode hypercall must fail"

let test_emulate_pvm_syscall_config () =
  let cfg = { Cki.Config.default with Cki.Config.emulate_pvm_syscall = true } in
  let b = Cki.Container.backend (Cki.Container.create_standalone ~cfg ~mem_mib:128 ()) in
  let task = Virt.Backend.spawn b in
  let l =
    Virt.Backend.mean_latency b ~n:100 (fun () ->
        ignore (Virt.Backend.syscall_exn b task Kernel_model.Syscall.Getpid))
  in
  (* 90 + 2x49 + 2x74 = 336: exactly PVM's syscall latency *)
  check_bool "emulated PVM syscall = 336ns" true (Float.abs (l -. 336.0) < 2.0)

(* ------------------------- vCPU scheduler -------------------------- *)

let test_vcpu_sched_fair_progress () =
  let machine = Hw.Machine.create ~cpus:4 ~mem_mib:256 () in
  let host = Cki.Host.create machine in
  let cfg = { Cki.Config.default with Cki.Config.segment_frames = 2048; vcpus = 1 } in
  let a = Cki.Container.create ~cfg host in
  let b = Cki.Container.create ~cfg host in
  let sched = Cki.Vcpu_sched.create ~slice_ns:100_000.0 host in
  let ea = Cki.Vcpu_sched.add_vcpu sched a ~vcpu:0 in
  let eb = Cki.Vcpu_sched.add_vcpu sched b ~vcpu:0 in
  for _ = 1 to 50 do
    Cki.Vcpu_sched.submit_work ea (fun () -> ());
    Cki.Vcpu_sched.submit_work eb (fun () -> ())
  done;
  Cki.Vcpu_sched.run sched ~slices:10;
  check_int "A got 5 slices" 5 ea.Cki.Vcpu_sched.slices;
  check_int "B got 5 slices" 5 eb.Cki.Vcpu_sched.slices;
  check_int "10 preemptions" 10 (Cki.Vcpu_sched.preemptions sched)

let test_vcpu_sched_spinner_contained () =
  let machine = Hw.Machine.create ~cpus:4 ~mem_mib:256 () in
  let host = Cki.Host.create machine in
  let cfg = { Cki.Config.default with Cki.Config.segment_frames = 2048; vcpus = 1 } in
  let attacker = Cki.Container.create ~cfg host in
  let victim = Cki.Container.create ~cfg host in
  let sched = Cki.Vcpu_sched.create host in
  let ea = Cki.Vcpu_sched.add_vcpu sched attacker ~vcpu:0 in
  let ev = Cki.Vcpu_sched.add_vcpu sched victim ~vcpu:0 in
  Cki.Vcpu_sched.mark_spinning ea;
  for _ = 1 to 20 do
    Cki.Vcpu_sched.submit_work ev (fun () -> ())
  done;
  Cki.Vcpu_sched.run sched ~slices:8;
  (* Despite the attacker deadlooping, the victim ran its work. *)
  check_int "victim executed all work" 20 ev.Cki.Vcpu_sched.executed;
  check_int "attacker preempted every slice" 4 ea.Cki.Vcpu_sched.slices;
  check_bool "timer got through the spinner" true (Cki.Vcpu_sched.preemptions sched = 8)

(* ------------------------- workloads depth ------------------------- *)

let runc () = Virt.Runc.create (Hw.Machine.create ~mem_mib:128 ())

let test_xsbench_phase_structure () =
  (* more particles -> more compute, identical faults *)
  let b1 = runc () in
  let t1 = Workloads.Xsbench.run b1 ~gridpoints:20_000 ~particles:100 in
  let b2 = runc () in
  let t2 = Workloads.Xsbench.run b2 ~gridpoints:20_000 ~particles:10_000 in
  check_bool "calc phase grows" true (t2 > t1 *. 2.0)

let test_sqlite_overwrite_needs_prefill () =
  let r = Workloads.Sqlite.run_pattern (runc ()) Workloads.Sqlite.Overwritebatch ~ops:300 in
  check_bool "overwrite runs" true (r.Workloads.Sqlite.ops_per_sec > 0.0)

let test_netperf_tx_faster_than_rr () =
  let btx = runc () in
  let tx = Workloads.Netperf.run_tx btx ~sends:300 in
  check_bool "tx positive" true (tx > 0.0);
  let brr = runc () in
  let rr = Workloads.Netperf.run_rr brr ~transactions:300 in
  check_bool "rr positive" true (rr > 0.0)

let test_webserver_httpd_heavier_than_nginx () =
  let t_nginx = Workloads.Webserver.run (runc ()) Workloads.Webserver.Nginx_static ~requests:200 in
  let t_httpd = Workloads.Webserver.run (runc ()) Workloads.Webserver.Httpd ~requests:200 in
  check_bool "httpd slower" true (t_httpd < t_nginx)

let test_kv_redis_slower_per_request_than_memcached () =
  let m = Workloads.Kv.run_memtier (runc ()) ~flavor:Workloads.Kv.Memcached ~clients:32 ~requests:300 in
  let r = Workloads.Kv.run_memtier (runc ()) ~flavor:Workloads.Kv.Redis ~clients:32 ~requests:300 in
  check_bool "memcached scales past redis" true (m > r)

let prop_arena_faults_match_bytes =
  QCheck.Test.make ~name:"arena: faults = ceil(bytes/page)" ~count:20
    QCheck.(int_range 1 200)
    (fun allocs ->
      let b = runc () in
      let task = Virt.Backend.spawn b in
      let arena = Workloads.Profile.Arena.create b task in
      let f0 = Kernel_model.Mm.fault_count task.Kernel_model.Task.mm in
      for _ = 1 to allocs do
        Workloads.Profile.Arena.alloc arena 1000
      done;
      let faults = Kernel_model.Mm.fault_count task.Kernel_model.Task.mm - f0 in
      faults = (allocs * 1000 + 4095) / 4096)

let suite =
  [
    ( "depth/hw",
      [
        test_case "pte huge roundtrip" `Quick test_pte_huge_flag_roundtrip;
        test_case "nx + write violations" `Quick test_cpu_nx_and_write_violations;
        test_case "PKRU governs user pages" `Quick test_cpu_pkru_governs_user_pages;
        test_case "nested interrupts: PKRS stack" `Quick test_nested_interrupts_pkrs_stack;
        QCheck_alcotest.to_alcotest prop_tlb_never_exceeds_capacity;
        QCheck_alcotest.to_alcotest prop_index_at_level_reconstructs;
      ] );
    ( "depth/kernel",
      [
        test_case "syscall error paths" `Quick test_syscall_error_paths;
        test_case "file positions" `Quick test_read_write_positions;
        test_case "vfs lookup cost per component" `Quick test_vfs_lookup_cost_per_component;
        test_case "slab sizes" `Quick test_slab_many_sizes;
        QCheck_alcotest.to_alcotest prop_vma_no_overlap_after_ops;
      ] );
    ( "depth/cki",
      [
        test_case "config labels" `Quick test_config_labels;
        test_case "layout regions disjoint" `Quick test_layout_regions_disjoint;
        test_case "read_top_pte unknown root" `Quick test_ksm_read_top_pte_unknown_root;
        test_case "gates reject user mode" `Quick test_gates_reject_user_mode;
        test_case "emulate-PVM-syscall config = 336ns" `Quick test_emulate_pvm_syscall_config;
      ] );
    ( "depth/vcpu_sched",
      [
        test_case "fair round-robin progress" `Quick test_vcpu_sched_fair_progress;
        test_case "spinner contained (S9)" `Quick test_vcpu_sched_spinner_contained;
      ] );
    ( "depth/workloads",
      [
        test_case "xsbench phase structure" `Quick test_xsbench_phase_structure;
        test_case "sqlite overwrite prefill" `Quick test_sqlite_overwrite_needs_prefill;
        test_case "netperf tx + rr" `Quick test_netperf_tx_faster_than_rr;
        test_case "httpd heavier than nginx" `Quick test_webserver_httpd_heavier_than_nginx;
        test_case "redis vs memcached scaling" `Quick test_kv_redis_slower_per_request_than_memcached;
        QCheck_alcotest.to_alcotest prop_arena_faults_match_bytes;
      ] );
  ]
