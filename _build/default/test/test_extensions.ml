(* Tests for the Section 9 future-work extensions (driver sandboxing,
   kernel-level syscall elision), the Section 3.1 Design-PKU ablation,
   and the S9 DoS-containment scenario. *)

open Alcotest

let check_int = check int
let check_bool = check bool

(* ------------------------ Driver sandboxing ------------------------ *)

let mk_registry () = Cki.Driver_sandbox.create_registry (Hw.Machine.create ~mem_mib:64 ())

let test_driver_load_unload () =
  let r = mk_registry () in
  let keys0 = Cki.Driver_sandbox.free_key_count r in
  let d1 = Cki.Driver_sandbox.load r ~name:"e1000" ~heap_pages:4 in
  let d2 = Cki.Driver_sandbox.load r ~name:"nvme" ~heap_pages:4 in
  check_int "two loaded" 2 (Cki.Driver_sandbox.loaded_count r);
  check_int "keys consumed" (keys0 - 2) (Cki.Driver_sandbox.free_key_count r);
  check_bool "distinct keys" true (d1.Cki.Driver_sandbox.key <> d2.Cki.Driver_sandbox.key);
  Cki.Driver_sandbox.unload r d1;
  check_int "key recycled" (keys0 - 1) (Cki.Driver_sandbox.free_key_count r);
  check_bool "dead after unload" true (Cki.Driver_sandbox.is_dead d1)

let test_driver_key_exhaustion () =
  let r = mk_registry () in
  let n = Cki.Driver_sandbox.free_key_count r in
  let drivers = List.init n (fun i -> Cki.Driver_sandbox.load r ~name:(Printf.sprintf "d%d" i) ~heap_pages:1) in
  check_raises "no free keys" Cki.Driver_sandbox.No_free_keys (fun () ->
      ignore (Cki.Driver_sandbox.load r ~name:"one-too-many" ~heap_pages:1));
  (* unloading any driver makes room again *)
  (match drivers with
  | d :: _ ->
      Cki.Driver_sandbox.unload r d;
      ignore (Cki.Driver_sandbox.load r ~name:"again" ~heap_pages:1)
  | [] -> fail "no drivers")

let test_driver_invoke_and_heap () =
  let r = mk_registry () in
  let d = Cki.Driver_sandbox.load r ~name:"e1000" ~heap_pages:2 in
  (match Cki.Driver_sandbox.invoke d (fun d -> Cki.Driver_sandbox.heap_write d 0xd000_0000_0000) with
  | Ok () -> ()
  | Error _ -> fail "invoke failed");
  check_int "invocation counted" 1 (Cki.Driver_sandbox.invocation_count d)

let test_driver_memory_escape_killed () =
  let r = mk_registry () in
  let d = Cki.Driver_sandbox.load r ~name:"rogue" ~heap_pages:1 in
  (match Cki.Driver_sandbox.invoke d (fun d -> Cki.Driver_sandbox.attempt_kernel_write d 0xffff_1000) with
  | Ok `Killed -> ()
  | Ok `Escaped -> fail "driver escaped PKS isolation"
  | Error _ -> fail "invoke failed");
  check_bool "driver dead" true (Cki.Driver_sandbox.is_dead d);
  check_int "fault recorded" 1 (Cki.Driver_sandbox.fault_count d);
  (* further calls fail fast *)
  match Cki.Driver_sandbox.invoke d (fun _ -> ()) with
  | Error _ -> ()
  | Ok () -> fail "dead driver accepted a call"

let test_driver_priv_instructions_blocked () =
  let r = mk_registry () in
  let d = Cki.Driver_sandbox.load r ~name:"rogue" ~heap_pages:1 in
  List.iter
    (fun inst ->
      match Cki.Driver_sandbox.attempt_priv d inst with
      | `Blocked -> check_bool (Hw.Priv.mnemonic inst) true (Hw.Priv.blocked_in_guest inst)
      | `Harmless -> check_bool (Hw.Priv.mnemonic inst) false (Hw.Priv.blocked_in_guest inst)
      | `Escaped -> fail (Hw.Priv.mnemonic inst ^ " escaped"))
    [ Hw.Priv.Lidt; Hw.Priv.Cli; Hw.Priv.Mov_to_cr3; Hw.Priv.Wrmsr 0x10; Hw.Priv.Mov_from_cr 0 ]

let test_driver_gate_cheaper_than_ipc () =
  let r = mk_registry () in
  let d = Cki.Driver_sandbox.load r ~name:"e1000" ~heap_pages:1 in
  let clock = d.Cki.Driver_sandbox.clock in
  let t0 = Hw.Clock.now clock in
  (match Cki.Driver_sandbox.invoke d (fun _ -> ()) with Ok () -> () | Error _ -> fail "invoke");
  let gate = Hw.Clock.now clock -. t0 in
  let t1 = Hw.Clock.now clock in
  Cki.Driver_sandbox.invoke_microkernel_style d (fun _ -> ());
  let ipc = Hw.Clock.now clock -. t1 in
  check_bool "PKS gate at least 4x cheaper than IPC" true (ipc /. gate >= 4.0)

(* ---------------------- Kernel-level syscalls ---------------------- *)

let test_inkernel_syscall_cost () =
  let b = Cki.Container.backend (Cki.Container.create_standalone ~mem_mib:128 ()) in
  let app = Cki.Kernel_app.wrap_backend b in
  let kb = Cki.Kernel_app.backend app in
  let task = Virt.Backend.spawn kb in
  let cost =
    Virt.Backend.mean_latency kb ~n:200 (fun () ->
        ignore (Virt.Backend.syscall_exn kb task Kernel_model.Syscall.Getpid))
  in
  (* 63 ns gate + 3 ns getpid work *)
  check_bool "syscall ~66ns in-kernel" true (Float.abs (cost -. 66.0) < 2.0);
  check_bool "elisions counted" true (Cki.Kernel_app.syscalls_elided app >= 200)

let test_inkernel_speedup_matches_prediction () =
  let normal = Cki.Container.backend (Cki.Container.create_standalone ~mem_mib:128 ()) in
  let inkernel =
    Cki.Kernel_app.backend
      (Cki.Kernel_app.wrap_backend (Cki.Container.backend (Cki.Container.create_standalone ~mem_mib:128 ())))
  in
  let ops = 600 in
  let r_n = Workloads.Sqlite.run_pattern normal Workloads.Sqlite.Fillseq ~ops in
  let r_k = Workloads.Sqlite.run_pattern inkernel Workloads.Sqlite.Fillseq ~ops in
  let measured = r_k.Workloads.Sqlite.ops_per_sec /. r_n.Workloads.Sqlite.ops_per_sec in
  let predicted =
    Cki.Kernel_app.predicted_speedup
      ~op_ns:(1e9 /. r_n.Workloads.Sqlite.ops_per_sec)
      ~syscalls_per_op:r_n.Workloads.Sqlite.syscalls_per_op
  in
  check_bool "speedup > 1" true (measured > 1.0);
  check_bool "matches analytical prediction" true (Float.abs (measured -. predicted) < 0.02)

(* ------------------------- Design-PKU ablation --------------------- *)

let test_design_pku_fault_penalty () =
  let pf cfg =
    let b = Cki.Container.backend (Cki.Container.create_standalone ~cfg ~mem_mib:128 ()) in
    let task = Virt.Backend.spawn b in
    let base =
      match
        Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Mmap { pages = 128; prot = Kernel_model.Vma.prot_rw })
      with
      | Kernel_model.Syscall.Rint v -> v
      | _ -> fail "mmap"
    in
    let _, ns =
      Hw.Clock.timed b.Virt.Backend.clock (fun () ->
          ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages:128 ~write:true))
    in
    ns /. 128.0
  in
  let pks = pf Cki.Config.default in
  let pku = pf Cki.Config.pku_design in
  check_bool "PKU adds ~750ns per fault" true (Float.abs (pku -. pks -. 750.0) < 10.0)

(* --------------------- S9: DoS containment ------------------------- *)

let test_dos_containment () =
  (* Container A's guest kernel deadloops and tries to keep interrupts
     off; the host still regains control via the timer, and container B
     makes progress. *)
  let machine = Hw.Machine.create ~cpus:2 ~mem_mib:256 () in
  let host = Cki.Host.create machine in
  let cfg = { Cki.Config.default with Cki.Config.segment_frames = 4096 } in
  let a = Cki.Container.create ~cfg host in
  let b = Cki.Container.create ~cfg host in
  let cpu_a = Cki.Container.cpu a 0 in
  Cki.Container.enter_guest_kernel cpu_a;
  (* A tries to disable interrupts: blocked. *)
  (match Hw.Cpu.exec_priv cpu_a Hw.Priv.Cli with
  | Error (Hw.Cpu.Blocked_instruction _) -> ()
  | _ -> fail "cli must be blocked");
  check_bool "IF still on" true cpu_a.Hw.Cpu.if_flag;
  (* A deadloops; host timer interrupts still get through the gate. *)
  let preemptions = ref 0 in
  for _ = 1 to 5 do
    match
      Cki.Gates.interrupt (Cki.Container.gates a) cpu_a ~vcpu:0 ~vector:Hw.Idt.vec_timer
        ~kind:Hw.Idt.Hardware (fun _ -> incr preemptions)
    with
    | Ok () -> ()
    | Error e -> fail (Cki.Gates.show_error e)
  done;
  check_int "host preempted the spinner 5 times" 5 !preemptions;
  (* B still runs: syscalls + faults proceed. *)
  let bb = Cki.Container.backend b in
  let task = Virt.Backend.spawn bb in
  (match Virt.Backend.syscall_exn bb task Kernel_model.Syscall.Getpid with
  | Kernel_model.Syscall.Rint _ -> ()
  | _ -> fail "B blocked");
  (* A's crash (triple-fault equivalent) only costs A its segment. *)
  Cki.Host.reclaim_segment host ~container:(Cki.Container.container_id a);
  match Virt.Backend.syscall_exn bb task Kernel_model.Syscall.Getpid with
  | Kernel_model.Syscall.Rint _ -> ()
  | _ -> fail "B affected by A's teardown"

let suite =
  [
    ( "ext/driver_sandbox",
      [
        test_case "load/unload + key recycling" `Quick test_driver_load_unload;
        test_case "key exhaustion" `Quick test_driver_key_exhaustion;
        test_case "invoke + heap access" `Quick test_driver_invoke_and_heap;
        test_case "memory escape -> killed" `Quick test_driver_memory_escape_killed;
        test_case "privileged instructions blocked" `Quick test_driver_priv_instructions_blocked;
        test_case "gate cheaper than IPC" `Quick test_driver_gate_cheaper_than_ipc;
      ] );
    ( "ext/kernel_app",
      [
        test_case "in-kernel syscall cost" `Quick test_inkernel_syscall_cost;
        test_case "speedup matches prediction" `Quick test_inkernel_speedup_matches_prediction;
      ] );
    ("ext/design_pku", [ test_case "fault injection penalty" `Quick test_design_pku_fault_penalty ]);
    ("integration/dos", [ test_case "S9 DoS containment" `Quick test_dos_containment ]);
  ]
