(* Tests for the virtualization backends: RunC, HVM (BM + nested),
   PVM — including the paper's microbenchmark anchors (Table 2). *)

open Alcotest

let check_int = check int
let check_bool = check bool

let close ?(tol = 0.02) expected actual =
  Float.abs (actual -. expected) <= tol *. expected +. 1.0

let getpid (b : Virt.Backend.t) =
  let task = Virt.Backend.spawn b in
  Virt.Backend.mean_latency b ~n:200 (fun () ->
      ignore (Virt.Backend.syscall_exn b task Kernel_model.Syscall.Getpid))

let pgfault (b : Virt.Backend.t) =
  let task = Virt.Backend.spawn b in
  let pages = 512 in
  let base =
    match
      Virt.Backend.syscall_exn b task
        (Kernel_model.Syscall.Mmap { pages; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> fail "mmap"
  in
  let _, ns =
    Hw.Clock.timed b.Virt.Backend.clock (fun () ->
        ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages ~write:true))
  in
  ns /. float_of_int pages

let mk_machine () = Hw.Machine.create ~cpus:2 ~mem_mib:64 ()

(* ------------------------------ RunC ------------------------------ *)

let test_runc_microbench () =
  let b = Virt.Runc.create (mk_machine ()) in
  check_bool "getpid ~93ns" true (close 93.0 (getpid b));
  check_bool "pgfault ~1000ns" true (close 1000.0 (pgfault b));
  check_bool "no hypercall" false b.Virt.Backend.supports_hypercall;
  check_int "1D walk" 4 b.Virt.Backend.walk_refs

(* ------------------------------- HVM ------------------------------ *)

let test_hvm_bm_microbench () =
  let b = Virt.Hvm.create (mk_machine ()) in
  check_bool "getpid native" true (close 90.0 (getpid b));
  check_bool "pgfault ~3257ns" true (close 3257.0 (pgfault b));
  let t0 = Hw.Clock.now b.Virt.Backend.clock in
  b.Virt.Backend.empty_hypercall ();
  check_bool "hypercall ~1088ns" true (close 1088.0 (Hw.Clock.now b.Virt.Backend.clock -. t0));
  check_int "2D walk" 24 b.Virt.Backend.walk_refs

let test_hvm_nst_microbench () =
  let b = Virt.Hvm.create ~env:Virt.Env.Nested (mk_machine ()) in
  check_bool "pgfault ~32565ns" true (close 32565.0 (pgfault b));
  let t0 = Hw.Clock.now b.Virt.Backend.clock in
  b.Virt.Backend.empty_hypercall ();
  check_bool "hypercall ~6746ns" true (close 6746.0 (Hw.Clock.now b.Virt.Backend.clock -. t0))

let test_hvm_ept_fault_counting () =
  let b = Virt.Hvm.create (mk_machine ()) in
  let task = Virt.Backend.spawn b in
  let clock = b.Virt.Backend.clock in
  let base =
    match
      Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Mmap { pages = 16; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> fail "mmap"
  in
  let before = Hw.Clock.occurrences clock "ept_fault" in
  ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages:16 ~write:true);
  check_int "one EPT fault per fresh page" (before + 16) (Hw.Clock.occurrences clock "ept_fault")

let test_hvm_gfn_recycling_avoids_ept_faults () =
  let b = Virt.Hvm.create (mk_machine ()) in
  let task = Virt.Backend.spawn b in
  let clock = b.Virt.Backend.clock in
  let mmap_touch_unmap () =
    let base =
      match
        Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Mmap { pages = 8; prot = Kernel_model.Vma.prot_rw })
      with
      | Kernel_model.Syscall.Rint v -> v
      | _ -> fail "mmap"
    in
    ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages:8 ~write:true);
    ignore (Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Munmap { addr = base; pages = 8 }))
  in
  mmap_touch_unmap ();
  let after_first = Hw.Clock.occurrences clock "ept_fault" in
  mmap_touch_unmap ();
  (* Recycled gfns keep their EPT mappings: no new violations. *)
  check_int "no EPT faults on recycled memory" after_first (Hw.Clock.occurrences clock "ept_fault")

let test_hvm_huge_ept_amortizes () =
  let b = Virt.Hvm.create ~ept_huge:true (mk_machine ()) in
  let task = Virt.Backend.spawn b in
  let clock = b.Virt.Backend.clock in
  let base =
    match
      Virt.Backend.syscall_exn b task
        (Kernel_model.Syscall.Mmap { pages = 1024; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> fail "mmap"
  in
  let before = Hw.Clock.occurrences clock "ept_fault" in
  ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages:1024 ~write:true);
  let faults = Hw.Clock.occurrences clock "ept_fault" - before in
  check_bool "amortized to ~2 faults per 1024 pages" true (faults <= 3);
  check_int "huge 2D walk refs" 15 b.Virt.Backend.walk_refs_huge

(* ------------------------------- PVM ------------------------------ *)

let test_pvm_microbench () =
  let b = Virt.Pvm.create (mk_machine ()) in
  check_bool "getpid ~336ns (syscall redirection)" true (close 336.0 (getpid b));
  check_bool "pgfault ~4425ns (vm exits + SPT emulation)" true (close 4425.0 (pgfault b));
  let t0 = Hw.Clock.now b.Virt.Backend.clock in
  b.Virt.Backend.empty_hypercall ();
  check_bool "hypercall ~466ns" true (close 466.0 (Hw.Clock.now b.Virt.Backend.clock -. t0));
  check_int "shadow = 1D walk" 4 b.Virt.Backend.walk_refs

let test_pvm_nested_slightly_worse () =
  let bm = Virt.Pvm.create (mk_machine ()) in
  let nst = Virt.Pvm.create ~env:Virt.Env.Nested (mk_machine ()) in
  check_bool "same syscall cost" true (close 336.0 (getpid nst));
  check_bool "nested fault costlier" true (pgfault nst > pgfault bm)

let test_pvm_fault_context_switches () =
  let b = Virt.Pvm.create (mk_machine ()) in
  let task = Virt.Backend.spawn b in
  let clock = b.Virt.Backend.clock in
  let base =
    match
      Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Mmap { pages = 1; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> fail "mmap"
  in
  let before = Hw.Clock.occurrences clock "pvm_fault_ctx_switch" in
  Kernel_model.Mm.touch task.Kernel_model.Task.mm base ~write:true;
  check_int "6 context switches per fault" (before + 6)
    (Hw.Clock.occurrences clock "pvm_fault_ctx_switch")

let test_pvm_shadow_sync () =
  let b = Virt.Pvm.create (mk_machine ()) in
  let task = Virt.Backend.spawn b in
  let clock = b.Virt.Backend.clock in
  let base =
    match
      Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Mmap { pages = 4; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> fail "mmap"
  in
  let before = Hw.Clock.occurrences clock "shadow_sync" in
  ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages:4 ~write:true);
  check_int "one shadow sync per installed PTE" (before + 4)
    (Hw.Clock.occurrences clock "shadow_sync")

let test_pvm_process_switch_needs_hypercall () =
  let b = Virt.Pvm.create (mk_machine ()) in
  let k = b.Virt.Backend.kernel in
  let t1 = Virt.Backend.spawn b in
  let t2 = Virt.Backend.spawn b in
  let clock = b.Virt.Backend.clock in
  let before = Hw.Clock.occurrences clock "pvm_hypercall" in
  Kernel_model.Kernel.context_switch k ~from_pid:t1.Kernel_model.Task.pid ~to_pid:t2.Kernel_model.Task.pid;
  check_bool "CR3 switch trapped to host" true
    (Hw.Clock.occurrences clock "pvm_hypercall" > before)

(* ------------------------- Cross-backend ordering ------------------ *)

let test_fault_cost_ordering () =
  let runc = pgfault (Virt.Runc.create (mk_machine ())) in
  let cki = pgfault (Cki.Container.backend (Cki.Container.create_standalone ~mem_mib:160 ())) in
  let hvm = pgfault (Virt.Hvm.create (mk_machine ())) in
  let pvm = pgfault (Virt.Pvm.create (mk_machine ())) in
  let hvm_nst = pgfault (Virt.Hvm.create ~env:Virt.Env.Nested (mk_machine ())) in
  check_bool "RunC < CKI" true (runc < cki);
  check_bool "CKI < HVM-BM" true (cki < hvm);
  check_bool "HVM-BM < PVM" true (hvm < pvm);
  check_bool "PVM < HVM-NST" true (pvm < hvm_nst)

let suite =
  [
    ("virt/runc", [ test_case "microbench anchors" `Quick test_runc_microbench ]);
    ( "virt/hvm",
      [
        test_case "BM microbench anchors" `Quick test_hvm_bm_microbench;
        test_case "nested microbench anchors" `Quick test_hvm_nst_microbench;
        test_case "EPT fault per fresh page" `Quick test_hvm_ept_fault_counting;
        test_case "gfn recycling avoids EPT faults" `Quick test_hvm_gfn_recycling_avoids_ept_faults;
        test_case "2M EPT amortizes faults" `Quick test_hvm_huge_ept_amortizes;
      ] );
    ( "virt/pvm",
      [
        test_case "microbench anchors" `Quick test_pvm_microbench;
        test_case "nested slightly worse" `Quick test_pvm_nested_slightly_worse;
        test_case "6 ctx switches per fault" `Quick test_pvm_fault_context_switches;
        test_case "shadow sync per PTE" `Quick test_pvm_shadow_sync;
        test_case "process switch traps" `Quick test_pvm_process_switch_needs_hypercall;
      ] );
    ("virt/ordering", [ test_case "page-fault cost ordering" `Quick test_fault_cost_ordering ]);
  ]
