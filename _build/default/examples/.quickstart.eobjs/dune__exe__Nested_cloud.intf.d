examples/nested_cloud.mli:
