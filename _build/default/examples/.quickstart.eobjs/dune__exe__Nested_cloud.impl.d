examples/nested_cloud.ml: Cki Hw Kernel_model List Printf Virt Workloads
