examples/kv_serving.mli:
