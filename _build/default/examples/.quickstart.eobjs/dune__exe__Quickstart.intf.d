examples/quickstart.mli:
