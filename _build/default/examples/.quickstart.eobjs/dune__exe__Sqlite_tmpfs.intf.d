examples/sqlite_tmpfs.mli:
