examples/security_attacks.mli:
