examples/quickstart.ml: Bytes Cki Format Hw Kernel_model Printf Virt
