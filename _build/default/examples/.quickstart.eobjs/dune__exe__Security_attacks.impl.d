examples/security_attacks.ml: Cki Hw List Printf
