examples/sqlite_tmpfs.ml: Cki Hw List Printf Virt Workloads
