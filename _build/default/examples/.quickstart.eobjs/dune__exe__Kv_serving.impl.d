examples/kv_serving.ml: Cki Hw List Printf Virt Workloads
