(* CKI reproduction benchmark harness.

   Regenerates every table and figure of the paper's evaluation (see
   DESIGN.md section 4) plus the attack suite and Bechamel benches of
   the simulator primitives.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe fig12      # one experiment
     dune exec bench/main.exe list       # list experiment ids *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [ "list" ] ->
      List.iter (fun (name, _) -> print_endline name) Experiments.all;
      print_endline "simbench"
  | [] ->
      Printf.printf "CKI (EuroSys'25) reproduction — full benchmark run\n";
      Printf.printf "===================================================\n";
      List.iter
        (fun (_, f) ->
          f ();
          flush stdout)
        Experiments.all;
      Simbench.run ()
  | names ->
      List.iter
        (fun name ->
          if name = "simbench" then Simbench.run ()
          else
            match List.assoc_opt name Experiments.all with
            | Some f -> f ()
            | None ->
                Printf.eprintf "unknown experiment %S (try: dune exec bench/main.exe list)\n" name;
                exit 1)
        names
