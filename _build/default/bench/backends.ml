(* Fresh backend instances for the experiments.  Every call builds its
   own simulated machine so runs are independent and reproducible. *)

let machine () = Hw.Machine.create ~cpus:4 ~mem_mib:768 ()

let runc () = Virt.Runc.create (machine ())
let hvm_bm ?(ept_huge = false) () = Virt.Hvm.create ~ept_huge (machine ())
let hvm_nst () = Virt.Hvm.create ~env:Virt.Env.Nested (machine ())
let pvm_bm () = Virt.Pvm.create (machine ())
let pvm_nst () = Virt.Pvm.create ~env:Virt.Env.Nested (machine ())

let cki ?(env = Virt.Env.Bare_metal) ?(cfg = Cki.Config.default) () =
  let cfg = { cfg with Cki.Config.segment_frames = 131072 (* 512 MiB *) } in
  Cki.Container.backend (Cki.Container.create_standalone ~env ~cfg ~mem_mib:768 ())

let cki_bm () = cki ()
let cki_nst () = cki ~env:Virt.Env.Nested ()
let cki_wo_opt2 () = cki ~cfg:Cki.Config.wo_opt2 ()
let cki_wo_opt3 () = cki ~cfg:Cki.Config.wo_opt3 ()

(* The standard five-way comparison of Figures 4/5/12. *)
let five_way () =
  [ hvm_nst (); pvm_nst (); runc (); hvm_bm (); pvm_bm () ]

(* Measure simulated latency of [f] on a backend. *)
let time (b : Virt.Backend.t) f = snd (Hw.Clock.timed b.Virt.Backend.clock f)
