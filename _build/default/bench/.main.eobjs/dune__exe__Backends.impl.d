bench/backends.ml: Cki Hw Virt
