bench/main.ml: Array Experiments List Printf Simbench Sys
