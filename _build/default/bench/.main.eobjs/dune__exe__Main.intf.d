bench/main.mli:
