bench/simbench.ml: Analyze Bechamel Benchmark Cki Hashtbl Hw Instance Kernel_model List Measure Printf Staged Test Time Toolkit Virt
