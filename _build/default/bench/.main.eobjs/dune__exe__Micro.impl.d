bench/micro.ml: Backends Hw Kernel_model List Virt
