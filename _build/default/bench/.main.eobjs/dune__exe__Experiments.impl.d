bench/experiments.ml: Backends Cki Hw List Micro Printf Report String Virt Workloads
