(* The three microbenchmark primitives of Table 2 / Figure 10, measured
   in simulated nanoseconds on any backend. *)

let getpid_ns (b : Virt.Backend.t) =
  let task = Virt.Backend.spawn b in
  Virt.Backend.mean_latency b ~n:1000 (fun () ->
      ignore (Virt.Backend.syscall_exn b task Kernel_model.Syscall.Getpid))

(* Allocate a large region and touch each 4 KiB page (the paper's
   page-fault microbenchmark). *)
let pgfault_ns ?(pages = 4096) (b : Virt.Backend.t) =
  let task = Virt.Backend.spawn b in
  let base =
    match
      Virt.Backend.syscall_exn b task
        (Kernel_model.Syscall.Mmap { pages; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> failwith "mmap"
  in
  let ns =
    Backends.time b (fun () ->
        ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages ~write:true))
  in
  ns /. float_of_int pages

let hypercall_ns (b : Virt.Backend.t) =
  if not b.Virt.Backend.supports_hypercall then nan
  else
    Virt.Backend.mean_latency b ~n:1000 (fun () -> b.Virt.Backend.empty_hypercall ())

(* Event-accounted breakdown of the page-fault path (Figure 10a): total
   plus the share attributed to each cost category. *)
let pgfault_breakdown ?(pages = 2048) (b : Virt.Backend.t) =
  let task = Virt.Backend.spawn b in
  let base =
    match
      Virt.Backend.syscall_exn b task
        (Kernel_model.Syscall.Mmap { pages; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> failwith "mmap"
  in
  let clock = b.Virt.Backend.clock in
  let spent_before =
    List.map (fun e -> (e, Hw.Clock.spent_on clock e))
      [ "pf_service"; "ept_fault_bm"; "ept_fault_nst"; "pvm_fault_vmexits"; "pvm_fault_spt";
        "pvm_fault_nst_extra"; "ksm_call" ]
  in
  let total =
    Backends.time b (fun () ->
        ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages ~write:true))
  in
  let comps =
    List.filter_map
      (fun (e, before) ->
        let d = (Hw.Clock.spent_on clock e -. before) /. float_of_int pages in
        if d > 0.01 then Some (e, d) else None)
      spent_before
  in
  (total /. float_of_int pages, comps)
