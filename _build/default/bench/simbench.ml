(* Bechamel microbenchmarks of the simulator's own primitives (real
   wall-clock time, not simulated time): these keep the substrate
   honest — a page-table walk or a KSM-validated map should cost
   microseconds of host time at most, or the app-level experiments
   above would not be runnable. *)

open Bechamel
open Toolkit

let make_tests () =
  let mem = Hw.Phys_mem.create ~frames:65536 in
  let pt = Hw.Page_table.create mem ~owner:Hw.Phys_mem.Host in
  (* Pre-map a region to walk. *)
  for i = 0 to 511 do
    ignore
      (Hw.Page_table.map pt ~va:(0x1000_0000 + (i * 4096)) ~pfn:(i + 100)
         ~flags:Hw.Pte.default_flags ())
  done;
  let counter = ref 0 in
  let walk =
    Test.make ~name:"page_table.walk"
      (Staged.stage (fun () ->
           counter := (!counter + 1) land 511;
           ignore (Hw.Page_table.walk pt (0x1000_0000 + (!counter * 4096)))))
  in
  let tlb = Hw.Tlb.create () in
  Hw.Tlb.insert tlb ~pcid:1 ~va:0x5000 { Hw.Tlb.pfn = 5; flags = Hw.Pte.default_flags; level = 1 };
  let tlb_lookup =
    Test.make ~name:"tlb.lookup" (Staged.stage (fun () -> ignore (Hw.Tlb.lookup tlb ~pcid:1 0x5000)))
  in
  let buddy = Kernel_model.Buddy.create ~base:0 ~frames:4096 in
  let buddy_cycle =
    Test.make ~name:"buddy.alloc+free"
      (Staged.stage (fun () ->
           let f = Kernel_model.Buddy.alloc buddy in
           Kernel_model.Buddy.free buddy f))
  in
  let c = Cki.Container.create_standalone ~mem_mib:256 () in
  let b = Cki.Container.backend c in
  let task = Virt.Backend.spawn b in
  let getpid =
    Test.make ~name:"cki.syscall(getpid)"
      (Staged.stage (fun () ->
           ignore (Virt.Backend.syscall_exn b task Kernel_model.Syscall.Getpid)))
  in
  let pkrs_check =
    Test.make ~name:"pks.allows"
      (Staged.stage (fun () ->
           ignore (Hw.Pks.allows Hw.Pks.pkrs_guest ~key:Hw.Pks.pkey_ptp Hw.Pks.Write)))
  in
  [ walk; tlb_lookup; buddy_cycle; getpid; pkrs_check ]

let run () =
  Printf.printf "\nSimulator-primitive microbenchmarks (host wall-clock)\n";
  Printf.printf "=====================================================\n";
  let tests = make_tests () in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let tbl = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-24s %10.1f ns/op\n" name est
          | Some _ | None -> Printf.printf "  %-24s (no estimate)\n" name)
        tbl)
    tests
