(* Executable attack scenarios against a CKI container (threat model of
   Section 3.4, defences of Sections 4.1-4.4 and 6).

   Each attack returns [Blocked mechanism] describing which defence
   stopped it, or [Succeeded] — tests assert every one is blocked. *)

type outcome = Blocked of string | Succeeded [@@deriving show { with_path = false }, eq]

let is_blocked = function Blocked _ -> true | Succeeded -> false

(* A compromised guest kernel context on vCPU 0. *)
let as_guest (c : Container.t) =
  let cpu = Container.cpu c 0 in
  Container.enter_guest_kernel cpu;
  cpu

(* A1. Execute a destructive privileged instruction (Table 3). *)
let attempt_priv_instruction c (inst : Hw.Priv.t) =
  let cpu = as_guest c in
  match Hw.Cpu.exec_priv cpu inst with
  | Error (Hw.Cpu.Blocked_instruction _) -> Blocked "PKS priv-instruction extension"
  | Error _ -> Blocked "CPU fault"
  | Ok () -> Succeeded

(* A2. Write a declared page-table page through the direct map. *)
let attempt_ptp_write c =
  let cpu = as_guest c in
  let ksm = Container.ksm c in
  (* Find any declared PTP in guest memory. *)
  let buddy = Container.buddy c in
  ignore buddy;
  let mem = Hw.Machine.mem (Host.machine c.Container.host) in
  let kernel_pt = Hw.Page_table.of_root mem (Ksm.kernel_root ksm) in
  let victim =
    (* Allocate + declare a fresh PTP to attack. *)
    let pfn = Kernel_model.Buddy.alloc (Container.buddy c) in
    (match Ksm.declare_ptp ksm ~pfn ~level:1 with
    | Ok () -> ()
    | Error e -> failwith (Ksm.show_error e));
    pfn
  in
  let va = Layout.direct_va_of_pa (Hw.Addr.pa_of_pfn victim) in
  match Hw.Cpu.access cpu kernel_pt ~va ~access_kind:Hw.Pks.Write () with
  | Error (Hw.Cpu.Pks_violation _) -> Blocked "pkey_ptp read-only domain"
  | Error _ -> Blocked "page-table permissions"
  | Ok _ -> Succeeded

(* A3. Ask the KSM to map monitor memory into guest space. *)
let attempt_map_ksm_memory c =
  let ksm = Container.ksm c in
  let mem = Hw.Machine.mem (Host.machine c.Container.host) in
  (* Pick a KSM-owned frame. *)
  let rec find pfn =
    if pfn >= Hw.Phys_mem.total_frames mem then None
    else
      match Hw.Phys_mem.owner mem pfn with
      | Hw.Phys_mem.Ksm _ -> Some pfn
      | _ -> find (pfn + 1)
  in
  match find 0 with
  | None -> failwith "no KSM frame found"
  | Some target -> (
      let root = Ksm.kernel_root ksm in
      match
        Ksm.guest_map ksm ~root ~va:0x4000_0000 ~pfn:target
          ~flags:{ Hw.Pte.default_flags with writable = true; user = true; nx = true }
          ~alloc_ptp:(fun () -> Kernel_model.Buddy.alloc (Container.buddy c))
      with
      | Error (Ksm.Targets_monitor_memory _) -> Blocked "KSM PTE validation (monitor memory)"
      | Error _ -> Blocked "KSM PTE validation"
      | Ok () -> Succeeded)

(* A4. Map a declared PTP as a writable data page (bypassing I2). *)
let attempt_map_ptp_writable c =
  let ksm = Container.ksm c in
  let pfn = Kernel_model.Buddy.alloc (Container.buddy c) in
  (match Ksm.declare_ptp ksm ~pfn ~level:1 with Ok () -> () | Error e -> failwith (Ksm.show_error e));
  match
    Ksm.guest_map ksm ~root:(Ksm.kernel_root ksm) ~va:0x5000_0000 ~pfn
      ~flags:{ Hw.Pte.default_flags with writable = true; user = false; nx = true }
      ~alloc_ptp:(fun () -> Kernel_model.Buddy.alloc (Container.buddy c))
  with
  | Error (Ksm.Maps_declared_ptp _) -> Blocked "KSM PTE validation (PTP aliasing)"
  | Error _ -> Blocked "KSM PTE validation"
  | Ok () -> Succeeded

(* A5. Create a new kernel-executable mapping (to forge wrpkrs code). *)
let attempt_kernel_exec_mapping c =
  let ksm = Container.ksm c in
  let pfn = Kernel_model.Buddy.alloc (Container.buddy c) in
  match
    Ksm.guest_map ksm ~root:(Ksm.kernel_root ksm) ~va:0x6000_0000 ~pfn
      ~flags:{ Hw.Pte.default_flags with writable = false; user = false; nx = false }
      ~alloc_ptp:(fun () -> Kernel_model.Buddy.alloc (Container.buddy c))
  with
  | Error (Ksm.Kernel_executable_mapping _) -> Blocked "KSM kernel-exec freeze"
  | Error _ -> Blocked "KSM PTE validation"
  | Ok () -> Succeeded

(* A6. Load CR3 with an arbitrary (undeclared) frame. *)
let attempt_cr3_hijack c =
  let ksm = Container.ksm c in
  let rogue = Kernel_model.Buddy.alloc (Container.buddy c) in
  match Ksm.load_cr3 ksm ~vcpu:0 ~root:rogue with
  | Error (Ksm.Undeclared_root _) -> Blocked "KSM CR3 validation (invariant I3)"
  | Error _ -> Blocked "KSM CR3 validation"
  | Ok _ -> Succeeded

(* A7. ROP to the wrpkrs at the gate's *exit* (which should restore
   PKRS_GUEST) with all-access rights in the register. *)
let attempt_gate_pkrs_tamper c =
  let cpu = as_guest c in
  let gates = Container.gates c in
  match Gates.ksm_call gates cpu ~vcpu:0 ~tamper_exit:Hw.Pks.all_access (fun () -> ()) with
  | Error Gates.Pkrs_tamper_detected ->
      if cpu.Hw.Cpu.pkrs = Hw.Pks.pkrs_guest then Blocked "switch_pks post-write check"
      else Succeeded (* detection fired but rights were left permissive *)
  | Error _ -> Blocked "gate abort"
  | Ok () -> Succeeded

(* A8. Forge an interrupt by jumping to the interrupt-gate entry. *)
let attempt_interrupt_forgery c =
  let cpu = as_guest c in
  let gates = Container.gates c in
  match
    Gates.interrupt gates cpu ~vcpu:0 ~vector:Hw.Idt.vec_timer ~kind:Hw.Idt.Software (fun _ ->
        ())
  with
  | Error Gates.Forgery_detected -> Blocked "hardware-only PKRS switch (E4)"
  | Error _ -> Blocked "gate abort"
  | Ok () -> Succeeded

(* A9. Disable interrupts and spin (DoS): cli is blocked and sysret
   pins IF back on. *)
let attempt_interrupt_monopolize c =
  let cpu = as_guest c in
  match Hw.Cpu.exec_priv cpu Hw.Priv.Cli with
  | Error (Hw.Cpu.Blocked_instruction _) -> (
      (* Second avenue: craft RFLAGS.IF=0 and sysret to user mode. *)
      cpu.Hw.Cpu.if_flag <- false;
      match Hw.Cpu.exec_priv cpu Hw.Priv.Sysret with
      | Ok () when cpu.Hw.Cpu.if_flag -> Blocked "cli blocked + sysret IF pinning (E3)"
      | Ok () -> Succeeded
      | Error _ -> Blocked "sysret fault")
  | Error _ -> Blocked "CPU fault"
  | Ok () -> Succeeded

(* A10. Rewrite the IDT: its pages live in KSM memory. *)
let attempt_idt_rewrite c =
  let cpu = as_guest c in
  let mem = Hw.Machine.mem (Host.machine c.Container.host) in
  let kernel_pt = Hw.Page_table.of_root mem (Ksm.kernel_root (Container.ksm c)) in
  (* The IDT lives somewhere in the KSM region; attack the first page. *)
  match Hw.Cpu.access cpu kernel_pt ~va:Layout.ksm_base ~access_kind:Hw.Pks.Write () with
  | Error (Hw.Cpu.Pks_violation _) -> Blocked "IDT in PKS-protected KSM memory"
  | Error _ -> Blocked "page-table permissions"
  | Ok _ -> Succeeded

(* A11. Flush another container's TLB entries with invlpg. *)
let attempt_cross_container_tlb_flush c ~victim_pcid =
  let cpu = as_guest c in
  let tlb = cpu.Hw.Cpu.tlb in
  (* Plant a victim translation, then invlpg the same VA from the
     attacker's PCID. *)
  let va = 0x1234000 in
  Hw.Tlb.insert tlb ~pcid:victim_pcid ~va
    { Hw.Tlb.pfn = 42; flags = Hw.Pte.default_flags; level = 1 };
  (match Hw.Cpu.exec_priv cpu (Hw.Priv.Invlpg va) with
  | Ok () -> ()
  | Error _ -> ());
  match Hw.Tlb.lookup tlb ~pcid:victim_pcid va with
  | Some _ -> Blocked "PCID-confined invlpg"
  | None -> Succeeded

(* A12. Touch the per-vCPU area (secure stacks / saved contexts). *)
let attempt_pervcpu_read c =
  let cpu = as_guest c in
  let ksm = Container.ksm c in
  match Ksm.load_cr3 ksm ~vcpu:0 ~root:(Ksm.kernel_root ksm) with
  | Error e -> failwith (Ksm.show_error e)
  | Ok copy -> (
      let mem = Hw.Machine.mem (Host.machine c.Container.host) in
      let pt = Hw.Page_table.of_root mem copy in
      match Hw.Cpu.access cpu pt ~va:Layout.pervcpu_base ~access_kind:Hw.Pks.Read () with
      | Error (Hw.Cpu.Pks_violation _) -> Blocked "per-vCPU area in pkey_ksm domain"
      | Error _ -> Blocked "page-table permissions"
      | Ok _ -> Succeeded)

(* The full suite, with labels, for tests and the security example. *)
let all c =
  [
    ("priv: lidt", attempt_priv_instruction c Hw.Priv.Lidt);
    ("priv: wrmsr", attempt_priv_instruction c (Hw.Priv.Wrmsr 0x10));
    ("priv: mov-to-cr3", attempt_priv_instruction c Hw.Priv.Mov_to_cr3);
    ("priv: cli", attempt_priv_instruction c Hw.Priv.Cli);
    ("priv: out", attempt_priv_instruction c (Hw.Priv.Out_port 0x60));
    ("priv: invpcid", attempt_priv_instruction c Hw.Priv.Invpcid);
    ("ptp direct write", attempt_ptp_write c);
    ("map KSM memory", attempt_map_ksm_memory c);
    ("map PTP writable", attempt_map_ptp_writable c);
    ("new kernel-exec mapping", attempt_kernel_exec_mapping c);
    ("CR3 hijack", attempt_cr3_hijack c);
    ("gate PKRS tamper (ROP)", attempt_gate_pkrs_tamper c);
    ("interrupt forgery", attempt_interrupt_forgery c);
    ("interrupt monopolize", attempt_interrupt_monopolize c);
    ("IDT rewrite", attempt_idt_rewrite c);
    ("cross-container TLB flush", attempt_cross_container_tlb_flush c ~victim_pcid:99);
    ("per-vCPU area read", attempt_pervcpu_read c);
  ]
