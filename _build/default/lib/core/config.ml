(* CKI feature configuration — the knobs the paper ablates. *)

type t = {
  opt2 : bool;
      (** eliminate page-table switches on the syscall path (guest
          kernel mapped U/K-isolated inside guest-user address spaces);
          disabling reproduces "CKI-wo-OPT2" *)
  opt3 : bool;
      (** sysret/swapgs execute natively in the guest kernel;
          disabling routes them through the KSM ("CKI-wo-OPT3") *)
  hugepages : bool;  (** back container memory with 2 MiB mappings *)
  pti_in_gates : bool;
      (** pay PTI/IBRS in the KSM gate — CKI eliminates this because
          only container-private data is mapped in the KSM; enabling it
          quantifies the saving *)
  emulate_pvm_syscall : bool;
      (** Section 7.3's experiment: run CKI but charge PVM's syscall
          redirection, to isolate where the KV-store win comes from *)
  design_pku : bool;
      (** Section 3.1's rejected alternative: build the third privilege
          level with PKU in user mode instead of PKS in kernel mode.
          Exceptions must then be injected from host to guest across
          rings, adding ~750 ns to every page fault (the reason
          Design-PKS was chosen) *)
  vcpus : int;  (** vCPUs per container *)
  segment_frames : int;  (** contiguous hPA frames delegated at boot *)
}

let default =
  {
    opt2 = true;
    opt3 = true;
    hugepages = false;
    pti_in_gates = false;
    emulate_pvm_syscall = false;
    design_pku = false;
    vcpus = 2;
    segment_frames = 16384 (* 64 MiB *);
  }

let wo_opt2 = { default with opt2 = false }
let wo_opt3 = { default with opt3 = false }
let pku_design = { default with design_pku = true }

let label t =
  if not t.opt2 then "CKI-wo-OPT2"
  else if not t.opt3 then "CKI-wo-OPT3"
  else if t.hugepages then "CKI-2M"
  else if t.emulate_pvm_syscall then "CKI-pvmsys"
  else if t.design_pku then "Design-PKU"
  else "CKI"
