lib/core/pervcpu.pp.ml: Array Hw Kernel_model Layout Ppx_deriving_runtime
