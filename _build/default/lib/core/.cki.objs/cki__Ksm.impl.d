lib/core/ksm.pp.ml: Array Config Hashtbl Hw Layout List Option Pervcpu Ppx_deriving_runtime
