lib/core/container.pp.mli: Config Gates Hashtbl Host Hw Kernel_model Ksm Virt
