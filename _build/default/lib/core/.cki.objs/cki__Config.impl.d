lib/core/config.pp.ml:
