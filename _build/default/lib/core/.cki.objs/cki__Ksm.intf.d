lib/core/ksm.pp.mli: Config Format Hw Pervcpu
