lib/core/attacks.pp.ml: Container Gates Host Hw Kernel_model Ksm Layout Ppx_deriving_runtime
