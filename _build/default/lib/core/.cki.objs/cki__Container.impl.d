lib/core/container.pp.ml: Array Config Gates Hashtbl Host Hw Kernel_model Ksm Printf Virt
