lib/core/driver_sandbox.pp.ml: Hashtbl Hw List Ppx_deriving_runtime
