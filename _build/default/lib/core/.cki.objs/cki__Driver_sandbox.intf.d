lib/core/driver_sandbox.pp.mli: Format Hashtbl Hw
