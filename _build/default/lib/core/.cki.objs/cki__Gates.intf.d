lib/core/gates.pp.mli: Config Format Hw Kernel_model Ksm
