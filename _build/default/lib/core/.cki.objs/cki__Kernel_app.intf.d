lib/core/kernel_app.pp.mli: Virt
