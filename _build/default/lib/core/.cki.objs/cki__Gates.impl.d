lib/core/gates.pp.ml: Config Hw Kernel_model Ksm Pervcpu Ppx_deriving_runtime
