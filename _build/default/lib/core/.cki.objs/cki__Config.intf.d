lib/core/config.pp.mli:
