lib/core/vcpu_sched.pp.mli: Container Host Queue
