lib/core/kernel_app.pp.ml: Hw Kernel_model Virt
