lib/core/host.pp.mli: Hw Kernel_model
