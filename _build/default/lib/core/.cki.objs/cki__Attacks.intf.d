lib/core/attacks.pp.mli: Container Format Hw
