lib/core/layout.pp.mli: Hw
