lib/core/host.pp.ml: Hw Kernel_model List
