lib/core/pervcpu.pp.mli: Format Hw Kernel_model
