lib/core/vcpu_sched.pp.ml: Container Gates Host Hw Queue
