lib/core/layout.pp.ml: Hw
