(** Executable attack scenarios against a CKI container (threat model
    of Section 3.4; defences of Sections 4.1-4.4 and 6).

    Each attack runs for real against the simulated CPU, page tables
    and KSM state, and reports which defence stopped it. *)

type outcome = Blocked of string | Succeeded

val pp_outcome : Format.formatter -> outcome -> unit
val show_outcome : outcome -> string
val equal_outcome : outcome -> outcome -> bool
val is_blocked : outcome -> bool

val attempt_priv_instruction : Container.t -> Hw.Priv.t -> outcome
(** Execute a destructive privileged instruction in guest context. *)

val attempt_ptp_write : Container.t -> outcome
(** Write a declared page-table page through the direct map. *)

val attempt_map_ksm_memory : Container.t -> outcome
(** Ask the KSM to map monitor memory into guest space. *)

val attempt_map_ptp_writable : Container.t -> outcome
(** Alias a declared PTP as a writable data page. *)

val attempt_kernel_exec_mapping : Container.t -> outcome
(** Create a new kernel-executable mapping (to forge wrpkrs code). *)

val attempt_cr3_hijack : Container.t -> outcome
(** Load CR3 with an undeclared frame. *)

val attempt_gate_pkrs_tamper : Container.t -> outcome
(** ROP to the gate-exit wrpkrs with all-access rights. *)

val attempt_interrupt_forgery : Container.t -> outcome
(** Jump to the interrupt-gate entry without hardware delivery. *)

val attempt_interrupt_monopolize : Container.t -> outcome
(** Disable interrupts (cli; then sysret with IF=0). *)

val attempt_idt_rewrite : Container.t -> outcome
(** Overwrite the IDT (it lives in KSM memory). *)

val attempt_cross_container_tlb_flush : Container.t -> victim_pcid:int -> outcome
(** invlpg another container's translations. *)

val attempt_pervcpu_read : Container.t -> outcome
(** Read the per-vCPU area (secure stacks / saved contexts). *)

val all : Container.t -> (string * outcome) list
(** The full labelled suite (17 attacks). *)
