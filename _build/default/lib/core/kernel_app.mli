(** Future-work extension 2 (Section 9): kernel-level syscall
    optimization — running a syscall-intensive application inside the
    kernel, in its own PKS domain, so syscalls become ~63 ns gate
    transitions instead of hardware ring crossings. *)

val in_kernel_syscall_cost : float
(** Two PKS switches (63 ns). *)

type t

val wrap_backend : Virt.Backend.t -> t
(** Wrap a CKI container backend so syscall round trips charge the
    in-kernel gate cost; page faults, hypercalls and device I/O are
    unchanged. Any existing workload can then run "in-kernel". *)

val backend : t -> Virt.Backend.t
val syscalls_elided : t -> int

val predicted_speedup : op_ns:float -> syscalls_per_op:float -> float
(** Analytical speedup for a workload profile — the tests compare the
    measured ablation against this. *)
