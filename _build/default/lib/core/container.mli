(** A CKI secure container: guest kernel + KSM + gates on a delegated
    hPA segment, exposed through the common {!Virt.Backend.t}.

    The platform wiring carries the paper's performance structure:
    native syscalls (OPT1/2/3), page faults handled by the guest kernel
    plus exactly two KSM calls (PTE update + iret = 77 ns), validated
    CR3 loads on process switches, 390 ns hypercalls with no L0
    involvement, and single-stage translation (the guest buddy
    allocator hands out host-physical frames directly). *)

type t = {
  backend : Virt.Backend.t;
  host : Host.t;
  ksm : Ksm.t;
  gates : Gates.t;
  cpus : Hw.Cpu.t array;
  buddy : Kernel_model.Buddy.t;
  cfg : Config.t;
  container_id : int;
  pcid : int;
  mutable current_vcpu : int;
  aspaces : (int, Hw.Addr.pfn) Hashtbl.t;
}

val backend : t -> Virt.Backend.t
val ksm : t -> Ksm.t
val gates : t -> Gates.t
val cpu : t -> int -> Hw.Cpu.t
val buddy : t -> Kernel_model.Buddy.t
val container_id : t -> int
val pcid : t -> int

val enter_guest_kernel : Hw.Cpu.t -> unit
(** Put a vCPU into the guest-kernel state: kernel mode with
    PKRS = PKRS_GUEST. *)

val create : ?env:Virt.Env.t -> ?cfg:Config.t -> Host.t -> t
(** Boot a container on [Host.t]: delegates a contiguous segment,
    constructs the KSM (trusted boot), allocates a PCID and vCPUs, and
    wires the guest kernel's platform. *)

val create_standalone : ?env:Virt.Env.t -> ?cfg:Config.t -> ?mem_mib:int -> unit -> t
(** Convenience: fresh machine + host + one container. *)
