(** Future-work extension 1 (Section 9): sandboxing untrusted kernel
    drivers directly within ring 0.

    The same machinery that deprivileges a container guest kernel — a
    PKS domain + the E2 instruction-blocking extension + call gates —
    isolates a buggy or malicious driver inside the host kernel,
    avoiding the microkernel alternative of a ring-3 driver server
    behind IPC. {!invoke} vs {!invoke_microkernel_style} quantifies
    the per-call saving. *)

val first_driver_key : int
(** PKS keys [first_driver_key ..] are recyclable driver domains; the
    16-key limit bounds {e concurrently loaded} drivers only. *)

type fault = Memory_escape of Hw.Addr.va | Priv_instruction of Hw.Priv.t

val pp_fault : Format.formatter -> fault -> unit
val show_fault : fault -> string

type t = private {
  name : string;
  key : int;
  clock : Hw.Clock.t;
  cpu : Hw.Cpu.t;
  driver_rights : Hw.Pks.rights;
  heap : (Hw.Addr.va, int) Hashtbl.t;
  mutable invocations : int;
  mutable faults : fault list;
  mutable dead : bool;
}

type registry

exception No_free_keys

val create_registry : Hw.Machine.t -> registry

val load : registry -> name:string -> heap_pages:int -> t
(** Load a driver into its own PKS domain: full access to its own key,
    read-only kernel text, no access to anything else.
    @raise No_free_keys when 13 drivers are already live. *)

val unload : registry -> t -> unit
(** Free the driver's heap and recycle its key. *)

val loaded_count : registry -> int
val free_key_count : registry -> int

val invoke : t -> (t -> 'a) -> ('a, fault) result
(** Enter the driver domain (two wrpkrs switches), run the body, exit.
    Fails fast once the driver has been killed. *)

val invoke_microkernel_style : t -> (t -> 'a) -> 'a
(** The ring-3 alternative: each call pays two ring crossings, two
    address-space switches and IPC bookkeeping — the ablation baseline. *)

val heap_write : t -> Hw.Addr.va -> unit
(** Driver body: write driver-private memory (allowed). *)

val attempt_kernel_write : t -> Hw.Addr.va -> [ `Escaped | `Killed ]
(** Driver body: write kernel memory. The PKS check fails and the
    driver domain is killed. *)

val attempt_priv : t -> Hw.Priv.t -> [ `Blocked | `Escaped | `Harmless ]
(** Driver body: execute a privileged instruction; extension E2 blocks
    the destructive ones exactly as for guest kernels. *)

val fault_count : t -> int
val invocation_count : t -> int
val is_dead : t -> bool
