(* Future-work extension 1 (Section 9): sandboxing untrusted kernel
   drivers directly within ring 0.

   The same machinery that deprivileges a container guest kernel —
   a PKS domain + the E2 instruction-blocking extension + call gates —
   isolates a buggy/malicious driver inside the host kernel, avoiding
   the microkernel alternative of running the driver in ring 3 behind
   IPC.  The cost argument is quantified by [invoke] vs
   [invoke_microkernel_style] (per-call: two PKS switches vs two ring
   crossings + two address-space switches + IPC bookkeeping). *)

(* PKS key assigned to sandboxed driver domains.  One key per live
   driver domain; the kernel recycles keys as drivers unload, so the
   16-key limit bounds *concurrently loaded* sandboxed drivers, not
   total drivers. *)
let first_driver_key = 3

type fault = Memory_escape of Hw.Addr.va | Priv_instruction of Hw.Priv.t
[@@deriving show { with_path = false }]

type t = {
  name : string;
  key : int;
  clock : Hw.Clock.t;
  cpu : Hw.Cpu.t;
  driver_rights : Hw.Pks.rights;  (** PKRS while the driver runs *)
  heap : (Hw.Addr.va, int) Hashtbl.t;  (** driver-private pages (va -> pfn) *)
  mutable invocations : int;
  mutable faults : fault list;  (** newest first *)
  mutable dead : bool;  (** killed after a fault; calls fail fast *)
}

type registry = {
  mem : Hw.Phys_mem.t;
  reg_clock : Hw.Clock.t;
  mutable free_keys : int list;
  mutable loaded : t list;
}

exception No_free_keys

let create_registry machine =
  {
    mem = Hw.Machine.mem machine;
    reg_clock = Hw.Machine.clock machine;
    free_keys = List.init (Hw.Pks.num_keys - first_driver_key) (fun i -> first_driver_key + i);
    loaded = [];
  }

(* Load a driver into its own PKS domain: the driver gets full access
   to its own key only; every other domain (kernel data, other
   drivers) is no-access.  Mirrors the guest-kernel deprivileging of
   Section 4.1 at driver granularity. *)
let load registry ~name ~heap_pages =
  match registry.free_keys with
  | [] -> raise No_free_keys
  | key :: rest ->
      registry.free_keys <- rest;
      let cpu = Hw.Cpu.create registry.reg_clock in
      let driver_rights =
        Hw.Pks.make ~default:Hw.Pks.No_access
          [ (key, Hw.Pks.Read_write); (Hw.Pks.pkey_guest, Hw.Pks.Read_only) ]
      in
      let heap = Hashtbl.create 64 in
      for i = 0 to heap_pages - 1 do
        let pfn = Hw.Phys_mem.alloc registry.mem ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data in
        Hashtbl.replace heap (0xd000_0000_0000 + (i * Hw.Addr.page_size)) pfn
      done;
      let t =
        { name; key; clock = registry.reg_clock; cpu; driver_rights; heap; invocations = 0;
          faults = []; dead = false }
      in
      registry.loaded <- t :: registry.loaded;
      t

let unload registry t =
  registry.loaded <- List.filter (fun d -> d != t) registry.loaded;
  registry.free_keys <- t.key :: registry.free_keys;
  Hashtbl.iter (fun _ pfn -> Hw.Phys_mem.free registry.mem pfn) t.heap;
  Hashtbl.reset t.heap;
  t.dead <- true

let loaded_count registry = List.length registry.loaded
let free_key_count registry = List.length registry.free_keys

(* Enter the driver domain, run [f] with a driver context, exit.  Two
   wrpkrs switches — the whole point of ring-0 sandboxing. *)
let invoke t f =
  if t.dead then Error (Memory_escape 0)
  else begin
    t.invocations <- t.invocations + 1;
    Hw.Clock.charge t.clock "driver_gate" (2.0 *. Hw.Cost.pks_switch);
    let saved = t.cpu.Hw.Cpu.pkrs in
    t.cpu.Hw.Cpu.pkrs <- t.driver_rights;
    let result = f t in
    t.cpu.Hw.Cpu.pkrs <- saved;
    Ok result
  end

(* The microkernel-style alternative, for the ablation bench: the
   driver lives in a ring-3 server; each call is an IPC round trip. *)
let invoke_microkernel_style t f =
  t.invocations <- t.invocations + 1;
  Hw.Clock.charge t.clock "driver_ipc"
    ((2.0 *. Hw.Cost.extra_mode_switch) +. (2.0 *. Hw.Cost.cr3_switch) +. 180.0);
  f t

(* ------------------------------------------------------------------ *)
(* Driver-visible operations (used by driver bodies under [invoke])    *)
(* ------------------------------------------------------------------ *)

(* Touch driver-private memory: allowed. *)
let heap_write t va =
  if not (Hashtbl.mem t.heap (Hw.Addr.page_align_down va)) then
    failwith "Driver_sandbox.heap_write: not a driver page"
  else if Hw.Pks.allows t.cpu.Hw.Cpu.pkrs ~key:t.key Hw.Pks.Write then ()
  else assert false

(* Attempt to write kernel memory (any page outside the driver's key):
   the PKS check fails, the driver domain is killed. *)
let attempt_kernel_write t va =
  if Hw.Pks.allows t.cpu.Hw.Cpu.pkrs ~key:Hw.Pks.pkey_guest Hw.Pks.Write then `Escaped
  else begin
    t.faults <- Memory_escape va :: t.faults;
    t.dead <- true;
    `Killed
  end

(* Attempt a privileged instruction from the driver domain: extension
   E2 blocks it exactly as for guest kernels (PKRS != 0). *)
let attempt_priv t inst =
  t.cpu.Hw.Cpu.mode <- Hw.Cpu.Kernel;
  t.cpu.Hw.Cpu.pkrs <- t.driver_rights;
  match Hw.Cpu.exec_priv t.cpu inst with
  | Error (Hw.Cpu.Blocked_instruction _) ->
      t.faults <- Priv_instruction inst :: t.faults;
      t.cpu.Hw.Cpu.pkrs <- Hw.Pks.all_access;
      `Blocked
  | Error _ -> `Blocked
  | Ok () ->
      t.cpu.Hw.Cpu.pkrs <- Hw.Pks.all_access;
      if Hw.Priv.blocked_in_guest inst then `Escaped else `Harmless

let fault_count t = List.length t.faults
let invocation_count t = t.invocations
let is_dead t = t.dead
