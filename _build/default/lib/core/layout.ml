(* Virtual-address layout of a CKI container address space.

   User space occupies the low half.  The guest kernel's direct map of
   its delegated hPA segments, the guest kernel image, the KSM region
   and the per-vCPU area live in the high half; the KSM and per-vCPU
   regions are tagged with [Hw.Pks.pkey_ksm], declared page-table pages
   with [Hw.Pks.pkey_ptp]. *)

let user_top = 0x7fff_ffff_0000

(* Guest-kernel direct map of delegated physical memory:
   va = direct_map_base + pa. *)
let direct_map_base = 0x8000_0000_0000

(* Guest kernel image (code/rodata), mapped kernel-executable at boot
   and frozen (no new kernel-executable mappings afterwards). *)
let kernel_image_base = 0x9000_0000_0000

(* KSM code/data incl. the IDT and interrupt-gate code. *)
let ksm_base = 0xa000_0000_0000

(* The per-vCPU area: *constant* virtual address — every per-vCPU
   page-table copy maps a different physical area here, so gate code
   can find its secure stack without trusting kernel_gs (Fig 8c). *)
let pervcpu_base = 0xb000_0000_0000

(* Size of each per-vCPU area (secure stack + vCPU context), pages. *)
let pervcpu_pages = 4

let direct_va_of_pa pa = direct_map_base + pa
let pa_of_direct_va va = va - direct_map_base
let in_user va = va < user_top
let in_direct_map va = va >= direct_map_base && va < kernel_image_base
let in_ksm va = va >= ksm_base && va < pervcpu_base
let in_pervcpu va = va >= pervcpu_base && va < pervcpu_base + (pervcpu_pages * Hw.Addr.page_size)

(* Top-level (L4) table indices of the fixed regions. *)
let l4_index va = Hw.Addr.index_at_level ~lvl:4 va
let l4_user_max = l4_index (user_top - 1)
let l4_direct = l4_index direct_map_base
let l4_kernel_image = l4_index kernel_image_base
let l4_ksm = l4_index ksm_base
let l4_pervcpu = l4_index pervcpu_base
