(** CKI feature configuration — the knobs the paper ablates. *)

type t = {
  opt2 : bool;
      (** no page-table switches on the syscall path; disabling
          reproduces "CKI-wo-OPT2" (Section 7.1) *)
  opt3 : bool;
      (** sysret/swapgs execute natively in the guest kernel;
          disabling reproduces "CKI-wo-OPT3" *)
  hugepages : bool;  (** back container memory with 2 MiB mappings *)
  pti_in_gates : bool;
      (** pay PTI/IBRS in the KSM gate — CKI normally elides it because
          only container-private data is mapped in the KSM (Section 3.3) *)
  emulate_pvm_syscall : bool;
      (** Section 7.3: charge PVM's syscall redirection on CKI to
          isolate where the KV-store win comes from *)
  design_pku : bool;
      (** Section 3.1's rejected alternative: PKU in user mode instead
          of PKS in kernel mode; adds ~750 ns fault injection *)
  vcpus : int;
  segment_frames : int;  (** contiguous hPA frames delegated at boot *)
}

val default : t
val wo_opt2 : t
val wo_opt3 : t
val pku_design : t

val label : t -> string
(** The display label benchmarks use ("CKI", "CKI-wo-OPT2", ...). *)
