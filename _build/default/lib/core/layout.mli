(** Virtual-address layout of a CKI container address space.

    User space occupies the low half; the guest kernel's direct map of
    its delegated hPA segments, the guest kernel image, the KSM region
    and the per-vCPU area live in the high half. KSM and per-vCPU
    regions carry {!Hw.Pks.pkey_ksm}; declared page-table pages carry
    {!Hw.Pks.pkey_ptp}. *)

val user_top : Hw.Addr.va

val direct_map_base : Hw.Addr.va
(** Guest-kernel direct map: [va = direct_map_base + pa]. *)

val kernel_image_base : Hw.Addr.va
(** Guest kernel code/rodata — kernel-executable, frozen at boot. *)

val ksm_base : Hw.Addr.va
(** KSM code/data incl. the IDT and interrupt-gate code. *)

val pervcpu_base : Hw.Addr.va
(** The per-vCPU area's {e constant} virtual address: every per-vCPU
    page-table copy maps a different physical area here, so gates find
    their secure stack without trusting kernel_gs (Figure 8c). *)

val pervcpu_pages : int

val direct_va_of_pa : Hw.Addr.pa -> Hw.Addr.va
val pa_of_direct_va : Hw.Addr.va -> Hw.Addr.pa
val in_user : Hw.Addr.va -> bool
val in_direct_map : Hw.Addr.va -> bool
val in_ksm : Hw.Addr.va -> bool
val in_pervcpu : Hw.Addr.va -> bool

val l4_index : Hw.Addr.va -> int
val l4_user_max : int
val l4_direct : int
val l4_kernel_image : int
val l4_ksm : int
val l4_pervcpu : int
