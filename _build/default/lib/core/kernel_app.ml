(* Future-work extension 2 (Section 9): kernel-level syscall
   optimization — running a syscall-intensive application *inside* the
   kernel, in its own PKS domain, so syscalls become function calls.

   The application is deprivileged exactly like a guest kernel
   (PKRS != 0 blocks destructive instructions; PKS walls off kernel
   data), but it shares the kernel's address space, so invoking a
   kernel service costs a gate transition instead of a ring crossing.

   [wrap_backend] produces a Virt.Backend.t view whose syscall path
   charges the in-kernel cost, so any existing workload (e.g. the
   SQLite db_bench patterns) can run "in-kernel" unchanged — that is
   the ablation `bench/main.exe ablation` reports. *)

(* A syscall by an in-kernel app: PKS gate in and out, no swapgs/
   sysret, no stack switch beyond the secure stack. *)
let in_kernel_syscall_cost = 2.0 *. Hw.Cost.pks_switch (* = 63 ns *)

type t = {
  backend : Virt.Backend.t;  (** the wrapped, in-kernel view *)
  underlying : Virt.Backend.t;
  mutable syscalls_elided : int;
}

(* Wrap a CKI container backend so that syscall round trips charge the
   in-kernel gate cost instead of the hardware syscall path.  Page
   faults, hypercalls and device I/O are unchanged — only the
   user/kernel boundary moves. *)
let wrap_backend (b : Virt.Backend.t) : t =
  let clock = b.Virt.Backend.clock in
  let t_ref = ref None in
  let platform =
    {
      b.Virt.Backend.platform with
      Kernel_model.Platform.name = b.Virt.Backend.platform.Kernel_model.Platform.name ^ "+inkernel";
      syscall_round_trip =
        (fun () ->
          (match !t_ref with Some t -> t.syscalls_elided <- t.syscalls_elided + 1 | None -> ());
          Hw.Clock.charge clock "inkernel_syscall" in_kernel_syscall_cost);
    }
  in
  let kernel = Kernel_model.Kernel.create platform in
  let backend =
    { b with Virt.Backend.label = b.Virt.Backend.label ^ "+inkernel"; kernel; platform }
  in
  let t = { backend; underlying = b; syscalls_elided = 0 } in
  t_ref := Some t;
  t

let backend t = t.backend
let syscalls_elided t = t.syscalls_elided

(* Expected speedup on a workload whose per-op cost is [op_ns] with
   [syscalls_per_op] syscalls — the analytical check the tests compare
   the measured ablation against. *)
let predicted_speedup ~op_ns ~syscalls_per_op =
  let saved = syscalls_per_op *. (Hw.Cost.syscall_entry_exit -. in_kernel_syscall_cost) in
  op_ns /. (op_ns -. saved)
