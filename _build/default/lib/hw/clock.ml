(* Simulated-time accounting.

   Every latency the simulator charges flows through a [Clock.t]; event
   counters record *why* time was spent so tests can make structural
   assertions ("a PVM page fault performs 6 context switches") and the
   benches can print breakdowns. *)

type t = {
  mutable now_ns : float;
  counters : (string, int) Hashtbl.t;
  spent : (string, float) Hashtbl.t;
}

let create () = { now_ns = 0.0; counters = Hashtbl.create 64; spent = Hashtbl.create 64 }

let now t = t.now_ns

(* Charge [ns] of simulated time attributed to [event]. *)
let charge t event ns =
  t.now_ns <- t.now_ns +. ns;
  Hashtbl.replace t.counters event (1 + Option.value ~default:0 (Hashtbl.find_opt t.counters event));
  Hashtbl.replace t.spent event (ns +. Option.value ~default:0.0 (Hashtbl.find_opt t.spent event))

(* Record an event occurrence without advancing time. *)
let count t event =
  Hashtbl.replace t.counters event (1 + Option.value ~default:0 (Hashtbl.find_opt t.counters event))

(* Advance time without attributing it to a named event (pure compute). *)
let advance t ns = t.now_ns <- t.now_ns +. ns

let occurrences t event = Option.value ~default:0 (Hashtbl.find_opt t.counters event)
let spent_on t event = Option.value ~default:0.0 (Hashtbl.find_opt t.spent event)

let reset t =
  t.now_ns <- 0.0;
  Hashtbl.reset t.counters;
  Hashtbl.reset t.spent

(* Run [f] and return its result together with the simulated time it
   consumed. *)
let timed t f =
  let t0 = t.now_ns in
  let r = f () in
  (r, t.now_ns -. t0)

let events t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp fmt t =
  Format.fprintf fmt "@[<v>clock: %.0f ns@," t.now_ns;
  List.iter
    (fun (e, n) -> Format.fprintf fmt "  %-32s %8d  %12.0f ns@," e n (spent_on t e))
    (events t);
  Format.fprintf fmt "@]"
