(* The privileged-instruction vocabulary and CKI's blocking policy
   (Table 3 of the paper).

   The hardware extension: when the CPU runs in kernel mode with
   PKRS != 0 (i.e. a deprivileged guest kernel is executing), the
   *destructive* privileged instructions fault instead of executing.
   Harmless ones stay native for performance. *)

type t =
  (* System registers *)
  | Lidt  (** load IDTR *)
  | Sidt
  | Lgdt  (** load GDTR *)
  | Ltr  (** load task register *)
  (* MSRs *)
  | Rdmsr of int
  | Wrmsr of int
  (* Control registers *)
  | Mov_from_cr of int  (** read CR0/CR4 — harmless *)
  | Mov_to_cr0
  | Mov_to_cr3
  | Mov_to_cr4
  | Clac
  | Stac
  (* TLB state *)
  | Invlpg of Addr.va
  | Invpcid
  (* Syscall / exception plumbing *)
  | Swapgs
  | Sysret
  | Iret
  (* Other *)
  | Hlt
  | Sti
  | Cli
  | Popf  (** can toggle IF *)
  | In_port of int
  | Out_port of int
  | Smsw
  (* PKS extension *)
  | Wrpkrs of Pks.rights
  | Rdpkrs
[@@deriving show { with_path = false }, eq]

type category =
  | System_registers
  | Msr
  | Control_registers
  | Tlb_state
  | Syscall_exception
  | Other_privileged
  | Pkrs_register
[@@deriving show { with_path = false }, eq]

let category = function
  | Lidt | Sidt | Lgdt | Ltr -> System_registers
  | Rdmsr _ | Wrmsr _ -> Msr
  | Mov_from_cr _ | Mov_to_cr0 | Mov_to_cr3 | Mov_to_cr4 | Clac | Stac -> Control_registers
  | Invlpg _ | Invpcid -> Tlb_state
  | Swapgs | Sysret | Iret -> Syscall_exception
  | Hlt | Sti | Cli | Popf | In_port _ | Out_port _ | Smsw -> Other_privileged
  | Wrpkrs _ | Rdpkrs -> Pkrs_register

(* Is this instruction blocked when PKRS != 0 (guest kernel running)?
   Mirrors Table 3 exactly. *)
let blocked_in_guest = function
  | Lidt | Sidt | Lgdt | Ltr -> true
  | Rdmsr _ | Wrmsr _ -> true
  | Mov_from_cr _ -> false
  | Mov_to_cr0 | Mov_to_cr3 | Mov_to_cr4 -> true
  | Clac | Stac -> false
  | Invlpg _ -> false
  | Invpcid -> true
  | Swapgs | Sysret -> false
  | Iret -> true
  | Hlt -> false  (* replaced with a hypercall by para-virt, but executing it is not destructive: it pauses the vCPU *)
  | Sti | Cli | Popf -> true
  | In_port _ | Out_port _ | Smsw -> true
  | Wrpkrs _ | Rdpkrs -> false

(* How a paravirtual CKI guest kernel virtualizes each blocked
   instruction (the "Usages" column of Table 3). *)
type virtualization =
  | Native  (** executes directly in the guest kernel *)
  | Ksm_call  (** replaced with a call to the container's KSM *)
  | Hypercall  (** replaced with a call to the host kernel *)
  | In_memory_state  (** replaced by a memory flag visible to the host *)
  | Unused  (** not used by a paravirtualized container guest kernel *)
[@@deriving show { with_path = false }, eq]

let virtualized_as = function
  | Lidt | Sidt | Lgdt | Ltr -> Ksm_call  (* boot-time only *)
  | Rdmsr _ | Wrmsr _ -> Hypercall  (* timers, IPIs *)
  | Mov_from_cr _ -> Native
  | Mov_to_cr0 | Mov_to_cr4 -> Ksm_call  (* init, lazy-FPU TS toggling *)
  | Mov_to_cr3 -> Ksm_call  (* address-space switch *)
  | Clac | Stac -> Native
  | Invlpg _ -> Native  (* PCID-confined *)
  | Invpcid -> Unused
  | Swapgs | Sysret -> Native  (* OPT3 *)
  | Iret -> Ksm_call
  | Hlt -> Hypercall  (* pause the vCPU *)
  | Sti | Cli | Popf -> In_memory_state
  | In_port _ | Out_port _ | Smsw -> Unused
  | Wrpkrs _ -> Native  (* only at switch gates; enforced by binary rewriting *)
  | Rdpkrs -> Native

(* A representative instance of every instruction in Table 3; used by
   the table3 bench and by exhaustive policy tests. *)
let all_examples =
  [
    Lidt; Sidt; Lgdt; Ltr;
    Rdmsr 0x10; Wrmsr 0x10;
    Mov_from_cr 0; Mov_from_cr 4;
    Mov_to_cr0; Mov_to_cr3; Mov_to_cr4;
    Clac; Stac;
    Invlpg 0x1000; Invpcid;
    Swapgs; Sysret; Iret;
    Hlt; Sti; Cli; Popf;
    In_port 0x60; Out_port 0x60; Smsw;
    Wrpkrs Pks.all_access; Rdpkrs;
  ]

let mnemonic = function
  | Lidt -> "lidt"
  | Sidt -> "sidt"
  | Lgdt -> "lgdt"
  | Ltr -> "ltr"
  | Rdmsr _ -> "rdmsr"
  | Wrmsr _ -> "wrmsr"
  | Mov_from_cr n -> Printf.sprintf "mov r64, cr%d" n
  | Mov_to_cr0 -> "mov cr0, r64"
  | Mov_to_cr3 -> "mov cr3, r64"
  | Mov_to_cr4 -> "mov cr4, r64"
  | Clac -> "clac"
  | Stac -> "stac"
  | Invlpg _ -> "invlpg"
  | Invpcid -> "invpcid"
  | Swapgs -> "swapgs"
  | Sysret -> "sysret"
  | Iret -> "iret"
  | Hlt -> "hlt"
  | Sti -> "sti"
  | Cli -> "cli"
  | Popf -> "popf"
  | In_port _ -> "in"
  | Out_port _ -> "out"
  | Smsw -> "smsw"
  | Wrpkrs _ -> "wrpkrs"
  | Rdpkrs -> "rdpkrs"
