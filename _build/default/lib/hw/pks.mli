(** Protection Keys for Supervisor pages (PKS), and its user-mode
    sibling PKU.

    A 32-bit rights register holds 2 bits per key (16 keys): AD (access
    disable) and WD (write disable). PKRS governs supervisor (U=0)
    pages, PKRU user pages. Key 0 with rights 0 is the all-access
    state the KSM runs with; CKI guest kernels run with {!pkrs_guest}. *)

type perm = Read_write | Read_only | No_access

val pp_perm : Format.formatter -> perm -> unit
val show_perm : perm -> string
val equal_perm : perm -> perm -> bool

val num_keys : int
(** 16. *)

type rights = int
(** A PKRS/PKRU register value. *)

val pp_rights : Format.formatter -> rights -> unit
val equal_rights : rights -> rights -> bool
val show_rights : rights -> string

val all_access : rights
(** Rights value 0: every domain fully accessible. *)

val make : ?default:perm -> (int * perm) list -> rights
(** Build a rights register from per-key assignments; unlisted keys get
    [default] (Read_write). *)

val perm_of : rights -> key:int -> perm

type access = Read | Write

val pp_access : Format.formatter -> access -> unit
val show_access : access -> string
val equal_access : access -> access -> bool

val allows : rights -> key:int -> access -> bool
(** Does the register allow [access] on a page tagged [key]? *)

(** {1 CKI's fixed domain layout within a container address space}

    Only two non-default domains are needed per container, so the
    16-key hardware limit never constrains the number of containers
    (Section 3.3 / Challenge 1). *)

val pkey_ksm : int
(** Tags KSM-private pages (monitor code/data, per-vCPU areas, IDT). *)

val pkey_ptp : int
(** Tags declared page-table pages: read-only to the guest kernel. *)

val pkey_guest : int
(** Tags ordinary guest pages (key 0). *)

val pkrs_guest : rights
(** PKRS while the deprivileged guest kernel runs: no access to KSM
    memory, read-only access to PTPs. *)

val pkrs_ksm : rights
(** PKRS while the KSM runs: unrestricted. *)
