(** Simulated-time accounting.

    Every latency the simulator charges flows through a {!t}; named
    event counters record {e why} time was spent, so tests can make
    structural assertions ("a PVM page fault performs 6 context
    switches") and benches can print breakdowns. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time in nanoseconds. *)

val charge : t -> string -> float -> unit
(** [charge t event ns] advances simulated time by [ns], attributed to
    [event] (occurrence count and total ns are both recorded). *)

val count : t -> string -> unit
(** Record an event occurrence without advancing time. *)

val advance : t -> float -> unit
(** Advance time without attributing it to a named event (pure
    application compute). *)

val occurrences : t -> string -> int
(** How many times [event] was charged/counted. *)

val spent_on : t -> string -> float
(** Total nanoseconds attributed to [event]. *)

val reset : t -> unit

val timed : t -> (unit -> 'a) -> 'a * float
(** Run a thunk and return its result with the simulated time it
    consumed. *)

val events : t -> (string * int) list
(** All (event, occurrences) pairs, sorted by name. *)

val pp : Format.formatter -> t -> unit
