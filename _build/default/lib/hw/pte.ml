(* 64-bit page-table entry encoding.

   Layout (subset of x86-64 relevant to the simulation):
     bit  0       present
     bit  1       writable
     bit  2       user-accessible (the U/K bit CKI uses for syscall-path
                  isolation of guest-kernel memory inside guest-user
                  address spaces)
     bit  5       accessed
     bit  6       dirty
     bit  7       huge (2 MiB leaf at level 2)
     bit  9       guest-owned bookkeeping bit (software-available)
     bits 12..50  physical frame number
     bits 59..62  protection key (PKS domain for supervisor pages)
     bit  63      no-execute *)

type t = int64

let empty : t = 0L

let b_present = 0
let b_writable = 1
let b_user = 2
let b_accessed = 5
let b_dirty = 6
let b_huge = 7
let _b_soft = 9
let b_nx = 63

let bit n = Int64.shift_left 1L n
let test e n = Int64.logand e (bit n) <> 0L
let set e n = Int64.logor e (bit n)
let clear e n = Int64.logand e (Int64.lognot (bit n))

let is_present e = test e b_present
let is_writable e = test e b_writable
let is_user e = test e b_user
let is_accessed e = test e b_accessed
let is_dirty e = test e b_dirty
let is_huge e = test e b_huge
let is_nx e = test e b_nx

let pfn_mask = Int64.shift_left (Int64.sub (Int64.shift_left 1L 39) 1L) 12
let pfn e = Int64.to_int (Int64.shift_right_logical (Int64.logand e pfn_mask) 12)

let pkey_shift = 59
let pkey_mask = Int64.shift_left 0xFL pkey_shift
let pkey e = Int64.to_int (Int64.shift_right_logical (Int64.logand e pkey_mask) pkey_shift)

type flags = {
  writable : bool;
  user : bool;
  nx : bool;
  huge : bool;
  pkey : int;
}

let default_flags = { writable = true; user = false; nx = false; huge = false; pkey = 0 }

let make ~pfn:frame ~flags =
  if frame < 0 || frame >= 1 lsl 39 then invalid_arg "Pte.make: pfn out of range";
  if flags.pkey < 0 || flags.pkey > 15 then invalid_arg "Pte.make: pkey out of range";
  let e = bit b_present in
  let e = Int64.logor e (Int64.shift_left (Int64.of_int frame) 12) in
  let e = if flags.writable then set e b_writable else e in
  let e = if flags.user then set e b_user else e in
  let e = if flags.nx then set e b_nx else e in
  let e = if flags.huge then set e b_huge else e in
  Int64.logor e (Int64.shift_left (Int64.of_int flags.pkey) pkey_shift)

let flags_of e =
  {
    writable = is_writable e;
    user = is_user e;
    nx = is_nx e;
    huge = is_huge e;
    pkey = pkey e;
  }

let with_pkey e k =
  if k < 0 || k > 15 then invalid_arg "Pte.with_pkey";
  Int64.logor (Int64.logand e (Int64.lognot pkey_mask)) (Int64.shift_left (Int64.of_int k) pkey_shift)

let with_writable e w = if w then set e b_writable else clear e b_writable
let mark_accessed e = set e b_accessed
let mark_dirty e = set e b_dirty
let clear_accessed_dirty e = clear (clear e b_accessed) b_dirty

let pp fmt e =
  if not (is_present e) then Format.fprintf fmt "<not-present>"
  else
    Format.fprintf fmt "pfn=%d%s%s%s%s pkey=%d" (pfn e)
      (if is_writable e then " W" else " RO")
      (if is_user e then " U" else " K")
      (if is_nx e then " NX" else "")
      (if is_huge e then " 2M" else "")
      (pkey e)
