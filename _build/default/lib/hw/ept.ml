(* Extended page tables (second-stage translation gPA -> hPA) for the
   HVM baseline.

   Reuses the same frame-resident 4-level table structure as first
   stage paging; the interesting part is the cost structure: a TLB miss
   under EPT costs a two-dimensional walk (24 refs instead of 4), and a
   missing gPA mapping raises an EPT violation (a VM exit). *)

type t = {
  mem : Phys_mem.t;
  pt : Page_table.t;
  mutable violations : int;
  mutable huge : bool;  (** back gPAs with 2 MiB EPT mappings *)
}

exception Ept_violation of { gpa : Addr.pa }

let create mem ~huge =
  let pt = Page_table.create mem ~owner:Phys_mem.Host in
  (* Mark root as an EPT table for inventory purposes. *)
  Phys_mem.set_kind mem (Page_table.root pt) (Phys_mem.Ept_table 4);
  { mem; pt; violations = 0; huge }

let alloc_table t ~level = Phys_mem.alloc t.mem ~owner:Phys_mem.Host ~kind:(Phys_mem.Ept_table level)

(* Map guest-physical frame [gfn] to host frame [hfn]. *)
let map t ~gfn ~hfn =
  ignore
    (Page_table.map t.pt ~alloc_table:(alloc_table t) ~va:(Addr.pa_of_pfn gfn) ~pfn:hfn
       ~flags:{ Pte.default_flags with writable = true; user = true }
       ())

(* Map a 2 MiB guest-physical region starting at [gfn] (512-aligned). *)
let map_huge t ~gfn ~hfn =
  ignore
    (Page_table.map_huge t.pt ~alloc_table:(alloc_table t) ~va:(Addr.pa_of_pfn gfn) ~pfn:hfn
       ~flags:{ Pte.default_flags with writable = true; user = true }
       ())

(* Translate gPA -> hPA; raises [Ept_violation] (a VM exit in HVM) when
   the gPA has no second-stage mapping yet. *)
let translate t gpa =
  match Page_table.walk t.pt gpa with
  | exception Page_table.Translation_fault _ ->
      t.violations <- t.violations + 1;
      raise (Ept_violation { gpa })
  | w ->
      if w.Page_table.leaf_level = 2 then
        Addr.pa_of_pfn (Pte.pfn w.pte) lor (gpa land ((1 lsl 21) - 1))
      else Addr.pa_of_pfn (Pte.pfn w.pte) lor Addr.page_offset gpa

let is_mapped t gpa = Page_table.is_mapped t.pt gpa
let violations t = t.violations
let huge_enabled t = t.huge

(* Memory references for one TLB-miss walk under this EPT config. *)
let walk_refs t = if t.huge then Cost.walk_refs_2d_huge else Cost.walk_refs_2d
