(** Interrupt descriptor table with the IST feature and the paper's
    PKS-switching extension (E4).

    Entries may request an IST stack (forcing the CPU onto a known-good
    interrupt stack regardless of the interrupted RSP — the Section 4.4
    defence against interrupt-stack manipulation) and [pks_switch]: on
    {e hardware} delivery the CPU saves PKRS and zeroes it before the
    first gate instruction, so the gate contains no [wrpkrs] to abuse;
    software [int] leaves PKRS unchanged. *)

type entry = {
  vector : int;
  handler : string;  (** symbolic handler (gate code lives in KSM memory) *)
  ist : int option;
  pks_switch : bool;
  user_invocable : bool;  (** DPL=3 *)
}

type t

val vectors : int

val create : unit -> t

val set : t -> entry -> unit
(** @raise Invalid_argument on a bad vector or a locked table. *)

val get : t -> int -> entry option

val lock : t -> unit
(** Pin the table: further [set]s fail (the guest cannot re-point
    vectors after boot). *)

val is_locked : t -> bool

type delivery = Hardware | Software

val deliver : t -> Cpu.t -> kind:delivery -> int -> entry
(** Vector through entry [v]. Hardware delivery applies the PKS-switch
    extension; software [int] does not. *)

val vec_page_fault : int
val vec_gp_fault : int
val vec_timer : int
val vec_virtio_net : int
val vec_virtio_blk : int
val vec_ipi : int
