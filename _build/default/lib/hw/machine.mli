(** The physical machine: memory, CPUs, the interrupt fabric, and the
    simulated clock every component charges. *)

type t

val create : ?cpus:int -> ?mem_mib:int -> unit -> t
(** Defaults: 4 CPUs, 512 MiB. *)

val mem : t -> Phys_mem.t
val clock : t -> Clock.t
val cpu : t -> int -> Cpu.t
val num_cpus : t -> int

val fresh_pcid : t -> int
(** Allocate a fresh PCID; each secure container and the host kernel
    get distinct PCIDs so [invlpg] is confined (Section 4.1). *)

val raise_irq : t -> cpu:int -> vector:int -> unit
val take_irq : t -> cpu:int -> int option
val has_pending : t -> cpu:int -> bool
