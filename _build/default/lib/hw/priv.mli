(** The privileged-instruction vocabulary and CKI's blocking policy
    (Table 3 of the paper).

    Hardware extension E2: in kernel mode with PKRS != 0 (a
    deprivileged guest kernel), the {e destructive} privileged
    instructions fault instead of executing; harmless ones stay native
    for performance. *)

type t =
  | Lidt
  | Sidt
  | Lgdt
  | Ltr
  | Rdmsr of int
  | Wrmsr of int
  | Mov_from_cr of int  (** reading CR0/CR4 is harmless *)
  | Mov_to_cr0
  | Mov_to_cr3
  | Mov_to_cr4
  | Clac
  | Stac
  | Invlpg of Addr.va
  | Invpcid
  | Swapgs
  | Sysret
  | Iret
  | Hlt
  | Sti
  | Cli
  | Popf
  | In_port of int
  | Out_port of int
  | Smsw
  | Wrpkrs of Pks.rights  (** extension E1 *)
  | Rdpkrs

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

type category =
  | System_registers
  | Msr
  | Control_registers
  | Tlb_state
  | Syscall_exception
  | Other_privileged
  | Pkrs_register

val pp_category : Format.formatter -> category -> unit
val show_category : category -> string
val equal_category : category -> category -> bool
val category : t -> category

val blocked_in_guest : t -> bool
(** Is this instruction blocked when PKRS != 0? Mirrors Table 3. *)

(** How a paravirtual CKI guest kernel virtualizes each instruction. *)
type virtualization =
  | Native  (** executes directly in the guest kernel *)
  | Ksm_call  (** replaced with a call to the container's KSM *)
  | Hypercall  (** replaced with a call to the host kernel *)
  | In_memory_state  (** replaced by a memory flag visible to the host *)
  | Unused  (** not used by a paravirtualized container guest kernel *)

val pp_virtualization : Format.formatter -> virtualization -> unit
val show_virtualization : virtualization -> string
val equal_virtualization : virtualization -> virtualization -> bool
val virtualized_as : t -> virtualization

val all_examples : t list
(** One representative instance of every Table 3 row, for exhaustive
    policy tests and the table3 bench. *)

val mnemonic : t -> string
