(** Virtual/physical address arithmetic for the simulated machine.

    4 KiB pages, x86-64-style 4-level paging: 9 index bits per level,
    48-bit canonical virtual addresses. *)

val page_shift : int
val page_size : int

val entries_per_table : int
(** Entries per page-table page (512). *)

val levels : int
(** Paging levels (4). *)

type va = int
(** A virtual address. *)

type pa = int
(** A physical address. *)

type pfn = int
(** A physical frame number ([pa lsr page_shift]). *)

type vpn = int
(** A virtual page number ([va lsr page_shift]). *)

val equal_va : va -> va -> bool
val equal_pa : pa -> pa -> bool
val equal_pfn : pfn -> pfn -> bool
val equal_vpn : vpn -> vpn -> bool
val show_va : va -> string
val show_pa : pa -> string
val show_pfn : pfn -> string
val show_vpn : vpn -> string
val pp_pfn : Format.formatter -> pfn -> unit
val pp_vpn : Format.formatter -> vpn -> unit

val page_align_down : int -> int
(** Round down to a page boundary. *)

val page_align_up : int -> int
(** Round up to a page boundary. *)

val is_page_aligned : int -> bool
val pfn_of_pa : pa -> pfn
val pa_of_pfn : pfn -> pa
val vpn_of_va : va -> vpn
val va_of_vpn : vpn -> va

val page_offset : int -> int
(** Offset of an address within its page. *)

val index_at_level : lvl:int -> va -> int
(** Page-table index of [va] at level [lvl] (4 = top / PML4, 1 = leaf).
    @raise Invalid_argument if [lvl] is outside 1..4. *)

val pages_of_bytes : int -> int
(** Number of 4 KiB pages needed to back a byte count. *)

val pp_va : Format.formatter -> va -> unit
val pp_pa : Format.formatter -> pa -> unit
