(* VM control structure for the HVM baseline.

   Tracks the guest register file the hypervisor must save/restore on
   VM exits, and the exit-reason taxonomy the cost model distinguishes.
   In the nested configuration (L2 VM under an L1 hypervisor under L0)
   every L2 exit is first intercepted by L0, which resumes L1 to handle
   it, then trampolines back — the paper's "VM exit redirection". *)

type exit_reason =
  | Hypercall
  | Ept_violation of Addr.pa
  | External_interrupt of int
  | Io_mmio of Addr.pa  (** VirtIO doorbell MMIO *)
  | Hlt
  | Cr_access
  | Msr_access
[@@deriving show { with_path = false }]

type guest_state = {
  mutable cr3 : Addr.pfn;
  mutable rip : int;
  mutable mode : Cpu.mode;
}

type t = {
  id : int;
  guest : guest_state;
  mutable exits : int;
  mutable exits_by_reason : (string * int) list;
  mutable launched : bool;
  nested : bool;  (** L2 VMCS shadowed by L0 *)
}

let create ~id ~nested =
  {
    id;
    guest = { cr3 = 0; rip = 0; mode = Cpu.Kernel };
    exits = 0;
    exits_by_reason = [];
    launched = false;
    nested;
  }

let reason_key = function
  | Hypercall -> "hypercall"
  | Ept_violation _ -> "ept_violation"
  | External_interrupt _ -> "external_interrupt"
  | Io_mmio _ -> "io_mmio"
  | Hlt -> "hlt"
  | Cr_access -> "cr_access"
  | Msr_access -> "msr_access"

(* Record a VM exit and return its cost given the deployment.  Nested
   exits pay the L0-redirection tax. *)
let vm_exit t clock reason =
  t.exits <- t.exits + 1;
  let k = reason_key reason in
  t.exits_by_reason <-
    (k, 1 + Option.value ~default:0 (List.assoc_opt k t.exits_by_reason))
    :: List.remove_assoc k t.exits_by_reason;
  let cost = if t.nested then Cost.vmexit_nst else Cost.vmexit_bm in
  Clock.charge clock (if t.nested then "vmexit_nested" else "vmexit") cost;
  cost

let launch t = t.launched <- true
let exits t = t.exits
let exits_for t reason_name = Option.value ~default:0 (List.assoc_opt reason_name t.exits_by_reason)
