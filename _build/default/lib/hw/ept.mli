(** Extended page tables (second-stage gPA -> hPA translation) for the
    HVM baseline.

    A TLB miss under EPT costs a two-dimensional walk (24 references
    instead of 4), and a missing gPA mapping raises an EPT violation —
    a VM exit. *)

type t

exception Ept_violation of { gpa : Addr.pa }

val create : Phys_mem.t -> huge:bool -> t
(** [huge] backs gPAs with 2 MiB EPT mappings (amortizing violations
    512x and shortening the 2-D walk to 15 refs). *)

val map : t -> gfn:int -> hfn:Addr.pfn -> unit
val map_huge : t -> gfn:int -> hfn:Addr.pfn -> unit

val translate : t -> Addr.pa -> Addr.pa
(** @raise Ept_violation when the gPA has no second-stage mapping. *)

val is_mapped : t -> Addr.pa -> bool
val violations : t -> int
val huge_enabled : t -> bool

val walk_refs : t -> int
(** Memory references per TLB-miss walk under this configuration. *)
