lib/hw/pte.pp.mli: Addr Format
