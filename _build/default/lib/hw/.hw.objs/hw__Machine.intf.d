lib/hw/machine.pp.mli: Clock Cpu Phys_mem
