lib/hw/clock.pp.ml: Format Hashtbl List Option String
