lib/hw/pte.pp.ml: Format Int64
