lib/hw/cpu.pp.mli: Addr Clock Format Page_table Pks Priv Pte Tlb
