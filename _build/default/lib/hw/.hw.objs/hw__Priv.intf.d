lib/hw/priv.pp.mli: Addr Format Pks
