lib/hw/tlb.pp.mli: Addr Pte
