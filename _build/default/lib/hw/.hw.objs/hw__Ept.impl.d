lib/hw/ept.pp.ml: Addr Cost Page_table Phys_mem Pte
