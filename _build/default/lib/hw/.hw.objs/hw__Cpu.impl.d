lib/hw/cpu.pp.ml: Addr Clock Cost Format Page_table Pks Ppx_deriving_runtime Priv Pte Tlb
