lib/hw/idt.pp.mli: Cpu
