lib/hw/pks.pp.ml: Format List Ppx_deriving_runtime Printf
