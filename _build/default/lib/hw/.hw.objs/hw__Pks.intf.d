lib/hw/pks.pp.mli: Format
