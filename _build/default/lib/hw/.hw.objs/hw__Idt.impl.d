lib/hw/idt.pp.ml: Array Cpu Printf
