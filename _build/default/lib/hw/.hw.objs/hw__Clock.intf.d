lib/hw/clock.pp.mli: Format
