lib/hw/vmcs.pp.mli: Addr Clock Cpu Format
