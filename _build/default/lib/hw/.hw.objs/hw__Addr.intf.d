lib/hw/addr.pp.mli: Format
