lib/hw/vmcs.pp.ml: Addr Clock Cost Cpu List Option Ppx_deriving_runtime
