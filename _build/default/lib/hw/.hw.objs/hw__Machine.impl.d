lib/hw/machine.pp.ml: Array Clock Cpu Idt List Phys_mem
