lib/hw/ept.pp.mli: Addr Phys_mem
