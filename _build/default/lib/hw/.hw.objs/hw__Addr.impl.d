lib/hw/addr.pp.ml: Format Printf
