lib/hw/page_table.pp.mli: Addr Phys_mem Pte
