lib/hw/phys_mem.pp.ml: Addr Array Ppx_deriving_runtime
