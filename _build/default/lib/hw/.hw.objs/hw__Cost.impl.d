lib/hw/cost.pp.ml:
