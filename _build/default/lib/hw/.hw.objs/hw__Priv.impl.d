lib/hw/priv.pp.ml: Addr Pks Ppx_deriving_runtime Printf
