lib/hw/page_table.pp.ml: Addr List Phys_mem Pte
