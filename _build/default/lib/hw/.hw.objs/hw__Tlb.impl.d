lib/hw/tlb.pp.ml: Addr Hashtbl List Pte Queue
