lib/hw/phys_mem.pp.mli: Addr Format
