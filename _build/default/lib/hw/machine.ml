(* The physical machine: memory, CPUs, the interrupt fabric, and the
   simulated clock that every component charges. *)

type t = {
  mem : Phys_mem.t;
  cpus : Cpu.t array;
  clock : Clock.t;
  idt : Idt.t;  (** host IDT (containers get their own, KSM-resident) *)
  mutable pending_irqs : (int * int) list;  (** (cpu, vector) fifo, newest last *)
  mutable next_pcid : int;
}

let create ?(cpus = 4) ?(mem_mib = 512) () =
  let clock = Clock.create () in
  {
    mem = Phys_mem.create ~frames:(mem_mib * 256);
    cpus = Array.init cpus (fun id -> Cpu.create ~id clock);
    clock;
    idt = Idt.create ();
    pending_irqs = [];
    next_pcid = 1;
  }

let mem t = t.mem
let clock t = t.clock
let cpu t i = t.cpus.(i)
let num_cpus t = Array.length t.cpus

(* Allocate a fresh PCID; each secure container and the host kernel get
   distinct PCIDs so invlpg is confined (Section 4.1). *)
let fresh_pcid t =
  let p = t.next_pcid in
  t.next_pcid <- p + 1;
  p

let raise_irq t ~cpu ~vector = t.pending_irqs <- t.pending_irqs @ [ (cpu, vector) ]

let take_irq t ~cpu =
  let rec split acc = function
    | [] -> None
    | (c, v) :: rest when c = cpu ->
        t.pending_irqs <- List.rev_append acc rest;
        Some v
    | x :: rest -> split (x :: acc) rest
  in
  split [] t.pending_irqs

let has_pending t ~cpu = List.exists (fun (c, _) -> c = cpu) t.pending_irqs
