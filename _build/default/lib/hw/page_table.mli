(** 4-level page tables stored in simulated physical frames.

    All mutation goes through this module so owners (the host kernel
    directly, or the KSM on behalf of a guest) can observe every PTE
    write; the walker returns the number of memory references it made
    so TLB-miss costs are structural rather than assumed. *)

type t

exception Translation_fault of { va : Addr.va; level : int }

val create : Phys_mem.t -> owner:Phys_mem.owner -> t
(** Allocate a fresh top-level table owned by [owner]. *)

val of_root : Phys_mem.t -> Addr.pfn -> t
(** View an existing frame as a page-table root. *)

val root : t -> Addr.pfn

type walk_result = {
  pte : Pte.t;  (** the leaf entry *)
  leaf_level : int;  (** 1 for 4 KiB leaves, 2 for 2 MiB huge pages *)
  refs : int;  (** memory references performed by the walk *)
  trail : (int * Addr.pfn) list;  (** (level, table frame) visited, top first *)
}

val walk : t -> Addr.va -> walk_result
(** @raise Translation_fault when an entry on the path is not present. *)

val translate : t -> Addr.va -> Addr.pa
val is_mapped : t -> Addr.va -> bool

val map :
  t ->
  ?alloc_table:(level:int -> Addr.pfn) ->
  va:Addr.va ->
  pfn:Addr.pfn ->
  flags:Pte.flags ->
  unit ->
  Pte.t
(** Map the 4 KiB page at [va]; intermediate tables are created through
    [alloc_table]. Returns the previous leaf entry. *)

val map_huge :
  t ->
  ?alloc_table:(level:int -> Addr.pfn) ->
  va:Addr.va ->
  pfn:Addr.pfn ->
  flags:Pte.flags ->
  unit ->
  Pte.t
(** Map a 2 MiB-aligned region with a level-2 huge leaf.
    @raise Invalid_argument if [va] is not 2 MiB aligned. *)

val unmap : t -> Addr.va -> Pte.t
(** Clear the leaf for [va]; returns the old entry ({!Pte.empty} if it
    was not mapped). *)

val update : t -> Addr.va -> (Pte.t -> Pte.t) -> unit
(** In-place leaf update; the page must be mapped. *)

val set_accessed_dirty : t -> Addr.va -> write:bool -> unit

val fold_leaves : t -> ('a -> va:Addr.va -> pte:Pte.t -> level:int -> 'a) -> 'a -> 'a
(** Fold over all present leaf mappings. *)

val count_mappings : t -> int

val default_alloc_table : Phys_mem.t -> owner:Phys_mem.owner -> level:int -> Addr.pfn

val entry_at : t -> table_pfn:Addr.pfn -> lvl:int -> Addr.va -> Pte.t
(** Raw entry read at a given level — exposed for the KSM and tests. *)
