(* Virtual/physical address arithmetic for the simulated machine.

   The simulated machine uses 4 KiB pages and x86-64-style 4-level paging
   (9 bits of index per level, 48-bit canonical virtual addresses). *)

let page_shift = 12
let page_size = 1 lsl page_shift
let entries_per_table = 512
let levels = 4

type va = int
(** A virtual address. Plain int: the simulator never needs > 62 bits. *)

type pa = int
(** A physical address. *)

type pfn = int
(** A physical frame number ([pa lsr page_shift]). *)

type vpn = int
(** A virtual page number ([va lsr page_shift]). *)

let equal_va (a : va) b = a = b
let equal_pa (a : pa) b = a = b
let equal_pfn (a : pfn) b = a = b
let equal_vpn (a : vpn) b = a = b
let show_va (a : va) = Printf.sprintf "0x%x" a
let show_pa (a : pa) = Printf.sprintf "0x%x" a
let show_pfn (a : pfn) = string_of_int a
let show_vpn (a : vpn) = string_of_int a
let pp_pfn fmt (a : pfn) = Format.pp_print_int fmt a
let pp_vpn fmt (a : vpn) = Format.pp_print_int fmt a

let page_align_down a = a land lnot (page_size - 1)
let page_align_up a = page_align_down (a + page_size - 1)
let is_page_aligned a = a land (page_size - 1) = 0
let pfn_of_pa pa = pa lsr page_shift
let pa_of_pfn pfn = pfn lsl page_shift
let vpn_of_va va = va lsr page_shift
let va_of_vpn vpn = vpn lsl page_shift
let page_offset a = a land (page_size - 1)

(* Index of [va] within the page-table level [lvl] (4 = top / PML4, 1 =
   leaf / PT). *)
let index_at_level ~lvl va =
  if lvl < 1 || lvl > levels then invalid_arg "Addr.index_at_level";
  (va lsr (page_shift + (9 * (lvl - 1)))) land (entries_per_table - 1)

(* Number of 4 KiB pages needed to back [bytes]. *)
let pages_of_bytes bytes = (bytes + page_size - 1) / page_size

let pp_va fmt va = Format.fprintf fmt "0x%x" va
let pp_pa fmt pa = Format.fprintf fmt "0x%x" pa
