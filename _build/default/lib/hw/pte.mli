(** 64-bit page-table entry encoding (x86-64 subset + protection key).

    Bits: 0 present, 1 writable, 2 user, 5 accessed, 6 dirty,
    7 huge (2 MiB leaf at level 2), 12..50 frame number, 59..62
    protection key, 63 no-execute. *)

type t = int64

val empty : t

val is_present : t -> bool
val is_writable : t -> bool

val is_user : t -> bool
(** The U/K bit — CKI's syscall-path isolation of guest-kernel memory
    inside guest-user address spaces relies on it. *)

val is_accessed : t -> bool
val is_dirty : t -> bool
val is_huge : t -> bool
val is_nx : t -> bool

val pfn : t -> Addr.pfn
(** Target frame number. *)

val pkey : t -> int
(** Protection key (PKS domain for supervisor pages). *)

type flags = {
  writable : bool;
  user : bool;
  nx : bool;
  huge : bool;
  pkey : int;
}

val default_flags : flags
(** Writable, supervisor, executable, 4 KiB, key 0. *)

val make : pfn:Addr.pfn -> flags:flags -> t
(** Build a present entry.
    @raise Invalid_argument on out-of-range [pfn] or [pkey]. *)

val flags_of : t -> flags

val with_pkey : t -> int -> t
(** Replace the protection key (the KSM re-tags direct-map PTEs of
    declared PTPs with this). *)

val with_writable : t -> bool -> t
val mark_accessed : t -> t
val mark_dirty : t -> t
val clear_accessed_dirty : t -> t
val pp : Format.formatter -> t -> unit
