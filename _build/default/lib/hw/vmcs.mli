(** VM control structure for the HVM baseline.

    Tracks guest state and the VM-exit taxonomy the cost model
    distinguishes. In the nested configuration every L2 exit is first
    intercepted by L0, which resumes L1 to handle it and trampolines
    back — the paper's "VM exit redirection". *)

type exit_reason =
  | Hypercall
  | Ept_violation of Addr.pa
  | External_interrupt of int
  | Io_mmio of Addr.pa
  | Hlt
  | Cr_access
  | Msr_access

val pp_exit_reason : Format.formatter -> exit_reason -> unit
val show_exit_reason : exit_reason -> string

type guest_state = {
  mutable cr3 : Addr.pfn;
  mutable rip : int;
  mutable mode : Cpu.mode;
}

type t = {
  id : int;
  guest : guest_state;
  mutable exits : int;
  mutable exits_by_reason : (string * int) list;
  mutable launched : bool;
  nested : bool;
}

val create : id:int -> nested:bool -> t
val reason_key : exit_reason -> string

val vm_exit : t -> Clock.t -> exit_reason -> float
(** Record an exit and charge its cost (nested pays the L0 tax);
    returns the cost charged. *)

val launch : t -> unit
val exits : t -> int
val exits_for : t -> string -> int
