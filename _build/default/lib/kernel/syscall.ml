(* The syscall vocabulary exposed by the model kernel. *)

type t =
  | Getpid
  | Read of { fd : int; n : int }
  | Write of { fd : int; data : Bytes.t }
  | Open of { path : string; create : bool }
  | Close of int
  | Stat of string
  | Fstat of int
  | Lseek of { fd : int; pos : int }
  | Fsync of int
  | Unlink of string
  | Mkdir of string
  | Mmap of { pages : int; prot : Vma.prot }
  | Munmap of { addr : Hw.Addr.va; pages : int }
  | Mprotect of { addr : Hw.Addr.va; pages : int; prot : Vma.prot }
  | Brk of { delta_pages : int }
  | Fork
  | Execve
  | Exit of int
  | Pipe
  | Socket
  | Send of { fd : int; data : Bytes.t }
  | Recv of { fd : int; n : int }
  | Sched_yield
  | Nanosleep of float

type result =
  | Rint of int
  | Rbytes of Bytes.t
  | Rstat of { size : int; ino : int; is_dir : bool }
  | Rpair of int * int
  | Runit
  | Rerr of string

(* Fixed kernel-side work each syscall performs beyond the generic
   entry/exit path and beyond structural costs (copies, lookups) that
   the implementation charges as it goes. *)
let base_work = function
  | Getpid -> Hw.Cost.getpid_work
  | Read _ | Write _ -> 180.0
  | Open _ -> 400.0
  | Close _ -> 80.0
  | Stat _ | Fstat _ -> 250.0
  | Lseek _ -> 40.0
  | Fsync _ -> 600.0
  | Unlink _ -> 350.0
  | Mkdir _ -> 400.0
  | Mmap _ -> 450.0
  | Munmap _ -> 350.0
  | Mprotect _ -> 300.0
  | Brk _ -> 200.0
  | Fork -> Hw.Cost.fork_base
  | Execve -> Hw.Cost.execve_base
  | Exit _ -> Hw.Cost.exit_base
  | Pipe -> 400.0
  | Socket -> 500.0
  | Send _ | Recv _ -> 250.0
  | Sched_yield -> 50.0
  | Nanosleep _ -> 100.0

let name = function
  | Getpid -> "getpid"
  | Read _ -> "read"
  | Write _ -> "write"
  | Open _ -> "open"
  | Close _ -> "close"
  | Stat _ -> "stat"
  | Fstat _ -> "fstat"
  | Lseek _ -> "lseek"
  | Fsync _ -> "fsync"
  | Unlink _ -> "unlink"
  | Mkdir _ -> "mkdir"
  | Mmap _ -> "mmap"
  | Munmap _ -> "munmap"
  | Mprotect _ -> "mprotect"
  | Brk _ -> "brk"
  | Fork -> "fork"
  | Execve -> "execve"
  | Exit _ -> "exit"
  | Pipe -> "pipe"
  | Socket -> "socket"
  | Send _ -> "send"
  | Recv _ -> "recv"
  | Sched_yield -> "sched_yield"
  | Nanosleep _ -> "nanosleep"
