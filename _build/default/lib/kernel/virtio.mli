(** VirtIO split-queue model: descriptor ring + avail/used indices.

    The guest posts descriptors and kicks the device (an MMIO doorbell
    under HVM, a hypercall under PVM/CKI); the host backend services
    the queue and raises a completion interrupt. *)

type t

exception Ring_full

val create : ?size:int -> name:string -> Hw.Clock.t -> t
val in_flight : t -> int

val post : t -> len:int -> write:bool -> unit
(** Guest: post a buffer descriptor. @raise Ring_full. *)

val kick : t -> doorbell:(unit -> unit) -> unit
(** Guest: ring the doorbell via the platform's exit mechanism. *)

val service : t -> int
(** Host: service all pending descriptors; returns the count. *)

val complete : t -> inject:(unit -> unit) -> unit
(** Host: raise the completion interrupt. *)

val kicks : t -> int
val interrupts : t -> int
