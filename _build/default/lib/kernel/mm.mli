(** Per-process memory management: VMAs + demand paging over the
    platform's page-table interface.

    {!touch} is the workhorse: workloads call it for every page they
    access; an unmapped page inside a VMA takes the platform's full
    page-fault path — which is where RunC / HVM / PVM / CKI differ. *)

type t

val user_mmap_base : Hw.Addr.va
val user_brk_base : Hw.Addr.va
val user_stack_top : Hw.Addr.va

val create : Platform.t -> t
(** Fresh address space with a default stack VMA. *)

val destroy : t -> unit
(** Free all resident frames and the address space. *)

val aspace : t -> Platform.aspace
val fault_count : t -> int
val resident_pages : t -> int

val mmap : t -> pages:int -> prot:Vma.prot -> backing:Vma.backing -> Hw.Addr.va
(** Reserve pages (no frames allocated until touched). *)

val munmap : t -> start:Hw.Addr.va -> pages:int -> unit
val mprotect : t -> start:Hw.Addr.va -> pages:int -> prot:Vma.prot -> unit
val brk : t -> delta_pages:int -> Hw.Addr.va

exception Segfault of Hw.Addr.va

val handle_fault : t -> Hw.Addr.va -> write:bool -> unit
(** Demand fault: full platform fault path + frame allocation + PTE
    install. @raise Segfault outside any (writable, for writes) VMA. *)

val touch : t -> Hw.Addr.va -> write:bool -> unit
(** Access the page containing an address, demand-faulting if needed. *)

val touch_range : t -> start:Hw.Addr.va -> pages:int -> write:bool -> int
(** Touch every page of a range; returns the number of faults taken. *)

val fork : t -> t
(** Duplicate for fork: copies VMAs and eagerly copies resident pages
    (no COW; per-page copy costs are charged). *)
