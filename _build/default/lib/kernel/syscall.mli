(** The syscall vocabulary exposed by the model kernel. *)

type t =
  | Getpid
  | Read of { fd : int; n : int }
  | Write of { fd : int; data : Bytes.t }
  | Open of { path : string; create : bool }
  | Close of int
  | Stat of string
  | Fstat of int
  | Lseek of { fd : int; pos : int }
  | Fsync of int
  | Unlink of string
  | Mkdir of string
  | Mmap of { pages : int; prot : Vma.prot }
  | Munmap of { addr : Hw.Addr.va; pages : int }
  | Mprotect of { addr : Hw.Addr.va; pages : int; prot : Vma.prot }
  | Brk of { delta_pages : int }
  | Fork
  | Execve
  | Exit of int
  | Pipe
  | Socket
  | Send of { fd : int; data : Bytes.t }
  | Recv of { fd : int; n : int }
  | Sched_yield
  | Nanosleep of float

type result =
  | Rint of int
  | Rbytes of Bytes.t
  | Rstat of { size : int; ino : int; is_dir : bool }
  | Rpair of int * int
  | Runit
  | Rerr of string

val base_work : t -> float
(** Fixed kernel-side work beyond the generic entry/exit path and the
    structural costs (copies, lookups) charged by the implementation. *)

val name : t -> string
