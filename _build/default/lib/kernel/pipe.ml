(* Pipes and AF_UNIX-style stream sockets: bounded byte queues with
   blocking semantics surfaced as [`Would_block]. *)

type t = {
  capacity : int;
  buf : Buffer.t;
  mutable read_closed : bool;
  mutable write_closed : bool;
  clock : Hw.Clock.t;
}

let create ?(capacity = 65536) clock =
  { capacity; buf = Buffer.create 4096; read_closed = false; write_closed = false; clock }

let available t = Buffer.length t.buf
let room t = t.capacity - Buffer.length t.buf

let write t src =
  if t.read_closed then Error `Epipe
  else if room t <= 0 then Error `Would_block
  else begin
    let n = min (Bytes.length src) (room t) in
    Buffer.add_subbytes t.buf src 0 n;
    Hw.Clock.charge t.clock "pipe_copy" (float_of_int n *. Hw.Cost.copy_byte);
    Ok n
  end

let read t ~n =
  if available t = 0 then if t.write_closed then Ok Bytes.empty else Error `Would_block
  else begin
    let n = min n (available t) in
    let data = Bytes.of_string (String.sub (Buffer.contents t.buf) 0 n) in
    let rest = String.sub (Buffer.contents t.buf) n (available t - n) in
    Buffer.clear t.buf;
    Buffer.add_string t.buf rest;
    Hw.Clock.charge t.clock "pipe_copy" (float_of_int n *. Hw.Cost.copy_byte);
    Ok data
  end

let close_read t = t.read_closed <- true
let close_write t = t.write_closed <- true
