(** A round-robin scheduler. A context switch between address spaces
    pays the platform's switch (a hypercall under PVM, a KSM-validated
    CR3 load under CKI). *)

type t

val create : Platform.t -> t
val enqueue : t -> int -> unit
val current : t -> int option
val switches : t -> int
val runnable_count : t -> int

val switch_to : t -> int -> Mm.t -> unit
(** Switch to a pid running in [mm]; charges switch work + the
    platform's address-space switch unless already current. *)

val pick_next : t -> int option
val yield : t -> int -> int option
