(** Slab-style object caches on top of the buddy allocator.

    Objects are integer handles; the cache tracks backing frames so
    freeing the last object of a slab returns its frame to the buddy. *)

type t

val create : name:string -> obj_size:int -> Buddy.t -> t
(** @raise Invalid_argument if [obj_size] is not in 1..4096. *)

val alloc : t -> int
(** Allocate an object; grows by one frame when all slabs are full. *)

val free : t -> int -> unit
(** @raise Invalid_argument on an unknown handle. *)

val allocated : t -> int
val slab_count : t -> int
