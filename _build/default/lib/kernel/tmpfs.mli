(** An in-memory filesystem with real byte contents.

    Regular-file data lives in growable byte buffers; directories are
    hash tables. The SQLite and web-server workloads do genuine reads
    and writes through this, so syscall counts and copy sizes are
    structural. *)

type inode

type t

exception Not_found_path of string
exception Not_a_directory of string
exception Exists of string
exception Is_directory of string

val create : Hw.Clock.t -> t

val resolve : t -> string -> inode
(** Path lookup; charges one dcache-ish component cost per step.
    @raise Not_found_path / Not_a_directory. *)

val resolve_opt : t -> string -> inode option
val mkdir : t -> string -> inode
val create_file : t -> string -> inode
val open_or_create : t -> string -> inode
val unlink : t -> string -> unit

val write : t -> inode -> off:int -> Bytes.t -> int
(** Write at an offset, extending the file; charges per-byte copy. *)

val read : t -> inode -> off:int -> n:int -> Bytes.t
(** Read up to [n] bytes (short at EOF). *)

val truncate : inode -> size:int -> unit
(** Shrink or zero-extend. *)

val size : inode -> int
val ino : inode -> int
val is_dir : inode -> bool
val readdir : inode -> string list
