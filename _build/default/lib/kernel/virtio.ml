(* VirtIO split-queue model: descriptor ring + avail/used indices.

   The guest posts descriptors and *kicks* the device (an MMIO doorbell
   = VM exit under HVM, a hypercall under PVM/CKI); the host backend
   services the queue and raises a (virtual) interrupt back. *)

type desc = { id : int; len : int; write : bool }

type t = {
  name : string;
  size : int;
  ring : desc option array;
  mutable avail_idx : int;
  mutable used_idx : int;
  mutable kicks : int;
  mutable interrupts : int;
  clock : Hw.Clock.t;
}

exception Ring_full

let create ?(size = 256) ~name clock =
  { name; size; ring = Array.make size None; avail_idx = 0; used_idx = 0; kicks = 0; interrupts = 0; clock }

let in_flight t = t.avail_idx - t.used_idx

(* Guest side: post a buffer descriptor. *)
let post t ~len ~write =
  if in_flight t >= t.size then raise Ring_full;
  let slot = t.avail_idx mod t.size in
  t.ring.(slot) <- Some { id = t.avail_idx; len; write };
  t.avail_idx <- t.avail_idx + 1;
  Hw.Clock.charge t.clock "virtio_post" Hw.Cost.virtio_frontend_work

(* Guest side: ring the doorbell. The caller supplies the platform's
   exit mechanism (hypercall / MMIO VM exit). *)
let kick t ~doorbell =
  t.kicks <- t.kicks + 1;
  doorbell ()

(* Host side: service all pending descriptors; returns serviced count.
   Charges the backend service cost per batch plus copy per byte. *)
let service t =
  let n = in_flight t in
  if n > 0 then begin
    Hw.Clock.charge t.clock "virtio_service" Hw.Cost.virtio_backend_service;
    for _ = 1 to n do
      let slot = t.used_idx mod t.size in
      (match t.ring.(slot) with
      | Some d -> Hw.Clock.charge t.clock "virtio_copy" (float_of_int d.len *. Hw.Cost.copy_byte)
      | None -> ());
      t.ring.(t.used_idx mod t.size) <- None;
      t.used_idx <- t.used_idx + 1
    done
  end;
  n

(* Host side: raise the completion interrupt via [inject]. *)
let complete t ~inject =
  t.interrupts <- t.interrupts + 1;
  inject ()

let kicks t = t.kicks
let interrupts t = t.interrupts
