(* An in-memory filesystem with real byte contents.

   Stores regular-file data in growable byte buffers; directories are
   hash tables.  The SQLite and web-server workloads do genuine reads
   and writes through this, so syscall counts and copy sizes are
   structural. *)

type inode = {
  ino : int;
  mutable kind : kind;
  mutable nlink : int;
  mutable size : int;
}

and kind = Reg of Bytes.t ref * int ref (* storage, length *) | Dir of (string, inode) Hashtbl.t

type t = {
  root : inode;
  mutable next_ino : int;
  clock : Hw.Clock.t;
}

exception Not_found_path of string
exception Not_a_directory of string
exception Exists of string
exception Is_directory of string

let create clock =
  let root = { ino = 1; kind = Dir (Hashtbl.create 16); nlink = 2; size = 0 } in
  { root; next_ino = 2; clock }

let fresh_ino t =
  let i = t.next_ino in
  t.next_ino <- i + 1;
  i

let components path = List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' path)

(* Resolve [path]; charges one lookup component per step (dcache-ish). *)
let resolve t path =
  let parts = components path in
  List.fold_left
    (fun node name ->
      Hw.Clock.charge t.clock "vfs_lookup" Hw.Cost.vfs_lookup_component;
      match node.kind with
      | Dir entries -> (
          match Hashtbl.find_opt entries name with
          | Some child -> child
          | None -> raise (Not_found_path path))
      | Reg _ -> raise (Not_a_directory path))
    t.root parts

let resolve_opt t path = match resolve t path with i -> Some i | exception Not_found_path _ -> None

let dirname_basename path =
  match List.rev (components path) with
  | [] -> invalid_arg "Tmpfs: empty path"
  | base :: rev_dir -> (String.concat "/" (List.rev rev_dir), base)

let parent_dir t path =
  let dir, base = dirname_basename path in
  let node = if dir = "" then t.root else resolve t dir in
  match node.kind with
  | Dir entries -> (entries, base)
  | Reg _ -> raise (Not_a_directory dir)

let mkdir t path =
  let entries, base = parent_dir t path in
  if Hashtbl.mem entries base then raise (Exists path);
  let node = { ino = fresh_ino t; kind = Dir (Hashtbl.create 8); nlink = 2; size = 0 } in
  Hashtbl.replace entries base node;
  node

let create_file t path =
  let entries, base = parent_dir t path in
  if Hashtbl.mem entries base then raise (Exists path);
  let node = { ino = fresh_ino t; kind = Reg (ref (Bytes.create 256), ref 0); nlink = 1; size = 0 } in
  Hashtbl.replace entries base node;
  node

let open_or_create t path =
  match resolve_opt t path with Some i -> i | None -> create_file t path

let unlink t path =
  let entries, base = parent_dir t path in
  match Hashtbl.find_opt entries base with
  | None -> raise (Not_found_path path)
  | Some { kind = Dir _; _ } -> raise (Is_directory path)
  | Some node ->
      node.nlink <- node.nlink - 1;
      Hashtbl.remove entries base

let ensure_capacity storage len needed =
  if needed > Bytes.length !storage then begin
    let cap = max needed (2 * Bytes.length !storage) in
    let b = Bytes.create cap in
    Bytes.blit !storage 0 b 0 !len;
    storage := b
  end

(* Write [src] at [off]; extends the file.  Returns bytes written. *)
let write t inode ~off src =
  match inode.kind with
  | Dir _ -> raise (Is_directory "write")
  | Reg (storage, len) ->
      let n = Bytes.length src in
      ensure_capacity storage len (off + n);
      Bytes.blit src 0 !storage off n;
      if off + n > !len then len := off + n;
      inode.size <- !len;
      Hw.Clock.charge t.clock "file_copy" (float_of_int n *. Hw.Cost.copy_byte);
      n

(* Read up to [n] bytes at [off]. *)
let read t inode ~off ~n =
  match inode.kind with
  | Dir _ -> raise (Is_directory "read")
  | Reg (storage, len) ->
      let avail = max 0 (!len - off) in
      let n = min n avail in
      Hw.Clock.charge t.clock "file_copy" (float_of_int n *. Hw.Cost.copy_byte);
      Bytes.sub !storage off n

let truncate inode ~size =
  match inode.kind with
  | Dir _ -> raise (Is_directory "truncate")
  | Reg (storage, len) ->
      ensure_capacity storage len size;
      if size > !len then Bytes.fill !storage !len (size - !len) '\000';
      len := size;
      inode.size <- size

let size inode = inode.size
let ino inode = inode.ino
let is_dir inode = match inode.kind with Dir _ -> true | Reg _ -> false

let readdir inode =
  match inode.kind with
  | Reg _ -> raise (Not_a_directory "readdir")
  | Dir entries -> Hashtbl.fold (fun name _ acc -> name :: acc) entries [] |> List.sort String.compare
