(** Pipes and AF_UNIX-style stream sockets: bounded byte queues with
    blocking semantics surfaced as [`Would_block]. *)

type t

val create : ?capacity:int -> Hw.Clock.t -> t
val available : t -> int
val room : t -> int

val write : t -> Bytes.t -> (int, [ `Would_block | `Epipe ]) result
(** Short writes when nearly full; [`Epipe] after the read end closes. *)

val read : t -> n:int -> (Bytes.t, [ `Would_block ]) result
(** Empty bytes = EOF (write end closed and drained). *)

val close_read : t -> unit
val close_write : t -> unit
