(** Virtual memory areas: an interval map over page-aligned ranges. *)

type prot = { read : bool; write : bool; exec : bool }

val pp_prot : Format.formatter -> prot -> unit
val show_prot : prot -> string
val equal_prot : prot -> prot -> bool
val prot_rw : prot
val prot_ro : prot
val prot_rx : prot

type backing = Anon | File of { inode : int; offset : int } | Stack | Heap

val pp_backing : Format.formatter -> backing -> unit
val show_backing : backing -> string
val equal_backing : backing -> backing -> bool

type area = {
  start : Hw.Addr.va;  (** inclusive, page aligned *)
  stop : Hw.Addr.va;  (** exclusive, page aligned *)
  mutable prot : prot;
  backing : backing;
}

type t

val create : unit -> t

val find : t -> Hw.Addr.va -> area option
(** The area containing an address, if any. *)

val overlaps : t -> start:Hw.Addr.va -> stop:Hw.Addr.va -> bool

exception Overlap

val add : t -> start:Hw.Addr.va -> stop:Hw.Addr.va -> prot:prot -> backing:backing -> area
(** @raise Overlap if the range intersects an existing area.
    @raise Invalid_argument on an unaligned or empty range. *)

val remove : t -> start:Hw.Addr.va -> stop:Hw.Addr.va -> int
(** Remove a range, splitting partially-covered areas; returns the
    number of pages removed. *)

val protect : t -> start:Hw.Addr.va -> stop:Hw.Addr.va -> prot:prot -> area list
(** Change protection over a range, splitting as needed; returns the
    areas now exactly covering it. *)

val iter : t -> (area -> unit) -> unit
val count : t -> int
val total_pages : t -> int

val find_gap : t -> from:Hw.Addr.va -> pages:int -> Hw.Addr.va
(** First gap of the requested size at or above [from] — the mmap
    address allocator. *)
