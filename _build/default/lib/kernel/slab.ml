(* Slab-style object caches on top of the buddy allocator.

   Objects are identified by integer handles; the cache tracks which
   backing frames they live on so freeing the last object of a slab
   returns the frame to the buddy. *)

type slab = {
  frame : Hw.Addr.pfn;
  mutable free_slots : int list;
  mutable used : int;
}

type t = {
  name : string;
  obj_size : int;
  objs_per_slab : int;
  buddy : Buddy.t;
  mutable slabs : slab list;
  handle_of : (int, slab * int) Hashtbl.t;  (** handle -> (slab, slot) *)
  mutable next_handle : int;
  mutable allocated : int;
}

let create ~name ~obj_size buddy =
  if obj_size <= 0 || obj_size > Hw.Addr.page_size then invalid_arg "Slab.create: bad obj_size";
  {
    name;
    obj_size;
    objs_per_slab = Hw.Addr.page_size / obj_size;
    buddy;
    slabs = [];
    handle_of = Hashtbl.create 64;
    next_handle = 1;
    allocated = 0;
  }

let rec alloc t =
  match List.find_opt (fun s -> s.free_slots <> []) t.slabs with
  | Some s -> (
      match s.free_slots with
      | [] -> assert false
      | slot :: rest ->
          s.free_slots <- rest;
          s.used <- s.used + 1;
          let h = t.next_handle in
          t.next_handle <- h + 1;
          Hashtbl.replace t.handle_of h (s, slot);
          t.allocated <- t.allocated + 1;
          h)
  | None ->
      let frame = Buddy.alloc t.buddy in
      let s = { frame; free_slots = List.init t.objs_per_slab Fun.id; used = 0 } in
      t.slabs <- s :: t.slabs;
      alloc t

let free t h =
  match Hashtbl.find_opt t.handle_of h with
  | None -> invalid_arg "Slab.free: unknown handle"
  | Some (s, slot) ->
      Hashtbl.remove t.handle_of h;
      s.free_slots <- slot :: s.free_slots;
      s.used <- s.used - 1;
      t.allocated <- t.allocated - 1;
      if s.used = 0 && List.length t.slabs > 1 then begin
        t.slabs <- List.filter (fun s' -> s' != s) t.slabs;
        Buddy.free t.buddy s.frame
      end

let allocated t = t.allocated
let slab_count t = List.length t.slabs
