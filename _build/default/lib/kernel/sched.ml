(* A round-robin scheduler.  A context switch between tasks with
   different address spaces pays the platform's address-space switch
   (which is where PVM's hypercall-per-CR3-load shows up). *)

type t = {
  platform : Platform.t;
  queue : int Queue.t;  (** runnable pids *)
  mutable current : int option;
  mutable switches : int;
}

let create platform = { platform; queue = Queue.create (); current = None; switches = 0 }

let enqueue t pid = Queue.add pid t.queue
let current t = t.current
let switches t = t.switches
let runnable_count t = Queue.length t.queue

(* Switch to [pid] whose mm is [mm]; charges switch work + address
   space change. *)
let switch_to t pid (mm : Mm.t) =
  (match t.current with Some c when c = pid -> () | _ -> begin
      t.switches <- t.switches + 1;
      Hw.Clock.charge t.platform.Platform.clock "ctx_switch" Hw.Cost.ctx_switch_work;
      t.platform.Platform.as_switch (Mm.aspace mm)
    end);
  t.current <- Some pid

(* Pick the next runnable pid, if any (caller supplies mm lookup). *)
let pick_next t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some pid -> Some pid

let yield t pid =
  enqueue t pid;
  pick_next t
