lib/kernel/vma.pp.mli: Format Hw
