lib/kernel/sched.pp.ml: Hw Mm Platform Queue
