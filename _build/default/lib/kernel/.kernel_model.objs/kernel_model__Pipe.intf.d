lib/kernel/pipe.pp.mli: Bytes Hw
