lib/kernel/platform.pp.mli: Format Hw
