lib/kernel/virtio.pp.mli: Hw
