lib/kernel/kernel.pp.ml: Bytes Hashtbl Hw List Mm Net Pipe Platform Printf Queue Sched Syscall Task Tmpfs Virtio Vma
