lib/kernel/slab.pp.ml: Buddy Fun Hashtbl Hw List
