lib/kernel/buddy.pp.ml: Array Hashtbl Hw List
