lib/kernel/syscall.pp.ml: Bytes Hw Vma
