lib/kernel/task.pp.ml: Hashtbl Mm Pipe Ppx_deriving_runtime Tmpfs
