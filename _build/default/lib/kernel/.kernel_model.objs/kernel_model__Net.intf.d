lib/kernel/net.pp.mli: Bytes Hw Queue
