lib/kernel/kernel.pp.mli: Bytes Hw Net Platform Syscall Task Tmpfs Virtio
