lib/kernel/mm.pp.ml: Hashtbl Hw Platform Vma
