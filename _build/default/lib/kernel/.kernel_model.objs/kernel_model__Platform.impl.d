lib/kernel/platform.pp.ml: Hashtbl Hw Ppx_deriving_runtime
