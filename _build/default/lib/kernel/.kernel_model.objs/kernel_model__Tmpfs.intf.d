lib/kernel/tmpfs.pp.mli: Bytes Hw
