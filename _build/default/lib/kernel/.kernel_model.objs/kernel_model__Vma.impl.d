lib/kernel/vma.pp.ml: Hw Int Map Ppx_deriving_runtime Seq
