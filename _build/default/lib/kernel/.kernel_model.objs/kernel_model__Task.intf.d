lib/kernel/task.pp.mli: Format Hashtbl Mm Pipe Tmpfs
