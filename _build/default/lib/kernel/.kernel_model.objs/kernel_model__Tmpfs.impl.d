lib/kernel/tmpfs.pp.ml: Bytes Hashtbl Hw List String
