lib/kernel/mm.pp.mli: Hw Platform Vma
