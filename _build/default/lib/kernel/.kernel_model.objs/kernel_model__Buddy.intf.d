lib/kernel/buddy.pp.mli: Hw
