lib/kernel/pipe.pp.ml: Buffer Bytes Hw String
