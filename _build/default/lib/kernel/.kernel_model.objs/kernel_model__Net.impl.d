lib/kernel/net.pp.ml: Bytes Hashtbl Hw Queue
