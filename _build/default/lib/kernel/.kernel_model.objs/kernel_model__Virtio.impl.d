lib/kernel/virtio.pp.ml: Array Hw
