lib/kernel/slab.pp.mli: Buddy
