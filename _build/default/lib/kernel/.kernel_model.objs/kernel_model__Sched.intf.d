lib/kernel/sched.pp.mli: Mm Platform
