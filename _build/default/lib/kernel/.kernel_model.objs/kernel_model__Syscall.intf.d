lib/kernel/syscall.pp.mli: Bytes Hw Vma
