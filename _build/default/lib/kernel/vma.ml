(* Virtual memory areas: an interval map over page-aligned ranges. *)

module Int_map = Map.Make (Int)

type prot = { read : bool; write : bool; exec : bool } [@@deriving show { with_path = false }, eq]

let prot_rw = { read = true; write = true; exec = false }
let prot_ro = { read = true; write = false; exec = false }
let prot_rx = { read = true; write = false; exec = true }

type backing = Anon | File of { inode : int; offset : int } | Stack | Heap
[@@deriving show { with_path = false }, eq]

type area = {
  start : Hw.Addr.va;  (** inclusive, page aligned *)
  stop : Hw.Addr.va;  (** exclusive, page aligned *)
  mutable prot : prot;
  backing : backing;
}

type t = { mutable areas : area Int_map.t (* keyed by start *) }

let create () = { areas = Int_map.empty }

let check_range start stop =
  if not (Hw.Addr.is_page_aligned start && Hw.Addr.is_page_aligned stop && start < stop) then
    invalid_arg "Vma: bad range"

(* The area containing [va], if any. *)
let find t va =
  match Int_map.find_last_opt (fun s -> s <= va) t.areas with
  | Some (_, a) when va < a.stop -> Some a
  | _ -> None

let overlaps t ~start ~stop =
  check_range start stop;
  match Int_map.find_last_opt (fun s -> s < stop) t.areas with
  | Some (_, a) -> a.stop > start
  | None -> false

exception Overlap

let add t ~start ~stop ~prot ~backing =
  check_range start stop;
  if overlaps t ~start ~stop then raise Overlap;
  let a = { start; stop; prot; backing } in
  t.areas <- Int_map.add start a t.areas;
  a

(* Remove [start, stop); splits partially-covered areas.  Returns the
   removed page count. *)
let remove t ~start ~stop =
  check_range start stop;
  let removed = ref 0 in
  let affected =
    Int_map.filter (fun _ a -> a.start < stop && a.stop > start) t.areas
  in
  Int_map.iter
    (fun key a ->
      t.areas <- Int_map.remove key t.areas;
      let cut_lo = max a.start start and cut_hi = min a.stop stop in
      removed := !removed + ((cut_hi - cut_lo) / Hw.Addr.page_size);
      if a.start < cut_lo then
        t.areas <- Int_map.add a.start { a with stop = cut_lo } t.areas;
      if a.stop > cut_hi then
        t.areas <- Int_map.add cut_hi { a with start = cut_hi } t.areas)
    affected;
  !removed

(* Change protection over [start, stop); splits as needed.  Returns the
   areas now exactly covering the range. *)
let protect t ~start ~stop ~prot =
  check_range start stop;
  let affected = Int_map.filter (fun _ a -> a.start < stop && a.stop > start) t.areas in
  let result = ref [] in
  Int_map.iter
    (fun key a ->
      t.areas <- Int_map.remove key t.areas;
      let cut_lo = max a.start start and cut_hi = min a.stop stop in
      if a.start < cut_lo then t.areas <- Int_map.add a.start { a with stop = cut_lo } t.areas;
      if a.stop > cut_hi then t.areas <- Int_map.add cut_hi { a with start = cut_hi } t.areas;
      let mid = { a with start = cut_lo; stop = cut_hi; prot } in
      t.areas <- Int_map.add cut_lo mid t.areas;
      result := mid :: !result)
    affected;
  !result

let iter t f = Int_map.iter (fun _ a -> f a) t.areas
let count t = Int_map.cardinal t.areas
let total_pages t =
  Int_map.fold (fun _ a n -> n + ((a.stop - a.start) / Hw.Addr.page_size)) t.areas 0

(* First gap of [pages] pages at or above [from] — the mmap allocator. *)
let find_gap t ~from ~pages =
  let need = pages * Hw.Addr.page_size in
  let rec scan candidate seq =
    match seq () with
    | Seq.Nil -> candidate
    | Seq.Cons ((_, a), rest) ->
        if a.stop <= candidate then scan candidate rest
        else if a.start >= candidate + need then candidate
        else scan (max candidate a.stop) rest
  in
  scan from (Int_map.to_seq t.areas)
