(** GUPS (HPCC RandomAccess) and the big-BTree lookup of Table 4:
    TLB-miss-bound workloads where the differentiator is page-walk
    geometry — 4 references natively (RunC / PVM-shadow / CKI) vs 24
    under two-dimensional EPT translation, or 15 with 2 MiB EPT
    mappings.

    Sampled loops run through a real PCID-tagged TLB over a scaled
    table; [ept_huge] shortens only the second-stage walk (the guest's
    4 KiB TLB granularity is unchanged, as the paper found). *)

type result = { total_ns : float; tlb_miss_rate : float }

val run_gups : Virt.Backend.t -> ?ept_huge:bool -> table_pages:int -> updates:int -> unit -> result

val run_btree_lookup :
  Virt.Backend.t -> ?ept_huge:bool -> table_pages:int -> lookups:int -> unit -> result
(** Hot inner nodes (TLB-resident) + one cold leaf page per lookup —
    why the paper's HVM penalty here (6%) is smaller than GUPS's
    (19%). *)
