(** The BTree key-value store of Figures 4/12/13 and Table 4.

    A real in-memory B-tree; node and value allocations flow through an
    arena, so inserts produce genuine demand faults with realistic
    density, while lookups are pure compute. *)

val order : int
val node_bytes : int

val entry_bytes : int
(** Out-of-line value payload allocated per insert. *)

type t

val create : Virt.Backend.t -> Kernel_model.Task.t -> t
val insert : t -> int -> int -> unit
val lookup : t -> int -> int option
val size : t -> int

val insert_compute : float
val lookup_compute : float

val run : Virt.Backend.t -> inserts:int -> lookups:int -> float
(** The Figure 12/4 configuration; returns total simulated latency. *)

val run_ratio : Virt.Backend.t -> total_ops:int -> lookup_per_insert:int -> float
(** Figure 13a: fixed op count, varying lookup:insert ratio. *)
