(* The lmbench microbenchmark suite of Figure 11: ten OS-operation
   latencies.  Each returns the mean latency in ns on the given
   backend. *)

type op =
  | Read
  | Write
  | Stat
  | Prot_fault
  | Page_fault
  | Fork_exit
  | Fork_execve
  | Ctx_switch_2p_0k
  | Pipe
  | Af_unix
[@@deriving show { with_path = false }, eq]

let all_ops =
  [ Read; Write; Stat; Prot_fault; Page_fault; Fork_exit; Fork_execve; Ctx_switch_2p_0k; Pipe; Af_unix ]

let op_name = function
  | Read -> "read"
  | Write -> "write"
  | Stat -> "stat"
  | Prot_fault -> "protfault"
  | Page_fault -> "pagefault"
  | Fork_exit -> "fork/exit"
  | Fork_execve -> "fork/execve"
  | Ctx_switch_2p_0k -> "ctxsw 2p/0k"
  | Pipe -> "pipe"
  | Af_unix -> "AF_UNIX"

let fd_of = function
  | Kernel_model.Syscall.Rint fd -> fd
  | _ -> failwith "lmbench: expected fd"

let pair_of = function
  | Kernel_model.Syscall.Rpair (a, b) -> (a, b)
  | _ -> failwith "lmbench: expected pair"

(* Resident pages a child of the fork benchmarks carries. *)
let fork_resident_pages = 48

let measure (b : Virt.Backend.t) (op : op) ~iters =
  let k = b.Virt.Backend.kernel in
  let task = Virt.Backend.spawn b in
  let sys sc = Virt.Backend.syscall_exn b task sc in
  match op with
  | Read ->
      let fd = fd_of (sys (Kernel_model.Syscall.Open { path = "/lm_read"; create = true })) in
      ignore (sys (Kernel_model.Syscall.Write { fd; data = Bytes.create 4096 }));
      Virt.Backend.mean_latency b ~n:iters (fun () ->
          ignore (sys (Kernel_model.Syscall.Lseek { fd; pos = 0 }));
          ignore (sys (Kernel_model.Syscall.Read { fd; n = 1 })))
  | Write ->
      let fd = fd_of (sys (Kernel_model.Syscall.Open { path = "/lm_write"; create = true })) in
      let one = Bytes.create 1 in
      Virt.Backend.mean_latency b ~n:iters (fun () ->
          ignore (sys (Kernel_model.Syscall.Lseek { fd; pos = 0 }));
          ignore (sys (Kernel_model.Syscall.Write { fd; data = one })))
  | Stat ->
      ignore (sys (Kernel_model.Syscall.Open { path = "/lm_stat"; create = true }));
      Virt.Backend.mean_latency b ~n:iters (fun () ->
          ignore (sys (Kernel_model.Syscall.Stat "/lm_stat")))
  | Prot_fault ->
      (* Write to a read-only page: fault delivery + SIGSEGV dispatch +
         mprotect to recover, as lmbench's prot benchmark does. *)
      let addr =
        match sys (Kernel_model.Syscall.Mmap { pages = 1; prot = Kernel_model.Vma.prot_rw }) with
        | Kernel_model.Syscall.Rint v -> v
        | _ -> failwith "mmap"
      in
      Kernel_model.Mm.touch task.Kernel_model.Task.mm addr ~write:true;
      Virt.Backend.mean_latency b ~n:iters (fun () ->
          ignore
            (sys (Kernel_model.Syscall.Mprotect { addr; pages = 1; prot = Kernel_model.Vma.prot_ro }));
          (* the faulting access: platform fault path + signal dispatch *)
          b.Virt.Backend.platform.Kernel_model.Platform.fault_round_trip ();
          Hw.Clock.charge b.Virt.Backend.clock "signal_dispatch" 600.0;
          ignore
            (sys (Kernel_model.Syscall.Mprotect { addr; pages = 1; prot = Kernel_model.Vma.prot_rw })))
  | Page_fault ->
      let pages = 64 in
      Virt.Backend.mean_latency b ~n:iters (fun () ->
          let addr =
            match sys (Kernel_model.Syscall.Mmap { pages; prot = Kernel_model.Vma.prot_rw }) with
            | Kernel_model.Syscall.Rint v -> v
            | _ -> failwith "mmap"
          in
          ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:addr ~pages ~write:true);
          ignore (sys (Kernel_model.Syscall.Munmap { addr; pages })))
      /. float_of_int pages
  | Fork_exit ->
      (* Parent with a small resident set; child exits immediately. *)
      let addr =
        match
          sys (Kernel_model.Syscall.Mmap { pages = fork_resident_pages; prot = Kernel_model.Vma.prot_rw })
        with
        | Kernel_model.Syscall.Rint v -> v
        | _ -> failwith "mmap"
      in
      ignore
        (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:addr ~pages:fork_resident_pages
           ~write:true);
      Virt.Backend.mean_latency b ~n:iters (fun () ->
          match sys Kernel_model.Syscall.Fork with
          | Kernel_model.Syscall.Rint child_pid -> (
              match Kernel_model.Kernel.task k child_pid with
              | Some child -> ignore (Kernel_model.Kernel.syscall k child (Kernel_model.Syscall.Exit 0))
              | None -> failwith "fork: child vanished")
          | _ -> failwith "fork")
  | Fork_execve ->
      let addr =
        match
          sys (Kernel_model.Syscall.Mmap { pages = fork_resident_pages; prot = Kernel_model.Vma.prot_rw })
        with
        | Kernel_model.Syscall.Rint v -> v
        | _ -> failwith "mmap"
      in
      ignore
        (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:addr ~pages:fork_resident_pages
           ~write:true);
      Virt.Backend.mean_latency b ~n:iters (fun () ->
          match sys Kernel_model.Syscall.Fork with
          | Kernel_model.Syscall.Rint child_pid -> (
              match Kernel_model.Kernel.task k child_pid with
              | Some child ->
                  ignore (Kernel_model.Kernel.syscall k child Kernel_model.Syscall.Execve);
                  ignore (Kernel_model.Kernel.syscall k child (Kernel_model.Syscall.Exit 0))
              | None -> failwith "fork: child vanished")
          | _ -> failwith "fork")
  | Ctx_switch_2p_0k ->
      let peer = Virt.Backend.spawn b in
      Virt.Backend.mean_latency b ~n:iters (fun () ->
          Kernel_model.Kernel.context_switch k ~from_pid:task.Kernel_model.Task.pid
            ~to_pid:peer.Kernel_model.Task.pid;
          Kernel_model.Kernel.context_switch k ~from_pid:peer.Kernel_model.Task.pid
            ~to_pid:task.Kernel_model.Task.pid)
      /. 2.0
  | Pipe ->
      let peer = Virt.Backend.spawn b in
      let rfd, wfd = pair_of (sys Kernel_model.Syscall.Pipe) in
      (* Register the same pipe ends with the peer. *)
      Hashtbl.iter (fun fd obj -> Hashtbl.replace peer.Kernel_model.Task.fds fd obj)
        task.Kernel_model.Task.fds;
      let one = Bytes.create 1 in
      Virt.Backend.mean_latency b ~n:iters (fun () ->
          ignore (sys (Kernel_model.Syscall.Write { fd = wfd; data = one }));
          Kernel_model.Kernel.context_switch k ~from_pid:task.Kernel_model.Task.pid
            ~to_pid:peer.Kernel_model.Task.pid;
          ignore (Kernel_model.Kernel.syscall k peer (Kernel_model.Syscall.Read { fd = rfd; n = 1 }));
          Kernel_model.Kernel.context_switch k ~from_pid:peer.Kernel_model.Task.pid
            ~to_pid:task.Kernel_model.Task.pid)
  | Af_unix ->
      let peer = Virt.Backend.spawn b in
      let rfd, wfd = pair_of (sys Kernel_model.Syscall.Pipe) in
      Hashtbl.iter (fun fd obj -> Hashtbl.replace peer.Kernel_model.Task.fds fd obj)
        task.Kernel_model.Task.fds;
      let payload = Bytes.create 64 in
      Virt.Backend.mean_latency b ~n:iters (fun () ->
          (* AF_UNIX: socket bookkeeping is heavier than a pipe. *)
          Hw.Clock.charge b.Virt.Backend.clock "af_unix_overhead" 500.0;
          ignore (sys (Kernel_model.Syscall.Write { fd = wfd; data = payload }));
          Kernel_model.Kernel.context_switch k ~from_pid:task.Kernel_model.Task.pid
            ~to_pid:peer.Kernel_model.Task.pid;
          ignore (Kernel_model.Kernel.syscall k peer (Kernel_model.Syscall.Read { fd = rfd; n = 64 }));
          Kernel_model.Kernel.context_switch k ~from_pid:peer.Kernel_model.Task.pid
            ~to_pid:task.Kernel_model.Task.pid)

(* Run the full suite; returns (op, latency_ns) rows. *)
let run_suite ?(iters = 200) (b : Virt.Backend.t) =
  List.map (fun op -> (op, measure b op ~iters)) all_ops
