(** netperf TX (bulk stream) and RR (1-byte request/response) —
    Figure 5. RR is the worst case for exit-heavy backends: every
    transaction is an RX interrupt + recv + send + doorbell. *)

val run_tx : Virt.Backend.t -> sends:int -> float
(** Bulk TX throughput in MB/s of simulated time (16 KiB sends,
    completions coalesced 8:1). *)

val run_rr : Virt.Backend.t -> transactions:int -> float
(** Transactions per simulated second. *)
