(** Shared workload plumbing: deterministic RNG, run records, compute
    charging, and the allocation arena that converts byte-allocation
    streams into demand-faulted page touches. *)

type run = {
  label : string;
  workload : string;
  latency_ns : float;
  throughput : float;
  faults : int;
  syscalls : int;
}

val pp_run : Format.formatter -> run -> unit

(** Deterministic xorshift64* PRNG. *)
module Rng : sig
  type t

  val create : ?seed:int64 -> unit -> t
  val next : t -> int64
  val int : t -> int -> int
  val float : t -> float
end

val compute : Virt.Backend.t -> float -> unit
(** Charge pure application compute on the container clock. *)

val timed : Virt.Backend.t -> (unit -> unit) -> float
(** Simulated time consumed by a thunk. *)

(** An allocation arena: [alloc] demand-faults each fresh page crossed,
    which is how the workload models exercise the page-fault path with
    realistic densities. *)
module Arena : sig
  type t

  val create : ?chunk_pages:int -> Virt.Backend.t -> Kernel_model.Task.t -> t
  val alloc : t -> int -> unit
  val allocated_bytes : t -> int
end
