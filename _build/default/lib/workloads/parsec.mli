(** The PARSEC / vmitosis page-fault-intensive applications of Figures
    4 and 12: canneal, dedup, fluidanimate, freqmine.

    Profiles fix the fault density (pages, compute per page), the
    malloc/free churn (recycled guest pages keep their EPT mapping
    under HVM — no second-stage violation — while every backend still
    takes the guest-level fault), and the file-I/O rate (dedup's
    pipeline writes output). *)

type profile = {
  name : string;
  pages : int;
  compute_per_page : float;
  churn : float;  (** 0.0 all-fresh .. 0.9 mostly recycled *)
  syscalls_per_100_pages : int;
}

val canneal : profile
val dedup : profile
val fluidanimate : profile
val freqmine : profile
val all : profile list
val chunk_pages : int

val run : Virt.Backend.t -> profile -> float
(** Total simulated latency of the run. *)
