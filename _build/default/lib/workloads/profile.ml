(* Shared workload plumbing: deterministic RNG, run records, and the
   helpers for charging compute time and touching memory. *)

type run = {
  label : string;  (** backend label *)
  workload : string;
  latency_ns : float;  (** total simulated latency of the run *)
  throughput : float;  (** ops per simulated second (0 for latency runs) *)
  faults : int;
  syscalls : int;
}

let pp_run fmt r =
  Format.fprintf fmt "%s/%s: %.0f ns, %.0f ops/s, %d faults, %d syscalls" r.workload r.label
    r.latency_ns r.throughput r.faults r.syscalls

(* Deterministic xorshift64* PRNG so runs are reproducible. *)
module Rng = struct
  type t = { mutable s : int64 }

  let create ?(seed = 0x9E3779B97F4A7C15L) () = { s = seed }

  let next t =
    let s = t.s in
    let s = Int64.logxor s (Int64.shift_left s 13) in
    let s = Int64.logxor s (Int64.shift_right_logical s 7) in
    let s = Int64.logxor s (Int64.shift_left s 17) in
    t.s <- s;
    s

  let int t bound =
    if bound <= 0 then invalid_arg "Rng.int";
    Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

  let float t = float_of_int (int t 1_000_000) /. 1_000_000.0
end

(* Charge [ns] of pure application compute on the container clock. *)
let compute (b : Virt.Backend.t) ns = Hw.Clock.advance b.Virt.Backend.clock ns

(* Measure the simulated time of [f]. *)
let timed (b : Virt.Backend.t) f = snd (Hw.Clock.timed b.Virt.Backend.clock f)

(* An allocation arena that converts a byte-allocation stream into
   demand-faulted page touches — how the workload models exercise the
   page-fault path with realistic densities. *)
module Arena = struct
  type t = {
    backend : Virt.Backend.t;
    task : Kernel_model.Task.t;
    mutable chunk_base : Hw.Addr.va;
    mutable chunk_used_pages : int;
    mutable chunk_pages : int;
    mutable offset_in_page : int;
    chunk_alloc_pages : int;
    mutable allocated_bytes : int;
  }

  let create ?(chunk_pages = 512) backend task =
    {
      backend;
      task;
      chunk_base = 0;
      chunk_used_pages = 0;
      chunk_pages = 0;
      offset_in_page = 0;
      chunk_alloc_pages = chunk_pages;
      allocated_bytes = 0;
    }

  let grow t =
    let pages = t.chunk_alloc_pages in
    let base =
      match
        Virt.Backend.syscall_exn t.backend t.task
          (Kernel_model.Syscall.Mmap { pages; prot = Kernel_model.Vma.prot_rw })
      with
      | Kernel_model.Syscall.Rint v -> v
      | _ -> failwith "Arena.grow: unexpected mmap result"
    in
    t.chunk_base <- base;
    t.chunk_pages <- pages;
    t.chunk_used_pages <- 0;
    t.offset_in_page <- 0

  (* Allocate [bytes]; touches (demand-faults) each new page crossed. *)
  let alloc t bytes =
    if bytes <= 0 then invalid_arg "Arena.alloc";
    t.allocated_bytes <- t.allocated_bytes + bytes;
    let remaining = ref bytes in
    while !remaining > 0 do
      if t.chunk_used_pages >= t.chunk_pages then grow t;
      if t.offset_in_page = 0 then
        Kernel_model.Mm.touch t.task.Kernel_model.Task.mm
          (t.chunk_base + (t.chunk_used_pages * Hw.Addr.page_size))
          ~write:true;
      let room = Hw.Addr.page_size - t.offset_in_page in
      let take = min room !remaining in
      t.offset_in_page <- t.offset_in_page + take;
      remaining := !remaining - take;
      if t.offset_in_page >= Hw.Addr.page_size then begin
        t.offset_in_page <- 0;
        t.chunk_used_pages <- t.chunk_used_pages + 1
      end
    done

  let allocated_bytes t = t.allocated_bytes
end
