(* netperf TX (bulk stream) and RR (request/response) — Figure 5.

   TX: the container streams 16 KiB sends as fast as it can; cost per
   send = syscall + virtio post/kick; TX completions are coalesced.

   RR: 1-byte ping-pong transactions; each transaction is an RX
   interrupt + recv + send + kick — the worst case for exit-heavy
   backends. *)

let setup_socket (b : Virt.Backend.t) =
  let task = Virt.Backend.spawn b in
  let sock_fd =
    match Virt.Backend.syscall_exn b task Kernel_model.Syscall.Socket with
    | Kernel_model.Syscall.Rint fd -> fd
    | _ -> failwith "netperf: socket failed"
  in
  let sock_id =
    match Kernel_model.Task.fd task sock_fd with
    | Some (Kernel_model.Task.Socket id) -> id
    | _ -> failwith "netperf: no socket id"
  in
  let wire = Kernel_model.Kernel.wire b.Virt.Backend.kernel in
  let peer = Kernel_model.Net.endpoint wire in
  (match Kernel_model.Kernel.socket_endpoint b.Virt.Backend.kernel sock_id with
  | Some ep -> Kernel_model.Net.connect wire ep peer
  | None -> failwith "netperf: endpoint lookup failed");
  (task, sock_fd, sock_id, peer)

(* Bulk TX throughput in MB/s of simulated time. *)
let run_tx (b : Virt.Backend.t) ~sends =
  let task, sock_fd, _, peer = setup_socket b in
  let k = b.Virt.Backend.kernel in
  let chunk = Bytes.create 16384 in
  let total_ns =
    Profile.timed b (fun () ->
        for i = 1 to sends do
          ignore
            (Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Send { fd = sock_fd; data = chunk }));
          (* completions coalesce every 8 sends *)
          if i land 7 = 0 then Kernel_model.Kernel.flush_net k;
          while Kernel_model.Net.pending peer > 0 do
            ignore (Kernel_model.Net.recv peer)
          done
        done;
        Kernel_model.Kernel.flush_net k)
  in
  float_of_int (sends * 16384) /. (total_ns /. 1e9) /. 1e6

(* RR transactions per second. *)
let run_rr (b : Virt.Backend.t) ~transactions =
  let task, sock_fd, sock_id, peer = setup_socket b in
  let k = b.Virt.Backend.kernel in
  let one = Bytes.create 1 in
  let total_ns =
    Profile.timed b (fun () ->
        for _ = 1 to transactions do
          (match Kernel_model.Kernel.deliver_packets k ~sid:sock_id [ one ] with
          | Ok () -> ()
          | Error `No_socket -> failwith "netperf: delivery failed");
          ignore
            (Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Recv { fd = sock_fd; n = 1 }));
          ignore
            (Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Send { fd = sock_fd; data = one }));
          Kernel_model.Kernel.flush_net k;
          while Kernel_model.Net.pending peer > 0 do
            ignore (Kernel_model.Net.recv peer)
          done
        done)
  in
  float_of_int transactions /. (total_ns /. 1e9)
