(** XSBench: Monte-Carlo neutron-transport cross-section lookup kernel
    (Figures 4/12/13b).

    Initialization (grid generation) is page-fault dominated; the
    calculation phase (per-particle random lookups) is pure compute —
    so secure-container overhead decays with the particle count, the
    Figure 13b sweep. *)

val gridpoint_bytes : int
val lookups_per_particle : int
val lookup_compute : float
val init_compute_per_gridpoint : float

val run : Virt.Backend.t -> gridpoints:int -> particles:int -> float
(** Total simulated latency. *)
