(* GUPS (HPCC RandomAccess) and the big-BTree lookup run of Table 4:
   TLB-miss-bound workloads where the cost difference is the page-walk
   geometry — 4 references natively (RunC / PVM-shadow / CKI) versus 24
   under two-dimensional EPT translation (HVM), or 3 vs 15 with 2 MiB
   pages.

   The working set (tens of GiB in the paper) vastly exceeds TLB reach,
   so essentially every access misses; we run a sampled loop through a
   real PCID-tagged TLB over a scaled table and charge the backend's
   walk geometry on each miss. *)

type result = { total_ns : float; tlb_miss_rate : float }

(* [ept_huge] backs the *second stage* with 2 MiB mappings (shorter 2-D
   walk); the guest's own pages — and hence TLB granularity — stay
   4 KiB, which is why the paper measured "similar results" with EPT
   huge pages enabled (Table 4). *)
let run_gups (b : Virt.Backend.t) ?(ept_huge = false) ~table_pages ~updates () =
  let tlb = Hw.Tlb.create ~capacity:1536 () in
  let rng = Profile.Rng.create ~seed:7L () in
  let clock = b.Virt.Backend.clock in
  let refs = if ept_huge then b.Virt.Backend.walk_refs_huge else b.Virt.Backend.walk_refs in
  let walk_ns = float_of_int refs *. Hw.Cost.walk_mem_ref in
  let update_compute = 1120.0 in
  let t0 = Hw.Clock.now clock in
  for _ = 1 to updates do
    let page = Profile.Rng.int rng table_pages in
    let va = page * Hw.Addr.page_size in
    (match Hw.Tlb.lookup tlb ~pcid:1 va with
    | Some _ -> Hw.Clock.charge clock "tlb_hit" Hw.Cost.tlb_hit
    | None ->
        Hw.Clock.charge clock "tlb_miss_walk" walk_ns;
        Hw.Tlb.insert tlb ~pcid:1 ~va
          { Hw.Tlb.pfn = page; flags = Hw.Pte.default_flags; level = 1 });
    Profile.compute b update_compute
  done;
  {
    total_ns = Hw.Clock.now clock -. t0;
    tlb_miss_rate =
      (let h = Hw.Tlb.hits tlb and m = Hw.Tlb.misses tlb in
       if h + m = 0 then 0.0 else float_of_int m /. float_of_int (h + m));
  }

(* Table 4's BTree-Lookup over a 45 GB tree: random lookups walking ~5
   levels of nodes.  The upper levels are a small, hot working set
   (root and inner nodes stay TLB-resident); only the leaf access is a
   cold random page — which is why the paper's HVM penalty here (6%)
   is much smaller than GUPS's (19%). *)
let run_btree_lookup (b : Virt.Backend.t) ?(ept_huge = false) ~table_pages ~lookups () =
  let tlb = Hw.Tlb.create ~capacity:1536 () in
  let rng = Profile.Rng.create ~seed:11L () in
  let clock = b.Virt.Backend.clock in
  let refs = if ept_huge then b.Virt.Backend.walk_refs_huge else b.Virt.Backend.walk_refs in
  let walk_ns = float_of_int refs *. Hw.Cost.walk_mem_ref in
  let hot_levels = 4 in
  let per_level_compute = 700.0 in
  let t0 = Hw.Clock.now clock in
  for _ = 1 to lookups do
    (* hot inner nodes: TLB hits *)
    for _ = 1 to hot_levels do
      Hw.Clock.charge clock "tlb_hit" Hw.Cost.tlb_hit;
      Profile.compute b per_level_compute
    done;
    (* cold leaf page *)
    let page = Profile.Rng.int rng table_pages in
    let va = page * Hw.Addr.page_size in
    (match Hw.Tlb.lookup tlb ~pcid:1 va with
    | Some _ -> Hw.Clock.charge clock "tlb_hit" Hw.Cost.tlb_hit
    | None ->
        Hw.Clock.charge clock "tlb_miss_walk" walk_ns;
        Hw.Tlb.insert tlb ~pcid:1 ~va
          { Hw.Tlb.pfn = page; flags = Hw.Pte.default_flags; level = 1 });
    Profile.compute b per_level_compute
  done;
  {
    total_ns = Hw.Clock.now clock -. t0;
    tlb_miss_rate =
      (let h = Hw.Tlb.hits tlb and m = Hw.Tlb.misses tlb in
       if h + m = 0 then 0.0 else float_of_int m /. float_of_int (h + m));
  }
