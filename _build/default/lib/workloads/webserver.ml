(* Web-server workloads of Figure 5: nginx serving static files, nginx
   as a reverse proxy, and Apache httpd.

   Per request:
     - static: RX interrupt (batched), recv, stat + open + read of the
       file from tmpfs, send, close;
     - proxy: static's front half plus an upstream connection
       (send + RX interrupt + recv on the upstream socket) — double
       the virtio traffic;
     - httpd: like static with a heavier syscall footprint
       (per-request accept4/setsockopt/writev and logging write). *)

type kind = Nginx_static | Nginx_proxy | Httpd [@@deriving show { with_path = false }, eq]

let kind_name = function
  | Nginx_static -> "nginx (static)"
  | Nginx_proxy -> "nginx (proxy)"
  | Httpd -> "httpd"

type server = {
  backend : Virt.Backend.t;
  task : Kernel_model.Task.t;
  sock_fd : int;
  sock_id : int;
  upstream_fd : int;
  upstream_id : int;
  file_path : string;
  kind : kind;
}

let file_bytes = 8192
let rx_batch = 4

let fd_of = function
  | Kernel_model.Syscall.Rint fd -> fd
  | _ -> failwith "webserver: expected fd"

let mk_socket (b : Virt.Backend.t) task =
  let fd = fd_of (Virt.Backend.syscall_exn b task Kernel_model.Syscall.Socket) in
  let id =
    match Kernel_model.Task.fd task fd with
    | Some (Kernel_model.Task.Socket id) -> id
    | _ -> failwith "webserver: no socket id"
  in
  let wire = Kernel_model.Kernel.wire b.Virt.Backend.kernel in
  let peer = Kernel_model.Net.endpoint wire in
  (match Kernel_model.Kernel.socket_endpoint b.Virt.Backend.kernel id with
  | Some ep -> Kernel_model.Net.connect wire ep peer
  | None -> failwith "webserver: endpoint lookup failed");
  (fd, id, peer)

let create (b : Virt.Backend.t) kind =
  let task = Virt.Backend.spawn b in
  let sock_fd, sock_id, _ = mk_socket b task in
  let upstream_fd, upstream_id, _ = mk_socket b task in
  let file_path = "/www_index.html" in
  let fd = fd_of (Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Open { path = file_path; create = true })) in
  ignore
    (Virt.Backend.syscall_exn b task
       (Kernel_model.Syscall.Write { fd; data = Bytes.create file_bytes }));
  ignore (Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Close fd));
  { backend = b; task; sock_fd; sock_id; upstream_fd; upstream_id; file_path; kind }

let request_compute = function
  | Nginx_static -> 1_800.0
  | Nginx_proxy -> 2_400.0
  | Httpd -> 3_600.0

let serve_one srv =
  let b = srv.backend in
  let sys sc = ignore (Virt.Backend.syscall_exn b srv.task sc) in
  sys (Kernel_model.Syscall.Recv { fd = srv.sock_fd; n = 512 });
  Profile.compute b (request_compute srv.kind);
  (match srv.kind with
  | Nginx_static ->
      sys (Kernel_model.Syscall.Stat srv.file_path);
      let fd = ref 0 in
      (match Virt.Backend.syscall_exn b srv.task (Kernel_model.Syscall.Open { path = srv.file_path; create = false }) with
      | Kernel_model.Syscall.Rint f -> fd := f
      | _ -> failwith "open");
      sys (Kernel_model.Syscall.Read { fd = !fd; n = file_bytes });
      sys (Kernel_model.Syscall.Close !fd)
  | Nginx_proxy ->
      (* forward to upstream and await its reply *)
      sys (Kernel_model.Syscall.Send { fd = srv.upstream_fd; data = Bytes.create 512 });
      (match
         Kernel_model.Kernel.deliver_packets b.Virt.Backend.kernel ~sid:srv.upstream_id
           [ Bytes.create file_bytes ]
       with
      | Ok () -> ()
      | Error `No_socket -> failwith "proxy upstream");
      sys (Kernel_model.Syscall.Recv { fd = srv.upstream_fd; n = file_bytes })
  | Httpd ->
      sys (Kernel_model.Syscall.Stat srv.file_path);
      let fd = ref 0 in
      (match Virt.Backend.syscall_exn b srv.task (Kernel_model.Syscall.Open { path = srv.file_path; create = false }) with
      | Kernel_model.Syscall.Rint f -> fd := f
      | _ -> failwith "open");
      sys (Kernel_model.Syscall.Read { fd = !fd; n = file_bytes });
      sys (Kernel_model.Syscall.Close !fd);
      (* access log + extra per-request socket bookkeeping *)
      sys Kernel_model.Syscall.Sched_yield;
      sys Kernel_model.Syscall.Sched_yield;
      sys (Kernel_model.Syscall.Stat srv.file_path));
  sys (Kernel_model.Syscall.Send { fd = srv.sock_fd; data = Bytes.create 600 })

(* Requests per second over [requests] simulated requests. *)
let run (b : Virt.Backend.t) kind ~requests =
  let srv = create b kind in
  let k = b.Virt.Backend.kernel in
  let total_ns =
    Profile.timed b (fun () ->
        let served = ref 0 in
        while !served < requests do
          let n = min rx_batch (requests - !served) in
          (match
             Kernel_model.Kernel.deliver_packets k ~sid:srv.sock_id
               (List.init n (fun _ -> Bytes.create 512))
           with
          | Ok () -> ()
          | Error `No_socket -> failwith "webserver delivery");
          for _ = 1 to n do
            serve_one srv
          done;
          Kernel_model.Kernel.flush_net k;
          (* drain client-side queues *)
          served := !served + n
        done)
  in
  float_of_int requests /. (total_ns /. 1e9)
