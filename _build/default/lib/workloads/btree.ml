(* The BTree key-value store of Figures 4/12/13 and Table 4.

   A real in-memory B-tree; node allocations flow through an arena so
   inserts produce genuine demand faults with realistic density, and
   lookups are pure compute (plus TLB pressure modelled in
   [Gups]-style runs for Table 4). *)

let order = 32 (* max keys per node *)

type node = {
  mutable keys : int array;
  mutable nkeys : int;
  mutable values : int array;
  mutable children : node array;  (** empty for leaves *)
}

type t = {
  mutable root : node;
  arena : Profile.Arena.t;
  mutable size : int;
}

let node_bytes = 16 * order (* keys + values + header, roughly *)

let new_node arena ~leaf =
  Profile.Arena.alloc arena node_bytes;
  {
    keys = Array.make order 0;
    nkeys = 0;
    values = Array.make order 0;
    children = (if leaf then [||] else Array.make (order + 1) (Obj.magic 0));
  }

let create backend task =
  let arena = Profile.Arena.create backend task in
  { root = new_node arena ~leaf:true; arena; size = 0 }

let is_leaf n = Array.length n.children = 0

(* Binary search for [key] in node [n]; returns insertion index. *)
let find_pos n key =
  let lo = ref 0 and hi = ref n.nkeys in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if n.keys.(mid) < key then lo := mid + 1 else hi := mid
  done;
  !lo

let split_child arena parent idx =
  let child = parent.children.(idx) in
  let right = new_node arena ~leaf:(is_leaf child) in
  let mid = order / 2 in
  let move = child.nkeys - mid - 1 in
  Array.blit child.keys (mid + 1) right.keys 0 move;
  Array.blit child.values (mid + 1) right.values 0 move;
  if not (is_leaf child) then Array.blit child.children (mid + 1) right.children 0 (move + 1);
  right.nkeys <- move;
  let up_key = child.keys.(mid) and up_val = child.values.(mid) in
  child.nkeys <- mid;
  (* shift parent entries right *)
  Array.blit parent.keys idx parent.keys (idx + 1) (parent.nkeys - idx);
  Array.blit parent.values idx parent.values (idx + 1) (parent.nkeys - idx);
  Array.blit parent.children (idx + 1) parent.children (idx + 2) (parent.nkeys - idx);
  parent.keys.(idx) <- up_key;
  parent.values.(idx) <- up_val;
  parent.children.(idx + 1) <- right;
  parent.nkeys <- parent.nkeys + 1

let rec insert_nonfull arena n key value =
  let pos = find_pos n key in
  if pos < n.nkeys && n.keys.(pos) = key then n.values.(pos) <- value
  else if is_leaf n then begin
    Array.blit n.keys pos n.keys (pos + 1) (n.nkeys - pos);
    Array.blit n.values pos n.values (pos + 1) (n.nkeys - pos);
    n.keys.(pos) <- key;
    n.values.(pos) <- value;
    n.nkeys <- n.nkeys + 1
  end
  else begin
    let pos =
      if n.children.(pos).nkeys = order then begin
        split_child arena n pos;
        if key > n.keys.(pos) then pos + 1 else pos
      end
      else pos
    in
    insert_nonfull arena n.children.(pos) key value
  end

(* Value payload stored out-of-line per entry (the KV-store part). *)
let entry_bytes = 256

let insert t key value =
  Profile.Arena.alloc t.arena entry_bytes;
  if t.root.nkeys = order then begin
    let new_root = new_node t.arena ~leaf:false in
    new_root.children.(0) <- t.root;
    t.root <- new_root;
    split_child t.arena new_root 0
  end;
  insert_nonfull t.arena t.root key value;
  t.size <- t.size + 1

let rec lookup_node n key =
  let pos = find_pos n key in
  if pos < n.nkeys && n.keys.(pos) = key then Some n.values.(pos)
  else if is_leaf n then None
  else lookup_node n.children.(pos) key

let lookup t key = lookup_node t.root key
let size t = t.size

(* ------------------------------------------------------------------ *)
(* Benchmark drivers                                                   *)
(* ------------------------------------------------------------------ *)

(* Per-operation application compute (hashing, comparisons, pointer
   chasing beyond what the model charges structurally). *)
let insert_compute = 950.0
let lookup_compute = 700.0

(* The Figure 12/4 configuration: insert [inserts] entries then perform
   [lookups] searches; returns total latency. *)
let run (b : Virt.Backend.t) ~inserts ~lookups =
  let task = Virt.Backend.spawn b in
  let rng = Profile.Rng.create () in
  let tree = create b task in
  Profile.timed b (fun () ->
      for i = 1 to inserts do
        insert tree ((i * 2654435761) land 0xFFFFFF) i;
        Profile.compute b insert_compute
      done;
      for _ = 1 to lookups do
        ignore (lookup tree (Profile.Rng.int rng 0xFFFFFF));
        Profile.compute b lookup_compute
      done)

(* Figure 13a: fixed op count, varying lookup:insert ratio. *)
let run_ratio (b : Virt.Backend.t) ~total_ops ~lookup_per_insert =
  let inserts = total_ops / (1 + lookup_per_insert) in
  let lookups = total_ops - inserts in
  run b ~inserts ~lookups
