(** The lmbench microbenchmark suite of Figure 11: ten OS-operation
    latencies, each measured end-to-end on a backend. *)

type op =
  | Read
  | Write
  | Stat
  | Prot_fault
  | Page_fault
  | Fork_exit
  | Fork_execve
  | Ctx_switch_2p_0k
  | Pipe
  | Af_unix

val pp_op : Format.formatter -> op -> unit
val show_op : op -> string
val equal_op : op -> op -> bool
val all_ops : op list
val op_name : op -> string
val fork_resident_pages : int

val measure : Virt.Backend.t -> op -> iters:int -> float
(** Mean latency in simulated ns. *)

val run_suite : ?iters:int -> Virt.Backend.t -> (op * float) list
