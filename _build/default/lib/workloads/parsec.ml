(* The PARSEC / vmitosis page-fault-intensive applications of
   Figures 4 and 12: canneal, dedup, fluidanimate, freqmine.

   Each is modelled by its working profile:
     - pages: distinct page touches (demand faults) over the run;
     - compute_per_page: app computation between faults;
     - churn: fraction of memory that is freed and re-allocated
       (malloc/free cycling).  Churn matters because a recycled guest
       page keeps its second-stage mapping under HVM (no EPT violation)
       while every backend still takes the guest-level fault — it is
       what separates apps where nested HVM collapses (fresh
       allocations) from apps where it merely limps;
     - syscalls: file-I/O per 100 pages (dedup's pipeline writes its
       output; the others barely touch the filesystem). *)

type profile = {
  name : string;
  pages : int;
  compute_per_page : float;
  churn : float;  (** 0.0 = all allocations fresh, 0.9 = mostly recycled *)
  syscalls_per_100_pages : int;
}

let canneal =
  { name = "canneal"; pages = 12_000; compute_per_page = 3_800.0; churn = 0.85; syscalls_per_100_pages = 4 }

let dedup =
  { name = "dedup"; pages = 10_000; compute_per_page = 2_600.0; churn = 0.72; syscalls_per_100_pages = 90 }

let fluidanimate =
  { name = "fluidanimate"; pages = 8_000; compute_per_page = 14_000.0; churn = 0.3; syscalls_per_100_pages = 2 }

let freqmine =
  { name = "freqmine"; pages = 6_000; compute_per_page = 26_000.0; churn = 0.6; syscalls_per_100_pages = 2 }

let all = [ canneal; dedup; fluidanimate; freqmine ]

let chunk_pages = 64

let run (b : Virt.Backend.t) (p : profile) =
  let task = Virt.Backend.spawn b in
  let rng = Profile.Rng.create ~seed:3L () in
  let out_fd =
    match
      Virt.Backend.syscall_exn b task
        (Kernel_model.Syscall.Open { path = "/" ^ p.name ^ ".out"; create = true })
    with
    | Kernel_model.Syscall.Rint fd -> fd
    | _ -> failwith "parsec: open failed"
  in
  let payload = Bytes.create 512 in
  Profile.timed b (fun () ->
      let touched = ref 0 in
      let sys_budget = ref 0 in
      while !touched < p.pages do
        let n = min chunk_pages (p.pages - !touched) in
        let addr =
          match
            Virt.Backend.syscall_exn b task
              (Kernel_model.Syscall.Mmap { pages = n; prot = Kernel_model.Vma.prot_rw })
          with
          | Kernel_model.Syscall.Rint v -> v
          | _ -> failwith "parsec: mmap failed"
        in
        ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:addr ~pages:n ~write:true);
        Profile.compute b (float_of_int n *. p.compute_per_page);
        sys_budget := !sys_budget + (n * p.syscalls_per_100_pages);
        while !sys_budget >= 100 do
          sys_budget := !sys_budget - 100;
          ignore
            (Virt.Backend.syscall_exn b task
               (Kernel_model.Syscall.Write { fd = out_fd; data = payload }))
        done;
        (* malloc/free churn: release this chunk so the allocator hands
           its frames back out (recycled gPAs keep their EPT mapping
           under HVM; everyone still takes the guest fault next time). *)
        if Profile.Rng.float rng < p.churn then
          ignore
            (Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Munmap { addr; pages = n }));
        touched := !touched + n
      done)
