(* A miniature SQLite-like relational engine on tmpfs, driven by the
   seven access patterns of leveldb's db_bench_sqlite3 (Figures 14/15).

   The engine keeps a primary B-tree-ish index in user space (hash map
   standing in for the page cache + index) but performs *real file
   I/O* through the kernel for everything SQLite would hit the
   filesystem for: database page writes, rollback-journal create/
   write/sync/delete per transaction, and reads on cache misses.  The
   resulting syscall-per-op mix is what makes PVM lose 19-24% on the
   write patterns and nothing on reads. *)

type db = {
  backend : Virt.Backend.t;
  task : Kernel_model.Task.t;
  db_fd : int;
  name : string;
  index : (int, int) Hashtbl.t;  (** key -> file offset *)
  mutable next_off : int;
  mutable in_txn : bool;
  mutable txn_ops : int;
  mutable syscalls_before : int;
  row_bytes : int;
}

let page_bytes = 1024

let fd_of = function
  | Kernel_model.Syscall.Rint fd -> fd
  | _ -> failwith "sqlite: expected fd"

let open_db (b : Virt.Backend.t) ~name =
  let task = Virt.Backend.spawn b in
  let db_fd =
    fd_of (Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Open { path = "/" ^ name; create = true }))
  in
  {
    backend = b;
    task;
    db_fd;
    name;
    index = Hashtbl.create 4096;
    next_off = 0;
    in_txn = false;
    txn_ops = 0;
    syscalls_before = 0;
    row_bytes = 116 (* 16-byte key + 100-byte value, as db_bench *);
  }

let sys db sc = Virt.Backend.syscall_exn db.backend db.task sc

(* SQL parsing/planning/codegen per statement. *)
let statement_compute = 1_400.0

let journal_path db = "/" ^ db.name ^ "-journal"

(* Rollback-journal transaction commit: journal header write, page
   image write, two fsyncs, db page write, journal delete. *)
let txn_begin db =
  assert (not db.in_txn);
  db.in_txn <- true;
  db.txn_ops <- 0;
  let jfd = fd_of (sys db (Kernel_model.Syscall.Open { path = journal_path db; create = true })) in
  ignore (sys db (Kernel_model.Syscall.Write { fd = jfd; data = Bytes.create 28 (* header *) }));
  ignore (sys db (Kernel_model.Syscall.Close jfd))

let txn_commit db =
  assert db.in_txn;
  let jfd = fd_of (sys db (Kernel_model.Syscall.Open { path = journal_path db; create = true })) in
  ignore (sys db (Kernel_model.Syscall.Write { fd = jfd; data = Bytes.create page_bytes }));
  ignore (sys db (Kernel_model.Syscall.Fsync jfd));
  ignore (sys db (Kernel_model.Syscall.Close jfd));
  ignore (sys db (Kernel_model.Syscall.Fsync db.db_fd));
  ignore (sys db (Kernel_model.Syscall.Unlink (journal_path db)));
  db.in_txn <- false

let insert db ~key =
  Profile.compute db.backend statement_compute;
  let off = db.next_off in
  db.next_off <- off + db.row_bytes;
  ignore (sys db (Kernel_model.Syscall.Lseek { fd = db.db_fd; pos = off }));
  ignore (sys db (Kernel_model.Syscall.Write { fd = db.db_fd; data = Bytes.create db.row_bytes }));
  Hashtbl.replace db.index key off;
  db.txn_ops <- db.txn_ops + 1

let read db ~key =
  Profile.compute db.backend (statement_compute *. 0.55);
  match Hashtbl.find_opt db.index key with
  | None -> false
  | Some off ->
      (* Page-cache hit most of the time; read through on 1/64 ops. *)
      if key land 63 = 0 then begin
        ignore (sys db (Kernel_model.Syscall.Lseek { fd = db.db_fd; pos = off }));
        ignore (sys db (Kernel_model.Syscall.Read { fd = db.db_fd; n = db.row_bytes }))
      end;
      true

type pattern =
  | Fillseq
  | Fillseqbatch
  | Fillrandom
  | Fillrandbatch
  | Overwritebatch
  | Readseq
  | Readrandom
[@@deriving show { with_path = false }, eq]

let all_patterns =
  [ Fillseq; Fillseqbatch; Fillrandom; Fillrandbatch; Overwritebatch; Readseq; Readrandom ]

let pattern_name = function
  | Fillseq -> "fillseq"
  | Fillseqbatch -> "fillseqbatch"
  | Fillrandom -> "fillrandom"
  | Fillrandbatch -> "fillrandbatch"
  | Overwritebatch -> "overwritebatch"
  | Readseq -> "readseq"
  | Readrandom -> "readrandom"

let batch_of = function
  | Fillseq | Fillrandom -> 1
  | Fillseqbatch | Fillrandbatch | Overwritebatch -> 1000
  | Readseq | Readrandom -> 1

type result = {
  ops_per_sec : float;
  syscalls_per_op : float;
  syscall_freq_per_sec : float;  (** the second axis of Figure 14 *)
}

(* Run one pattern for [ops] operations; returns throughput and syscall
   frequency.  Reads run against a database pre-filled (batched, not
   measured). *)
let run_pattern (b : Virt.Backend.t) (p : pattern) ~ops =
  let db = open_db b ~name:(pattern_name p) in
  let rng = Profile.Rng.create ~seed:77L () in
  let k = b.Virt.Backend.kernel in
  let prefill () =
    let batch = 1000 in
    let done_ = ref 0 in
    while !done_ < ops do
      txn_begin db;
      let n = min batch (ops - !done_) in
      for i = 1 to n do
        insert db ~key:(!done_ + i)
      done;
      txn_commit db;
      done_ := !done_ + n
    done
  in
  (match p with Readseq | Readrandom | Overwritebatch -> prefill () | Fillseq | Fillseqbatch | Fillrandom | Fillrandbatch -> ());
  let sys0 = Kernel_model.Kernel.syscall_count k in
  let batch = batch_of p in
  let total_ns =
    Profile.timed b (fun () ->
        let done_ = ref 0 in
        while !done_ < ops do
          let n = min batch (ops - !done_) in
          (match p with
          | Fillseq | Fillseqbatch ->
              txn_begin db;
              for i = 1 to n do
                insert db ~key:(1_000_000 + !done_ + i)
              done;
              txn_commit db
          | Fillrandom | Fillrandbatch ->
              txn_begin db;
              for _ = 1 to n do
                insert db ~key:(Profile.Rng.int rng 1_000_000)
              done;
              txn_commit db
          | Overwritebatch ->
              txn_begin db;
              for _ = 1 to n do
                insert db ~key:(1 + Profile.Rng.int rng ops)
              done;
              txn_commit db
          | Readseq ->
              for i = 1 to n do
                ignore (read db ~key:(((!done_ + i - 1) mod ops) + 1))
              done
          | Readrandom ->
              for _ = 1 to n do
                ignore (read db ~key:(1 + Profile.Rng.int rng ops))
              done);
          done_ := !done_ + n
        done)
  in
  let syscalls = Kernel_model.Kernel.syscall_count k - sys0 in
  let per_op = total_ns /. float_of_int ops in
  {
    ops_per_sec = 1e9 /. per_op;
    syscalls_per_op = float_of_int syscalls /. float_of_int ops;
    syscall_freq_per_sec = float_of_int syscalls /. (total_ns /. 1e9);
  }
