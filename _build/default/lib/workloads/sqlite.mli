(** A miniature SQLite-like relational engine on tmpfs, driven by the
    seven access patterns of leveldb's db_bench_sqlite3 (Figures
    14/15).

    Real file I/O for everything SQLite hits the filesystem for:
    database page writes, rollback-journal create/write/sync/delete per
    transaction, and reads on cache misses — the syscall-per-op mix
    behind PVM's 19-24% write-pattern losses. *)

type db

val page_bytes : int
val open_db : Virt.Backend.t -> name:string -> db
val statement_compute : float

val txn_begin : db -> unit
val txn_commit : db -> unit
(** Rollback-journal commit: journal header + page image writes, two
    fsyncs, db write-back, journal unlink. *)

val insert : db -> key:int -> unit
val read : db -> key:int -> bool

type pattern =
  | Fillseq
  | Fillseqbatch
  | Fillrandom
  | Fillrandbatch
  | Overwritebatch
  | Readseq
  | Readrandom

val pp_pattern : Format.formatter -> pattern -> unit
val show_pattern : pattern -> string
val equal_pattern : pattern -> pattern -> bool
val all_patterns : pattern list
val pattern_name : pattern -> string

val batch_of : pattern -> int
(** Operations per transaction (1000 for the *batch patterns). *)

type result = {
  ops_per_sec : float;
  syscalls_per_op : float;
  syscall_freq_per_sec : float;  (** the second axis of Figure 14 *)
}

val run_pattern : Virt.Backend.t -> pattern -> ops:int -> result
