lib/workloads/netperf.pp.ml: Bytes Kernel_model Profile Virt
