lib/workloads/lmbench.pp.mli: Format Virt
