lib/workloads/xsbench.pp.mli: Virt
