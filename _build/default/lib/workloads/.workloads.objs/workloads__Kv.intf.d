lib/workloads/kv.pp.mli: Bytes Format Hashtbl Kernel_model Virt
