lib/workloads/btree.pp.mli: Kernel_model Virt
