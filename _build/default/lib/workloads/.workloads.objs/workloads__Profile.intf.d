lib/workloads/profile.pp.mli: Format Kernel_model Virt
