lib/workloads/btree.pp.ml: Array Obj Profile Virt
