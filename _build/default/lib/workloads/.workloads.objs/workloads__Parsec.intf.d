lib/workloads/parsec.pp.mli: Virt
