lib/workloads/netperf.pp.mli: Virt
