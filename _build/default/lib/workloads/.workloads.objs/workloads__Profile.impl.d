lib/workloads/profile.pp.ml: Format Hw Int64 Kernel_model Virt
