lib/workloads/gups.pp.ml: Hw Profile Virt
