lib/workloads/lmbench.pp.ml: Bytes Hashtbl Hw Kernel_model List Ppx_deriving_runtime Virt
