lib/workloads/kv.pp.ml: Bytes Hashtbl Kernel_model List Ppx_deriving_runtime Profile Virt
