lib/workloads/sqlite.pp.mli: Format Virt
