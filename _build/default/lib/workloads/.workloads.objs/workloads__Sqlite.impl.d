lib/workloads/sqlite.pp.ml: Bytes Hashtbl Kernel_model Ppx_deriving_runtime Profile Virt
