lib/workloads/gups.pp.mli: Virt
