lib/workloads/webserver.pp.ml: Bytes Kernel_model List Ppx_deriving_runtime Profile Virt
