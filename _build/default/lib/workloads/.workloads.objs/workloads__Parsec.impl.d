lib/workloads/parsec.pp.ml: Bytes Kernel_model Profile Virt
