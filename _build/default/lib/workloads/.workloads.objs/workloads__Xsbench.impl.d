lib/workloads/xsbench.pp.ml: Profile Virt
