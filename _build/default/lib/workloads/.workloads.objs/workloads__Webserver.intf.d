lib/workloads/webserver.pp.mli: Format Virt
