(* XSBench: Monte-Carlo neutron-transport macroscopic cross-section
   lookup kernel (Figures 4/12/13b).

   Two phases, as in the paper's analysis:
     - initialization: generate the nuclide grid data — large
       sequential allocation, page-fault dominated;
     - calculation: per particle, a series of random grid lookups —
       pure compute, no faults.
   Overhead relative to RunC therefore *decreases* with the particle
   count, which is exactly what Figure 13b sweeps. *)

let gridpoint_bytes = 128
let lookups_per_particle = 34 (* XSBench default: avg segments per particle *)
let lookup_compute = 85.0
let init_compute_per_gridpoint = 30.0

let run (b : Virt.Backend.t) ~gridpoints ~particles =
  let task = Virt.Backend.spawn b in
  let rng = Profile.Rng.create ~seed:42L () in
  Profile.timed b (fun () ->
      (* Initialization: data generation. *)
      let arena = Profile.Arena.create b task in
      for _ = 1 to gridpoints do
        Profile.Arena.alloc arena gridpoint_bytes;
        Profile.compute b init_compute_per_gridpoint
      done;
      (* Calculation: simulate each particle. *)
      for _ = 1 to particles do
        for _ = 1 to lookups_per_particle do
          ignore (Profile.Rng.int rng gridpoints);
          Profile.compute b lookup_compute
        done
      done)
