(* The container abstraction every backend produces and every workload
   consumes.

   A container is a guest kernel (a [Kernel_model.Kernel.t]) plus the
   backend-specific cost structure captured in its platform, plus a few
   hooks for the microbenchmarks (empty hypercall, TLB-walk geometry). *)

type t = {
  label : string;  (** e.g. "RunC-BM", "HVM-NST", "PVM-BM", "CKI-NST" *)
  backend_name : string;  (** "runc" | "hvm" | "pvm" | "cki" *)
  env : Env.t;
  kernel : Kernel_model.Kernel.t;
  platform : Kernel_model.Platform.t;
  clock : Hw.Clock.t;
  walk_refs : int;  (** memory refs per TLB-miss page walk (4 KiB pages) *)
  walk_refs_huge : int;  (** ... with 2 MiB mappings *)
  supports_hypercall : bool;
  empty_hypercall : unit -> unit;  (** charge one minimal guest->host call *)
  guest_user_kernel_isolated : bool;  (** Table 1 security row *)
}

(* Simulated latency of running [f] inside the container. *)
let time t f =
  let _, ns = Hw.Clock.timed t.clock f in
  ns

(* Run a microbenchmark [n] times and return the mean latency (ns). *)
let mean_latency t ~n f =
  let total = time t (fun () -> for _ = 1 to n do f () done) in
  total /. float_of_int n

(* Spawn a fresh process inside the container. *)
let spawn t = Kernel_model.Kernel.spawn t.kernel

let syscall t task sc = Kernel_model.Kernel.syscall t.kernel task sc
let syscall_exn t task sc = Kernel_model.Kernel.syscall_exn t.kernel task sc
