(* Deployment environment: bare-metal cloud, or nested cloud where the
   container platform itself runs inside an IaaS VM (the host kernel is
   the L1 kernel and every VM exit may involve the L0 hypervisor). *)

type t = Bare_metal | Nested [@@deriving show { with_path = false }, eq]

let suffix = function Bare_metal -> "BM" | Nested -> "NST"
let is_nested = function Nested -> true | Bare_metal -> false
