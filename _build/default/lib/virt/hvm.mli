(** HVM: hardware-assisted virtualization (the Kata Containers
    configuration).

    Native guest page tables and syscalls; the costs appear in EPT
    violations on fresh gPAs (VM exits; in a nested cloud the L0 kernel
    maintains a shadow EPT and every violation bounces L2-L0-L1-L0-L2),
    two-dimensional page walks on TLB misses, and VM exits for every
    hypercall, VirtIO doorbell, interrupt and EOI. *)

val create : ?env:Env.t -> ?ept_huge:bool -> Hw.Machine.t -> Backend.t
(** [ept_huge] backs container memory with 2 MiB EPT mappings — the
    "2M" configurations of Figure 12 / Table 4. *)
