lib/virt/hvm.pp.mli: Backend Env Hw
