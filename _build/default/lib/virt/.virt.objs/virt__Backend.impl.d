lib/virt/backend.pp.ml: Env Hw Kernel_model
