lib/virt/env.pp.mli: Format
