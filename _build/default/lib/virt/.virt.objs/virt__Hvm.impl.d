lib/virt/hvm.pp.ml: Backend Env Hashtbl Hw Kernel_model
