lib/virt/backend.pp.mli: Env Hw Kernel_model
