lib/virt/runc.pp.mli: Backend Env Hw
