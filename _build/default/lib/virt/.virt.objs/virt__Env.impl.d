lib/virt/env.pp.ml: Ppx_deriving_runtime
