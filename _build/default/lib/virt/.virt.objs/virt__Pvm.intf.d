lib/virt/pvm.pp.mli: Backend Env Hw
