lib/virt/pvm.pp.ml: Backend Env Hashtbl Hw Kernel_model
