lib/virt/runc.pp.ml: Backend Env Hw Kernel_model
