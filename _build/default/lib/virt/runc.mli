(** RunC: the OS-level container baseline — shared host kernel,
    namespace isolation only, native syscalls/faults/devices. Sets the
    performance bar every secure container is normalized against. *)

val create : ?env:Env.t -> Hw.Machine.t -> Backend.t
