(** Deployment environment: bare-metal cloud, or nested cloud where the
    container platform itself runs inside an IaaS VM (the host kernel
    is the L1 kernel and HVM exits involve the L0 hypervisor). *)

type t = Bare_metal | Nested

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

val suffix : t -> string
(** "BM" / "NST", used in backend labels. *)

val is_nested : t -> bool
