(** PVM (SOSP'23): software-based virtualization — the state-of-the-art
    secure container design without virtualization hardware.

    The guest kernel is deprivileged to user mode in its own address
    space. Reproduced consequences: syscall redirection (+2 mode
    switches +2 CR3 switches: 93 -> 336 ns), shadow paging (guest PTE
    writes trap; >= 6 context switches + emulation per user fault),
    hypercall-per-CR3-load on process switches, and MMIO-emulated
    VirtIO doorbells. *)

val create : ?env:Env.t -> Hw.Machine.t -> Backend.t
