(** The container abstraction every backend produces and every workload
    consumes: a guest kernel plus the backend-specific cost structure
    captured in its platform, plus hooks for the microbenchmarks. *)

type t = {
  label : string;  (** e.g. "RunC-BM", "HVM-NST", "PVM-BM", "CKI-NST" *)
  backend_name : string;  (** "runc" | "hvm" | "pvm" | "cki" *)
  env : Env.t;
  kernel : Kernel_model.Kernel.t;
  platform : Kernel_model.Platform.t;
  clock : Hw.Clock.t;
  walk_refs : int;  (** memory refs per TLB-miss walk (4 KiB pages) *)
  walk_refs_huge : int;  (** ... with 2 MiB mappings *)
  supports_hypercall : bool;
  empty_hypercall : unit -> unit;  (** charge one minimal guest->host call *)
  guest_user_kernel_isolated : bool;  (** Table 1 security row *)
}

val time : t -> (unit -> 'a) -> float
(** Simulated latency of running a thunk inside the container. *)

val mean_latency : t -> n:int -> (unit -> unit) -> float
(** Mean simulated latency over [n] runs. *)

val spawn : t -> Kernel_model.Task.t
val syscall : t -> Kernel_model.Task.t -> Kernel_model.Syscall.t -> Kernel_model.Syscall.result
val syscall_exn : t -> Kernel_model.Task.t -> Kernel_model.Syscall.t -> Kernel_model.Syscall.result
