(* RunC: the OS-level container baseline.

   Shares the host kernel; isolation is namespaces/cgroups only (which
   is why Section 2 argues it is insecure), but it sets the performance
   bar: native syscalls, native page faults, no virtualized I/O.

   In a nested cloud RunC itself runs inside the IaaS VM; its syscalls
   and page faults stay native to the L1 kernel (Figure 4/5 show
   RunC-BM only, which is what we expose). *)

let create ?(env = Env.Bare_metal) (machine : Hw.Machine.t) : Backend.t =
  let clock = Hw.Machine.clock machine in
  let base = Kernel_model.Platform.bare ~name:"runc" machine in
  let platform =
    {
      base with
      Kernel_model.Platform.syscall_round_trip =
        (fun () ->
          Hw.Clock.charge clock "syscall" Hw.Cost.syscall_entry_exit;
          (* pid/mount namespace indirection *)
          Hw.Clock.charge clock "runc_ns" Hw.Cost.runc_pid_ns_translation);
      fault_service_ns = Hw.Cost.pf_handler_native;
    }
  in
  let kernel = Kernel_model.Kernel.create platform in
  {
    Backend.label = "RunC-" ^ Env.suffix env;
    backend_name = "runc";
    env;
    kernel;
    platform;
    clock;
    walk_refs = Hw.Cost.walk_refs_native;
    walk_refs_huge = Hw.Cost.walk_refs_native_huge;
    supports_hypercall = false;
    empty_hypercall = (fun () -> ());
    guest_user_kernel_isolated = true;
  }
