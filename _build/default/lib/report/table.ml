(* Aligned ASCII tables for the benchmark output. *)

type t = {
  title : string;
  header : string list;
  mutable rows : string list list;  (** newest last *)
}

let create ~title ~header = { title; header; rows = [] }

let add_row t row = t.rows <- t.rows @ [ row ]

let add_floats t ~label ?(fmt = Printf.sprintf "%.1f") values =
  add_row t (label :: List.map fmt values)

let widths t =
  let all = t.header :: t.rows in
  let cols = List.length t.header in
  List.init cols (fun i ->
      List.fold_left (fun w row -> max w (String.length (List.nth_opt row i |> Option.value ~default:""))) 0 all)

let render t =
  let ws = widths t in
  let buf = Buffer.create 256 in
  let line ch =
    Buffer.add_string buf "+";
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_string buf "+")
      ws;
    Buffer.add_char buf '\n'
  in
  let row cells =
    Buffer.add_string buf "|";
    List.iteri
      (fun i w ->
        let c = List.nth_opt cells i |> Option.value ~default:"" in
        Buffer.add_string buf (Printf.sprintf " %-*s |" w c))
      ws;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("\n== " ^ t.title ^ " ==\n");
  line '-';
  row t.header;
  line '=';
  List.iter row t.rows;
  line '-';
  Buffer.contents buf

let print t = print_string (render t)
