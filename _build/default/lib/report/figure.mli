(** ASCII "figures": grouped horizontal bars (the normalized bar charts
    of Figures 4/5/11/12/14) and xy-series (Figures 13/16). *)

val grouped_bars :
  title:string -> value_label:string -> groups:(string * (string * float) list) list -> string
(** One group per application, one labelled bar per backend. *)

val series :
  title:string ->
  x_label:string ->
  y_label:string ->
  xs:float list ->
  series:(string * float list) list ->
  string

val print : string -> unit
