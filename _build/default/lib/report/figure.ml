(* ASCII "figures": grouped horizontal bars (for the normalized bar
   charts of Figures 4/5/11/12/14/15) and xy-series (Figures 13/16). *)

let bar_width = 40

let render_bar ~scale v =
  let n = int_of_float (Float.round (v /. scale *. float_of_int bar_width)) in
  let n = max 0 (min (2 * bar_width) n) in
  String.make n '#'

(* Grouped bars: for each group (e.g. an application), one bar per
   series (e.g. a backend), annotated with the value. *)
let grouped_bars ~title ~value_label ~(groups : (string * (string * float) list) list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "\n== %s ==\n(%s)\n" title value_label);
  let vmax =
    List.fold_left
      (fun m (_, series) -> List.fold_left (fun m (_, v) -> max m v) m series)
      1e-9 groups
  in
  let scale = if vmax <= 0.0 then 1.0 else vmax in
  let label_w =
    List.fold_left
      (fun w (_, series) -> List.fold_left (fun w (s, _) -> max w (String.length s)) w series)
      0 groups
  in
  List.iter
    (fun (group, series) ->
      Buffer.add_string buf (Printf.sprintf "%s\n" group);
      List.iter
        (fun (label, v) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-*s %8.3f |%s\n" label_w label v (render_bar ~scale v)))
        series)
    groups;
  Buffer.contents buf

(* XY series: one line per series, points rendered as columns. *)
let series ~title ~x_label ~y_label ~(xs : float list) ~(series : (string * float list) list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "\n== %s ==\n(x = %s, y = %s)\n" title x_label y_label);
  let label_w = List.fold_left (fun w (s, _) -> max w (String.length s)) 1 series in
  Buffer.add_string buf (Printf.sprintf "%-*s" (label_w + 2) "");
  List.iter (fun x -> Buffer.add_string buf (Printf.sprintf "%10s" (Stats.si x))) xs;
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, ys) ->
      Buffer.add_string buf (Printf.sprintf "%-*s" (label_w + 2) name);
      List.iter (fun y -> Buffer.add_string buf (Printf.sprintf "%10s" (Stats.si y))) ys;
      Buffer.add_char buf '\n')
    series;
  Buffer.contents buf

let print s = print_string s
