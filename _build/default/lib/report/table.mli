(** Aligned ASCII tables for the benchmark output. *)

type t

val create : title:string -> header:string list -> t
val add_row : t -> string list -> unit
val add_floats : t -> label:string -> ?fmt:(float -> string) -> float list -> unit
val render : t -> string
val print : t -> unit
