lib/report/figure.ml: Buffer Float List Printf Stats String
