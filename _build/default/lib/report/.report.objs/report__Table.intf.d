lib/report/table.mli:
