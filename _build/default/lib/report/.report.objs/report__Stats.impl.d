lib/report/stats.ml: Float Format List Printf
