lib/report/table.ml: Buffer List Option Printf String
