lib/report/figure.mli:
