(* Host I/O plane benchmark (Figure 16 shape).

   Three experiments over the traffic-serving harness:

   - backend sweep: the same open-loop kv load against runc / HVM /
     PVM / CKI fleets with naive notification (window 0), reporting
     per-request doorbell / interrupt / exit counts — the Figure 16
     exit-count ordering with CKI below HVM;
   - coalescing sweep: CKI at EVENT_IDX windows 0/1/4/8 — coalescing
     strictly reduces doorbells and interrupts, bounded by the batch
     window;
   - fleet latency: an 8-container CKI run reporting throughput and
     p50/p95/p99 under open-loop arrivals.

   Every scenario runs under Analysis.checked — the counts only count
   if the whole-machine sanitizer and the trace lint come back clean.

   --json writes BENCH_ioplane.json. *)

let section title = Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let serve_checked cfg =
  Analysis.checked
    ~label:(Printf.sprintf "ioplane/%s-w%d" cfg.Ioplane.Serve.backend cfg.Ioplane.Serve.window)
    (fun () -> Ioplane.Serve.run cfg)

let row_json (r : Ioplane.Serve.result) =
  Report.Json.Obj
    [
      ("backend", Report.Json.String r.r_backend);
      ("label", Report.Json.String r.r_label);
      ("workload", Report.Json.String r.r_workload);
      ("containers", Report.Json.Int r.r_containers);
      ("requests", Report.Json.Int r.r_requests);
      ("window", Report.Json.Int r.r_window);
      ("throughput_rps", Report.Json.Float r.r_throughput_rps);
      ("mean_us", Report.Json.Float r.r_mean_us);
      ("p50_us", Report.Json.Float r.r_p50_us);
      ("p95_us", Report.Json.Float r.r_p95_us);
      ("p99_us", Report.Json.Float r.r_p99_us);
      ("doorbells", Report.Json.Int r.r_doorbells);
      ("suppressed_kicks", Report.Json.Int r.r_suppressed_kicks);
      ("interrupts", Report.Json.Int r.r_interrupts);
      ("suppressed_interrupts", Report.Json.Int r.r_suppressed_interrupts);
      ("exits", Report.Json.Int r.r_exits);
      ("doorbells_per_req", Report.Json.Float r.r_doorbells_per_req);
      ("interrupts_per_req", Report.Json.Float r.r_interrupts_per_req);
      ("exits_per_req", Report.Json.Float r.r_exits_per_req);
      ("tx_stalls", Report.Json.Int r.r_tx_stalls);
      ("blk_writes", Report.Json.Int r.r_blk_writes);
      ("service_passes", Report.Json.Int r.r_service_passes);
    ]

let print_row (r : Ioplane.Serve.result) = Format.printf "%a@." Ioplane.Serve.pp_result r

let run ?(json = false) () =
  section "I/O plane: per-request notification cost by backend (naive, window 0)";
  let base =
    {
      Ioplane.Serve.default_config with
      Ioplane.Serve.containers = 4;
      requests_per_container = 100;
      window = 0;
      workload = Ioplane.Serve.Kv_memcached;
    }
  in
  let sweep =
    List.map
      (fun backend -> serve_checked { base with Ioplane.Serve.backend })
      [ "runc"; "hvm"; "pvm"; "cki" ]
  in
  List.iter print_row sweep;
  let exits_of name =
    match List.find_opt (fun (r : Ioplane.Serve.result) -> r.r_backend = name) sweep with
    | Some r -> r.r_exits_per_req
    | None -> nan
  in
  section "I/O plane: CKI EVENT_IDX coalescing sweep";
  let coalesce =
    List.map
      (fun window -> serve_checked { base with Ioplane.Serve.backend = "cki"; window })
      [ 0; 1; 4; 8 ]
  in
  List.iter print_row coalesce;
  let cki_naive = List.hd coalesce in
  let cki_coalesced = List.nth coalesce 2 in
  Printf.printf "\nexit ordering: cki(w4) %.2f < cki(w0) %.2f < hvm %.2f  %s\n"
    cki_coalesced.Ioplane.Serve.r_exits_per_req cki_naive.Ioplane.Serve.r_exits_per_req
    (exits_of "hvm")
    (if
       cki_coalesced.Ioplane.Serve.r_exits_per_req < cki_naive.Ioplane.Serve.r_exits_per_req
       && cki_naive.Ioplane.Serve.r_exits_per_req < exits_of "hvm"
     then "OK"
     else "VIOLATED");
  section "I/O plane: 8-container CKI fleet, open-loop latency";
  let fleet =
    serve_checked
      {
        base with
        Ioplane.Serve.backend = "cki";
        containers = 8;
        requests_per_container = 100;
        window = 4;
        fsync_every = 8;
      }
  in
  print_row fleet;
  let web =
    serve_checked
      {
        base with
        Ioplane.Serve.backend = "cki";
        containers = 8;
        requests_per_container = 50;
        window = 4;
        workload = Ioplane.Serve.Web_static;
      }
  in
  print_row web;
  if json then begin
    Report.Json.write_file "BENCH_ioplane.json"
      (Report.Json.Obj
         [
           ("bench", Report.Json.String "ioplane");
           ("backend_sweep", Report.Json.List (List.map row_json sweep));
           ("coalescing_sweep", Report.Json.List (List.map row_json coalesce));
           ("fleet", Report.Json.List (List.map row_json [ fleet; web ]));
         ]);
    Printf.printf "wrote BENCH_ioplane.json\n"
  end
