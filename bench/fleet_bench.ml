(* Fleet benchmark: cluster-scale serving over warm clones.

   Three experiments:

   - serving: an 8-tenant fleet under open-loop load (>= 1M requests
     total) — six steady tenants within their CPU budget, one surge
     tenant whose offered load exceeds its replicas' aggregate quota
     (the windowed p99 breaches and the controller scales out with
     verified warm clones), and one over-subscribed tenant behind
     admission control (the only tenant allowed to shed);
   - scale-out latency: time-to-ready replica via pool hit vs pool
     miss (after template eviction) vs cold boot, plus the low-water
     background refill that turns the next miss back into a hit;
   - churn: create/destroy cycles with mixed segment sizes and a
     sliding window of long-lived containers.  First-fit delegation
     fails while a third of memory is still free (no contiguous run
     left); scatter delegation completes >= 500 cycles on the same
     pattern, and rescues the very host first-fit wedged.

   ISSUE acceptance: pool-hit spawn >= 100x faster than cold boot;
   shed rate > 0 only for the over-subscribed tenant; scale-out on an
   induced p99 breach; >= 500-cycle churn where first-fit demonstrably
   fails.

   --json writes BENCH_fleet.json. *)

let section title = Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')
let cfg_of frames = { Cki.Config.default with Cki.Config.segment_frames = frames; vcpus = 1 }

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(* ------------------------------------------------------------------ *)
(* Serving                                                             *)
(* ------------------------------------------------------------------ *)

let tenant_json (tr : Fleet.Controller.tenant_result) =
  let open Fleet.Controller in
  let hit_spawns, miss_spawns = List.partition (fun s -> s.s_pool_hit) tr.tr_spawns in
  Report.Json.Obj
    [
      ("name", Report.Json.String tr.tr_name);
      ("offered", Report.Json.Int tr.tr_offered);
      ("admitted", Report.Json.Int tr.tr_admitted);
      ("shed", Report.Json.Int tr.tr_shed);
      ("shed_rate", Report.Json.Int tr.tr_shed_rate);
      ("shed_inflight", Report.Json.Int tr.tr_shed_inflight);
      ("completed", Report.Json.Int tr.tr_completed);
      ("mean_us", Report.Json.Float tr.tr_mean_us);
      ("p50_us", Report.Json.Float tr.tr_p50_us);
      ("p95_us", Report.Json.Float tr.tr_p95_us);
      ("p99_us", Report.Json.Float tr.tr_p99_us);
      ("windows", Report.Json.Int tr.tr_windows);
      ("breaches", Report.Json.Int tr.tr_breaches);
      ("scale_outs", Report.Json.Int tr.tr_scale_outs);
      ("scale_ins", Report.Json.Int tr.tr_scale_ins);
      ("verify_failures", Report.Json.Int tr.tr_verify_failures);
      ("peak_replicas", Report.Json.Int tr.tr_peak_replicas);
      ("final_replicas", Report.Json.Int tr.tr_final_replicas);
      ("throttle_events", Report.Json.Int tr.tr_throttle_events);
      ("pool_hits", Report.Json.Int tr.tr_pool.Snapshot.Pool.hits);
      ("pool_misses", Report.Json.Int tr.tr_pool.Snapshot.Pool.misses);
      ("pool_refills", Report.Json.Int tr.tr_pool.Snapshot.Pool.refills);
      ("spawn_pool_hit_ns", Report.Json.Float (mean (List.map (fun s -> s.s_ns) hit_spawns)));
      ("spawn_pool_miss_ns", Report.Json.Float (mean (List.map (fun s -> s.s_ns) miss_spawns)));
      ("elapsed_ns", Report.Json.Float tr.tr_elapsed_ns);
    ]

let run_serving () =
  section "Fleet: 8 tenants, >= 1M open-loop requests, SLO-driven autoscaling";
  let open Fleet.Controller in
  let bulk i =
    {
      default_tenant with
      name = Printf.sprintf "bulk%d" i;
      rate_rps = 30_000.0;
      requests = 160_000;
    }
  in
  (* The surge tenant's offered load exceeds one replica's CPU budget
     (10% of a CPU at ~2.5 us/request => ~40k rps capacity), so its
     windowed p99 breaches until scale-out adds budget. *)
  let surge = { default_tenant with name = "surge"; rate_rps = 60_000.0; requests = 30_000 } in
  let greedy =
    {
      default_tenant with
      name = "greedy";
      rate_rps = 50_000.0;
      requests = 40_000;
      admission_rps = 15_000.0;
      max_inflight = 64;
    }
  in
  let autoscaler =
    {
      Fleet.Autoscaler.default_config with
      Fleet.Autoscaler.slo_p99_us = 400.0;
      window = 200;
      max_replicas = 8;
      cooldown_ns = 3e6;
      idle_windows = 4;
    }
  in
  let cfg =
    {
      default_config with
      tenants = List.init 6 bulk @ [ surge; greedy ];
      autoscaler;
    }
  in
  let r = run cfg in
  List.iter (fun tr -> Format.printf "  %a@." pp_tenant_result tr) r.tenants;
  let find name = List.find (fun tr -> tr.tr_name = name) r.tenants in
  let offered = List.fold_left (fun a tr -> a + tr.tr_offered) 0 r.tenants in
  let completed = List.fold_left (fun a tr -> a + tr.tr_completed) 0 r.tenants in
  let shed = List.fold_left (fun a tr -> a + tr.tr_shed) 0 r.tenants in
  let verify_failures = List.fold_left (fun a tr -> a + tr.tr_verify_failures) 0 r.tenants in
  let sg = find "surge" and gr = find "greedy" in
  let shed_only_greedy =
    List.for_all (fun tr -> tr.tr_shed = 0 || tr.tr_name = "greedy") r.tenants && gr.tr_shed > 0
  in
  Printf.printf "\n  offered=%d completed=%d shed=%d makespan=%.1f ms (simulated)\n" offered
    completed shed (r.makespan_ns /. 1e6);
  Printf.printf "  acceptance: >=1M requests %s, scale-out on p99 breach %s, shed only greedy %s,\n"
    (if offered >= 1_000_000 then "OK" else "FAIL")
    (if sg.tr_breaches > 0 && sg.tr_scale_outs > 0 && sg.tr_peak_replicas > 1 then "OK" else "FAIL")
    (if shed_only_greedy then "OK" else "FAIL");
  Printf.printf "              every clone verified %s (%d verify failures)\n"
    (if verify_failures = 0 then "OK" else "FAIL")
    verify_failures;
  r

(* ------------------------------------------------------------------ *)
(* Scale-out latency                                                   *)
(* ------------------------------------------------------------------ *)

type scaleout = {
  so_cold_ns : float;
  so_hit_ns : float;
  so_miss_ns : float;
  so_refilled : int;
  so_post_refill_hit_ns : float;
  so_pool : Snapshot.Pool.stats;
}

let run_scaleout () =
  section "Fleet: scale-out latency — pool hit vs pool miss vs cold boot";
  let machine = Hw.Machine.create ~cpus:2 ~mem_mib:512 () in
  let host = Cki.Host.create machine in
  let clock = Hw.Machine.clock machine in
  let ccfg = cfg_of 1024 in
  let cold_ns =
    mean
      (List.init 4 (fun _ ->
           let c, ns = Hw.Clock.timed clock (fun () -> Cki.Container.create ~cfg:ccfg host) in
           Cki.Container.destroy c;
           ns))
  in
  let pool =
    Snapshot.Pool.create ~low_water:2 ~target:4
      ~make:(fun () ->
        match Snapshot.Template.create (Cki.Container.create ~cfg:ccfg host) with
        | Ok t -> t
        | Error e -> failwith ("fleet bench: template build failed: " ^ Snapshot.Template.show_error e))
      ()
  in
  let clones = ref [] in
  let spawn () =
    let r, ns = Hw.Clock.timed clock (fun () -> Snapshot.Pool.spawn_fast ~verify:true pool) in
    match r with
    | Ok c ->
        clones := c :: !clones;
        ns
    | Error e -> failwith ("fleet bench: spawn failed: " ^ Snapshot.Template.show_error e)
  in
  let hit_ns = mean (List.init 8 (fun _ -> spawn ())) in
  (* Template eviction: the drained pool must rebuild inline (cold
     boot + capture + freeze) — the cliff the low-water refill avoids. *)
  let miss_ns =
    mean
      (List.init 2 (fun _ ->
           ignore (Snapshot.Pool.drain pool);
           spawn ()))
  in
  ignore (Snapshot.Pool.drain pool);
  let refilled = Snapshot.Pool.refill_low_water pool in
  let post_refill_hit_ns = spawn () in
  List.iter Cki.Container.destroy !clones;
  let st = Snapshot.Pool.stats pool in
  let tbl =
    Report.Table.create ~title:"Time to a ready replica (simulated)"
      ~header:[ "path"; "ns"; "vs cold" ]
  in
  Report.Table.add_row tbl [ "cold boot"; Printf.sprintf "%.0f" cold_ns; "1.0x" ];
  Report.Table.add_row tbl
    [ "pool miss (evicted)"; Printf.sprintf "%.0f" miss_ns; Printf.sprintf "%.1fx" (cold_ns /. miss_ns) ];
  Report.Table.add_row tbl
    [ "pool hit (warm clone)"; Printf.sprintf "%.0f" hit_ns; Printf.sprintf "%.0fx" (cold_ns /. hit_ns) ];
  Report.Table.add_row tbl
    [
      "pool hit after refill";
      Printf.sprintf "%.0f" post_refill_hit_ns;
      Printf.sprintf "%.0fx" (cold_ns /. post_refill_hit_ns);
    ];
  Report.Table.print tbl;
  Printf.printf "  pool: %d hits, %d misses, %d refills (%d rebuilt by the low-water hook)\n"
    st.Snapshot.Pool.hits st.Snapshot.Pool.misses st.Snapshot.Pool.refills refilled;
  Printf.printf "  acceptance: pool-hit >= 100x faster than cold boot %s (%.0fx)\n"
    (if cold_ns >= 100.0 *. hit_ns then "OK" else "FAIL")
    (cold_ns /. hit_ns);
  {
    so_cold_ns = cold_ns;
    so_hit_ns = hit_ns;
    so_miss_ns = miss_ns;
    so_refilled = refilled;
    so_post_refill_hit_ns = post_refill_hit_ns;
    so_pool = st;
  }

(* ------------------------------------------------------------------ *)
(* Churn + containers per host                                         *)
(* ------------------------------------------------------------------ *)

let free_frames mem =
  let n = Hw.Phys_mem.total_frames mem in
  let free = ref 0 in
  for pfn = 0 to n - 1 do
    if Hw.Phys_mem.is_free mem pfn then incr free
  done;
  !free

let max_free_run mem =
  let n = Hw.Phys_mem.total_frames mem in
  let best = ref 0 and run = ref 0 in
  for pfn = 0 to n - 1 do
    if Hw.Phys_mem.is_free mem pfn then begin
      incr run;
      if !run > !best then best := !run
    end
    else run := 0
  done;
  !best

type churn_out = {
  ch_policy : string;
  ch_cycles_done : int;
  ch_created : int;
  ch_failed : bool;
  ch_free_fraction : float;
  ch_max_run : int;
  ch_live : Cki.Container.t list;
  ch_host : Cki.Host.t;
}

(* Mixed transient/pinned churn: every cycle boots a transient container
   (sizes rotating 4/6/3/5 MiB) over a sliding window of 48 long-lived
   pinned containers (1/0.75/1.25/0.5 MiB).  The varied sizes defeat
   hole recycling, so under first-fit the largest free run shrinks far
   below the request while total free memory stays high. *)
let churn ~policy ~cycles =
  let machine = Hw.Machine.create ~cpus:2 ~mem_mib:96 () in
  let mem = Hw.Machine.mem machine in
  let host = Cki.Host.create ~policy machine in
  let tsizes = [| 1024; 1536; 768; 1280 |] in
  let psizes = [| 256; 192; 320; 128 |] in
  let slots = [| None; None |] in
  let pinned = Queue.create () in
  let created = ref 0 in
  let done_cycles = ref 0 in
  let failed = ref false in
  (try
     for i = 0 to cycles - 1 do
       let s = i mod 2 in
       let c = Cki.Container.create ~cfg:(cfg_of tsizes.(i mod 4)) host in
       incr created;
       (match slots.(1 - s) with
       | Some old ->
           Cki.Container.destroy old;
           slots.(1 - s) <- None
       | None -> ());
       slots.(s) <- Some c;
       let p = Cki.Container.create ~cfg:(cfg_of psizes.(i mod 4)) host in
       incr created;
       Queue.add p pinned;
       if Queue.length pinned > 48 then Cki.Container.destroy (Queue.pop pinned);
       incr done_cycles
     done
   with Hw.Phys_mem.Out_of_memory -> failed := true);
  let live =
    Queue.fold (fun acc c -> c :: acc) [] pinned
    @ List.filter_map Fun.id (Array.to_list slots)
  in
  {
    ch_policy = (match policy with Cki.Host.First_fit -> "first_fit" | Cki.Host.Scatter -> "scatter");
    ch_cycles_done = !done_cycles;
    ch_created = !created;
    ch_failed = !failed;
    ch_free_fraction = float_of_int (free_frames mem) /. float_of_int (Hw.Phys_mem.total_frames mem);
    ch_max_run = max_free_run mem;
    ch_live = live;
    ch_host = host;
  }

(* Pack 4 MiB replicas onto [host] until delegation fails. *)
let pack host =
  let packed = ref [] in
  (try
     while true do
       packed := Cki.Container.create ~cfg:(cfg_of 1024) host :: !packed
     done
   with Hw.Phys_mem.Out_of_memory -> ());
  !packed

type churn_summary = {
  cs_first_fit : churn_out;
  cs_scatter : churn_out;
  cs_rescue_packed : int;
  cs_containers_per_host : int;
  cs_churn_findings : int;
}

let run_churn () =
  section "Fleet: container churn — first-fit fragmentation vs scatter delegation";
  let cycles = 600 in
  let ff = churn ~policy:Cki.Host.First_fit ~cycles in
  Printf.printf "  first-fit: %s after %d cycles (%d containers); free %.0f%%, largest run %d frames\n"
    (if ff.ch_failed then "FAILED" else "completed")
    ff.ch_cycles_done ff.ch_created (100.0 *. ff.ch_free_fraction) ff.ch_max_run;
  (* The same wedged host, switched to scatter: delegation resumes. *)
  Cki.Host.set_policy ff.ch_host Cki.Host.Scatter;
  let rescued = pack ff.ch_host in
  Printf.printf "  ... switched to scatter, same fragmented host: %d more replicas packed\n"
    (List.length rescued);
  let sc = churn ~policy:Cki.Host.Scatter ~cycles in
  Printf.printf "  scatter:   %s after %d cycles (%d containers); free %.0f%%, largest run %d frames\n"
    (if sc.ch_failed then "FAILED" else "completed")
    sc.ch_cycles_done sc.ch_created (100.0 *. sc.ch_free_fraction) sc.ch_max_run;
  (* Live churn survivors must still satisfy the whole-machine
     invariants (delegation exclusivity, PTE reach, CoW refcounts). *)
  let findings = Analysis.check_machine ~containers:sc.ch_live in
  Printf.printf "  analysis on %d live churn survivors: %d findings\n" (List.length sc.ch_live)
    (List.length findings);
  (* Containers per host: pack a fresh 512 MiB host with 4 MiB replicas. *)
  let fresh = Cki.Host.create (Hw.Machine.create ~cpus:2 ~mem_mib:512 ()) in
  let packed = pack fresh in
  Printf.printf "  containers per host (fresh 512 MiB, 4 MiB segments): %d\n" (List.length packed);
  Printf.printf "  acceptance: first-fit fails %s, scatter >= 500 cycles %s, >= 100 containers/host %s\n"
    (if ff.ch_failed then "OK" else "FAIL")
    (if (not sc.ch_failed) && sc.ch_cycles_done >= 500 then "OK" else "FAIL")
    (if List.length packed >= 100 then "OK" else "FAIL");
  {
    cs_first_fit = ff;
    cs_scatter = sc;
    cs_rescue_packed = List.length rescued;
    cs_containers_per_host = List.length packed;
    cs_churn_findings = List.length findings;
  }

(* ------------------------------------------------------------------ *)

let churn_json (c : churn_out) =
  Report.Json.Obj
    [
      ("policy", Report.Json.String c.ch_policy);
      ("cycles_done", Report.Json.Int c.ch_cycles_done);
      ("containers_created", Report.Json.Int c.ch_created);
      ("failed", Report.Json.String (if c.ch_failed then "yes" else "no"));
      ("free_fraction", Report.Json.Float c.ch_free_fraction);
      ("largest_free_run_frames", Report.Json.Int c.ch_max_run);
    ]

let run ?(json = false) () =
  let serving = run_serving () in
  let so = run_scaleout () in
  let cs = run_churn () in
  if json then begin
    Report.Json.write_file "BENCH_fleet.json"
      (Report.Json.Obj
         [
           ("bench", Report.Json.String "fleet");
           ( "serving",
             Report.Json.Obj
               [
                 ( "offered",
                   Report.Json.Int
                     (List.fold_left
                        (fun a (tr : Fleet.Controller.tenant_result) -> a + tr.Fleet.Controller.tr_offered)
                        0 serving.Fleet.Controller.tenants) );
                 ("makespan_ns", Report.Json.Float serving.Fleet.Controller.makespan_ns);
                 ( "tenants",
                   Report.Json.List (List.map tenant_json serving.Fleet.Controller.tenants) );
               ] );
           ( "scale_out",
             Report.Json.Obj
               [
                 ("cold_boot_ns", Report.Json.Float so.so_cold_ns);
                 ("pool_hit_ns", Report.Json.Float so.so_hit_ns);
                 ("pool_miss_ns", Report.Json.Float so.so_miss_ns);
                 ("hit_speedup_vs_cold", Report.Json.Float (so.so_cold_ns /. so.so_hit_ns));
                 ("miss_speedup_vs_cold", Report.Json.Float (so.so_cold_ns /. so.so_miss_ns));
                 ("low_water_refilled", Report.Json.Int so.so_refilled);
                 ("post_refill_hit_ns", Report.Json.Float so.so_post_refill_hit_ns);
                 ("pool_hits", Report.Json.Int so.so_pool.Snapshot.Pool.hits);
                 ("pool_misses", Report.Json.Int so.so_pool.Snapshot.Pool.misses);
                 ("pool_refills", Report.Json.Int so.so_pool.Snapshot.Pool.refills);
               ] );
           ( "churn",
             Report.Json.Obj
               [
                 ("first_fit", churn_json cs.cs_first_fit);
                 ("scatter", churn_json cs.cs_scatter);
                 ("fragmented_host_rescue_packed", Report.Json.Int cs.cs_rescue_packed);
                 ("containers_per_host", Report.Json.Int cs.cs_containers_per_host);
                 ("analysis_findings", Report.Json.Int cs.cs_churn_findings);
               ] );
         ]);
    Printf.printf "\nwrote BENCH_fleet.json\n"
  end
