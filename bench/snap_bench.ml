(* Snapshot/restore/warm-clone benchmark (simulated ns).

   Measures the three ways to get a ready container:

   - cold boot: Container.create + init workload (guest kernel boot
     dominates at Hw.Cost.guest_kernel_boot);
   - restore: rebuild from a captured image, paying a per-frame copy;
   - warm clone: CoW against a frozen template, paying per-PTE.

   Also reports the clone's incremental memory footprint against the
   template's, and runs the analysis scanner over every restored and
   cloned container — the numbers only count if the results are clean.

   ISSUE acceptance: restore and clone each >= 10x faster than cold
   boot; clone materializes < 25% of the template's frames. *)

let section title = Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Boot-time init: a task with a dirty heap and a tmpfs file, so the
   image has real state to carry. *)
let init_workload (c : Cki.Container.t) =
  let b = Cki.Container.backend c in
  let task = Virt.Backend.spawn b in
  let base =
    match
      Virt.Backend.syscall_exn b task
        (Kernel_model.Syscall.Mmap { pages = 1024; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> failwith "mmap"
  in
  ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages:1024 ~write:true);
  let fd =
    match
      Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Open { path = "/app.conf"; create = true })
    with
    | Kernel_model.Syscall.Rint fd -> fd
    | _ -> failwith "open"
  in
  (match
     Virt.Backend.syscall_exn b task
       (Kernel_model.Syscall.Write { fd; data = Bytes.of_string "threads=4\ncache=64M\n" })
   with
  | Kernel_model.Syscall.Rint _ -> ()
  | _ -> failwith "write")

let check_clean label c =
  match Analysis.check_machine ~containers:[ c ] with
  | [] -> 0
  | vs ->
      Printf.printf "  !! %s: %d invariant findings\n" label (List.length vs);
      List.length vs

let run ?(json = false) () =
  section "Snapshot/restore + warm clone: time-to-ready container";
  let machine = Hw.Machine.create ~cpus:2 ~mem_mib:512 () in
  let host = Cki.Host.create machine in
  let clock = Hw.Machine.clock machine in
  let cfg = { Cki.Config.default with Cki.Config.segment_frames = 16384 (* 64 MiB *) } in
  (* Cold boot to ready. *)
  let c0, cold_ns =
    Hw.Clock.timed clock (fun () ->
        let c = Cki.Container.create ~cfg host in
        init_workload c;
        c)
  in
  (* Freeze it into a template (capture happens inside). *)
  let tpl =
    match Snapshot.Template.create c0 with
    | Ok t -> t
    | Error e -> failwith (Snapshot.Template.show_error e)
  in
  let image = Snapshot.Template.image tpl in
  let encoded = Snapshot.Image.encode image in
  (* Full restore from the image (fresh segment, full copy). *)
  let restored, restore_ns =
    Hw.Clock.timed clock (fun () ->
        match Snapshot.Restore.restore host image with
        | Ok c -> c
        | Error e -> failwith (Snapshot.Restore.show_error e))
  in
  (* Warm clones through a pool. *)
  let pool = Snapshot.Pool.create ~target:1 ~make:(fun () -> tpl) () in
  let n_clones = 4 in
  let clones, clone_ns_total =
    Hw.Clock.timed clock (fun () ->
        List.init n_clones (fun _ ->
            match Snapshot.Pool.spawn_fast pool with
            | Ok c -> c
            | Error e -> failwith (Snapshot.Template.show_error e)))
  in
  let clone_ns = clone_ns_total /. float_of_int n_clones in
  (* Memory: incremental footprint of a clone vs the template. *)
  let tpl_frames = Snapshot.Restore.materialized_frames (Snapshot.Template.container tpl) in
  let clone_frames = Snapshot.Restore.materialized_frames (List.hd clones) in
  let mem_ratio = float_of_int clone_frames /. float_of_int tpl_frames in
  (* Every restored/cloned container must pass the analysis scanner.
     (spawn_fast already verified each; this re-checks explicitly.) *)
  let findings =
    check_clean "restored" restored
    + List.fold_left (fun acc c -> acc + check_clean "clone" c) 0 clones
  in
  let speedup_restore = cold_ns /. restore_ns in
  let speedup_clone = cold_ns /. clone_ns in
  let tbl =
    Report.Table.create ~title:"Time to a ready container (simulated)"
      ~header:[ "path"; "ns"; "speedup vs cold"; "frames" ]
  in
  Report.Table.add_row tbl
    [ "cold boot + init"; Printf.sprintf "%.0f" cold_ns; "1.0x"; string_of_int tpl_frames ];
  Report.Table.add_row tbl
    [
      "restore (image)";
      Printf.sprintf "%.0f" restore_ns;
      Printf.sprintf "%.0fx" speedup_restore;
      string_of_int (Snapshot.Restore.materialized_frames restored);
    ];
  Report.Table.add_row tbl
    [
      "warm clone (CoW)";
      Printf.sprintf "%.0f" clone_ns;
      Printf.sprintf "%.0fx" speedup_clone;
      string_of_int clone_frames;
    ];
  Report.Table.print tbl;
  Printf.printf "  image: %d bytes (%d tables, %d aux frames)\n" (String.length encoded)
    (List.length image.Snapshot.Image.tables)
    (Array.length image.Snapshot.Image.aux);
  Printf.printf "  clone incremental memory: %d/%d frames = %.1f%% of template\n" clone_frames
    tpl_frames (100.0 *. mem_ratio);
  Printf.printf "  warm pool: %d prebooted, %d served\n" (Snapshot.Pool.prebooted pool)
    (Snapshot.Pool.served pool);
  Printf.printf "  analysis findings on restored/cloned containers: %d\n" findings;
  Printf.printf "  acceptance: restore %s, clone %s, memory %s\n"
    (if speedup_restore >= 10.0 then ">=10x OK" else "FAIL <10x")
    (if speedup_clone >= 10.0 then ">=10x OK" else "FAIL <10x")
    (if mem_ratio < 0.25 then "<25% OK" else "FAIL >=25%");
  if json then begin
    let j =
      Report.Json.Obj
        [
          ("bench", Report.Json.String "snapshot");
          ("cold_boot_ns", Report.Json.Float cold_ns);
          ("restore_ns", Report.Json.Float restore_ns);
          ("clone_ns", Report.Json.Float clone_ns);
          ("speedup_restore", Report.Json.Float speedup_restore);
          ("speedup_clone", Report.Json.Float speedup_clone);
          ("template_frames", Report.Json.Int tpl_frames);
          ("clone_frames", Report.Json.Int clone_frames);
          ("clone_mem_ratio", Report.Json.Float mem_ratio);
          ("image_bytes", Report.Json.Int (String.length encoded));
          ("clones", Report.Json.Int n_clones);
          ("analysis_findings", Report.Json.Int findings);
        ]
    in
    Report.Json.write_file "BENCH_snapshot.json" j;
    Printf.printf "  wrote BENCH_snapshot.json\n"
  end
