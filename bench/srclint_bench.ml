(* Source-auditor bench: scan the repo's own tree and track scan wall
   time and finding counts, so the perf trajectory catches both a
   slowing scanner and creeping baselined debt.

   --json -> BENCH_srclint.json *)

let run ~json () =
  let root = Srclint.find_root_exn () in
  let scan = Srclint.scan ~root () in
  let s = scan.Srclint.stats in
  let entries =
    match Srclint.Baseline.load (Filename.concat root "srclint.baseline") with
    | Ok e -> e
    | Error msg -> failwith msg
  in
  let chk = Srclint.check ~baseline:entries scan.Srclint.findings in
  Printf.printf "\nsrclint: %s; %d baselined, %d new, %d stale baseline entr%s\n"
    (Format.asprintf "%a" Srclint.pp_stats s)
    (List.length chk.Srclint.baselined)
    (List.length chk.Srclint.fresh)
    (List.length chk.Srclint.stale)
    (if List.length chk.Srclint.stale = 1 then "y" else "ies");
  if json then begin
    Report.Json.write_file "BENCH_srclint.json"
      (Report.Json.Obj
         [
           ("bench", Report.Json.String "srclint");
           ("files", Report.Json.Int s.Srclint.files);
           ("loc", Report.Json.Int s.Srclint.loc);
           ("libraries", Report.Json.Int s.Srclint.libraries);
           ("scan_ms", Report.Json.Float s.Srclint.wall_ms);
           ( "findings_by_rule",
             Report.Json.Obj
               (List.map (fun (rule, n) -> (rule, Report.Json.Int n)) s.Srclint.by_rule) );
           ("baselined", Report.Json.Int (List.length chk.Srclint.baselined));
           ("new", Report.Json.Int (List.length chk.Srclint.fresh));
           ("stale_baseline", Report.Json.Int (List.length chk.Srclint.stale));
         ]);
    Printf.printf "wrote BENCH_srclint.json\n"
  end
