(* Domain-race sanitizer bench (host wall-clock).

   Measurements:

   - Tagging overhead (the gate): the probe ring stores the emitting
     domain's id into word 7 of every record.  Like engine_bench, the
     two sides are bench-local transcriptions of the emit path (claim +
     store4, lib/hw/probe.ml) differing ONLY in the tagging work: the
     pre-sanitizer variant stores no owner word, the current one reads
     the cached domain id and stores it.  Same stride, same claim —
     the delta is exactly what the sanitizer added.  Gate: tagged <=
     1.10x untagged.

   - The real production path for context: [Hw.Probe.emit_mem_write]
     through a ring sink — what a traced [Phys_mem] access actually
     costs (includes the per-domain sink lookup, which predates
     tagging and is paid tagged or not).

   - Dynamic checker throughput: the race-check dynamic half — a
     sharded 2-domain serve with Phys_mem tracing on — replayed through
     [Analysis.Racecheck], reporting trace volume and replay wall time.

   --json -> BENCH_racecheck.json *)

let now_ns () = Int64.to_float (Monotonic_clock.now ())
let iters = 2_000_000
let best_of = 5

(* Best-of-n wall time for [iters] applications of [f], in ns/op. *)
let time_per_op f =
  let best = ref infinity in
  for _ = 1 to best_of do
    let t0 = now_ns () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = now_ns () -. t0 in
    if dt < !best then best := dt
  done;
  !best /. float_of_int iters

(* Bench-local transcription of the ring emit path (claim + store4). *)
module Replica = struct
  let stride = 8

  type t = {
    buf : int array;
    capacity : int;
    mutable head : int;
    mutable len : int;
    mutable dropped : int;
    mutable dom : int;  (* stands in for the DLS slot's cached id *)
  }

  let create () =
    let capacity = 65536 in
    { buf = Array.make (capacity * stride) 0; capacity; head = 0; len = 0; dropped = 0; dom = 3 }

  let[@inline] claim r =
    let slot =
      if r.len = r.capacity then begin
        let s = r.head in
        let h = s + 1 in
        r.head <- (if h = r.capacity then 0 else h);
        r.dropped <- r.dropped + 1;
        s
      end
      else begin
        let s = r.head + r.len in
        let s = if s >= r.capacity then s - r.capacity else s in
        r.len <- r.len + 1;
        s
      end
    in
    slot * stride

  let[@inline] store4_untagged r tag a b c =
    let o = claim r in
    let buf = r.buf in
    buf.(o) <- tag;
    buf.(o + 1) <- a;
    buf.(o + 2) <- b;
    buf.(o + 3) <- c

  let[@inline] store4_tagged r tag a b c =
    let o = claim r in
    let buf = r.buf in
    buf.(o) <- tag;
    buf.(o + 1) <- a;
    buf.(o + 2) <- b;
    buf.(o + 3) <- c;
    buf.(o + 7) <- r.dom
end

let gate_pct = 10.0

let run ~json () =
  let rep = Replica.create () in
  let untagged_ns = time_per_op (fun () -> Replica.store4_untagged rep 19 1 2 0) in
  let tagged_ns = time_per_op (fun () -> Replica.store4_tagged rep 19 1 2 0) in
  Sys.opaque_identity rep.Replica.head |> ignore;
  let overhead_pct = (tagged_ns -. untagged_ns) /. untagged_ns *. 100.0 in
  let gate_ok = overhead_pct <= gate_pct in
  (* The real traced-access path, for context. *)
  let ring = Hw.Probe.ring_create () in
  Hw.Probe.set_ring ring;
  let emit_path_ns =
    Fun.protect
      ~finally:(fun () -> Hw.Probe.clear_sink ())
      (fun () -> time_per_op (fun () -> Hw.Probe.emit_mem_write ~mem:1 ~pfn:2))
  in
  Sys.opaque_identity (Hw.Probe.ring_length ring) |> ignore;
  Printf.printf "\nDomain-race sanitizer bench\n===========================\n";
  Printf.printf "ring emit, untagged       %7.2f ns/event  (pre-sanitizer replica)\n" untagged_ns;
  Printf.printf "ring emit, domain-tagged  %7.2f ns/event  (current replica)\n" tagged_ns;
  Printf.printf "tagging overhead          %7.2f %%         (gate <= %.0f%%: %s)\n" overhead_pct
    gate_pct
    (if gate_ok then "ok" else "FAIL");
  Printf.printf "emit_mem_write via sink   %7.2f ns/event  (production path, tag included)\n"
    emit_path_ns;
  (* Dynamic half: capture a sharded serve under the checker. *)
  let cfg =
    {
      Ioplane.Serve.default_config with
      Ioplane.Serve.backend = "cki";
      containers = 4;
      requests_per_container = 25;
    }
  in
  Hw.Probe.set_mem_trace true;
  let trace =
    Fun.protect
      ~finally:(fun () -> Hw.Probe.set_mem_trace false)
      (fun () ->
        let _, trace =
          Analysis.Trace.with_recorder ~capacity:400_000 (fun () ->
              ignore (Ioplane.Serve.run ~domains:2 cfg))
        in
        trace)
  in
  let t0 = now_ns () in
  let r = Analysis.Racecheck.of_trace trace in
  let check_ms = (now_ns () -. t0) /. 1e6 in
  Printf.printf
    "dynamic: %d access(es) to %d object(s) by %d domain(s), %d edge(s), %d race(s); replay %.1f ms\n"
    r.Analysis.Racecheck.accesses r.Analysis.Racecheck.objects r.Analysis.Racecheck.domains
    r.Analysis.Racecheck.edges
    (List.length r.Analysis.Racecheck.races)
    check_ms;
  if not (Analysis.Racecheck.is_clean r) then begin
    Printf.eprintf "racecheck bench: the production serve trace is NOT race-free\n";
    exit 1
  end;
  if json then begin
    Report.Json.write_file "BENCH_racecheck.json"
      (Report.Json.Obj
         [
           ("bench", Report.Json.String "racecheck");
           ("ring_emit_untagged_ns", Report.Json.Float untagged_ns);
           ("ring_emit_tagged_ns", Report.Json.Float tagged_ns);
           ("tagging_overhead_pct", Report.Json.Float overhead_pct);
           ("tagging_gate_pct", Report.Json.Float gate_pct);
           ("tagging_gate_ok", Report.Json.Bool gate_ok);
           ("emit_mem_write_sink_ns", Report.Json.Float emit_path_ns);
           ( "dynamic",
             Report.Json.Obj
               [
                 ("events", Report.Json.Int r.Analysis.Racecheck.events);
                 ("accesses", Report.Json.Int r.Analysis.Racecheck.accesses);
                 ("objects", Report.Json.Int r.Analysis.Racecheck.objects);
                 ("domains", Report.Json.Int r.Analysis.Racecheck.domains);
                 ("edges", Report.Json.Int r.Analysis.Racecheck.edges);
                 ("races", Report.Json.Int (List.length r.Analysis.Racecheck.races));
                 ("replay_ms", Report.Json.Float check_ms);
               ] );
         ]);
    Printf.printf "wrote BENCH_racecheck.json\n"
  end;
  if not gate_ok then begin
    Printf.eprintf "racecheck bench: tagging overhead %.2f%% exceeds the %.0f%% gate\n"
      overhead_pct gate_pct;
    exit 1
  end
