(* CKI reproduction benchmark harness.

   Regenerates every table and figure of the paper's evaluation (see
   DESIGN.md section 4) plus the attack suite, the snapshot/warm-clone
   bench and Bechamel benches of the simulator primitives.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe fig12      # one experiment
     dune exec bench/main.exe snapshot   # snapshot/restore/clone bench
     dune exec bench/main.exe list       # list experiment ids

   --json additionally writes machine-readable results for the benches
   that support it: snapshot -> BENCH_snapshot.json, modelcheck ->
   BENCH_modelcheck.json, micro -> BENCH_micro.json, srclint ->
   BENCH_srclint.json, racecheck -> BENCH_racecheck.json, ioplane ->
   BENCH_ioplane.json, engine -> BENCH_engine.json, fleet ->
   BENCH_fleet.json, migration -> BENCH_migration.json.

   `validate` parses every BENCH_*.json in the current directory with
   Report.Json.parse and fails if any is malformed — the CI check that
   the checked-in artifacts stay well-formed. *)

let validate_artifacts () =
  let files =
    Sys.readdir "."
    |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6 && String.sub f 0 6 = "BENCH_" && Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if files = [] then begin
    Printf.eprintf "validate: no BENCH_*.json in the current directory\n";
    exit 1
  end;
  let bad = ref 0 in
  List.iter
    (fun f ->
      match Report.Json.parse_file f with
      | Ok (Report.Json.Obj fields) ->
          let bench =
            match List.assoc_opt "bench" fields with
            | Some (Report.Json.String s) -> s
            | _ -> "?"
          in
          Printf.printf "  %-24s ok (bench=%s, %d top-level fields)\n" f bench
            (List.length fields)
      | Ok _ ->
          Printf.printf "  %-24s MALFORMED: top level is not an object\n" f;
          incr bad
      | Error e ->
          Printf.printf "  %-24s MALFORMED: %s\n" f e;
          incr bad)
    files;
  if !bad > 0 then begin
    Printf.eprintf "validate: %d malformed artifact(s)\n" !bad;
    exit 1
  end

(* Table 2's primitives, re-measured into a JSON artifact. *)
let micro_json () =
  let row mk =
    let getpid = Micro.getpid_ns (mk ()) in
    let pgfault = Micro.pgfault_ns (mk ()) in
    let hypercall = Micro.hypercall_ns (mk ()) in
    Report.Json.Obj
      [
        ("getpid_ns", Report.Json.Float getpid);
        ("pgfault_ns", Report.Json.Float pgfault);
        ("hypercall_ns", Report.Json.Float hypercall);
      ]
  in
  Report.Json.write_file "BENCH_micro.json"
    (Report.Json.Obj
       [
         ("bench", Report.Json.String "micro");
         ("runc", row Backends.runc);
         ("hvm_bm", row (fun () -> Backends.hvm_bm ()));
         ("pvm_bm", row Backends.pvm_bm);
         ("cki", row (fun () -> Backends.cki_bm ()));
       ]);
  Printf.printf "wrote BENCH_micro.json\n"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let json = List.mem "--json" args in
  let args = List.filter (fun a -> a <> "--json") args in
  let run_special name =
    match name with
    | "simbench" ->
        Simbench.run ();
        true
    | "snapshot" ->
        Snap_bench.run ~json ();
        true
    | "modelcheck" ->
        Mc_bench.run ~json ();
        true
    | "ioplane" ->
        Ioplane_bench.run ~json ();
        true
    | "srclint" ->
        Srclint_bench.run ~json ();
        true
    | "racecheck" ->
        Racecheck_bench.run ~json ();
        true
    | "engine" ->
        Engine_bench.run ~json ();
        true
    | "fleet" ->
        Fleet_bench.run ~json ();
        true
    | "migration" ->
        Migration_bench.run ~json ();
        true
    | "validate" ->
        validate_artifacts ();
        true
    | "micro" ->
        if json then micro_json ()
        else Printf.printf "micro: use --json to write BENCH_micro.json (table form is table2)\n";
        true
    | _ -> false
  in
  match args with
  | [ "list" ] ->
      List.iter (fun (name, _) -> print_endline name) Experiments.all;
      List.iter print_endline
        [
          "snapshot"; "modelcheck"; "ioplane"; "fleet"; "migration"; "micro"; "srclint";
          "racecheck"; "engine"; "simbench"; "validate";
        ]
  | [] ->
      Printf.printf "CKI (EuroSys'25) reproduction — full benchmark run\n";
      Printf.printf "===================================================\n";
      List.iter
        (fun (_, f) ->
          f ();
          flush stdout)
        Experiments.all;
      Snap_bench.run ~json ();
      Mc_bench.run ~json ();
      Ioplane_bench.run ~json ();
      Fleet_bench.run ~json ();
      Migration_bench.run ~json ();
      Srclint_bench.run ~json ();
      Racecheck_bench.run ~json ();
      Engine_bench.run ~json ();
      if json then micro_json ();
      Simbench.run ()
  | names ->
      List.iter
        (fun name ->
          if not (run_special name) then
            match List.assoc_opt name Experiments.all with
            | Some f -> f ()
            | None ->
                Printf.eprintf "unknown experiment %S (try: dune exec bench/main.exe list)\n" name;
                exit 1)
        names
