(* Migration benchmark: live migration over the multi-host fabric.

   Three experiments:

   - downtime: the same dirty-heap app migrated twice — once with
     iterative pre-copy (rounds of dirty-frame sends while the source
     serves; only the final dirty set ships inside the blackout) and
     once with pure stop-and-copy (rounds_max = 0: the whole image
     ships inside the blackout).  Pre-copy's downtime must be < 10%
     of stop-and-copy's, and its dirty rounds must converge (strictly
     decreasing counts, or the round cap fires);
   - storm: a serving tenant on a 2-host fleet slice while one host is
     drained mid-run — every replica evacuated to the survivor via
     warm clones, spawned *before* the doomed replicas are fenced.
     The tenant's p99 during and after the storm must stay within 5x
     of the steady-state p99 before it;
   - chaos: source-crash mid-round, target crash before cutover, and a
     fabric partition — each must end with exactly one live,
     analysis-clean copy, no split brain and no leaked frames; a
     leak-injection run proves the frame-leak checker catches what it
     claims to.

   ISSUE acceptance: pre-copy downtime < 10% of stop-and-copy;
   dirty rounds converge; storm p99 within 5x steady-state; all three
   chaos scenarios leave one clean copy.

   --json writes BENCH_migration.json. *)

let section title = Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Downtime: pre-copy vs stop-and-copy                                  *)
(* ------------------------------------------------------------------ *)

type downtime = {
  dt_precopy : Migrate.Engine.stats;
  dt_stopcopy : Migrate.Engine.stats;
  dt_ratio : float;
  dt_rounds_converge : bool;
}

(* One migration of the shared chaos-harness app on a fresh 2-host
   fabric.  [rounds_max = 0] is the stop-and-copy baseline. *)
let migrate_once opts =
  let fab = Migrate.Fabric.create ~hosts:2 () in
  let a = Migrate.Chaos.boot_app fab ~hid:0 in
  ignore (Migrate.Fabric.expose fab ~name:"svc" ~home:0);
  match
    Migrate.Engine.migrate fab ~src:0 ~dst:1 ~name:"svc" a.Migrate.Chaos.container
      ~work:(Migrate.Chaos.work_of a) opts
  with
  | Ok st -> st
  | Error e -> failwith ("migration bench: " ^ Migrate.Engine.show_error e)

(* Strictly decreasing dirty counts round over round, unless the round
   cap cut the sequence short. *)
let rounds_converge (st : Migrate.Engine.stats) =
  let dirties = List.map (fun r -> r.Migrate.Engine.r_dirty) st.Migrate.Engine.rounds in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  st.Migrate.Engine.converged || decreasing dirties

let run_downtime () =
  section "Migration: pre-copy downtime vs stop-and-copy";
  let open Migrate.Engine in
  let pre = migrate_once default_opts in
  let sc = migrate_once { default_opts with rounds_max = 0 } in
  List.iter
    (fun r ->
      Printf.printf "  round %d: %d dirty frames (budget %.0f ns, wire %.0f ns)\n"
        r.r_round r.r_dirty r.r_budget_ns r.r_transfer_ns)
    pre.rounds;
  let ratio = pre.downtime_ns /. sc.downtime_ns in
  Printf.printf "  pre-copy:     downtime %.0f ns (%d rounds, %d full + %d resent frames, %s)\n"
    pre.downtime_ns (List.length pre.rounds) pre.frames_full pre.frames_resent
    (if pre.converged then "converged" else "round cap");
  Printf.printf "  stop-and-copy: downtime %.0f ns (%d frames inside the blackout)\n" sc.downtime_ns
    sc.frames_full;
  let converge = rounds_converge pre in
  Printf.printf "  acceptance: downtime < 10%% of stop-and-copy %s (%.1f%%), rounds converge %s\n"
    (if ratio < 0.1 then "OK" else "FAIL")
    (100.0 *. ratio)
    (if converge then "OK" else "FAIL");
  { dt_precopy = pre; dt_stopcopy = sc; dt_ratio = ratio; dt_rounds_converge = converge }

(* ------------------------------------------------------------------ *)
(* Migration storm: drain a host under live tenant traffic             *)
(* ------------------------------------------------------------------ *)

type storm = { st_tr : Fleet.Controller.tenant_result; st_ok : bool }

let run_storm () =
  section "Migration storm: drain one fleet host under open-loop load";
  let open Fleet.Controller in
  let tenant =
    { default_tenant with name = "storm"; rate_rps = 30_000.0; requests = 24_000 }
  in
  (* Pin the fleet at 4 replicas (2 per host): the storm measures the
     drain, not the autoscaler walking capacity away beforehand. *)
  let cfg =
    {
      default_config with
      tenants = [ tenant ];
      initial_replicas = 4;
      autoscaler = { Fleet.Autoscaler.default_config with Fleet.Autoscaler.min_replicas = 4 };
      hosts = 2;
      drain = Some { d_host = 1; d_after_requests = 8_000 };
    }
  in
  let tr = run_tenant cfg tenant ~seed:(tenant_seed cfg.seed 0) in
  Printf.printf "  %s\n" (Format.asprintf "%a" pp_tenant_result tr);
  Printf.printf "  drain: %d replicas evacuated in %.0f ns\n" tr.tr_evacuated tr.tr_drain_ns;
  Printf.printf "  p99 (us): before %.1f, during %.1f, after %.1f\n" tr.tr_p99_before_us
    tr.tr_p99_during_us tr.tr_p99_after_us;
  let within5x p = p = 0.0 || p <= 5.0 *. tr.tr_p99_before_us in
  let ok =
    tr.tr_evacuated > 0 && tr.tr_completed = tr.tr_admitted
    && tr.tr_p99_before_us > 0.0
    && within5x tr.tr_p99_during_us && within5x tr.tr_p99_after_us
  in
  Printf.printf "  acceptance: storm p99 within 5x steady state %s\n" (if ok then "OK" else "FAIL");
  { st_tr = tr; st_ok = ok }

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)
(* ------------------------------------------------------------------ *)

type chaos_out = { co_verdicts : Migrate.Chaos.verdict list; co_leak_caught : bool }

let run_chaos () =
  section "Migration chaos: one clean live copy per scenario";
  let vs = Migrate.Chaos.all () in
  List.iter
    (fun (v : Migrate.Chaos.verdict) ->
      Printf.printf "  %-12s -> host %d live, %d findings, %d leaked, split brain %s: %s\n"
        (Migrate.Chaos.scenario_name v.Migrate.Chaos.scenario)
        v.Migrate.Chaos.live_hid v.Migrate.Chaos.analysis_findings v.Migrate.Chaos.leaked_frames
        (if v.Migrate.Chaos.split_brain then "YES" else "no")
        (if v.Migrate.Chaos.ok then "OK" else "FAIL"))
    vs;
  (* Fault-inject the leak checker: plant a losing-copy frame on a
     surviving loser host and demand the verdict flips. *)
  let inj = Migrate.Chaos.all ~leak_inject:true () in
  let caught =
    List.for_all
      (fun (v : Migrate.Chaos.verdict) ->
        if Migrate.Chaos.(v.scenario = Source_crash) then v.Migrate.Chaos.ok
          (* the loser host is dead: nothing survives to leak *)
        else (not v.Migrate.Chaos.ok) && v.Migrate.Chaos.leaked_frames > 0)
      inj
  in
  Printf.printf "  leak injection caught on live loser hosts: %s\n" (if caught then "OK" else "FAIL");
  { co_verdicts = vs; co_leak_caught = caught }

(* ------------------------------------------------------------------ *)

let stats_json (st : Migrate.Engine.stats) =
  let open Migrate.Engine in
  Report.Json.Obj
    [
      ( "outcome",
        Report.Json.String
          (match st.outcome with
          | Completed -> "completed"
          | Failed_over -> "failed_over"
          | Aborted -> "aborted") );
      ("downtime_ns", Report.Json.Float st.downtime_ns);
      ("total_ns", Report.Json.Float st.total_ns);
      ("frames_full", Report.Json.Int st.frames_full);
      ("frames_resent", Report.Json.Int st.frames_resent);
      ("final_dirty", Report.Json.Int st.final_dirty);
      ("converged", Report.Json.String (if st.converged then "yes" else "no"));
      ("replayed", Report.Json.Int st.replayed);
      ( "rounds",
        Report.Json.List
          (List.map
             (fun r ->
               Report.Json.Obj
                 [
                   ("round", Report.Json.Int r.r_round);
                   ("dirty", Report.Json.Int r.r_dirty);
                   ("budget_ns", Report.Json.Float r.r_budget_ns);
                   ("transfer_ns", Report.Json.Float r.r_transfer_ns);
                 ])
             st.rounds) );
    ]

let verdict_json (v : Migrate.Chaos.verdict) =
  let open Migrate.Chaos in
  Report.Json.Obj
    [
      ("scenario", Report.Json.String (scenario_name v.scenario));
      ("live_hid", Report.Json.Int v.live_hid);
      ("analysis_findings", Report.Json.Int v.analysis_findings);
      ("leaked_frames", Report.Json.Int v.leaked_frames);
      ("split_brain", Report.Json.String (if v.split_brain then "yes" else "no"));
      ("downtime_ns", Report.Json.Float v.downtime_ns);
      ("ok", Report.Json.String (if v.ok then "yes" else "no"));
    ]

let run ?(json = false) () =
  let dt = run_downtime () in
  let storm = run_storm () in
  let chaos = run_chaos () in
  if json then begin
    let tr = storm.st_tr in
    Report.Json.write_file "BENCH_migration.json"
      (Report.Json.Obj
         [
           ("bench", Report.Json.String "migration");
           ( "downtime",
             Report.Json.Obj
               [
                 ("precopy", stats_json dt.dt_precopy);
                 ("stop_and_copy", stats_json dt.dt_stopcopy);
                 ("precopy_over_stopcopy", Report.Json.Float dt.dt_ratio);
                 ( "rounds_converge",
                   Report.Json.String (if dt.dt_rounds_converge then "yes" else "no") );
               ] );
           ( "storm",
             Report.Json.Obj
               [
                 ("offered", Report.Json.Int tr.Fleet.Controller.tr_offered);
                 ("completed", Report.Json.Int tr.Fleet.Controller.tr_completed);
                 ("evacuated", Report.Json.Int tr.Fleet.Controller.tr_evacuated);
                 ("drain_ns", Report.Json.Float tr.Fleet.Controller.tr_drain_ns);
                 ("p99_before_us", Report.Json.Float tr.Fleet.Controller.tr_p99_before_us);
                 ("p99_during_us", Report.Json.Float tr.Fleet.Controller.tr_p99_during_us);
                 ("p99_after_us", Report.Json.Float tr.Fleet.Controller.tr_p99_after_us);
                 ("within_5x", Report.Json.String (if storm.st_ok then "yes" else "no"));
               ] );
           ( "chaos",
             Report.Json.Obj
               [
                 ("scenarios", Report.Json.List (List.map verdict_json chaos.co_verdicts));
                 ( "leak_injection_caught",
                   Report.Json.String (if chaos.co_leak_caught then "yes" else "no") );
               ] );
         ]);
    Printf.printf "\nwrote BENCH_migration.json\n"
  end
