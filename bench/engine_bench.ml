(* Raw-speed engine overhaul benchmark (host wall-clock).

   Every other bench in this directory measures *simulated* time; this
   one measures the simulator itself.  It races the overhauled engine
   hot paths head-to-head, in the same process and run, against a
   faithful bench-local replica of the pre-overhaul structures
   (transcribed from git history and trimmed to the operations the
   workload exercises):

   - frame/PTE arena: packed int-array metadata + one int64 Bigarray
     PTE arena with slot recycling, vs boxed per-frame records with a
     lazily allocated [int64 array] per table frame;
   - probe recording: specialized int-encoding emitters into a flat
     int ring, vs boxed variant events built at the emit site and
     pushed through a closure sink;
   - clock charging: [charge_id] into a float array, vs the
     string-keyed hashtable path (still available as [Clock.charge] —
     the slow path is real, not a replica);
   - translation: the memoized per-CPU fast path, vs the same engine
     with [Cpu.set_tcache] off (TLB-hashtable front end — exactly the
     pre-overhaul translation path).

   The composite "engine events per second" weights the sections like
   the simulator's own hot loop: every logical action charges the
   clock a few times and, when tracing, emits probes; translations and
   arena maintenance are rarer.

   The sharding section reports [Serve.run ~domains:{1,4}] makespan
   scaling — *simulated* makespan, since the host may have a single
   core (the merge math is deterministic either way).

   --json writes BENCH_engine.json. *)

let section title = Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')
let now_ns () = Int64.to_float (Monotonic_clock.now ())

(* ------------------------------------------------------------------ *)
(* Pre-overhaul replicas                                               *)
(* ------------------------------------------------------------------ *)

module Legacy = struct
  (* lib/hw/phys_mem.ml before the overhaul: metadata in boxed mutable
     records, PTEs in a per-frame [int64 array] allocated lazily and
     dropped on free. *)
  type owner = Free | Host | Container of int

  type frame = {
    mutable owner : owner;
    mutable kind : int;  (* stand-in for the old variant; not measured *)
    mutable table : int64 array option;
    mutable refcount : int;
    mutable shared_ro : bool;
  }

  type mem = { frames : frame array; total : int; mutable next_free : int }

  let mem_create n =
    {
      frames =
        Array.init n (fun _ ->
            { owner = Free; kind = 0; table = None; refcount = 0; shared_ro = false });
      total = n;
      next_free = 0;
    }

  exception Oom

  let alloc t ~owner =
    let n = t.total in
    let rec find i =
      if i >= n then raise Oom
      else
        let pfn = (t.next_free + i) mod n in
        if t.frames.(pfn).owner = Free then pfn else find (i + 1)
    in
    let pfn = find 0 in
    t.next_free <- (pfn + 1) mod n;
    let f = t.frames.(pfn) in
    f.owner <- owner;
    f.kind <- 1;
    f.table <- None;
    f.refcount <- 0;
    f.shared_ro <- false;
    pfn

  let free t pfn =
    let f = t.frames.(pfn) in
    f.owner <- Free;
    f.kind <- 0;
    f.table <- None;
    f.refcount <- 0;
    f.shared_ro <- false

  let table_entries t pfn =
    let f = t.frames.(pfn) in
    match f.table with
    | Some a -> a
    | None ->
        let a = Array.make 512 0L in
        f.table <- Some a;
        a

  let write_entry t ~pfn ~index v = (table_entries t pfn).(index) <- v
  let read_entry t ~pfn ~index = (table_entries t pfn).(index)

  (* lib/hw/probe.ml before the overhaul: every emit built a variant
     record (strings included) and pushed it through a closure. *)
  type event =
    | Tlb_fill of { cpu : int; pcid : int; vpn : int; level : int; pfn : int }
    | Io_doorbell of { queue : string; avail_idx : int; in_flight : int }
    | Io_completion of { queue : string; used_idx : int; serviced : int }

  let sink : (event -> unit) option ref = ref None
  let emit ev = match !sink with None -> () | Some f -> f ev

  (* The old Analysis.Trace recorder: a bounded [Queue] with
     drop-oldest overflow, attached as a closure. *)
  let queue_recorder capacity =
    let q : event Queue.t = Queue.create () in
    fun ev ->
      if Queue.length q >= capacity then ignore (Queue.pop q);
      Queue.add ev q

  (* lib/hw/clock.ml before the overhaul: every charge was two
     string-keyed hashtable read-modify-writes (boxed-float stores
     included) — there was no pre-interned fast tier. *)
  type clock = {
    mutable now_ns : float;
    counters : (string, int) Hashtbl.t;
    spent : (string, float) Hashtbl.t;
  }

  let clock_create () = { now_ns = 0.0; counters = Hashtbl.create 64; spent = Hashtbl.create 64 }

  let charge c event ns =
    c.now_ns <- c.now_ns +. ns;
    Hashtbl.replace c.counters event
      (1 + Option.value ~default:0 (Hashtbl.find_opt c.counters event));
    Hashtbl.replace c.spent event
      (ns +. Option.value ~default:0.0 (Hashtbl.find_opt c.spent event))
end

(* ------------------------------------------------------------------ *)
(* Sections                                                            *)
(* ------------------------------------------------------------------ *)

type measure = { ops : int; optimized_ns : float; legacy_ns : float }

let speedup m = m.legacy_ns /. m.optimized_ns

let time f =
  let t0 = now_ns () in
  f ();
  now_ns () -. t0

(* Arena churn: allocate a table frame, write + read back a sparse
   cluster of PTEs (a partially-filled leaf table — the common case),
   free it.  The overhaul's recycled slots with dirty-range scrubbing
   vs the old per-alloc 4KiB [Array.make]. *)
let bench_arena ~ops =
  let new_mem = Hw.Phys_mem.create ~frames:4096 in
  let leg_mem = Legacy.mem_create 4096 in
  let acc = ref 0L in
  let optimized_ns =
    time (fun () ->
        for i = 1 to ops do
          let pfn =
            Hw.Phys_mem.alloc new_mem ~owner:Hw.Phys_mem.Host
              ~kind:(Hw.Phys_mem.Page_table 1)
          in
          let base = i land 0xff in
          for k = 0 to 7 do
            Hw.Phys_mem.write_entry new_mem ~pfn ~index:(base + k)
              (Int64.of_int ((i * 8) + k))
          done;
          for k = 0 to 7 do
            acc := Int64.add !acc (Hw.Phys_mem.read_entry new_mem ~pfn ~index:(base + k))
          done;
          Hw.Phys_mem.free new_mem pfn
        done)
  in
  let legacy_ns =
    time (fun () ->
        for i = 1 to ops do
          let pfn = Legacy.alloc leg_mem ~owner:Legacy.Host in
          let base = i land 0xff in
          for k = 0 to 7 do
            Legacy.write_entry leg_mem ~pfn ~index:(base + k) (Int64.of_int ((i * 8) + k))
          done;
          for k = 0 to 7 do
            acc := Int64.add !acc (Legacy.read_entry leg_mem ~pfn ~index:(base + k))
          done;
          Legacy.free leg_mem pfn
        done)
  in
  Sys.opaque_identity !acc |> ignore;
  { ops; optimized_ns; legacy_ns }

(* Frame allocation on a mostly-full, fragmented host — the paper's
   steady serving state, and where the O(n-scan) pre-overhaul
   allocator hurt most.  One frame in [hole_stride] is free; each op
   allocates the next hole and frees it again, so next-fit must cross
   [hole_stride - 1] occupied frames per allocation: boxed record
   loads before the overhaul, 62-frame bitmap words after. *)
let bench_alloc ~ops =
  let frames = 65536 in
  let hole_stride = 256 in
  let new_mem = Hw.Phys_mem.create ~frames in
  let leg_mem = Legacy.mem_create frames in
  for pfn = 0 to frames - 1 do
    if pfn mod hole_stride <> 0 then begin
      ignore
        (let p = Hw.Phys_mem.alloc new_mem ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data in
         assert (p = pfn);
         p);
      let p = Legacy.alloc leg_mem ~owner:Legacy.Host in
      assert (p = pfn)
    end
    else begin
      (* keep both allocators' next-fit hints moving identically *)
      let a = Hw.Phys_mem.alloc new_mem ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data in
      let b = Legacy.alloc leg_mem ~owner:Legacy.Host in
      assert (a = pfn && b = pfn);
      Hw.Phys_mem.free new_mem pfn;
      Legacy.free leg_mem pfn
    end
  done;
  let optimized_ns =
    time (fun () ->
        for _ = 1 to ops do
          let pfn = Hw.Phys_mem.alloc new_mem ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data in
          Hw.Phys_mem.free new_mem pfn
        done)
  in
  let legacy_ns =
    time (fun () ->
        for _ = 1 to ops do
          let pfn = Legacy.alloc leg_mem ~owner:Legacy.Host in
          Legacy.free leg_mem pfn
        done)
  in
  { ops; optimized_ns; legacy_ns }

(* Probe recording under an active trace recorder. *)
let bench_probe ~ops =
  let ring = Hw.Probe.ring_create ~capacity:4096 () in
  Hw.Probe.set_ring ring;
  let optimized_ns =
    time (fun () ->
        for i = 1 to ops / 3 do
          Hw.Probe.emit_tlb_fill ~cpu:0 ~pcid:1 ~vpn:(i land 0xffff) ~level:1 ~pfn:i;
          Hw.Probe.emit_io_doorbell ~queue:"net-tx" ~avail_idx:i ~in_flight:1;
          Hw.Probe.emit_io_completion ~queue:"net-tx" ~used_idx:i ~serviced:1
        done)
  in
  Hw.Probe.clear_sink ();
  Legacy.sink := Some (Legacy.queue_recorder 4096);
  let legacy_ns =
    time (fun () ->
        for i = 1 to ops / 3 do
          Legacy.emit
            (Legacy.Tlb_fill { cpu = 0; pcid = 1; vpn = i land 0xffff; level = 1; pfn = i });
          Legacy.emit (Legacy.Io_doorbell { queue = "net-tx"; avail_idx = i; in_flight = 1 });
          Legacy.emit (Legacy.Io_completion { queue = "net-tx"; used_idx = i; serviced = 1 })
        done)
  in
  Legacy.sink := None;
  { ops = ops / 3 * 3; optimized_ns; legacy_ns }

(* Clock charging: [charge_id] into flat arrays vs the pre-overhaul
   hashtable-only charge (the current string path would not do — it
   redirects well-known names to the fast tier). *)
let bench_clock ~ops =
  let clk = Hw.Clock.create () in
  let leg = Legacy.clock_create () in
  let optimized_ns =
    time (fun () ->
        for _ = 1 to ops / 2 do
          Hw.Clock.charge_id clk Hw.Clock.id_tlb_hit 1.0;
          Hw.Clock.charge_id clk Hw.Clock.id_virtio_service 2.0
        done)
  in
  let legacy_ns =
    time (fun () ->
        for _ = 1 to ops / 2 do
          Legacy.charge leg "tlb_hit" 1.0;
          Legacy.charge leg "virtio_service" 2.0
        done)
  in
  Sys.opaque_identity leg.Legacy.now_ns |> ignore;
  { ops = ops / 2 * 2; optimized_ns; legacy_ns }

(* Translation in the TLB-hit regime: the memoized fast path vs the
   pre-overhaul TLB front end ([set_tcache false]). *)
let bench_translate ~ops =
  let clk = Hw.Clock.create () in
  let cpu = Hw.Cpu.create clk in
  let mem = Hw.Phys_mem.create ~frames:4096 in
  let pt = Hw.Page_table.create mem ~owner:Hw.Phys_mem.Host in
  let pages = 64 in
  for i = 0 to pages - 1 do
    ignore (Hw.Page_table.map pt ~va:(0x4000_0000 + (i * 4096)) ~pfn:(100 + i) ~flags:Hw.Pte.default_flags ())
  done;
  let touch () =
    for i = 0 to ops - 1 do
      let va = 0x4000_0000 + (i land (pages - 1)) * 4096 in
      match Hw.Cpu.access cpu pt ~va ~access_kind:Hw.Pks.Read () with
      | Ok _ -> ()
      | Error _ -> failwith "engine bench: unexpected fault"
    done
  in
  (* warm the TLB (and cache) so both runs sit in the hit regime *)
  Hw.Cpu.set_tcache cpu true;
  touch ();
  let optimized_ns = time touch in
  Hw.Cpu.set_tcache cpu false;
  touch ();
  let legacy_ns = time touch in
  Hw.Cpu.set_tcache cpu true;
  { ops; optimized_ns; legacy_ns }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let print_measure name m =
  Printf.printf "  %-12s %8.1f ns/op optimized  %8.1f ns/op legacy  %6.2fx\n" name
    (m.optimized_ns /. float_of_int m.ops)
    (m.legacy_ns /. float_of_int m.ops)
    (speedup m)

let measure_json name m =
  ( name,
    Report.Json.Obj
      [
        ("ops", Report.Json.Int m.ops);
        ("optimized_ns_per_op", Report.Json.Float (m.optimized_ns /. float_of_int m.ops));
        ("legacy_ns_per_op", Report.Json.Float (m.legacy_ns /. float_of_int m.ops));
        ("speedup", Report.Json.Float (speedup m));
      ] )

let serve_json (r : Ioplane.Serve.result) =
  Report.Json.Obj
    [
      ("domains", Report.Json.Int r.r_domains);
      ("wall_ns", Report.Json.Float r.r_wall_ns);
      ("throughput_rps", Report.Json.Float r.r_throughput_rps);
      ("requests", Report.Json.Int r.r_requests);
      ("p99_us", Report.Json.Float r.r_p99_us);
    ]

let run ?(json = false) () =
  section "Engine overhaul: hot paths vs pre-overhaul replicas (host wall-clock)";
  (* Weights mirror the simulator's own event mix: clock charges
     dominate, probes fire on every traced action, translations and
     arena maintenance are rarer. *)
  let alloc = bench_alloc ~ops:400_000 in
  let arena = bench_arena ~ops:100_000 in
  let translate = bench_translate ~ops:200_000 in
  let probe = bench_probe ~ops:1_200_000 in
  let clock = bench_clock ~ops:3_000_000 in
  print_measure "alloc" alloc;
  print_measure "arena" arena;
  print_measure "translate" translate;
  print_measure "probe" probe;
  print_measure "clock" clock;
  let sections = [ alloc; arena; translate; probe; clock ] in
  let total_ops = List.fold_left (fun a m -> a + m.ops) 0 sections in
  let opt_ns = List.fold_left (fun a m -> a +. m.optimized_ns) 0.0 sections in
  let leg_ns = List.fold_left (fun a m -> a +. m.legacy_ns) 0.0 sections in
  let opt_eps = float_of_int total_ops /. (opt_ns /. 1e9) in
  let leg_eps = float_of_int total_ops /. (leg_ns /. 1e9) in
  let composite = leg_ns /. opt_ns in
  let speed_ok = composite >= 10.0 in
  Printf.printf "\ncomposite: %.2fM events/s optimized vs %.2fM events/s legacy — %.2fx  %s\n"
    (opt_eps /. 1e6) (leg_eps /. 1e6) composite
    (if speed_ok then "OK (>= 10x)" else "VIOLATED (< 10x)");

  section "Engine overhaul: domain-sharded serve (simulated makespan)";
  let cfg =
    {
      Ioplane.Serve.default_config with
      Ioplane.Serve.backend = "cki";
      containers = 4;
      requests_per_container = 50;
      window = 4;
    }
  in
  let serve domains =
    let r, containers = Ioplane.Serve.run ~domains cfg in
    (match Analysis.check_machine ~containers with
    | [] -> ()
    | vs -> Printf.printf "  !! domains=%d: %d invariant findings\n" domains (List.length vs));
    Printf.printf "  domains=%d  makespan %10.0f ns  throughput %10.1f req/s\n" domains
      r.Ioplane.Serve.r_wall_ns r.Ioplane.Serve.r_throughput_rps;
    r
  in
  let r1 = serve 1 in
  let r4 = serve 4 in
  let scaling = r4.Ioplane.Serve.r_throughput_rps /. r1.Ioplane.Serve.r_throughput_rps in
  let scaling_ok = scaling > 2.0 in
  Printf.printf "\nscaling 1 -> 4 domains: %.2fx  %s\n" scaling
    (if scaling_ok then "OK (> 2x)" else "VIOLATED (<= 2x)");

  if json then begin
    Report.Json.write_file "BENCH_engine.json"
      (Report.Json.Obj
         [
           ("bench", Report.Json.String "engine");
           ( "note",
             Report.Json.String
               "legacy = pre-overhaul hot-path equivalents measured in the same run (boxed \
                frame records + per-frame int64 tables, boxed probe events via closure sink, \
                string-keyed clock charges, tcache off); section timings are host wall-clock \
                ns/op; sharding scaling is over the simulated parallel makespan" );
           ( "sections",
             Report.Json.Obj
               [
                 measure_json "alloc" alloc;
                 measure_json "arena" arena;
                 measure_json "translate" translate;
                 measure_json "probe" probe;
                 measure_json "clock" clock;
               ] );
           ( "composite",
             Report.Json.Obj
               [
                 ("events", Report.Json.Int total_ops);
                 ("optimized_events_per_sec", Report.Json.Float opt_eps);
                 ("legacy_events_per_sec", Report.Json.Float leg_eps);
                 ("speedup", Report.Json.Float composite);
                 ("speedup_target", Report.Json.Float 10.0);
                 ("speedup_ok", Report.Json.Bool speed_ok);
               ] );
           ( "sharding",
             Report.Json.Obj
               [
                 ("domains_1", serve_json r1);
                 ("domains_4", serve_json r4);
                 ("scaling", Report.Json.Float scaling);
                 ("scaling_target", Report.Json.Float 2.0);
                 ("scaling_ok", Report.Json.Bool scaling_ok);
               ] );
         ]);
    Printf.printf "wrote BENCH_engine.json\n"
  end
