(* Model-checker throughput benchmark (wall-clock, not simulated ns:
   exploration is tooling, not a workload the paper times).

   Reports the exhaustive run at the default configuration —
   states/sec, transitions/sec, depth reached, peak frontier — and the
   mutation harness (kill count and total time), then optionally
   writes BENCH_modelcheck.json.

   ISSUE acceptance: >= 10k distinct states at the default depth on
   the 2-vCPU config, zero violations, every seeded mutant killed. *)

let section title = Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let run ?(json = false) () =
  section "Privilege-state model checker: exhaustive exploration";
  let r = Modelcheck.Explore.run_standalone () in
  let s = r.Modelcheck.Explore.stats in
  let per_sec v = float_of_int v /. (max 1e-9 s.Modelcheck.Explore.elapsed_s) in
  Printf.printf "  distinct states   %8d\n" s.Modelcheck.Explore.states;
  Printf.printf "  transitions       %8d\n" s.Modelcheck.Explore.transitions;
  Printf.printf "  depth reached     %8d (bound %d)\n" s.Modelcheck.Explore.depth_reached
    r.Modelcheck.Explore.config.Modelcheck.Transition.depth;
  Printf.printf "  peak frontier     %8d\n" s.Modelcheck.Explore.peak_frontier;
  Printf.printf "  elapsed           %8.2f s  (%.0f states/s, %.0f transitions/s)\n"
    s.Modelcheck.Explore.elapsed_s (per_sec s.Modelcheck.Explore.states)
    (per_sec s.Modelcheck.Explore.transitions);
  Printf.printf "  violations        %8d\n" (List.length r.Modelcheck.Explore.violations);
  if not (Modelcheck.Explore.ok r) then print_string (Modelcheck.Cex.report r);

  let t0 = Sys.time () in
  let verdicts = Modelcheck.Mutants.run_all () in
  let mutants_s = Sys.time () -. t0 in
  let killed =
    List.length (List.filter (fun v -> v.Modelcheck.Mutants.killed) verdicts)
  in
  Printf.printf "  mutants killed    %5d/%-3d in %.2f s\n" killed (List.length verdicts) mutants_s;

  if json then begin
    Report.Json.write_file "BENCH_modelcheck.json"
      (Report.Json.Obj
         [
           ("bench", Report.Json.String "modelcheck");
           ("states", Report.Json.Int s.Modelcheck.Explore.states);
           ("transitions", Report.Json.Int s.Modelcheck.Explore.transitions);
           ("depth_bound", Report.Json.Int r.Modelcheck.Explore.config.Modelcheck.Transition.depth);
           ("depth_reached", Report.Json.Int s.Modelcheck.Explore.depth_reached);
           ("peak_frontier", Report.Json.Int s.Modelcheck.Explore.peak_frontier);
           ("elapsed_s", Report.Json.Float s.Modelcheck.Explore.elapsed_s);
           ("states_per_sec", Report.Json.Float (per_sec s.Modelcheck.Explore.states));
           ("violations", Report.Json.Int (List.length r.Modelcheck.Explore.violations));
           ("mutants_total", Report.Json.Int (List.length verdicts));
           ("mutants_killed", Report.Json.Int killed);
           ("mutants_elapsed_s", Report.Json.Float mutants_s);
         ]);
    Printf.printf "wrote BENCH_modelcheck.json\n"
  end
