(* Every table and figure of the paper's evaluation, regenerated
   against the simulated machine.  See DESIGN.md section 4 for the
   experiment index and EXPERIMENTS.md for paper-vs-measured. *)

let section title = Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Table 2: container performance on microbenchmarks (ns)              *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2: container performance on microbenchmarks (ns)";
  let tbl =
    Report.Table.create ~title:"Table 2 (+ CKI column; paper: RunC 93/1000/-, HVM-BM 91/4347/1088, PVM-BM 336/6727/466, HVM-NST 91/34050/6746, PVM-NST 336/7346/486)"
      ~header:[ "benchmark"; "RunC"; "HVM-BM"; "PVM-BM"; "HVM-NST"; "PVM-NST"; "CKI" ]
  in
  let mk = [ Backends.runc; (fun () -> Backends.hvm_bm ()); Backends.pvm_bm; Backends.hvm_nst; Backends.pvm_nst; (fun () -> Backends.cki_bm ()) ] in
  let row name f =
    let values = List.map (fun m -> f (m ())) mk in
    Report.Table.add_floats tbl ~label:name ~fmt:(Printf.sprintf "%.0f") values
  in
  row "syscall (getpid)" Micro.getpid_ns;
  row "pgfault" (fun b -> Micro.pgfault_ns b);
  row "hypercall" Micro.hypercall_ns;
  Report.Table.print tbl

(* ------------------------------------------------------------------ *)
(* Table 3: privileged-instruction policy, executed                    *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "Table 3: privileged instructions in the CKI guest kernel";
  let c = Cki.Container.create_standalone () in
  let cpu = Cki.Container.cpu c 0 in
  let tbl =
    Report.Table.create ~title:"Table 3: policy (executed against the simulated CPU)"
      ~header:[ "instruction"; "category"; "blocked?"; "observed"; "virtualized as" ]
  in
  List.iter
    (fun inst ->
      Cki.Container.enter_guest_kernel cpu;
      let observed =
        match Hw.Cpu.exec_priv cpu inst with
        | Error (Hw.Cpu.Blocked_instruction _) -> "trap"
        | Error _ -> "fault"
        | Ok () -> "executes"
      in
      Report.Table.add_row tbl
        [
          Hw.Priv.mnemonic inst;
          Hw.Priv.show_category (Hw.Priv.category inst);
          (if Hw.Priv.blocked_in_guest inst then "yes" else "no");
          observed;
          Hw.Priv.show_virtualization (Hw.Priv.virtualized_as inst);
        ])
    Hw.Priv.all_examples;
  Report.Table.print tbl

(* ------------------------------------------------------------------ *)
(* Table 4: TLB-miss-intensive applications                            *)
(* ------------------------------------------------------------------ *)

let table4 () =
  section "Table 4: finish time of TLB-miss-intensive applications (s)";
  (* Sampled runs scaled to the paper's working-set sizes: the sampled
     loop runs [updates] accesses through a real TLB; the scale factor
     maps to the full-size run (45 GB working sets). *)
  let updates = 1_500_000 in
  let gups_scale = 31.1 (* ~46.7 M updates in the paper's 54.9 s run *) in
  let btree_scale = 21.2 in
  let table_pages = 200_000 in
  let tbl =
    Report.Table.create
      ~title:"Table 4 (paper: GUPS 54.9/67.8|67.1/54.9/55.1; BTree-Lookup 22.6/24.1|24.2/21.7/22.6)"
      ~header:[ "app"; "RunC-BM"; "HVM-BM (4K/2M EPT)"; "PVM-BM"; "CKI-BM" ]
  in
  let gups b ept_huge =
    let r = Workloads.Gups.run_gups b ~ept_huge ~table_pages ~updates () in
    r.Workloads.Gups.total_ns *. gups_scale /. 1e9
  in
  let btree b ept_huge =
    let r = Workloads.Gups.run_btree_lookup b ~ept_huge ~table_pages ~lookups:(updates / 5) () in
    r.Workloads.Gups.total_ns *. btree_scale /. 1e9
  in
  let row name f =
    let runc = f (Backends.runc ()) false in
    let hvm4k = f (Backends.hvm_bm ()) false in
    let hvm2m = f (Backends.hvm_bm ~ept_huge:true ()) true in
    let pvm = f (Backends.pvm_bm ()) false in
    let cki = f (Backends.cki_bm ()) false in
    Report.Table.add_row tbl
      [
        name;
        Printf.sprintf "%.1f" runc;
        Printf.sprintf "%.1f / %.1f" hvm4k hvm2m;
        Printf.sprintf "%.1f" pvm;
        Printf.sprintf "%.1f" cki;
      ]
  in
  row "GUPS" gups;
  row "BTree-Lookup" btree;
  Report.Table.print tbl

(* ------------------------------------------------------------------ *)
(* Figure 2: Linux kernel CVEs exploitable by containers               *)
(* ------------------------------------------------------------------ *)

(* The paper's classification of 209 CVEs (2022-2023). *)
let cve_classes =
  [
    ("out-of-bound R/W", 39.9, true);
    ("use-after-free", 20.2, true);
    ("null dereference", 12.8, true);
    ("other mem. corruption", 8.0, true);
    ("logic error", 6.4, true);
    ("memory leakage", 5.9, true);
    ("kernel panic", 2.7, true);
    ("deadlock/deadloop", 1.6, true);
    ("information leakage", 2.7, false);
  ]

let fig2 () =
  section "Figure 2: Linux kernel CVEs exploitable by containers (2022-2023, n=209)";
  let tbl =
    Report.Table.create ~title:"Figure 2 (DoS-capable classes motivate kernel separation)"
      ~header:[ "class"; "share %"; "DoS-capable" ]
  in
  List.iter
    (fun (name, pct, dos) ->
      Report.Table.add_row tbl [ name; Printf.sprintf "%.1f" pct; (if dos then "yes" else "no") ])
    cve_classes;
  let dos_total = List.fold_left (fun a (_, p, d) -> if d then a +. p else a) 0.0 cve_classes in
  Report.Table.add_row tbl [ "TOTAL DoS-capable"; Printf.sprintf "%.1f" dos_total; "" ];
  Report.Table.print tbl

(* ------------------------------------------------------------------ *)
(* Memory-intensive application latency (Figures 4, 12)                *)
(* ------------------------------------------------------------------ *)

type mem_app = { app_name : string; run : Virt.Backend.t -> float }

let mem_apps () =
  [
    { app_name = "btree"; run = (fun b -> Workloads.Btree.run b ~inserts:60_000 ~lookups:15_000) };
    {
      app_name = "xsbench";
      run = (fun b -> Workloads.Xsbench.run b ~gridpoints:200_000 ~particles:25_000);
    };
    { app_name = "canneal"; run = (fun b -> Workloads.Parsec.run b Workloads.Parsec.canneal) };
    { app_name = "dedup"; run = (fun b -> Workloads.Parsec.run b Workloads.Parsec.dedup) };
    {
      app_name = "fluidanimate";
      run = (fun b -> Workloads.Parsec.run b Workloads.Parsec.fluidanimate);
    };
    { app_name = "freqmine"; run = (fun b -> Workloads.Parsec.run b Workloads.Parsec.freqmine) };
  ]

let run_mem_apps ~backends =
  List.map
    (fun app ->
      let results =
        List.map
          (fun mk ->
            let b = mk () in
            (b.Virt.Backend.label, app.run b))
          backends
      in
      (app.app_name, results))
    (mem_apps ())

let normalize_to_worst results =
  let worst = List.fold_left (fun m (_, v) -> max m v) 0.0 results in
  List.map (fun (l, v) -> (l, v /. worst)) results

let fig4 () =
  section "Figure 4: memory-intensive applications, motivation (normalized latency)";
  let backends =
    [ Backends.hvm_nst; Backends.pvm_nst; Backends.runc; (fun () -> Backends.hvm_bm ()); Backends.pvm_bm ]
  in
  let rows = run_mem_apps ~backends in
  let groups = List.map (fun (app, rs) -> (app, normalize_to_worst rs)) rows in
  Report.Figure.print
    (Report.Figure.grouped_bars ~title:"Figure 4" ~value_label:"latency normalized to worst" ~groups)

let fig12 () =
  section "Figure 12: memory-intensive applications with CKI (normalized latency)";
  let backends =
    [
      Backends.hvm_nst;
      (fun () -> Backends.hvm_bm ());
      Backends.pvm_bm;
      (fun () -> Backends.cki_bm ());
      Backends.runc;
      (fun () -> Backends.hvm_bm ~ept_huge:true ());
    ]
  in
  let rows = run_mem_apps ~backends in
  let groups = List.map (fun (app, rs) -> (app, normalize_to_worst rs)) rows in
  Report.Figure.print
    (Report.Figure.grouped_bars ~title:"Figure 12 (HVM-2M-BM = 2 MiB EPT mappings)"
       ~value_label:"latency normalized to worst" ~groups);
  (* The paper's headline claims, checked numerically: *)
  List.iter
    (fun (app, rs) ->
      let v l = List.assoc l rs in
      Printf.printf
        "  %-13s CKI vs HVM-NST: -%.0f%%  | CKI vs HVM-BM: -%.0f%%  | CKI vs PVM: -%.0f%%  | CKI vs RunC: +%.1f%%\n"
        app
        (Report.Stats.reduction_pct ~from_:(v "HVM-NST") ~to_:(v "CKI-BM"))
        (Report.Stats.reduction_pct ~from_:(v "HVM-BM") ~to_:(v "CKI-BM"))
        (Report.Stats.reduction_pct ~from_:(v "PVM-BM") ~to_:(v "CKI-BM"))
        (Report.Stats.overhead_pct ~baseline:(v "RunC-BM") (v "CKI-BM")))
    rows

(* ------------------------------------------------------------------ *)
(* Figure 5: I/O-intensive applications, motivation                    *)
(* ------------------------------------------------------------------ *)

type io_app = { io_name : string; throughput : Virt.Backend.t -> float }

let io_apps () =
  [
    {
      io_name = "nginx (static)";
      throughput = (fun b -> Workloads.Webserver.run b Workloads.Webserver.Nginx_static ~requests:2_000);
    };
    {
      io_name = "nginx (proxy)";
      throughput = (fun b -> Workloads.Webserver.run b Workloads.Webserver.Nginx_proxy ~requests:2_000);
    };
    {
      io_name = "httpd";
      throughput = (fun b -> Workloads.Webserver.run b Workloads.Webserver.Httpd ~requests:2_000);
    };
    {
      io_name = "redis";
      throughput = (fun b -> Workloads.Kv.run_throughput b ~flavor:Workloads.Kv.Redis ~requests:3_000);
    };
    {
      io_name = "memcached";
      throughput = (fun b -> Workloads.Kv.run_throughput b ~flavor:Workloads.Kv.Memcached ~requests:3_000);
    };
    { io_name = "netperf (TX)"; throughput = (fun b -> Workloads.Netperf.run_tx b ~sends:3_000) };
    { io_name = "netperf (RR)"; throughput = (fun b -> Workloads.Netperf.run_rr b ~transactions:3_000) };
    {
      io_name = "sqlite (tmpfs)";
      throughput =
        (fun b -> (Workloads.Sqlite.run_pattern b Workloads.Sqlite.Fillseq ~ops:2_000).Workloads.Sqlite.ops_per_sec);
    };
  ]

let run_io_apps ~backends ~normalize_best =
  List.map
    (fun app ->
      let results =
        List.map
          (fun mk ->
            let b = mk () in
            (b.Virt.Backend.label, app.throughput b))
          backends
      in
      let results =
        if normalize_best then
          let best = List.fold_left (fun m (_, v) -> max m v) 1e-9 results in
          List.map (fun (l, v) -> (l, v /. best)) results
        else results
      in
      (app.io_name, results))
    (io_apps ())

let fig5 () =
  section "Figure 5: I/O-intensive applications, motivation (normalized throughput)";
  let backends =
    [ Backends.hvm_nst; Backends.pvm_nst; Backends.runc; (fun () -> Backends.hvm_bm ()); Backends.pvm_bm ]
  in
  let groups = run_io_apps ~backends ~normalize_best:true in
  Report.Figure.print
    (Report.Figure.grouped_bars ~title:"Figure 5" ~value_label:"throughput normalized to best" ~groups)

(* ------------------------------------------------------------------ *)
(* Figure 10: page-fault and syscall latency breakdowns                *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  section "Figure 10a: page fault latency breakdown (ns)";
  let cases =
    [
      ("HVM-NST", Backends.hvm_nst ());
      ("HVM-BM", Backends.hvm_bm ());
      ("PVM", Backends.pvm_bm ());
      ("CKI", Backends.cki_bm ());
      ("RunC", Backends.runc ());
    ]
  in
  List.iter
    (fun (name, b) ->
      let total, comps = Micro.pgfault_breakdown b in
      let comps_str =
        String.concat " + " (List.map (fun (e, v) -> Printf.sprintf "%s %.0f" e v) comps)
      in
      Printf.printf "  %-8s %8.0f ns  [%s]\n" name total comps_str)
    cases;
  section "Figure 10b: system call latency and CKI optimizations (ns)";
  let cases =
    [
      ("RunC", Backends.runc ());
      ("HVM", Backends.hvm_bm ());
      ("PVM", Backends.pvm_bm ());
      ("CKI-wo-OPT2", Backends.cki_wo_opt2 ());
      ("CKI-wo-OPT3", Backends.cki_wo_opt3 ());
      ("CKI", Backends.cki_bm ());
    ]
  in
  List.iter (fun (name, b) -> Printf.printf "  %-12s %6.0f ns\n" name (Micro.getpid_ns b)) cases

(* ------------------------------------------------------------------ *)
(* Figure 11: lmbench                                                  *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  section "Figure 11: container performance on lmbench (latency, normalized to worst)";
  let backends =
    [ ("RunC", Backends.runc ()); ("HVM", Backends.hvm_bm ()); ("CKI", Backends.cki_bm ()); ("PVM", Backends.pvm_bm ()) ]
  in
  let suites = List.map (fun (name, b) -> (name, Workloads.Lmbench.run_suite b)) backends in
  let groups =
    List.map
      (fun op ->
        let vals =
          List.map (fun (name, suite) -> (name, List.assoc op suite)) suites
        in
        let worst = List.fold_left (fun m (_, v) -> max m v) 1e-9 vals in
        ( Workloads.Lmbench.op_name op,
          List.map (fun (n, v) -> (n, v /. worst)) vals ))
      Workloads.Lmbench.all_ops
  in
  Report.Figure.print
    (Report.Figure.grouped_bars ~title:"Figure 11" ~value_label:"latency normalized to worst" ~groups);
  Printf.printf "\n  absolute latencies (ns):\n";
  List.iter
    (fun op ->
      Printf.printf "  %-12s" (Workloads.Lmbench.op_name op);
      List.iter
        (fun (name, suite) -> Printf.printf "  %s=%-9.0f" name (List.assoc op suite))
        suites;
      print_newline ())
    Workloads.Lmbench.all_ops

(* ------------------------------------------------------------------ *)
(* Figure 13: overhead sweeps (BTree ratio, XSBench particles)         *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  section "Figure 13: overhead of secure containers vs RunC (%)";
  let backend_mks =
    [
      ("HVM-NST", Backends.hvm_nst);
      ("HVM-BM", fun () -> Backends.hvm_bm ());
      ("PVM", Backends.pvm_bm);
      ("CKI", fun () -> Backends.cki_bm ());
    ]
  in
  (* (a) BTree: lookup : insert ratio sweep *)
  let ratios = [ 1; 2; 4; 8; 16 ] in
  let total_ops = 60_000 in
  let baseline =
    List.map
      (fun r -> Workloads.Btree.run_ratio (Backends.runc ()) ~total_ops ~lookup_per_insert:r)
      ratios
  in
  let series =
    List.map
      (fun (name, mk) ->
        ( name,
          List.map2
            (fun r base ->
              let v = Workloads.Btree.run_ratio (mk ()) ~total_ops ~lookup_per_insert:r in
              Report.Stats.overhead_pct ~baseline:base v)
            ratios baseline ))
      backend_mks
  in
  Report.Figure.print
    (Report.Figure.series ~title:"Figure 13a: BTree" ~x_label:"lookups per insert"
       ~y_label:"overhead vs RunC (%)"
       ~xs:(List.map float_of_int ratios)
       ~series);
  (* (b) XSBench: particle-count sweep *)
  let particles = [ 2_000; 10_000; 50_000; 250_000 ] in
  let gridpoints = 120_000 in
  let baseline =
    List.map (fun p -> Workloads.Xsbench.run (Backends.runc ()) ~gridpoints ~particles:p) particles
  in
  let series =
    List.map
      (fun (name, mk) ->
        ( name,
          List.map2
            (fun p base ->
              let v = Workloads.Xsbench.run (mk ()) ~gridpoints ~particles:p in
              Report.Stats.overhead_pct ~baseline:base v)
            particles baseline ))
      backend_mks
  in
  Report.Figure.print
    (Report.Figure.series ~title:"Figure 13b: XSBench" ~x_label:"particles"
       ~y_label:"overhead vs RunC (%)"
       ~xs:(List.map float_of_int particles)
       ~series)

(* ------------------------------------------------------------------ *)
(* Figures 14/15: SQLite                                               *)
(* ------------------------------------------------------------------ *)

let fig14 () =
  section "Figure 14: SQLite benchmark (throughput normalized to best; syscall frequency)";
  let backends =
    [
      ("PVM", Backends.pvm_bm);
      ("CKI", fun () -> Backends.cki_bm ());
      ("HVM", fun () -> Backends.hvm_bm ());
      ("RunC", Backends.runc);
    ]
  in
  let ops = 2_000 in
  let groups =
    List.map
      (fun p ->
        let results =
          List.map
            (fun (name, mk) ->
              let r = Workloads.Sqlite.run_pattern (mk ()) p ~ops in
              (name, r))
            backends
        in
        let best =
          List.fold_left (fun m (_, r) -> max m r.Workloads.Sqlite.ops_per_sec) 1e-9 results
        in
        let freq =
          match results with (_, r) :: _ -> r.Workloads.Sqlite.syscall_freq_per_sec /. 1e6 | [] -> 0.0
        in
        ( Printf.sprintf "%s (syscalls: %.2f M/s)" (Workloads.Sqlite.pattern_name p) freq,
          List.map (fun (n, r) -> (n, r.Workloads.Sqlite.ops_per_sec /. best)) results ))
      Workloads.Sqlite.all_patterns
  in
  Report.Figure.print
    (Report.Figure.grouped_bars ~title:"Figure 14" ~value_label:"throughput normalized to best" ~groups)

let fig15 () =
  section "Figure 15: syscall optimizations in CKI, SQLite overhead vs RunC (%)";
  let ops = 2_000 in
  let tbl =
    Report.Table.create ~title:"Figure 15 (paper: PVM up to 24%, CKI-wo-OPT2 up to 15%, CKI-wo-OPT3 up to 9%, CKI ~0%)"
      ~header:("pattern" :: [ "PVM"; "CKI-wo-OPT2"; "CKI-wo-OPT3"; "CKI" ])
  in
  List.iter
    (fun p ->
      let base = (Workloads.Sqlite.run_pattern (Backends.runc ()) p ~ops).Workloads.Sqlite.ops_per_sec in
      let ov mk =
        let r = (Workloads.Sqlite.run_pattern (mk ()) p ~ops).Workloads.Sqlite.ops_per_sec in
        (* overhead = throughput loss vs RunC *)
        100.0 *. (1.0 -. (r /. base))
      in
      Report.Table.add_row tbl
        [
          Workloads.Sqlite.pattern_name p;
          Printf.sprintf "%.0f" (ov Backends.pvm_bm);
          Printf.sprintf "%.0f" (ov Backends.cki_wo_opt2);
          Printf.sprintf "%.0f" (ov Backends.cki_wo_opt3);
          Printf.sprintf "%.0f" (ov (fun () -> Backends.cki_bm ()));
        ])
    Workloads.Sqlite.all_patterns;
  Report.Table.print tbl

(* ------------------------------------------------------------------ *)
(* Figure 16: key-value stores vs client count                         *)
(* ------------------------------------------------------------------ *)

let fig16 () =
  section "Figure 16: key-value store throughput vs clients (k ops/s)";
  let clients = [ 4; 8; 16; 32; 64; 128 ] in
  let backends =
    [
      ("HVM-NST", Backends.hvm_nst);
      ("PVM-BM", Backends.pvm_bm);
      ("PVM-NST", Backends.pvm_nst);
      ("CKI-BM", fun () -> Backends.cki_bm ());
      ("CKI-NST", fun () -> Backends.cki_nst ());
    ]
  in
  let run flavor =
    let series =
      List.map
        (fun (name, mk) ->
          ( name,
            List.map
              (fun c -> Workloads.Kv.run_memtier (mk ()) ~flavor ~clients:c ~requests:2_000 /. 1e3)
              clients ))
        backends
    in
    Report.Figure.print
      (Report.Figure.series
         ~title:(Printf.sprintf "Figure 16: %s" (Workloads.Kv.show_flavor flavor))
         ~x_label:"clients" ~y_label:"k ops/s"
         ~xs:(List.map float_of_int clients)
         ~series);
    (* headline ratios at 64 clients *)
    let at name = List.nth (List.assoc name series) 4 in
    Printf.printf
      "  at 64 clients: CKI-NST/HVM-NST = %.1fx, CKI-BM/PVM-BM = %.2fx, CKI-NST/PVM-NST = %.2fx\n"
      (at "CKI-NST" /. at "HVM-NST")
      (at "CKI-BM" /. at "PVM-BM")
      (at "CKI-NST" /. at "PVM-NST")
  in
  run Workloads.Kv.Memcached;
  run Workloads.Kv.Redis

(* ------------------------------------------------------------------ *)
(* Security experiment (Sections 4 & 6): the attack suite              *)
(* ------------------------------------------------------------------ *)

let security () =
  section "Security: container-escape / DoS attack suite (Sections 4 & 6)";
  let c = Cki.Container.create_standalone () in
  let results = Cki.Attacks.all c in
  List.iter
    (fun (name, outcome) ->
      Printf.printf "  %-28s %s\n" name
        (match outcome with
        | Cki.Attacks.Blocked m -> "BLOCKED by " ^ m
        | Cki.Attacks.Succeeded -> "*** SUCCEEDED (isolation violated) ***"))
    results;
  let blocked = List.length (List.filter (fun (_, o) -> Cki.Attacks.is_blocked o) results) in
  Printf.printf "  => %d/%d attacks blocked\n" blocked (List.length results)

(* ------------------------------------------------------------------ *)
(* CPU quotas: aggressive cpu.max degrades p99 superlinearly           *)
(* ------------------------------------------------------------------ *)

(* A single replica (autoscaling pinned to one) under a fixed 40k rps
   open-loop load, swept across cgroup-style CPU budgets.  The offered
   work rate is ~9.5% of a CPU (about 2.3 us/request), so budgets
   above that leave latency untouched while budgets below it stack
   throttled windows into the queue: a 1.25x budget cut past the work
   rate multiplies p99 by orders of magnitude, tail first (p50 holds
   until the backlog never drains).  The classic argument against
   aggressive quotas on latency-sensitive containers, and the signal
   the fleet autoscaler keys on. *)
let quota () =
  section "CPU quotas (cgroup cpu.max): p99 vs per-replica budget";
  let run_budget budget =
    let tenant =
      {
        Fleet.Controller.default_tenant with
        Fleet.Controller.name = "quota";
        rate_rps = 40_000.0;
        requests = 6_000;
      }
    in
    let cfg =
      {
        Fleet.Controller.default_config with
        Fleet.Controller.tenants = [ tenant ];
        autoscaler =
          { Fleet.Autoscaler.default_config with Fleet.Autoscaler.min_replicas = 1; max_replicas = 1 };
        cpu_quota = Option.map (fun b -> (1_000_000.0, b *. 1_000_000.0)) budget;
      }
    in
    List.hd (Fleet.Controller.run cfg).Fleet.Controller.tenants
  in
  let uncapped = run_budget None in
  let budgets = [ 0.40; 0.20; 0.10; 0.09; 0.085; 0.08 ] in
  let rows = List.map (fun b -> (b, run_budget (Some b))) budgets in
  let tbl =
    Report.Table.create ~title:"40k rps (~10% of a CPU of work) against one quota-capped replica"
      ~header:[ "cpu.max budget"; "p50 us"; "p99 us"; "p99 vs uncapped"; "budget cut"; "throttles" ]
  in
  let open Fleet.Controller in
  Report.Table.add_row tbl
    [
      "uncapped";
      Printf.sprintf "%.1f" uncapped.tr_p50_us;
      Printf.sprintf "%.1f" uncapped.tr_p99_us;
      "1.0x";
      "1.0x";
      string_of_int uncapped.tr_throttle_events;
    ];
  List.iter
    (fun (b, tr) ->
      Report.Table.add_row tbl
        [
          Printf.sprintf "%g%%" (100.0 *. b);
          Printf.sprintf "%.1f" tr.tr_p50_us;
          Printf.sprintf "%.1f" tr.tr_p99_us;
          Printf.sprintf "%.1fx" (tr.tr_p99_us /. uncapped.tr_p99_us);
          Printf.sprintf "%.1fx" (1.0 /. b);
          string_of_int tr.tr_throttle_events;
        ])
    rows;
  Report.Table.print tbl;
  let p99_of b = (List.assoc b rows).tr_p99_us in
  Printf.printf
    "  tightening the budget 10%% -> 8%% (a %.2fx cut) multiplies p99 by %.0fx — superlinear %s\n"
    (0.10 /. 0.08)
    (p99_of 0.08 /. p99_of 0.10)
    (if p99_of 0.08 /. p99_of 0.10 > 2.0 *. (0.10 /. 0.08) then "OK" else "(expected >2x the cut)")

(* ------------------------------------------------------------------ *)
(* Ablations of DESIGN.md's design choices + Section 9 future work     *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation 1: Design-PKS vs Design-PKU (Section 3.1)";
  let pf cfg =
    let b = Backends.cki ~cfg () in
    Micro.pgfault_ns ~pages:1024 b
  in
  let pks = pf Cki.Config.default in
  let pku = pf Cki.Config.pku_design in
  Printf.printf "  page fault: Design-PKS %.0f ns, Design-PKU %.0f ns (+%.0f ns ring-crossing injection)\n"
    pks pku (pku -. pks);

  section "Ablation 2: eliding PTI/IBRS from the KSM gate (Section 3.3)";
  let without = pf Cki.Config.default in
  let with_pti = pf { Cki.Config.default with Cki.Config.pti_in_gates = true } in
  Printf.printf "  page fault: no-PTI gate %.0f ns, PTI+IBRS gate %.0f ns (saving %.0f ns/fault)\n"
    without with_pti (with_pti -. without);

  section "Ablation 3: emulating PVM syscall latency on CKI (Section 7.3)";
  let thr cfg =
    let b = Backends.cki ~cfg () in
    Workloads.Kv.run_memtier b ~flavor:Workloads.Kv.Memcached ~clients:32 ~requests:2_000
  in
  let native = thr Cki.Config.default in
  let emul = thr { Cki.Config.default with Cki.Config.emulate_pvm_syscall = true } in
  Printf.printf "  memcached: CKI %.1f k ops/s, CKI+PVM-syscalls %.1f k ops/s (-%.1f%%)\n"
    (native /. 1e3) (emul /. 1e3)
    (100.0 *. (1.0 -. (emul /. native)));

  section "Extension 1: ring-0 driver sandboxing vs microkernel IPC (Section 9)";
  let machine = Hw.Machine.create ~mem_mib:64 () in
  let registry = Cki.Driver_sandbox.create_registry machine in
  let drv = Cki.Driver_sandbox.load registry ~name:"e1000" ~heap_pages:16 in
  let clock = Hw.Machine.clock machine in
  let n = 10_000 in
  let t0 = Hw.Clock.now clock in
  for _ = 1 to n do
    match Cki.Driver_sandbox.invoke drv (fun d -> Cki.Driver_sandbox.heap_write d 0xd000_0000_0000) with
    | Ok () -> ()
    | Error _ -> failwith "driver died"
  done;
  let pks_gate = (Hw.Clock.now clock -. t0) /. float_of_int n in
  let t1 = Hw.Clock.now clock in
  for _ = 1 to n do
    Cki.Driver_sandbox.invoke_microkernel_style drv (fun _ -> ())
  done;
  let ipc = (Hw.Clock.now clock -. t1) /. float_of_int n in
  Printf.printf "  driver call: PKS domain gate %.1f ns vs ring-3 IPC %.1f ns (%.1fx)\n" pks_gate ipc
    (ipc /. pks_gate);

  section "Extension 2: kernel-level syscall elision (Section 9)";
  let normal = Backends.cki () in
  let inkernel = Cki.Kernel_app.wrap_backend (Backends.cki ()) in
  let ops = 2_000 in
  let t_norm =
    (Workloads.Sqlite.run_pattern normal Workloads.Sqlite.Fillseq ~ops).Workloads.Sqlite.ops_per_sec
  in
  let t_ink =
    (Workloads.Sqlite.run_pattern (Cki.Kernel_app.backend inkernel) Workloads.Sqlite.Fillseq ~ops)
      .Workloads.Sqlite.ops_per_sec
  in
  Printf.printf "  sqlite fillseq: user-space %.1f k ops/s, in-kernel app %.1f k ops/s (+%.1f%%)\n"
    (t_norm /. 1e3) (t_ink /. 1e3)
    (100.0 *. ((t_ink /. t_norm) -. 1.0))

let all =
  [
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("fig2", fig2);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("security", security);
    ("quota", quota);
    ("ablation", ablation);
  ]
