.PHONY: all build test check examples clean

all: build

build:
	dune build @all

test: build
	dune runtest

# Full verification: build, test suite, then every example scenario and
# the demo subcommands under --check (whole-machine invariant scan +
# probe-trace lint; any finding is a non-zero exit).
check: test examples
	dune exec bin/cki_demo.exe -- micro --check
	dune exec bin/cki_demo.exe -- attack --check
	dune exec bin/cki_demo.exe -- kv --check --clients 8

examples: build
	dune exec examples/quickstart.exe
	dune exec examples/security_attacks.exe
	dune exec examples/nested_cloud.exe
	dune exec examples/sqlite_tmpfs.exe
	dune exec examples/kv_serving.exe

clean:
	dune clean
