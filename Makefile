.PHONY: all build test check examples ci fmt mutants lint-src race-check bench-json validate-bench clean

all: build

build:
	dune build @all

test: build
	dune runtest

# Full verification: build, test suite, then every example scenario and
# the demo subcommands under --check (whole-machine invariant scan +
# probe-trace lint; any finding is a non-zero exit), the static source
# audit, the domain-race sanitizer, and a bounded model-check of the
# privilege state space (exit 2 on counterexample).
check: test examples lint-src race-check
	dune exec bin/cki_demo.exe -- micro --check
	dune exec bin/cki_demo.exe -- attack --check
	dune exec bin/cki_demo.exe -- kv --check --clients 8
	dune exec bin/cki_demo.exe -- serve --check --containers 2 --requests 50
	dune exec bin/cki_demo.exe -- clone --check
	dune exec bin/cki_demo.exe -- fleet --check --tenants 2 --rate 45000 -r 2000
	dune exec bin/cki_demo.exe -- migrate --check --chaos
	dune exec bin/cki_demo.exe -- model-check --depth 8

# Mutation testing: every seeded enforcement mutant must be killed by
# the model checker (exit 1 if any survives).
mutants: build
	dune exec bin/cki_demo.exe -- model-check --mutants

# Static source audit: TCB write-sink containment, layering DAG,
# domain-safety inventory, hygiene.  Exit 2 on any finding not covered
# by srclint.baseline.
lint-src: build
	dune exec bin/cki_demo.exe -- lint-src

# Domain-race sanitizer: the static interprocedural sharing analysis
# over every Domain.spawn closure plus a sharded serve run under the
# dynamic cross-domain access checker (including the --inject
# self-test, run separately because its seeded race makes race-check
# itself exit 2).  Exit 2 on any finding.
race-check: build
	dune exec bin/cki_demo.exe -- race-check
	dune exec bin/cki_demo.exe -- race-check --inject; test $$? -eq 2

# Regenerate every checked-in benchmark artifact (BENCH_*.json) in the
# repo root.  Each bench writes its file into the current directory.
bench-json: build
	dune exec bench/main.exe -- --json snapshot modelcheck ioplane fleet migration srclint racecheck engine micro
	$(MAKE) validate-bench

# Parse every checked-in BENCH_*.json with the in-repo JSON parser
# (Report.Json.parse); exit non-zero if any artifact is malformed.
validate-bench: build
	dune exec bench/main.exe -- validate

# Formatting check; a no-op (with a note) where ocamlformat is not
# installed, so `ci` works in minimal containers too.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

# The pre-PR gate: formatting (when available), the full test suite,
# then the example/demo scenarios under the invariant scanner.
ci: build fmt
	dune runtest
	$(MAKE) check
	$(MAKE) validate-bench

examples: build
	dune exec examples/quickstart.exe
	dune exec examples/security_attacks.exe
	dune exec examples/nested_cloud.exe
	dune exec examples/sqlite_tmpfs.exe
	dune exec examples/kv_serving.exe
	dune exec examples/traffic_serving.exe
	dune exec examples/fleet_autoscale.exe
	dune exec examples/live_migration.exe

clean:
	dune clean
