(* Test entry point: all suites. *)

let () =
  Alcotest.run "cki-repro"
    (Test_hw_mem.suite @ Test_hw_cpu.suite @ Test_kernel.suite @ Test_virt.suite @ Test_cki.suite
   @ Test_workloads.suite @ Test_extensions.suite @ Test_integration.suite @ Test_depth.suite
   @ Test_param.suite @ Test_analysis.suite @ Test_snapshot.suite @ Test_ioplane.suite
   @ Test_policy.suite @ Test_modelcheck.suite @ Test_srclint.suite @ Test_engine.suite
   @ Test_fleet.suite @ Test_migrate.suite @ Test_racecheck.suite)
