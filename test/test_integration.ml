(* Cross-module integration tests: many-container scalability
   (Challenge 1), segment fragmentation (the paper's acknowledged
   limitation), huge-page mappings through the KSM, gate stress, and
   end-to-end figure-shape invariants. *)

open Alcotest

let check_int = check int
let check_bool = check bool

(* Challenge 1: PKS offers 16 domains, yet CKI must host dozens of
   containers.  Because each container needs only 2 domains in its own
   address space, the number of containers is unbounded by keys.  Boot
   20 containers on one host and exercise each. *)
let test_more_containers_than_pks_domains () =
  Analysis.checked ~label:"20-containers" @@ fun () ->
  let machine = Hw.Machine.create ~cpus:8 ~mem_mib:640 () in
  let host = Cki.Host.create machine in
  let cfg = { Cki.Config.default with Cki.Config.segment_frames = 1536; vcpus = 1 } in
  let containers = List.init 20 (fun _ -> Cki.Container.create ~cfg host) in
  check_int "20 containers" 20 (List.length containers);
  check_bool "more than PKS keys" true (List.length containers > Hw.Pks.num_keys);
  (* every container works: syscall + fault + hypercall *)
  List.iter
    (fun c ->
      let b = Cki.Container.backend c in
      let task = Virt.Backend.spawn b in
      (match Virt.Backend.syscall_exn b task Kernel_model.Syscall.Getpid with
      | Kernel_model.Syscall.Rint _ -> ()
      | _ -> fail "getpid");
      let base =
        match
          Virt.Backend.syscall_exn b task
            (Kernel_model.Syscall.Mmap { pages = 8; prot = Kernel_model.Vma.prot_rw })
        with
        | Kernel_model.Syscall.Rint v -> v
        | _ -> fail "mmap"
      in
      ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages:8 ~write:true);
      b.Virt.Backend.empty_hypercall ())
    containers;
  (* all PCIDs distinct *)
  let pcids = List.map Cki.Container.pcid containers in
  check_int "distinct pcids" 20 (List.length (List.sort_uniq compare pcids));
  (* all segments disjoint *)
  let segs =
    List.concat_map
      (fun c -> Cki.Host.delegations_of host ~container:(Cki.Container.container_id c))
      containers
  in
  let sorted = List.sort (fun a b -> compare a.Cki.Host.base b.Cki.Host.base) segs in
  let rec disjoint = function
    | a :: (b :: _ as rest) -> a.Cki.Host.base + a.Cki.Host.frames <= b.Cki.Host.base && disjoint rest
    | [ _ ] | [] -> true
  in
  check_bool "segments disjoint" true (disjoint sorted);
  ((), containers)

(* The fragmentation limitation: after tearing down interleaved
   containers, a larger segment may be unplaceable even though total
   free memory suffices. *)
let test_segment_fragmentation () =
  let machine = Hw.Machine.create ~cpus:2 ~mem_mib:64 () in
  let mem = Hw.Machine.mem machine in
  (* fill memory completely with alternating 2048-frame container/host
     stripes (64 MiB = 16384 frames = 8 stripes) *)
  let stripes =
    List.init 8 (fun i ->
        let owner = if i mod 2 = 0 then Hw.Phys_mem.Container (100 + i) else Hw.Phys_mem.Host in
        Hw.Phys_mem.alloc_contiguous mem ~owner ~kind:Hw.Phys_mem.Data ~count:2048)
  in
  ignore stripes;
  (* free the container stripes: >6000 frames free, but max run = 2048 *)
  List.iteri
    (fun i base -> if i mod 2 = 0 then Hw.Phys_mem.free_range mem ~base ~count:2048)
    stripes;
  check_bool "plenty free" true (Hw.Phys_mem.free_frames mem > 6000);
  check_raises "no contiguous 4096 run" Hw.Phys_mem.Out_of_memory (fun () ->
      ignore (Hw.Phys_mem.alloc_contiguous mem ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data ~count:4096));
  (* a segment that fits a stripe still works *)
  ignore (Hw.Phys_mem.alloc_contiguous mem ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data ~count:2048)

(* KSM validates 2 MiB leaf mappings at level 2. *)
let test_ksm_huge_mapping () =
  Analysis.checked ~label:"huge-mapping" @@ fun () ->
  let c = Cki.Container.create_standalone ~mem_mib:160 () in
  let ksm = Cki.Container.ksm c in
  let buddy = Cki.Container.buddy c in
  let root = Cki.Ksm.kernel_root ksm in
  let huge_frame = Kernel_model.Buddy.alloc_huge buddy in
  let flags = { Hw.Pte.default_flags with user = true; nx = true; huge = true } in
  (match
     Cki.Ksm.guest_map ksm ~root ~va:0x4000_0000 ~pfn:huge_frame ~flags
       ~alloc_ptp:(fun () -> Kernel_model.Buddy.alloc buddy)
   with
  | Ok () -> ()
  | Error e -> fail (Cki.Ksm.show_error e));
  let mem = Hw.Machine.mem (Cki.Host.machine c.Cki.Container.host) in
  let pt = Hw.Page_table.of_root mem root in
  let w = Hw.Page_table.walk pt (0x4000_0000 + 0x5000) in
  check_int "huge leaf" 2 w.Hw.Page_table.leaf_level;
  check_int "frame" huge_frame (Hw.Pte.pfn w.Hw.Page_table.pte);
  (* a huge mapping of KSM memory is still rejected *)
  (match
     Cki.Ksm.guest_map ksm ~root ~va:Cki.Layout.ksm_base ~pfn:huge_frame ~flags
       ~alloc_ptp:(fun () -> Kernel_model.Buddy.alloc buddy)
   with
  | Error (Cki.Ksm.Reserved_range _) -> ()
  | _ -> fail "huge mapping must be validated too");
  ((), [ c ])

(* Gate stress: thousands of interleaved KSM calls / hypercalls /
   interrupts leave CPU state exactly restored. *)
let test_gate_stress () =
  Analysis.checked ~label:"gate-stress" @@ fun () ->
  let c = Cki.Container.create_standalone ~mem_mib:160 () in
  let cpu = Cki.Container.cpu c 0 in
  Cki.Container.enter_guest_kernel cpu;
  let gates = Cki.Container.gates c in
  let cr3 = cpu.Hw.Cpu.cr3 in
  for i = 1 to 2_000 do
    (match i mod 3 with
    | 0 -> (
        match Cki.Gates.ksm_call gates cpu ~vcpu:0 (fun () -> i) with
        | Ok v -> if v <> i then fail "wrong result"
        | Error e -> fail (Cki.Gates.show_error e))
    | 1 -> (
        match
          Cki.Gates.hypercall gates cpu ~vcpu:0 ~request:Kernel_model.Platform.Timer (fun _ -> ())
        with
        | Ok () -> ()
        | Error e -> fail (Cki.Gates.show_error e))
    | _ -> (
        match
          Cki.Gates.interrupt gates cpu ~vcpu:0 ~vector:Hw.Idt.vec_timer ~kind:Hw.Idt.Hardware
            (fun _ -> ())
        with
        | Ok () -> ()
        | Error e -> fail (Cki.Gates.show_error e)))
  done;
  check_int "PKRS restored" Hw.Pks.pkrs_guest cpu.Hw.Cpu.pkrs;
  check_int "CR3 restored" cr3 cpu.Hw.Cpu.cr3;
  check_bool "no saved PKRS leaked" true (cpu.Hw.Cpu.saved_pkrs = []);
  let area = Cki.Pervcpu.area (Cki.Ksm.pervcpu (Cki.Container.ksm c)) 0 in
  check_int "secure stack balanced" 0 area.Cki.Pervcpu.stack_depth;
  ((), [ c ])

(* End-to-end shape invariant: on every memory-intensive app, the
   normalized ordering of the paper's Figure 12 holds. *)
let test_fig12_ordering () =
  Analysis.checked ~label:"fig12" @@ fun () ->
  let machine () = Hw.Machine.create ~cpus:2 ~mem_mib:512 () in
  let app b = Workloads.Parsec.run b Workloads.Parsec.dedup in
  let runc = app (Virt.Runc.create (machine ())) in
  let cki_container =
    Cki.Container.create_standalone
      ~cfg:{ Cki.Config.default with Cki.Config.segment_frames = 65536 }
      ~mem_mib:512 ()
  in
  let cki = app (Cki.Container.backend cki_container) in
  let hvm = app (Virt.Hvm.create (machine ())) in
  let pvm = app (Virt.Pvm.create (machine ())) in
  let hvm_nst = app (Virt.Hvm.create ~env:Virt.Env.Nested (machine ())) in
  check_bool "RunC <= CKI" true (runc <= cki);
  check_bool "CKI < HVM-BM" true (cki < hvm);
  check_bool "CKI < PVM" true (cki < pvm);
  check_bool "everything < HVM-NST" true (max (max hvm pvm) cki < hvm_nst);
  check_bool "CKI within 3% of RunC" true ((cki -. runc) /. runc < 0.03);
  ((), [ cki_container ])

(* Syscall-heavy end-to-end: a process writes 1 MiB through 1-KiB
   writes on each backend; CKI==RunC, PVM pays per syscall. *)
let test_write_loop_totals () =
  Analysis.checked ~label:"write-loop" @@ fun () ->
  let run (b : Virt.Backend.t) =
    let task = Virt.Backend.spawn b in
    let fd =
      match
        Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Open { path = "/out"; create = true })
      with
      | Kernel_model.Syscall.Rint fd -> fd
      | _ -> fail "open"
    in
    let chunk = Bytes.create 1024 in
    Virt.Backend.time b (fun () ->
        for _ = 1 to 1024 do
          ignore (Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Write { fd; data = chunk }))
        done)
  in
  let runc = run (Virt.Runc.create (Hw.Machine.create ~mem_mib:64 ())) in
  let cki_container = Cki.Container.create_standalone ~mem_mib:160 () in
  let cki = run (Cki.Container.backend cki_container) in
  let pvm = run (Virt.Pvm.create (Hw.Machine.create ~mem_mib:64 ())) in
  check_bool "CKI within 1% of RunC" true (Float.abs (cki -. runc) /. runc < 0.01);
  let extra = (pvm -. runc) /. 1024.0 in
  check_bool "PVM pays ~243ns per write" true (Float.abs (extra -. 243.0) < 10.0);
  ((), [ cki_container ])

let suite =
  [
    ( "integration",
      [
        test_case "20 containers > 16 PKS domains (Challenge 1)" `Quick
          test_more_containers_than_pks_domains;
        test_case "segment fragmentation limitation" `Quick test_segment_fragmentation;
        test_case "KSM-validated 2 MiB mappings" `Quick test_ksm_huge_mapping;
        test_case "gate stress: state restored" `Quick test_gate_stress;
        test_case "Figure 12 ordering invariant" `Quick test_fig12_ordering;
        test_case "write-loop totals per backend" `Quick test_write_loop_totals;
      ] );
  ]
