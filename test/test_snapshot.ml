(* The snapshot/restore/warm-clone subsystem.

   The anchor test is determinism: capture -> restore -> capture must
   be byte-identical even though every frame moved.  Around it: CoW
   divergence on clones, cross-machine relocation, corrupted-image
   rejection, the Cow_writable invariant rule, warm-pool accounting,
   Buddy.reserve, and the ISSUE's acceptance ratios. *)

open Alcotest

let cfg = { Cki.Config.default with Cki.Config.segment_frames = 8192 (* 32 MiB *) }

let mk_host ?(mem_mib = 256) () = Cki.Host.create (Hw.Machine.create ~mem_mib ())

(* Boot a container with real state: a task with dirty heap pages and
   a tmpfs config file held open. *)
let boot_ready ?(pages = 64) host =
  let c = Cki.Container.create ~cfg host in
  let b = Cki.Container.backend c in
  let task = Virt.Backend.spawn b in
  (match
     Virt.Backend.syscall_exn b task
       (Kernel_model.Syscall.Mmap { pages; prot = Kernel_model.Vma.prot_rw })
   with
  | Kernel_model.Syscall.Rint base ->
      ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages ~write:true)
  | _ -> fail "mmap");
  (match
     Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Open { path = "/app.conf"; create = true })
   with
  | Kernel_model.Syscall.Rint fd ->
      ignore
        (Virt.Backend.syscall_exn b task
           (Kernel_model.Syscall.Write { fd; data = Bytes.of_string "threads=4\ncache=64M\n" }))
  | _ -> fail "open");
  c

let capture_exn c =
  match Snapshot.Capture.capture c with
  | Ok image -> image
  | Error e -> fail ("capture: " ^ Snapshot.Capture.show_error e)

let restore_exn host image =
  match Snapshot.Restore.restore host image with
  | Ok c -> c
  | Error e -> fail ("restore: " ^ Snapshot.Restore.show_error e)

let template_exn c =
  match Snapshot.Template.create c with
  | Ok t -> t
  | Error e -> fail ("template: " ^ Snapshot.Template.show_error e)

let clone_exn tpl =
  match Snapshot.Template.clone tpl with
  | Ok c -> c
  | Error e -> fail ("clone: " ^ Snapshot.Template.show_error e)

let first_task (c : Cki.Container.t) =
  match Kernel_model.Kernel.tasks c.Cki.Container.backend.Virt.Backend.kernel with
  | t :: _ -> t
  | [] -> fail "no tasks"

(* ------------------------------------------------------------------ *)

(* capture∘restore∘capture is byte-identical: every frame relocated,
   nothing else changed. *)
let test_roundtrip_byte_identical () =
  let host = mk_host () in
  let c0 = boot_ready host in
  let img0 = capture_exn c0 in
  let enc0 = Snapshot.Image.encode img0 in
  (match Snapshot.Image.decode enc0 with
  | Ok img -> check string "decode∘encode is the identity" enc0 (Snapshot.Image.encode img)
  | Error e -> fail (Snapshot.Image.show_decode_error e));
  let c1 = restore_exn host img0 in
  (* Different segment: the restore really relocated. *)
  check bool "restored into a different segment" false
    (Cki.Ksm.segments (Cki.Container.ksm c0) = Cki.Ksm.segments (Cki.Container.ksm c1));
  let enc1 = Snapshot.Image.encode (capture_exn c1) in
  check string "re-capture after restore is byte-identical" enc0 enc1

(* Clone-then-write: CoW pages diverge one at a time; the template is
   untouched; both stay clean under the scanner. *)
let test_clone_cow_divergence () =
  let host = mk_host () in
  let c0 = boot_ready host in
  let mem = Hw.Machine.mem (Cki.Host.machine host) in
  let tpl = template_exn c0 in
  let clone = clone_exn tpl in
  let mm = (first_task clone).Kernel_model.Task.mm in
  let tpl_mm = (first_task (Snapshot.Template.container tpl)).Kernel_model.Task.mm in
  let cow0 = Kernel_model.Mm.cow_count mm in
  check bool "clone starts with CoW pages" true (cow0 = 64);
  check int "resident pages all CoW-shared" (Kernel_model.Mm.resident_pages mm) cow0;
  (* Capturing a clone with pending CoW is refused. *)
  (match Snapshot.Capture.capture clone with
  | Error (Snapshot.Capture.Cow_pending _) -> ()
  | Ok _ -> fail "capture of CoW-pending clone must fail"
  | Error e -> fail ("unexpected capture error: " ^ Snapshot.Capture.show_error e));
  let va = Kernel_model.Mm.user_mmap_base in
  let vpn = Hw.Addr.vpn_of_va va in
  check bool "first page is CoW before the write" true (Kernel_model.Mm.is_cow mm vpn);
  let shared_before = ref (-1) in
  Kernel_model.Mm.iter_pages mm (fun v p -> if v = vpn then shared_before := p);
  Kernel_model.Mm.touch mm va ~write:true;
  check int "one CoW page broken" (cow0 - 1) (Kernel_model.Mm.cow_count mm);
  check bool "page no longer CoW" false (Kernel_model.Mm.is_cow mm vpn);
  let own = ref (-1) in
  Kernel_model.Mm.iter_pages mm (fun v p -> if v = vpn then own := p);
  check bool "write materialized a private frame" false (!own = !shared_before);
  check bool "template frame still pinned shared" true (Hw.Phys_mem.is_shared_ro mem !shared_before);
  (* Template's own page table still references its own frame. *)
  let tpl_pfn = ref (-1) in
  Kernel_model.Mm.iter_pages tpl_mm (fun v p -> if v = vpn then tpl_pfn := p);
  check int "template mapping untouched" !shared_before !tpl_pfn;
  check int "clone clean after divergence" 0
    (List.length (Analysis.check_machine ~containers:[ clone ]));
  check int "template clean after divergence" 0
    (List.length (Analysis.check_machine ~containers:[ Snapshot.Template.container tpl ]))

(* Restore onto a different machine whose free memory starts elsewhere:
   every hPA is relocated, state survives. *)
let test_cross_machine_restore () =
  let host1 = mk_host () in
  let c0 = boot_ready host1 in
  let base0 = List.hd (Cki.Ksm.segments (Cki.Container.ksm c0)) |> fst in
  let image = capture_exn c0 in
  let host2 = mk_host ~mem_mib:512 () in
  (* Shift host2's first-fit cursor so the segment cannot land at the
     same base. *)
  ignore
    (Cki.Host.delegate_segment host2 ~container:(Cki.Host.fresh_container_id host2) ~frames:160);
  let c1 = restore_exn host2 image in
  let base1 = List.hd (Cki.Ksm.segments (Cki.Container.ksm c1)) |> fst in
  check bool "segment relocated" false (base0 = base1);
  let task = first_task c1 in
  check int "heap pages resident" 64 (Kernel_model.Mm.resident_pages task.Kernel_model.Task.mm);
  (* File contents and the open descriptor survived. *)
  let fs = Kernel_model.Kernel.fs c1.Cki.Container.backend.Virt.Backend.kernel in
  let inode = Kernel_model.Tmpfs.resolve fs "/app.conf" in
  check string "tmpfs contents survive relocation" "threads=4\ncache=64M\n"
    (Bytes.to_string (Kernel_model.Tmpfs.read fs inode ~off:0 ~n:(Kernel_model.Tmpfs.size inode)));
  (match Kernel_model.Task.fd task 3 with
  | Some (Kernel_model.Task.File f) ->
      check int "fd position survives" (String.length "threads=4\ncache=64M\n")
        f.Kernel_model.Task.pos
  | _ -> fail "captured fd missing");
  (* The restored guest still works: grow the heap through the full
     KSM-mediated fault path. *)
  let grown =
    Kernel_model.Mm.touch_range task.Kernel_model.Task.mm
      ~start:(Kernel_model.Mm.user_mmap_base + (64 * Hw.Addr.page_size))
      ~pages:0 ~write:false
  in
  check int "restored mm usable" 0 grown;
  check int "cross-machine restore clean" 0 (List.length (Analysis.check_machine ~containers:[ c1 ]))

let test_corrupted_image_rejected () =
  let host = mk_host () in
  let image = capture_exn (boot_ready host) in
  let enc = Snapshot.Image.encode image in
  let expect name want s =
    match Snapshot.Image.decode s with
    | Error e ->
        check string name want (Snapshot.Image.show_decode_error e |> String.split_on_char ' ' |> List.hd)
    | Ok _ -> fail (name ^ ": corrupted image accepted")
  in
  (* Flip one payload byte: checksum catches it. *)
  let flipped = Bytes.of_string enc in
  let i = String.length enc - 2 in
  Bytes.set flipped i (if Bytes.get flipped i = '0' then '1' else '0');
  expect "bit flip" "checksum" (Bytes.to_string flipped);
  (* Truncate mid-payload but with a matching checksum: structural
     parse must still refuse. *)
  let lines = String.split_on_char '\n' enc in
  let header = List.filteri (fun i _ -> i < 1) lines in
  let payload = List.filteri (fun i _ -> i >= 2) lines in
  let cut =
    List.filteri (fun i _ -> i < List.length payload / 2) payload |> String.concat "\n"
  in
  let rebuilt =
    String.concat "\n"
      (header @ [ Printf.sprintf "checksum %016Lx" (Snapshot.Image.fnv1a64 cut); cut ])
  in
  expect "truncation" "truncated" rebuilt;
  (* Version skew and bad magic. *)
  let swap_first_line repl =
    match String.index_opt enc '\n' with
    | Some i -> repl ^ String.sub enc i (String.length enc - i)
    | None -> fail "no newline"
  in
  expect "version skew" "unsupported" (swap_first_line "CKI-SNAPSHOT v99");
  expect "bad magic" "bad" (swap_first_line "NOT-A-SNAPSHOT v1");
  (* And the file loader surfaces missing files as Truncated. *)
  match Snapshot.Image.read_file "/nonexistent/image.ckisnap" with
  | Error _ -> ()
  | Ok _ -> fail "read_file of missing path succeeded"

(* Fault injection: forge a writable PTE onto a CoW-shared frame behind
   the monitor's back; the scanner must name it. *)
let test_cow_writable_detected () =
  let host = mk_host () in
  let c0 = boot_ready host in
  let mem = Hw.Machine.mem (Cki.Host.machine host) in
  let tpl = template_exn c0 in
  let clone = clone_exn tpl in
  let mm = (first_task clone).Kernel_model.Task.mm in
  let va = Kernel_model.Mm.user_mmap_base in
  let root =
    match Hashtbl.find_opt clone.Cki.Container.aspaces (Kernel_model.Mm.aspace mm) with
    | Some r -> r
    | None -> fail "clone aspace root"
  in
  (* Walk to the leaf by hand and set the write bit raw. *)
  let rec walk pfn lvl =
    let e = Hw.Phys_mem.read_entry mem ~pfn ~index:(Hw.Addr.index_at_level ~lvl va) in
    if lvl = 1 then (pfn, e) else walk (Hw.Pte.pfn e) (lvl - 1)
  in
  let l1, leaf = walk root 4 in
  check bool "leaf is CoW-shared and read-only" false (Hw.Pte.is_writable leaf);
  Hw.Phys_mem.write_entry mem ~pfn:l1 ~index:(Hw.Addr.index_at_level ~lvl:1 va)
    (Hw.Pte.with_writable leaf true);
  let violations = Analysis.check_machine ~containers:[ clone ] in
  check bool "scanner flags the forged writable CoW mapping" true
    (List.exists
       (fun v -> Analysis.Invariants.rule_name v = "cow-writable-leaf")
       violations)

let test_warm_pool_counts () =
  let host = mk_host ~mem_mib:512 () in
  let boots = ref 0 in
  let make () =
    incr boots;
    template_exn (boot_ready host)
  in
  let pool = Snapshot.Pool.create ~target:2 ~make () in
  check int "pool pre-boots to target" 2 (Snapshot.Pool.prebooted pool);
  check int "pool size" 2 (Snapshot.Pool.size pool);
  check int "no clones served yet" 0 (Snapshot.Pool.served pool);
  for _ = 1 to 3 do
    match Snapshot.Pool.spawn_fast pool with
    | Ok _ -> ()
    | Error e -> fail (Snapshot.Template.show_error e)
  done;
  check int "three clones served" 3 (Snapshot.Pool.served pool);
  check int "templates are rotated, not consumed" 2 (Snapshot.Pool.size pool);
  check int "no extra boots beyond the target" 2 !boots

let test_buddy_reserve () =
  let b = Kernel_model.Buddy.create ~base:1000 ~frames:64 in
  Kernel_model.Buddy.reserve b 1008 3;
  Kernel_model.Buddy.reserve b 1000 0;
  check bool "reserved blocks recorded" true
    (List.mem (1008, 3) (Kernel_model.Buddy.allocated_blocks b)
    && List.mem (1000, 0) (Kernel_model.Buddy.allocated_blocks b));
  check int "free count reflects reservations" (64 - 8 - 1) (Kernel_model.Buddy.free_frames b);
  (* The allocator never hands out a reserved frame. *)
  for _ = 1 to 64 - 8 - 1 do
    let pfn = Kernel_model.Buddy.alloc b in
    check bool "alloc avoids reserved ranges" false ((pfn >= 1008 && pfn < 1016) || pfn = 1000)
  done;
  check_raises "double reserve refused" (Invalid_argument "Buddy.reserve: block not free")
    (fun () -> Kernel_model.Buddy.reserve b 1008 3);
  check_raises "misaligned reserve refused" (Invalid_argument "Buddy.reserve: misaligned block")
    (fun () ->
      ignore (Kernel_model.Buddy.reserve (Kernel_model.Buddy.create ~base:1000 ~frames:64) 1003 2));
  (* Reserved blocks free like allocated ones (everything else is
     still held by the alloc loop above). *)
  Kernel_model.Buddy.free b 1008;
  check int "reserved block freed" 8 (Kernel_model.Buddy.free_frames b)

(* The ISSUE's acceptance criteria, asserted (the bench prints them). *)
let test_acceptance_ratios () =
  let host = mk_host ~mem_mib:512 () in
  let clock = Hw.Machine.clock (Cki.Host.machine host) in
  (* A realistically-sized init (512 dirty pages): the clone's fixed
     metadata footprint must be small relative to real state. *)
  let c0, cold_ns = Hw.Clock.timed clock (fun () -> boot_ready ~pages:512 host) in
  let tpl = template_exn c0 in
  let image = Snapshot.Template.image tpl in
  let restored, restore_ns = Hw.Clock.timed clock (fun () -> restore_exn host image) in
  let clone, clone_ns = Hw.Clock.timed clock (fun () -> clone_exn tpl) in
  check bool
    (Printf.sprintf "restore >= 10x faster than cold boot (%.0f vs %.0f ns)" restore_ns cold_ns)
    true
    (cold_ns >= 10.0 *. restore_ns);
  check bool
    (Printf.sprintf "clone >= 10x faster than cold boot (%.0f vs %.0f ns)" clone_ns cold_ns)
    true
    (cold_ns >= 10.0 *. clone_ns);
  let tpl_frames =
    Snapshot.Restore.materialized_frames (Snapshot.Template.container tpl)
  in
  let clone_frames = Snapshot.Restore.materialized_frames clone in
  check bool
    (Printf.sprintf "clone materializes < 25%% of template (%d vs %d frames)" clone_frames
       tpl_frames)
    true
    (float_of_int clone_frames < 0.25 *. float_of_int tpl_frames);
  check bool "restored container materializes the full image" true
    (Snapshot.Restore.materialized_frames restored >= tpl_frames);
  check int "all three clean" 0
    (List.length (Analysis.check_machine ~containers:[ c0; restored; clone ]))

(* Regression for the direct-map relocation bug: the direct map's VA
   layout keys on physical addresses, so a restored container must get
   one rebuilt from its *new* segment bases — otherwise the first
   post-restore PTP declaration retags the wrong direct-map leaf (or
   none at all) and leaves a guest-writable alias of a page-table page.
   600 fresh pages cross a 512-entry L1 boundary, forcing the guest
   kernel to declare a brand-new page-table page through the KSM. *)
let grow_fresh_ptp c =
  let b = Cki.Container.backend c in
  let task = first_task c in
  match
    Virt.Backend.syscall_exn b task
      (Kernel_model.Syscall.Mmap { pages = 600; prot = Kernel_model.Vma.prot_rw })
  with
  | Kernel_model.Syscall.Rint base ->
      ignore
        (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages:600 ~write:true)
  | _ -> fail "mmap"

let test_restored_ptp_declaration () =
  let host = mk_host ~mem_mib:512 () in
  let c0 = boot_ready host in
  let tpl = template_exn c0 in
  let image = Snapshot.Template.image tpl in
  let restored = restore_exn host image in
  grow_fresh_ptp restored;
  check int "restored container clean after fresh PTP" 0
    (List.length (Analysis.check_machine ~containers:[ restored ]));
  let clone = clone_exn tpl in
  grow_fresh_ptp clone;
  check int "clone clean after fresh PTP" 0
    (List.length (Analysis.check_machine ~containers:[ clone ]));
  (* Cross-machine: the segment lands at a different hPA, so a stale
     (relocated-but-not-rekeyed) direct map could not be correct. *)
  let host2 = mk_host ~mem_mib:512 () in
  ignore
    (Cki.Host.delegate_segment host2 ~container:(Cki.Host.fresh_container_id host2) ~frames:160);
  let restored2 = restore_exn host2 image in
  grow_fresh_ptp restored2;
  check int "cross-machine restore clean after fresh PTP" 0
    (List.length (Analysis.check_machine ~containers:[ restored2 ]));
  (* Template.freeze walks the direct map of the container it freezes:
     freezing a *restored* container exercises the rebuilt map end to
     end, and its clones must still be able to grow. *)
  let tpl2 = template_exn restored2 in
  let clone2 = clone_exn tpl2 in
  grow_fresh_ptp clone2;
  check int "clone of a restored-then-frozen template clean" 0
    (List.length (Analysis.check_machine ~containers:[ restored2; clone2 ]))

(* A frozen template's pages are read-only to the template itself: the
   hardware PTEs were downgraded, so the mm model must fault on writes
   too instead of silently mutating frames that live clones share. *)
let test_template_write_faults () =
  let host = mk_host () in
  let c0 = boot_ready host in
  let tpl = template_exn c0 in
  let mm = (first_task (Snapshot.Template.container tpl)).Kernel_model.Task.mm in
  let va = Kernel_model.Mm.user_mmap_base in
  check bool "resident pages are frozen" true
    (Kernel_model.Mm.frozen_count mm >= 64
    && Kernel_model.Mm.is_frozen mm (Hw.Addr.vpn_of_va va));
  (* Reads still work; writes fault like the downgraded PTE would. *)
  Kernel_model.Mm.touch mm va ~write:false;
  check_raises "template write faults" (Kernel_model.Mm.Segfault va) (fun () ->
      Kernel_model.Mm.touch mm va ~write:true);
  check_raises "mprotect-to-writable refused" (Kernel_model.Mm.Segfault va) (fun () ->
      Kernel_model.Mm.mprotect mm ~start:va ~pages:1 ~prot:Kernel_model.Vma.prot_rw)

(* A restore that fails verification must roll back completely: no
   leaked frames, no inflated template refcounts — a host that keeps
   receiving bad images must not bleed memory. *)
let test_failed_restore_rollback () =
  let host = mk_host ~mem_mib:512 () in
  let c0 = boot_ready host in
  let mem = Hw.Machine.mem (Cki.Host.machine host) in
  let tpl = template_exn c0 in
  let image = Snapshot.Template.image tpl in
  let map = Snapshot.Template.map tpl in
  (* An image claiming no PTPs rebuilds into a container the scanner
     rejects: its page tables are all undeclared. *)
  let bad = { image with Snapshot.Image.ptps = [] } in
  let vpn0 = Hw.Addr.vpn_of_va Kernel_model.Mm.user_mmap_base in
  let shared = ref (-1) in
  Kernel_model.Mm.iter_pages (first_task c0).Kernel_model.Task.mm (fun v p ->
      if v = vpn0 then shared := p);
  let free0 = Hw.Phys_mem.free_frames mem in
  let rc0 = Hw.Phys_mem.refcount mem !shared in
  for _ = 1 to 3 do
    (match Snapshot.Restore.restore host bad with
    | Error (Snapshot.Restore.Verify_failed _) -> ()
    | Ok _ -> fail "restore of an image with no declared PTPs must fail verification"
    | Error e -> fail ("unexpected restore error: " ^ Snapshot.Restore.show_error e));
    match
      Snapshot.Restore.clone_of host bad ~orig_seg_bases:map.Snapshot.Capture.m_seg_bases
        ~orig_aux:map.Snapshot.Capture.m_aux
    with
    | Error (Snapshot.Restore.Verify_failed _) -> ()
    | Ok _ -> fail "clone of an image with no declared PTPs must fail verification"
    | Error e -> fail ("unexpected clone error: " ^ Snapshot.Restore.show_error e)
  done;
  check int "repeated failed restores leak no frames" free0 (Hw.Phys_mem.free_frames mem);
  check int "failed clones release template references" rc0 (Hw.Phys_mem.refcount mem !shared);
  (* The host is still healthy: a good restore succeeds afterwards. *)
  check int "subsequent good restore clean" 0
    (List.length (Analysis.check_machine ~containers:[ restore_exn host image ]))

(* Declared element counts are enforced: a root or per-vCPU line whose
   count disagrees with its actual list is malformed, even with a valid
   checksum. *)
let test_decode_count_mismatch () =
  let host = mk_host () in
  let image = capture_exn (boot_ready host) in
  let enc = Snapshot.Image.encode image in
  let tamper prefix f =
    let lines = String.split_on_char '\n' enc in
    let magic = List.hd lines in
    let payload = List.filteri (fun i _ -> i >= 2) lines in
    let hit = ref false in
    let payload =
      List.map
        (fun l ->
          if (not !hit) && String.length l > 2 && String.sub l 0 2 = prefix then begin
            hit := true;
            f l
          end
          else l)
        payload
    in
    if not !hit then fail ("no line with prefix " ^ prefix);
    let body = String.concat "\n" payload in
    String.concat "\n"
      [ magic; Printf.sprintf "checksum %016Lx" (Snapshot.Image.fnv1a64 body); body ]
  in
  let bump_count l =
    match String.split_on_char ' ' l with
    | tag :: frame :: n :: rest ->
        String.concat " " (tag :: frame :: string_of_int (int_of_string n + 1) :: rest)
    | _ -> fail ("unexpected line: " ^ l)
  in
  let expect_malformed name s =
    match Snapshot.Image.decode s with
    | Error (Snapshot.Image.Malformed _) -> ()
    | Error e -> fail (name ^ ": wrong error: " ^ Snapshot.Image.show_decode_error e)
    | Ok _ -> fail (name ^ ": mismatched count accepted")
  in
  expect_malformed "root copy count" (tamper "r " bump_count);
  expect_malformed "pervcpu frame count" (tamper "v " bump_count)

let suite =
  [
    ( "snapshot",
      [
        test_case "capture-restore-capture is byte-identical" `Quick test_roundtrip_byte_identical;
        test_case "clone-then-write CoW divergence" `Quick test_clone_cow_divergence;
        test_case "cross-machine restore relocates hPAs" `Quick test_cross_machine_restore;
        test_case "corrupted images are rejected" `Quick test_corrupted_image_rejected;
        test_case "forged writable CoW mapping is flagged" `Quick test_cow_writable_detected;
        test_case "warm pool pre-boots and rotates" `Quick test_warm_pool_counts;
        test_case "buddy reserve replays allocations" `Quick test_buddy_reserve;
        test_case "acceptance: speedups and memory ratio" `Quick test_acceptance_ratios;
        test_case "post-restore PTP declaration hits the rebuilt direct map" `Quick
          test_restored_ptp_declaration;
        test_case "frozen template writes fault" `Quick test_template_write_faults;
        test_case "failed restores roll back cleanly" `Quick test_failed_restore_rollback;
        test_case "declared counts are enforced in decode" `Quick test_decode_count_mismatch;
      ] );
  ]
