(* Source-auditor tests.

   Fault-injection style, like test_analysis.ml: seed violating sources
   into a temporary tree and assert that each rule family fires with the
   right file:line span — and that the compliant variant stays silent.
   Plus a golden scan: the real repo must come back clean modulo the
   checked-in baseline, with an empty domain-safety baseline for
   lib/{hw,kernel,virt,core}. *)

open Alcotest

let check_bool = check bool

(* ------------------------------------------------------------------ *)
(* Temp-tree scaffolding                                               *)
(* ------------------------------------------------------------------ *)

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let write_file root rel content =
  let path = Filename.concat root rel in
  mkdirs (Filename.dirname path);
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

(* Build a throwaway tree from [(relative path, content)] pairs, run
   [f root], clean up even on failure. *)
let with_tree files f =
  let dir = Filename.temp_file "srclint_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      List.iter (fun (rel, content) -> write_file dir rel content) files;
      f dir)

let lib_dune ?(deps = []) name =
  Printf.sprintf "(library\n (name %s)\n (libraries %s))\n" name (String.concat " " deps)

let scan ?arch ?tcb files =
  with_tree files (fun root -> (Srclint.scan ?arch ?tcb ~root ()).Srclint.findings)

let fires name rule ~file ~line findings =
  check_bool
    (Printf.sprintf "%s: %s fires at %s:%d" name rule file line)
    true
    (List.exists
       (fun (f : Srclint.Rules.finding) ->
         f.Srclint.Rules.rule = rule && f.Srclint.Rules.file = file && f.Srclint.Rules.line = line)
       findings)

let silent name rule findings =
  check_bool
    (Printf.sprintf "%s: no %s finding" name rule)
    true
    (not (List.exists (fun (f : Srclint.Rules.finding) -> f.Srclint.Rules.rule = rule) findings))

(* ------------------------------------------------------------------ *)
(* (1) trusted-sink                                                    *)
(* ------------------------------------------------------------------ *)

let app_arch = [ ("app", []) ]

let test_sink_fires () =
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ( "lib/app/evil.ml",
          "(* a compromised guest component *)\n\n\
           let smash mem = Hw.Phys_mem.write_entry mem ~pfn:0 ~index:0 0L\n" );
        ("lib/app/evil.mli", "val smash : 'a -> unit\n");
      ]
  in
  fires "raw write outside TCB" "trusted-sink" ~file:"lib/app/evil.ml" ~line:3 findings

let test_sink_open_fires () =
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ("lib/app/evil.ml", "open Hw.Phys_mem\n\nlet f mem = write_entry mem ~pfn:0 ~index:0 0L\n");
        ("lib/app/evil.mli", "val f : 'a -> unit\n");
      ]
  in
  fires "open of the sink module" "trusted-sink" ~file:"lib/app/evil.ml" ~line:1 findings

let test_sink_allowlisted_silent () =
  let findings =
    scan ~arch:app_arch ~tcb:[ "lib/app/" ]
      [
        ("lib/app/dune", lib_dune "app");
        ("lib/app/trusted.ml", "let f mem = Hw.Phys_mem.write_entry mem ~pfn:0 ~index:0 0L\n");
        ("lib/app/trusted.mli", "val f : 'a -> unit\n");
      ]
  in
  silent "TCB file may write" "trusted-sink" findings

let test_sink_reads_silent () =
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ("lib/app/reader.ml", "let f mem = Hw.Phys_mem.read_entry mem ~pfn:0 ~index:0\n");
        ("lib/app/reader.mli", "val f : 'a -> int64\n");
      ]
  in
  silent "raw reads are not sinks" "trusted-sink" findings

(* ------------------------------------------------------------------ *)
(* (2) layering                                                        *)
(* ------------------------------------------------------------------ *)

let layered_arch = [ ("base", []); ("upper", [ "base" ]); ("top", [ "base"; "upper" ]) ]

let test_layering_upward_edge () =
  let findings =
    scan ~arch:layered_arch
      [
        ("lib/base/dune", lib_dune "base");
        ("lib/base/b.ml", "(* reaches up *)\nlet f () = Upper.secret ()\n");
        ("lib/base/b.mli", "val f : unit -> unit\n");
        ("lib/upper/dune", lib_dune ~deps:[ "base" ] "upper");
        ("lib/upper/u.ml", "let secret () = ()\n");
        ("lib/upper/u.mli", "val secret : unit -> unit\n");
      ]
  in
  fires "upward reference" "layering" ~file:"lib/base/b.ml" ~line:2 findings

let test_layering_sanctioned_edge_silent () =
  let findings =
    scan ~arch:layered_arch
      [
        ("lib/base/dune", lib_dune "base");
        ("lib/base/b.ml", "let v = 1\n");
        ("lib/base/b.mli", "val v : int\n");
        ("lib/upper/dune", lib_dune ~deps:[ "base" ] "upper");
        ("lib/upper/u.ml", "let f () = Base.v\n");
        ("lib/upper/u.mli", "val f : unit -> int\n");
      ]
  in
  silent "sanctioned downward edge" "layering" findings;
  silent "declared dep" "undeclared-dep" findings

let test_layering_undeclared_dep () =
  (* top may use base per the DAG, but its dune only declares upper —
     the reference resolves through implicit transitive deps. *)
  let findings =
    scan ~arch:layered_arch
      [
        ("lib/base/dune", lib_dune "base");
        ("lib/base/b.ml", "let v = 1\n");
        ("lib/base/b.mli", "val v : int\n");
        ("lib/upper/dune", lib_dune ~deps:[ "base" ] "upper");
        ("lib/upper/u.ml", "let f () = Base.v\n");
        ("lib/upper/u.mli", "val f : unit -> int\n");
        ("lib/top/dune", lib_dune ~deps:[ "upper" ] "top");
        ("lib/top/t.ml", "let g () = Base.v + Upper.f ()\n");
        ("lib/top/t.mli", "val g : unit -> int\n");
      ]
  in
  fires "transitive-only reference" "undeclared-dep" ~file:"lib/top/t.ml" ~line:1 findings

let test_layering_dune_drift () =
  (* The dune file itself declares a forbidden edge, even though no
     source references it yet. *)
  let findings =
    scan ~arch:layered_arch
      [
        ("lib/base/dune", lib_dune ~deps:[ "upper" ] "base");
        ("lib/base/b.ml", "let v = 1\n");
        ("lib/base/b.mli", "val v : int\n");
        ("lib/upper/dune", lib_dune ~deps:[ "base" ] "upper");
        ("lib/upper/u.ml", "let secret () = ()\n");
        ("lib/upper/u.mli", "val secret : unit -> unit\n");
      ]
  in
  fires "dune declares forbidden edge" "layering" ~file:"lib/base/dune" ~line:1 findings

let test_layering_unknown_library () =
  let findings =
    scan ~arch:layered_arch
      [
        ("lib/rogue/dune", lib_dune "rogue");
        ("lib/rogue/r.ml", "let v = 1\n");
        ("lib/rogue/r.mli", "val v : int\n");
      ]
  in
  fires "library missing from the DAG" "layering" ~file:"lib/rogue/dune" ~line:1 findings

(* ------------------------------------------------------------------ *)
(* (3) domain-safety                                                   *)
(* ------------------------------------------------------------------ *)

let test_domain_safety_fires () =
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ( "lib/app/state.ml",
          "let table = Hashtbl.create 16\n\
           let counter = ref 0\n\n\
           type cell = { mutable v : int }\n\n\
           let shared = { v = 0 }\n" );
        ("lib/app/state.mli", "val table : (int, int) Hashtbl.t\nval counter : int ref\n");
      ]
  in
  fires "toplevel Hashtbl" "domain-safety" ~file:"lib/app/state.ml" ~line:1 findings;
  fires "toplevel ref" "domain-safety" ~file:"lib/app/state.ml" ~line:2 findings;
  fires "toplevel mutable record" "domain-safety" ~file:"lib/app/state.ml" ~line:6 findings

let test_domain_safety_safe_forms_silent () =
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ( "lib/app/state.ml",
          "let next_id = Atomic.make 0\n\n\
           let fresh_table () = Hashtbl.create 16\n\n\
           type cfg = { depth : int }\n\n\
           let default = { depth = 4 }\n\n\
           let documented = ref 0 [@@single_domain \"test-only scratch state\"]\n" );
        ("lib/app/state.mli", "val next_id : int Atomic.t\n");
      ]
  in
  silent "Atomic / closures / immutable records / documented" "domain-safety" findings

let test_domain_safety_undocumented_annotation () =
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ("lib/app/state.ml", "let sneaky = ref 0 [@@single_domain]\n");
        ("lib/app/state.mli", "val sneaky : int ref\n");
      ]
  in
  fires "annotation without a reason" "undocumented-annotation" ~file:"lib/app/state.ml" ~line:1
    findings

(* ------------------------------------------------------------------ *)
(* (4) hygiene                                                         *)
(* ------------------------------------------------------------------ *)

let test_hygiene_missing_mli () =
  let findings =
    scan ~arch:app_arch
      [ ("lib/app/dune", lib_dune "app"); ("lib/app/naked.ml", "let v = 1\n") ]
  in
  fires "no interface file" "missing-mli" ~file:"lib/app/naked.ml" ~line:1 findings

let test_hygiene_tcb_unsafe () =
  let findings =
    scan ~arch:app_arch ~tcb:[ "lib/app/" ]
      [
        ("lib/app/dune", lib_dune "app");
        ( "lib/app/monitor.ml",
          "let coerce x = Obj.magic x\n\nlet impossible () = assert false\n" );
        ("lib/app/monitor.mli", "val coerce : 'a -> 'b\nval impossible : unit -> 'a\n");
      ]
  in
  fires "Obj.magic in TCB" "tcb-unsafe" ~file:"lib/app/monitor.ml" ~line:1 findings;
  fires "assert false in TCB" "tcb-unsafe" ~file:"lib/app/monitor.ml" ~line:3 findings;
  (* outside the TCB the same text is silent *)
  let findings =
    scan ~arch:app_arch ~tcb:[]
      [
        ("lib/app/dune", lib_dune "app");
        ("lib/app/monitor.ml", "let coerce x = Obj.magic x\n");
        ("lib/app/monitor.mli", "val coerce : 'a -> 'b\n");
      ]
  in
  silent "Obj.magic outside TCB" "tcb-unsafe" findings

let test_hygiene_probe_pairing () =
  let enter = "Hw.Probe.emit (Hw.Probe.Gate_enter { cpu = 0; gate; pkrs = 1 })" in
  let exit_ = "Hw.Probe.emit (Hw.Probe.Gate_exit { cpu = 0; gate; entry_pkrs = 1; pkrs = 0 })" in
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ("lib/app/gates.ml", Printf.sprintf "let enter gate = %s\n" enter);
        ("lib/app/gates.mli", "val enter : Hw.Probe.gate -> unit\n");
      ]
  in
  fires "enter without exit" "probe-pairing" ~file:"lib/app/gates.ml" ~line:1 findings;
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ( "lib/app/gates.ml",
          Printf.sprintf "let enter gate = %s\nlet exit_ gate = %s\n" enter exit_ );
        ("lib/app/gates.mli", "val enter : Hw.Probe.gate -> unit\nval exit_ : Hw.Probe.gate -> unit\n");
      ]
  in
  silent "paired emissions" "probe-pairing" findings

let test_parse_error_reported () =
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ("lib/app/broken.ml", "let = in garbage ))\n");
        ("lib/app/broken.mli", "")
      ]
  in
  fires "unparseable file" "parse-error" ~file:"lib/app/broken.ml" ~line:1 findings

(* ------------------------------------------------------------------ *)
(* (5) domain-escape: the interprocedural sharing analysis             *)
(* ------------------------------------------------------------------ *)

let ml lines = String.concat "\n" lines ^ "\n"

let test_escape_shared_ref_fires () =
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ( "lib/app/racy.ml",
          ml
            [
              "let t () =";
              "  let r = ref 0 in";
              "  let a = Domain.spawn (fun () -> r := 1) in";
              "  let b = Domain.spawn (fun () -> r := 2) in";
              "  Domain.join a;";
              "  Domain.join b;";
              "  !r";
            ] );
        ("lib/app/racy.mli", "val t : unit -> int\n");
      ]
  in
  fires "ref captured by first sibling" "domain-escape" ~file:"lib/app/racy.ml" ~line:3 findings;
  fires "ref captured by second sibling" "domain-escape" ~file:"lib/app/racy.ml" ~line:4 findings

let test_escape_mutable_field_fires () =
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ( "lib/app/cellular.ml",
          ml
            [
              "type cell = { mutable v : int }";
              "";
              "let t () =";
              "  let c = { v = 0 } in";
              "  let a = Domain.spawn (fun () -> c.v <- 1) in";
              "  let b = Domain.spawn (fun () -> c.v <- 2) in";
              "  Domain.join a;";
              "  Domain.join b;";
              "  c.v";
            ] );
        ("lib/app/cellular.mli", "val t : unit -> int\n");
      ]
  in
  fires "mutable record shared by siblings" "domain-escape" ~file:"lib/app/cellular.ml" ~line:5
    findings

let test_escape_bigarray_replicated_fires () =
  (* A single spawn site inside an [Array.init] closure is replicated:
     every sibling captures the same Bigarray. *)
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ( "lib/app/biga.ml",
          ml
            [
              "let t () =";
              "  let big = Bigarray.Array1.create Bigarray.int Bigarray.c_layout 8 in";
              "  let ds = Array.init 2 (fun i -> Domain.spawn (fun () -> Bigarray.Array1.set big i i)) in";
              "  Array.iter Domain.join ds";
            ] );
        ("lib/app/biga.mli", "val t : unit -> unit\n");
      ]
  in
  fires "Bigarray captured by replicated spawn" "domain-escape" ~file:"lib/app/biga.ml" ~line:3
    findings

let test_escape_interprocedural_fires () =
  (* The spawn closure reaches another module's toplevel hashtable only
     through a call chain. *)
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ("lib/app/state.ml", "let table = Hashtbl.create 16\n");
        ("lib/app/state.mli", "val table : (int, int) Hashtbl.t\n");
        ( "lib/app/eng.ml",
          ml
            [
              "let bump k = Hashtbl.replace State.table k k";
              "";
              "let t () =";
              "  let d = Domain.spawn (fun () -> bump 1) in";
              "  Domain.join d";
            ] );
        ("lib/app/eng.mli", "val bump : int -> unit\nval t : unit -> unit\n");
      ]
  in
  fires "global reached via call chain" "domain-escape" ~file:"lib/app/eng.ml" ~line:4 findings;
  check_bool "finding names the escaping global" true
    (List.exists
       (fun (f : Srclint.Rules.finding) ->
         f.Srclint.Rules.rule = "domain-escape" && f.Srclint.Rules.symbol = "table")
       findings)

let test_escape_sanctioned_forms_silent () =
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ( "lib/app/safe.ml",
          ml
            [
              "let t () =";
              "  let n = Atomic.make 0 in";
              "  let m = Mutex.create () in";
              "  let r = ref 0 in";
              "  let tbl = Hashtbl.create 8 [@@domain_shared \"slots are per-lane disjoint\"] in";
              "  let a = Domain.spawn (fun () -> Atomic.incr n; Mutex.protect m (fun () -> incr r); Hashtbl.replace tbl 1 1) in";
              "  let b = Domain.spawn (fun () -> Atomic.incr n; Mutex.protect m (fun () -> incr r); Hashtbl.replace tbl 2 2) in";
              "  Domain.join a;";
              "  Domain.join b";
            ] );
        ("lib/app/safe.mli", "val t : unit -> unit\n");
      ]
  in
  silent "Atomic / Mutex.protect / domain_shared" "domain-escape" findings;
  silent "used annotation is not stale" "stale-annotation" findings

let test_escape_sole_transfer_silent () =
  (* Handing a local mutable wholesale to one spawn is a transfer, not
     sharing — but touching it from the parent afterwards is. *)
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ( "lib/app/handoff.ml",
          ml
            [
              "let t () =";
              "  let r = ref 0 in";
              "  let d = Domain.spawn (fun () -> r := 1; !r) in";
              "  Domain.join d";
            ] );
        ("lib/app/handoff.mli", "val t : unit -> int\n");
      ]
  in
  silent "sole transfer" "domain-escape" findings;
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ( "lib/app/parent.ml",
          ml
            [
              "let t () =";
              "  let r = ref 0 in";
              "  let d = Domain.spawn (fun () -> incr r) in";
              "  r := 1;";
              "  Domain.join d";
            ] );
        ("lib/app/parent.mli", "val t : unit -> unit\n");
      ]
  in
  fires "closure plus spawning domain" "domain-escape" ~file:"lib/app/parent.ml" ~line:3 findings

let test_escape_annotation_ledger () =
  (* Stale [@@domain_shared]: sanctions nothing. *)
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ("lib/app/s.ml", "let tbl = Hashtbl.create 8 [@@domain_shared \"never shared\"]\n");
        ("lib/app/s.mli", "val tbl : (int, int) Hashtbl.t\n");
      ]
  in
  fires "unused domain_shared is stale" "stale-annotation" ~file:"lib/app/s.ml" ~line:1 findings;
  (* Stale [@@single_domain]: the binding isn't mutable state. *)
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ("lib/app/s.ml", "let immut = 42 [@@single_domain \"pointless\"]\n");
        ("lib/app/s.mli", "val immut : int\n");
      ]
  in
  fires "single_domain on immutable binding is stale" "stale-annotation" ~file:"lib/app/s.ml"
    ~line:1 findings;
  (* Undocumented [@@domain_shared]: sanctions the capture but needs a
     reason. *)
  let findings =
    scan ~arch:app_arch
      [
        ("lib/app/dune", lib_dune "app");
        ( "lib/app/s.ml",
          ml
            [
              "let t () =";
              "  let r = ref 0 [@@domain_shared] in";
              "  let a = Domain.spawn (fun () -> incr r) in";
              "  let b = Domain.spawn (fun () -> incr r) in";
              "  Domain.join a;";
              "  Domain.join b";
            ] );
        ("lib/app/s.mli", "val t : unit -> unit\n");
      ]
  in
  silent "annotation still sanctions the capture" "domain-escape" findings;
  fires "but without a reason it is undocumented" "undocumented-annotation" ~file:"lib/app/s.ml"
    ~line:2 findings

(* ------------------------------------------------------------------ *)
(* (6) executable scope                                                *)
(* ------------------------------------------------------------------ *)

let exe_arch = [ ("app", []); ("bin", [ "app" ]) ]

let test_exe_scope_layering () =
  let findings =
    scan ~arch:exe_arch
      [
        ("lib/app/dune", lib_dune "app");
        ("lib/app/a.ml", "let v = 1\n");
        ("lib/app/a.mli", "val v : int\n");
        ("bin/dune", "(executable\n (name demo)\n (libraries))\n");
        ("bin/demo.ml", "let () = print_int App.A.v\n");
      ]
  in
  fires "exe reference not declared in its dune" "undeclared-dep" ~file:"bin/demo.ml" ~line:1
    findings;
  (* The lib-only families stay out of executable scope. *)
  silent "no missing-mli for executables" "missing-mli" findings

let test_exe_scope_forbidden_edge () =
  let findings =
    scan ~arch:[ ("app", []); ("bin", []) ]
      [
        ("lib/app/dune", lib_dune "app");
        ("lib/app/a.ml", "let v = 1\n");
        ("lib/app/a.mli", "val v : int\n");
        ("bin/dune", "(executable\n (name demo)\n (libraries app))\n");
        ("bin/demo.ml", "let () = print_int App.A.v\n");
      ]
  in
  fires "edge the DAG forbids, declared in the exe dune" "layering" ~file:"bin/dune" ~line:1
    findings

(* ------------------------------------------------------------------ *)
(* Baseline mechanics                                                  *)
(* ------------------------------------------------------------------ *)

let test_baseline_apply () =
  with_tree
    [
      ("lib/app/dune", lib_dune "app");
      ( "lib/app/evil.ml",
        "let smash mem = Hw.Phys_mem.write_entry mem ~pfn:0 ~index:0 0L\n" );
      ("lib/app/evil.mli", "val smash : 'a -> unit\n");
      ( "accepted.baseline",
        "# comment lines and blanks are fine\n\n\
         trusted-sink lib/app/evil.ml Hw.Phys_mem.write_entry\n\
         trusted-sink lib/app/gone.ml Hw.Phys_mem.write_entry  # stale\n" );
    ]
    (fun root ->
      let s = Srclint.scan ~arch:app_arch ~root () in
      let entries =
        match Srclint.Baseline.load (Filename.concat root "accepted.baseline") with
        | Ok e -> e
        | Error m -> fail m
      in
      let chk = Srclint.check ~baseline:entries s.Srclint.findings in
      check int "sink finding accepted by baseline" 1 (List.length chk.Srclint.baselined);
      check_bool "no fresh trusted-sink" true
        (not
           (List.exists
              (fun (f : Srclint.Rules.finding) -> f.Srclint.Rules.rule = "trusted-sink")
              chk.Srclint.fresh));
      check int "stale entry detected" 1 (List.length chk.Srclint.stale);
      match chk.Srclint.stale with
      | [ e ] -> check string "stale file" "lib/app/gone.ml" e.Srclint.Baseline.file
      | _ -> fail "expected exactly one stale entry")

let test_baseline_malformed () =
  with_tree
    [ ("bad.baseline", "trusted-sink lib/app/evil.ml\n") ]
    (fun root ->
      match Srclint.Baseline.load (Filename.concat root "bad.baseline") with
      | Ok _ -> fail "two-field line must be rejected"
      | Error msg -> check_bool "error names the file" true (String.length msg > 0))

(* ------------------------------------------------------------------ *)
(* Golden: the real repo                                               *)
(* ------------------------------------------------------------------ *)

(* Everything the domain-sharded serve engine executes inside a worker
   domain must be domain-safety-clean: the hardware/kernel/virt/core
   stack plus the ioplane harness itself and the analysis recorder its
   probe streams land in. *)
let core_dirs =
  [ "lib/hw/"; "lib/kernel/"; "lib/virt/"; "lib/core/"; "lib/ioplane/"; "lib/analysis/" ]

let in_core (file : string) =
  List.exists
    (fun d -> String.length file >= String.length d && String.sub file 0 (String.length d) = d)
    core_dirs

let test_golden_repo_clean () =
  let root = Srclint.find_root_exn () in
  let s = Srclint.scan ~root () in
  check_bool "scanned a real tree (>50 files)" true (s.Srclint.stats.Srclint.files > 50);
  let entries =
    match Srclint.Baseline.load (Filename.concat root "srclint.baseline") with
    | Ok e -> e
    | Error m -> fail m
  in
  let chk = Srclint.check ~baseline:entries s.Srclint.findings in
  (match chk.Srclint.fresh with
  | [] -> ()
  | fs ->
      fail
        (Printf.sprintf "repo must scan clean modulo baseline, got:\n%s"
           (Report.Findings.render ~title:"srclint" (Srclint.to_findings fs))));
  check int "no stale baseline entries" 0 (List.length chk.Srclint.stale)

let test_golden_domain_safety_core_empty () =
  (* The satellite fixes promise: no domain-safety debt — baselined or
     live — anywhere in lib/{hw,kernel,virt,core}. *)
  let root = Srclint.find_root_exn () in
  let s = Srclint.scan ~root () in
  let entries =
    match Srclint.Baseline.load (Filename.concat root "srclint.baseline") with
    | Ok e -> e
    | Error m -> fail m
  in
  List.iter
    (fun (e : Srclint.Baseline.entry) ->
      check_bool
        (Printf.sprintf "baseline has no domain-safety entry in core dirs (%s)" e.Srclint.Baseline.file)
        true
        (not (e.Srclint.Baseline.rule = "domain-safety" && in_core e.Srclint.Baseline.file)))
    entries;
  List.iter
    (fun (f : Srclint.Rules.finding) ->
      check_bool
        (Printf.sprintf "no domain-safety finding in core dirs (%s:%d)" f.Srclint.Rules.file
           f.Srclint.Rules.line)
        true
        (not (f.Srclint.Rules.rule = "domain-safety" && in_core f.Srclint.Rules.file)))
    s.Srclint.findings

let suite =
  [
    ( "srclint-sink",
      [
        test_case "raw write outside TCB fires" `Quick test_sink_fires;
        test_case "open of sink module fires" `Quick test_sink_open_fires;
        test_case "allowlisted TCB file is silent" `Quick test_sink_allowlisted_silent;
        test_case "raw reads are silent" `Quick test_sink_reads_silent;
      ] );
    ( "srclint-layering",
      [
        test_case "upward edge fires" `Quick test_layering_upward_edge;
        test_case "sanctioned edge is silent" `Quick test_layering_sanctioned_edge_silent;
        test_case "transitive-only dep fires" `Quick test_layering_undeclared_dep;
        test_case "dune drift fires" `Quick test_layering_dune_drift;
        test_case "unknown library fires" `Quick test_layering_unknown_library;
      ] );
    ( "srclint-domain-safety",
      [
        test_case "toplevel mutable state fires" `Quick test_domain_safety_fires;
        test_case "safe forms are silent" `Quick test_domain_safety_safe_forms_silent;
        test_case "undocumented annotation fires" `Quick test_domain_safety_undocumented_annotation;
      ] );
    ( "srclint-hygiene",
      [
        test_case "missing mli fires" `Quick test_hygiene_missing_mli;
        test_case "Obj.magic / assert false in TCB fire" `Quick test_hygiene_tcb_unsafe;
        test_case "unpaired gate probes fire" `Quick test_hygiene_probe_pairing;
        test_case "parse errors become findings" `Quick test_parse_error_reported;
      ] );
    ( "srclint-escape",
      [
        test_case "shared ref across siblings fires" `Quick test_escape_shared_ref_fires;
        test_case "mutable record field fires" `Quick test_escape_mutable_field_fires;
        test_case "replicated Bigarray capture fires" `Quick test_escape_bigarray_replicated_fires;
        test_case "call chain to global fires" `Quick test_escape_interprocedural_fires;
        test_case "sanctioned forms are silent" `Quick test_escape_sanctioned_forms_silent;
        test_case "sole transfer vs parent use" `Quick test_escape_sole_transfer_silent;
        test_case "annotation ledger" `Quick test_escape_annotation_ledger;
      ] );
    ( "srclint-exe-scope",
      [
        test_case "undeclared dep fires, lib families don't" `Quick test_exe_scope_layering;
        test_case "forbidden edge fires from exe dune" `Quick test_exe_scope_forbidden_edge;
      ] );
    ( "srclint-baseline",
      [
        test_case "apply partitions and finds stale" `Quick test_baseline_apply;
        test_case "malformed line rejected" `Quick test_baseline_malformed;
      ] );
    ( "srclint-golden",
      [
        test_case "repo scans clean modulo baseline" `Quick test_golden_repo_clean;
        test_case "core dirs carry no domain-safety debt" `Quick test_golden_domain_safety_core_empty;
      ] );
  ]
