(* The raw-speed engine overhaul: representation changes that must be
   observationally invisible.

   The anchor test is the golden snapshot fixture: an image captured
   with the pre-overhaul boxed-record [Phys_mem] (frame metadata in a
   record array, PTEs in per-frame [int64 array]s) checked in at
   test/fixtures/golden_v2.ckisnap.  A fresh capture with today's
   packed-array + Bigarray-arena representation must be byte-for-byte
   identical, proving the swap changed raw speed only.  Around it:
   allocator free-count bookkeeping, allocation-order preservation,
   arena slot recycling, and the translation fast path's
   subset-of-the-TLB invalidation discipline. *)

open Alcotest

let golden_path = "fixtures/golden_v2.ckisnap"

(* Same workload the fixture generator ran (kept in sync by the bytes
   comparison itself: any drift shows up as a mismatch). *)
let init_workload (c : Cki.Container.t) =
  let b = Cki.Container.backend c in
  let task = Virt.Backend.spawn b in
  (match
     Virt.Backend.syscall_exn b task
       (Kernel_model.Syscall.Mmap { pages = 256; prot = Kernel_model.Vma.prot_rw })
   with
  | Kernel_model.Syscall.Rint base ->
      ignore
        (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages:256 ~write:true)
  | _ -> fail "mmap");
  match
    Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Open { path = "/app.conf"; create = true })
  with
  | Kernel_model.Syscall.Rint fd ->
      ignore
        (Virt.Backend.syscall_exn b task
           (Kernel_model.Syscall.Write { fd; data = Bytes.of_string "threads=4\n" }))
  | _ -> fail "open"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let capture_exn c =
  match Snapshot.Capture.capture c with
  | Ok image -> image
  | Error e -> fail ("capture: " ^ Snapshot.Capture.show_error e)

(* A capture under the packed representation must reproduce the
   fixture captured under the boxed representation, byte for byte. *)
let test_golden_capture_identical () =
  let c = Cki.Container.create_standalone ~mem_mib:256 () in
  init_workload c;
  let image = capture_exn c in
  let fresh = Snapshot.Image.encode image in
  let golden = read_file golden_path in
  check int "image length" (String.length golden) (String.length fresh);
  check bool "capture is byte-identical to the pre-overhaul fixture" true (golden = fresh)

(* The fixture itself must decode, restore into a fresh host, and
   re-capture to the identical bytes (capture -> restore -> capture
   determinism across the representation swap). *)
let test_golden_restore_recapture () =
  let golden = read_file golden_path in
  let image =
    match Snapshot.Image.decode golden with
    | Ok i -> i
    | Error e -> fail ("decode: " ^ Snapshot.Image.show_decode_error e)
  in
  let host = Cki.Host.create (Hw.Machine.create ~mem_mib:256 ()) in
  let c =
    match Snapshot.Restore.restore host image with
    | Ok c -> c
    | Error e -> fail ("restore: " ^ Snapshot.Restore.show_error e)
  in
  let again = Snapshot.Image.encode (capture_exn c) in
  check bool "restore -> recapture is byte-identical" true (golden = again)

(* ------------------------------------------------------------------ *)
(* Allocator                                                           *)
(* ------------------------------------------------------------------ *)

(* free_frames is a maintained counter now; it must agree with the
   O(n) ownership scan through arbitrary alloc/free churn. *)
let test_free_count_agrees_with_scan () =
  let m = Hw.Phys_mem.create ~frames:500 in
  let rng = ref 123456789 in
  let rand n =
    rng := (!rng * 1103515245) + 12345;
    (!rng lsr 7) mod n
  in
  let live = ref [] in
  for _ = 1 to 2000 do
    if rand 3 > 0 || !live = [] then begin
      match Hw.Phys_mem.alloc m ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data with
      | pfn -> live := pfn :: !live
      | exception Hw.Phys_mem.Out_of_memory -> ()
    end
    else begin
      match !live with
      | pfn :: rest ->
          Hw.Phys_mem.free m pfn;
          live := rest
      | [] -> ()
    end;
    let scanned = Hw.Phys_mem.count_owned m (fun o -> o = Hw.Phys_mem.Free) in
    if Hw.Phys_mem.free_frames m <> scanned then
      failf "free_frames drifted: counter=%d scan=%d" (Hw.Phys_mem.free_frames m) scanned
  done

(* The bitmap allocator must preserve the old next-fit order: alloc
   rotates a hint; free does not move it; contiguous runs are first-fit
   from frame 0. *)
let test_allocation_order_preserved () =
  let m = Hw.Phys_mem.create ~frames:200 in
  let a () = Hw.Phys_mem.alloc m ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data in
  check int "first" 0 (a ());
  check int "second" 1 (a ());
  check int "third" 2 (a ());
  Hw.Phys_mem.free m 0;
  (* next-fit: the hint is past 0, so the hole is NOT reused yet *)
  check int "hole skipped" 3 (a ());
  (* contiguous is first-fit from 0 and must skip the single hole *)
  let base =
    Hw.Phys_mem.alloc_contiguous m ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data ~count:4
  in
  check int "contiguous first-fit" 4 base;
  (* exhaust, then wrap back to the hole at 0 *)
  for _ = 8 to 199 do
    ignore (a ())
  done;
  check int "wraps to the hole" 0 (a ());
  check_raises "oom" Hw.Phys_mem.Out_of_memory (fun () -> ignore (a ()))

(* Crossing word boundaries (62 frames/word): a contiguous run that
   spans several bitmap words, with scattered holes, lands on the first
   window exactly like the per-frame scan did. *)
let test_contiguous_across_words () =
  let m = Hw.Phys_mem.create ~frames:1000 in
  let base =
    Hw.Phys_mem.alloc_contiguous m ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data ~count:1000
  in
  check int "full span" 0 base;
  (* punch a 130-frame hole crossing word boundaries at 61..190 *)
  Hw.Phys_mem.free_range m ~base:61 ~count:130;
  check_raises "131 does not fit" Hw.Phys_mem.Out_of_memory (fun () ->
      ignore
        (Hw.Phys_mem.alloc_contiguous m ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data ~count:131));
  let b =
    Hw.Phys_mem.alloc_contiguous m ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data ~count:130
  in
  check int "refills the exact hole" 61 b

(* A freed table frame's arena slot is recycled: churn through many
   table-frame lifetimes and confirm reads stay isolated (a recycled
   slot must come back zeroed, never leaking the previous tenant's
   PTEs). *)
let test_arena_slot_recycling () =
  let m = Hw.Phys_mem.create ~frames:64 in
  for round = 1 to 50 do
    let f = Hw.Phys_mem.alloc m ~owner:Hw.Phys_mem.Host ~kind:(Hw.Phys_mem.Page_table 1) in
    check bool "fresh table reads zero" true (Hw.Phys_mem.read_entry m ~pfn:f ~index:7 = 0L);
    Hw.Phys_mem.write_entry m ~pfn:f ~index:7 (Int64.of_int round);
    check bool "read back" true (Hw.Phys_mem.read_entry m ~pfn:f ~index:7 = Int64.of_int round);
    Hw.Phys_mem.free m f
  done

(* table_entries returns a snapshot: mutating it must not write
   memory. *)
let test_table_entries_snapshot () =
  let m = Hw.Phys_mem.create ~frames:8 in
  let f = Hw.Phys_mem.alloc m ~owner:Hw.Phys_mem.Host ~kind:(Hw.Phys_mem.Page_table 1) in
  Hw.Phys_mem.write_entry m ~pfn:f ~index:3 99L;
  let snap = Hw.Phys_mem.table_entries m f in
  check bool "snapshot sees the entry" true (snap.(3) = 99L);
  snap.(3) <- 0L;
  check bool "mutating the snapshot does not write memory" true
    (Hw.Phys_mem.read_entry m ~pfn:f ~index:3 = 99L)

(* ------------------------------------------------------------------ *)
(* Translation fast path                                               *)
(* ------------------------------------------------------------------ *)

(* The memoized fast path must be observationally invisible: run the
   same access/unmap/invlpg sequence with the cache on and off and
   compare results, faults, TLB statistics and the simulated clock. *)
let test_tcache_invisible () =
  let run ~tcache =
    let m = Hw.Phys_mem.create ~frames:4096 in
    let pt = Hw.Page_table.create m ~owner:Hw.Phys_mem.Host in
    let clock = Hw.Clock.create () in
    let cpu = Hw.Cpu.create clock in
    Hw.Cpu.set_tcache cpu tcache;
    let log = Buffer.create 256 in
    let touch ?(write = false) va =
      let kind = if write then Hw.Pks.Write else Hw.Pks.Read in
      match Hw.Cpu.access cpu pt ~va ~access_kind:kind () with
      | Ok pa -> Buffer.add_string log (Printf.sprintf "ok:%x;" pa)
      | Error f -> Buffer.add_string log ("fault:" ^ Hw.Cpu.show_fault f ^ ";")
    in
    for i = 0 to 31 do
      let data = Hw.Phys_mem.alloc m ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data in
      ignore
        (Hw.Page_table.map pt ~va:(0x400000 + (i * 4096)) ~pfn:data
           ~flags:{ Hw.Pte.default_flags with Hw.Pte.writable = true }
           ())
    done;
    (* repeated touches: hot path *)
    for _ = 1 to 3 do
      for i = 0 to 31 do
        touch ~write:(i mod 2 = 0) (0x400000 + (i * 4096))
      done
    done;
    (* unmap half, invlpg each, then re-touch: must fault identically *)
    for i = 0 to 15 do
      let va = 0x400000 + (i * 4096) in
      ignore (Hw.Page_table.unmap pt va);
      Hw.Cpu.exec_priv_exn cpu (Hw.Priv.Invlpg va)
    done;
    for i = 0 to 31 do
      touch (0x400000 + (i * 4096))
    done;
    (* flush everything, then re-touch: all walks again *)
    Hw.Cpu.exec_priv_exn cpu Hw.Priv.Invpcid;
    for i = 16 to 31 do
      touch (0x400000 + (i * 4096))
    done;
    ( Buffer.contents log,
      Hw.Tlb.hits cpu.Hw.Cpu.tlb,
      Hw.Tlb.misses cpu.Hw.Cpu.tlb,
      Hw.Clock.now clock )
  in
  let log_on, hits_on, misses_on, now_on = run ~tcache:true in
  let log_off, hits_off, misses_off, now_off = run ~tcache:false in
  check string "access outcomes identical" log_off log_on;
  check int "tlb hits identical" hits_off hits_on;
  check int "tlb misses identical" misses_off misses_on;
  check (float 1e-9) "simulated clock identical" now_off now_on

(* ------------------------------------------------------------------ *)
(* Domain sharding                                                     *)
(* ------------------------------------------------------------------ *)

(* The sharded serve engine must be a pure function of the config and
   lane count: running the same 4-lane fleet on 1, 2 and 4 domains must
   produce the identical merged result (every counter and every derived
   float), identical ordered per-lane clock merges, and a clean
   whole-machine invariant check. *)
let serve_cfg =
  {
    Ioplane.Serve.default_config with
    Ioplane.Serve.backend = "cki";
    containers = 4;
    requests_per_container = 20;
  }

let merged_clock containers =
  let into = Hw.Clock.create () in
  List.iter
    (fun c -> Hw.Clock.add_into ~into (Cki.Container.backend c).Virt.Backend.clock)
    containers;
  into

let test_sharding_deterministic () =
  let run domains = Ioplane.Serve.run ~domains serve_cfg in
  let r1, c1 = run 1 in
  (* The 2-domain run executes under the dynamic cross-domain checker:
     Phys_mem tracing on, the merged replay race-checked — lanes own
     disjoint machines, so the trace must come back clean, and the
     instrumentation must not perturb the merged result. *)
  let (r2, c2), racecheck =
    Hw.Probe.set_mem_trace true;
    Fun.protect
      ~finally:(fun () -> Hw.Probe.set_mem_trace false)
      (fun () ->
        let out, trace =
          (* Room for every lane ring (65536 events each) plus edges,
             so the replayed spawn edges aren't dropped. *)
          Analysis.Trace.with_recorder ~capacity:300_000 (fun () -> run 2)
        in
        (out, Analysis.Racecheck.of_trace trace))
  in
  let r4, c4 = run 4 in
  check int "domains recorded" 1 r1.Ioplane.Serve.r_domains;
  check bool "sharded lanes trace racecheck-clean" true (Analysis.Racecheck.is_clean racecheck);
  check bool "racecheck saw traced accesses" true (racecheck.Analysis.Racecheck.accesses > 0);
  (* Everything except the parallel-makespan accounting (wall time,
     throughput, domain count) must be bit-identical. *)
  let norm r =
    { r with Ioplane.Serve.r_domains = 0; r_wall_ns = 0.0; r_throughput_rps = 0.0 }
  in
  check bool "1 vs 2 domains: identical merged result" true (norm r1 = norm r2);
  check bool "1 vs 4 domains: identical merged result" true (norm r1 = norm r4);
  let k1 = merged_clock c1 and k2 = merged_clock c2 and k4 = merged_clock c4 in
  check (float 1e-9) "merged clock now (2 domains)" (Hw.Clock.now k1) (Hw.Clock.now k2);
  check (float 1e-9) "merged clock now (4 domains)" (Hw.Clock.now k1) (Hw.Clock.now k4);
  check bool "merged clock events (2 domains)" true (Hw.Clock.events k1 = Hw.Clock.events k2);
  check bool "merged clock events (4 domains)" true (Hw.Clock.events k1 = Hw.Clock.events k4);
  check int "exit counts equal" r1.Ioplane.Serve.r_exits r4.Ioplane.Serve.r_exits;
  List.iter
    (fun cs ->
      check int "whole-machine invariant check clean" 0
        (List.length (Analysis.check_machine ~containers:cs)))
    [ c1; c2; c4 ]

(* Sharded throughput accounting: with lanes of equal work, 4 domains
   must report a strictly larger throughput than 1 domain over the same
   merged work (the makespan is the max domain span, not the sum). *)
let test_sharding_scales () =
  let r1, _ = Ioplane.Serve.run ~domains:1 serve_cfg in
  let r4, _ = Ioplane.Serve.run ~domains:4 serve_cfg in
  check bool "wall time shrinks" true
    (r4.Ioplane.Serve.r_wall_ns < r1.Ioplane.Serve.r_wall_ns);
  check bool "throughput scales" true
    (r4.Ioplane.Serve.r_throughput_rps > 2.0 *. r1.Ioplane.Serve.r_throughput_rps)

(* ------------------------------------------------------------------ *)
(* JSON round-trip: the parser added for artifact validation must
   accept exactly what the emitter produces.                           *)
(* ------------------------------------------------------------------ *)

let rec json_equal (a : Report.Json.value) (b : Report.Json.value) =
  match (a, b) with
  | Report.Json.Null, Report.Json.Null -> true
  | Report.Json.Bool x, Report.Json.Bool y -> x = y
  | Report.Json.Int x, Report.Json.Int y -> x = y
  | Report.Json.Float x, Report.Json.Float y -> Float.equal x y
  | Report.Json.String x, Report.Json.String y -> String.equal x y
  | Report.Json.List xs, Report.Json.List ys ->
      List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Report.Json.Obj xs, Report.Json.Obj ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_equal v1 v2) xs ys
  | _ -> false

let test_json_roundtrip () =
  let open Report.Json in
  let v =
    Obj
      [
        ("bench", String "engine");
        ("ratio", Float 11.5);
        ("events", Int 123456789);
        ("ok", Bool true);
        ("missing", Null);
        ("empty_list", List []);
        ("empty_obj", Obj []);
        ( "rows",
          List
            [
              Obj [ ("name", String "tlb \"hit\"\n\ttab"); ("us", Float 0.25) ];
              Obj [ ("name", String "walk"); ("us", Float 3.0) ];
              Int (-42);
            ] );
      ]
  in
  (match parse (to_string v) with
  | Ok v' -> check bool "round-trip equal" true (json_equal v v')
  | Error e -> fail ("parse failed: " ^ e));
  (* every checked-in artifact shape the emitter produces parses *)
  (match parse "  { \"a\" : [ 1 , 2.5 , \"x\\u0041\" ] }  " with
  | Ok (Obj [ ("a", List [ Int 1; Float 2.5; String "xA" ]) ]) -> ()
  | Ok _ -> fail "unexpected parse shape"
  | Error e -> fail ("parse failed: " ^ e));
  check bool "member finds field" true
    (match member "ratio" v with Some (Float f) -> Float.equal f 11.5 | _ -> false);
  check bool "member on non-object" true (member "x" (Int 3) = None)

let test_json_rejects_malformed () =
  let open Report.Json in
  let bad s = match parse s with Error _ -> true | Ok _ -> false in
  check bool "empty input" true (bad "");
  check bool "trailing garbage" true (bad "{} x");
  check bool "unterminated string" true (bad "\"abc");
  check bool "unterminated object" true (bad "{\"a\": 1");
  check bool "missing colon" true (bad "{\"a\" 1}");
  check bool "NaN literal" true (bad "NaN");
  check bool "bare word" true (bad "nope");
  check bool "bad escape" true (bad "\"\\q\"");
  check bool "lone minus" true (bad "-")

let suite =
  [
    ( "engine-golden",
      [
        test_case "capture matches pre-overhaul fixture" `Quick test_golden_capture_identical;
        test_case "fixture restores and recaptures byte-identical" `Quick
          test_golden_restore_recapture;
      ] );
    ( "engine-allocator",
      [
        test_case "free count agrees with ownership scan" `Quick test_free_count_agrees_with_scan;
        test_case "allocation order preserved" `Quick test_allocation_order_preserved;
        test_case "contiguous runs across bitmap words" `Quick test_contiguous_across_words;
        test_case "arena slots are recycled zeroed" `Quick test_arena_slot_recycling;
        test_case "table_entries is a snapshot" `Quick test_table_entries_snapshot;
      ] );
    ( "engine-tcache",
      [ test_case "fast path observationally invisible" `Quick test_tcache_invisible ] );
    ( "engine-json",
      [
        test_case "emit/parse round-trip" `Quick test_json_roundtrip;
        test_case "malformed input rejected" `Quick test_json_rejects_malformed;
      ] );
    ( "engine-sharding",
      [
        test_case "domains 1/2/4 merge identically" `Slow test_sharding_deterministic;
        test_case "makespan accounting scales" `Slow test_sharding_scales;
      ] );
  ]
