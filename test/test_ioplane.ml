(* The host I/O plane: software switch, host event loop, the
   traffic-serving harness, ring backpressure under overload, the
   Figure 16 exit-count ordering, and snapshot parity — a restored or
   warm-cloned container must produce byte-for-byte identical
   per-request notification counts to a fresh one. *)

open Alcotest

let check_int = check int
let check_bool = check bool

(* ----------------------------- Switch ----------------------------- *)

let test_switch_forward () =
  let clock = Hw.Clock.create () in
  let sw = Ioplane.Switch.create clock in
  let a = Ioplane.Switch.port sw ~name:"a" in
  let b = Ioplane.Switch.port sw ~name:"b" in
  Ioplane.Switch.connect sw a b;
  Ioplane.Switch.forward sw ~src:a (Bytes.of_string "hello");
  Ioplane.Switch.forward sw ~src:a (Bytes.of_string "world");
  check_int "b has two frames" 2 (Ioplane.Switch.pending b);
  (match Ioplane.Switch.drain b with
  | [ x; y ] ->
      check string "fifo order" "hello" (Bytes.to_string x);
      check string "fifo order 2" "world" (Bytes.to_string y)
  | l -> fail (Printf.sprintf "expected 2 frames, got %d" (List.length l)));
  check_int "drained" 0 (Ioplane.Switch.pending b);
  (* Reverse direction uses the same link. *)
  Ioplane.Switch.forward sw ~src:b (Bytes.of_string "back");
  check_int "a got the reply" 1 (Ioplane.Switch.pending a);
  check_int "forwarded counter" 3 (Ioplane.Switch.forwarded sw);
  check_int "no drops" 0 (Ioplane.Switch.dropped sw);
  (* An unlinked port drops. *)
  let lone = Ioplane.Switch.port sw ~name:"lone" in
  Ioplane.Switch.forward sw ~src:lone (Bytes.of_string "void");
  check_int "unlinked frame dropped" 1 (Ioplane.Switch.dropped sw);
  (* Forwarding costs host time. *)
  check_bool "switch charged the clock" true (Hw.Clock.occurrences clock "switch_forward" > 0)

(* ------------------------- Loop + backpressure --------------------- *)

let mk_cki_attached ?(queue_size = 64) ?(window = 1) () =
  let c = Cki.Container.create_standalone ~mem_mib:256 () in
  let b = Cki.Container.backend c in
  let kernel = b.Virt.Backend.kernel in
  Kernel_model.Kernel.configure_io ~queue_size ~window kernel;
  let loop = Ioplane.Loop.create b.Virt.Backend.clock in
  let att = Ioplane.Loop.attach loop kernel ~name:"t0" in
  (c, b, loop, att)

let test_backpressure_overload () =
  (* A 4-entry TX ring, a window large enough that no doorbell fires,
     and a 16-request burst handled without a single event-loop tick:
     the ring must fill, and the guest must ride the graceful
     backpressure path (synchronous host service) instead of losing
     replies or raising. *)
  let _c, b, loop, att = mk_cki_attached ~queue_size:4 ~window:64 () in
  let kernel = b.Virt.Backend.kernel in
  let srv = Workloads.Kv.create_server b Workloads.Kv.Memcached in
  Ioplane.Loop.set_rx_socket att srv.Workloads.Kv.sock_id;
  let sw = Ioplane.Loop.switch loop in
  let client = Ioplane.Switch.port sw ~name:"client" in
  Ioplane.Switch.connect sw att.Ioplane.Loop.port client;
  let n = 16 in
  let reqs = List.init n (fun i -> if i mod 2 = 0 then Workloads.Kv.Set i else Workloads.Kv.Get i) in
  List.iter
    (fun r ->
      Ioplane.Switch.forward sw ~src:client
        (Workloads.Kv.encode_request r srv.Workloads.Kv.value_size))
    reqs;
  ignore (Ioplane.Loop.pump att);
  List.iter (fun r -> Workloads.Kv.handle_request srv r) reqs;
  (* Flush the tail. *)
  while Ioplane.Loop.tick loop > 0 do
    ()
  done;
  check_int "every reply reached the client port" n (Ioplane.Switch.pending client);
  check_bool "the ring filled and stalled gracefully" true
    (Kernel_model.Kernel.tx_stalls kernel > 0);
  check_bool "stall time was charged" true
    (Hw.Clock.occurrences b.Virt.Backend.clock "virtio_tx_stall" > 0);
  check_int "all requests handled" n srv.Workloads.Kv.requests

let test_loop_naive_window_services_on_kick () =
  (* window 0: the doorbell exit itself triggers the service pass —
     the reply is at the client port before any tick runs. *)
  let _c, b, loop, att = mk_cki_attached ~queue_size:8 ~window:0 () in
  let srv = Workloads.Kv.create_server b Workloads.Kv.Memcached in
  Ioplane.Loop.set_rx_socket att srv.Workloads.Kv.sock_id;
  let sw = Ioplane.Loop.switch loop in
  let client = Ioplane.Switch.port sw ~name:"client" in
  Ioplane.Switch.connect sw att.Ioplane.Loop.port client;
  Ioplane.Switch.forward sw ~src:client
    (Workloads.Kv.encode_request (Workloads.Kv.Get 1) srv.Workloads.Kv.value_size);
  ignore (Ioplane.Loop.pump att);
  Workloads.Kv.handle_request srv (Workloads.Kv.Get 1);
  check_int "reply served by the doorbell itself" 1 (Ioplane.Switch.pending client)

(* ----------------------------- Serve ------------------------------ *)

let serve_checked cfg =
  Analysis.checked
    ~label:(Printf.sprintf "test/%s-w%d" cfg.Ioplane.Serve.backend cfg.Ioplane.Serve.window)
    (fun () -> Ioplane.Serve.run cfg)

let small_cfg backend window =
  {
    Ioplane.Serve.default_config with
    Ioplane.Serve.backend;
    containers = 2;
    requests_per_container = 25;
    window;
  }

let test_serve_all_backends () =
  List.iter
    (fun backend ->
      let r = serve_checked (small_cfg backend 1) in
      check_int (backend ^ ": all requests completed") 50 r.Ioplane.Serve.r_requests;
      check_bool (backend ^ ": throughput positive") true (r.Ioplane.Serve.r_throughput_rps > 0.0);
      check_bool
        (backend ^ ": latency percentiles ordered")
        true
        (r.Ioplane.Serve.r_p50_us <= r.Ioplane.Serve.r_p95_us
        && r.Ioplane.Serve.r_p95_us <= r.Ioplane.Serve.r_p99_us);
      if backend = "runc" then begin
        check_int "runc: no doorbells" 0 r.Ioplane.Serve.r_doorbells;
        check_int "runc: no exits" 0 r.Ioplane.Serve.r_exits
      end
      else begin
        check_bool (backend ^ ": rings kicked") true (r.Ioplane.Serve.r_doorbells > 0);
        check_bool (backend ^ ": interrupts delivered") true (r.Ioplane.Serve.r_interrupts > 0)
      end)
    [ "runc"; "hvm"; "pvm"; "cki" ]

let test_serve_exit_ordering () =
  (* Figure 16's shape: CKI coalesced < CKI naive < HVM on exits per
     request; runc at zero. The ordering needs saturating load — at
     trickle rates every backend takes one notification pair per
     request and only the per-notification exit cost differs. *)
  let saturated backend window =
    { (small_cfg backend window) with Ioplane.Serve.rate_rps = 1e6; requests_per_container = 50 }
  in
  let hvm = serve_checked (saturated "hvm" 0) in
  let cki_naive = serve_checked (saturated "cki" 0) in
  let cki_coal = serve_checked (saturated "cki" 4) in
  check_bool "cki naive beats hvm" true
    (cki_naive.Ioplane.Serve.r_exits_per_req < hvm.Ioplane.Serve.r_exits_per_req);
  check_bool "coalescing beats naive" true
    (cki_coal.Ioplane.Serve.r_exits_per_req < cki_naive.Ioplane.Serve.r_exits_per_req);
  check_bool "coalescing suppressed kicks" true (cki_coal.Ioplane.Serve.r_suppressed_kicks > 0);
  check_bool "coalescing reduced doorbells" true
    (cki_coal.Ioplane.Serve.r_doorbells < cki_naive.Ioplane.Serve.r_doorbells)

let test_serve_sched_multiplexed () =
  let cfg = { (small_cfg "cki" 1) with Ioplane.Serve.use_sched = true } in
  let r = serve_checked cfg in
  check_int "all requests completed under the scheduler" 50 r.Ioplane.Serve.r_requests;
  check_bool "throughput positive" true (r.Ioplane.Serve.r_throughput_rps > 0.0)

let test_serve_blk_path () =
  let cfg = { (small_cfg "cki" 1) with Ioplane.Serve.fsync_every = 2 } in
  let r = serve_checked cfg in
  check_bool "fsyncs landed in the block store" true (r.Ioplane.Serve.r_blk_writes > 0)

(* ------------------------- Snapshot parity ------------------------- *)

let cfg32 = { Cki.Config.default with Cki.Config.segment_frames = 8192 (* 32 MiB *) }

(* Drive a fixed request sequence through one container's I/O plane
   and return its notification counters. *)
let drive ?(window = 2) (c : Cki.Container.t) =
  let b = Cki.Container.backend c in
  let kernel = b.Virt.Backend.kernel in
  Kernel_model.Kernel.configure_io ~queue_size:16 ~window kernel;
  let clock = b.Virt.Backend.clock in
  let loop = Ioplane.Loop.create clock in
  let att = Ioplane.Loop.attach loop kernel ~name:"par" in
  let srv = Workloads.Kv.create_server b Workloads.Kv.Memcached in
  Ioplane.Loop.set_rx_socket att srv.Workloads.Kv.sock_id;
  let sw = Ioplane.Loop.switch loop in
  let client = Ioplane.Switch.port sw ~name:"client" in
  Ioplane.Switch.connect sw att.Ioplane.Loop.port client;
  let exits0 =
    Hw.Clock.occurrences clock "cki_hypercall" + Hw.Clock.occurrences clock "cki_irq_exit"
  in
  for i = 1 to 32 do
    let req = if i mod 2 = 0 then Workloads.Kv.Set i else Workloads.Kv.Get i in
    Ioplane.Switch.forward sw ~src:client
      (Workloads.Kv.encode_request req srv.Workloads.Kv.value_size);
    ignore (Ioplane.Loop.pump att);
    Workloads.Kv.handle_request srv req;
    if i mod 4 = 0 then ignore (Ioplane.Loop.tick loop)
  done;
  while Ioplane.Loop.tick loop > 0 do
    ()
  done;
  let replies = Ioplane.Switch.pending client in
  let exits =
    Hw.Clock.occurrences clock "cki_hypercall" + Hw.Clock.occurrences clock "cki_irq_exit"
    - exits0
  in
  let kicks, suppressed, irqs, serviced =
    match Kernel_model.Kernel.io_devices kernel with
    | None -> (0, 0, 0, 0)
    | Some (tx, rx, blk) ->
        let sum f = f tx + f rx + f blk in
        ( sum Kernel_model.Virtio.kicks,
          sum Kernel_model.Virtio.suppressed_kicks,
          sum Kernel_model.Virtio.interrupts,
          sum Kernel_model.Virtio.serviced_total )
  in
  (replies, kicks, suppressed, irqs, serviced, exits)

let restore_exn host image =
  match Snapshot.Restore.restore host image with
  | Ok c -> c
  | Error e -> fail ("restore: " ^ Snapshot.Restore.show_error e)

let test_parity_fresh_restored_cloned () =
  (* The same traffic against a fresh container, a snapshot-restored
     one, and a warm clone must produce identical notification counts:
     the rings and coalescing state rebuild exactly. *)
  let host0 = Cki.Host.create (Hw.Machine.create ~mem_mib:256 ()) in
  let fresh = Cki.Container.create ~cfg:cfg32 host0 in
  let origin = Cki.Container.create ~cfg:cfg32 host0 in
  let image =
    match Snapshot.Capture.capture origin with
    | Ok img -> img
    | Error e -> fail ("capture: " ^ Snapshot.Capture.show_error e)
  in
  let host1 = Cki.Host.create (Hw.Machine.create ~mem_mib:256 ()) in
  let restored = restore_exn host1 image in
  let tpl =
    match Snapshot.Template.create (Cki.Container.create ~cfg:cfg32 host0) with
    | Ok t -> t
    | Error e -> fail ("template: " ^ Snapshot.Template.show_error e)
  in
  let cloned =
    match Snapshot.Template.clone tpl with
    | Ok c -> c
    | Error e -> fail ("clone: " ^ Snapshot.Template.show_error e)
  in
  let rf = drive fresh in
  let rr = drive restored in
  let rc = drive cloned in
  let show (replies, kicks, sup, irqs, serviced, exits) =
    Printf.sprintf "replies=%d kicks=%d suppressed=%d irqs=%d serviced=%d exits=%d" replies kicks
      sup irqs serviced exits
  in
  check string "restored counts identical to fresh" (show rf) (show rr);
  check string "cloned counts identical to fresh" (show rf) (show rc);
  let replies, _, _, _, _, _ = rf in
  check_int "every reply delivered" 32 replies

let test_parity_coalescing_reduces () =
  (* Same sequence, naive vs coalesced: coalescing strictly reduces
     doorbells, interrupts, and exits without losing a reply. *)
  let host = Cki.Host.create (Hw.Machine.create ~mem_mib:256 ()) in
  let naive = drive ~window:0 (Cki.Container.create ~cfg:cfg32 host) in
  let coal = drive ~window:8 (Cki.Container.create ~cfg:cfg32 host) in
  let n_replies, n_kicks, _, n_irqs, n_serviced, n_exits = naive in
  let c_replies, c_kicks, c_sup, c_irqs, c_serviced, c_exits = coal in
  check_int "naive serves all" 32 n_replies;
  check_int "coalesced serves all" 32 c_replies;
  check_int "identical work serviced" n_serviced c_serviced;
  check_bool "fewer doorbells" true (c_kicks < n_kicks);
  check_bool "kicks were suppressed, not lost" true (c_sup > 0);
  check_bool "no more interrupts than naive" true (c_irqs <= n_irqs);
  check_bool "fewer exits" true (c_exits < n_exits)

(* ------------------------ Capture quiescence ----------------------- *)

let test_capture_rejects_active_rings () =
  (* In-flight descriptors at capture time would snapshot a ring the
     host is mid-service on: the capture must refuse. *)
  let host = Cki.Host.create (Hw.Machine.create ~mem_mib:256 ()) in
  let c = Cki.Container.create ~cfg:cfg32 host in
  let b = Cki.Container.backend c in
  let kernel = b.Virt.Backend.kernel in
  Kernel_model.Kernel.configure_io ~queue_size:8 ~window:64 kernel;
  let srv = Workloads.Kv.create_server b Workloads.Kv.Memcached in
  (* Handle a request with no I/O plane attached and no service pass:
     the TX descriptor stays in flight. *)
  Kernel_model.Kernel.deliver_packet kernel ~sid:srv.Workloads.Kv.sock_id
    (Workloads.Kv.encode_request (Workloads.Kv.Get 1) srv.Workloads.Kv.value_size)
  |> ignore;
  Workloads.Kv.handle_request srv (Workloads.Kv.Get 1);
  check_bool "ring has unreclaimed work" true
    (Kernel_model.Kernel.io_unreclaimed kernel <> []);
  (match Snapshot.Capture.capture c with
  | Error (Snapshot.Capture.Device_active _) -> ()
  | Ok _ -> fail "capture should refuse an active ring"
  | Error e -> fail ("wrong error: " ^ Snapshot.Capture.show_error e));
  (* Quiesce (service + reclaim via a service pass), then capture. *)
  let loop = Ioplane.Loop.create b.Virt.Backend.clock in
  let att = Ioplane.Loop.attach loop kernel ~name:"q" in
  while Ioplane.Loop.tick loop > 0 do
    ()
  done;
  Ioplane.Loop.detach loop att;
  check_bool "quiesced" true (Kernel_model.Kernel.io_unreclaimed kernel = []);
  (* The open server socket still blocks capture (a separate,
     long-standing limitation) — but the ring objection must be gone. *)
  match Snapshot.Capture.capture c with
  | Error (Snapshot.Capture.Device_active _) -> fail "still claims active rings after quiesce"
  | Ok _ | Error _ -> ()

let suite =
  [
    ( "ioplane-switch",
      [ test_case "forward/drain/drop accounting" `Quick test_switch_forward ] );
    ( "ioplane-loop",
      [
        test_case "overload rides backpressure, no loss" `Quick test_backpressure_overload;
        test_case "naive window services on the doorbell" `Quick
          test_loop_naive_window_services_on_kick;
      ] );
    ( "ioplane-serve",
      [
        test_case "all four backends serve clean" `Quick test_serve_all_backends;
        test_case "Fig 16 exit ordering" `Quick test_serve_exit_ordering;
        test_case "vCPU-scheduler multiplexing" `Quick test_serve_sched_multiplexed;
        test_case "fsync rides virtio-blk into the store" `Quick test_serve_blk_path;
      ] );
    ( "ioplane-snapshot",
      [
        test_case "fresh/restored/cloned count parity" `Quick test_parity_fresh_restored_cloned;
        test_case "coalescing strictly reduces counts" `Quick test_parity_coalescing_reduces;
        test_case "capture refuses active rings" `Quick test_capture_rejects_active_rings;
      ] );
  ]
