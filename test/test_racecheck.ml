(* Dynamic cross-domain access checker tests.

   Two halves, like the other analysis suites: synthetic tagged
   streams that exercise the vector-clock happens-before logic edge by
   edge (fault injection — sequences the real engines would never
   emit), and live captures where the sharded engines run with
   [Hw.Probe.set_mem_trace] enabled and the replayed trace is checked
   — clean for the production per-lane discipline, flagged when two
   lanes deliberately share one machine. *)

open Alcotest

module P = Hw.Probe
module R = Analysis.Racecheck

let mw dom mem pfn = (dom, P.Mem_write { mem; pfn })
let mr dom mem pfn = (dom, P.Mem_read { mem; pfn })
let sp parent child = (parent, P.Domain_spawn { parent; child })
let jn parent child = (parent, P.Domain_join { parent; child })

let races r = List.length r.R.races

(* ------------------------------------------------------------------ *)
(* Synthetic streams                                                   *)
(* ------------------------------------------------------------------ *)

let test_unordered_writes_race () =
  let r = R.check [ mw 1 0 5; mw 2 0 5 ] in
  check int "one race" 1 (races r);
  (match r.R.races with
  | [ rc ] ->
      check int "mem" 0 rc.R.mem;
      check int "pfn" 5 rc.R.pfn;
      check int "first domain" 1 rc.R.first_dom;
      check int "second domain" 2 rc.R.second_dom;
      check bool "write/write" true (rc.R.first_write && rc.R.second_write)
  | _ -> fail "expected exactly one race");
  check int "accesses counted" 2 r.R.accesses;
  check int "objects counted" 1 r.R.objects;
  check int "domains counted" 2 r.R.domains

let test_spawn_join_edges_order () =
  (* parent writes, spawns a child that writes, joins, writes again:
     every pair is ordered by an edge — clean. *)
  let r = R.check [ mw 0 0 7; sp 0 1; mw 1 0 7; jn 0 1; mw 0 0 7 ] in
  check bool "spawn/join-ordered accesses are clean" true (R.is_clean r);
  check int "edges counted" 2 r.R.edges

let test_post_spawn_parent_races_child () =
  (* The parent's write AFTER the spawn is concurrent with the child:
     the spawn edge orders only pre-spawn parent work. *)
  let r = R.check [ sp 0 1; mw 0 0 7; mw 1 0 7; jn 0 1 ] in
  check int "post-spawn parent write races the child" 1 (races r)

let test_sibling_domains_race () =
  let r = R.check [ sp 0 1; sp 0 2; mw 1 0 3; mw 2 0 3; jn 0 1; jn 0 2 ] in
  check int "siblings share no edge" 1 (races r);
  let r = R.check [ sp 0 1; sp 0 2; mw 1 0 3; mw 2 0 4; jn 0 1; jn 0 2 ] in
  check bool "disjoint pfns are clean" true (R.is_clean r)

let test_concurrent_reads_clean () =
  let r = R.check [ sp 0 1; sp 0 2; mr 1 0 3; mr 2 0 3; jn 0 1; jn 0 2 ] in
  check bool "read/read is not a race" true (R.is_clean r)

let test_read_write_races () =
  let r = R.check [ sp 0 1; sp 0 2; mr 1 0 3; mw 2 0 3; jn 0 1; jn 0 2 ] in
  check int "read vs concurrent write races" 1 (races r);
  match r.R.races with
  | [ rc ] ->
      check bool "first access was the read" false rc.R.first_write;
      check bool "second access was the write" true rc.R.second_write
  | _ -> fail "expected exactly one race"

let test_write_read_after_join_clean () =
  let r = R.check [ sp 0 1; mw 1 0 9; jn 0 1; mr 0 0 9 ] in
  check bool "parent read after join sees the child's write in order" true (R.is_clean r)

let test_mem_id_disambiguates () =
  (* Two shards legitimately own distinct Phys_mem instances with
     overlapping pfn ranges: same pfn, different mem — no race. *)
  let r = R.check [ sp 0 1; sp 0 2; mw 1 0 3; mw 2 1 3; jn 0 1; jn 0 2 ] in
  check bool "(mem_id, pfn) keying keeps distinct machines apart" true (R.is_clean r)

let test_race_dedup_per_pair () =
  (* Many conflicting accesses to one object by one domain pair
     collapse into a single finding. *)
  let r = R.check [ sp 0 1; sp 0 2; mw 1 0 3; mw 2 0 3; mw 1 0 3; mw 2 0 3; jn 0 1; jn 0 2 ] in
  check int "deduped per (mem, pfn, domain pair)" 1 (races r)

let test_transitive_join_spawn_order () =
  (* d1 is joined before d2 is spawned: d2 inherits d1's work through
     the parent — ordered, clean. *)
  let r = R.check [ sp 0 1; mw 1 0 3; jn 0 1; sp 0 2; mw 2 0 3; jn 0 2 ] in
  check bool "join-then-spawn chains order sibling generations" true (R.is_clean r)

(* ------------------------------------------------------------------ *)
(* Live captures                                                       *)
(* ------------------------------------------------------------------ *)

(* Run [f] with the recorder attached and Phys_mem tracing enabled,
   return (result, racecheck report). *)
let with_race_capture ?capacity f =
  P.set_mem_trace true;
  Fun.protect
    ~finally:(fun () -> P.set_mem_trace false)
    (fun () ->
      let x, trace = Analysis.Trace.with_recorder ?capacity f in
      (x, R.of_trace trace))

let test_shared_machine_across_lanes_caught () =
  (* The seeded dynamic race fixture: two lanes on two domains mutate
     frame metadata of ONE shared machine — exactly the sharing the
     per-lane discipline forbids, and the checker must flag it. *)
  let mem = Hw.Phys_mem.create ~frames:64 in
  let (), report =
    with_race_capture (fun () ->
        Hw.Domain_shard.run ~domains:2 ~lanes:2 (fun i ->
            Hw.Phys_mem.set_owner mem 3 (Hw.Phys_mem.Container i)))
  in
  check bool "shared machine across lanes is flagged" false (R.is_clean report);
  (match report.R.races with
  | rc :: _ ->
      check int "the shared machine's mem_id" (Hw.Phys_mem.mem_id mem) rc.R.mem;
      check int "the contended frame" 3 rc.R.pfn
  | [] -> fail "expected a race");
  check int "two spawn + two join edges" 4 report.R.edges

let test_disjoint_lanes_clean () =
  (* The production discipline: each lane owns its machine. *)
  let (), report =
    with_race_capture (fun () ->
        Hw.Domain_shard.run ~domains:2 ~lanes:2 (fun i ->
            let mem = Hw.Phys_mem.create ~frames:64 in
            Hw.Phys_mem.set_owner mem 3 (Hw.Phys_mem.Container i);
            ignore (Hw.Phys_mem.owner mem 3)))
  in
  check bool "per-lane machines are clean" true (R.is_clean report);
  check bool "accesses were actually traced" true (report.R.accesses > 0)

let test_sequential_lanes_clean () =
  (* domains <= 1 runs lanes inline on the parent domain: same object,
     but one domain — never a race. *)
  let mem = Hw.Phys_mem.create ~frames:64 in
  let (), report =
    with_race_capture (fun () ->
        Hw.Domain_shard.run ~domains:1 ~lanes:2 (fun i ->
            Hw.Phys_mem.set_owner mem 3 (Hw.Phys_mem.Container i)))
  in
  check bool "sequential lanes share a domain — clean" true (R.is_clean report);
  check int "no spawn/join edges without workers" 0 report.R.edges

let test_mem_trace_off_by_default () =
  let mem = Hw.Phys_mem.create ~frames:16 in
  let (), trace =
    Analysis.Trace.with_recorder (fun () ->
        Hw.Phys_mem.set_owner mem 1 (Hw.Phys_mem.Container 0))
  in
  let has_mem_event =
    List.exists
      (function P.Mem_read _ | P.Mem_write _ -> true | _ -> false)
      (Analysis.Trace.events trace)
  in
  check bool "no Mem_* events unless set_mem_trace is on" false has_mem_event

let suite =
  [
    ( "racecheck-clocks",
      [
        test_case "unordered writes race" `Quick test_unordered_writes_race;
        test_case "spawn/join edges order accesses" `Quick test_spawn_join_edges_order;
        test_case "post-spawn parent work races child" `Quick test_post_spawn_parent_races_child;
        test_case "sibling domains race" `Quick test_sibling_domains_race;
        test_case "concurrent reads are clean" `Quick test_concurrent_reads_clean;
        test_case "read/write pair races" `Quick test_read_write_races;
        test_case "write then read after join is clean" `Quick test_write_read_after_join_clean;
        test_case "mem_id keeps machines apart" `Quick test_mem_id_disambiguates;
        test_case "races dedup per domain pair" `Quick test_race_dedup_per_pair;
        test_case "join-then-spawn orders generations" `Quick test_transitive_join_spawn_order;
      ] );
    ( "racecheck-live",
      [
        test_case "shared machine across lanes caught" `Quick test_shared_machine_across_lanes_caught;
        test_case "disjoint lanes clean" `Quick test_disjoint_lanes_clean;
        test_case "sequential lanes clean" `Quick test_sequential_lanes_clean;
        test_case "mem tracing off by default" `Quick test_mem_trace_off_by_default;
      ] );
  ]
