(* Analysis-subsystem tests.

   Two families:
     - fault injection: corrupt live machine state behind the KSM's
       back (raw Hw.Phys_mem writes, TLB desync) or synthesize probe
       event sequences the hardware extensions would normally prevent,
       then assert the matching scanner/lint rule fires;
     - clean runs: boot + workload + gate traffic must scan and lint
       to zero findings. *)

open Alcotest

let check_bool = check bool

let mk ?(mem_mib = 160) () = Cki.Container.create_standalone ~mem_mib ()
let mem_of (c : Cki.Container.t) = Hw.Machine.mem (Cki.Host.machine c.Cki.Container.host)
let scan c = Analysis.check_machine ~containers:[ c ]
let has rule vs = List.exists (fun v -> Analysis.Invariants.rule_name v = rule) vs
let lint_has rule fs = List.exists (fun f -> Analysis.Lint.rule_name f = rule) fs

let fires name rule vs =
  check_bool (Printf.sprintf "%s: %s fires" name rule) true (has rule vs)

(* Raw leaf-slot lookup (own walk, no KSM involvement): the L1 table
   frame and index holding [va]'s leaf under the kernel root. *)
let leaf_slot c va =
  let mem = mem_of c in
  let rec go lvl table =
    let idx = Hw.Addr.index_at_level ~lvl va in
    if lvl = 1 then (table, idx)
    else go (lvl - 1) (Hw.Pte.pfn (Hw.Phys_mem.read_entry mem ~pfn:table ~index:idx))
  in
  go 4 (Cki.Ksm.kernel_root (Cki.Container.ksm c))

(* Install a user page at [va] through the legitimate KSM path. *)
let map_user ?(user = true) ?(writable = true) c ~va =
  let ksm = Cki.Container.ksm c in
  let buddy = Cki.Container.buddy c in
  let pfn = Kernel_model.Buddy.alloc buddy in
  match
    Cki.Ksm.guest_map ksm ~root:(Cki.Ksm.kernel_root ksm) ~va ~pfn
      ~flags:{ Hw.Pte.default_flags with writable; user; nx = true }
      ~alloc_ptp:(fun () -> Kernel_model.Buddy.alloc buddy)
  with
  | Ok () -> pfn
  | Error e -> fail (Cki.Ksm.show_error e)

let raw_write c ~pfn ~index v = Hw.Phys_mem.write_entry (mem_of c) ~pfn ~index v

(* ------------------------------------------------------------------ *)
(* Clean runs                                                          *)
(* ------------------------------------------------------------------ *)

let test_clean_boot () =
  let c = mk () in
  check int "fresh boot scans clean" 0 (List.length (scan c))

let test_clean_scenario () =
  (* Boot + syscalls + faults + munmap + hypercall + interrupt under a
     recorder: machine scan and trace lint both come back empty. *)
  Analysis.checked ~label:"clean-scenario" (fun () ->
      let c = mk () in
      let b = Cki.Container.backend c in
      let task = Virt.Backend.spawn b in
      (match Virt.Backend.syscall_exn b task Kernel_model.Syscall.Getpid with
      | Kernel_model.Syscall.Rint _ -> ()
      | _ -> fail "getpid");
      let base =
        match
          Virt.Backend.syscall_exn b task
            (Kernel_model.Syscall.Mmap { pages = 16; prot = Kernel_model.Vma.prot_rw })
        with
        | Kernel_model.Syscall.Rint v -> v
        | _ -> fail "mmap"
      in
      ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages:16 ~write:true);
      Kernel_model.Mm.munmap task.Kernel_model.Task.mm ~start:base ~pages:16;
      b.Virt.Backend.empty_hypercall ();
      let gates = Cki.Container.gates c in
      let cpu = Cki.Container.cpu c 0 in
      (match
         Cki.Gates.interrupt gates cpu ~vcpu:0 ~vector:Hw.Idt.vec_timer ~kind:Hw.Idt.Hardware
           (fun _ -> ())
       with
      | Ok () -> ()
      | Error e -> fail (Cki.Gates.show_error e));
      ((), [ c ]))

let test_clean_gate_traffic () =
  (* Interleaved gate traffic produces a lint-clean trace. *)
  let c, trace =
    Analysis.Trace.with_recorder (fun () ->
        let c = mk () in
        let gates = Cki.Container.gates c in
        let cpu = Cki.Container.cpu c 0 in
        for i = 1 to 300 do
          match i mod 3 with
          | 0 -> (
              match Cki.Gates.ksm_call gates cpu ~vcpu:0 (fun () -> ()) with
              | Ok () -> ()
              | Error e -> fail (Cki.Gates.show_error e))
          | 1 -> (
              match
                Cki.Gates.hypercall gates cpu ~vcpu:0 ~request:Kernel_model.Platform.Timer
                  (fun _ -> ())
              with
              | Ok () -> ()
              | Error e -> fail (Cki.Gates.show_error e))
          | _ -> (
              match
                Cki.Gates.interrupt gates cpu ~vcpu:0 ~vector:Hw.Idt.vec_timer
                  ~kind:Hw.Idt.Hardware (fun _ -> ())
              with
              | Ok () -> ()
              | Error e -> fail (Cki.Gates.show_error e))
        done;
        c)
  in
  check int "trace lints clean" 0 (List.length (Analysis.lint_trace trace));
  check int "machine scans clean" 0 (List.length (scan c))

let test_attacks_leave_clean_state () =
  (* Every blocked escape attempt leaves no residue the scanner
     objects to. *)
  let c = mk ~mem_mib:256 () in
  List.iter
    (fun (name, outcome) ->
      match outcome with
      | Cki.Attacks.Blocked _ -> ()
      | Cki.Attacks.Succeeded -> fail (name ^ " escaped"))
    (Cki.Attacks.all c);
  check int "post-attack scan clean" 0 (List.length (scan c))

(* ------------------------------------------------------------------ *)
(* Scanner fault injection                                             *)
(* ------------------------------------------------------------------ *)

let test_undeclared_ptp () =
  let c = mk () in
  let rogue = Kernel_model.Buddy.alloc (Cki.Container.buddy c) in
  let root = Cki.Ksm.kernel_root (Cki.Container.ksm c) in
  (* splice an undeclared guest frame in as an L3 table *)
  raw_write c ~pfn:root ~index:5
    (Hw.Pte.make ~pfn:rogue ~flags:{ Hw.Pte.default_flags with writable = true });
  fires "corrupt root entry" "I1-undeclared-ptp" (scan c)

let test_guest_writable_ptp () =
  let c = mk () in
  let buddy = Cki.Container.buddy c in
  let ksm = Cki.Container.ksm c in
  let ptp = Kernel_model.Buddy.alloc buddy in
  (match Cki.Ksm.declare_ptp ksm ~pfn:ptp ~level:1 with
  | Ok () -> ()
  | Error e -> fail (Cki.Ksm.show_error e));
  (* undo the I2 re-tag behind the monitor's back: the guest's
     direct-map view becomes writable again *)
  let va = Cki.Layout.direct_va_of_pa (Hw.Addr.pa_of_pfn ptp) in
  let table, idx = leaf_slot c va in
  let e = Hw.Phys_mem.read_entry (mem_of c) ~pfn:table ~index:idx in
  raw_write c ~pfn:table ~index:idx (Hw.Pte.with_pkey e Hw.Pks.pkey_guest);
  fires "direct-map retag undone" "I2-writable-ptp" (scan c)

let test_maps_declared_ptp () =
  let c = mk () in
  let buddy = Cki.Container.buddy c in
  let ksm = Cki.Container.ksm c in
  let ptp = Kernel_model.Buddy.alloc buddy in
  (match Cki.Ksm.declare_ptp ksm ~pfn:ptp ~level:1 with
  | Ok () -> ()
  | Error e -> fail (Cki.Ksm.show_error e));
  (* a read-only alias outside the pkey_ptp view *)
  let va = Cki.Layout.direct_va_of_pa (Hw.Addr.pa_of_pfn ptp) in
  let table, idx = leaf_slot c va in
  let e = Hw.Phys_mem.read_entry (mem_of c) ~pfn:table ~index:idx in
  raw_write c ~pfn:table ~index:idx
    (Hw.Pte.with_pkey (Hw.Pte.with_writable e false) Hw.Pks.pkey_guest);
  fires "read-only alias of PTP" "I2-maps-ptp" (scan c)

let test_targets_monitor () =
  let c = mk () in
  let va = 0x4000_0000 in
  ignore (map_user c ~va);
  let table, idx = leaf_slot c va in
  (* redirect the leaf at KSM-owned memory (the root table itself) *)
  raw_write c ~pfn:table ~index:idx
    (Hw.Pte.make
       ~pfn:(Cki.Ksm.kernel_root (Cki.Container.ksm c))
       ~flags:{ Hw.Pte.default_flags with writable = true; nx = true });
  fires "leaf targets monitor memory" "pte-targets-monitor" (scan c)

let test_outside_delegation () =
  let c = mk () in
  let mem = mem_of c in
  let va = 0x4000_0000 in
  ignore (map_user c ~va);
  (* find a frame outside the delegation (free, or host-owned) *)
  let total = Hw.Phys_mem.total_frames mem in
  let rec find_free pfn =
    if pfn >= total then fail "no free frame"
    else if Hw.Phys_mem.is_free mem pfn then pfn
    else find_free (pfn + 1)
  in
  let foreign = find_free 0 in
  let table, idx = leaf_slot c va in
  raw_write c ~pfn:table ~index:idx
    (Hw.Pte.make ~pfn:foreign ~flags:{ Hw.Pte.default_flags with writable = true; nx = true });
  fires "leaf escapes the delegated segment" "pte-outside-delegation" (scan c)

let test_kernel_exec_leaf () =
  let c = mk () in
  let va = 0x4000_0000 in
  let pfn = map_user c ~va in
  let table, idx = leaf_slot c va in
  (* flip to a kernel-executable mapping after the freeze *)
  raw_write c ~pfn:table ~index:idx
    (Hw.Pte.make ~pfn ~flags:{ Hw.Pte.default_flags with writable = false; user = false; nx = false });
  fires "new kernel-executable mapping" "kernel-exec-leaf" (scan c)

let test_wx_leaf () =
  let c = mk () in
  let va = 0x4000_0000 in
  let pfn = map_user c ~va in
  let table, idx = leaf_slot c va in
  raw_write c ~pfn:table ~index:idx
    (Hw.Pte.make ~pfn ~flags:{ Hw.Pte.default_flags with writable = true; user = true; nx = false });
  fires "writable+executable leaf" "wx-leaf" (scan c)

let test_missing_splice () =
  let c = mk () in
  let ksm = Cki.Container.ksm c in
  let root = Cki.Ksm.kernel_root ksm in
  let copies = Option.get (Cki.Ksm.root_copies ksm root) in
  (* drop the KSM region from one per-vCPU copy: gate code would no
     longer be mapped on that vCPU *)
  raw_write c ~pfn:copies.(0) ~index:Cki.Layout.l4_ksm Hw.Pte.empty;
  fires "copy lost the KSM splice" "I3-missing-splice" (scan c)

let test_missing_pervcpu_splice () =
  let c = mk () in
  let ksm = Cki.Container.ksm c in
  let copies = Option.get (Cki.Ksm.root_copies ksm (Cki.Ksm.kernel_root ksm)) in
  raw_write c ~pfn:copies.(0) ~index:Cki.Layout.l4_pervcpu Hw.Pte.empty;
  fires "copy lost the per-vCPU splice" "I3-missing-splice" (scan c)

let test_copy_divergence () =
  let c = mk () in
  let ksm = Cki.Container.ksm c in
  let va = 0x4000_0000 in
  ignore (map_user c ~va);
  let copies = Option.get (Cki.Ksm.root_copies ksm (Cki.Ksm.kernel_root ksm)) in
  (* clear the propagated user-range slot in one copy only *)
  raw_write c ~pfn:copies.(0) ~index:(Hw.Addr.index_at_level ~lvl:4 va) Hw.Pte.empty;
  fires "copy user slot diverged" "I3-copy-divergence" (scan c)

let test_ptp_level_mismatch () =
  let c = mk () in
  let ksm = Cki.Container.ksm c in
  let va = 0x4000_0000 in
  ignore (map_user c ~va);
  (* the L1 PTP of that mapping, wired in as an L3 table elsewhere *)
  let l1, _ = leaf_slot c va in
  raw_write c ~pfn:(Cki.Ksm.kernel_root ksm) ~index:7
    (Hw.Pte.make ~pfn:l1 ~flags:{ Hw.Pte.default_flags with writable = true });
  fires "declared PTP used at the wrong level" "I1-level-mismatch" (scan c)

let test_ptp_kind_mismatch () =
  let c = mk () in
  let ksm = Cki.Container.ksm c in
  let buddy = Cki.Container.buddy c in
  let ptp = Kernel_model.Buddy.alloc buddy in
  (match Cki.Ksm.declare_ptp ksm ~pfn:ptp ~level:2 with
  | Ok () -> ()
  | Error e -> fail (Cki.Ksm.show_error e));
  (* frame metadata contradicts the declaration *)
  Hw.Phys_mem.set_kind (mem_of c) ptp Hw.Phys_mem.Data;
  fires "declared PTP with data kind" "I1-kind-mismatch" (scan c)

let test_segment_owner () =
  let c = mk () in
  let base, _ = List.hd (Cki.Ksm.segments (Cki.Container.ksm c)) in
  Hw.Phys_mem.set_owner (mem_of c) base Hw.Phys_mem.Host;
  fires "delegated frame re-owned" "segment-owner" (scan c)

let test_stale_tlb () =
  let c = mk () in
  let ksm = Cki.Container.ksm c in
  let va = 0x4000_0000 in
  ignore (map_user c ~va);
  let cpu = Cki.Container.cpu c 0 in
  let pt = Hw.Page_table.of_root (mem_of c) cpu.Hw.Cpu.cr3 in
  (match Hw.Cpu.access cpu pt ~va ~access_kind:Hw.Pks.Read () with
  | Ok _ -> ()
  | Error f -> fail (Hw.Cpu.show_fault f));
  (* unmap through the KSM but "forget" the TLB shootdown *)
  (match Cki.Ksm.guest_unmap ksm ~root:(Cki.Ksm.kernel_root ksm) ~va with
  | Ok () -> ()
  | Error e -> fail (Cki.Ksm.show_error e));
  fires "cached translation survived unmap" "stale-tlb" (scan c);
  (* the shootdown clears the finding *)
  Hw.Cpu.exec_priv_exn cpu (Hw.Priv.Invlpg va);
  check_bool "invlpg resolves it" false (has "stale-tlb" (scan c))

(* ------------------------------------------------------------------ *)
(* Lint fault injection                                                *)
(* ------------------------------------------------------------------ *)

let guest = Hw.Pks.pkrs_guest

let test_lint_destructive_exec () =
  let fs =
    Analysis.Lint.run
      [
        Hw.Probe.Priv_exec
          { cpu = 0; mnemonic = "lidt"; destructive = true; pkrs = guest; blocked = false };
      ]
  in
  check_bool "unblocked destructive insn" true (lint_has "E2-destructive-exec" fs);
  let blocked =
    Analysis.Lint.run
      [
        Hw.Probe.Priv_exec
          { cpu = 0; mnemonic = "lidt"; destructive = true; pkrs = guest; blocked = true };
      ]
  in
  check int "blocked execution is fine" 0 (List.length blocked)

let test_lint_gate_pkrs_leak () =
  let fs =
    Analysis.Lint.run
      [
        Hw.Probe.Gate_enter { cpu = 0; gate = Hw.Probe.Ksm_call_gate; pkrs = guest };
        Hw.Probe.Gate_exit
          { cpu = 0; gate = Hw.Probe.Ksm_call_gate; entry_pkrs = guest; pkrs = 0 };
      ]
  in
  check_bool "gate exited with monitor rights" true (lint_has "gate-pkrs-leak" fs)

let test_lint_sysret_if_down () =
  let fs = Analysis.Lint.run [ Hw.Probe.Sysret { cpu = 0; pkrs = guest; if_after = false } ] in
  check_bool "sysret left IF off" true (lint_has "E3-sysret-if-down" fs);
  let ok = Analysis.Lint.run [ Hw.Probe.Sysret { cpu = 0; pkrs = guest; if_after = true } ] in
  check int "E3-pinned sysret is fine" 0 (List.length ok)

let test_lint_forged_pks_switch () =
  let fs =
    Analysis.Lint.run
      [
        Hw.Probe.Idt_deliver
          {
            cpu = 0;
            vector = 32;
            hardware = false;
            pks_switch = true;
            pkrs_before = guest;
            pkrs_after = 0;
          };
      ]
  in
  check_bool "software int zeroed PKRS" true (lint_has "E4-forged-pks-switch" fs);
  let fs2 =
    Analysis.Lint.run
      [
        Hw.Probe.Idt_deliver
          {
            cpu = 0;
            vector = 32;
            hardware = true;
            pks_switch = true;
            pkrs_before = guest;
            pkrs_after = guest;
          };
      ]
  in
  check_bool "hardware PKS switch failed to zero" true (lint_has "E4-forged-pks-switch" fs2)

let test_lint_wrpkrs_outside_gate () =
  let fs = Analysis.Lint.run [ Hw.Probe.Wrpkrs { cpu = 0; value = 0 } ] in
  check_bool "bare wrpkrs" true (lint_has "E1-wrpkrs-outside-gate" fs);
  let inside =
    Analysis.Lint.run
      [
        Hw.Probe.Gate_enter { cpu = 0; gate = Hw.Probe.Ksm_call_gate; pkrs = guest };
        Hw.Probe.Wrpkrs { cpu = 0; value = 0 };
        Hw.Probe.Wrpkrs { cpu = 0; value = guest };
        Hw.Probe.Gate_exit
          { cpu = 0; gate = Hw.Probe.Ksm_call_gate; entry_pkrs = guest; pkrs = guest };
      ]
  in
  check int "wrpkrs inside a gate is fine" 0 (List.length inside);
  (* truncated trace: the gate's enter fell off the ring buffer — the
     unmatched exit withdraws the candidate *)
  let truncated =
    Analysis.Lint.run
      [
        Hw.Probe.Wrpkrs { cpu = 0; value = guest };
        Hw.Probe.Gate_exit
          { cpu = 0; gate = Hw.Probe.Ksm_call_gate; entry_pkrs = guest; pkrs = guest };
      ]
  in
  check int "truncation tolerated" 0 (List.length truncated)

let test_lint_forged_completion () =
  (* A completion interrupt with nothing serviced: interrupt forgery
     (the legitimate host path never injects without publishing). *)
  let fs =
    Analysis.Lint.run
      [ Hw.Probe.Io_completion { queue = "cki1-net-tx"; used_idx = 3; serviced = 0 } ]
  in
  check_bool "completion with nothing serviced" true (lint_has "io-forged-completion" fs);
  (* used_idx replay: the index must strictly advance per completion. *)
  let fs2 =
    Analysis.Lint.run
      [
        Hw.Probe.Io_completion { queue = "q"; used_idx = 4; serviced = 2 };
        Hw.Probe.Io_completion { queue = "q"; used_idx = 4; serviced = 1 };
      ]
  in
  check_bool "replayed used_idx" true (lint_has "io-forged-completion" fs2);
  (* Distinct queues track distinct indexes. *)
  let fs3 =
    Analysis.Lint.run
      [
        Hw.Probe.Io_completion { queue = "a"; used_idx = 4; serviced = 4 };
        Hw.Probe.Io_completion { queue = "b"; used_idx = 2; serviced = 2 };
      ]
  in
  check int "per-queue index tracking" 0 (List.length fs3);
  (* Legitimate advancing completions are clean. *)
  let ok =
    Analysis.Lint.run
      [
        Hw.Probe.Io_completion { queue = "q"; used_idx = 2; serviced = 2 };
        Hw.Probe.Io_completion { queue = "q"; used_idx = 4; serviced = 2 };
      ]
  in
  check int "advancing completions are fine" 0 (List.length ok)

let test_lint_empty_doorbell () =
  (* A doorbell exit with an empty avail ring burns a host service
     pass for nothing — interrupt-storm shaped. *)
  let fs =
    Analysis.Lint.run [ Hw.Probe.Io_doorbell { queue = "q"; avail_idx = 5; in_flight = 0 } ]
  in
  check_bool "doorbell with empty ring" true (lint_has "io-empty-doorbell" fs);
  let ok =
    Analysis.Lint.run [ Hw.Probe.Io_doorbell { queue = "q"; avail_idx = 5; in_flight = 2 } ]
  in
  check int "doorbell with work is fine" 0 (List.length ok)

let test_lint_trace_truncated () =
  let guest = Hw.Pks.pkrs_guest in
  (* Same withdrawn-candidate stream, but with the recorder's drop
     count passed in: the suppression is surfaced, attributed to
     truncation, not silently swallowed. *)
  let events =
    [
      Hw.Probe.Wrpkrs { cpu = 0; value = guest };
      Hw.Probe.Gate_exit
        { cpu = 0; gate = Hw.Probe.Ksm_call_gate; entry_pkrs = guest; pkrs = guest };
    ]
  in
  (match Analysis.Lint.run ~dropped:37 events with
  | [ Analysis.Lint.Trace_truncated { dropped; withdrawn } ] ->
      check int "drop count surfaced" 37 dropped;
      check int "withdrawn candidate counted" 1 withdrawn
  | fs -> fail (Printf.sprintf "expected exactly trace-truncated, got %d findings" (List.length fs)));
  (* dropped = 0 (the default): no finding, exactly as before. *)
  check int "no finding without drops" 0 (List.length (Analysis.Lint.run events));
  (* Truncation without withdrawn candidates still reports. *)
  (match Analysis.Lint.run ~dropped:5 [] with
  | [ Analysis.Lint.Trace_truncated { dropped = 5; withdrawn = 0 } ] -> ()
  | _ -> fail "empty truncated trace should yield trace-truncated {5, 0}")

let test_trace_truncated_end_to_end () =
  (* A real overflowing recorder: capacity 4, more events than fit. *)
  let t = Analysis.Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Analysis.Trace.record t
      (Hw.Probe.Tlb_invlpg { cpu = 0; pcid = 1; vpn = 0x400 + i })
  done;
  check int "recorder counted the drops" 6 (Analysis.Trace.dropped t);
  let lints = Analysis.lint_trace t in
  check_bool "lint_trace surfaces truncation" true (lint_has "trace-truncated" lints);
  (* Informational, not a violation: the result is still clean and the
     finding renders at Info severity. *)
  let r = { Analysis.violations = []; lints } in
  check_bool "truncation alone keeps the result clean" true (Analysis.is_clean r);
  check_bool "but the report mentions it" true
    (List.exists
       (fun (f : Report.Findings.t) ->
         f.Report.Findings.rule = "trace-truncated"
         && f.Report.Findings.severity = Report.Findings.Info)
       (Analysis.findings r))

let test_lint_missing_shootdown () =
  (* Real machine states + events: map, cache on the vCPU, downgrade
     through the KSM, skip the shootdown. *)
  let c, trace =
    Analysis.Trace.with_recorder (fun () ->
        let c = mk () in
        let ksm = Cki.Container.ksm c in
        let va = 0x4000_0000 in
        ignore (map_user c ~va);
        let cpu = Cki.Container.cpu c 0 in
        let pt = Hw.Page_table.of_root (mem_of c) cpu.Hw.Cpu.cr3 in
        (match Hw.Cpu.access cpu pt ~va ~access_kind:Hw.Pks.Read () with
        | Ok _ -> ()
        | Error f -> fail (Hw.Cpu.show_fault f));
        (match Cki.Ksm.guest_unmap ksm ~root:(Cki.Ksm.kernel_root ksm) ~va with
        | Ok () -> ()
        | Error e -> fail (Cki.Ksm.show_error e));
        c)
  in
  ignore c;
  check_bool "downgrade without shootdown" true
    (lint_has "missing-shootdown" (Analysis.lint_trace trace));
  (* same scenario with the shootdown: clean *)
  let _, trace2 =
    Analysis.Trace.with_recorder (fun () ->
        let c = mk () in
        let ksm = Cki.Container.ksm c in
        let va = 0x4000_0000 in
        ignore (map_user c ~va);
        let cpu = Cki.Container.cpu c 0 in
        let pt = Hw.Page_table.of_root (mem_of c) cpu.Hw.Cpu.cr3 in
        (match Hw.Cpu.access cpu pt ~va ~access_kind:Hw.Pks.Read () with
        | Ok _ -> ()
        | Error f -> fail (Hw.Cpu.show_fault f));
        (match Cki.Ksm.guest_unmap ksm ~root:(Cki.Ksm.kernel_root ksm) ~va with
        | Ok () -> ()
        | Error e -> fail (Cki.Ksm.show_error e));
        Hw.Cpu.exec_priv_exn cpu (Hw.Priv.Invlpg va))
  in
  check_bool "shootdown resolves it" false
    (lint_has "missing-shootdown" (Analysis.lint_trace trace2))

let test_lint_cross_vcpu_shootdown () =
  (* Two vCPUs cache the mapping; only one is invalidated. *)
  let fs =
    Analysis.Lint.run
      [
        Hw.Probe.Container_boot { container = 0; pcid = 1 };
        Hw.Probe.Tlb_fill { cpu = 0; pcid = 1; vpn = 0x400; level = 1; pfn = 42 };
        Hw.Probe.Tlb_fill { cpu = 1; pcid = 1; vpn = 0x400; level = 1; pfn = 42 };
        Hw.Probe.Pte_downgrade { container = 0; root = 7; vpn = 0x400; unmapped = false };
        Hw.Probe.Tlb_invlpg { cpu = 0; pcid = 1; vpn = 0x400 };
      ]
  in
  let stale =
    List.filter
      (function Analysis.Lint.Missing_shootdown { cpu; _ } -> cpu = 1 | _ -> false)
      fs
  in
  check int "exactly the un-invalidated vCPU" 1 (List.length stale);
  check_bool "invalidated vCPU is fine" false
    (List.exists (function Analysis.Lint.Missing_shootdown { cpu; _ } -> cpu = 0 | _ -> false) fs)

(* ------------------------------------------------------------------ *)
(* Report rendering                                                    *)
(* ------------------------------------------------------------------ *)

let test_report_rendering () =
  let c = mk () in
  let clean = { Analysis.violations = scan c; lints = [] } in
  check_bool "clean result" true (Analysis.is_clean clean);
  check_bool "clean summary" true
    (String.length (Analysis.report clean) > 0
    && Report.Findings.summary (Analysis.findings clean) = "clean");
  let rogue = Kernel_model.Buddy.alloc (Cki.Container.buddy c) in
  raw_write c ~pfn:(Cki.Ksm.kernel_root (Cki.Container.ksm c)) ~index:5
    (Hw.Pte.make ~pfn:rogue ~flags:{ Hw.Pte.default_flags with writable = true });
  let dirty = { Analysis.violations = scan c; lints = [] } in
  check_bool "dirty result" false (Analysis.is_clean dirty);
  check_bool "report names the rule" true
    (let s = Analysis.report dirty in
     let contains hay needle =
       let nl = String.length needle and hl = String.length hay in
       let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
       go 0
     in
     contains s "I1-undeclared-ptp");
  check_raises "assert_clean raises"
    (Failure (Analysis.report ~title:"analysis" dirty |> fun r -> "analysis: " ^ r))
    (fun () -> Analysis.assert_clean dirty)

let suite =
  [
    ( "analysis-clean",
      [
        test_case "fresh boot scans clean" `Quick test_clean_boot;
        test_case "boot+workload scenario clean" `Quick test_clean_scenario;
        test_case "gate traffic lints clean" `Quick test_clean_gate_traffic;
        test_case "blocked attacks leave clean state" `Quick test_attacks_leave_clean_state;
      ] );
    ( "analysis-scanner",
      [
        test_case "I1: undeclared PTP" `Quick test_undeclared_ptp;
        test_case "I2: guest-writable PTP" `Quick test_guest_writable_ptp;
        test_case "I2: PTP aliased outside pkey_ptp" `Quick test_maps_declared_ptp;
        test_case "leaf targets monitor memory" `Quick test_targets_monitor;
        test_case "leaf outside delegation" `Quick test_outside_delegation;
        test_case "kernel-exec after freeze" `Quick test_kernel_exec_leaf;
        test_case "W^X breach" `Quick test_wx_leaf;
        test_case "I3: missing KSM splice" `Quick test_missing_splice;
        test_case "I3: missing per-vCPU splice" `Quick test_missing_pervcpu_splice;
        test_case "I3: per-vCPU copy divergence" `Quick test_copy_divergence;
        test_case "I1: PTP level mismatch" `Quick test_ptp_level_mismatch;
        test_case "I1: PTP kind mismatch" `Quick test_ptp_kind_mismatch;
        test_case "segment ownership" `Quick test_segment_owner;
        test_case "stale TLB after unmap" `Quick test_stale_tlb;
      ] );
    ( "analysis-lint",
      [
        test_case "E2: destructive exec" `Quick test_lint_destructive_exec;
        test_case "gate PKRS leak" `Quick test_lint_gate_pkrs_leak;
        test_case "E3: sysret with IF down" `Quick test_lint_sysret_if_down;
        test_case "E4: forged PKS switch" `Quick test_lint_forged_pks_switch;
        test_case "E1: wrpkrs outside gate" `Quick test_lint_wrpkrs_outside_gate;
        test_case "io: forged completion" `Quick test_lint_forged_completion;
        test_case "io: empty doorbell" `Quick test_lint_empty_doorbell;
        test_case "truncation surfaced with withdrawn count" `Quick test_lint_trace_truncated;
        test_case "overflowing recorder end-to-end" `Quick test_trace_truncated_end_to_end;
        test_case "missing TLB shootdown (real machine)" `Quick test_lint_missing_shootdown;
        test_case "cross-vCPU shootdown race" `Quick test_lint_cross_vcpu_shootdown;
      ] );
    ( "analysis-report",
      [ test_case "rendering + assert_clean" `Quick test_report_rendering ] );
  ]
