(* Model-checker tests.

   Anchor: the unmodified machine explores clean (every property holds
   on every reachable state and edge), deterministically, and the
   exploration is big enough to mean something (>= 10k distinct states
   at the default configuration).  Around it: every seeded mutant is
   killed by a property it documents, with a rendered shortest
   counterexample; and exploration from restored / warm-cloned
   containers (the snapshot subsystem's output) reaches the same state
   space with the same verdict as from a freshly booted one. *)

open Alcotest

let check_bool = check bool

(* A cheap configuration for the tests that only care about the
   verdict, not the state-space size. *)
let small_config =
  {
    Modelcheck.Transition.default_config with
    Modelcheck.Transition.depth = 4;
    nest_bound = 2;
    pks_vectors = [ Hw.Idt.vec_timer ];
  }

(* ------------------------------------------------------------------ *)
(* Unmodified machine                                                  *)
(* ------------------------------------------------------------------ *)

let default_run = lazy (Modelcheck.Explore.run_standalone ())

let test_clean () =
  let r = Lazy.force default_run in
  check_bool "no property violated on the unmodified machine" true (Modelcheck.Explore.ok r);
  check int "no counterexamples" 0 (List.length r.Modelcheck.Explore.violations)

let test_state_space_size () =
  let r = Lazy.force default_run in
  let s = r.Modelcheck.Explore.stats in
  check_bool
    (Printf.sprintf "#states %d >= 10000 at default depth" s.Modelcheck.Explore.states)
    true
    (s.Modelcheck.Explore.states >= 10_000);
  check_bool "transitions outnumber states" true
    (s.Modelcheck.Explore.transitions > s.Modelcheck.Explore.states);
  check_bool "exploration went deep" true (s.Modelcheck.Explore.depth_reached >= 5)

let test_deterministic () =
  let r1 = Lazy.force default_run in
  let r2 = Modelcheck.Explore.run_standalone () in
  let s1 = r1.Modelcheck.Explore.stats and s2 = r2.Modelcheck.Explore.stats in
  check int "same state count" s1.Modelcheck.Explore.states s2.Modelcheck.Explore.states;
  check int "same transition count" s1.Modelcheck.Explore.transitions
    s2.Modelcheck.Explore.transitions;
  check int "same depth reached" s1.Modelcheck.Explore.depth_reached
    s2.Modelcheck.Explore.depth_reached;
  check int "same violation count"
    (List.length r1.Modelcheck.Explore.violations)
    (List.length r2.Modelcheck.Explore.violations);
  check_bool "same initial state" true
    (Modelcheck.State.equal r1.Modelcheck.Explore.initial r2.Modelcheck.Explore.initial)

let test_exploration_side_effect_free () =
  (* run restores the vCPUs: two runs on the SAME container agree. *)
  let c = Modelcheck.Explore.explore_container () in
  let r1 = Modelcheck.Explore.run ~config:small_config c in
  let r2 = Modelcheck.Explore.run ~config:small_config c in
  check int "same container, same states"
    r1.Modelcheck.Explore.stats.Modelcheck.Explore.states
    r2.Modelcheck.Explore.stats.Modelcheck.Explore.states;
  check_bool "same initial abstract state" true
    (Modelcheck.State.equal r1.Modelcheck.Explore.initial r2.Modelcheck.Explore.initial)

let test_golden_policy_no_drift () =
  check int "pinned Table 3 matches the live policy" 0
    (List.length (Modelcheck.Policy.drift ()))

(* ------------------------------------------------------------------ *)
(* Mutation harness                                                    *)
(* ------------------------------------------------------------------ *)

let test_mutants_all_killed () =
  let verdicts = Modelcheck.Mutants.run_all () in
  check int "ten seeded mutants" 10 (List.length verdicts);
  List.iter
    (fun (v : Modelcheck.Mutants.verdict) ->
      check_bool
        (Printf.sprintf "mutant %s killed" v.Modelcheck.Mutants.mutant.Modelcheck.Mutants.id)
        true v.Modelcheck.Mutants.killed;
      check_bool
        (Printf.sprintf "mutant %s killed by a documented property (%s)"
           v.Modelcheck.Mutants.mutant.Modelcheck.Mutants.id
           (match v.Modelcheck.Mutants.killed_by with
           | Some p -> Modelcheck.Property.name p
           | None -> "none"))
        true
        (Modelcheck.Mutants.as_expected v);
      match v.Modelcheck.Mutants.cex with
      | None -> fail "killed mutant must carry a counterexample"
      | Some cex ->
          check_bool "shortest counterexample is non-empty" true
            (List.length cex.Modelcheck.Explore.steps >= 1);
          check_bool "counterexample renders" true
            (String.length (Modelcheck.Cex.render cex) > 0))
    verdicts;
  check_bool "all_killed verdict" true (Modelcheck.Mutants.all_killed verdicts)

let test_mutant_scoping () =
  (* with_mutant restores enforcement even though run_one explores with
     knobs flipped: a default run right after the harness is clean. *)
  ignore (Modelcheck.Mutants.run_one (List.hd Modelcheck.Mutants.all));
  check_bool "knobs restored after a mutant run" true
    (Hw.Mutation.pristine ());
  let r = Modelcheck.Explore.run_standalone ~config:small_config () in
  check_bool "post-mutant exploration is clean" true (Modelcheck.Explore.ok r)

(* ------------------------------------------------------------------ *)
(* Exploration from snapshot-subsystem outputs (ISSUE satellite)       *)
(* ------------------------------------------------------------------ *)

let snap_cfg = { Cki.Config.default with Cki.Config.segment_frames = 4096 }

let template_exn c =
  match Snapshot.Template.create c with
  | Ok t -> t
  | Error e -> fail ("template: " ^ Snapshot.Template.show_error e)

let test_explore_after_restore () =
  let host = Cki.Host.create (Hw.Machine.create ~mem_mib:192 ()) in
  let c0 = Cki.Container.create ~cfg:snap_cfg host in
  let fresh = Modelcheck.Explore.run ~config:small_config c0 in
  let image =
    match Snapshot.Capture.capture c0 with
    | Ok img -> img
    | Error e -> fail ("capture: " ^ Snapshot.Capture.show_error e)
  in
  let c1 =
    match Snapshot.Restore.restore host image with
    | Ok c -> c
    | Error e -> fail ("restore: " ^ Snapshot.Restore.show_error e)
  in
  let r = Modelcheck.Explore.run ~config:small_config c1 in
  check_bool "restored container explores clean" true (Modelcheck.Explore.ok r);
  check int "restored container reaches the same state space"
    fresh.Modelcheck.Explore.stats.Modelcheck.Explore.states
    r.Modelcheck.Explore.stats.Modelcheck.Explore.states;
  check int "and the same transitions"
    fresh.Modelcheck.Explore.stats.Modelcheck.Explore.transitions
    r.Modelcheck.Explore.stats.Modelcheck.Explore.transitions

let test_explore_after_warm_clone () =
  let host = Cki.Host.create (Hw.Machine.create ~mem_mib:256 ()) in
  let c0 = Cki.Container.create ~cfg:snap_cfg host in
  let fresh = Modelcheck.Explore.run ~config:small_config c0 in
  let pool =
    Snapshot.Pool.create ~target:1
      ~make:(fun () -> template_exn (Cki.Container.create ~cfg:snap_cfg host))
      ()
  in
  let clone =
    match Snapshot.Pool.spawn_fast pool with
    | Ok c -> c
    | Error e -> fail ("spawn_fast: " ^ Snapshot.Template.show_error e)
  in
  let r = Modelcheck.Explore.run ~config:small_config clone in
  check_bool "warm clone explores clean" true (Modelcheck.Explore.ok r);
  check int "warm clone reaches the same state space"
    fresh.Modelcheck.Explore.stats.Modelcheck.Explore.states
    r.Modelcheck.Explore.stats.Modelcheck.Explore.states

let suite =
  [
    ( "modelcheck-explore",
      [
        test_case "unmodified machine is clean" `Quick test_clean;
        test_case ">= 10k states at default depth" `Quick test_state_space_size;
        test_case "deterministic across runs" `Quick test_deterministic;
        test_case "exploration is side-effect-free" `Quick test_exploration_side_effect_free;
        test_case "golden Table 3 has no drift" `Quick test_golden_policy_no_drift;
      ] );
    ( "modelcheck-mutants",
      [
        test_case "all ten mutants killed, as documented" `Quick test_mutants_all_killed;
        test_case "mutant knobs are scoped" `Quick test_mutant_scoping;
      ] );
    ( "modelcheck-snapshot",
      [
        test_case "explore from a restored container" `Quick test_explore_after_restore;
        test_case "explore from a warm clone" `Quick test_explore_after_warm_clone;
      ] );
  ]
