(* Golden-table test for the Table 3 privileged-instruction policy.

   [Modelcheck.Policy.rows] is the paper's table pinned as literal
   data; this suite pins the live [Hw.Priv] policy against it
   row-by-row, so any edit to [blocked_in_guest] or [virtualized_as]
   fails here with the exact row named — and the model checker's
   golden judge ([Policy.blocked]) can never silently drift along with
   the implementation it judges. *)

open Alcotest

let check_bool = check bool

let test_row_count () =
  check int "one pinned row per Table 3 example" (List.length Hw.Priv.all_examples)
    (List.length Modelcheck.Policy.rows)

let test_covers_all_examples () =
  List.iter
    (fun inst ->
      check_bool
        (Printf.sprintf "pinned table covers %s" (Hw.Priv.mnemonic inst))
        true
        (List.exists (fun (i, _, _) -> Hw.Priv.equal i inst) Modelcheck.Policy.rows))
    Hw.Priv.all_examples

let test_blocked_matches () =
  List.iter
    (fun (inst, blocked, _) ->
      check_bool
        (Printf.sprintf "blocked_in_guest %s = %b" (Hw.Priv.mnemonic inst) blocked)
        blocked (Hw.Priv.blocked_in_guest inst))
    Modelcheck.Policy.rows

let test_virtualized_matches () =
  List.iter
    (fun (inst, _, virt) ->
      check
        (testable Hw.Priv.pp_virtualization Hw.Priv.equal_virtualization)
        (Printf.sprintf "virtualized_as %s" (Hw.Priv.mnemonic inst))
        virt (Hw.Priv.virtualized_as inst))
    Modelcheck.Policy.rows

let test_golden_judge_agrees () =
  (* Policy.blocked is a second spelling by constructor, not a lookup
     in [rows]; make sure the two spellings agree with each other and
     with the live policy. *)
  List.iter
    (fun (inst, blocked, _) ->
      check_bool
        (Printf.sprintf "Policy.blocked %s = %b" (Hw.Priv.mnemonic inst) blocked)
        blocked
        (Modelcheck.Policy.blocked inst))
    Modelcheck.Policy.rows;
  check int "no drift between pinned table and live policy" 0
    (List.length (Modelcheck.Policy.drift ()))

let suite =
  [
    ( "policy-golden-table",
      [
        test_case "row count" `Quick test_row_count;
        test_case "covers every Table 3 example" `Quick test_covers_all_examples;
        test_case "blocked_in_guest pinned" `Quick test_blocked_matches;
        test_case "virtualized_as pinned" `Quick test_virtualized_matches;
        test_case "golden judge agrees" `Quick test_golden_judge_agrees;
      ] );
  ]
