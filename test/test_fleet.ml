(* lib/fleet: admission control, replica selection, SLO autoscaling,
   the warm-clone pool, CPU quotas, scatter-delegation churn, and the
   controller's determinism across domain counts.

   The pinned regression is first-fit fragmentation: a host packed
   with containers and then half-emptied has plenty of free memory but
   no contiguous run large enough for the next delegation — first-fit
   (the paper's acknowledged limitation) fails where scatter
   delegation succeeds on the very same host. *)

open Alcotest

let cfg_of frames = { Cki.Config.default with Cki.Config.segment_frames = frames; vcpus = 1 }

let decision =
  Alcotest.testable Fleet.Autoscaler.pp_decision Fleet.Autoscaler.equal_decision

let free_frames mem =
  let n = Hw.Phys_mem.total_frames mem in
  let free = ref 0 in
  for pfn = 0 to n - 1 do
    if Hw.Phys_mem.is_free mem pfn then incr free
  done;
  !free

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let test_admission_inflight_cap () =
  let a = Fleet.Admission.create ~max_inflight:2 ~now:0.0 () in
  check bool "under the cap admits" true (Fleet.Admission.admit a ~now:0.0 ~inflight:1);
  check bool "at the cap sheds" false (Fleet.Admission.admit a ~now:0.0 ~inflight:2);
  check int "shed_inflight" 1 (Fleet.Admission.shed_inflight a);
  check int "shed_rate untouched" 0 (Fleet.Admission.shed_rate a);
  check int "admitted" 1 (Fleet.Admission.admitted a)

let test_admission_token_bucket () =
  (* 1000 rps; default burst = rate/100 = 10 tokens. *)
  let a = Fleet.Admission.create ~rate_rps:1000.0 ~now:0.0 () in
  let admitted = ref 0 in
  for _ = 1 to 15 do
    if Fleet.Admission.admit a ~now:0.0 ~inflight:0 then incr admitted
  done;
  check int "burst admits" 10 !admitted;
  check int "beyond the burst sheds on rate" 5 (Fleet.Admission.shed_rate a);
  (* 5 ms at 1000 rps refills exactly 5 tokens. *)
  let admitted = ref 0 in
  for _ = 1 to 10 do
    if Fleet.Admission.admit a ~now:5e6 ~inflight:0 then incr admitted
  done;
  check int "refill is rate-proportional" 5 !admitted;
  check int "total shed" 10 (Fleet.Admission.shed a)

let test_admission_uncapped () =
  let a = Fleet.Admission.create ~now:0.0 () in
  for _ = 1 to 1000 do
    check bool "uncapped always admits" true (Fleet.Admission.admit a ~now:0.0 ~inflight:999)
  done;
  check int "nothing shed" 0 (Fleet.Admission.shed a)

(* ------------------------------------------------------------------ *)
(* Balancer                                                            *)
(* ------------------------------------------------------------------ *)

let test_balancer_round_robin () =
  let b = Fleet.Balancer.create Fleet.Balancer.Round_robin in
  let picks = List.init 6 (fun _ -> Fleet.Balancer.pick b ~load:(fun _ -> 0) ~n:3) in
  check (list int) "cycles through replicas" [ 0; 1; 2; 0; 1; 2 ] picks;
  check int "picks counted" 6 (Fleet.Balancer.picks b)

let test_balancer_pick2_prefers_less_loaded () =
  let b = Fleet.Balancer.create ~seed:42 Fleet.Balancer.Pick2_least_loaded in
  let counts = Array.make 3 0 in
  for _ = 1 to 300 do
    let i = Fleet.Balancer.pick b ~load:(fun i -> if i = 1 then 0 else 10) ~n:3 in
    check bool "pick in range" true (i >= 0 && i < 3);
    counts.(i) <- counts.(i) + 1
  done;
  (* Replica 1 is idle; it wins whenever either sample lands on it
     (P = 5/9), so it must dominate a 300-pick run. *)
  check bool "idle replica dominates" true (counts.(1) > counts.(0) && counts.(1) > counts.(2));
  check int "single replica short-circuits" 0 (Fleet.Balancer.pick b ~load:(fun _ -> 0) ~n:1)

let test_balancer_deterministic () =
  let run () =
    let b = Fleet.Balancer.create ~seed:7 Fleet.Balancer.Pick2_least_loaded in
    List.init 64 (fun i -> Fleet.Balancer.pick b ~load:(fun j -> (i + j) mod 5) ~n:4)
  in
  check (list int) "same seed, same pick sequence" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Autoscaler                                                          *)
(* ------------------------------------------------------------------ *)

let auto_cfg =
  {
    Fleet.Autoscaler.slo_p99_us = 100.0;
    window = 10;
    min_replicas = 1;
    max_replicas = 4;
    cooldown_ns = 0.0;
    idle_windows = 2;
    scale_in_factor = 0.5;
  }

let feed a lat n =
  for _ = 1 to n do
    Fleet.Autoscaler.observe a ~latency_us:lat
  done

let test_autoscaler_breach_scales_out () =
  let a = Fleet.Autoscaler.create ~now:0.0 auto_cfg in
  feed a 500.0 9;
  check decision "partial window holds" Fleet.Autoscaler.Hold
    (Fleet.Autoscaler.decide a ~now:1.0 ~replicas:1);
  feed a 500.0 1;
  check decision "breached window scales out" Fleet.Autoscaler.Scale_out
    (Fleet.Autoscaler.decide a ~now:2.0 ~replicas:1);
  check int "breach counted" 1 (Fleet.Autoscaler.breaches a);
  feed a 500.0 10;
  check decision "at max_replicas holds" Fleet.Autoscaler.Hold
    (Fleet.Autoscaler.decide a ~now:3.0 ~replicas:4);
  check int "held breach still counted" 2 (Fleet.Autoscaler.breaches a)

let test_autoscaler_calm_scales_in () =
  let a = Fleet.Autoscaler.create ~now:0.0 auto_cfg in
  feed a 10.0 10;
  check decision "first calm window holds" Fleet.Autoscaler.Hold
    (Fleet.Autoscaler.decide a ~now:1.0 ~replicas:2);
  feed a 10.0 10;
  check decision "calm streak scales in" Fleet.Autoscaler.Scale_in
    (Fleet.Autoscaler.decide a ~now:2.0 ~replicas:2);
  (* A middling window (under the SLO but above factor*slo) resets the
     calm streak. *)
  feed a 10.0 10;
  ignore (Fleet.Autoscaler.decide a ~now:3.0 ~replicas:2);
  feed a 80.0 10;
  check decision "middling window resets streak" Fleet.Autoscaler.Hold
    (Fleet.Autoscaler.decide a ~now:4.0 ~replicas:2);
  feed a 10.0 10;
  ignore (Fleet.Autoscaler.decide a ~now:5.0 ~replicas:2);
  feed a 10.0 10;
  check decision "streak rebuilt from scratch" Fleet.Autoscaler.Scale_in
    (Fleet.Autoscaler.decide a ~now:6.0 ~replicas:2);
  feed a 10.0 10;
  ignore (Fleet.Autoscaler.decide a ~now:7.0 ~replicas:1);
  feed a 10.0 10;
  check decision "at min_replicas holds" Fleet.Autoscaler.Hold
    (Fleet.Autoscaler.decide a ~now:8.0 ~replicas:1)

let test_autoscaler_cooldown () =
  let a =
    Fleet.Autoscaler.create ~now:0.0 { auto_cfg with Fleet.Autoscaler.cooldown_ns = 1e9 }
  in
  feed a 500.0 10;
  check decision "inside cooldown holds" Fleet.Autoscaler.Hold
    (Fleet.Autoscaler.decide a ~now:5e8 ~replicas:1);
  check int "breach still counted during cooldown" 1 (Fleet.Autoscaler.breaches a);
  feed a 500.0 10;
  check decision "after cooldown scales out" Fleet.Autoscaler.Scale_out
    (Fleet.Autoscaler.decide a ~now:1.5e9 ~replicas:1)

(* ------------------------------------------------------------------ *)
(* Warm pool: stats, drain, low-water refill                           *)
(* ------------------------------------------------------------------ *)

let mk_pool ?(low_water = 1) ~target host =
  Snapshot.Pool.create ~low_water ~target
    ~make:(fun () ->
      match Snapshot.Template.create (Cki.Container.create ~cfg:(cfg_of 1024) host) with
      | Ok t -> t
      | Error e -> fail ("template: " ^ Snapshot.Template.show_error e))
    ()

let spawn_exn pool =
  match Snapshot.Pool.spawn_fast ~verify:true pool with
  | Ok c -> c
  | Error e -> fail ("spawn: " ^ Snapshot.Template.show_error e)

let test_pool_stats_drain_refill () =
  let host = Cki.Host.create (Hw.Machine.create ~cpus:2 ~mem_mib:512 ()) in
  let pool = mk_pool ~target:2 host in
  let st = Snapshot.Pool.stats pool in
  check int "pre-booted to target" 2 st.Snapshot.Pool.size;
  check int "no hits yet" 0 st.Snapshot.Pool.hits;
  ignore (spawn_exn pool);
  check int "warm take is a hit" 1 (Snapshot.Pool.stats pool).Snapshot.Pool.hits;
  (* Eviction: the next spawn has to build a template inline. *)
  check int "drain drops the ready set" 2 (Snapshot.Pool.drain pool);
  ignore (spawn_exn pool);
  let st = Snapshot.Pool.stats pool in
  check int "post-drain take is a miss" 1 st.Snapshot.Pool.misses;
  check int "inline build is kept in the pool" 1 st.Snapshot.Pool.size;
  (* The low-water hook rebuilds to target, making the next take warm. *)
  ignore (Snapshot.Pool.drain pool);
  let built = Snapshot.Pool.refill_low_water pool in
  check int "refill builds back to target" 2 built;
  ignore (spawn_exn pool);
  let st = Snapshot.Pool.stats pool in
  check int "post-refill take is a hit" 2 st.Snapshot.Pool.hits;
  check int "refills recorded" 2 st.Snapshot.Pool.refills;
  check int "served totals takes" 3 st.Snapshot.Pool.served

let test_pool_refill_noop_above_low_water () =
  let host = Cki.Host.create (Hw.Machine.create ~cpus:2 ~mem_mib:512 ()) in
  let pool = mk_pool ~low_water:1 ~target:3 host in
  check int "above low water: no rebuild" 0 (Snapshot.Pool.refill_low_water pool)

(* ------------------------------------------------------------------ *)
(* CPU quotas in the vCPU scheduler                                    *)
(* ------------------------------------------------------------------ *)

let test_quota_throttles_and_refills () =
  let machine = Hw.Machine.create ~cpus:2 ~mem_mib:128 () in
  let clock = Hw.Machine.clock machine in
  let host = Cki.Host.create machine in
  let sched = Cki.Vcpu_sched.create host in
  let c = Cki.Container.create ~cfg:(cfg_of 1024) host in
  (* 1 us of budget per 1 ms period; the first handler overruns it. *)
  let e = Cki.Vcpu_sched.add_vcpu ~quota:(1_000_000.0, 1_000.0) sched c ~vcpu:0 in
  let first = ref false and second = ref false in
  Cki.Vcpu_sched.submit_work e (fun () ->
      Hw.Clock.charge clock "quota_test_work" 5_000.0;
      first := true);
  (* A single slice: the handler runs and overruns its budget.  More
     slices would let the scheduler idle the clock to the refill,
     clearing the throttle before we can observe it. *)
  Cki.Vcpu_sched.run sched ~slices:1;
  check bool "first handler ran" true !first;
  check bool "overrun throttles the vCPU" true (Cki.Vcpu_sched.throttled sched e);
  Cki.Vcpu_sched.submit_work e (fun () -> second := true);
  Cki.Vcpu_sched.run sched ~slices:8;
  check bool "scheduler advances to the refill and runs again" true !second;
  check bool "throttle events counted" true (Cki.Vcpu_sched.throttle_events sched > 0)

let test_quota_validation () =
  let machine = Hw.Machine.create ~cpus:2 ~mem_mib:128 () in
  let host = Cki.Host.create machine in
  let sched = Cki.Vcpu_sched.create host in
  let c = Cki.Container.create ~cfg:(cfg_of 1024) host in
  check_raises "zero period rejected"
    (Invalid_argument "Vcpu_sched.add_vcpu: quota period and budget must be positive")
    (fun () -> ignore (Cki.Vcpu_sched.add_vcpu ~quota:(0.0, 10.0) sched c ~vcpu:0));
  check_raises "negative budget rejected"
    (Invalid_argument "Vcpu_sched.add_vcpu: quota period and budget must be positive")
    (fun () -> ignore (Cki.Vcpu_sched.add_vcpu ~quota:(1e6, -1.0) sched c ~vcpu:0))

(* ------------------------------------------------------------------ *)
(* First-fit fragmentation vs scatter delegation (pinned regression)   *)
(* ------------------------------------------------------------------ *)

let test_first_fit_fragmentation_regression () =
  let machine = Hw.Machine.create ~cpus:2 ~mem_mib:64 () in
  let mem = Hw.Machine.mem machine in
  let host = Cki.Host.create ~policy:Cki.Host.First_fit machine in
  (* Pack the host, then free every other container: memory is half
     free but in ~4 MiB holes. *)
  let packed = ref [] in
  (try
     while true do
       packed := Cki.Container.create ~cfg:(cfg_of 1024) host :: !packed
     done
   with Hw.Phys_mem.Out_of_memory -> ());
  let n = List.length !packed in
  check bool "host packed" true (n >= 8);
  List.iteri (fun i c -> if i mod 2 = 0 then Cki.Container.destroy c) (List.rev !packed);
  let free = free_frames mem in
  check bool "plenty of memory is free" true (free >= 1536 * 2);
  (* First-fit needs one contiguous 1536-frame run; no hole is that
     big.  This is the paper's acknowledged limitation, pinned. *)
  (match Cki.Container.create ~cfg:(cfg_of 1536) host with
  | _ -> fail "first-fit delegation unexpectedly found a contiguous run"
  | exception Hw.Phys_mem.Out_of_memory -> ());
  (* Scatter delegation on the very same fragmented host succeeds by
     splitting the request across holes. *)
  Cki.Host.set_policy host Cki.Host.Scatter;
  let c = Cki.Container.create ~cfg:(cfg_of 1536) host in
  let segs = Cki.Host.delegations_of host ~container:(Cki.Container.container_id c) in
  check bool "scatter split the request" true (List.length segs >= 2);
  check int "chunks cover the request" 1536
    (List.fold_left (fun a (d : Cki.Host.delegated) -> a + d.Cki.Host.frames) 0 segs);
  check int "scatter container passes the scanner" 0
    (List.length (Analysis.check_machine ~containers:[ c ]))

let test_scatter_churn_no_leak () =
  let machine = Hw.Machine.create ~cpus:2 ~mem_mib:96 () in
  let mem = Hw.Machine.mem machine in
  let host = Cki.Host.create machine in
  let baseline = free_frames mem in
  let tsizes = [| 1024; 1536; 768; 1280 |] in
  let psizes = [| 256; 192; 320; 128 |] in
  let slots = [| None; None |] in
  let pinned = Queue.create () in
  let cycles = 520 in
  for i = 0 to cycles - 1 do
    let s = i mod 2 in
    let c = Cki.Container.create ~cfg:(cfg_of tsizes.(i mod 4)) host in
    (match slots.(1 - s) with
    | Some old ->
        Cki.Container.destroy old;
        slots.(1 - s) <- None
    | None -> ());
    slots.(s) <- Some c;
    let p = Cki.Container.create ~cfg:(cfg_of psizes.(i mod 4)) host in
    Queue.add p pinned;
    if Queue.length pinned > 48 then Cki.Container.destroy (Queue.pop pinned)
  done;
  (* Survivors still satisfy the whole-machine invariants... *)
  let live =
    Queue.fold (fun acc c -> c :: acc) [] pinned
    @ List.filter_map Fun.id (Array.to_list slots)
  in
  check int "live churn survivors pass the scanner" 0
    (List.length (Analysis.check_machine ~containers:live));
  (* ...and tearing everything down returns every frame: no leaked
     segments, page tables, KSM state, or CoW references. *)
  List.iter Cki.Container.destroy live;
  check int "free frames return to baseline after 520-cycle churn" baseline (free_frames mem)

(* ------------------------------------------------------------------ *)
(* Controller                                                          *)
(* ------------------------------------------------------------------ *)

let surge_autoscaler =
  {
    Fleet.Autoscaler.default_config with
    Fleet.Autoscaler.slo_p99_us = 400.0;
    window = 150;
    max_replicas = 6;
  }

let test_controller_scales_out_on_breach () =
  let t =
    {
      Fleet.Controller.default_tenant with
      Fleet.Controller.name = "surge";
      rate_rps = 60_000.0;
      requests = 3_000;
    }
  in
  let cfg =
    {
      Fleet.Controller.default_config with
      Fleet.Controller.tenants = [ t ];
      autoscaler = surge_autoscaler;
    }
  in
  let tr = List.hd (Fleet.Controller.run cfg).Fleet.Controller.tenants in
  let open Fleet.Controller in
  check bool "quota binds under overload" true (tr.tr_throttle_events > 0);
  check bool "p99 breached" true (tr.tr_breaches > 0);
  check bool "scale-out happened" true (tr.tr_scale_outs > 0);
  check bool "fleet actually grew" true (tr.tr_peak_replicas > 1);
  check int "every clone passed re-verification" 0 tr.tr_verify_failures;
  check int "all admitted requests completed" tr.tr_admitted tr.tr_completed;
  check int "nothing shed without admission limits" 0 tr.tr_shed

let test_controller_scale_in_after_drain () =
  let t =
    {
      Fleet.Controller.default_tenant with
      Fleet.Controller.name = "drain";
      rate_rps = 4_000.0;
      requests = 1_500;
    }
  in
  let cfg =
    {
      Fleet.Controller.default_config with
      Fleet.Controller.tenants = [ t ];
      autoscaler =
        { surge_autoscaler with Fleet.Autoscaler.idle_windows = 2; scale_in_factor = 0.5 };
      initial_replicas = 3;
    }
  in
  let tr = List.hd (Fleet.Controller.run cfg).Fleet.Controller.tenants in
  let open Fleet.Controller in
  check int "bootstrapped at three replicas" 3 tr.tr_peak_replicas;
  check bool "calm traffic scales the fleet in" true (tr.tr_scale_ins >= 1);
  check bool "fleet shrank" true (tr.tr_final_replicas < 3)

(* The migration-storm satellite: drain one of two host slices while
   the tenant serves.  Replacements are warm-cloned onto the survivor
   *before* the doomed replicas are fenced, so capacity never dips and
   the SLO holds right through the evacuation. *)
let test_controller_drain_host_holds_slo () =
  let t =
    {
      Fleet.Controller.default_tenant with
      Fleet.Controller.name = "storm";
      rate_rps = 30_000.0;
      requests = 6_000;
    }
  in
  let cfg =
    {
      Fleet.Controller.default_config with
      Fleet.Controller.tenants = [ t ];
      autoscaler = { surge_autoscaler with Fleet.Autoscaler.min_replicas = 4 };
      initial_replicas = 4;
      hosts = 2;
      drain = Some { Fleet.Controller.d_host = 1; d_after_requests = 2_000 };
    }
  in
  let tr = Fleet.Controller.run_tenant cfg t ~seed:(Fleet.Controller.tenant_seed cfg.Fleet.Controller.seed 0) in
  let open Fleet.Controller in
  check int "host 1's replicas were evacuated" 2 tr.tr_evacuated;
  check bool "the drain window closed" true (tr.tr_drain_ns > 0.0);
  check int "replacements kept the fleet at strength" 4 tr.tr_final_replicas;
  check int "every clone passed re-verification" 0 tr.tr_verify_failures;
  check int "all admitted requests completed" tr.tr_admitted tr.tr_completed;
  (* The SLO pin: p99 during and after the storm within 5x steady state. *)
  check bool "steady-state p99 measured" true (tr.tr_p99_before_us > 0.0);
  let within5x p = p = 0.0 || p <= 5.0 *. tr.tr_p99_before_us in
  check bool "p99 during the storm within 5x" true (within5x tr.tr_p99_during_us);
  check bool "p99 after the storm within 5x" true (within5x tr.tr_p99_after_us)

let test_controller_drain_validation () =
  let t = { Fleet.Controller.default_tenant with Fleet.Controller.requests = 10 } in
  let bad hosts drain =
    let cfg =
      {
        Fleet.Controller.default_config with
        Fleet.Controller.tenants = [ t ];
        hosts;
        drain;
      }
    in
    fun () -> ignore (Fleet.Controller.run_tenant cfg t ~seed:1)
  in
  check_raises "draining the only host is refused"
    (Invalid_argument "Fleet: draining needs a surviving host")
    (bad 1 (Some { Fleet.Controller.d_host = 0; d_after_requests = 1 }));
  check_raises "drain host must exist" (Invalid_argument "Fleet: drain host out of range")
    (bad 2 (Some { Fleet.Controller.d_host = 5; d_after_requests = 1 }))

let test_controller_shed_isolation () =
  let polite =
    {
      Fleet.Controller.default_tenant with
      Fleet.Controller.name = "polite";
      rate_rps = 10_000.0;
      requests = 1_000;
    }
  in
  let greedy =
    {
      Fleet.Controller.default_tenant with
      Fleet.Controller.name = "greedy";
      rate_rps = 50_000.0;
      requests = 2_000;
      admission_rps = 15_000.0;
      max_inflight = 64;
    }
  in
  let cfg =
    {
      Fleet.Controller.default_config with
      Fleet.Controller.tenants = [ polite; greedy ];
      autoscaler = surge_autoscaler;
    }
  in
  let r = Fleet.Controller.run cfg in
  let find name =
    List.find (fun tr -> tr.Fleet.Controller.tr_name = name) r.Fleet.Controller.tenants
  in
  let open Fleet.Controller in
  check int "polite tenant sheds nothing" 0 (find "polite").tr_shed;
  check bool "over-subscribed tenant sheds" true ((find "greedy").tr_shed > 0);
  check int "greedy completions match admissions" (find "greedy").tr_admitted
    (find "greedy").tr_completed

let test_controller_deterministic_across_domains () =
  let mk name rate requests admission =
    {
      Fleet.Controller.default_tenant with
      Fleet.Controller.name;
      rate_rps = rate;
      requests;
      admission_rps = admission;
    }
  in
  let cfg =
    {
      Fleet.Controller.default_config with
      Fleet.Controller.tenants =
        [
          mk "surge" 60_000.0 2_000 infinity;
          mk "bulk" 20_000.0 2_000 infinity;
          mk "capped" 40_000.0 2_000 12_000.0;
        ];
      autoscaler = surge_autoscaler;
    }
  in
  let r0 = Fleet.Controller.run ~domains:0 cfg in
  (* The 2-domain run executes under the dynamic cross-domain checker:
     Phys_mem tracing on, the merged replay race-checked, and the
     instrumentation must not perturb the merged tenant results. *)
  let r2, racecheck =
    Hw.Probe.set_mem_trace true;
    Fun.protect
      ~finally:(fun () -> Hw.Probe.set_mem_trace false)
      (fun () ->
        let r2, trace =
          (* Room for every lane ring (65536 events each) plus edges,
             so the replayed spawn edges aren't dropped. *)
          Analysis.Trace.with_recorder ~capacity:300_000 (fun () ->
              Fleet.Controller.run ~domains:2 cfg)
        in
        (r2, Analysis.Racecheck.of_trace trace))
  in
  let r3 = Fleet.Controller.run ~domains:3 cfg in
  check bool "tenant results identical, 0 vs 2 domains" true
    (r0.Fleet.Controller.tenants = r2.Fleet.Controller.tenants);
  check bool "tenant results identical, 2 vs 3 domains" true
    (r2.Fleet.Controller.tenants = r3.Fleet.Controller.tenants);
  check bool "sharded tenants trace racecheck-clean" true
    (Analysis.Racecheck.is_clean racecheck);
  check bool "racecheck saw the spawn/join edges" true (racecheck.Analysis.Racecheck.edges >= 4)

let suite =
  [
    ( "fleet",
      [
        test_case "admission: inflight cap" `Quick test_admission_inflight_cap;
        test_case "admission: token bucket" `Quick test_admission_token_bucket;
        test_case "admission: uncapped" `Quick test_admission_uncapped;
        test_case "balancer: round robin" `Quick test_balancer_round_robin;
        test_case "balancer: pick2 prefers less loaded" `Quick test_balancer_pick2_prefers_less_loaded;
        test_case "balancer: deterministic" `Quick test_balancer_deterministic;
        test_case "autoscaler: breach scales out" `Quick test_autoscaler_breach_scales_out;
        test_case "autoscaler: calm scales in" `Quick test_autoscaler_calm_scales_in;
        test_case "autoscaler: cooldown" `Quick test_autoscaler_cooldown;
        test_case "pool: stats, drain, low-water refill" `Quick test_pool_stats_drain_refill;
        test_case "pool: refill is a no-op above low water" `Quick test_pool_refill_noop_above_low_water;
        test_case "vcpu quota: throttles and refills" `Quick test_quota_throttles_and_refills;
        test_case "vcpu quota: validation" `Quick test_quota_validation;
        test_case "first-fit fragmentation regression" `Quick test_first_fit_fragmentation_regression;
        test_case "scatter churn: 520 cycles, no leak" `Quick test_scatter_churn_no_leak;
        test_case "controller: scale-out on p99 breach" `Quick test_controller_scales_out_on_breach;
        test_case "controller: scale-in after drain" `Quick test_controller_scale_in_after_drain;
        test_case "controller: drain_host holds the SLO" `Quick test_controller_drain_host_holds_slo;
        test_case "controller: drain validation" `Quick test_controller_drain_validation;
        test_case "controller: shed isolation" `Quick test_controller_shed_isolation;
        test_case "controller: deterministic across domains" `Quick
          test_controller_deterministic_across_domains;
      ] );
  ]
