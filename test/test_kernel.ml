(* Tests for the kernel substrate: buddy, slab, vma, mm, tmpfs, pipe,
   virtio, net, task/sched, and end-to-end syscalls on the bare
   platform. *)

open Alcotest

let check_int = check int
let check_bool = check bool

let bare_platform () =
  let m = Hw.Machine.create ~cpus:1 ~mem_mib:64 () in
  Kernel_model.Platform.bare m

(* ------------------------------ Buddy ----------------------------- *)

let test_buddy_basic () =
  let b = Kernel_model.Buddy.create ~base:100 ~frames:64 in
  check_int "total" 64 (Kernel_model.Buddy.total_frames b);
  let f1 = Kernel_model.Buddy.alloc b in
  let f2 = Kernel_model.Buddy.alloc b in
  check_bool "distinct" true (f1 <> f2);
  check_bool "in range" true (f1 >= 100 && f1 < 164);
  check_int "free" 62 (Kernel_model.Buddy.free_frames b);
  Kernel_model.Buddy.free b f1;
  Kernel_model.Buddy.free b f2;
  check_int "all back" 64 (Kernel_model.Buddy.free_frames b);
  check_bool "invariants" true (Kernel_model.Buddy.check_invariants b)

let test_buddy_coalesce () =
  let b = Kernel_model.Buddy.create ~base:0 ~frames:16 in
  let fs = List.init 16 (fun _ -> Kernel_model.Buddy.alloc b) in
  check_int "exhausted" 0 (Kernel_model.Buddy.free_frames b);
  check_raises "oom" Kernel_model.Buddy.Out_of_memory (fun () ->
      ignore (Kernel_model.Buddy.alloc b));
  List.iter (Kernel_model.Buddy.free b) fs;
  (* After coalescing we must be able to allocate the whole range as
     one max-order block again. *)
  let big = Kernel_model.Buddy.alloc_order b 4 in
  check_int "coalesced to order 4" 0 big

let test_buddy_huge_alignment () =
  let b = Kernel_model.Buddy.create ~base:0 ~frames:2048 in
  let h = Kernel_model.Buddy.alloc_huge b in
  check_int "512-aligned" 0 (h land 511);
  Kernel_model.Buddy.free b h;
  check_bool "invariants" true (Kernel_model.Buddy.check_invariants b)

let test_buddy_double_free () =
  let b = Kernel_model.Buddy.create ~base:0 ~frames:8 in
  let f = Kernel_model.Buddy.alloc b in
  Kernel_model.Buddy.free b f;
  check_raises "double free" (Invalid_argument "Buddy.free: not an allocated block head")
    (fun () -> Kernel_model.Buddy.free b f)

let prop_buddy_no_overlap =
  QCheck.Test.make ~name:"buddy: live allocations never overlap" ~count:60
    QCheck.(small_list (int_bound 2))
    (fun orders ->
      let b = Kernel_model.Buddy.create ~base:0 ~frames:256 in
      let live = ref [] in
      List.iter
        (fun order ->
          (match Kernel_model.Buddy.alloc_order b order with
          | pfn -> live := (pfn, 1 lsl order) :: !live
          | exception Kernel_model.Buddy.Out_of_memory -> ());
          (* randomly free the oldest half of the time *)
          match !live with
          | (p, _) :: rest when order = 1 ->
              Kernel_model.Buddy.free b p;
              live := rest
          | _ -> ())
        orders;
      let no_overlap =
        let rec pairs = function
          | [] -> true
          | (p1, n1) :: rest ->
              List.for_all (fun (p2, n2) -> p1 + n1 <= p2 || p2 + n2 <= p1) rest && pairs rest
        in
        pairs (List.sort compare !live)
      in
      no_overlap && Kernel_model.Buddy.check_invariants b)

(* ------------------------------ Slab ------------------------------ *)

let test_slab_alloc_free () =
  let b = Kernel_model.Buddy.create ~base:0 ~frames:64 in
  let s = Kernel_model.Slab.create ~name:"obj" ~obj_size:128 b in
  let hs = List.init 40 (fun _ -> Kernel_model.Slab.alloc s) in
  check_int "allocated" 40 (Kernel_model.Slab.allocated s);
  check_bool "handles unique" true (List.length (List.sort_uniq compare hs) = 40);
  (* 32 objs per 4k page -> 2 slabs *)
  check_int "slabs" 2 (Kernel_model.Slab.slab_count s);
  List.iter (Kernel_model.Slab.free s) hs;
  check_int "empty" 0 (Kernel_model.Slab.allocated s);
  check_raises "unknown handle" (Invalid_argument "Slab.free: unknown handle") (fun () ->
      Kernel_model.Slab.free s 9999)

(* ------------------------------- Vma ------------------------------ *)

let test_vma_add_find_overlap () =
  let v = Kernel_model.Vma.create () in
  let a =
    Kernel_model.Vma.add v ~start:0x10000 ~stop:0x14000 ~prot:Kernel_model.Vma.prot_rw
      ~backing:Kernel_model.Vma.Anon
  in
  check_bool "find inside" true (Kernel_model.Vma.find v 0x12fff = Some a);
  check_bool "find outside" true (Kernel_model.Vma.find v 0x14000 = None);
  check_bool "overlap detect" true (Kernel_model.Vma.overlaps v ~start:0x13000 ~stop:0x15000);
  check_bool "no overlap" false (Kernel_model.Vma.overlaps v ~start:0x14000 ~stop:0x15000);
  check_raises "add overlapping" Kernel_model.Vma.Overlap (fun () ->
      ignore
        (Kernel_model.Vma.add v ~start:0x13000 ~stop:0x15000 ~prot:Kernel_model.Vma.prot_rw
           ~backing:Kernel_model.Vma.Anon))

let test_vma_remove_splits () =
  let v = Kernel_model.Vma.create () in
  ignore
    (Kernel_model.Vma.add v ~start:0x10000 ~stop:0x20000 ~prot:Kernel_model.Vma.prot_rw
       ~backing:Kernel_model.Vma.Anon);
  let removed = Kernel_model.Vma.remove v ~start:0x14000 ~stop:0x18000 in
  check_int "removed pages" 4 removed;
  check_bool "left kept" true (Kernel_model.Vma.find v 0x13fff <> None);
  check_bool "hole" true (Kernel_model.Vma.find v 0x15000 = None);
  check_bool "right kept" true (Kernel_model.Vma.find v 0x18000 <> None);
  check_int "two areas" 2 (Kernel_model.Vma.count v)

let test_vma_protect_splits () =
  let v = Kernel_model.Vma.create () in
  ignore
    (Kernel_model.Vma.add v ~start:0x10000 ~stop:0x20000 ~prot:Kernel_model.Vma.prot_rw
       ~backing:Kernel_model.Vma.Anon);
  ignore (Kernel_model.Vma.protect v ~start:0x14000 ~stop:0x18000 ~prot:Kernel_model.Vma.prot_ro);
  (match Kernel_model.Vma.find v 0x15000 with
  | Some a -> check_bool "ro" false a.Kernel_model.Vma.prot.Kernel_model.Vma.write
  | None -> fail "area vanished");
  (match Kernel_model.Vma.find v 0x11000 with
  | Some a -> check_bool "left still rw" true a.Kernel_model.Vma.prot.Kernel_model.Vma.write
  | None -> fail "left vanished");
  check_int "total pages preserved" 16 (Kernel_model.Vma.total_pages v)

let test_vma_find_gap () =
  let v = Kernel_model.Vma.create () in
  ignore
    (Kernel_model.Vma.add v ~start:0x10000 ~stop:0x14000 ~prot:Kernel_model.Vma.prot_rw
       ~backing:Kernel_model.Vma.Anon);
  ignore
    (Kernel_model.Vma.add v ~start:0x16000 ~stop:0x18000 ~prot:Kernel_model.Vma.prot_rw
       ~backing:Kernel_model.Vma.Anon);
  check_int "fits in hole" 0x14000 (Kernel_model.Vma.find_gap v ~from:0x10000 ~pages:2);
  check_int "skips small hole" 0x18000 (Kernel_model.Vma.find_gap v ~from:0x10000 ~pages:3)

(* ------------------------------- Mm ------------------------------- *)

let test_mm_demand_paging () =
  let p = bare_platform () in
  let mm = Kernel_model.Mm.create p in
  let base = Kernel_model.Mm.mmap mm ~pages:8 ~prot:Kernel_model.Vma.prot_rw ~backing:Kernel_model.Vma.Anon in
  check_int "no faults yet" 0 (Kernel_model.Mm.fault_count mm);
  Kernel_model.Mm.touch mm base ~write:true;
  Kernel_model.Mm.touch mm base ~write:false;
  check_int "one fault for two touches" 1 (Kernel_model.Mm.fault_count mm);
  let faults = Kernel_model.Mm.touch_range mm ~start:base ~pages:8 ~write:true in
  check_int "remaining pages fault" 7 faults;
  check_int "resident" 8 (Kernel_model.Mm.resident_pages mm)

let test_mm_munmap_frees () =
  let p = bare_platform () in
  let mm = Kernel_model.Mm.create p in
  let base = Kernel_model.Mm.mmap mm ~pages:4 ~prot:Kernel_model.Vma.prot_rw ~backing:Kernel_model.Vma.Anon in
  ignore (Kernel_model.Mm.touch_range mm ~start:base ~pages:4 ~write:true);
  Kernel_model.Mm.munmap mm ~start:base ~pages:4;
  check_int "nothing resident" 0 (Kernel_model.Mm.resident_pages mm);
  check_raises "segfault after unmap" (Kernel_model.Mm.Segfault base) (fun () ->
      Kernel_model.Mm.touch mm base ~write:false)

let test_mm_mprotect_segfault () =
  let p = bare_platform () in
  let mm = Kernel_model.Mm.create p in
  let base = Kernel_model.Mm.mmap mm ~pages:1 ~prot:Kernel_model.Vma.prot_rw ~backing:Kernel_model.Vma.Anon in
  Kernel_model.Mm.touch mm base ~write:true;
  Kernel_model.Mm.mprotect mm ~start:base ~pages:1 ~prot:Kernel_model.Vma.prot_ro;
  (* A write into a fresh RO page must segfault. *)
  let base2 = Kernel_model.Mm.mmap mm ~pages:1 ~prot:Kernel_model.Vma.prot_ro ~backing:Kernel_model.Vma.Anon in
  check_raises "write to ro" (Kernel_model.Mm.Segfault base2) (fun () ->
      Kernel_model.Mm.touch mm base2 ~write:true)

let test_mm_brk () =
  let p = bare_platform () in
  let mm = Kernel_model.Mm.create p in
  let b0 = Kernel_model.Mm.brk mm ~delta_pages:4 in
  let b1 = Kernel_model.Mm.brk mm ~delta_pages:(-2) in
  check_int "brk grows then shrinks" (b0 - (2 * 4096)) b1;
  check_raises "below base" (Invalid_argument "Mm.brk: below base") (fun () ->
      ignore (Kernel_model.Mm.brk mm ~delta_pages:(-100)))

let test_mm_fork_copies () =
  let p = bare_platform () in
  let mm = Kernel_model.Mm.create p in
  let base = Kernel_model.Mm.mmap mm ~pages:4 ~prot:Kernel_model.Vma.prot_rw ~backing:Kernel_model.Vma.Anon in
  ignore (Kernel_model.Mm.touch_range mm ~start:base ~pages:4 ~write:true);
  let child = Kernel_model.Mm.fork mm in
  check_int "child resident" 4 (Kernel_model.Mm.resident_pages child);
  (* child touching its copy does not fault *)
  let f0 = Kernel_model.Mm.fault_count child in
  Kernel_model.Mm.touch child base ~write:true;
  check_int "no fault on copied page" f0 (Kernel_model.Mm.fault_count child)

(* ------------------------------ Tmpfs ----------------------------- *)

let mk_fs () = Kernel_model.Tmpfs.create (Hw.Clock.create ())

let test_tmpfs_create_resolve () =
  let fs = mk_fs () in
  ignore (Kernel_model.Tmpfs.mkdir fs "/etc");
  let f = Kernel_model.Tmpfs.create_file fs "/etc/passwd" in
  check_bool "resolve" true (Kernel_model.Tmpfs.resolve fs "/etc/passwd" == f);
  check_bool "resolve_opt none" true (Kernel_model.Tmpfs.resolve_opt fs "/nope" = None);
  check_raises "exists" (Kernel_model.Tmpfs.Exists "/etc/passwd") (fun () ->
      ignore (Kernel_model.Tmpfs.create_file fs "/etc/passwd"));
  check_bool "readdir" true (Kernel_model.Tmpfs.readdir (Kernel_model.Tmpfs.resolve fs "/etc") = [ "passwd" ])

let test_tmpfs_read_write () =
  let fs = mk_fs () in
  let f = Kernel_model.Tmpfs.create_file fs "/data" in
  let n = Kernel_model.Tmpfs.write fs f ~off:0 (Bytes.of_string "hello world") in
  check_int "written" 11 n;
  check_int "size" 11 (Kernel_model.Tmpfs.size f);
  check_bool "read back" true (Kernel_model.Tmpfs.read fs f ~off:6 ~n:5 = Bytes.of_string "world");
  check_bool "read past eof" true (Kernel_model.Tmpfs.read fs f ~off:20 ~n:5 = Bytes.empty);
  (* sparse-extend via write at offset *)
  ignore (Kernel_model.Tmpfs.write fs f ~off:100 (Bytes.of_string "x"));
  check_int "extended" 101 (Kernel_model.Tmpfs.size f)

let test_tmpfs_unlink_truncate () =
  let fs = mk_fs () in
  let f = Kernel_model.Tmpfs.create_file fs "/t" in
  ignore (Kernel_model.Tmpfs.write fs f ~off:0 (Bytes.make 1000 'a'));
  Kernel_model.Tmpfs.truncate f ~size:10;
  check_int "truncated" 10 (Kernel_model.Tmpfs.size f);
  Kernel_model.Tmpfs.truncate f ~size:50;
  check_int "zero extended" 50 (Kernel_model.Tmpfs.size f);
  check_bool "zeros" true (Bytes.get (Kernel_model.Tmpfs.read fs f ~off:20 ~n:1) 0 = '\000');
  Kernel_model.Tmpfs.unlink fs "/t";
  check_bool "gone" true (Kernel_model.Tmpfs.resolve_opt fs "/t" = None);
  check_raises "unlink missing" (Kernel_model.Tmpfs.Not_found_path "/t") (fun () ->
      Kernel_model.Tmpfs.unlink fs "/t")

(* ------------------------------ Pipe ------------------------------ *)

let test_pipe_roundtrip () =
  let p = Kernel_model.Pipe.create ~capacity:8 (Hw.Clock.create ()) in
  check_bool "empty would block" true (Kernel_model.Pipe.read p ~n:1 = Error `Would_block);
  check_bool "write" true (Kernel_model.Pipe.write p (Bytes.of_string "abcdef") = Ok 6);
  (* capacity 8: only 2 more bytes fit *)
  check_bool "partial write" true (Kernel_model.Pipe.write p (Bytes.of_string "xyz") = Ok 2);
  check_bool "full would block" true (Kernel_model.Pipe.write p (Bytes.of_string "q") = Error `Would_block);
  check_bool "read" true (Kernel_model.Pipe.read p ~n:6 = Ok (Bytes.of_string "abcdef"));
  Kernel_model.Pipe.close_write p;
  check_bool "drain" true (Kernel_model.Pipe.read p ~n:10 = Ok (Bytes.of_string "xy"));
  check_bool "eof" true (Kernel_model.Pipe.read p ~n:10 = Ok Bytes.empty);
  Kernel_model.Pipe.close_read p;
  check_bool "epipe" true (Kernel_model.Pipe.write p (Bytes.of_string "z") = Error `Epipe)

(* ----------------------------- Virtio ----------------------------- *)

let mk_virtio ?(size = 4) ?(window = 1) () =
  let p = bare_platform () in
  let access =
    {
      Kernel_model.Virtio.read_word = p.Kernel_model.Platform.guest_read_word;
      write_word = p.Kernel_model.Platform.guest_write_word;
      alloc_frame = p.Kernel_model.Platform.alloc_frame;
    }
  in
  Kernel_model.Virtio.create ~size ~window ~name:"test" access p.Kernel_model.Platform.clock

let test_virtio_queue () =
  let q = mk_virtio () in
  check_bool "post a" true (Kernel_model.Virtio.post q ~data:(Bytes.make 100 'a') = `Posted);
  check_bool "post b" true (Kernel_model.Virtio.post q ~data:(Bytes.make 200 'b') = `Posted);
  check_int "in flight" 2 (Kernel_model.Virtio.in_flight q);
  let kicked = ref 0 in
  check_bool "kick rang" true (Kernel_model.Virtio.kick q ~doorbell:(fun () -> incr kicked));
  check_int "kick delivered" 1 !kicked;
  (* Second kick with nothing new posted: suppressed, no doorbell. *)
  check_bool "kick suppressed" false (Kernel_model.Virtio.kick q ~doorbell:(fun () -> incr kicked));
  check_int "no second doorbell" 1 !kicked;
  (* Host services the chains, reading payloads out of guest memory. *)
  let seen = ref [] in
  check_int "serviced" 2 (Kernel_model.Virtio.service q ~handle:(fun d -> seen := d :: !seen));
  check_bool "payload bytes" true
    (match List.rev !seen with
    | [ a; b ] -> Bytes.length a = 100 && Bytes.get a 0 = 'a' && Bytes.length b = 200 && Bytes.get b 7 = 'b'
    | _ -> false);
  check_int "drained" 0 (Kernel_model.Virtio.in_flight q);
  (* Completion interrupt covers the batch; then the guest reclaims. *)
  let irqs = ref 0 in
  check_bool "completion" true (Kernel_model.Virtio.complete q ~inject:(fun () -> incr irqs));
  check_int "one interrupt" 1 !irqs;
  check_bool "no double complete" false (Kernel_model.Virtio.complete q ~inject:(fun () -> incr irqs));
  ignore (Kernel_model.Virtio.reclaim q);
  check_int "all reclaimed" 0 (Kernel_model.Virtio.unreclaimed q)

let test_virtio_backpressure () =
  (* A full ring is `Full (graceful backpressure), never an exception;
     a host service pass plus guest reclaim makes room again. *)
  let q = mk_virtio ~size:4 () in
  for i = 1 to 4 do
    check_bool (Printf.sprintf "post %d" i) true
      (Kernel_model.Virtio.post q ~data:(Bytes.make 8 'x') = `Posted)
  done;
  check_bool "ring full" true (Kernel_model.Virtio.post q ~data:(Bytes.make 8 'y') = `Full);
  ignore (Kernel_model.Virtio.kick q ~doorbell:ignore);
  ignore (Kernel_model.Virtio.service q ~handle:ignore);
  (* The used entries are published: post's opportunistic reclaim frees
     the descriptors even before the completion interrupt. *)
  check_bool "room after service" true
    (Kernel_model.Virtio.post q ~data:(Bytes.make 8 'z') = `Posted)

let test_virtio_event_idx () =
  (* window=4: after the host re-arms, kicks 1-3 are suppressed and the
     4th rings the doorbell. *)
  let q = mk_virtio ~size:16 ~window:4 () in
  let rings = ref 0 in
  let post_kick () =
    ignore (Kernel_model.Virtio.post q ~data:(Bytes.make 8 'k'));
    ignore (Kernel_model.Virtio.kick q ~doorbell:(fun () -> incr rings))
  in
  post_kick ();
  check_int "first kick rings" 1 !rings;
  ignore (Kernel_model.Virtio.service q ~handle:ignore);
  for _ = 1 to 3 do post_kick () done;
  check_int "suppressed inside window" 1 !rings;
  post_kick ();
  check_int "window boundary rings" 2 !rings;
  (* Naive mode (window=0) rings on every kick. *)
  let q0 = mk_virtio ~size:16 ~window:0 () in
  let rings0 = ref 0 in
  for _ = 1 to 3 do
    ignore (Kernel_model.Virtio.post q0 ~data:(Bytes.make 8 'n'));
    ignore (Kernel_model.Virtio.kick q0 ~doorbell:(fun () -> incr rings0))
  done;
  check_int "naive rings every time" 3 !rings0

(* ------------------------------- Net ------------------------------ *)

let test_net_endpoints () =
  let w = Kernel_model.Net.create (Hw.Clock.create ()) in
  let a = Kernel_model.Net.endpoint w in
  let b = Kernel_model.Net.endpoint w in
  check_bool "unconnected" true (Kernel_model.Net.send w a (Bytes.of_string "x") = Error `Not_connected);
  Kernel_model.Net.connect w a b;
  check_bool "send" true (Kernel_model.Net.send w a (Bytes.of_string "ping") = Ok 4);
  check_int "pending" 1 (Kernel_model.Net.pending b);
  check_bool "recv" true (Kernel_model.Net.recv b = Ok (Bytes.of_string "ping"));
  check_bool "empty" true (Kernel_model.Net.recv b = Error `Would_block)

(* --------------------- Kernel syscalls end-to-end ------------------ *)

let mk_kernel () = Kernel_model.Kernel.create (bare_platform ())

let test_kernel_file_syscalls () =
  let k = mk_kernel () in
  let t = Kernel_model.Kernel.spawn k in
  let fd =
    match Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Open { path = "/f"; create = true }) with
    | Kernel_model.Syscall.Rint fd -> fd
    | _ -> fail "open"
  in
  (match Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Write { fd; data = Bytes.of_string "hello" }) with
  | Kernel_model.Syscall.Rint 5 -> ()
  | _ -> fail "write");
  ignore (Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Lseek { fd; pos = 0 }));
  (match Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Read { fd; n = 5 }) with
  | Kernel_model.Syscall.Rbytes b -> check_bool "read data" true (b = Bytes.of_string "hello")
  | _ -> fail "read");
  (match Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Stat "/f") with
  | Kernel_model.Syscall.Rstat { size; is_dir; _ } ->
      check_int "stat size" 5 size;
      check_bool "not dir" false is_dir
  | _ -> fail "stat");
  (match Kernel_model.Kernel.syscall k t (Kernel_model.Syscall.Stat "/missing") with
  | Kernel_model.Syscall.Rerr "ENOENT" -> ()
  | _ -> fail "stat missing");
  ignore (Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Unlink "/f"));
  match Kernel_model.Kernel.syscall k t (Kernel_model.Syscall.Open { path = "/f"; create = false }) with
  | Kernel_model.Syscall.Rerr "ENOENT" -> ()
  | _ -> fail "open after unlink"

let test_kernel_fork_exit () =
  let k = mk_kernel () in
  let t = Kernel_model.Kernel.spawn k in
  let base =
    match Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Mmap { pages = 4; prot = Kernel_model.Vma.prot_rw }) with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> fail "mmap"
  in
  ignore (Kernel_model.Kernel.touch_range k t ~start:base ~pages:4 ~write:true);
  let child_pid =
    match Kernel_model.Kernel.syscall_exn k t Kernel_model.Syscall.Fork with
    | Kernel_model.Syscall.Rint pid -> pid
    | _ -> fail "fork"
  in
  check_bool "child exists" true (Kernel_model.Kernel.task k child_pid <> None);
  (match Kernel_model.Kernel.task k child_pid with
  | Some child ->
      check_int "fds inherited" (Kernel_model.Task.fd_count t) (Kernel_model.Task.fd_count child);
      ignore (Kernel_model.Kernel.syscall_exn k child (Kernel_model.Syscall.Exit 0))
  | None -> fail "child");
  check_bool "child reaped" true (Kernel_model.Kernel.task k child_pid = None)

let test_kernel_pipe_syscalls () =
  let k = mk_kernel () in
  let t = Kernel_model.Kernel.spawn k in
  let rfd, wfd =
    match Kernel_model.Kernel.syscall_exn k t Kernel_model.Syscall.Pipe with
    | Kernel_model.Syscall.Rpair (r, w) -> (r, w)
    | _ -> fail "pipe"
  in
  ignore (Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Write { fd = wfd; data = Bytes.of_string "ab" }));
  match Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Read { fd = rfd; n = 2 }) with
  | Kernel_model.Syscall.Rbytes b -> check_bool "pipe data" true (b = Bytes.of_string "ab")
  | _ -> fail "pipe read"

let test_kernel_net_path () =
  let k = mk_kernel () in
  let t = Kernel_model.Kernel.spawn k in
  let fd =
    match Kernel_model.Kernel.syscall_exn k t Kernel_model.Syscall.Socket with
    | Kernel_model.Syscall.Rint fd -> fd
    | _ -> fail "socket"
  in
  let sid =
    match Kernel_model.Task.fd t fd with
    | Some (Kernel_model.Task.Socket id) -> id
    | _ -> fail "sid"
  in
  (* deliver a packet, then recv it *)
  (match Kernel_model.Kernel.deliver_packet k ~sid (Bytes.of_string "req") with
  | Ok () -> ()
  | Error `No_socket -> fail "deliver");
  (match Kernel_model.Kernel.syscall_exn k t (Kernel_model.Syscall.Recv { fd; n = 16 }) with
  | Kernel_model.Syscall.Rbytes b -> check_bool "recv" true (b = Bytes.of_string "req")
  | _ -> fail "recv");
  check_int "irq delivered" 1 (Kernel_model.Kernel.irq_count k)

let test_kernel_ctx_switch_counts () =
  let k = mk_kernel () in
  let t1 = Kernel_model.Kernel.spawn k in
  let t2 = Kernel_model.Kernel.spawn k in
  let clock = Kernel_model.Kernel.clock k in
  let before = Hw.Clock.occurrences clock "ctx_switch" in
  Kernel_model.Kernel.context_switch k ~from_pid:t1.Kernel_model.Task.pid ~to_pid:t2.Kernel_model.Task.pid;
  Kernel_model.Kernel.context_switch k ~from_pid:t2.Kernel_model.Task.pid ~to_pid:t1.Kernel_model.Task.pid;
  check_int "two switches" (before + 2) (Hw.Clock.occurrences clock "ctx_switch")

let suite =
  [
    ( "kernel/buddy",
      [
        test_case "alloc/free" `Quick test_buddy_basic;
        test_case "coalescing" `Quick test_buddy_coalesce;
        test_case "huge alignment" `Quick test_buddy_huge_alignment;
        test_case "double free" `Quick test_buddy_double_free;
        QCheck_alcotest.to_alcotest prop_buddy_no_overlap;
      ] );
    ("kernel/slab", [ test_case "alloc/free/reclaim" `Quick test_slab_alloc_free ]);
    ( "kernel/vma",
      [
        test_case "add/find/overlap" `Quick test_vma_add_find_overlap;
        test_case "remove splits" `Quick test_vma_remove_splits;
        test_case "protect splits" `Quick test_vma_protect_splits;
        test_case "find_gap" `Quick test_vma_find_gap;
      ] );
    ( "kernel/mm",
      [
        test_case "demand paging" `Quick test_mm_demand_paging;
        test_case "munmap frees" `Quick test_mm_munmap_frees;
        test_case "mprotect + segfault" `Quick test_mm_mprotect_segfault;
        test_case "brk" `Quick test_mm_brk;
        test_case "fork copies" `Quick test_mm_fork_copies;
      ] );
    ( "kernel/tmpfs",
      [
        test_case "create/resolve/readdir" `Quick test_tmpfs_create_resolve;
        test_case "read/write/extend" `Quick test_tmpfs_read_write;
        test_case "unlink/truncate" `Quick test_tmpfs_unlink_truncate;
      ] );
    ("kernel/pipe", [ test_case "roundtrip + blocking" `Quick test_pipe_roundtrip ]);
    ( "kernel/virtio",
      [
        test_case "post/kick/service/complete" `Quick test_virtio_queue;
        test_case "full ring backpressure" `Quick test_virtio_backpressure;
        test_case "EVENT_IDX suppression" `Quick test_virtio_event_idx;
      ] );
    ("kernel/net", [ test_case "endpoints" `Quick test_net_endpoints ]);
    ( "kernel/syscalls",
      [
        test_case "file syscalls end-to-end" `Quick test_kernel_file_syscalls;
        test_case "fork/exit" `Quick test_kernel_fork_exit;
        test_case "pipe syscalls" `Quick test_kernel_pipe_syscalls;
        test_case "net delivery + recv" `Quick test_kernel_net_path;
        test_case "context switch accounting" `Quick test_kernel_ctx_switch_counts;
      ] );
  ]
