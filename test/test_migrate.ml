(* lib/migrate: the multi-host fabric, dirty-page tracking, the
   pre-copy engine's convergence and downtime, chaos scenarios, the
   warm-pool drain-vs-live-clones regression, and domain isolation of
   concurrent migrations.

   The pinned golden property is snapshot-over-the-wire fidelity: after
   a completed migration, re-capturing the restored target yields an
   image byte-identical to the final stop-and-copy capture of the
   source — the same capture-restore-capture identity the snapshot
   format guarantees, now across hosts. *)

open Alcotest

(* ------------------------------------------------------------------ *)
(* Dirty tracking (Mm level)                                           *)
(* ------------------------------------------------------------------ *)

(* A standalone app on a 1-host fabric; [heap_pages] kept small so the
   tests stay fast. *)
let mk_app ?(heap_pages = 64) () =
  let fab = Migrate.Fabric.create ~hosts:1 () in
  let a = Migrate.Chaos.boot_app ~heap_pages fab ~hid:0 in
  (fab, a)

let mm_of (a : Migrate.Chaos.app) = a.Migrate.Chaos.task.Kernel_model.Task.mm

let shootdown (a : Migrate.Chaos.app) va =
  Array.iter
    (fun cpu -> Hw.Cpu.exec_priv_exn cpu (Hw.Priv.Invlpg va))
    a.Migrate.Chaos.container.Cki.Container.cpus

let touch_page (a : Migrate.Chaos.app) p =
  Kernel_model.Mm.touch (mm_of a)
    (a.Migrate.Chaos.heap + (p * Hw.Addr.page_size))
    ~write:true

let test_dirty_tracking_rounds () =
  let _fab, a = mk_app () in
  let mm = mm_of a in
  let protected_pages = Kernel_model.Mm.dirty_track_start mm ~shootdown:(shootdown a) in
  check bool "epoch protects the resident writable pages" true (protected_pages >= 64);
  check bool "tracking on" true (Kernel_model.Mm.tracking mm);
  check int "log starts empty" 0 (Kernel_model.Mm.dirty_count mm);
  (* Writes fault through the write-protect path and land in the log;
     writing the same page twice logs it once. *)
  touch_page a 3;
  touch_page a 7;
  touch_page a 3;
  check int "two distinct pages logged" 2 (Kernel_model.Mm.dirty_count mm);
  let round1 = Kernel_model.Mm.dirty_track_round mm ~shootdown:(shootdown a) in
  check int "harvest returns the dirty set" 2 (List.length round1);
  check int "harvest resets the log" 0 (Kernel_model.Mm.dirty_count mm);
  (* The harvested pages were re-protected: writing one faults and
     logs again; an untouched page does not reappear. *)
  touch_page a 3;
  let round2 = Kernel_model.Mm.dirty_track_round mm ~shootdown:(shootdown a) in
  check int "only the re-written page returns" 1 (List.length round2);
  let final = Kernel_model.Mm.dirty_track_finish mm in
  check int "quiet final round is empty" 0 (List.length final);
  check bool "tracking off" false (Kernel_model.Mm.tracking mm);
  (* Protections restored: writes no longer log. *)
  touch_page a 11;
  check int "no logging outside an epoch" 0 (Kernel_model.Mm.dirty_count mm)

let test_dirty_tracking_epoch_discipline () =
  let _fab, a = mk_app () in
  let mm = mm_of a in
  ignore (Kernel_model.Mm.dirty_track_start mm ~shootdown:(shootdown a));
  check_raises "double start raises" (Invalid_argument "Mm.dirty_track_start: already tracking")
    (fun () -> ignore (Kernel_model.Mm.dirty_track_start mm ~shootdown:(shootdown a)));
  touch_page a 1;
  let final = Kernel_model.Mm.dirty_track_finish mm in
  check int "finish hands back the unharvested tail" 1 (List.length final)

(* ------------------------------------------------------------------ *)
(* Fabric                                                              *)
(* ------------------------------------------------------------------ *)

let test_fabric_transfer_syncs_clocks () =
  let fab = Migrate.Fabric.create ~hosts:2 () in
  (* Let the source clock run ahead; the rendezvous drags the target
     clock past it. *)
  Hw.Clock.advance (Migrate.Fabric.clock fab 0) 5_000_000.0;
  let ns =
    match Migrate.Fabric.transfer fab ~src:0 ~dst:1 ~bytes:(1 lsl 20) with
    | Ok ns -> ns
    | Error e -> fail e
  in
  check bool "wire time = latency + bytes/bw" true (ns > 1_000_000.0);
  check (float 1.0) "both ends agree at the rendezvous"
    (Hw.Clock.now (Migrate.Fabric.clock fab 0))
    (Hw.Clock.now (Migrate.Fabric.clock fab 1));
  Migrate.Fabric.partition fab 0 1;
  (match Migrate.Fabric.transfer fab ~src:0 ~dst:1 ~bytes:64 with
  | Ok _ -> fail "partitioned transfer must refuse"
  | Error _ -> ());
  Migrate.Fabric.heal fab 0 1;
  (match Migrate.Fabric.transfer fab ~src:0 ~dst:1 ~bytes:64 with
  | Ok _ -> ()
  | Error e -> fail ("healed transfer refused: " ^ e));
  Migrate.Fabric.crash_host fab 1;
  match Migrate.Fabric.transfer fab ~src:0 ~dst:1 ~bytes:64 with
  | Ok _ -> fail "transfer to a dead host must refuse"
  | Error _ -> ()

let test_fabric_freeze_rehome_replay () =
  let fab = Migrate.Fabric.create ~hosts:2 () in
  ignore (Migrate.Fabric.expose fab ~name:"svc" ~home:0);
  Migrate.Fabric.deliver fab ~name:"svc" (Bytes.of_string "a");
  check int "live delivery lands in the inbox" 1
    (Ioplane.Switch.pending (Migrate.Fabric.endpoint_port fab "svc"));
  check int "delivered counted" 1 (Migrate.Fabric.delivered fab "svc");
  (* The cutover window: frames buffer in order, nothing reaches any
     inbox. *)
  Migrate.Fabric.freeze fab ~name:"svc";
  Migrate.Fabric.deliver fab ~name:"svc" (Bytes.of_string "b");
  Migrate.Fabric.deliver fab ~name:"svc" (Bytes.of_string "c");
  check int "frozen frames buffer" 2 (Migrate.Fabric.buffered fab "svc");
  Migrate.Fabric.rehome fab ~name:"svc" ~to_:1;
  check int "endpoint re-homed" 1 (Migrate.Fabric.endpoint_home fab "svc");
  let replayed = Migrate.Fabric.unfreeze fab ~name:"svc" in
  check int "unfreeze replays the buffer" 2 replayed;
  let port = Migrate.Fabric.endpoint_port fab "svc" in
  check (list string) "replay preserves order into the new inbox" [ "b"; "c" ]
    (List.map Bytes.to_string (Ioplane.Switch.drain port));
  (* A dead home drops (and counts) instead of buffering forever. *)
  Migrate.Fabric.crash_host fab 1;
  Migrate.Fabric.deliver fab ~name:"svc" (Bytes.of_string "d");
  check int "delivery to a dead home is a counted drop" 1 (Migrate.Fabric.dropped fab "svc")

(* ------------------------------------------------------------------ *)
(* Engine: completion, golden re-capture, convergence                  *)
(* ------------------------------------------------------------------ *)

let migrate_app ?(opts = Migrate.Engine.default_opts) ?heap_pages () =
  let fab = Migrate.Fabric.create ~hosts:2 () in
  let a = Migrate.Chaos.boot_app ?heap_pages fab ~hid:0 in
  ignore (Migrate.Fabric.expose fab ~name:"svc" ~home:0);
  match
    Migrate.Engine.migrate fab ~src:0 ~dst:1 ~name:"svc" a.Migrate.Chaos.container
      ~work:(Migrate.Chaos.work_of a) opts
  with
  | Ok st -> (fab, st)
  | Error e -> fail ("migrate: " ^ Migrate.Engine.show_error e)

let test_migration_completes_golden () =
  let fab, st = migrate_app () in
  let open Migrate.Engine in
  check bool "outcome is Completed" true (st.outcome = Completed);
  check int "target host serves" 1 st.live_hid;
  check int "endpoint re-homed to the target" 1 (Migrate.Fabric.endpoint_home fab "svc");
  check int "no source frames leak" 0
    (Migrate.Fabric.owned_frames fab ~hid:st.loser_hid ~container:st.loser_container);
  check int "the restored copy is analysis-clean" 0
    (List.length (Analysis.check_machine ~containers:[ st.live ]));
  (* Golden: re-capturing the target reproduces the final stop-and-copy
     image byte for byte. *)
  let golden = match st.final_image with Some i -> i | None -> fail "no final image" in
  Migrate.Engine.quiesce st.live;
  (match Snapshot.Capture.capture st.live with
  | Error e -> fail ("re-capture: " ^ Snapshot.Capture.show_error e)
  | Ok again ->
      check bool "target re-capture is byte-identical to the final image" true
        (String.equal (Snapshot.Image.encode golden) (Snapshot.Image.encode again)))

let test_precopy_converges_and_beats_stop_and_copy () =
  let _fab, pre = migrate_app () in
  let open Migrate.Engine in
  check bool "dirty rounds ran" true (List.length pre.rounds >= 2);
  let dirties = List.map (fun r -> r.r_dirty) pre.rounds in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  check bool "dirty counts strictly decrease" true (decreasing dirties);
  check bool "the epoch converged below the threshold" true pre.converged;
  (* Round caps bound divergence: zero rounds = pure stop-and-copy,
     whose blackout carries the entire image. *)
  let _, sc = migrate_app ~opts:{ default_opts with rounds_max = 0 } () in
  check bool "stop-and-copy ships everything in the blackout" true
    (sc.frames_full > 0 && sc.rounds = []);
  check bool "pre-copy downtime < 10% of stop-and-copy" true
    (pre.downtime_ns < 0.1 *. sc.downtime_ns)

let test_round_cap_fires () =
  (* An aggressive writer never converges; the cap must end pre-copy
     after exactly [rounds_max] rounds with converged = false. *)
  let fab = Migrate.Fabric.create ~hosts:2 () in
  let a = Migrate.Chaos.boot_app ~heap_pages:64 fab ~hid:0 in
  ignore (Migrate.Fabric.expose fab ~name:"svc" ~home:0);
  let storm ~round ~budget_ns:_ = Migrate.Chaos.dirt a ~round ~writes:256 in
  match
    Migrate.Engine.migrate fab ~src:0 ~dst:1 ~name:"svc" a.Migrate.Chaos.container ~work:storm
      { Migrate.Engine.default_opts with Migrate.Engine.rounds_max = 3; converge_frames = 1 }
  with
  | Error e -> fail (Migrate.Engine.show_error e)
  | Ok st ->
      check int "cap bounds the rounds" 3 (List.length st.Migrate.Engine.rounds);
      check bool "cap, not convergence" false st.Migrate.Engine.converged;
      check bool "still completes" true (st.Migrate.Engine.outcome = Migrate.Engine.Completed)

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)
(* ------------------------------------------------------------------ *)

let test_chaos_scenarios () =
  List.iter
    (fun (v : Migrate.Chaos.verdict) ->
      let name = Migrate.Chaos.scenario_name v.Migrate.Chaos.scenario in
      check bool (name ^ " leaves one clean live copy") true v.Migrate.Chaos.ok;
      check int (name ^ ": analysis-clean") 0 v.Migrate.Chaos.analysis_findings;
      check int (name ^ ": no leaked frames") 0 v.Migrate.Chaos.leaked_frames;
      check bool (name ^ ": no split brain") false v.Migrate.Chaos.split_brain)
    (Migrate.Chaos.all ());
  (* The winner depends on the failure: a dead source fails over to
     the target's checkpoint; a dead/unreachable target leaves the
     source serving. *)
  let homes =
    List.map (fun (v : Migrate.Chaos.verdict) -> v.Migrate.Chaos.live_hid) (Migrate.Chaos.all ())
  in
  check (list int) "failover lands on the target, aborts keep the source" [ 1; 0; 0 ] homes

let test_chaos_leak_injection_flips () =
  List.iter
    (fun (v : Migrate.Chaos.verdict) ->
      match v.Migrate.Chaos.scenario with
      | Migrate.Chaos.Source_crash ->
          (* The loser host is dead: nothing survives to leak into. *)
          check bool "dead loser cannot leak" true v.Migrate.Chaos.ok
      | Migrate.Chaos.Target_crash | Migrate.Chaos.Partition ->
          check bool "planted frame flips the verdict" false v.Migrate.Chaos.ok;
          check bool "and is attributed as a leak" true (v.Migrate.Chaos.leaked_frames > 0))
    (Migrate.Chaos.all ~leak_inject:true ())

(* ------------------------------------------------------------------ *)
(* Pool drain vs in-flight clones (regression)                         *)
(* ------------------------------------------------------------------ *)

let test_pool_drain_spares_live_clones () =
  let host = Cki.Host.create (Hw.Machine.create ~cpus:2 ~mem_mib:512 ()) in
  let cfg = { Cki.Config.default with Cki.Config.segment_frames = 1024; vcpus = 1 } in
  let pool =
    Snapshot.Pool.create ~target:1
      ~make:(fun () ->
        match Snapshot.Template.create (Cki.Container.create ~cfg host) with
        | Ok t -> t
        | Error e -> fail ("template: " ^ Snapshot.Template.show_error e))
      ()
  in
  let clone =
    match Snapshot.Pool.spawn_fast ~verify:true pool with
    | Ok c -> c
    | Error e -> fail ("spawn: " ^ Snapshot.Template.show_error e)
  in
  (* The regression: draining while the clone still CoW-shares the
     template's frames must retire the template, not destroy it out
     from under the clone. *)
  check int "drain evicts the ready template" 1 (Snapshot.Pool.drain pool);
  check int "in-use template retires instead of dying" 1 (Snapshot.Pool.retired_count pool);
  check int "retired template is not freed while referenced" 0 (Snapshot.Pool.reap_retired pool);
  (* The clone is fully functional over the retired template. *)
  check int "clone is analysis-clean" 0 (List.length (Analysis.check_machine ~containers:[ clone ]));
  Cki.Container.destroy clone;
  check int "last clone death frees the retired template" 1 (Snapshot.Pool.reap_retired pool);
  check int "retired set empty" 0 (Snapshot.Pool.retired_count pool)

let test_template_destroy_refuses_while_referenced () =
  let host = Cki.Host.create (Hw.Machine.create ~cpus:2 ~mem_mib:512 ()) in
  let cfg = { Cki.Config.default with Cki.Config.segment_frames = 1024; vcpus = 1 } in
  let tpl =
    match Snapshot.Template.create (Cki.Container.create ~cfg host) with
    | Ok t -> t
    | Error e -> fail ("template: " ^ Snapshot.Template.show_error e)
  in
  check bool "fresh template is unreferenced" false (Snapshot.Template.in_use tpl);
  let clone =
    match Snapshot.Template.clone ~verify:true tpl with
    | Ok c -> c
    | Error e -> fail ("clone: " ^ Snapshot.Template.show_error e)
  in
  check bool "clone pins the template" true (Snapshot.Template.in_use tpl);
  check_raises "destroy refuses while clones share frames"
    (Invalid_argument "Template.destroy: shared frames still referenced by live clones")
    (fun () -> Snapshot.Template.destroy tpl);
  Cki.Container.destroy clone;
  check bool "last clone death releases the pin" false (Snapshot.Template.in_use tpl);
  Snapshot.Template.destroy tpl

(* ------------------------------------------------------------------ *)
(* Domain isolation: concurrent migrations race-check clean            *)
(* ------------------------------------------------------------------ *)

let test_concurrent_migrations_racecheck_clean () =
  Hw.Probe.set_mem_trace true;
  let report =
    Fun.protect
      ~finally:(fun () -> Hw.Probe.set_mem_trace false)
      (fun () ->
        let (), trace =
          Analysis.Trace.with_recorder ~capacity:400_000 (fun () ->
              Hw.Domain_shard.run ~domains:2 ~lanes:2 (fun _ ->
                  let _fab, st =
                    migrate_app ~heap_pages:64
                      ~opts:{ Migrate.Engine.default_opts with Migrate.Engine.verify = false }
                      ()
                  in
                  assert (st.Migrate.Engine.outcome = Migrate.Engine.Completed)))
        in
        Analysis.Racecheck.of_trace trace)
  in
  check bool "two migrations on two domains are racecheck-clean" true
    (Analysis.Racecheck.is_clean report);
  check bool "spawn/join edges recorded" true (report.Analysis.Racecheck.edges >= 4)

let suite =
  [
    ( "migrate",
      [
        test_case "dirty tracking: rounds drain the write log" `Quick test_dirty_tracking_rounds;
        test_case "dirty tracking: epoch discipline" `Quick test_dirty_tracking_epoch_discipline;
        test_case "fabric: transfer syncs both clocks" `Quick test_fabric_transfer_syncs_clocks;
        test_case "fabric: freeze/rehome/replay" `Quick test_fabric_freeze_rehome_replay;
        test_case "engine: completed migration, golden re-capture" `Quick
          test_migration_completes_golden;
        test_case "engine: pre-copy converges, beats stop-and-copy" `Quick
          test_precopy_converges_and_beats_stop_and_copy;
        test_case "engine: round cap bounds a non-converging writer" `Quick test_round_cap_fires;
        test_case "chaos: every scenario leaves one clean copy" `Quick test_chaos_scenarios;
        test_case "chaos: leak injection is caught" `Quick test_chaos_leak_injection_flips;
        test_case "pool: drain spares live clones (regression)" `Quick
          test_pool_drain_spares_live_clones;
        test_case "template: destroy refuses while referenced" `Quick
          test_template_destroy_refuses_while_referenced;
        test_case "racecheck: concurrent migrations on two domains" `Quick
          test_concurrent_migrations_racecheck_clean;
      ] );
  ]
