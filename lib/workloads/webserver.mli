(** Web-server workloads of Figure 5: nginx static files, nginx as a
    reverse proxy (double virtio traffic), and Apache httpd (heavier
    per-request syscall footprint). *)

type kind = Nginx_static | Nginx_proxy | Httpd

val pp_kind : Format.formatter -> kind -> unit
val show_kind : kind -> string
val equal_kind : kind -> kind -> bool
val kind_name : kind -> string
val file_bytes : int
val rx_batch : int
val request_compute : kind -> float

type server = {
  backend : Virt.Backend.t;
  task : Kernel_model.Task.t;
  sock_fd : int;
  sock_id : int;
  upstream_fd : int;
  upstream_id : int;
  file_path : string;
  kind : kind;
}

val create : Virt.Backend.t -> kind -> server

val serve_one : server -> unit
(** Handle one already-delivered request (recv + file work + send);
    the reply rides the TX queue, flushed by the caller. *)

val run : Virt.Backend.t -> kind -> requests:int -> float
(** Requests per simulated second. *)
