(* In-memory key-value stores: a memcached-like multi-threaded server
   and a redis-like single-threaded server, driven by a
   memtier_benchmark-style client (1:1 GET/SET, 500-byte values) —
   Figure 16, and the redis/memcached bars of Figure 5.

   The servers run a real hash-table store and execute genuine recv/
   send syscalls on a simulated socket.  The backend-dependent costs —
   syscall redirection, virtio doorbell exits, interrupt delivery and
   EOI, nested L0 redirection — all flow through the platform, which is
   where the paper's 1.3x-6.8x spreads come from. *)

type flavor = Memcached | Redis [@@deriving show { with_path = false }, eq]

type server = {
  flavor : flavor;
  backend : Virt.Backend.t;
  task : Kernel_model.Task.t;
  sock_fd : int;
  sock_id : int;
  store : (int, Bytes.t) Hashtbl.t;
  value_size : int;
  mutable requests : int;
}

(* Per-request application work beyond syscalls: protocol parsing,
   hashing, allocation.  Redis's single-threaded event loop does more
   per-command work (RESP parsing, object model). *)
let compute_per_request = function Memcached -> 600.0 | Redis -> 4_000.0

(* Auxiliary syscalls per request (epoll_wait and friends). *)
let aux_syscalls = function Memcached -> 3 | Redis -> 2

(* Event-loop batching: a pipelined single-threaded server coalesces
   doorbells/interrupts across the requests of one loop iteration. *)
let batch_size = function Memcached -> 1 | Redis -> 4

let create_server (b : Virt.Backend.t) flavor =
  let task = Virt.Backend.spawn b in
  let sock_fd =
    match Virt.Backend.syscall_exn b task Kernel_model.Syscall.Socket with
    | Kernel_model.Syscall.Rint fd -> fd
    | _ -> failwith "kv: socket failed"
  in
  let sock_id =
    match Kernel_model.Task.fd task sock_fd with
    | Some (Kernel_model.Task.Socket id) -> id
    | _ -> failwith "kv: no socket id"
  in
  (* Connect a client endpoint so sends have a destination. *)
  let wire = Kernel_model.Kernel.wire b.Virt.Backend.kernel in
  let client_ep = Kernel_model.Net.endpoint wire in
  (match Kernel_model.Kernel.socket_endpoint b.Virt.Backend.kernel sock_id with
  | Some server_ep -> Kernel_model.Net.connect wire server_ep client_ep
  | None -> failwith "kv: endpoint lookup failed");
  {
    flavor;
    backend = b;
    task;
    sock_fd;
    sock_id;
    store = Hashtbl.create 65536;
    value_size = 500;
    requests = 0;
  }

type request = Get of int | Set of int

let encode_request r size =
  match r with Get _ -> Bytes.create 24 | Set _ -> Bytes.create (24 + size)

(* Handle one already-delivered request: recv syscall, event-loop
   auxiliary syscalls, protocol compute, store operation, send syscall.
   The reply rides the TX queue; the caller flushes it at its own
   batching granularity. *)
let handle_request srv (req : request) =
  let b = srv.backend in
  srv.requests <- srv.requests + 1;
  (* recv the request *)
  ignore
    (Virt.Backend.syscall_exn b srv.task
       (Kernel_model.Syscall.Recv { fd = srv.sock_fd; n = 1024 }));
  (* event-loop / epoll auxiliary syscalls *)
  for _ = 1 to aux_syscalls srv.flavor do
    ignore (Virt.Backend.syscall_exn b srv.task Kernel_model.Syscall.Sched_yield)
  done;
  Profile.compute b (compute_per_request srv.flavor);
  let reply =
    match req with
    | Set (key : int) ->
        Hashtbl.replace srv.store key (Bytes.create srv.value_size);
        Bytes.of_string "STORED"
    | Get key -> (
        match Hashtbl.find_opt srv.store key with
        | Some v -> v
        | None -> Bytes.of_string "MISS")
  in
  (* send the reply *)
  ignore
    (Virt.Backend.syscall_exn b srv.task
       (Kernel_model.Syscall.Send { fd = srv.sock_fd; data = reply }))

(* Serve one batch: one RX interrupt delivers the batch, then each
   request is handled; the TX queue is flushed (kick + completion
   interrupt) per event-loop iteration. *)
let serve_batch srv (reqs : request list) =
  let b = srv.backend in
  let k = b.Virt.Backend.kernel in
  (match
     Kernel_model.Kernel.deliver_packets k ~sid:srv.sock_id
       (List.map (fun r -> encode_request r srv.value_size) reqs)
   with
  | Ok () -> ()
  | Error `No_socket -> failwith "kv: no socket");
  List.iter (handle_request srv) reqs;
  Kernel_model.Kernel.flush_net k;
  (* drain replies on the client side *)
  match Kernel_model.Kernel.socket_endpoint k srv.sock_id with
  | Some ep -> (
      match ep.Kernel_model.Net.peer with
      | Some peer_id ->
          let peer = Kernel_model.Net.get (Kernel_model.Kernel.wire k) peer_id in
          while Kernel_model.Net.pending peer > 0 do
            ignore (Kernel_model.Net.recv peer)
          done
      | None -> ())
  | None -> ()

(* memtier-style run: [clients] concurrent connections issuing a 1:1
   GET/SET mix.  Server throughput is requests / simulated busy time,
   scaled by a saturating concurrency factor (more clients keep the
   server busier until its vCPUs saturate).  Returns ops/sec. *)
let run_memtier (b : Virt.Backend.t) ~flavor ~clients ~requests =
  let srv = create_server b flavor in
  let rng = Profile.Rng.create ~seed:123L () in
  let batch = max 1 (min clients (batch_size flavor)) in
  let busy_ns =
    Profile.timed b (fun () ->
        let sent = ref 0 in
        while !sent < requests do
          let n = min batch (requests - !sent) in
          let reqs =
            List.init n (fun _ ->
                let key = Profile.Rng.int rng 100_000 in
                if Profile.Rng.int rng 2 = 0 then Set key else Get key)
          in
          serve_batch srv reqs;
          sent := !sent + n
        done)
  in
  let per_req = busy_ns /. float_of_int requests in
  (* Concurrency: client think time and the network overlap with server
     processing; utilization saturates as clients grow.  Memcached's
     worker threads also scale across vCPUs up to a point. *)
  let parallel = match flavor with Memcached -> 4.0 | Redis -> 1.0 in
  let util = float_of_int clients /. (float_of_int clients +. 4.0) in
  1e9 /. per_req *. util *. parallel

(* One-number throughput for Figure 5's redis/memcached bars. *)
let run_throughput (b : Virt.Backend.t) ~flavor ~requests =
  run_memtier b ~flavor ~clients:32 ~requests
