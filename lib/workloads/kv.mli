(** In-memory key-value stores: a memcached-like multi-threaded server
    and a redis-like single-threaded server, driven by a
    memtier_benchmark-style client (1:1 GET/SET, 500-byte values) —
    Figure 16 and the redis/memcached bars of Figure 5.

    Servers run a real hash-table store and genuine recv/send syscalls
    on a simulated socket; the backend-dependent costs (syscall
    redirection, doorbell exits, interrupt delivery + EOI, nested L0
    redirection) flow through the platform. *)

type flavor = Memcached | Redis

val pp_flavor : Format.formatter -> flavor -> unit
val show_flavor : flavor -> string
val equal_flavor : flavor -> flavor -> bool

type server = {
  flavor : flavor;
  backend : Virt.Backend.t;
  task : Kernel_model.Task.t;
  sock_fd : int;
  sock_id : int;
  store : (int, Bytes.t) Hashtbl.t;
  value_size : int;
  mutable requests : int;
}

val compute_per_request : flavor -> float
val aux_syscalls : flavor -> int

val batch_size : flavor -> int
(** Event-loop coalescing of doorbells/interrupts (redis pipelines). *)

val create_server : Virt.Backend.t -> flavor -> server

type request = Get of int | Set of int

val encode_request : request -> int -> Bytes.t
(** Wire encoding (24-byte header; SET carries the value). *)

val handle_request : server -> request -> unit
(** Handle one already-delivered request (recv + aux syscalls + compute
    + store op + send). The reply rides the TX queue; the caller
    flushes at its own batching granularity. *)

val serve_batch : server -> request list -> unit
(** One RX interrupt delivers the batch; per request: recv, store op,
    send; the TX queue is flushed (kick + completion interrupt) once. *)

val run_memtier : Virt.Backend.t -> flavor:flavor -> clients:int -> requests:int -> float
(** memtier-style run; returns throughput in ops/sec (server busy time
    scaled by a saturating concurrency factor). *)

val run_throughput : Virt.Backend.t -> flavor:flavor -> requests:int -> float
(** One-number throughput for Figure 5's bars (32 clients). *)
