(** Per-tenant admission control: token bucket + inflight cap.

    Requests refused here are {e shed} — counted, never queued — so an
    over-subscribed tenant degrades at its own front door instead of
    bloating shared queues.  Time is the simulated clock (ns). *)

type t

val create : ?max_inflight:int -> ?rate_rps:float -> ?burst:float -> now:float -> unit -> t
(** [max_inflight] caps requests in flight (default unlimited);
    [rate_rps] is the token refill rate (default [infinity] =
    uncapped); [burst] is the bucket depth (default 10 ms worth of
    tokens).  [now] seeds the refill clock.
    @raise Invalid_argument on non-positive parameters. *)

val admit : t -> now:float -> inflight:int -> bool
(** Refill, then admit (consuming a token) or shed.  The inflight cap
    is checked before the bucket: backlog sheds even with tokens. *)

val admitted : t -> int
val shed : t -> int
val shed_rate : t -> int
val shed_inflight : t -> int
