(* The fleet controller: cluster-scale serving over warm clones.

   One tenant = one isolated slice of the fabric: its own machine,
   host, warm template pool, I/O event loop and vCPU scheduler.  The
   controller composes the subsystems the repo already has —

   - {!Ioplane.Serve.Lane} wires each replica into the switch and
     carries requests end to end;
   - {!Balancer} spreads admitted arrivals over the live replicas;
   - {!Admission} sheds what the tenant's token bucket or inflight cap
     refuses, at the front door;
   - {!Autoscaler} watches windowed p99 against the SLO and asks for
     replicas;
   - {!Snapshot.Pool.spawn_fast} materializes a replica as a warm CoW
     clone (re-verified by the analysis scanner before it takes
     traffic), and {!Cki.Container.destroy} returns a scaled-in
     replica's memory to the host — thousands of such cycles is what
     scatter delegation exists for.

   Replicas multiplex over {!Cki.Vcpu_sched} with an optional
   cgroup-style CPU quota, so capacity is budget-rate per replica:
   offered load above the aggregate budget grows queues, the windowed
   p99 breaches, and scale-out genuinely restores the SLO by adding
   budget — the feedback loop is physical, not scripted.

   Tenants shard across OCaml domains exactly like {!Ioplane.Serve}
   lanes: every tenant's trajectory is a pure function of the config
   and its derived seed, so all counters are identical for any
   [?domains] value. *)

module Lane = Ioplane.Serve.Lane

type tenant = {
  name : string;
  workload : Ioplane.Serve.workload;
  rate_rps : float;  (** offered open-loop arrival rate *)
  requests : int;  (** total arrivals to generate *)
  max_inflight : int;  (** admission inflight cap; [max_int] = off *)
  admission_rps : float;  (** admission token rate; [infinity] = off *)
}

let default_tenant =
  {
    name = "tenant";
    workload = Ioplane.Serve.Kv_memcached;
    rate_rps = 20_000.0;
    requests = 2_000;
    max_inflight = max_int;
    admission_rps = infinity;
  }

(* Evacuate host [d_host] once the tenant has offered [d_after_requests]
   arrivals: replacement replicas are warm-cloned on the surviving
   hosts first, the draining host's replicas stop taking new picks and
   are destroyed as they go idle, and its warm pool is drained (live
   templates retire until their clones die). *)
type drain_spec = { d_host : int; d_after_requests : int }

type config = {
  tenants : tenant list;
  balancer : Balancer.policy;
  autoscaler : Autoscaler.config;
  container_cfg : Cki.Config.t;
  cpu_quota : (float * float) option;  (** per-replica (period_ns, budget_ns) *)
  initial_replicas : int;  (** bootstrap fleet size; effective floor is min_replicas *)
  pool_target : int;
  pool_low_water : int;
  io_window : int;
  queue_size : int;
  mem_mib : int;  (** per-tenant machine memory *)
  hosts : int;  (** host slices per tenant (one machine, disjoint id spaces) *)
  drain : drain_spec option;
  seed : int;
}

(* Small segments: fleet replicas are many and short-lived, and 4 MiB
   per delegation lets one host carry hundreds of them. *)
let default_container_cfg =
  { Cki.Config.default with Cki.Config.segment_frames = 1024; vcpus = 1 }

let default_config =
  {
    tenants = [ default_tenant ];
    balancer = Balancer.Pick2_least_loaded;
    autoscaler = Autoscaler.default_config;
    container_cfg = default_container_cfg;
    cpu_quota = Some (1_000_000.0, 100_000.0) (* 10% of a CPU per replica *);
    initial_replicas = 1;
    pool_target = 2;
    pool_low_water = 1;
    io_window = 1;
    queue_size = 64;
    mem_mib = 512;
    hosts = 1;
    drain = None;
    seed = 0x2545F4914F6CDD1D;
  }

type spawn_sample = { s_ns : float; s_pool_hit : bool }

type tenant_result = {
  tr_name : string;
  tr_offered : int;
  tr_admitted : int;
  tr_shed : int;
  tr_shed_rate : int;
  tr_shed_inflight : int;
  tr_completed : int;
  tr_mean_us : float;
  tr_p50_us : float;
  tr_p95_us : float;
  tr_p99_us : float;
  tr_windows : int;
  tr_breaches : int;
  tr_scale_outs : int;  (** replicas actually added after bootstrap *)
  tr_scale_ins : int;  (** replicas actually destroyed *)
  tr_verify_failures : int;  (** clones refused by the analysis scanner *)
  tr_peak_replicas : int;
  tr_final_replicas : int;
  tr_spawns : spawn_sample list;  (** chronological, bootstrap included *)
  tr_pool : Snapshot.Pool.stats;
  tr_balancer_picks : int;
  tr_throttle_events : int;
  tr_elapsed_ns : float;
  tr_evacuated : int;  (** draining-host replicas destroyed after going idle *)
  tr_drain_ns : float;  (** drain trigger -> last evacuee destroyed; 0 without drain *)
  tr_p99_before_us : float;  (** phase p99s around the drain window; 0 without drain *)
  tr_p99_during_us : float;
  tr_p99_after_us : float;
}

type result = { tenants : tenant_result list; makespan_ns : float; domains : int }

type replica = {
  rep_lane : Lane.t;
  rep_container : Cki.Container.t;
  rep_entry : Cki.Vcpu_sched.vcpu_entry;
  rep_host : int;
  mutable rep_draining : bool;  (** excluded from balancer picks; destroyed when idle *)
}

let xorshift rng n =
  let x = !rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  rng := x land max_int;
  !rng mod n

(* Per-tenant derived seed, never 0 (xorshift fixpoint). *)
let tenant_seed base i =
  let s = (base lxor ((i + 1) * 0x9E3779B97F4A7C1)) land max_int in
  if s = 0 then 1 else s

(* One tenant's complete serving run on its own machine. *)
let run_tenant cfg tenant ~seed =
  if tenant.requests < 1 then invalid_arg "Fleet: tenant needs at least one request";
  if tenant.rate_rps <= 0.0 then invalid_arg "Fleet: tenant rate must be positive";
  if cfg.hosts < 1 then invalid_arg "Fleet: need at least one host";
  (match cfg.drain with
  | Some d ->
      if cfg.hosts < 2 then invalid_arg "Fleet: draining needs a surviving host";
      if d.d_host < 0 || d.d_host >= cfg.hosts then invalid_arg "Fleet: drain host out of range"
  | None -> ());
  let machine = Hw.Machine.create ~cpus:4 ~mem_mib:cfg.mem_mib () in
  let clock = Hw.Machine.clock machine in
  (* Host slices share the machine (and clock) but own disjoint
     container-id spaces, so delegations and frame ownership stay
     attributable per host — what the drain leak check relies on. *)
  let hosts =
    Array.init cfg.hosts (fun h -> Cki.Host.create ~first_container:((h * 100_000) + 1) machine)
  in
  let loop = Ioplane.Loop.create clock in
  let scheds = Array.map Cki.Vcpu_sched.create hosts in
  let rng = ref seed in
  let rand n = xorshift rng n in
  let ccfg = cfg.container_cfg in
  let pools =
    Array.map
      (fun host ->
        Snapshot.Pool.create ~low_water:cfg.pool_low_water ~target:cfg.pool_target
          ~make:(fun () ->
            match Snapshot.Template.create (Cki.Container.create ~cfg:ccfg host) with
            | Ok t -> t
            | Error e ->
                failwith ("Fleet: template build failed: " ^ Snapshot.Template.show_error e))
          ())
      hosts
  in
  let draining : int option ref = ref None in
  let replicas = ref [||] in
  let next_replica = ref 0 in
  let spawns = ref [] in
  let verify_failures = ref 0 in
  let scale_outs = ref 0 in
  let scale_ins = ref 0 in
  let peak = ref 0 in
  (* Warm-clone a replica, re-verify it, and wire it into the fabric.
     The spawn latency sample records whether the pool served it warm
     (hit) or had to build a template inline (miss — the cold cliff
     refill_low_water exists to avoid). *)
  (* Place a new replica on the least-loaded host that is not
     draining (lowest index on ties — deterministic). *)
  let pick_host () =
    let counts = Array.make cfg.hosts 0 in
    Array.iter (fun r -> counts.(r.rep_host) <- counts.(r.rep_host) + 1) !replicas;
    let best = ref (-1) in
    for h = cfg.hosts - 1 downto 0 do
      if !draining <> Some h && (!best < 0 || counts.(h) <= counts.(!best)) then best := h
    done;
    !best
  in
  let spawn_replica () =
    let h = pick_host () in
    let pool = pools.(h) in
    let misses0 = (Snapshot.Pool.stats pool).Snapshot.Pool.misses in
    let res, ns = Hw.Clock.timed clock (fun () -> Snapshot.Pool.spawn_fast ~verify:true pool) in
    match res with
    | Error _ ->
        incr verify_failures;
        false
    | Ok c ->
        let hit = (Snapshot.Pool.stats pool).Snapshot.Pool.misses = misses0 in
        spawns := { s_ns = ns; s_pool_hit = hit } :: !spawns;
        let i = !next_replica in
        incr next_replica;
        let name = Printf.sprintf "%s-r%d" tenant.name i in
        let lane =
          Lane.attach ~loop ~workload:tenant.workload ~queue_size:cfg.queue_size
            ~window:cfg.io_window ~rand ~name (Cki.Container.backend c)
        in
        let entry = Cki.Vcpu_sched.add_vcpu ?quota:cfg.cpu_quota scheds.(h) c ~vcpu:0 in
        replicas :=
          Array.append !replicas
            [| { rep_lane = lane; rep_container = c; rep_entry = entry; rep_host = h; rep_draining = false } |];
        if Array.length !replicas > !peak then peak := Array.length !replicas;
        true
  in
  (* Scale-in: destroy the newest *idle* replica (no request anywhere
     between send and reap).  If every replica holds traffic, hold —
     the autoscaler will ask again after its cooldown. *)
  let scale_in () =
    let arr = !replicas in
    let n = Array.length arr in
    let floor_n = max 1 cfg.autoscaler.Autoscaler.min_replicas in
    let idx = ref (-1) in
    for i = 0 to n - 1 do
      (* Draining replicas belong to the evacuation sweep, not scale-in. *)
      if Lane.inflight arr.(i).rep_lane = 0 && not arr.(i).rep_draining then idx := i
    done;
    if !idx >= 0 && n > floor_n then begin
      let r = arr.(!idx) in
      Lane.detach r.rep_lane;
      Cki.Vcpu_sched.remove_vcpu scheds.(r.rep_host) r.rep_entry;
      Cki.Container.destroy r.rep_container;
      replicas := Array.of_list (List.filteri (fun i _ -> i <> !idx) (Array.to_list arr));
      incr scale_ins;
      true
    end
    else false
  in
  (* The drain_host action: warm-clone replacements onto the surviving
     hosts *first* (capacity never dips), then fence the draining
     host's replicas out of the balancer and evict its warm pool.
     In-use templates retire; [reap_retired] frees them once their
     last clone dies. *)
  let evacuated = ref 0 in
  let drain_start_ns = ref 0.0 in
  let drain_end_ns = ref 0.0 in
  let drain_host h =
    draining := Some h;
    drain_start_ns := Hw.Clock.now clock;
    let doomed = Array.to_list !replicas |> List.filter (fun r -> r.rep_host = h) in
    List.iter (fun _ -> ignore (spawn_replica ())) doomed;
    List.iter (fun r -> r.rep_draining <- true) doomed;
    ignore (Snapshot.Pool.drain pools.(h))
  in
  (* Destroy draining replicas as they go idle; note when the host is
     empty — the drain window the phase p99s bracket. *)
  let sweep_draining () =
    match !draining with
    | None -> ()
    | Some h ->
        let arr = !replicas in
        if Array.exists (fun r -> r.rep_draining) arr then begin
          let gone = ref false in
          Array.iter
            (fun r ->
              if r.rep_draining && Lane.inflight r.rep_lane = 0 then begin
                Lane.detach r.rep_lane;
                Cki.Vcpu_sched.remove_vcpu scheds.(r.rep_host) r.rep_entry;
                Cki.Container.destroy r.rep_container;
                incr evacuated;
                gone := true
              end)
            arr;
          if !gone then
            replicas :=
              Array.of_list
                (List.filter
                   (fun r -> not (r.rep_draining && Lane.inflight r.rep_lane = 0))
                   (Array.to_list arr))
        end
        else if !drain_end_ns = 0.0 && Array.for_all (fun r -> r.rep_host <> h) arr then
          drain_end_ns := Hw.Clock.now clock
  in
  for _ = 1 to max cfg.initial_replicas cfg.autoscaler.Autoscaler.min_replicas do
    if not (spawn_replica ()) then failwith "Fleet: bootstrap replica failed verification"
  done;
  let admission =
    Admission.create ~max_inflight:tenant.max_inflight ~rate_rps:tenant.admission_rps
      ~now:(Hw.Clock.now clock) ()
  in
  let balancer = Balancer.create ~seed:(tenant_seed seed 1) cfg.balancer in
  let start_ns = Hw.Clock.now clock in
  let autoscaler = Autoscaler.create ~now:start_ns cfg.autoscaler in
  let interval = 1e9 /. tenant.rate_rps in
  let next_arrival = ref start_ns in
  let offered = ref 0 in
  let latencies = ref [] in
  let stamped = ref [] in  (* (completion_ns, latency_us) for phase p99s *)
  let completed = ref 0 in
  let inflight_total () = Array.fold_left (fun a r -> a + Lane.inflight r.rep_lane) 0 !replicas in
  (* Background refill skips a draining host (its pool must empty out,
     not regrow) and reaps retired templates whose last clone died. *)
  let refill_pools () =
    Array.iteri
      (fun h pool ->
        if !draining <> Some h then ignore (Snapshot.Pool.refill_low_water pool);
        ignore (Snapshot.Pool.reap_retired pool))
      pools
  in
  let rounds = ref 0 in
  let max_rounds = (100 * tenant.requests) + 10_000 in
  while !offered < tenant.requests || inflight_total () > 0 do
    incr rounds;
    if !rounds > max_rounds then
      failwith
        (Printf.sprintf
           "Fleet: tenant failed to converge (offered=%d completed=%d inflight=%d replicas=%d \
            now=%.0f next=%.0f)"
           !offered !completed (inflight_total ()) (Array.length !replicas) (Hw.Clock.now clock)
           !next_arrival);
    let progressed = ref false in
    (* Open-loop arrivals through admission control: refused requests
       are shed (counted) and never enter the fabric. *)
    while !offered < tenant.requests && !next_arrival <= Hw.Clock.now clock do
      incr offered;
      let now = Hw.Clock.now clock in
      if Admission.admit admission ~now ~inflight:(inflight_total ()) then begin
        let arr = !replicas in
        (* Draining replicas are fenced: they finish what they hold
           but take no new picks. *)
        let elig = ref [] in
        Array.iteri (fun i r -> if not r.rep_draining then elig := i :: !elig) arr;
        let elig = Array.of_list (List.rev !elig) in
        let n = Array.length elig in
        let i =
          Balancer.pick balancer ~load:(fun i -> Lane.inflight arr.(elig.(i)).rep_lane) ~n
        in
        Lane.send arr.(elig.(i)).rep_lane ~ts:!next_arrival
      end;
      next_arrival := !next_arrival +. interval;
      progressed := true
    done;
    (* The drain_host action fires once the offered count crosses the
       spec's threshold. *)
    (match cfg.drain with
    | Some d when !draining = None && !offered >= d.d_after_requests -> drain_host d.d_host
    | _ -> ());
    (* Deliver frames; handlers become scheduled vCPU work. *)
    Array.iter
      (fun r ->
        if Lane.pump ~submit:(Cki.Vcpu_sched.submit_work r.rep_entry) r.rep_lane > 0 then
          progressed := true)
      !replicas;
    (* Guest execution under quota; device service between slices.
       Only when handlers are actually queued — an idle fleet must not
       burn timer-gate charges (and pollute the quota windows) spinning
       empty slices. *)
    let pending_work =
      Array.fold_left
        (fun a r -> a + Queue.length r.rep_entry.Cki.Vcpu_sched.work)
        0 !replicas
    in
    if pending_work > 0 then begin
      let t0 = Hw.Clock.now clock in
      Array.iteri
        (fun h sched ->
          let host_pending =
            Array.fold_left
              (fun a r ->
                if r.rep_host = h then a + Queue.length r.rep_entry.Cki.Vcpu_sched.work else a)
              0 !replicas
          in
          if host_pending > 0 then
            Cki.Vcpu_sched.run sched
              ~slices:(max 1 (Array.length !replicas))
              ~after_slice:(fun () -> ignore (Ioplane.Loop.tick loop)))
        scheds;
      if Hw.Clock.now clock > t0 then progressed := true
    end;
    if Ioplane.Loop.tick loop > 0 then progressed := true;
    (* Reap completions; every latency feeds the autoscaler's window. *)
    Array.iter
      (fun r ->
        List.iter
          (fun ts ->
            let lat_us = (Hw.Clock.now clock -. ts) /. 1e3 in
            latencies := lat_us :: !latencies;
            stamped := (Hw.Clock.now clock, lat_us) :: !stamped;
            Autoscaler.observe autoscaler ~latency_us:lat_us;
            incr completed;
            progressed := true)
          (Lane.reap r.rep_lane))
      !replicas;
    sweep_draining ();
    (match
       Autoscaler.decide autoscaler ~now:(Hw.Clock.now clock) ~replicas:(Array.length !replicas)
     with
    | Autoscaler.Hold -> ()
    | Autoscaler.Scale_out ->
        if spawn_replica () then incr scale_outs;
        refill_pools ()
    | Autoscaler.Scale_in -> ignore (scale_in ()));
    (* Idle: background pool refill, then advance to the next arrival. *)
    if not !progressed then begin
      refill_pools ();
      if !offered < tenant.requests && !next_arrival > Hw.Clock.now clock then
        Hw.Clock.advance clock (!next_arrival -. Hw.Clock.now clock)
      else Hw.Clock.advance clock 1_000.0
    end
  done;
  let elapsed_ns = Hw.Clock.now clock -. start_ns in
  (* Phase p99s bracket the drain window: completions before the
     trigger, during the evacuation, and after the host emptied. *)
  let drain_ns, p99_before, p99_during, p99_after =
    if !drain_start_ns = 0.0 then (0.0, 0.0, 0.0, 0.0)
    else begin
      let d_end = if !drain_end_ns = 0.0 then Hw.Clock.now clock else !drain_end_ns in
      let phase lo hi =
        List.filter_map (fun (t, l) -> if t >= lo && t < hi then Some l else None) !stamped
      in
      let p99 = function [] -> 0.0 | l -> Report.Stats.percentile l ~p:99.0 in
      ( d_end -. !drain_start_ns,
        p99 (phase neg_infinity !drain_start_ns),
        p99 (phase !drain_start_ns d_end),
        p99 (phase d_end infinity) )
    end
  in
  let merge_pool_stats () =
    Array.fold_left
      (fun (a : Snapshot.Pool.stats) p ->
        let s = Snapshot.Pool.stats p in
        {
          Snapshot.Pool.hits = a.Snapshot.Pool.hits + s.Snapshot.Pool.hits;
          misses = a.Snapshot.Pool.misses + s.Snapshot.Pool.misses;
          refills = a.Snapshot.Pool.refills + s.Snapshot.Pool.refills;
          size = a.Snapshot.Pool.size + s.Snapshot.Pool.size;
          served = a.Snapshot.Pool.served + s.Snapshot.Pool.served;
        })
      { Snapshot.Pool.hits = 0; misses = 0; refills = 0; size = 0; served = 0 }
      pools
  in
  {
    tr_name = tenant.name;
    tr_offered = !offered;
    tr_admitted = Admission.admitted admission;
    tr_shed = Admission.shed admission;
    tr_shed_rate = Admission.shed_rate admission;
    tr_shed_inflight = Admission.shed_inflight admission;
    tr_completed = !completed;
    tr_mean_us = Report.Stats.mean !latencies;
    tr_p50_us = Report.Stats.percentile !latencies ~p:50.0;
    tr_p95_us = Report.Stats.percentile !latencies ~p:95.0;
    tr_p99_us = Report.Stats.percentile !latencies ~p:99.0;
    tr_windows = Autoscaler.windows autoscaler;
    tr_breaches = Autoscaler.breaches autoscaler;
    tr_scale_outs = !scale_outs;
    tr_scale_ins = !scale_ins;
    tr_verify_failures = !verify_failures;
    tr_peak_replicas = !peak;
    tr_final_replicas = Array.length !replicas;
    tr_spawns = List.rev !spawns;
    tr_pool = merge_pool_stats ();
    tr_balancer_picks = Balancer.picks balancer;
    tr_throttle_events =
      Array.fold_left (fun a s -> a + Cki.Vcpu_sched.throttle_events s) 0 scheds;
    tr_elapsed_ns = elapsed_ns;
    tr_evacuated = !evacuated;
    tr_drain_ns = drain_ns;
    tr_p99_before_us = p99_before;
    tr_p99_during_us = p99_during;
    tr_p99_after_us = p99_after;
  }

(* ------------------------------------------------------------------ *)
(* Domain-sharded execution (the Serve.run_sharded pattern)            *)
(* ------------------------------------------------------------------ *)

let run ?(domains = 0) (cfg : config) =
  if domains < 0 then invalid_arg "Fleet: negative domain count";
  if cfg.tenants = [] then invalid_arg "Fleet: need at least one tenant";
  let tenants = Array.of_list cfg.tenants in
  let lanes = Array.length tenants in
  let outs = Array.make lanes None in
  (* Spawn/join/ring plumbing lives in [Hw.Domain_shard] (the repo's
     one blessed spawn site); each tenant writes only its own [outs]
     slot. *)
  Hw.Domain_shard.run ~domains ~lanes (fun i ->
      outs.(i) <- Some (run_tenant cfg tenants.(i) ~seed:(tenant_seed cfg.seed i)));
  let out i = match outs.(i) with Some o -> o | None -> failwith "Fleet: tenant did not run" in
  (* Simulated makespan under the fixed tenant->domain assignment. *)
  let eff_domains = if domains <= 1 then 1 else domains in
  let makespan = ref 0.0 in
  for d = 0 to min eff_domains lanes - 1 do
    let span = ref 0.0 in
    let i = ref d in
    while !i < lanes do
      span := !span +. (out !i).tr_elapsed_ns;
      i := !i + eff_domains
    done;
    if !span > !makespan then makespan := !span
  done;
  {
    tenants = List.init lanes out;
    makespan_ns = !makespan;
    domains;
  }

let pp_tenant_result fmt tr =
  Format.fprintf fmt
    "%-12s offered=%d admitted=%d shed=%d done=%d  lat(us) p50=%.1f p95=%.1f p99=%.1f  \
     replicas peak=%d final=%d (out=%d in=%d)  pool hits=%d misses=%d refills=%d"
    tr.tr_name tr.tr_offered tr.tr_admitted tr.tr_shed tr.tr_completed tr.tr_p50_us tr.tr_p95_us
    tr.tr_p99_us tr.tr_peak_replicas tr.tr_final_replicas tr.tr_scale_outs tr.tr_scale_ins
    tr.tr_pool.Snapshot.Pool.hits tr.tr_pool.Snapshot.Pool.misses tr.tr_pool.Snapshot.Pool.refills
