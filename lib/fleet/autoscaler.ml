(* SLO-driven autoscaling over windowed tail latency.

   Decisions are made every [window] completed requests, on the p99 of
   exactly that window: a breach (p99 above the SLO) scales out, a
   calm streak ([idle_windows] consecutive windows comfortably under
   the SLO) scales back in.  The cooldown stops the controller from
   thrashing on the transient spike a fresh replica itself causes
   (clone + attach advance the simulated clock, and arrivals queued
   behind the spawn land with inflated latency).

   All state is a pure function of the observation stream and the
   decision clock — no wall time, no randomness — so the same traffic
   trace produces the same scaling trajectory on every run. *)

type config = {
  slo_p99_us : float;  (** the objective: windowed p99 must stay under this *)
  window : int;  (** completed requests per decision window *)
  min_replicas : int;
  max_replicas : int;
  cooldown_ns : float;  (** minimum simulated time between scaling actions *)
  idle_windows : int;  (** calm windows before scale-in *)
  scale_in_factor : float;  (** calm = p99 below [factor * slo] *)
}

let default_config =
  {
    slo_p99_us = 500.0;
    window = 200;
    min_replicas = 1;
    max_replicas = 8;
    cooldown_ns = 2e6;
    idle_windows = 3;
    scale_in_factor = 0.25;
  }

type decision = Hold | Scale_out | Scale_in [@@deriving show { with_path = false }, eq]

type t = {
  cfg : config;
  mutable samples : float list;  (** current window, newest first *)
  mutable nsamples : int;
  mutable last_action_ns : float;
  mutable calm_streak : int;
  mutable windows : int;
  mutable breaches : int;
  mutable scale_outs : int;
  mutable scale_ins : int;
  mutable last_p99_us : float;
}

let create ?(now = 0.0) cfg =
  if cfg.window < 1 then invalid_arg "Autoscaler.create: window must be positive";
  if cfg.min_replicas < 1 then invalid_arg "Autoscaler.create: min_replicas must be positive";
  if cfg.max_replicas < cfg.min_replicas then
    invalid_arg "Autoscaler.create: max_replicas below min_replicas";
  {
    cfg;
    samples = [];
    nsamples = 0;
    (* start inside a cooldown: the initial fleet should prove itself
       before the first scale-out *)
    last_action_ns = now;
    calm_streak = 0;
    windows = 0;
    breaches = 0;
    scale_outs = 0;
    scale_ins = 0;
    last_p99_us = 0.0;
  }

let observe t ~latency_us =
  t.samples <- latency_us :: t.samples;
  t.nsamples <- t.nsamples + 1

let decide t ~now ~replicas =
  if t.nsamples < t.cfg.window then Hold
  else begin
    let p99 = Report.Stats.percentile t.samples ~p:99.0 in
    t.samples <- [];
    t.nsamples <- 0;
    t.windows <- t.windows + 1;
    t.last_p99_us <- p99;
    let cooled = now -. t.last_action_ns >= t.cfg.cooldown_ns in
    if p99 > t.cfg.slo_p99_us then begin
      t.breaches <- t.breaches + 1;
      t.calm_streak <- 0;
      if cooled && replicas < t.cfg.max_replicas then begin
        t.scale_outs <- t.scale_outs + 1;
        t.last_action_ns <- now;
        Scale_out
      end
      else Hold
    end
    else begin
      if p99 < t.cfg.scale_in_factor *. t.cfg.slo_p99_us then
        t.calm_streak <- t.calm_streak + 1
      else t.calm_streak <- 0;
      if t.calm_streak >= t.cfg.idle_windows && cooled && replicas > t.cfg.min_replicas then begin
        t.scale_ins <- t.scale_ins + 1;
        t.calm_streak <- 0;
        t.last_action_ns <- now;
        Scale_in
      end
      else Hold
    end
  end

let windows t = t.windows
let breaches t = t.breaches
let scale_outs t = t.scale_outs
let scale_ins t = t.scale_ins
let last_p99_us t = t.last_p99_us
