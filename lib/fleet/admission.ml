(* Per-tenant admission control: a token bucket over the simulated
   clock plus a hard inflight cap.

   An over-subscribed tenant (offered load above its token rate, or
   replies not keeping up with arrivals) sheds at the front door
   instead of growing unbounded queues inside the fabric — the shed
   count is the tenant's overload signal, and a well-behaved tenant
   must shed nothing (the fleet bench asserts exactly that). *)

type t = {
  max_inflight : int;
  rate_rps : float;  (** token refill rate; [infinity] = uncapped *)
  burst : float;  (** bucket capacity *)
  mutable tokens : float;
  mutable last_refill : float;  (** clock ns of the last refill *)
  mutable admitted : int;
  mutable shed_rate : int;  (** refused: token bucket empty *)
  mutable shed_inflight : int;  (** refused: inflight cap reached *)
}

let create ?(max_inflight = max_int) ?(rate_rps = infinity) ?burst ~now () =
  if max_inflight < 1 then invalid_arg "Admission.create: max_inflight must be positive";
  if rate_rps <= 0.0 then invalid_arg "Admission.create: rate_rps must be positive";
  let burst =
    match burst with
    | Some b when b > 0.0 -> b
    | Some _ -> invalid_arg "Admission.create: burst must be positive"
    | None -> if rate_rps = infinity then infinity else Float.max 1.0 (rate_rps /. 100.0)
  in
  {
    max_inflight;
    rate_rps;
    burst;
    tokens = burst;
    last_refill = now;
    admitted = 0;
    shed_rate = 0;
    shed_inflight = 0;
  }

let refill t ~now =
  if t.rate_rps < infinity && now > t.last_refill then begin
    t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last_refill) /. 1e9 *. t.rate_rps));
    t.last_refill <- now
  end

(* Admit or shed one request. Inflight is checked first: a backlogged
   tenant is shed even with tokens to spare. *)
let admit t ~now ~inflight =
  refill t ~now;
  if inflight >= t.max_inflight then begin
    t.shed_inflight <- t.shed_inflight + 1;
    false
  end
  else if t.rate_rps < infinity && t.tokens < 1.0 then begin
    t.shed_rate <- t.shed_rate + 1;
    false
  end
  else begin
    if t.rate_rps < infinity then t.tokens <- t.tokens -. 1.0;
    t.admitted <- t.admitted + 1;
    true
  end

let admitted t = t.admitted
let shed t = t.shed_rate + t.shed_inflight
let shed_rate t = t.shed_rate
let shed_inflight t = t.shed_inflight
