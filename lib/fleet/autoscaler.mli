(** SLO-driven autoscaling over windowed p99 latency.

    Every [window] completed requests forms one decision window; a p99
    breach scales out (subject to cooldown and [max_replicas]), a calm
    streak scales in.  Deterministic: the trajectory is a pure function
    of the observation stream and the decision clock. *)

type config = {
  slo_p99_us : float;
  window : int;
  min_replicas : int;
  max_replicas : int;
  cooldown_ns : float;
  idle_windows : int;
  scale_in_factor : float;
}

val default_config : config

type decision = Hold | Scale_out | Scale_in

val pp_decision : Format.formatter -> decision -> unit
val show_decision : decision -> string
val equal_decision : decision -> decision -> bool

type t

val create : ?now:float -> config -> t
(** [now] starts the initial cooldown (the starting fleet must prove
    itself before the first scale-out).
    @raise Invalid_argument on a malformed config. *)

val observe : t -> latency_us:float -> unit
(** Feed one completed request's end-to-end latency. *)

val decide : t -> now:float -> replicas:int -> decision
(** [Hold] until a full window has accumulated; then consume the
    window and decide.  A non-[Hold] result restarts the cooldown —
    the caller is expected to apply it. *)

val windows : t -> int
val breaches : t -> int
val scale_outs : t -> int
val scale_ins : t -> int
val last_p99_us : t -> float
