(** Replica selection: round-robin, or power-of-two-choices
    least-loaded.  Deterministic for a fixed seed — the balancer owns
    its xorshift state. *)

type policy = Round_robin | Pick2_least_loaded

val pp_policy : Format.formatter -> policy -> unit
val show_policy : policy -> string
val equal_policy : policy -> policy -> bool
val policy_of_string : string -> policy option
val policy_name : policy -> string

type t

val create : ?seed:int -> policy -> t

val pick : t -> load:(int -> int) -> n:int -> int
(** Choose a replica in [0, n); [load i] is replica [i]'s inflight
    depth (consulted only by [Pick2_least_loaded]).
    @raise Invalid_argument when [n < 1]. *)

val picks : t -> int
val policy : t -> policy
