(* Replica selection for one tenant's lane set.

   [Round_robin] is the baseline; [Pick2_least_loaded] is the
   power-of-two-choices rule — sample two replicas uniformly, route to
   the less loaded — which keeps the max queue within O(log log n) of
   the mean at a fraction of the cost of global least-loaded.  The
   balancer owns its xorshift state, so a fixed seed gives the same
   pick sequence on every run (the controller's determinism across
   domain counts rests on this). *)

type policy = Round_robin | Pick2_least_loaded [@@deriving show { with_path = false }, eq]

type t = {
  policy : policy;
  mutable rng : int;
  mutable cursor : int;  (** next round-robin position *)
  mutable picks : int;
}

let create ?(seed = 0x2545F4914F6CDD1D) policy =
  { policy; rng = (if seed land max_int = 0 then 1 else seed land max_int); cursor = 0; picks = 0 }

let rand t n =
  let x = t.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  t.rng <- x land max_int;
  t.rng mod n

(* Choose a replica index in [0, n). [load i] is replica [i]'s current
   queue depth (inflight requests). *)
let pick t ~load ~n =
  if n < 1 then invalid_arg "Balancer.pick: need at least one replica";
  t.picks <- t.picks + 1;
  match t.policy with
  | Round_robin ->
      let i = t.cursor mod n in
      t.cursor <- (t.cursor + 1) mod n;
      i
  | Pick2_least_loaded ->
      if n = 1 then 0
      else begin
        let a = rand t n in
        let b = rand t n in
        if load b < load a then b else a
      end

let picks t = t.picks
let policy t = t.policy

let policy_of_string = function
  | "rr" | "round-robin" | "round_robin" -> Some Round_robin
  | "p2" | "pick2" | "pick2-least-loaded" -> Some Pick2_least_loaded
  | _ -> None

let policy_name = function Round_robin -> "round-robin" | Pick2_least_loaded -> "pick2"
