(** The fleet controller: load balancing, admission control and
    SLO-driven autoscaling over warm clones.

    One tenant = one isolated slice (own machine, host, template pool,
    event loop, vCPU scheduler).  Replicas are warm CoW clones from
    {!Snapshot.Pool.spawn_fast}, each re-verified by the analysis
    scanner before taking traffic; scale-in destroys them with
    {!Cki.Container.destroy}.  With a CPU quota per replica, capacity
    is budget-rate: overload breaches the windowed p99 and scale-out
    genuinely restores the SLO by adding budget.

    Deterministic: every tenant's counters are a pure function of the
    config and its derived seed, identical for any [?domains]. *)

type tenant = {
  name : string;
  workload : Ioplane.Serve.workload;
  rate_rps : float;
  requests : int;
  max_inflight : int;  (** admission inflight cap; [max_int] = off *)
  admission_rps : float;  (** admission token rate; [infinity] = off *)
}

val default_tenant : tenant

(** Evacuate host [d_host] once [d_after_requests] arrivals have been
    offered: replacements warm-clone onto the surviving hosts first,
    the doomed replicas drain (no new picks, destroyed when idle) and
    the host's warm pool is evicted. *)
type drain_spec = { d_host : int; d_after_requests : int }

type config = {
  tenants : tenant list;
  balancer : Balancer.policy;
  autoscaler : Autoscaler.config;
  container_cfg : Cki.Config.t;
  cpu_quota : (float * float) option;  (** per-replica (period_ns, budget_ns) *)
  initial_replicas : int;  (** bootstrap fleet size; effective floor is min_replicas *)
  pool_target : int;
  pool_low_water : int;
  io_window : int;
  queue_size : int;
  mem_mib : int;  (** per-tenant machine memory *)
  hosts : int;  (** host slices per tenant (one machine, disjoint id spaces) *)
  drain : drain_spec option;
  seed : int;
}

val default_container_cfg : Cki.Config.t
(** 4 MiB segments, one vCPU: sized so a host carries hundreds of
    replicas. *)

val default_config : config

type spawn_sample = { s_ns : float; s_pool_hit : bool }

type tenant_result = {
  tr_name : string;
  tr_offered : int;
  tr_admitted : int;
  tr_shed : int;
  tr_shed_rate : int;
  tr_shed_inflight : int;
  tr_completed : int;
  tr_mean_us : float;
  tr_p50_us : float;
  tr_p95_us : float;
  tr_p99_us : float;
  tr_windows : int;
  tr_breaches : int;
  tr_scale_outs : int;
  tr_scale_ins : int;
  tr_verify_failures : int;
  tr_peak_replicas : int;
  tr_final_replicas : int;
  tr_spawns : spawn_sample list;
  tr_pool : Snapshot.Pool.stats;
  tr_balancer_picks : int;
  tr_throttle_events : int;
  tr_elapsed_ns : float;
  tr_evacuated : int;  (** draining-host replicas destroyed after going idle *)
  tr_drain_ns : float;  (** drain trigger -> host empty; 0 without drain *)
  tr_p99_before_us : float;  (** phase p99s bracketing the drain window; 0 without drain *)
  tr_p99_during_us : float;
  tr_p99_after_us : float;
}

type result = { tenants : tenant_result list; makespan_ns : float; domains : int }

val tenant_seed : int -> int -> int
(** Derived per-tenant seed (never 0). *)

val run_tenant : config -> tenant -> seed:int -> tenant_result
(** One tenant's complete serving run on its own machine.  Exposed for
    tests; {!run} is the fleet entry point.
    @raise Invalid_argument on a malformed tenant;
    @raise Failure if the harness cannot converge or a bootstrap
    replica fails verification. *)

val run : ?domains:int -> config -> result
(** Serve every tenant.  [domains = 0] or [1] runs tenants inline;
    [domains > 1] shards them across OCaml domains round-robin.
    Tenant results are merged in fixed tenant order and the makespan is
    the max over domains of their tenants' summed elapsed times —
    counters never depend on [domains]. *)

val pp_tenant_result : Format.formatter -> tenant_result -> unit
