(* The abstract, canonical machine state the model checker explores.

   Only security-relevant per-vCPU facts are kept: privilege mode
   (CPL), PKRS, IF, the halted bit, the E4 interrupt-saved PKRS stack,
   and the gate-nesting context (which PKS-switching IDT vectors are
   in flight, i.e. whose secure stack is live).  Everything else the
   simulator tracks is deliberately outside the abstraction:

   - gs/kernel_gs_base: attacker-controlled and never trusted by any
     gate (the per-vCPU area lives at a constant VA — Figure 8), so
     they cannot influence any checked property;
   - CR3/PCID: every enumerated action restores them (the hypercall
     gate switches and switches back atomically), and Mov_to_cr3 is
     either blocked or — under the policy mutant — a no-op register
     write in the simulator;
   - TLB contents, the clock and gate counters: performance state.

   The gate-nesting context is explorer-maintained (the transition
   relation pushes on a PKS-switching delivery and pops on the gate's
   iret) because it is not derivable from registers alone under
   mutants: with the E4 save dropped, gate code runs with an empty
   saved-PKRS stack, yet "guest holds PKRS=0" must still be judged
   relative to being inside the gate. *)

type vcpu = {
  mode : Hw.Cpu.mode;
  pkrs : Hw.Pks.rights;
  if_flag : bool;
  halted : bool;
  saved_pkrs : Hw.Pks.rights list;  (** E4 stack, innermost first *)
  gate_ctx : int list;  (** in-flight PKS-switch vectors, innermost first *)
}
[@@deriving eq]

type t = { vcpus : vcpu array } [@@deriving eq]

let in_gate v = v.gate_ctx <> []

let capture (cpus : Hw.Cpu.t array) ~(gate_ctx : int list array) : t =
  {
    vcpus =
      Array.mapi
        (fun i (c : Hw.Cpu.t) ->
          {
            mode = c.Hw.Cpu.mode;
            pkrs = c.Hw.Cpu.pkrs;
            if_flag = c.Hw.Cpu.if_flag;
            halted = c.Hw.Cpu.halted;
            saved_pkrs = c.Hw.Cpu.saved_pkrs;
            gate_ctx = gate_ctx.(i);
          })
        cpus;
  }

(* Write the abstract state back onto the concrete vCPUs, making the
   next [Transition.apply] run from exactly this point.  Lists are
   immutable, so sharing [saved_pkrs] is safe. *)
let restore (t : t) (cpus : Hw.Cpu.t array) : unit =
  Array.iteri
    (fun i (v : vcpu) ->
      let c = cpus.(i) in
      c.Hw.Cpu.mode <- v.mode;
      c.Hw.Cpu.pkrs <- v.pkrs;
      c.Hw.Cpu.if_flag <- v.if_flag;
      c.Hw.Cpu.halted <- v.halted;
      c.Hw.Cpu.saved_pkrs <- v.saved_pkrs)
    t.vcpus

(* Deeper limits than the stdlib defaults (10/100): abstract states
   differ only in small leaves, and equality disambiguates within a
   bucket anyway. *)
let hash (t : t) = Hashtbl.hash_param 128 256 t

let show_pkrs r =
  if r = Hw.Pks.all_access then "0"
  else if r = Hw.Pks.pkrs_guest then "guest"
  else Printf.sprintf "%#x" r

let show_vcpu v =
  let saved =
    match v.saved_pkrs with
    | [] -> ""
    | l -> Printf.sprintf " saved=[%s]" (String.concat "," (List.map show_pkrs l))
  in
  let gate =
    match v.gate_ctx with
    | [] -> ""
    | l -> Printf.sprintf " gate=[%s]" (String.concat "," (List.map string_of_int l))
  in
  Printf.sprintf "%s pkrs=%s if=%d%s%s%s"
    (match v.mode with Hw.Cpu.User -> "U" | Hw.Cpu.Kernel -> "K")
    (show_pkrs v.pkrs)
    (if v.if_flag then 1 else 0)
    (if v.halted then " hlt" else "")
    saved gate

let show (t : t) =
  String.concat "  "
    (Array.to_list (Array.mapi (fun i v -> Printf.sprintf "cpu%d{%s}" i (show_vcpu v)) t.vcpus))
