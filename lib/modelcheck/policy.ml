(* Table 3 of the paper, pinned as literal data.

   This is a deliberate second spelling of [Hw.Priv.blocked_in_guest]
   and [Hw.Priv.virtualized_as]: the model checker judges executed
   transitions against *this* table, so a policy edit (or a seeded
   mutant) in [Hw.Priv] produces counterexamples instead of silently
   moving the goalposts.  The golden-table test additionally pins the
   live policy row-by-row against [rows]. *)

let rows : (Hw.Priv.t * bool * Hw.Priv.virtualization) list =
  let open Hw.Priv in
  [
    (Lidt, true, Ksm_call);
    (Sidt, true, Ksm_call);
    (Lgdt, true, Ksm_call);
    (Ltr, true, Ksm_call);
    (Rdmsr 0x10, true, Hypercall);
    (Wrmsr 0x10, true, Hypercall);
    (Mov_from_cr 0, false, Native);
    (Mov_from_cr 4, false, Native);
    (Mov_to_cr0, true, Ksm_call);
    (Mov_to_cr3, true, Ksm_call);
    (Mov_to_cr4, true, Ksm_call);
    (Clac, false, Native);
    (Stac, false, Native);
    (Invlpg 0x1000, false, Native);
    (Invpcid, true, Unused);
    (Swapgs, false, Native);
    (Sysret, false, Native);
    (Iret, true, Ksm_call);
    (Hlt, false, Hypercall);
    (Sti, true, In_memory_state);
    (Cli, true, In_memory_state);
    (Popf, true, In_memory_state);
    (In_port 0x60, true, Unused);
    (Out_port 0x60, true, Unused);
    (Smsw, true, Unused);
    (Wrpkrs Hw.Pks.all_access, false, Native);
    (Rdpkrs, false, Native);
  ]

(* Golden verdict by constructor (operand-independent), so it applies
   to any instance the transition relation enumerates. *)
let blocked (i : Hw.Priv.t) : bool =
  let open Hw.Priv in
  match i with
  | Lidt | Sidt | Lgdt | Ltr | Rdmsr _ | Wrmsr _ | Mov_to_cr0 | Mov_to_cr3 | Mov_to_cr4
  | Invpcid | Iret | Sti | Cli | Popf | In_port _ | Out_port _ | Smsw ->
      true
  | Mov_from_cr _ | Clac | Stac | Invlpg _ | Swapgs | Sysret | Hlt | Wrpkrs _ | Rdpkrs -> false

(* Rows where the live policy disagrees with the golden table. *)
let drift () : (Hw.Priv.t * bool * Hw.Priv.virtualization) list =
  List.filter
    (fun (i, b, v) ->
      Hw.Priv.blocked_in_guest i <> b
      || not (Hw.Priv.equal_virtualization (Hw.Priv.virtualized_as i) v))
    rows
