(** Deterministic bounded model checker over the CKI privilege machine.

    {!State} canonicalizes the security-relevant machine state;
    {!Transition} enumerates every attacker-enabled action and executes
    it against the real [Hw.Cpu]/[Cki.Gates] simulator; {!Explore} runs
    a memoized BFS checking every {!Property} on every reachable state
    and edge; {!Cex} renders shortest counterexamples; {!Mutants} is
    the mutation-testing harness that checks the checker; {!Policy} is
    the golden copy of the paper's Table 3 the checker judges against. *)

module State = State
module Action = Action
module Policy = Policy
module Transition = Transition
module Property = Property
module Explore = Explore
module Cex = Cex
module Mutants = Mutants
