(* The attacker's alphabet: every action a guest domain can take (or
   have taken on its behalf by hardware) from an explored state.

   Gate traversals come in two granularities:
   - [Ksm_call]/[Hypercall]/[Int_gate] run a whole gate atomically
     (enter, body, exit), optionally with tampered wrpkrs operands —
     the net edge the lint rules also reason about;
   - [Deliver] is raw IDT vectoring only, leaving the gate body
     in-flight as a distinct state, which is what makes nested
     interrupts and mid-gate properties explorable. *)

type t =
  | Exec of Hw.Priv.t  (** one privileged instruction, against E2 *)
  | Syscall  (** ring3 -> ring0 at the STAR entry *)
  | Ksm_call of { tamper_entry : Hw.Pks.rights option; tamper_exit : Hw.Pks.rights option }
  | Hypercall of { tamper_entry : Hw.Pks.rights option; tamper_exit : Hw.Pks.rights option }
  | Int_gate of { vector : int; software : bool }
      (** full interrupt-gate traversal; [software] = a guest jump to
          the gate entry instead of hardware delivery (E4 forgery) *)
  | Deliver of { vector : int; software : bool }
      (** raw IDT vectoring, gate body left in flight *)
[@@deriving eq]

let show_tamper = function
  | None -> ""
  | Some v -> Printf.sprintf "=%s" (State.show_pkrs v)

let show = function
  | Exec (Hw.Priv.Wrpkrs v) -> Printf.sprintf "exec wrpkrs %s" (State.show_pkrs v)
  | Exec i -> Printf.sprintf "exec %s" (Hw.Priv.mnemonic i)
  | Syscall -> "syscall"
  | Ksm_call { tamper_entry = None; tamper_exit = None } -> "ksm-call"
  | Ksm_call { tamper_entry; tamper_exit } ->
      Printf.sprintf "ksm-call (tamper entry%s exit%s)" (show_tamper tamper_entry)
        (show_tamper tamper_exit)
  | Hypercall { tamper_entry = None; tamper_exit = None } -> "hypercall"
  | Hypercall { tamper_entry; tamper_exit } ->
      Printf.sprintf "hypercall (tamper entry%s exit%s)" (show_tamper tamper_entry)
        (show_tamper tamper_exit)
  | Int_gate { vector; software } ->
      Printf.sprintf "%s int-gate vec=%d" (if software then "sw-jump" else "hw") vector
  | Deliver { vector; software } ->
      Printf.sprintf "%s vectoring vec=%d" (if software then "sw" else "hw") vector
