(** The abstract, canonical machine state the model checker explores:
    per-vCPU privilege mode, PKRS, IF, halted, the E4 saved-PKRS stack
    and the gate-nesting context. gs bases, CR3/PCID, TLB contents and
    the clock are deliberately outside the abstraction (untrusted,
    action-invariant, or performance-only — see state.ml). *)

type vcpu = {
  mode : Hw.Cpu.mode;
  pkrs : Hw.Pks.rights;
  if_flag : bool;
  halted : bool;
  saved_pkrs : Hw.Pks.rights list;  (** E4 stack, innermost first *)
  gate_ctx : int list;  (** in-flight PKS-switch vectors, innermost first *)
}

type t = { vcpus : vcpu array }

val equal_vcpu : vcpu -> vcpu -> bool
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash, consistent with {!equal}. *)

val in_gate : vcpu -> bool
(** Is monitor (gate) code executing on this vCPU? *)

val capture : Hw.Cpu.t array -> gate_ctx:int list array -> t
(** Snapshot the security-relevant fields of the concrete vCPUs,
    paired with the explorer-maintained gate-nesting contexts. *)

val restore : t -> Hw.Cpu.t array -> unit
(** Write the abstract state back onto the concrete vCPUs, so the next
    transition executes from exactly this point. *)

val show_pkrs : Hw.Pks.rights -> string
val show_vcpu : vcpu -> string
val show : t -> string
