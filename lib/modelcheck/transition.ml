(* The transition relation: execute one attacker action against the
   *real* simulator ([Hw.Cpu], [Hw.Idt], [Cki.Gates]) from a restored
   abstract state, and capture the resulting abstract state.  Nothing
   here re-implements enforcement — a bug (or seeded mutant) in the
   production gate/CPU code is visible to the checker precisely
   because the production code is what runs.

   Action semantics keep the non-CPU machine state invariant: gate
   bodies are no-op handlers, the hypercall gate restores CR3/PCID on
   every path, and the per-vCPU secure-stack pushes are balanced — so
   the abstract state is a faithful quotient and memoization is
   sound. *)

type config = {
  depth : int;  (** BFS bound, in transitions *)
  nest_bound : int;  (** max in-flight PKS-switch deliveries per vCPU *)
  pks_vectors : int list;  (** PKS-switching IDT vectors to enumerate *)
  fault_vector : int;  (** a guest-direct (non-switching) exception *)
  entry_tampers : Hw.Pks.rights list;  (** values tried at gate-entry wrpkrs *)
  exit_tampers : Hw.Pks.rights list;  (** values tried at gate-exit wrpkrs *)
  guest_wrpkrs : Hw.Pks.rights list;
      (** direct guest [wrpkrs] operands to enumerate.  Empty by
          default: per Section 4.3 (as in ERIM), guest kernel binaries
          are inspected so no wrpkrs occurs outside blessed gates; the
          [allow-guest-wrpkrs] mutant re-enables it. *)
}

let default_config =
  {
    depth = 14;
    nest_bound = 3;
    pks_vectors = [ Hw.Idt.vec_timer; Hw.Idt.vec_virtio_net; Hw.Idt.vec_ipi ];
    fault_vector = Hw.Idt.vec_page_fault;
    entry_tampers = [ Hw.Pks.pkrs_guest ];
    exit_tampers = [ Hw.Pks.all_access ];
    guest_wrpkrs = [];
  }

type outcome = Completed | Trapped of string

let equal_outcome a b =
  match (a, b) with
  | Completed, Completed -> true
  | Trapped x, Trapped y -> String.equal x y
  | _ -> false

let show_outcome = function
  | Completed -> "completed"
  | Trapped r -> Printf.sprintf "trapped: %s" r

type step = {
  outcome : outcome;
  gate_body_ran : bool;  (** did a gate body execute during this edge? *)
  post : State.t;
}

type ctx = { cfg : config; cpus : Hw.Cpu.t array; gates : Cki.Gates.t; idt : Hw.Idt.t }

let make_ctx ?(config = default_config) (c : Cki.Container.t) =
  {
    cfg = config;
    cpus = c.Cki.Container.cpus;
    gates = Cki.Container.gates c;
    idt = Cki.Ksm.idt (Cki.Container.ksm c);
  }

(* ------------------------------------------------------------------ *)
(* Enabled actions                                                     *)
(* ------------------------------------------------------------------ *)

let exec_actions cfg =
  List.filter_map
    (fun i -> match i with Hw.Priv.Wrpkrs _ -> None | _ -> Some (Action.Exec i))
    Hw.Priv.all_examples
  @ List.map (fun v -> Action.Exec (Hw.Priv.Wrpkrs v)) cfg.guest_wrpkrs

let gate_call_actions cfg =
  let opts l = None :: List.map (fun v -> Some v) l in
  List.concat_map
    (fun tamper_entry ->
      List.concat_map
        (fun tamper_exit ->
          [ Action.Ksm_call { tamper_entry; tamper_exit }; Action.Hypercall { tamper_entry; tamper_exit } ])
        (opts cfg.exit_tampers))
    (opts cfg.entry_tampers)

(* Interrupt arrivals.  Hardware vectors are enumerated regardless of
   IF: exceptions ignore IF anyway, and for the PKS vectors this
   models NMIs plus the monitor's own interrupt-window re-enables, so
   nesting stays explorable.  Software [int] is only interesting from
   kernel mode (from ring 3 a DPL-0 vector is a plain #GP). *)
let delivery_actions cfg ~nested_ok ~software_ok =
  (if nested_ok then
     List.concat_map
       (fun vector ->
         [ Action.Int_gate { vector; software = false }; Action.Deliver { vector; software = false } ]
         @
         if software_ok then
           [ Action.Int_gate { vector; software = true }; Action.Deliver { vector; software = true } ]
         else [])
       cfg.pks_vectors
   else [])
  @ [ Action.Deliver { vector = cfg.fault_vector; software = false } ]

let enabled cfg (s : State.t) ~vcpu : Action.t list =
  let v = s.State.vcpus.(vcpu) in
  let nested_ok = List.length v.State.gate_ctx < cfg.nest_bound in
  if State.in_gate v then
    (* Monitor (gate) code is executing: the attacker controls nothing
       but hardware events until the gate's iret. *)
    (if nested_ok then
       List.map (fun vector -> Action.Deliver { vector; software = false }) cfg.pks_vectors
     else [])
    @ [ Action.Exec Hw.Priv.Iret ]
  else if v.State.mode = Hw.Cpu.User then
    Action.Syscall :: delivery_actions cfg ~nested_ok ~software_ok:false
  else
    exec_actions cfg @ gate_call_actions cfg
    @ delivery_actions cfg ~nested_ok ~software_ok:true

(* ------------------------------------------------------------------ *)
(* Executing one action                                                *)
(* ------------------------------------------------------------------ *)

let trap_of_exn = function
  | Hw.Cpu.Fault f -> Hw.Cpu.show_fault f
  | Assert_failure _ -> "per-vCPU area inaccessible (monitor rights missing)"
  | e -> Printexc.to_string e

let apply (c : ctx) (s : State.t) ~vcpu (a : Action.t) : step =
  State.restore s c.cpus;
  let cpu = c.cpus.(vcpu) in
  let v = s.State.vcpus.(vcpu) in
  let body_ran = ref false in
  let outcome, gate_ctx =
    match a with
    | Action.Exec inst -> (
        match Hw.Cpu.exec_priv cpu inst with
        | Ok () ->
            (* a gate's own iret closes the innermost context *)
            let ctx' =
              match (inst, v.State.gate_ctx) with
              | Hw.Priv.Iret, _ :: rest -> rest
              | _ -> v.State.gate_ctx
            in
            (Completed, ctx')
        | Error f -> (Trapped (Hw.Cpu.show_fault f), v.State.gate_ctx))
    | Action.Syscall ->
        Hw.Cpu.syscall_entry cpu;
        (Completed, v.State.gate_ctx)
    | Action.Ksm_call { tamper_entry; tamper_exit } -> (
        match
          Cki.Gates.ksm_call c.gates cpu ~vcpu ?tamper_entry ?tamper_exit (fun () ->
              body_ran := true)
        with
        | Ok () -> (Completed, v.State.gate_ctx)
        | Error e -> (Trapped (Cki.Gates.show_error e), v.State.gate_ctx)
        | exception e -> (Trapped (trap_of_exn e), v.State.gate_ctx))
    | Action.Hypercall { tamper_entry; tamper_exit } -> (
        match
          Cki.Gates.hypercall c.gates cpu ~vcpu ?tamper_entry ?tamper_exit
            ~request:Kernel_model.Platform.Timer (fun _ -> body_ran := true)
        with
        | Ok () -> (Completed, v.State.gate_ctx)
        | Error e -> (Trapped (Cki.Gates.show_error e), v.State.gate_ctx)
        | exception e -> (Trapped (trap_of_exn e), v.State.gate_ctx))
    | Action.Int_gate { vector; software } -> (
        let kind = if software then Hw.Idt.Software else Hw.Idt.Hardware in
        match
          Cki.Gates.interrupt c.gates cpu ~vcpu ~vector ~kind (fun _ -> body_ran := true)
        with
        | Ok () -> (Completed, v.State.gate_ctx)
        | Error e -> (Trapped (Cki.Gates.show_error e), v.State.gate_ctx)
        | exception e -> (Trapped (trap_of_exn e), v.State.gate_ctx))
    | Action.Deliver { vector; software } -> (
        let kind = if software then Hw.Idt.Software else Hw.Idt.Hardware in
        let pkrs_before = cpu.Hw.Cpu.pkrs in
        let saved_before = List.length v.State.saved_pkrs in
        match Hw.Idt.deliver c.idt cpu ~kind vector with
        | entry ->
            (* Did control actually enter a PKS-switching gate?  For
               hardware that is the entry's attribute; for software it
               only happens under the software-pks-switch mutant, which
               we detect from its effects. *)
            let entered_gate =
              entry.Hw.Idt.pks_switch
              && ((not software)
                 || List.length cpu.Hw.Cpu.saved_pkrs > saved_before
                 || cpu.Hw.Cpu.pkrs <> pkrs_before)
            in
            let outcome =
              if entry.Hw.Idt.pks_switch && software && not entered_gate then
                (* the first gate instruction touches the per-vCPU area
                   with guest rights and faults (Figure 8b) *)
                Trapped "software jump to gate entry: per-vCPU area inaccessible"
              else Completed
            in
            (outcome, if entered_gate then vector :: v.State.gate_ctx else v.State.gate_ctx)
        | exception Hw.Cpu.Fault f -> (Trapped (Hw.Cpu.show_fault f), v.State.gate_ctx))
  in
  let gate_ctxs =
    Array.mapi
      (fun i (vs : State.vcpu) -> if i = vcpu then gate_ctx else vs.State.gate_ctx)
      s.State.vcpus
  in
  let post = State.capture c.cpus ~gate_ctx:gate_ctxs in
  { outcome; gate_body_ran = !body_ran; post }
