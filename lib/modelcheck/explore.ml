(* Memoized breadth-first exploration of the privilege state space.

   Determinism: the frontier is a FIFO queue, actions are enumerated
   in the fixed order [Transition.enabled] defines, and nothing ever
   iterates a hash table for output — so state counts, edge counts and
   the violation list (with its shortest counterexamples) are
   identical across runs.  BFS also guarantees minimality: when a
   property first fires, no shorter path to any violation of that
   property exists. *)

module Tbl = Hashtbl.Make (struct
  type t = State.t

  let equal = State.equal
  let hash = State.hash
end)

type stats = {
  states : int;  (** distinct abstract states reached *)
  transitions : int;  (** edges executed *)
  depth_reached : int;
  peak_frontier : int;
  elapsed_s : float;
}

type trace_step = {
  vcpu : int;
  action : Action.t;
  outcome : Transition.outcome;
  state : State.t;  (** the state after this step *)
}

type counterexample = {
  violation : Property.violation;
  init : State.t;
  steps : trace_step list;  (** shortest path from [init]; the last step exhibits it *)
}

type result = {
  config : Transition.config;
  initial : State.t;
  stats : stats;
  violations : counterexample list;  (** at most one (the first = shortest) per property *)
}

let ok r = r.violations = []

type pred = { prev : State.t; via_vcpu : int; via_action : Action.t; via_outcome : Transition.outcome }

let run ?(config = Transition.default_config) (c : Cki.Container.t) : result =
  Hw.Probe.suspended @@ fun () ->
  let t0 = Sys.time () in
  let ctx = Transition.make_ctx ~config c in
  let cpus = ctx.Transition.cpus in
  let n = Array.length cpus in
  let initial = State.capture cpus ~gate_ctx:(Array.make n []) in
  let depth_of : int Tbl.t = Tbl.create 4096 in
  let preds : pred Tbl.t = Tbl.create 4096 in
  let rec path_to st acc =
    match Tbl.find_opt preds st with
    | None -> acc
    | Some p ->
        path_to p.prev
          ({ vcpu = p.via_vcpu; action = p.via_action; outcome = p.via_outcome; state = st }
          :: acc)
  in
  let violations = ref [] in
  let seen_prop prop =
    List.exists (fun cex -> Property.equal_id cex.violation.Property.property prop) !violations
  in
  let record_state_violations st =
    List.iter
      (fun (vi : Property.violation) ->
        if not (seen_prop vi.Property.property) then
          violations := { violation = vi; init = initial; steps = path_to st [] } :: !violations)
      (Property.check_state st)
  in
  let record_edge_violations ~pre ~vcpu ~action ~(step : Transition.step) =
    List.iter
      (fun (vi : Property.violation) ->
        if not (seen_prop vi.Property.property) then
          let steps =
            path_to pre []
            @ [ { vcpu; action; outcome = step.Transition.outcome; state = step.Transition.post } ]
          in
          violations := { violation = vi; init = initial; steps } :: !violations)
      (Property.check_edge ~pre ~vcpu ~action ~step)
  in
  let q = Queue.create () in
  Tbl.add depth_of initial 0;
  record_state_violations initial;
  Queue.add initial q;
  let transitions = ref 0 and peak = ref 1 and depth_reached = ref 0 in
  while not (Queue.is_empty q) do
    let st = Queue.pop q in
    let d = Tbl.find depth_of st in
    if d > !depth_reached then depth_reached := d;
    if d < config.Transition.depth then
      for vcpu = 0 to n - 1 do
        List.iter
          (fun action ->
            let step = Transition.apply ctx st ~vcpu action in
            incr transitions;
            record_edge_violations ~pre:st ~vcpu ~action ~step;
            let post = step.Transition.post in
            if not (Tbl.mem depth_of post) then begin
              Tbl.add depth_of post (d + 1);
              Tbl.add preds post
                { prev = st; via_vcpu = vcpu; via_action = action; via_outcome = step.Transition.outcome };
              record_state_violations post;
              Queue.add post q;
              let len = Queue.length q in
              if len > !peak then peak := len
            end)
          (Transition.enabled config st ~vcpu)
      done
  done;
  (* leave the container exactly as we found it *)
  State.restore initial cpus;
  let stats =
    {
      states = Tbl.length depth_of;
      transitions = !transitions;
      depth_reached = !depth_reached;
      peak_frontier = !peak;
      elapsed_s = Sys.time () -. t0;
    }
  in
  { config; initial; stats; violations = List.rev !violations }

(* A small dedicated container: exploration only exercises privilege
   state, so a minimal segment keeps boot (and therefore mutant runs)
   fast without changing the explored space. *)
let explore_container () =
  let cfg = { Cki.Config.default with Cki.Config.segment_frames = 2048 } in
  Cki.Container.create_standalone ~cfg ~mem_mib:128 ()

let run_standalone ?config () = run ?config (explore_container ())
