(** Table 3 of the paper, pinned as literal data — a deliberate second
    spelling of the live policy in {!Hw.Priv}, so a policy edit or
    seeded mutant is judged against the paper rather than itself. *)

val rows : (Hw.Priv.t * bool * Hw.Priv.virtualization) list
(** One row per {!Hw.Priv.all_examples} entry:
    (instruction, blocked_in_guest, virtualized_as) per Table 3. *)

val blocked : Hw.Priv.t -> bool
(** Golden [blocked_in_guest] verdict, by constructor (so it applies
    to any operand instance). *)

val drift : unit -> (Hw.Priv.t * bool * Hw.Priv.virtualization) list
(** Rows where the live {!Hw.Priv} policy disagrees with the golden
    table; empty on an unmodified tree. *)
