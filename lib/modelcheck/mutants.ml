(* The mutation-testing harness: each mutant disables exactly one
   enforcement step (via an [Hw.Mutation] knob, or by extending the
   attacker's alphabet), and the checker must kill it — produce a
   counterexample — or the harness fails.  A surviving mutant means
   the checker could not see a real weakening of the mechanism it
   claims to verify, so the checker is itself checked.

   Kill depths are small (1–2 transitions), so mutants run with a
   shallow, single-vector configuration to keep `make mutants` and the
   test suite fast; [expect] documents (and the tests assert) which
   property catches each mutant. *)

type t = {
  id : string;
  description : string;
  expect : Property.id list;  (** properties that legitimately kill this mutant *)
  install : unit -> unit;  (** flip the Hw.Mutation knob(s) *)
  tweak : Transition.config -> Transition.config;  (** extend the alphabet if needed *)
}

let knob (f : Hw.Mutation.knobs -> unit) () = f Hw.Mutation.knobs

let all : t list =
  [
    {
      id = "unblock-mov-to-cr3";
      description = "Table 3 mutant: 'mov cr3, r64' no longer blocked in guest kernels";
      expect = [ Property.Destructive_executed ];
      install = knob (fun k -> k.Hw.Mutation.e2_unblocked <- [ Hw.Priv.mnemonic Hw.Priv.Mov_to_cr3 ]);
      tweak = Fun.id;
    };
    {
      id = "unblock-sti-cli";
      description = "Table 3 mutant: sti/cli no longer blocked in guest kernels";
      expect = [ Property.Destructive_executed ];
      install = knob (fun k -> k.Hw.Mutation.e2_unblocked <- [ "sti"; "cli" ]);
      tweak = Fun.id;
    };
    {
      id = "disable-e2";
      description = "extension E2 off: destructive instructions execute with PKRS != 0";
      expect = [ Property.Destructive_executed ];
      install = knob (fun k -> k.Hw.Mutation.e2_enforce <- false);
      tweak = Fun.id;
    };
    {
      id = "skip-wrpkrs-verify";
      description = "gates skip the post-wrpkrs tamper check (Figure 8a)";
      expect = [ Property.Gate_pkrs_leak; Property.Guest_monitor_rights ];
      install = knob (fun k -> k.Hw.Mutation.gate_verify_wrpkrs <- false);
      tweak = Fun.id;
    };
    {
      id = "drop-e4-save";
      description = "hardware delivery zeroes PKRS without saving it (E4 save dropped)";
      (* the atomic gate edge surfaces it as a PKRS leak (nothing saved,
         so nothing restored); the raw delivery edge as the missing save *)
      expect =
        [ Property.E4_save_missing; Property.Gate_pkrs_leak; Property.Guest_monitor_rights ];
      install = knob (fun k -> k.Hw.Mutation.e4_save_on_delivery <- false);
      tweak = Fun.id;
    };
    {
      id = "skip-e4-restore";
      description = "iret pops the E4 stack without restoring PKRS";
      expect = [ Property.Gate_pkrs_leak; Property.Guest_monitor_rights ];
      install = knob (fun k -> k.Hw.Mutation.e4_restore_on_iret <- false);
      tweak = Fun.id;
    };
    {
      id = "software-pks-switch";
      description = "software int takes the PKS switch like hardware delivery";
      expect = [ Property.Software_pks_switch; Property.Forged_entry_ran ];
      install = knob (fun k -> k.Hw.Mutation.software_pks_switch <- true);
      tweak = Fun.id;
    };
    {
      id = "skip-forgery-check";
      description = "interrupt gate skips the per-vCPU accessibility (forgery) check";
      expect = [ Property.Forged_entry_ran ];
      install = knob (fun k -> k.Hw.Mutation.gate_forgery_check <- false);
      tweak = Fun.id;
    };
    {
      id = "skip-e3-pin";
      description = "sysret no longer pins IF on when PKRS != 0 (E3 off)";
      expect = [ Property.User_if_cleared ];
      install = knob (fun k -> k.Hw.Mutation.e3_pin_if <- false);
      tweak = Fun.id;
    };
    {
      id = "allow-guest-wrpkrs";
      description = "guest text contains a wrpkrs outside the gates (inspection bypassed)";
      expect = [ Property.Guest_monitor_rights ];
      install = (fun () -> ());
      tweak = (fun cfg -> { cfg with Transition.guest_wrpkrs = [ Hw.Pks.all_access ] });
    };
  ]

type verdict = {
  mutant : t;
  killed : bool;
  killed_by : Property.id option;
  cex : Explore.counterexample option;
  states : int;
  transitions : int;
}

let as_expected v =
  match v.killed_by with Some p -> List.exists (Property.equal_id p) v.mutant.expect | None -> false

(* Kill depths are <= 2; depth 5 with one vector leaves margin while
   keeping each mutant's exploration well under a second. *)
let default_config =
  {
    Transition.default_config with
    Transition.depth = 5;
    nest_bound = 2;
    pks_vectors = [ Hw.Idt.vec_timer ];
  }

let run_one ?(config = default_config) (m : t) : verdict =
  let config = m.tweak config in
  Hw.Mutation.with_mutant m.install (fun () ->
      let r = Explore.run_standalone ~config () in
      match r.Explore.violations with
      | [] ->
          {
            mutant = m;
            killed = false;
            killed_by = None;
            cex = None;
            states = r.Explore.stats.Explore.states;
            transitions = r.Explore.stats.Explore.transitions;
          }
      | cex :: _ ->
          {
            mutant = m;
            killed = true;
            killed_by = Some cex.Explore.violation.Property.property;
            cex = Some cex;
            states = r.Explore.stats.Explore.states;
            transitions = r.Explore.stats.Explore.transitions;
          })

let run_all ?config () = List.map (fun m -> run_one ?config m) all

let all_killed verdicts = List.for_all (fun v -> v.killed && as_expected v) verdicts

let summary_line v =
  match v.killed_by with
  | Some p ->
      Printf.sprintf "  KILLED   %-22s by %-26s depth %d (%d states)  %s" v.mutant.id
        (Property.name p)
        (match v.cex with Some c -> List.length c.Explore.steps | None -> 0)
        v.states v.mutant.description
  | None ->
      Printf.sprintf "  SURVIVED %-22s %d states explored, no counterexample  %s" v.mutant.id
        v.states v.mutant.description

let summary verdicts =
  let killed = List.length (List.filter (fun v -> v.killed) verdicts) in
  String.concat "\n"
    (Printf.sprintf "mutation harness: %d/%d mutants killed" killed (List.length verdicts)
    :: List.map summary_line verdicts)
