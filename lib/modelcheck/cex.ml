(* Counterexample rendering: the shortest violating path, as recorded
   by the BFS predecessor map, rendered as numbered steps plus a
   Report.Findings entry per violated property. *)

let render_step i (s : Explore.trace_step) =
  Printf.sprintf "    %2d. [vcpu%d] %-34s %s\n        -> %s" i s.Explore.vcpu
    (Action.show s.Explore.action)
    (match s.Explore.outcome with
    | Transition.Completed -> "completed"
    | Transition.Trapped r -> Printf.sprintf "trapped (%s)" r)
    (State.show s.Explore.state)

let render (cex : Explore.counterexample) =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%s violated on vcpu%d: %s\n"
       (Property.name cex.Explore.violation.Property.property)
       cex.Explore.violation.Property.vcpu cex.Explore.violation.Property.detail);
  Buffer.add_string b
    (Printf.sprintf "  shortest counterexample (%d step%s):\n"
       (List.length cex.Explore.steps)
       (if List.length cex.Explore.steps = 1 then "" else "s"));
  Buffer.add_string b (Printf.sprintf "    init     %s\n" (State.show cex.Explore.init));
  List.iteri
    (fun i s -> Buffer.add_string b (render_step (i + 1) s ^ "\n"))
    cex.Explore.steps;
  Buffer.contents b

let finding (cex : Explore.counterexample) =
  Report.Findings.make ~severity:Report.Findings.Critical
    ~rule:(Property.name cex.Explore.violation.Property.property)
    ~subject:
      (Printf.sprintf "vcpu%d, depth %d" cex.Explore.violation.Property.vcpu
         (List.length cex.Explore.steps))
    ~detail:cex.Explore.violation.Property.detail

let findings (r : Explore.result) = List.map finding r.Explore.violations

(* The full model-check report: the findings block, then one rendered
   counterexample per violated property. *)
let report ?(title = "CKI model check") (r : Explore.result) =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Report.Findings.render ~title (findings r));
  List.iter
    (fun cex ->
      Buffer.add_char b '\n';
      Buffer.add_string b (render cex))
    r.Explore.violations;
  Buffer.contents b
