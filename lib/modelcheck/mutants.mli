(** Mutation-testing harness: each mutant disables exactly one
    enforcement step (via an {!Hw.Mutation} knob, or by extending the
    attacker's alphabet) and the checker must kill it — a surviving
    mutant is a test failure, so the checker is itself checked. *)

type t = {
  id : string;
  description : string;
  expect : Property.id list;  (** properties that legitimately kill this mutant *)
  install : unit -> unit;  (** flip the Hw.Mutation knob(s) *)
  tweak : Transition.config -> Transition.config;  (** extend the alphabet if needed *)
}

val all : t list
(** The ten seeded mutants. *)

type verdict = {
  mutant : t;
  killed : bool;
  killed_by : Property.id option;  (** first (shortest-counterexample) killer *)
  cex : Explore.counterexample option;
  states : int;
  transitions : int;
}

val as_expected : verdict -> bool
(** Killed, and by one of the properties the mutant documents. *)

val default_config : Transition.config
(** Shallow single-vector configuration — kill depths are <= 2. *)

val run_one : ?config:Transition.config -> t -> verdict
(** Install the mutant (scoped — enforcement is restored even on
    exception), boot a fresh container, explore, judge. *)

val run_all : ?config:Transition.config -> unit -> verdict list
val all_killed : verdict list -> bool
val summary : verdict list -> string
