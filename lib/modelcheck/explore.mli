(** Memoized breadth-first exploration of the privilege state space,
    checking every {!Property} on every reachable state and edge.
    Deterministic: FIFO frontier, fixed action order, no hash-table
    iteration for output — identical counts and findings across runs;
    BFS makes the first counterexample per property the shortest. *)

type stats = {
  states : int;  (** distinct abstract states reached *)
  transitions : int;  (** edges executed *)
  depth_reached : int;
  peak_frontier : int;
  elapsed_s : float;
}

type trace_step = {
  vcpu : int;
  action : Action.t;
  outcome : Transition.outcome;
  state : State.t;  (** the state after this step *)
}

type counterexample = {
  violation : Property.violation;
  init : State.t;
  steps : trace_step list;  (** shortest path from [init]; the last step exhibits it *)
}

type result = {
  config : Transition.config;
  initial : State.t;
  stats : stats;
  violations : counterexample list;  (** at most one (the shortest) per property *)
}

val ok : result -> bool
(** No property violated anywhere in the explored space. *)

val run : ?config:Transition.config -> Cki.Container.t -> result
(** Explore from the container's current vCPU state (suspending any
    probe sink); the container's vCPUs are restored afterwards, so
    exploration is side-effect-free on it. *)

val explore_container : unit -> Cki.Container.t
(** A minimal standalone container for exploration (small delegated
    segment — privilege state does not depend on memory size). *)

val run_standalone : ?config:Transition.config -> unit -> result
