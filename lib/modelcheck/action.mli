(** The attacker's alphabet: every action a guest domain can take (or
    have taken on its behalf by hardware) from an explored state. *)

type t =
  | Exec of Hw.Priv.t  (** one privileged instruction, against E2 *)
  | Syscall  (** ring3 -> ring0 at the STAR entry *)
  | Ksm_call of { tamper_entry : Hw.Pks.rights option; tamper_exit : Hw.Pks.rights option }
  | Hypercall of { tamper_entry : Hw.Pks.rights option; tamper_exit : Hw.Pks.rights option }
  | Int_gate of { vector : int; software : bool }
      (** full interrupt-gate traversal; [software] = a guest jump to
          the gate entry instead of hardware delivery (E4 forgery) *)
  | Deliver of { vector : int; software : bool }
      (** raw IDT vectoring, gate body left in flight *)

val equal : t -> t -> bool
val show : t -> string
