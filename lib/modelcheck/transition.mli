(** The transition relation: one attacker action executed against the
    real simulator ([Hw.Cpu], [Hw.Idt], [Cki.Gates]) from a restored
    abstract state. Nothing here re-implements enforcement — the
    production gate/CPU code is what runs, so a bug or seeded mutant
    in it is visible to the checker. *)

type config = {
  depth : int;  (** BFS bound, in transitions *)
  nest_bound : int;  (** max in-flight PKS-switch deliveries per vCPU *)
  pks_vectors : int list;  (** PKS-switching IDT vectors to enumerate *)
  fault_vector : int;  (** a guest-direct (non-switching) exception *)
  entry_tampers : Hw.Pks.rights list;  (** values tried at gate-entry wrpkrs *)
  exit_tampers : Hw.Pks.rights list;  (** values tried at gate-exit wrpkrs *)
  guest_wrpkrs : Hw.Pks.rights list;
      (** direct guest [wrpkrs] operands; empty by default per the
          Section 4.3 binary-inspection assumption (as in ERIM) *)
}

val default_config : config
(** depth 14, nesting 3, three PKS vectors, the page-fault exception,
    one tamper value per gate wrpkrs — ≥10k distinct states on the
    2-vCPU config. *)

type outcome =
  | Completed
  | Trapped of string  (** faulted/rejected, with the reason *)

val equal_outcome : outcome -> outcome -> bool
val show_outcome : outcome -> string

type step = {
  outcome : outcome;
  gate_body_ran : bool;  (** did a gate body execute during this edge? *)
  post : State.t;
}

type ctx = { cfg : config; cpus : Hw.Cpu.t array; gates : Cki.Gates.t; idt : Hw.Idt.t }

val make_ctx : ?config:config -> Cki.Container.t -> ctx

val enabled : config -> State.t -> vcpu:int -> Action.t list
(** The attacker-enabled actions from [s] on [vcpu], in a fixed
    enumeration order (exploration determinism depends on it). Inside
    a gate only hardware events and the gate's own iret are enabled —
    the attacker does not control monitor code. *)

val apply : ctx -> State.t -> vcpu:int -> Action.t -> step
(** Restore the abstract state onto the concrete vCPUs, run the
    action, and capture the resulting abstract state. Leaves machine
    state outside the abstraction invariant. *)
