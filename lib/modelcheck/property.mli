(** The safety properties checked on every reachable state and edge of
    the bounded exploration. P1/P4 are state properties; P2/P3/P5/P6/P7
    are edge properties (see property.ml for the full statements). *)

type id =
  | Guest_monitor_rights  (** P1: no monitor-capable PKRS outside a gate *)
  | Destructive_executed  (** P2: E2 blocks Table-3 instructions (golden) *)
  | Gate_pkrs_leak  (** P3: gates restore entry PKRS on every path *)
  | User_if_cleared  (** P4: E3 — ring 3 never entered with IF=0 *)
  | Software_pks_switch  (** P5: software vectoring never switches PKS *)
  | E4_save_missing  (** P6: gate-entering delivery saves + zeroes PKRS *)
  | Forged_entry_ran  (** P7: forged gate entry never reaches the body *)

val equal_id : id -> id -> bool

val all : id list
val name : id -> string
val describe : id -> string

type violation = { property : id; vcpu : int; detail : string }

val check_state : State.t -> violation list

val check_edge :
  pre:State.t -> vcpu:int -> action:Action.t -> step:Transition.step -> violation list
