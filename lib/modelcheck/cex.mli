(** Counterexample rendering: shortest violating paths as numbered
    step traces, and as {!Report.Findings} entries. *)

val render : Explore.counterexample -> string
(** Multi-line rendering: the violated property, then the shortest
    path from the initial state, one numbered step per line with the
    resulting abstract state. *)

val finding : Explore.counterexample -> Report.Findings.t
val findings : Explore.result -> Report.Findings.t list

val report : ?title:string -> Explore.result -> string
(** Findings block (clean bill when empty) followed by one rendered
    counterexample per violated property. *)
