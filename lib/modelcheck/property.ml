(* The safety properties checked on every reachable state and edge.

   State properties (checked on every state):
   - P1 guest-monitor-rights: outside any gate, kernel mode never
     holds a PKRS that can access KSM memory (Section 3.3);
   - P4 user-if-cleared: ring 3 is never entered with IF=0 (E3 — a
     guest kernel cannot monopolize the CPU past sysret).

   Edge properties (checked on every transition):
   - P2 destructive-executed: no Table-3-blocked instruction completes
     with PKRS != 0 (E2), judged against the *golden* table;
   - P3 gate-pkrs-leak: every gate traversal returns with the PKRS it
     was entered with (Figure 8's post-wrpkrs check / E4 restore);
   - P5 software-pks-switch: software vectoring never changes PKRS or
     the E4 stack (E4 is hardware-delivery-only);
   - P6 e4-save-missing: a delivery that enters a PKS-switching gate
     zeroes PKRS and pushes the interrupted value (E4);
   - P7 forged-entry-ran: a software jump to the gate entry never
     reaches the gate body (Figure 8b forgery detection). *)

type id =
  | Guest_monitor_rights
  | Destructive_executed
  | Gate_pkrs_leak
  | User_if_cleared
  | Software_pks_switch
  | E4_save_missing
  | Forged_entry_ran
[@@deriving eq]

let all =
  [
    Guest_monitor_rights;
    Destructive_executed;
    Gate_pkrs_leak;
    User_if_cleared;
    Software_pks_switch;
    E4_save_missing;
    Forged_entry_ran;
  ]

let name = function
  | Guest_monitor_rights -> "P1-guest-monitor-rights"
  | Destructive_executed -> "P2-destructive-executed"
  | Gate_pkrs_leak -> "P3-gate-pkrs-leak"
  | User_if_cleared -> "P4-user-if-cleared"
  | Software_pks_switch -> "P5-software-pks-switch"
  | E4_save_missing -> "P6-e4-save-missing"
  | Forged_entry_ran -> "P7-forged-entry-ran"

let describe = function
  | Guest_monitor_rights ->
      "outside any gate, kernel mode never holds monitor-capable PKRS"
  | Destructive_executed -> "no Table-3-blocked instruction completes with PKRS != 0 (E2)"
  | Gate_pkrs_leak -> "every gate traversal returns with its entry PKRS"
  | User_if_cleared -> "ring 3 is never entered with IF=0 (E3)"
  | Software_pks_switch -> "software vectoring never changes PKRS or the E4 stack"
  | E4_save_missing -> "gate-entering delivery zeroes PKRS and saves the old value (E4)"
  | Forged_entry_ran -> "a software jump to the gate entry never reaches the gate body"

type violation = { property : id; vcpu : int; detail : string }

let check_state (s : State.t) : violation list =
  let acc = ref [] in
  Array.iteri
    (fun i (v : State.vcpu) ->
      if
        (not (State.in_gate v))
        && v.State.mode = Hw.Cpu.Kernel
        && Cki.Pervcpu.accessible_with ~pkrs:v.State.pkrs
      then
        acc :=
          {
            property = Guest_monitor_rights;
            vcpu = i;
            detail =
              Printf.sprintf "kernel mode outside any gate with PKRS=%s (monitor-capable)"
                (State.show_pkrs v.State.pkrs);
          }
          :: !acc;
      if v.State.mode = Hw.Cpu.User && not v.State.if_flag then
        acc :=
          {
            property = User_if_cleared;
            vcpu = i;
            detail = "ring 3 entered with IF=0 (E3 pin bypassed)";
          }
          :: !acc)
    s.State.vcpus;
  List.rev !acc

let check_edge ~(pre : State.t) ~vcpu ~(action : Action.t) ~(step : Transition.step) :
    violation list =
  let v = pre.State.vcpus.(vcpu) in
  let p = step.Transition.post.State.vcpus.(vcpu) in
  let acc = ref [] in
  let add property detail = acc := { property; vcpu; detail } :: !acc in
  let pkrs_leaked () =
    if p.State.pkrs <> v.State.pkrs then
      add Gate_pkrs_leak
        (Printf.sprintf "gate returned with PKRS=%s (entered with %s)" (State.show_pkrs p.State.pkrs)
           (State.show_pkrs v.State.pkrs))
  in
  (match action with
  | Action.Exec inst -> (
      match step.Transition.outcome with
      | Transition.Completed ->
          if Policy.blocked inst && v.State.pkrs <> Hw.Pks.all_access then
            add Destructive_executed
              (Printf.sprintf "destructive '%s' completed with PKRS=%s (Table 3, E2)"
                 (Hw.Priv.mnemonic inst) (State.show_pkrs v.State.pkrs))
      | Transition.Trapped _ -> ())
  | Action.Ksm_call _ | Action.Hypercall _ -> pkrs_leaked ()
  | Action.Int_gate { vector; software } ->
      pkrs_leaked ();
      if software && step.Transition.gate_body_ran then
        add Forged_entry_ran
          (Printf.sprintf "software jump to gate vector %d reached the gate body" vector)
  | Action.Deliver { vector; software } ->
      if software then begin
        if
          p.State.pkrs <> v.State.pkrs
          || List.length p.State.saved_pkrs <> List.length v.State.saved_pkrs
        then
          add Software_pks_switch
            (Printf.sprintf "software int %d took the PKS switch (hardware-only, E4)" vector)
      end
      else if List.length p.State.gate_ctx > List.length v.State.gate_ctx then begin
        (* hardware delivery that entered a PKS-switching gate *)
        if p.State.pkrs <> Hw.Pks.all_access then
          add E4_save_missing
            (Printf.sprintf "delivery of vector %d entered the gate with PKRS=%s (not zeroed)"
               vector (State.show_pkrs p.State.pkrs));
        if p.State.saved_pkrs <> v.State.pkrs :: v.State.saved_pkrs then
          add E4_save_missing
            (Printf.sprintf "PKRS=%s not saved on delivery of vector %d"
               (State.show_pkrs v.State.pkrs) vector)
      end
  | Action.Syscall -> ());
  List.rev !acc
