(* The model kernel: tasks + scheduler + VFS + pipes + sockets + VirtIO
   frontends, all running over a [Platform.t].

   Instantiated once per container guest kernel (and once natively for
   RunC).  Syscall dispatch charges the platform's syscall round trip —
   native for RunC/HVM/CKI, redirected for PVM — then performs real
   work against the in-memory structures. *)

type t = {
  platform : Platform.t;
  fs : Tmpfs.t;
  sched : Sched.t;
  tasks : (int, Task.t) Hashtbl.t;
  sockets : (int, Net.endpoint) Hashtbl.t;
  wire : Net.t;
  net_dev : Virtio.t;
  blk_dev : Virtio.t;
  mutable next_pid : int;
  mutable syscall_count : int;
  mutable irq_count : int;
  mutable net_kick_pending : bool;
      (** virtio event suppression: sends posted since the last kick
          ride the already-rung doorbell (pipelining batches kicks) *)
}

let create platform =
  let clock = platform.Platform.clock in
  {
    platform;
    fs = Tmpfs.create clock;
    sched = Sched.create platform;
    tasks = Hashtbl.create 16;
    sockets = Hashtbl.create 16;
    wire = Net.create clock;
    net_dev = Virtio.create ~name:"virtio-net" clock;
    blk_dev = Virtio.create ~name:"virtio-blk" clock;
    next_pid = 1;
    syscall_count = 0;
    irq_count = 0;
    net_kick_pending = false;
  }

let platform t = t.platform
let clock t = t.platform.Platform.clock
let fs t = t.fs
let syscall_count t = t.syscall_count

let spawn t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let mm = Mm.create t.platform in
  let task = Task.create ~pid ~parent:0 mm in
  Hashtbl.replace t.tasks pid task;
  Sched.enqueue t.sched pid;
  task

let task t pid = Hashtbl.find_opt t.tasks pid

(* Live tasks sorted by pid — the kernel's task-table state for
   snapshot capture. *)
let tasks t =
  Hashtbl.fold (fun _ task acc -> task :: acc) t.tasks []
  |> List.sort (fun (a : Task.t) b -> compare a.Task.pid b.Task.pid)

let next_pid t = t.next_pid
let set_next_pid t pid = t.next_pid <- pid

(* Snapshot restore: adopt an already-reconstructed task at its
   captured pid. *)
let restore_task t (task : Task.t) =
  Hashtbl.replace t.tasks task.Task.pid task;
  Sched.enqueue t.sched task.Task.pid;
  if task.Task.pid >= t.next_pid then t.next_pid <- task.Task.pid + 1

(* Touch user memory (demand paging) outside any syscall. *)
let touch t (task : Task.t) va ~write =
  ignore t;
  Mm.touch task.Task.mm va ~write

let touch_range t (task : Task.t) ~start ~pages ~write =
  ignore t;
  Mm.touch_range task.Task.mm ~start ~pages ~write

(* Context-switch between two tasks of this kernel. *)
let context_switch t ~from_pid ~to_pid =
  ignore from_pid;
  match Hashtbl.find_opt t.tasks to_pid with
  | None -> invalid_arg "Kernel.context_switch: unknown pid"
  | Some target -> Sched.switch_to t.sched to_pid target.Task.mm

(* ------------------------------------------------------------------ *)
(* Syscall implementation                                              *)
(* ------------------------------------------------------------------ *)

let file_obj (task : Task.t) fd =
  match Task.fd task fd with
  | Some (Task.File f) -> Some f
  | Some (Task.Pipe_read _ | Task.Pipe_write _ | Task.Socket _) | None -> None

let do_read t task fd n : Syscall.result =
  match Task.fd task fd with
  | Some (Task.File f) ->
      let data = Tmpfs.read t.fs f.Task.inode ~off:f.Task.pos ~n in
      f.Task.pos <- f.Task.pos + Bytes.length data;
      Syscall.Rbytes data
  | Some (Task.Pipe_read p) -> (
      match Pipe.read p ~n with
      | Ok data -> Syscall.Rbytes data
      | Error `Would_block -> Syscall.Rerr "EAGAIN")
  | Some (Task.Socket sid) -> (
      match Hashtbl.find_opt t.sockets sid with
      | None -> Syscall.Rerr "EBADF"
      | Some ep -> (
          match Net.recv ep with
          | Ok data -> Syscall.Rbytes data
          | Error `Would_block -> Syscall.Rerr "EAGAIN"))
  | Some (Task.Pipe_write _) -> Syscall.Rerr "EBADF"
  | None -> Syscall.Rerr "EBADF"

let do_write t task fd data : Syscall.result =
  match Task.fd task fd with
  | Some (Task.File f) ->
      let n = Tmpfs.write t.fs f.Task.inode ~off:f.Task.pos data in
      f.Task.pos <- f.Task.pos + n;
      Syscall.Rint n
  | Some (Task.Pipe_write p) -> (
      match Pipe.write p data with
      | Ok n -> Syscall.Rint n
      | Error `Would_block -> Syscall.Rerr "EAGAIN"
      | Error `Epipe -> Syscall.Rerr "EPIPE")
  | Some (Task.Socket sid) -> (
      match Hashtbl.find_opt t.sockets sid with
      | None -> Syscall.Rerr "EBADF"
      | Some ep ->
          (* TX goes through the virtio-net frontend (post + doorbell +
             backend service) on virtualized platforms; OS-level
             containers hit the host NIC natively. *)
          if t.platform.Platform.virtualized_io then begin
            Virtio.post t.net_dev ~len:(Bytes.length data) ~write:true;
            if not t.net_kick_pending then begin
              Virtio.kick t.net_dev ~doorbell:(fun () ->
                  t.platform.Platform.hypercall Platform.Net_tx);
              t.net_kick_pending <- true
            end
          end;
          (match Net.send t.wire ep data with
          | Ok n -> Syscall.Rint n
          | Error `Not_connected -> Syscall.Rerr "ENOTCONN"))
  | Some (Task.Pipe_read _) -> Syscall.Rerr "EBADF"
  | None -> Syscall.Rerr "EBADF"

let do_fork t (task : Task.t) =
  let child_mm = Mm.fork task.Task.mm in
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let child = Task.create ~pid ~parent:task.Task.pid child_mm in
  (* Share the fd table contents (re-register same objects). *)
  Hashtbl.iter (fun fd obj -> Hashtbl.replace child.Task.fds fd obj) task.Task.fds;
  child.Task.next_fd <- task.Task.next_fd;
  Hashtbl.replace t.tasks pid child;
  Sched.enqueue t.sched pid;
  pid

let do_exit t (task : Task.t) code =
  task.Task.state <- Task.Zombie;
  task.Task.exit_code <- Some code;
  Mm.destroy task.Task.mm;
  Hashtbl.remove t.tasks task.Task.pid

(* Execute one syscall on behalf of [task].  Charges the platform's
   syscall round trip + the call's own work; returns the result. *)
let syscall t (task : Task.t) (sc : Syscall.t) : Syscall.result =
  t.syscall_count <- t.syscall_count + 1;
  t.platform.Platform.syscall_round_trip ();
  Hw.Clock.charge (clock t) ("sys_" ^ Syscall.name sc) (Syscall.base_work sc);
  match sc with
  | Syscall.Getpid -> Syscall.Rint task.Task.pid
  | Syscall.Read { fd; n } -> do_read t task fd n
  | Syscall.Write { fd; data } -> do_write t task fd data
  | Syscall.Open { path; create } -> (
      let inode =
        if create then Some (Tmpfs.open_or_create t.fs path) else Tmpfs.resolve_opt t.fs path
      in
      match inode with
      | None -> Syscall.Rerr "ENOENT"
      | Some inode -> Syscall.Rint (Task.install_fd task (Task.File { inode; pos = 0 })))
  | Syscall.Close fd ->
      Task.close_fd task fd;
      Syscall.Runit
  | Syscall.Stat path -> (
      match Tmpfs.resolve_opt t.fs path with
      | None -> Syscall.Rerr "ENOENT"
      | Some i -> Syscall.Rstat { size = Tmpfs.size i; ino = Tmpfs.ino i; is_dir = Tmpfs.is_dir i })
  | Syscall.Fstat fd -> (
      match file_obj task fd with
      | None -> Syscall.Rerr "EBADF"
      | Some f ->
          Syscall.Rstat
            {
              size = Tmpfs.size f.Task.inode;
              ino = Tmpfs.ino f.Task.inode;
              is_dir = Tmpfs.is_dir f.Task.inode;
            })
  | Syscall.Lseek { fd; pos } -> (
      match file_obj task fd with
      | None -> Syscall.Rerr "EBADF"
      | Some f ->
          f.Task.pos <- pos;
          Syscall.Rint pos)
  | Syscall.Fsync fd -> (
      (* tmpfs fsync is a no-op beyond its base work, but a disk file
         would go through virtio-blk. *)
      match file_obj task fd with None -> Syscall.Rerr "EBADF" | Some _ -> Syscall.Runit)
  | Syscall.Unlink path -> (
      match Tmpfs.unlink t.fs path with
      | () -> Syscall.Runit
      | exception Tmpfs.Not_found_path _ -> Syscall.Rerr "ENOENT")
  | Syscall.Mkdir path -> (
      match Tmpfs.mkdir t.fs path with
      | _ -> Syscall.Runit
      | exception Tmpfs.Exists _ -> Syscall.Rerr "EEXIST")
  | Syscall.Mmap { pages; prot } ->
      Syscall.Rint (Mm.mmap task.Task.mm ~pages ~prot ~backing:Vma.Anon)
  | Syscall.Munmap { addr; pages } ->
      Mm.munmap task.Task.mm ~start:addr ~pages;
      Syscall.Runit
  | Syscall.Mprotect { addr; pages; prot } ->
      Mm.mprotect task.Task.mm ~start:addr ~pages ~prot;
      Syscall.Runit
  | Syscall.Brk { delta_pages } -> Syscall.Rint (Mm.brk task.Task.mm ~delta_pages)
  | Syscall.Fork -> Syscall.Rint (do_fork t task)
  | Syscall.Execve ->
      (* Replace the address space: tear down and rebuild text/heap. *)
      let mm = task.Task.mm in
      let pages = Mm.resident_pages mm in
      Hw.Clock.charge (clock t) "execve_teardown" (float_of_int pages *. Hw.Cost.per_pte_copy);
      Syscall.Runit
  | Syscall.Exit code ->
      do_exit t task code;
      Syscall.Runit
  | Syscall.Pipe ->
      let p = Pipe.create (clock t) in
      let rfd = Task.install_fd task (Task.Pipe_read p) in
      let wfd = Task.install_fd task (Task.Pipe_write p) in
      Syscall.Rpair (rfd, wfd)
  | Syscall.Socket ->
      let ep = Net.endpoint t.wire in
      Hashtbl.replace t.sockets ep.Net.id ep;
      Syscall.Rint (Task.install_fd task (Task.Socket ep.Net.id))
  | Syscall.Send { fd; data } -> do_write t task fd data
  | Syscall.Recv { fd; n } -> do_read t task fd n
  | Syscall.Sched_yield -> Syscall.Runit
  | Syscall.Nanosleep ns ->
      Hw.Clock.advance (clock t) ns;
      Syscall.Runit

let syscall_exn t task sc =
  match syscall t task sc with
  | Syscall.Rerr e -> failwith (Printf.sprintf "syscall %s failed: %s" (Syscall.name sc) e)
  | r -> r

(* ------------------------------------------------------------------ *)
(* Device-side entry points (called by the host / client models)       *)
(* ------------------------------------------------------------------ *)

(* Drain the TX queue: host backend services posted descriptors and
   raises one completion interrupt for the batch.  Callers decide the
   batching granularity (per request for unpipelined servers, per
   event-loop iteration for pipelined ones). *)
let flush_net t =
  if t.platform.Platform.virtualized_io && t.net_kick_pending then begin
    ignore (Virtio.service t.net_dev);
    t.net_kick_pending <- false;
    Virtio.complete t.net_dev ~inject:(fun () -> begin
        t.irq_count <- t.irq_count + 1;
        t.platform.Platform.deliver_irq ()
      end)
  end

(* A batch of packets arrives from outside for socket [sid]: the host
   services the RX queue once and injects one interrupt. *)
let deliver_packets t ~sid payloads =
  match Hashtbl.find_opt t.sockets sid with
  | None -> Error `No_socket
  | Some ep ->
      List.iter
        (fun payload ->
          Queue.add (-1, payload) ep.Net.rx;
          ep.Net.rx_packets <- ep.Net.rx_packets + 1)
        payloads;
      if t.platform.Platform.virtualized_io then
        Hw.Clock.charge (clock t) "virtio_service" Hw.Cost.virtio_backend_service;
      t.irq_count <- t.irq_count + 1;
      t.platform.Platform.deliver_irq ();
      Ok ()

(* A packet arrives from outside for socket [sid]: host services the
   virtio queue and injects an interrupt into this kernel. *)
let deliver_packet t ~sid payload =
  match Hashtbl.find_opt t.sockets sid with
  | None -> Error `No_socket
  | Some ep ->
      Queue.add (-1, payload) ep.Net.rx;
      ep.Net.rx_packets <- ep.Net.rx_packets + 1;
      if t.platform.Platform.virtualized_io then begin
        Hw.Clock.charge (clock t) "virtio_service" Hw.Cost.virtio_backend_service;
        Virtio.complete t.net_dev ~inject:(fun () -> begin
            t.irq_count <- t.irq_count + 1;
            t.platform.Platform.deliver_irq ()
          end)
      end
      else begin
        t.irq_count <- t.irq_count + 1;
        t.platform.Platform.deliver_irq ()
      end;
      Ok ()

let socket_endpoint t sid = Hashtbl.find_opt t.sockets sid
let wire t = t.wire
let net_device t = t.net_dev
let blk_device t = t.blk_dev
let irq_count t = t.irq_count
