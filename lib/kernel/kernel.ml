(* The model kernel: tasks + scheduler + VFS + pipes + sockets + VirtIO
   frontends, all running over a [Platform.t].

   Instantiated once per container guest kernel (and once natively for
   RunC).  Syscall dispatch charges the platform's syscall round trip —
   native for RunC/HVM/CKI, redirected for PVM — then performs real
   work against the in-memory structures. *)

(* The VirtIO queue triple, created lazily on first virtualized I/O so
   freshly assembled (or snapshot-restored) containers that never did
   I/O own no ring frames — which keeps snapshot re-capture
   byte-identical. *)
type io = { tx : Virtio.t; rx : Virtio.t; blk : Virtio.t }

type kick_target = [ `Net_tx | `Net_rx | `Blk ]

(* Host-side I/O plane hooks (installed by Ioplane.Loop).  When absent
   the kernel self-services its queues synchronously, preserving the
   standalone workload semantics. *)
type io_backend = {
  kicked : kick_target -> unit;  (** a doorbell of this kernel rang *)
  service_now : unit -> unit;
      (** synchronous host service pass — the backpressure path and
          [flush_net] delegate here so a full ring drains through the
          plane (switch routing, block store) rather than a stub *)
  blk_sink : (Bytes.t -> unit) option;
      (** host block store; when present, fsync flushes ride the
          virtio-blk queue into it *)
}

type t = {
  id : int;  (** per-process unique, for queue naming *)
  platform : Platform.t;
  fs : Tmpfs.t;
  sched : Sched.t;
  tasks : (int, Task.t) Hashtbl.t;
  sockets : (int, Net.endpoint) Hashtbl.t;
  wire : Net.t;
  mutable io : io option;
  mutable io_queue_size : int;
  mutable io_window : int;
  mutable io_backend : io_backend option;
  mutable next_pid : int;
  mutable syscall_count : int;
  mutable irq_count : int;
  mutable tx_stalls : int;
      (** times the guest blocked on a full ring until a host service
          pass made room (graceful backpressure, not an error) *)
}

(* Process-wide id allocator.  [Atomic.t] so kernels instantiated from
   different domains (the planned container-sharding engine) never mint
   the same queue-naming id; single-domain behaviour is unchanged. *)
let next_kernel_id = Atomic.make 0

let create platform =
  let clock = platform.Platform.clock in
  {
    id = Atomic.fetch_and_add next_kernel_id 1 + 1;
    platform;
    fs = Tmpfs.create clock;
    sched = Sched.create platform;
    tasks = Hashtbl.create 16;
    sockets = Hashtbl.create 16;
    wire = Net.create clock;
    io = None;
    io_queue_size = 64;
    io_window = 1;
    io_backend = None;
    next_pid = 1;
    syscall_count = 0;
    irq_count = 0;
    tx_stalls = 0;
  }

let platform t = t.platform
let clock t = t.platform.Platform.clock
let fs t = t.fs
let syscall_count t = t.syscall_count

(* ------------------------------------------------------------------ *)
(* VirtIO data path                                                    *)
(* ------------------------------------------------------------------ *)

let ensure_io t =
  match t.io with
  | Some io -> io
  | None ->
      let access =
        {
          Virtio.read_word = t.platform.Platform.guest_read_word;
          write_word = t.platform.Platform.guest_write_word;
          alloc_frame = t.platform.Platform.alloc_frame;
        }
      in
      let q suffix =
        Virtio.create ~size:t.io_queue_size ~window:t.io_window
          ~name:(Printf.sprintf "%s%d-%s" t.platform.Platform.name t.id suffix)
          access (clock t)
      in
      let io = { tx = q "net-tx"; rx = q "net-rx"; blk = q "blk" } in
      t.io <- Some io;
      io

let configure_io ?queue_size ?window t =
  (match queue_size with
  | None -> ()
  | Some s ->
      if t.io <> None then invalid_arg "Kernel.configure_io: queues already created";
      t.io_queue_size <- s);
  match window with
  | None -> ()
  | Some w ->
      t.io_window <- w;
      Option.iter
        (fun io ->
          Virtio.set_window io.tx w;
          Virtio.set_window io.rx w;
          Virtio.set_window io.blk w)
        t.io

let set_io_backend t backend = t.io_backend <- backend
let virtualized_io t = t.platform.Platform.virtualized_io
let io_devices t = Option.map (fun io -> (io.tx, io.rx, io.blk)) t.io
let io_window t = t.io_window

let io_unreclaimed t =
  match t.io with
  | None -> []
  | Some io ->
      List.filter_map
        (fun q ->
          let n = Virtio.unreclaimed q in
          if n > 0 then Some (Virtio.name q, n) else None)
        [ io.tx; io.rx; io.blk ]

let tx_stalls t = t.tx_stalls

(* Host side: service a device-readable queue (TX or blk), inject the
   completion interrupt ([force_irq] bounds batch latency), then run the
   guest's reclaim as its interrupt handler. *)
let host_service_queue ?(force_irq = true) t q ~handle =
  let n = Virtio.service q ~handle in
  let injected =
    Virtio.complete ~force:force_irq q ~inject:(fun () ->
        t.irq_count <- t.irq_count + 1;
        t.platform.Platform.deliver_irq ())
  in
  if injected then ignore (Virtio.reclaim q);
  n

let host_service_net_tx ?force_irq t ~handle =
  match t.io with None -> 0 | Some io -> host_service_queue ?force_irq t io.tx ~handle

let host_service_blk ?force_irq t ~handle =
  match t.io with
  | None -> 0
  | Some io ->
      let sink =
        match t.io_backend with Some { blk_sink = Some f; _ } -> f | _ -> handle
      in
      host_service_queue ?force_irq t io.blk ~handle:(fun data ->
          sink data;
          Hw.Clock.charge (clock t) "blk_io"
            (float_of_int (max 1 ((Bytes.length data + 511) / 512)) *. Hw.Cost.blk_sector))

(* Guest blocked on a full ring: run one synchronous host service pass
   to make room.  Through the plane when attached, self-serviced when
   standalone. *)
let host_service_pass t =
  match t.io_backend with
  | Some b -> b.service_now ()
  | None ->
      ignore (host_service_net_tx t ~handle:ignore);
      ignore (host_service_blk t ~handle:ignore)

(* Guest: post [data] with graceful backpressure, then ring-or-not. *)
let guest_post_kick t q ~data ~(kind : Platform.io_kind) ~(target : kick_target) =
  let rec post attempts =
    match Virtio.post q ~data with
    | `Posted -> ()
    | `Full ->
        if attempts > 3 * Virtio.size q then
          failwith (Printf.sprintf "virtio %s: ring wedged under backpressure" (Virtio.name q));
        t.tx_stalls <- t.tx_stalls + 1;
        Hw.Clock.charge (clock t) "virtio_tx_stall" Hw.Cost.virtio_frontend_work;
        host_service_pass t;
        post (attempts + 1)
  in
  post 0;
  ignore
    (Virtio.kick q ~doorbell:(fun () ->
         t.platform.Platform.hypercall kind;
         match t.io_backend with Some b -> b.kicked target | None -> ()))

let spawn t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let mm = Mm.create t.platform in
  let task = Task.create ~pid ~parent:0 mm in
  Hashtbl.replace t.tasks pid task;
  Sched.enqueue t.sched pid;
  task

let task t pid = Hashtbl.find_opt t.tasks pid

(* Live tasks sorted by pid — the kernel's task-table state for
   snapshot capture. *)
let tasks t =
  Hashtbl.fold (fun _ task acc -> task :: acc) t.tasks []
  |> List.sort (fun (a : Task.t) b -> compare a.Task.pid b.Task.pid)

let next_pid t = t.next_pid
let set_next_pid t pid = t.next_pid <- pid

(* Snapshot restore: adopt an already-reconstructed task at its
   captured pid. *)
let restore_task t (task : Task.t) =
  Hashtbl.replace t.tasks task.Task.pid task;
  Sched.enqueue t.sched task.Task.pid;
  if task.Task.pid >= t.next_pid then t.next_pid <- task.Task.pid + 1

(* Touch user memory (demand paging) outside any syscall. *)
let touch t (task : Task.t) va ~write =
  ignore t;
  Mm.touch task.Task.mm va ~write

let touch_range t (task : Task.t) ~start ~pages ~write =
  ignore t;
  Mm.touch_range task.Task.mm ~start ~pages ~write

(* Context-switch between two tasks of this kernel. *)
let context_switch t ~from_pid ~to_pid =
  ignore from_pid;
  match Hashtbl.find_opt t.tasks to_pid with
  | None -> invalid_arg "Kernel.context_switch: unknown pid"
  | Some target -> Sched.switch_to t.sched to_pid target.Task.mm

(* ------------------------------------------------------------------ *)
(* Syscall implementation                                              *)
(* ------------------------------------------------------------------ *)

let file_obj (task : Task.t) fd =
  match Task.fd task fd with
  | Some (Task.File f) -> Some f
  | Some (Task.Pipe_read _ | Task.Pipe_write _ | Task.Socket _) | None -> None

let do_read t task fd n : Syscall.result =
  match Task.fd task fd with
  | Some (Task.File f) ->
      let data = Tmpfs.read t.fs f.Task.inode ~off:f.Task.pos ~n in
      f.Task.pos <- f.Task.pos + Bytes.length data;
      Syscall.Rbytes data
  | Some (Task.Pipe_read p) -> (
      match Pipe.read p ~n with
      | Ok data -> Syscall.Rbytes data
      | Error `Would_block -> Syscall.Rerr "EAGAIN")
  | Some (Task.Socket sid) -> (
      match Hashtbl.find_opt t.sockets sid with
      | None -> Syscall.Rerr "EBADF"
      | Some ep -> (
          match Net.recv ep with
          | Ok data -> Syscall.Rbytes data
          | Error `Would_block -> Syscall.Rerr "EAGAIN"))
  | Some (Task.Pipe_write _) -> Syscall.Rerr "EBADF"
  | None -> Syscall.Rerr "EBADF"

let do_write t task fd data : Syscall.result =
  match Task.fd task fd with
  | Some (Task.File f) ->
      let n = Tmpfs.write t.fs f.Task.inode ~off:f.Task.pos data in
      f.Task.pos <- f.Task.pos + n;
      Syscall.Rint n
  | Some (Task.Pipe_write p) -> (
      match Pipe.write p data with
      | Ok n -> Syscall.Rint n
      | Error `Would_block -> Syscall.Rerr "EAGAIN"
      | Error `Epipe -> Syscall.Rerr "EPIPE")
  | Some (Task.Socket sid) -> (
      match Hashtbl.find_opt t.sockets sid with
      | None -> Syscall.Rerr "EBADF"
      | Some ep ->
          (* TX goes through the virtio-net frontend (post + doorbell +
             backend service) on virtualized platforms; OS-level
             containers hit the host NIC natively.  A full ring blocks
             the guest until a host service pass makes room. *)
          if t.platform.Platform.virtualized_io then begin
            let io = ensure_io t in
            guest_post_kick t io.tx ~data ~kind:Platform.Net_tx ~target:`Net_tx
          end;
          (match Net.send t.wire ep data with
          | Ok n -> Syscall.Rint n
          | Error `Not_connected -> Syscall.Rerr "ENOTCONN"))
  | Some (Task.Pipe_read _) -> Syscall.Rerr "EBADF"
  | None -> Syscall.Rerr "EBADF"

let do_fork t (task : Task.t) =
  let child_mm = Mm.fork task.Task.mm in
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let child = Task.create ~pid ~parent:task.Task.pid child_mm in
  (* Share the fd table contents (re-register same objects). *)
  Hashtbl.iter (fun fd obj -> Hashtbl.replace child.Task.fds fd obj) task.Task.fds;
  child.Task.next_fd <- task.Task.next_fd;
  Hashtbl.replace t.tasks pid child;
  Sched.enqueue t.sched pid;
  pid

let do_exit t (task : Task.t) code =
  task.Task.state <- Task.Zombie;
  task.Task.exit_code <- Some code;
  Mm.destroy task.Task.mm;
  Hashtbl.remove t.tasks task.Task.pid

(* Execute one syscall on behalf of [task].  Charges the platform's
   syscall round trip + the call's own work; returns the result. *)
let syscall t (task : Task.t) (sc : Syscall.t) : Syscall.result =
  t.syscall_count <- t.syscall_count + 1;
  t.platform.Platform.syscall_round_trip ();
  Hw.Clock.charge (clock t) ("sys_" ^ Syscall.name sc) (Syscall.base_work sc);
  match sc with
  | Syscall.Getpid -> Syscall.Rint task.Task.pid
  | Syscall.Read { fd; n } -> do_read t task fd n
  | Syscall.Write { fd; data } -> do_write t task fd data
  | Syscall.Open { path; create } -> (
      let inode =
        if create then Some (Tmpfs.open_or_create t.fs path) else Tmpfs.resolve_opt t.fs path
      in
      match inode with
      | None -> Syscall.Rerr "ENOENT"
      | Some inode -> Syscall.Rint (Task.install_fd task (Task.File { inode; pos = 0 })))
  | Syscall.Close fd ->
      Task.close_fd task fd;
      Syscall.Runit
  | Syscall.Stat path -> (
      match Tmpfs.resolve_opt t.fs path with
      | None -> Syscall.Rerr "ENOENT"
      | Some i -> Syscall.Rstat { size = Tmpfs.size i; ino = Tmpfs.ino i; is_dir = Tmpfs.is_dir i })
  | Syscall.Fstat fd -> (
      match file_obj task fd with
      | None -> Syscall.Rerr "EBADF"
      | Some f ->
          Syscall.Rstat
            {
              size = Tmpfs.size f.Task.inode;
              ino = Tmpfs.ino f.Task.inode;
              is_dir = Tmpfs.is_dir f.Task.inode;
            })
  | Syscall.Lseek { fd; pos } -> (
      match file_obj task fd with
      | None -> Syscall.Rerr "EBADF"
      | Some f ->
          f.Task.pos <- pos;
          Syscall.Rint pos)
  | Syscall.Fsync fd -> (
      (* tmpfs fsync is a no-op beyond its base work; with a host block
         store attached (I/O plane), the dirty bytes ride virtio-blk. *)
      match file_obj task fd with
      | None -> Syscall.Rerr "EBADF"
      | Some f ->
          (match t.io_backend with
          | Some { blk_sink = Some _; _ } when t.platform.Platform.virtualized_io ->
              let size = min (Tmpfs.size f.Task.inode) (8 * 4096) in
              let data = Tmpfs.read t.fs f.Task.inode ~off:0 ~n:(max size 1) in
              let io = ensure_io t in
              guest_post_kick t io.blk ~data ~kind:Platform.Blk_write ~target:`Blk
          | _ -> ());
          Syscall.Runit)
  | Syscall.Unlink path -> (
      match Tmpfs.unlink t.fs path with
      | () -> Syscall.Runit
      | exception Tmpfs.Not_found_path _ -> Syscall.Rerr "ENOENT")
  | Syscall.Mkdir path -> (
      match Tmpfs.mkdir t.fs path with
      | _ -> Syscall.Runit
      | exception Tmpfs.Exists _ -> Syscall.Rerr "EEXIST")
  | Syscall.Mmap { pages; prot } ->
      Syscall.Rint (Mm.mmap task.Task.mm ~pages ~prot ~backing:Vma.Anon)
  | Syscall.Munmap { addr; pages } ->
      Mm.munmap task.Task.mm ~start:addr ~pages;
      Syscall.Runit
  | Syscall.Mprotect { addr; pages; prot } ->
      Mm.mprotect task.Task.mm ~start:addr ~pages ~prot;
      Syscall.Runit
  | Syscall.Brk { delta_pages } -> Syscall.Rint (Mm.brk task.Task.mm ~delta_pages)
  | Syscall.Fork -> Syscall.Rint (do_fork t task)
  | Syscall.Execve ->
      (* Replace the address space: tear down and rebuild text/heap. *)
      let mm = task.Task.mm in
      let pages = Mm.resident_pages mm in
      Hw.Clock.charge (clock t) "execve_teardown" (float_of_int pages *. Hw.Cost.per_pte_copy);
      Syscall.Runit
  | Syscall.Exit code ->
      do_exit t task code;
      Syscall.Runit
  | Syscall.Pipe ->
      let p = Pipe.create (clock t) in
      let rfd = Task.install_fd task (Task.Pipe_read p) in
      let wfd = Task.install_fd task (Task.Pipe_write p) in
      Syscall.Rpair (rfd, wfd)
  | Syscall.Socket ->
      let ep = Net.endpoint t.wire in
      Hashtbl.replace t.sockets ep.Net.id ep;
      Syscall.Rint (Task.install_fd task (Task.Socket ep.Net.id))
  | Syscall.Send { fd; data } -> do_write t task fd data
  | Syscall.Recv { fd; n } -> do_read t task fd n
  | Syscall.Sched_yield -> Syscall.Runit
  | Syscall.Nanosleep ns ->
      Hw.Clock.advance (clock t) ns;
      Syscall.Runit

let syscall_exn t task sc =
  match syscall t task sc with
  | Syscall.Rerr e -> failwith (Printf.sprintf "syscall %s failed: %s" (Syscall.name sc) e)
  | r -> r

(* ------------------------------------------------------------------ *)
(* Device-side entry points (called by the host / client models)       *)
(* ------------------------------------------------------------------ *)

(* Drain the TX queue: host backend services posted descriptors and
   raises one completion interrupt for the batch.  Callers decide the
   batching granularity (per request for unpipelined servers, per
   event-loop iteration for pipelined ones).  Through the plane's
   service pass when one is attached. *)
let flush_net t =
  if t.platform.Platform.virtualized_io then
    match t.io_backend with
    | Some b -> b.service_now ()
    | None -> ignore (host_service_net_tx t ~handle:ignore)

(* A batch of packets arrives from outside for socket [sid]: the guest
   replenishes RX buffer credit (kicking through EVENT_IDX), the host
   DMAs the payloads into the posted buffers and injects one interrupt
   for the batch; the guest's handler reclaims them into the socket
   queue. *)
let deliver_packets t ~sid payloads =
  match Hashtbl.find_opt t.sockets sid with
  | None -> Error `No_socket
  | Some ep ->
      let enqueue payload =
        Queue.add (-1, payload) ep.Net.rx;
        ep.Net.rx_packets <- ep.Net.rx_packets + 1
      in
      if t.platform.Platform.virtualized_io && payloads <> [] then begin
        let io = ensure_io t in
        List.iter
          (fun p ->
            match Virtio.post_buffer io.rx ~capacity:(max 64 (Bytes.length p)) with
            | `Posted | `Full -> ())
          payloads;
        ignore
          (Virtio.kick io.rx ~doorbell:(fun () ->
               t.platform.Platform.hypercall Platform.Net_rx_ack;
               match t.io_backend with Some b -> b.kicked `Net_rx | None -> ()));
        Hw.Clock.charge (clock t) "virtio_service" Hw.Cost.virtio_backend_service;
        let missed = List.filter (fun p -> not (Virtio.fill io.rx ~data:p)) payloads in
        let injected =
          Virtio.complete ~force:true io.rx ~inject:(fun () ->
              t.irq_count <- t.irq_count + 1;
              t.platform.Platform.deliver_irq ())
        in
        let received = if injected then Virtio.reclaim io.rx else [] in
        List.iter enqueue received;
        (* Ring credit exhausted (undersized test queues): deliver the
           overflow directly so no packet is lost, with the legacy
           per-batch interrupt if the ring path injected nothing. *)
        List.iter enqueue missed;
        if not injected then begin
          t.irq_count <- t.irq_count + 1;
          t.platform.Platform.deliver_irq ()
        end
      end
      else begin
        List.iter enqueue payloads;
        t.irq_count <- t.irq_count + 1;
        t.platform.Platform.deliver_irq ()
      end;
      Ok ()

(* A single packet arrives from outside for socket [sid]. *)
let deliver_packet t ~sid payload = deliver_packets t ~sid [ payload ]

let socket_endpoint t sid = Hashtbl.find_opt t.sockets sid
let wire t = t.wire
let irq_count t = t.irq_count
