(** A minimal network: endpoints with RX queues connected pairwise.

    Client models (memtier, netperf, web clients) sit on one endpoint,
    the container's server kernel on the other. Wire time is not
    charged on the sender's clock — the NIC drains asynchronously, so
    only CPU-side costs count for server throughput. *)

type endpoint = {
  id : int;
  rx : (int * Bytes.t) Queue.t;
  mutable peer : int option;
  mutable rx_packets : int;
  mutable tx_packets : int;
  mutable rx_bytes : int;
  mutable tx_bytes : int;
}

type t

val create : Hw.Clock.t -> t
val endpoint : t -> endpoint
val connect : t -> endpoint -> endpoint -> unit
val get : t -> int -> endpoint
val send : t -> endpoint -> Bytes.t -> (int, [ `Not_connected ]) result
val recv : endpoint -> (Bytes.t, [ `Would_block ]) result
val pending : endpoint -> int
