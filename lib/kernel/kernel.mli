(** The model kernel: tasks + scheduler + VFS + pipes + sockets +
    VirtIO frontends, over a {!Platform.t}.

    Instantiated once per container guest kernel (and once natively for
    RunC). Syscall dispatch charges the platform's syscall round trip,
    then performs real work against the in-memory structures. *)

type t

val create : Platform.t -> t
val platform : t -> Platform.t
val clock : t -> Hw.Clock.t
val fs : t -> Tmpfs.t
val syscall_count : t -> int

val spawn : t -> Task.t
(** New runnable task with a fresh address space. *)

val task : t -> int -> Task.t option

val tasks : t -> Task.t list
(** Live tasks sorted by pid (snapshot capture). *)

val next_pid : t -> int
val set_next_pid : t -> int -> unit

val restore_task : t -> Task.t -> unit
(** Snapshot restore: adopt an already-reconstructed task at its
    captured pid, enqueue it, and keep [next_pid] above it. *)

val touch : t -> Task.t -> Hw.Addr.va -> write:bool -> unit
(** Touch user memory (demand paging) outside any syscall. *)

val touch_range : t -> Task.t -> start:Hw.Addr.va -> pages:int -> write:bool -> int

val context_switch : t -> from_pid:int -> to_pid:int -> unit
(** Switch between two tasks; charges switch work + the platform's
    address-space switch (a hypercall under PVM, a KSM CR3 load under
    CKI). *)

val syscall : t -> Task.t -> Syscall.t -> Syscall.result
(** Execute one syscall on behalf of a task. *)

val syscall_exn : t -> Task.t -> Syscall.t -> Syscall.result
(** Like {!syscall} but turns [Rerr] into [Failure]. *)

val flush_net : t -> unit
(** Drain the TX queue: the host backend services posted descriptors
    and raises one completion interrupt for the batch. Callers choose
    the batching granularity (per request, or per event-loop
    iteration for pipelined servers). *)

val deliver_packets : t -> sid:int -> Bytes.t list -> (unit, [ `No_socket ]) result
(** A batch of packets arrives for a socket: one RX service + one
    interrupt for the whole batch. *)

val deliver_packet : t -> sid:int -> Bytes.t -> (unit, [ `No_socket ]) result
(** Single-packet delivery (service + interrupt per packet). *)

val socket_endpoint : t -> int -> Net.endpoint option
val wire : t -> Net.t
val irq_count : t -> int

(** {2 I/O plane} *)

type kick_target = [ `Blk | `Net_rx | `Net_tx ]

type io_backend = {
  kicked : kick_target -> unit;  (** a doorbell of this kernel rang *)
  service_now : unit -> unit;
      (** synchronous host service pass — backpressure and [flush_net]
          drain through the plane instead of the self-service stub *)
  blk_sink : (Bytes.t -> unit) option;
      (** host block store; when present, fsync flushes ride
          virtio-blk into it *)
}

val configure_io : ?queue_size:int -> ?window:int -> t -> unit
(** Set ring geometry (before first use) and the EVENT_IDX coalescing
    window (any time; 0 = naive). *)

val set_io_backend : t -> io_backend option -> unit
(** Attach/detach the host I/O plane hooks. *)

val virtualized_io : t -> bool
(** Whether this kernel's platform routes socket/blk I/O through the
    virtio rings (false for runc: I/O goes straight to the shared host
    kernel, no doorbells, no rings). *)

val io_devices : t -> (Virtio.t * Virtio.t * Virtio.t) option
(** The (net-tx, net-rx, blk) queue triple — [None] until the kernel's
    first virtualized I/O creates them. *)

val io_window : t -> int
(** The configured EVENT_IDX window (0 = naive). *)

val io_unreclaimed : t -> (string * int) list
(** Queues with outstanding descriptor chains (in flight, or completed
    but unreclaimed) — the quiescence check for snapshot capture. *)

val tx_stalls : t -> int
(** Times a guest blocked on a full ring until a host service pass made
    room (graceful backpressure). *)

val host_service_net_tx : ?force_irq:bool -> t -> handle:(Bytes.t -> unit) -> int
(** Host: service the TX queue, passing each payload to [handle];
    inject the completion interrupt ([force_irq], default true, bounds
    batch latency) and run the guest reclaim. Returns chains
    serviced. *)

val host_service_blk : ?force_irq:bool -> t -> handle:(Bytes.t -> unit) -> int
(** Host: service the blk queue into the attached block sink (or
    [handle] when standalone), charging per-sector I/O cost. *)
