(* The platform interface: everything a kernel needs from the privilege
   layer underneath it.

   The same model kernel runs as
     - the native/host kernel        (RunC: platform = bare hardware),
     - an HVM guest kernel           (platform = VMCS/EPT world),
     - a PVM guest kernel            (platform = user-mode + shadow paging),
     - a CKI guest kernel            (platform = KSM calls + hypercalls).
   Each backend supplies this record; the cost *structure* of the paper
   falls out of which operations are expensive on which platform. *)

type io_kind = Net_tx | Net_rx_ack | Blk_read | Blk_write | Timer | Ipi | Console
[@@deriving show { with_path = false }, eq]

type aspace = int
(** Opaque address-space handle, interpreted by the backend. *)

type t = {
  name : string;
  clock : Hw.Clock.t;
  (* -------- physical memory -------- *)
  alloc_frame : unit -> Hw.Addr.pfn;
      (** allocate one data frame for the kernel's allocator to hand out *)
  free_frame : Hw.Addr.pfn -> unit;
  (* -------- address spaces -------- *)
  as_create : unit -> aspace;
  as_destroy : aspace -> unit;
  as_switch : aspace -> unit;  (** process context switch (CR3 load etc.) *)
  (* -------- page-table updates -------- *)
  pte_install : aspace -> va:Hw.Addr.va -> pfn:Hw.Addr.pfn -> writable:bool -> user:bool -> unit;
  pte_remove : aspace -> va:Hw.Addr.va -> unit;
  pte_protect : aspace -> va:Hw.Addr.va -> writable:bool -> unit;
  (* -------- fault & syscall paths -------- *)
  fault_round_trip : unit -> unit;
      (** charge everything a user page fault pays besides the kernel's
          own service work (VM exits, SPT emulation, KSM calls...) *)
  fault_service_ns : float;  (** the kernel's own demand-fault service cost *)
  syscall_round_trip : unit -> unit;
      (** charge the full syscall entry/exit path for this platform *)
  (* -------- host services -------- *)
  hypercall : io_kind -> unit;  (** device doorbells, timers, vCPU pause *)
  deliver_irq : unit -> unit;  (** device interrupt reaching this kernel *)
  virtualized_io : bool;
      (** I/O goes through VirtIO (doorbell exits + backend service);
          false for OS-level containers, which use host devices natively *)
  (* -------- guest-memory word access -------- *)
  guest_read_word : Hw.Addr.pfn -> int -> int64;
      (** read one 64-bit word of a frame returned by [alloc_frame] —
          the shared-memory path VirtIO rings live on.  The pfn is in
          the allocator's own namespace (a gfn under HVM/PVM, an hPA
          frame under RunC/CKI); backends translate as needed. *)
  guest_write_word : Hw.Addr.pfn -> int -> int64 -> unit;
}

(* A bare-hardware platform for the host kernel / RunC: direct paging,
   native syscalls, no hypercalls. *)
let bare ?(name = "native") (machine : Hw.Machine.t) : t =
  let mem = Hw.Machine.mem machine in
  let clock = Hw.Machine.clock machine in
  let spaces : (int, Hw.Page_table.t) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 0 in
  let pt_of id =
    match Hashtbl.find_opt spaces id with
    | Some pt -> pt
    | None -> invalid_arg "Platform.bare: unknown address space"
  in
  {
    name;
    clock;
    alloc_frame = (fun () -> Hw.Phys_mem.alloc mem ~owner:Hw.Phys_mem.Host ~kind:Hw.Phys_mem.Data);
    free_frame = (fun pfn -> Hw.Phys_mem.free mem pfn);
    as_create =
      (fun () ->
        let id = !next in
        incr next;
        Hashtbl.replace spaces id (Hw.Page_table.create mem ~owner:Hw.Phys_mem.Host);
        id);
    as_destroy = (fun id -> Hashtbl.remove spaces id);
    as_switch = (fun _id -> Hw.Clock.charge clock "cr3_switch" Hw.Cost.cr3_switch);
    pte_install =
      (fun id ~va ~pfn ~writable ~user ->
        ignore
          (Hw.Page_table.map (pt_of id) ~va ~pfn
             ~flags:{ Hw.Pte.default_flags with writable; user }
             ()));
    pte_remove = (fun id ~va -> ignore (Hw.Page_table.unmap (pt_of id) va));
    pte_protect = (fun id ~va ~writable -> Hw.Page_table.update (pt_of id) va (fun e -> Hw.Pte.with_writable e writable));
    fault_round_trip = (fun () -> ());
    fault_service_ns = Hw.Cost.pf_handler_native;
    syscall_round_trip =
      (fun () -> Hw.Clock.charge clock "syscall" Hw.Cost.syscall_entry_exit);
    hypercall = (fun _ -> ());
    deliver_irq = (fun () -> Hw.Clock.charge clock "irq" Hw.Cost.irq_delivery);
    virtualized_io = false;
    guest_read_word = (fun pfn index -> Hw.Phys_mem.read_entry mem ~pfn ~index);
    guest_write_word = (fun pfn index v -> Hw.Phys_mem.write_entry mem ~pfn ~index v);
  }

(* Look up the simulated page table behind a bare aspace — only exposed
   for tests; virtualized platforms keep theirs private. *)
let charge t event ns = Hw.Clock.charge t.clock event ns
