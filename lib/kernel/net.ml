(* A minimal network: endpoints with RX queues connected pairwise.

   Client models (memtier, netperf, web clients) sit on one endpoint;
   the container's server kernel sits on the other.  Latency per packet
   is charged by the transport (virtio + wire cost), not here. *)

type endpoint = {
  id : int;
  rx : (int * Bytes.t) Queue.t;  (** (src endpoint, payload) *)
  mutable peer : int option;
  mutable rx_packets : int;
  mutable tx_packets : int;
  mutable rx_bytes : int;
  mutable tx_bytes : int;
}

type t = {
  endpoints : (int, endpoint) Hashtbl.t;
  mutable next_id : int;
  clock : Hw.Clock.t;
}

let create clock = { endpoints = Hashtbl.create 16; next_id = 0; clock }

let endpoint t =
  let id = t.next_id in
  t.next_id <- id + 1;
  let e =
    { id; rx = Queue.create (); peer = None; rx_packets = 0; tx_packets = 0; rx_bytes = 0; tx_bytes = 0 }
  in
  Hashtbl.replace t.endpoints id e;
  e

let connect t a b =
  a.peer <- Some b.id;
  b.peer <- Some a.id;
  ignore t

let get t id = Hashtbl.find t.endpoints id

(* Send [payload] from [src] to its peer.  Wire time is *not* charged
   on the sender's clock: the NIC drains the queue asynchronously, so
   for server-throughput measurements only CPU-side costs (syscalls,
   virtio, interrupts) count. *)
let send t (src : endpoint) payload =
  match src.peer with
  | None -> Error `Not_connected
  | Some pid ->
      let dst = get t pid in
      Queue.add (src.id, payload) dst.rx;
      src.tx_packets <- src.tx_packets + 1;
      dst.rx_packets <- dst.rx_packets + 1;
      src.tx_bytes <- src.tx_bytes + Bytes.length payload;
      dst.rx_bytes <- dst.rx_bytes + Bytes.length payload;
      Hw.Clock.count t.clock "net_wire";
      Ok (Bytes.length payload)

let recv (e : endpoint) =
  match Queue.take_opt e.rx with None -> Error `Would_block | Some (_, p) -> Ok p

let pending (e : endpoint) = Queue.length e.rx
