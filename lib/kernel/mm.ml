(* Per-process memory management: VMAs + demand paging over the
   platform's page-table interface.

   `touch` is the workhorse: workloads call it for every page they
   access; an unmapped page inside a VMA takes the platform's full
   page-fault path (this is where RunC / HVM / PVM / CKI differ). *)

type t = {
  platform : Platform.t;
  aspace : Platform.aspace;
  vmas : Vma.t;
  pages : (Hw.Addr.vpn, Hw.Addr.pfn) Hashtbl.t;  (** resident pages *)
  mutable brk : Hw.Addr.va;
  brk_base : Hw.Addr.va;
  mutable mmap_cursor : Hw.Addr.va;
  mutable faults : int;
  mutable resident : int;
}

let user_mmap_base = 0x7000_0000_0000
let user_brk_base = 0x1000_0000_0000
let user_stack_top = 0x7fff_ffff_0000

let create platform =
  let aspace = platform.Platform.as_create () in
  let t =
    {
      platform;
      aspace;
      vmas = Vma.create ();
      pages = Hashtbl.create 1024;
      brk = user_brk_base;
      brk_base = user_brk_base;
      mmap_cursor = user_mmap_base;
      faults = 0;
      resident = 0;
    }
  in
  (* A default stack area. *)
  ignore
    (Vma.add t.vmas
       ~start:(user_stack_top - (256 * Hw.Addr.page_size))
       ~stop:user_stack_top ~prot:Vma.prot_rw ~backing:Vma.Stack);
  t

let destroy t =
  Hashtbl.iter (fun _ pfn -> t.platform.Platform.free_frame pfn) t.pages;
  Hashtbl.reset t.pages;
  t.platform.Platform.as_destroy t.aspace

let aspace t = t.aspace
let fault_count t = t.faults
let resident_pages t = t.resident

(* mmap: reserve [pages] pages; returns the base va.  No frames are
   allocated until touched. *)
let mmap t ~pages ~prot ~backing =
  if pages <= 0 then invalid_arg "Mm.mmap";
  let base = Vma.find_gap t.vmas ~from:t.mmap_cursor ~pages in
  let stop = base + (pages * Hw.Addr.page_size) in
  ignore (Vma.add t.vmas ~start:base ~stop ~prot ~backing);
  t.mmap_cursor <- stop;
  base

(* Probe hook: guest-mm operations, so the trace linter can tie PTE
   downgrades back to the syscall that caused them. *)
let trace_op op ~vpn ~pages =
  if Hw.Probe.active () then Hw.Probe.emit (Hw.Probe.Mm_op { op; vpn; pages })

let munmap t ~start ~pages =
  trace_op "munmap" ~vpn:(Hw.Addr.vpn_of_va start) ~pages;
  let stop = start + (pages * Hw.Addr.page_size) in
  let _removed = Vma.remove t.vmas ~start ~stop in
  for vpn = Hw.Addr.vpn_of_va start to Hw.Addr.vpn_of_va (stop - 1) do
    match Hashtbl.find_opt t.pages vpn with
    | None -> ()
    | Some pfn ->
        Hashtbl.remove t.pages vpn;
        t.resident <- t.resident - 1;
        t.platform.Platform.pte_remove t.aspace ~va:(Hw.Addr.va_of_vpn vpn);
        t.platform.Platform.free_frame pfn
  done

let mprotect t ~start ~pages ~prot =
  trace_op "mprotect" ~vpn:(Hw.Addr.vpn_of_va start) ~pages;
  let stop = start + (pages * Hw.Addr.page_size) in
  ignore (Vma.protect t.vmas ~start ~stop ~prot);
  (* Update PTEs of resident pages in the range. *)
  for vpn = Hw.Addr.vpn_of_va start to Hw.Addr.vpn_of_va (stop - 1) do
    if Hashtbl.mem t.pages vpn then
      t.platform.Platform.pte_protect t.aspace ~va:(Hw.Addr.va_of_vpn vpn)
        ~writable:prot.Vma.write
  done

let brk t ~delta_pages =
  let new_brk = t.brk + (delta_pages * Hw.Addr.page_size) in
  if new_brk < t.brk_base then invalid_arg "Mm.brk: below base";
  if delta_pages > 0 then
    ignore (Vma.add t.vmas ~start:t.brk ~stop:new_brk ~prot:Vma.prot_rw ~backing:Vma.Heap)
  else if delta_pages < 0 then ignore (Vma.remove t.vmas ~start:new_brk ~stop:t.brk);
  t.brk <- new_brk;
  t.brk

exception Segfault of Hw.Addr.va

(* Handle a demand fault on [va]: full platform fault path + service. *)
let handle_fault t va ~write =
  match Vma.find t.vmas va with
  | None -> raise (Segfault va)
  | Some area ->
      if write && not area.Vma.prot.Vma.write then raise (Segfault va);
      trace_op "demand_fault" ~vpn:(Hw.Addr.vpn_of_va va) ~pages:1;
      t.faults <- t.faults + 1;
      let p = t.platform in
      p.Platform.fault_round_trip ();
      Hw.Clock.charge p.Platform.clock "pf_service" p.Platform.fault_service_ns;
      let pfn = p.Platform.alloc_frame () in
      p.Platform.pte_install t.aspace ~va:(Hw.Addr.page_align_down va) ~pfn
        ~writable:area.Vma.prot.Vma.write ~user:true;
      Hashtbl.replace t.pages (Hw.Addr.vpn_of_va va) pfn;
      t.resident <- t.resident + 1

(* Access the page containing [va], demand-faulting if needed. *)
let touch t va ~write =
  let vpn = Hw.Addr.vpn_of_va va in
  match Hashtbl.find_opt t.pages vpn with
  | Some _ -> ()
  | None -> handle_fault t va ~write

(* Touch every page of [start, start + pages).  Returns faults taken. *)
let touch_range t ~start ~pages ~write =
  let before = t.faults in
  for i = 0 to pages - 1 do
    touch t (start + (i * Hw.Addr.page_size)) ~write
  done;
  t.faults - before

(* Duplicate this mm for fork: copies VMAs and eagerly copies resident
   pages (the model does not implement copy-on-write; lmbench's
   fork costs are dominated by the per-PTE work either way, which the
   platform charges in pte_install). *)
let fork t =
  let child = create t.platform in
  Vma.iter t.vmas (fun a ->
      if not (Vma.overlaps child.vmas ~start:a.Vma.start ~stop:a.Vma.stop) then
        ignore
          (Vma.add child.vmas ~start:a.Vma.start ~stop:a.Vma.stop ~prot:a.Vma.prot
             ~backing:a.Vma.backing));
  Hashtbl.iter
    (fun vpn _pfn ->
      let pfn' = t.platform.Platform.alloc_frame () in
      Hw.Clock.charge t.platform.Platform.clock "fork_page_copy" Hw.Cost.per_pte_copy;
      (match Vma.find t.vmas (Hw.Addr.va_of_vpn vpn) with
      | Some a ->
          t.platform.Platform.pte_install child.aspace ~va:(Hw.Addr.va_of_vpn vpn) ~pfn:pfn'
            ~writable:a.Vma.prot.Vma.write ~user:true
      | None -> ());
      Hashtbl.replace child.pages vpn pfn';
      child.resident <- child.resident + 1)
    t.pages;
  child
