(* Per-process memory management: VMAs + demand paging over the
   platform's page-table interface.

   `touch` is the workhorse: workloads call it for every page they
   access; an unmapped page inside a VMA takes the platform's full
   page-fault path (this is where RunC / HVM / PVM / CKI differ). *)

(* A copy-on-write page from a warm clone: the PTE (and [pages]) still
   reference the template's [shared] frame read-only; [own] is this
   mm's pre-reserved private frame, materialized on first write. *)
type cow_entry = { shared : Hw.Addr.pfn; own : Hw.Addr.pfn }

type t = {
  platform : Platform.t;
  aspace : Platform.aspace;
  vmas : Vma.t;
  pages : (Hw.Addr.vpn, Hw.Addr.pfn) Hashtbl.t;  (** resident pages *)
  cow : (Hw.Addr.vpn, cow_entry) Hashtbl.t;  (** un-broken CoW pages *)
  frozen : (Hw.Addr.vpn, unit) Hashtbl.t;
      (** template pages whose frames live clones share read-only: a
          write is a fault, mirroring the hardware PTE downgrade *)
  wp : (Hw.Addr.vpn, unit) Hashtbl.t;
      (** pages write-protected by the dirty-tracking epoch: the PTE
          was downgraded read-only; the first write takes a fault that
          re-arms it writable and logs the page as dirty *)
  dirty : (Hw.Addr.vpn, unit) Hashtbl.t;  (** dirty log of the current epoch *)
  mutable tracking : bool;
  mutable release_shared : Hw.Addr.pfn -> unit;
      (** drop one reference on a template frame (set by the clone) *)
  mutable brk : Hw.Addr.va;
  brk_base : Hw.Addr.va;
  mutable mmap_cursor : Hw.Addr.va;
  mutable faults : int;
  mutable resident : int;
}

let user_mmap_base = 0x7000_0000_0000
let user_brk_base = 0x1000_0000_0000
let user_stack_top = 0x7fff_ffff_0000

let create platform =
  let aspace = platform.Platform.as_create () in
  let t =
    {
      platform;
      aspace;
      vmas = Vma.create ();
      pages = Hashtbl.create 1024;
      cow = Hashtbl.create 16;
      frozen = Hashtbl.create 16;
      wp = Hashtbl.create 16;
      dirty = Hashtbl.create 16;
      tracking = false;
      release_shared = ignore;
      brk = user_brk_base;
      brk_base = user_brk_base;
      mmap_cursor = user_mmap_base;
      faults = 0;
      resident = 0;
    }
  in
  (* A default stack area. *)
  ignore
    (Vma.add t.vmas
       ~start:(user_stack_top - (256 * Hw.Addr.page_size))
       ~stop:user_stack_top ~prot:Vma.prot_rw ~backing:Vma.Stack);
  t

(* Snapshot restore: bind to an [aspace] whose page tables were already
   imported wholesale — no as_create, no default stack VMA; the caller
   replays captured VMAs and resident pages. *)
let restore platform ~aspace ~brk ~mmap_cursor =
  {
    platform;
    aspace;
    vmas = Vma.create ();
    pages = Hashtbl.create 1024;
    cow = Hashtbl.create 16;
    frozen = Hashtbl.create 16;
    wp = Hashtbl.create 16;
    dirty = Hashtbl.create 16;
    tracking = false;
    release_shared = ignore;
    brk;
    brk_base = user_brk_base;
    mmap_cursor;
    faults = 0;
    resident = 0;
  }

let destroy t =
  Hashtbl.iter
    (fun vpn pfn ->
      match Hashtbl.find_opt t.cow vpn with
      | Some { shared; own } ->
          t.release_shared shared;
          t.platform.Platform.free_frame own
      | None -> t.platform.Platform.free_frame pfn)
    t.pages;
  Hashtbl.reset t.pages;
  Hashtbl.reset t.cow;
  t.platform.Platform.as_destroy t.aspace

let aspace t = t.aspace
let fault_count t = t.faults
let resident_pages t = t.resident
let brk_now t = t.brk
let mmap_cursor_now t = t.mmap_cursor
let cow_count t = Hashtbl.length t.cow
let is_cow t vpn = Hashtbl.mem t.cow vpn
let iter_pages t f = Hashtbl.iter f t.pages
let iter_vmas t f = Vma.iter t.vmas f

let add_vma t ~start ~stop ~prot ~backing = ignore (Vma.add t.vmas ~start ~stop ~prot ~backing)

(* Register a page as resident without touching the page tables — used
   by snapshot restore, where the leaf PTEs were imported wholesale. *)
let adopt_page t ~vpn ~pfn =
  Hashtbl.replace t.pages vpn pfn;
  t.resident <- t.resident + 1

let mark_cow t ~vpn ~shared ~own = Hashtbl.replace t.cow vpn { shared; own }
let set_release_shared t f = t.release_shared <- f

(* Template freeze: the hardware PTE was downgraded read-only through
   the KSM; record it here so the model faults on a write too, instead
   of silently "succeeding" into a frame that live clones share. *)
let freeze_page t ~vpn = Hashtbl.replace t.frozen vpn ()
let is_frozen t vpn = Hashtbl.mem t.frozen vpn
let frozen_count t = Hashtbl.length t.frozen

(* --- Dirty-page tracking (live-migration pre-copy) -------------------
   Write-protect-and-log, reusing the CoW write-fault shape: every
   resident page in a writable VMA gets its PTE downgraded read-only
   (through the platform, i.e. the KSM on CKI); the first write takes a
   fault that re-arms the PTE writable and logs the vpn.  [shootdown]
   is called once per downgraded page so the caller can invlpg every
   vCPU — the same TLB discipline Template.freeze follows.  CoW and
   frozen pages are already read-only and log through their own fault
   paths; pages that only become resident during the epoch are logged
   by [handle_fault] since they did not exist in the last image. *)

let tracking t = t.tracking
let dirty_count t = Hashtbl.length t.dirty

let wp_page t ~shootdown vpn =
  let va = Hw.Addr.va_of_vpn vpn in
  match Vma.find t.vmas va with
  | Some area
    when area.Vma.prot.Vma.write
         && Hashtbl.mem t.pages vpn
         && (not (Hashtbl.mem t.cow vpn))
         && not (Hashtbl.mem t.frozen vpn) ->
      t.platform.Platform.pte_protect t.aspace ~va ~writable:false;
      shootdown va;
      Hashtbl.replace t.wp vpn ();
      true
  | _ -> false

let dirty_track_start t ~shootdown =
  if t.tracking then invalid_arg "Mm.dirty_track_start: already tracking";
  t.tracking <- true;
  Hashtbl.reset t.dirty;
  let n = ref 0 in
  let vpns = Hashtbl.fold (fun vpn _ acc -> vpn :: acc) t.pages [] in
  List.iter (fun vpn -> if wp_page t ~shootdown vpn then incr n) vpns;
  !n

let harvest_dirty t =
  Hashtbl.fold (fun vpn () acc -> vpn :: acc) t.dirty []
  |> List.sort compare

(* End one pre-copy round: harvest the dirty log and re-arm write
   protection on exactly those pages, so the next round only sees new
   writes. *)
let dirty_track_round t ~shootdown =
  if not t.tracking then invalid_arg "Mm.dirty_track_round: not tracking";
  let dirty = harvest_dirty t in
  Hashtbl.reset t.dirty;
  List.iter (fun vpn -> ignore (wp_page t ~shootdown vpn)) dirty;
  dirty

(* Stop-and-copy: harvest the final dirty set and drop every remaining
   write protection, restoring each PTE to its VMA permission.  Runs
   before the final capture so the captured PTEs carry the container's
   real protections, not the epoch's. *)
let dirty_track_finish t =
  if not t.tracking then invalid_arg "Mm.dirty_track_finish: not tracking";
  t.tracking <- false;
  Hashtbl.iter
    (fun vpn () ->
      if Hashtbl.mem t.pages vpn then
        let va = Hw.Addr.va_of_vpn vpn in
        match Vma.find t.vmas va with
        | Some area ->
            t.platform.Platform.pte_protect t.aspace ~va ~writable:area.Vma.prot.Vma.write
        | None -> ())
    t.wp;
  Hashtbl.reset t.wp;
  let dirty = harvest_dirty t in
  Hashtbl.reset t.dirty;
  dirty

(* mmap: reserve [pages] pages; returns the base va.  No frames are
   allocated until touched. *)
let mmap t ~pages ~prot ~backing =
  if pages <= 0 then invalid_arg "Mm.mmap";
  let base = Vma.find_gap t.vmas ~from:t.mmap_cursor ~pages in
  let stop = base + (pages * Hw.Addr.page_size) in
  ignore (Vma.add t.vmas ~start:base ~stop ~prot ~backing);
  t.mmap_cursor <- stop;
  base

(* Probe hook: guest-mm operations, so the trace linter can tie PTE
   downgrades back to the syscall that caused them. *)
let trace_op op ~vpn ~pages =
  if Hw.Probe.active () then Hw.Probe.emit (Hw.Probe.Mm_op { op; vpn; pages })

exception Segfault of Hw.Addr.va

(* First write to a clone's CoW page: a write fault that copies the
   template's frame into the pre-reserved private one and swings the
   PTE — the only divergence cost a warm clone ever pays. *)
let cow_break t vpn =
  match Hashtbl.find_opt t.cow vpn with
  | None -> ()
  | Some { shared; own } -> (
      let va = Hw.Addr.va_of_vpn vpn in
      match Vma.find t.vmas va with
      | None -> raise (Segfault va)
      | Some area ->
          trace_op "cow_break" ~vpn ~pages:1;
          t.faults <- t.faults + 1;
          let p = t.platform in
          p.Platform.fault_round_trip ();
          Hw.Clock.charge p.Platform.clock "pf_service" p.Platform.fault_service_ns;
          Hw.Clock.charge p.Platform.clock "cow_break_copy" Hw.Cost.cow_break_copy;
          p.Platform.pte_install t.aspace ~va ~pfn:own ~writable:area.Vma.prot.Vma.write
            ~user:true;
          Hashtbl.replace t.pages vpn own;
          Hashtbl.remove t.cow vpn;
          if t.tracking then Hashtbl.replace t.dirty vpn ();
          t.release_shared shared)

(* Write fault on a page the tracking epoch protected: re-arm the PTE
   writable and log the page — one fault per page per round. *)
let wp_break t vpn =
  let va = Hw.Addr.va_of_vpn vpn in
  trace_op "dirty_log" ~vpn ~pages:1;
  t.faults <- t.faults + 1;
  let p = t.platform in
  p.Platform.fault_round_trip ();
  Hw.Clock.charge p.Platform.clock "pf_service" p.Platform.fault_service_ns;
  p.Platform.pte_protect t.aspace ~va ~writable:true;
  Hashtbl.remove t.wp vpn;
  Hashtbl.replace t.dirty vpn ()

let munmap t ~start ~pages =
  trace_op "munmap" ~vpn:(Hw.Addr.vpn_of_va start) ~pages;
  let stop = start + (pages * Hw.Addr.page_size) in
  let _removed = Vma.remove t.vmas ~start ~stop in
  for vpn = Hw.Addr.vpn_of_va start to Hw.Addr.vpn_of_va (stop - 1) do
    match Hashtbl.find_opt t.pages vpn with
    | None -> ()
    | Some pfn -> (
        Hashtbl.remove t.pages vpn;
        Hashtbl.remove t.wp vpn;
        Hashtbl.remove t.dirty vpn;
        t.resident <- t.resident - 1;
        t.platform.Platform.pte_remove t.aspace ~va:(Hw.Addr.va_of_vpn vpn);
        match Hashtbl.find_opt t.cow vpn with
        | Some { shared; own } ->
            (* Un-broken CoW page: the PTE referenced the template's
               frame; give that reference back and free our reserve. *)
            Hashtbl.remove t.cow vpn;
            t.release_shared shared;
            t.platform.Platform.free_frame own
        | None -> t.platform.Platform.free_frame pfn)
  done

let mprotect t ~start ~pages ~prot =
  trace_op "mprotect" ~vpn:(Hw.Addr.vpn_of_va start) ~pages;
  let stop = start + (pages * Hw.Addr.page_size) in
  (* A frozen template page can never become writable again: its frame
     is shared read-only with live clones. *)
  if prot.Vma.write then
    for vpn = Hw.Addr.vpn_of_va start to Hw.Addr.vpn_of_va (stop - 1) do
      if Hashtbl.mem t.frozen vpn then raise (Segfault (Hw.Addr.va_of_vpn vpn))
    done;
  ignore (Vma.protect t.vmas ~start ~stop ~prot);
  (* Update PTEs of resident pages in the range.  Making a CoW page
     writable must break the share first — the template's frame can
     never be reachable through a writable PTE. *)
  for vpn = Hw.Addr.vpn_of_va start to Hw.Addr.vpn_of_va (stop - 1) do
    if Hashtbl.mem t.pages vpn then begin
      if prot.Vma.write && Hashtbl.mem t.cow vpn then cow_break t vpn;
      (* mprotect overrides the epoch's write protection: treat a page
         re-opened for writing as dirty rather than lose the log. *)
      if Hashtbl.mem t.wp vpn then begin
        Hashtbl.remove t.wp vpn;
        if t.tracking && prot.Vma.write then Hashtbl.replace t.dirty vpn ()
      end;
      t.platform.Platform.pte_protect t.aspace ~va:(Hw.Addr.va_of_vpn vpn)
        ~writable:prot.Vma.write
    end
  done

let brk t ~delta_pages =
  let new_brk = t.brk + (delta_pages * Hw.Addr.page_size) in
  if new_brk < t.brk_base then invalid_arg "Mm.brk: below base";
  if delta_pages > 0 then
    ignore (Vma.add t.vmas ~start:t.brk ~stop:new_brk ~prot:Vma.prot_rw ~backing:Vma.Heap)
  else if delta_pages < 0 then ignore (Vma.remove t.vmas ~start:new_brk ~stop:t.brk);
  t.brk <- new_brk;
  t.brk

(* Handle a demand fault on [va]: full platform fault path + service. *)
let handle_fault t va ~write =
  match Vma.find t.vmas va with
  | None -> raise (Segfault va)
  | Some area ->
      if write && not area.Vma.prot.Vma.write then raise (Segfault va);
      trace_op "demand_fault" ~vpn:(Hw.Addr.vpn_of_va va) ~pages:1;
      t.faults <- t.faults + 1;
      let p = t.platform in
      p.Platform.fault_round_trip ();
      Hw.Clock.charge p.Platform.clock "pf_service" p.Platform.fault_service_ns;
      let pfn = p.Platform.alloc_frame () in
      p.Platform.pte_install t.aspace ~va:(Hw.Addr.page_align_down va) ~pfn
        ~writable:area.Vma.prot.Vma.write ~user:true;
      Hashtbl.replace t.pages (Hw.Addr.vpn_of_va va) pfn;
      if t.tracking then Hashtbl.replace t.dirty (Hw.Addr.vpn_of_va va) ();
      t.resident <- t.resident + 1

(* Access the page containing [va], demand-faulting if needed.  A
   write to a frozen template page faults: the hardware PTE was
   downgraded read-only when the template froze, and the frame is
   shared with live clones. *)
let touch t va ~write =
  let vpn = Hw.Addr.vpn_of_va va in
  match Hashtbl.find_opt t.pages vpn with
  | Some _ ->
      if write then
        if Hashtbl.mem t.frozen vpn then raise (Segfault va)
        else if Hashtbl.mem t.cow vpn then cow_break t vpn
        else if Hashtbl.mem t.wp vpn then wp_break t vpn
  | None -> handle_fault t va ~write

(* Touch every page of [start, start + pages).  Returns faults taken. *)
let touch_range t ~start ~pages ~write =
  let before = t.faults in
  for i = 0 to pages - 1 do
    touch t (start + (i * Hw.Addr.page_size)) ~write
  done;
  t.faults - before

(* Duplicate this mm for fork: copies VMAs and eagerly copies resident
   pages (the model does not implement copy-on-write; lmbench's
   fork costs are dominated by the per-PTE work either way, which the
   platform charges in pte_install). *)
let fork t =
  let child = create t.platform in
  Vma.iter t.vmas (fun a ->
      if not (Vma.overlaps child.vmas ~start:a.Vma.start ~stop:a.Vma.stop) then
        ignore
          (Vma.add child.vmas ~start:a.Vma.start ~stop:a.Vma.stop ~prot:a.Vma.prot
             ~backing:a.Vma.backing));
  Hashtbl.iter
    (fun vpn _pfn ->
      let pfn' = t.platform.Platform.alloc_frame () in
      Hw.Clock.charge t.platform.Platform.clock "fork_page_copy" Hw.Cost.per_pte_copy;
      (match Vma.find t.vmas (Hw.Addr.va_of_vpn vpn) with
      | Some a ->
          t.platform.Platform.pte_install child.aspace ~va:(Hw.Addr.va_of_vpn vpn) ~pfn:pfn'
            ~writable:a.Vma.prot.Vma.write ~user:true
      | None -> ());
      Hashtbl.replace child.pages vpn pfn';
      child.resident <- child.resident + 1)
    t.pages;
  child
