(** Binary-buddy allocator over one or more physical-frame zones.

    This is the CKI guest kernel's memory manager: the host delegates
    hPA segments and the buddy hands frames straight to the page-fault
    handler — no gPA indirection (Section 4.3).  Under scatter
    delegation each discontiguous chunk becomes its own zone; blocks
    never span zones and allocation tries zones in delegation order,
    keeping the allocation stream deterministic. *)

val max_order : int

type t

exception Out_of_memory

val create : base:Hw.Addr.pfn -> frames:int -> t
(** Single-zone allocator (a contiguous delegation). *)

val create_zones : segments:(Hw.Addr.pfn * int) list -> t
(** One zone per delegated [(base, frames)] chunk, in list order. *)

val total_frames : t -> int
val free_frames : t -> int

val alloc_order : t -> int -> Hw.Addr.pfn
(** Allocate 2^order contiguous frames. @raise Out_of_memory. *)

val alloc : t -> Hw.Addr.pfn
(** One frame. *)

val alloc_huge : t -> Hw.Addr.pfn
(** A 2 MiB-aligned 512-frame block. *)

val free : t -> Hw.Addr.pfn -> unit
(** Free a previously allocated block (by its head frame), coalescing
    with free buddies. @raise Invalid_argument on double free. *)

val base : t -> Hw.Addr.pfn
(** First zone's base frame. *)

val zones : t -> (Hw.Addr.pfn * int) list
(** The zones as [(base, frames)], in delegation order. *)

val allocated_blocks : t -> (Hw.Addr.pfn * int) list
(** Allocated block heads with their orders, sorted — the allocator's
    logical state for snapshot capture. *)

val reserve : t -> Hw.Addr.pfn -> int -> unit
(** Snapshot restore: carve the specific block [pfn, pfn + 2{^order})
    out of the free space, reproducing a captured allocation pattern.
    @raise Invalid_argument if the block is not entirely free or is
    misaligned for its order. *)

val check_invariants : t -> bool
(** Free-list accounting matches the free counter and every free block
    lies inside the range — used by the property tests. *)
