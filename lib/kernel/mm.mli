(** Per-process memory management: VMAs + demand paging over the
    platform's page-table interface.

    {!touch} is the workhorse: workloads call it for every page they
    access; an unmapped page inside a VMA takes the platform's full
    page-fault path — which is where RunC / HVM / PVM / CKI differ. *)

type t

val user_mmap_base : Hw.Addr.va
val user_brk_base : Hw.Addr.va
val user_stack_top : Hw.Addr.va

val create : Platform.t -> t
(** Fresh address space with a default stack VMA. *)

val restore : Platform.t -> aspace:Platform.aspace -> brk:Hw.Addr.va -> mmap_cursor:Hw.Addr.va -> t
(** Snapshot restore: bind to an address space whose page tables were
    already imported wholesale — no [as_create], no default stack VMA;
    the caller replays captured VMAs with {!add_vma} and resident pages
    with {!adopt_page}. *)

val destroy : t -> unit
(** Free all resident frames and the address space (releasing the
    template's reference for un-broken CoW pages). *)

val aspace : t -> Platform.aspace
val fault_count : t -> int
val resident_pages : t -> int
val brk_now : t -> Hw.Addr.va
val mmap_cursor_now : t -> Hw.Addr.va

val iter_pages : t -> (Hw.Addr.vpn -> Hw.Addr.pfn -> unit) -> unit
(** Iterate resident pages (unspecified order — capture sorts). *)

val iter_vmas : t -> (Vma.area -> unit) -> unit

val add_vma : t -> start:Hw.Addr.va -> stop:Hw.Addr.va -> prot:Vma.prot -> backing:Vma.backing -> unit
(** Replay a captured VMA (restore path; no platform interaction). *)

val adopt_page : t -> vpn:Hw.Addr.vpn -> pfn:Hw.Addr.pfn -> unit
(** Register a page as resident without touching the page tables — the
    restore path, where leaf PTEs were imported wholesale. *)

(** {2 Copy-on-write (warm clones)} *)

val mark_cow : t -> vpn:Hw.Addr.vpn -> shared:Hw.Addr.pfn -> own:Hw.Addr.pfn -> unit
(** Mark a resident page as CoW: its PTE references the template's
    [shared] frame read-only; [own] is this mm's pre-reserved private
    frame, materialized by the first write ({!touch} with [write:true],
    or an {!mprotect} to writable). *)

val set_release_shared : t -> (Hw.Addr.pfn -> unit) -> unit
(** How to drop one reference on a template frame (set by the clone). *)

val freeze_page : t -> vpn:Hw.Addr.vpn -> unit
(** Template freeze: mirror the KSM's read-only downgrade of this
    resident page in the model, so a later write ({!touch} with
    [write:true], or an {!mprotect} to writable) raises {!Segfault}
    instead of silently mutating a frame that live clones share. *)

val is_frozen : t -> Hw.Addr.vpn -> bool
val frozen_count : t -> int

(** {2 Dirty-page tracking (live-migration pre-copy)}

    Write-protect-and-log epochs over the CoW write-fault path: every
    resident page of a writable VMA has its PTE downgraded read-only
    (through the platform — the KSM on CKI); the first write takes a
    fault that re-arms the PTE and logs the page.  [shootdown] is
    invoked once per downgraded page so the caller can invalidate the
    TLB of every vCPU, matching the freeze discipline the trace linter
    enforces.  Pages that become resident or break CoW during the
    epoch are logged too — they are not in the last transmitted image. *)

val dirty_track_start : t -> shootdown:(Hw.Addr.va -> unit) -> int
(** Begin an epoch; returns the number of pages write-protected.
    @raise Invalid_argument if already tracking. *)

val dirty_track_round : t -> shootdown:(Hw.Addr.va -> unit) -> Hw.Addr.vpn list
(** Harvest the dirty log (sorted), re-protect exactly those pages and
    clear the log — one pre-copy round boundary. *)

val dirty_track_finish : t -> Hw.Addr.vpn list
(** End the epoch: harvest the final dirty set and restore every still
    protected PTE to its VMA permission, so a subsequent capture sees
    the container's real protections. *)

val tracking : t -> bool
val dirty_count : t -> int

val cow_count : t -> int
(** Un-broken CoW pages — the part of [resident_pages] still shared. *)

val is_cow : t -> Hw.Addr.vpn -> bool

val mmap : t -> pages:int -> prot:Vma.prot -> backing:Vma.backing -> Hw.Addr.va
(** Reserve pages (no frames allocated until touched). *)

val munmap : t -> start:Hw.Addr.va -> pages:int -> unit
val mprotect : t -> start:Hw.Addr.va -> pages:int -> prot:Vma.prot -> unit
val brk : t -> delta_pages:int -> Hw.Addr.va

exception Segfault of Hw.Addr.va

val handle_fault : t -> Hw.Addr.va -> write:bool -> unit
(** Demand fault: full platform fault path + frame allocation + PTE
    install. @raise Segfault outside any (writable, for writes) VMA. *)

val touch : t -> Hw.Addr.va -> write:bool -> unit
(** Access the page containing an address, demand-faulting if needed. *)

val touch_range : t -> start:Hw.Addr.va -> pages:int -> write:bool -> int
(** Touch every page of a range; returns the number of faults taken. *)

val fork : t -> t
(** Duplicate for fork: copies VMAs and eagerly copies resident pages
    (no COW; per-page copy costs are charged). *)
