(** VirtIO split queue, laid out as real bytes in guest memory.

    Descriptor table, avail/used rings and payload buffers are words of
    frames obtained from the platform allocator — under CKI they live
    inside the delegated hPA segment where the Analysis sanitizer can
    audit them like any other guest page.  Payloads larger than a page
    ride descriptor chains.

    Notification suppression is EVENT_IDX-style: [window = 0] models
    the naive path (every post kicks, every publish batch injects);
    [window >= 1] suppresses kicks until the avail idx crosses the
    host-written avail_event and interrupts until the used idx crosses
    the guest-written used_event.  A full ring is graceful backpressure
    ([`Full]), never an exception. *)

type access = {
  read_word : Hw.Addr.pfn -> int -> int64;
  write_word : Hw.Addr.pfn -> int -> int64 -> unit;
  alloc_frame : unit -> Hw.Addr.pfn;
}
(** Guest-memory word access in the allocator's own pfn namespace
    (backends translate gfns underneath). *)

type t

val create : ?size:int -> ?window:int -> name:string -> access -> Hw.Clock.t -> t
(** [size] descriptors (2..256, default 64); [window] the EVENT_IDX
    batch window (default 1; 0 = naive, no suppression). *)

val size : t -> int
val window : t -> int
val set_window : t -> int -> unit

val in_flight : t -> int
(** Avail entries the host has not serviced yet. *)

val unreclaimed : t -> int
(** Chains the guest has not freed yet (in flight + completed but not
    yet reclaimed) — the quiescence measure for snapshot capture. *)

val free_descs : t -> int

val post : t -> data:Bytes.t -> [ `Posted | `Full ]
(** Guest: copy [data] into DMA buffers and publish a device-readable
    chain (TX).  [`Full] after an opportunistic reclaim failed to make
    room — the caller applies backpressure and retries. *)

val post_buffer : t -> capacity:int -> [ `Posted | `Full ]
(** Guest: publish an empty device-writable chain (RX buffer credit). *)

val kick : t -> doorbell:(unit -> unit) -> bool
(** Guest: notify-or-not.  Rings [doorbell] (the platform's exit
    mechanism) unless EVENT_IDX suppresses it; returns whether it
    rang.  Emits an [Io_doorbell] probe when it does. *)

val reclaim : t -> Bytes.t list
(** Guest: consume published used entries, freeing their descriptors;
    returns the payloads of device-written (RX) chains, oldest first.
    Re-arms used_event for interrupt suppression. *)

val service : t -> handle:(Bytes.t -> unit) -> int
(** Host: service pending device-readable chains — read each payload
    out of guest memory, pass it to [handle], publish the used entry.
    Returns the chain count; re-arms avail_event for kick
    suppression. *)

val fill : t -> data:Bytes.t -> bool
(** Host: write [data] into the oldest posted device-writable buffer
    and publish its used entry; false when no buffer credit is
    posted. *)

val complete : ?force:bool -> t -> inject:(unit -> unit) -> bool
(** Host: inject the completion interrupt covering the used entries
    published since the last injection, unless EVENT_IDX suppresses it
    ([force] overrides — the batch-boundary latency bound).  Never
    injects with nothing serviced.  Emits an [Io_completion] probe when
    it injects; returns whether it did. *)

val kicks : t -> int
val suppressed_kicks : t -> int
val interrupts : t -> int
val suppressed_interrupts : t -> int
val serviced_total : t -> int
val name : t -> string

val ring_pages : t -> Hw.Addr.pfn list
(** Every guest frame the queue owns (descriptor table, both rings,
    payload buffers) in the allocator's pfn namespace. *)
