(* VirtIO split queue, laid out as real bytes in guest memory.

   The queue owns four kinds of guest pages, all allocated through the
   platform's frame allocator (so under CKI they live inside the
   delegated hPA segment and the Analysis sanitizer can audit them like
   any other guest page):

     - one descriptor-table page: 2 words per descriptor,
         word 0 = payload-buffer pfn,
         word 1 = len | flags<<32 | next<<40   (bit 0 = NEXT chain,
                                                bit 1 = device-WRITE);
     - one avail page:  word 0 flags, word 1 = avail idx (monotonic),
         words 2..2+size-1 the ring of head descriptor ids,
         word 2+size = used_event (guest-written interrupt suppression);
     - one used page:   word 0 flags, word 1 = used idx,
         words 2..2+size-1 the ring of id | total_len<<32 entries,
         word 2+size = avail_event (host-written kick suppression);
     - [size] payload-buffer pages, one per descriptor; payloads larger
       than a page ride descriptor chains (NEXT flag).

   Notification suppression is EVENT_IDX-style: [window = 0] models the
   naive path (every post kicks, every publish batch injects);
   [window >= 1] negotiates EVENT_IDX with that batch window — the
   guest kicks only when the avail idx crosses the host-written
   avail_event, the host injects only when the used idx crosses the
   guest-written used_event, and [complete ~force:true] bounds latency
   at batch boundaries.

   The guest side never raises on a full ring: [post]/[post_buffer]
   return [`Full] after an opportunistic reclaim, and the kernel's
   backpressure path runs a host service pass and retries. *)

type access = {
  read_word : Hw.Addr.pfn -> int -> int64;
  write_word : Hw.Addr.pfn -> int -> int64 -> unit;
  alloc_frame : unit -> Hw.Addr.pfn;
}

let words_per_page = Hw.Addr.entries_per_table
let bytes_per_page = words_per_page * 8
let max_size = 256

(* Head-descriptor bookkeeping the guest driver keeps privately (the
   device-visible state is all in the ring pages). *)
type head = { ndesc : int; len : int; device_writes : bool }

type t = {
  name : string;
  size : int;
  mutable window : int;  (** 0 = naive; >= 1 = EVENT_IDX batch window *)
  access : access;
  clock : Hw.Clock.t;
  desc_page : Hw.Addr.pfn;
  avail_page : Hw.Addr.pfn;
  used_page : Hw.Addr.pfn;
  bufs : Hw.Addr.pfn array;  (** payload page of descriptor i *)
  mutable free : int list;  (** free descriptor ids *)
  heads : (int, head) Hashtbl.t;  (** in-flight chains by head id *)
  (* guest-side shadows *)
  mutable avail_idx : int;
  mutable kick_old : int;  (** avail idx at the previous kick decision *)
  mutable last_used_seen : int;  (** used entries the guest consumed *)
  (* host-side shadows *)
  mutable last_avail_seen : int;
  mutable used_idx : int;
  mutable unsignaled : int;  (** used entries published since last irq *)
  mutable complete_old : int;  (** used idx at the previous complete *)
  (* counters *)
  mutable kicks : int;
  mutable suppressed_kicks : int;
  mutable interrupts : int;
  mutable suppressed_interrupts : int;
  mutable serviced_total : int;
}

(* Ring-page word offsets. *)
let idx_word = 1
let ring_word t i = 2 + (i mod t.size)
let event_word t = 2 + t.size

let rd t pfn i = t.access.read_word pfn i
let wr t pfn i v = t.access.write_word pfn i v

let create ?(size = 64) ?(window = 1) ~name (access : access) clock =
  if size < 2 || size > max_size then invalid_arg "Virtio.create: size must be in 2..256";
  if window < 0 then invalid_arg "Virtio.create: negative window";
  let t =
    {
      name;
      size;
      window;
      access;
      clock;
      desc_page = access.alloc_frame ();
      avail_page = access.alloc_frame ();
      used_page = access.alloc_frame ();
      bufs = Array.init size (fun _ -> access.alloc_frame ());
      free = List.init size (fun i -> i);
      heads = Hashtbl.create 16;
      avail_idx = 0;
      kick_old = 0;
      last_used_seen = 0;
      last_avail_seen = 0;
      used_idx = 0;
      unsignaled = 0;
      complete_old = 0;
      kicks = 0;
      suppressed_kicks = 0;
      interrupts = 0;
      suppressed_interrupts = 0;
      serviced_total = 0;
    }
  in
  (* Publish the static half of the descriptor table (buffer pfns) and
     zero the ring indices / event fields. *)
  for i = 0 to size - 1 do
    wr t t.desc_page (2 * i) (Int64.of_int t.bufs.(i));
    wr t t.desc_page ((2 * i) + 1) 0L
  done;
  wr t t.avail_page idx_word 0L;
  wr t t.avail_page (event_word t) 0L;
  wr t t.used_page idx_word 0L;
  wr t t.used_page (event_word t) 0L;
  Hw.Clock.charge clock "virtio_ring_init" (3.0 *. Hw.Cost.page_zero);
  t

let size t = t.size
let window t = t.window
let set_window t w = if w < 0 then invalid_arg "Virtio.set_window" else t.window <- w
let in_flight t = t.avail_idx - t.last_avail_seen
let unreclaimed t = Hashtbl.length t.heads
let free_descs t = List.length t.free

(* ---------------- payload bytes <-> page words ---------------- *)

let copy_into_page t pfn data ~off =
  let len = min bytes_per_page (Bytes.length data - off) in
  let words = (len + 7) / 8 in
  for w = 0 to words - 1 do
    let v = ref 0L in
    for b = 0 to 7 do
      let i = off + (w * 8) + b in
      if i < Bytes.length data then
        v := Int64.logor !v (Int64.shift_left (Int64.of_int (Char.code (Bytes.get data i))) (8 * b))
    done;
    wr t pfn w !v
  done;
  len

let copy_from_page t pfn data ~off =
  let len = min bytes_per_page (Bytes.length data - off) in
  let words = (len + 7) / 8 in
  for w = 0 to words - 1 do
    let v = rd t pfn w in
    for b = 0 to 7 do
      let i = off + (w * 8) + b in
      if i < Bytes.length data then
        Bytes.set data i
          (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * b)) 0xFFL)))
    done
  done;
  len

(* ---------------- descriptor chains ---------------- *)

let flag_next = 1
let flag_write = 2

let write_desc t id ~len ~flags ~next =
  wr t t.desc_page ((2 * id) + 1)
    (Int64.logor (Int64.of_int (len land 0xFFFFFFFF))
       (Int64.logor
          (Int64.shift_left (Int64.of_int flags) 32)
          (Int64.shift_left (Int64.of_int next) 40)))

let read_desc t id =
  let w = rd t t.desc_page ((2 * id) + 1) in
  let len = Int64.to_int (Int64.logand w 0xFFFFFFFFL) in
  let flags = Int64.to_int (Int64.logand (Int64.shift_right_logical w 32) 0xFFL) in
  let next = Int64.to_int (Int64.logand (Int64.shift_right_logical w 40) 0xFFFFL) in
  (len, flags, next)

(* Walk a chain from [head], calling [f desc_id seg_len offset]; the
   payload page of descriptor [id] is word [2*id] of the table (kept in
   [t.bufs] as a shadow so the walk need not re-read it). *)
let iter_chain t head f =
  let rec go id off =
    let len, flags, next = read_desc t id in
    f id len off;
    if flags land flag_next <> 0 then go next (off + len)
  in
  go head 0

(* Link [ids] as one chain carrying [len] bytes (device-writable when
   [write]); every segment but the last spans a whole page.  Returns
   the head id. *)
let build_chain t ~ids ~len ~write =
  let flags_w = if write then flag_write else 0 in
  let npages = List.length ids in
  let rec link = function
    | [] -> assert false
    | [ last ] ->
        write_desc t last ~len:(max 0 (len - ((npages - 1) * bytes_per_page))) ~flags:flags_w
          ~next:0
    | id :: (next :: _ as rest) ->
        write_desc t id ~len:bytes_per_page ~flags:(flags_w lor flag_next) ~next;
        link rest
  in
  link ids;
  List.hd ids

(* ---------------- guest side ---------------- *)

(* Consume published used entries: free their descriptors and (for
   device-written chains) read the payload back out of guest memory.
   Returns the device-written payloads, oldest first. *)
let reclaim t =
  let out = ref [] in
  while t.last_used_seen < t.used_idx do
    let e = rd t t.used_page (ring_word t t.last_used_seen) in
    let head = Int64.to_int (Int64.logand e 0xFFFFL) in
    let len = Int64.to_int (Int64.logand (Int64.shift_right_logical e 32) 0xFFFFFFFFL) in
    (match Hashtbl.find_opt t.heads head with
    | None -> ()  (* forged/duplicate used entry: nothing to free *)
    | Some h ->
        if h.device_writes && len > 0 then begin
          let data = Bytes.create len in
          let off = ref 0 in
          iter_chain t head (fun id _ _ ->
              if !off < len then off := !off + copy_from_page t t.bufs.(id) data ~off:!off);
          Hw.Clock.charge t.clock "virtio_copy" (float_of_int len *. Hw.Cost.copy_byte);
          out := data :: !out
        end;
        iter_chain t head (fun id _ _ -> t.free <- id :: t.free);
        Hashtbl.remove t.heads head);
    t.last_used_seen <- t.last_used_seen + 1
  done;
  (* Re-arm interrupt suppression for the entries we just consumed. *)
  if t.window >= 1 then
    wr t t.avail_page (event_word t) (Int64.of_int (t.last_used_seen + t.window - 1));
  List.rev !out

let take_free t n =
  let rec go acc k free = if k = 0 then Some (List.rev acc, free) else
    match free with [] -> None | id :: rest -> go (id :: acc) (k - 1) rest
  in
  go [] n t.free

let post_chain t ~data ~capacity ~write =
  let len = if write then capacity else Bytes.length data in
  let npages = max 1 ((len + bytes_per_page - 1) / bytes_per_page) in
  if npages > t.size then invalid_arg "Virtio.post: payload larger than the whole ring";
  let attempt () =
    match take_free t npages with
    | None -> false
    | Some (ids, rest) ->
        t.free <- rest;
        let head = build_chain t ~ids ~len ~write in
        if not write then begin
          (* Frontend copies the payload into the DMA buffers. *)
          let off = ref 0 in
          List.iter
            (fun id ->
              if !off < Bytes.length data then off := !off + copy_into_page t t.bufs.(id) data ~off:!off)
            ids;
          Hw.Clock.charge t.clock "virtio_copy" (float_of_int len *. Hw.Cost.copy_byte)
        end;
        Hashtbl.replace t.heads head { ndesc = npages; len; device_writes = write };
        wr t t.avail_page (ring_word t t.avail_idx) (Int64.of_int head);
        t.avail_idx <- t.avail_idx + 1;
        wr t t.avail_page idx_word (Int64.of_int t.avail_idx);
        Hw.Clock.charge t.clock "virtio_post" Hw.Cost.virtio_frontend_work;
        true
  in
  if attempt () then `Posted
  else begin
    (* Opportunistically reclaim already-published completions (a real
       driver checks the used ring before declaring the queue full). *)
    ignore (reclaim t);
    if attempt () then `Posted else `Full
  end

let post t ~data = post_chain t ~data ~capacity:0 ~write:false
let post_buffer t ~capacity = post_chain t ~data:Bytes.empty ~capacity ~write:true

(* Notify-or-not: with EVENT_IDX the guest kicks only when the new
   avail idx crosses the host-written avail_event. *)
let kick t ~doorbell =
  let rang =
    if t.avail_idx = t.kick_old then false  (* nothing new was posted *)
    else if t.window = 0 then true
    else begin
      Hw.Clock.charge t.clock "virtio_event_idx" Hw.Cost.event_idx_check;
      let ev = Int64.to_int (rd t t.used_page (event_word t)) in
      ev >= t.kick_old && ev < t.avail_idx
    end
  in
  let had_new = t.avail_idx <> t.kick_old in
  t.kick_old <- t.avail_idx;
  if rang then begin
    t.kicks <- t.kicks + 1;
    Hw.Clock.charge t.clock "virtio_doorbell" Hw.Cost.doorbell_write;
    if Hw.Probe.active () then
      Hw.Probe.emit
        (Hw.Probe.Io_doorbell { queue = t.name; avail_idx = t.avail_idx; in_flight = in_flight t });
    doorbell ()
  end
  else if had_new then t.suppressed_kicks <- t.suppressed_kicks + 1;
  rang

(* ---------------- host side ---------------- *)

let publish_used t ~head ~len =
  wr t t.used_page (ring_word t t.used_idx)
    (Int64.logor (Int64.of_int (head land 0xFFFF)) (Int64.shift_left (Int64.of_int len) 32));
  t.used_idx <- t.used_idx + 1;
  wr t t.used_page idx_word (Int64.of_int t.used_idx);
  t.unsignaled <- t.unsignaled + 1;
  t.serviced_total <- t.serviced_total + 1

let rearm_avail_event t =
  if t.window >= 1 then
    wr t t.used_page (event_word t) (Int64.of_int (t.last_avail_seen + t.window - 1))

(* Service pending device-readable chains (TX semantics): read each
   payload out of guest memory, hand it to [handle], publish the used
   entry.  Returns the number of chains serviced. *)
let service t ~handle =
  let avail = Int64.to_int (rd t t.avail_page idx_word) in
  let n = avail - t.last_avail_seen in
  if n > 0 then begin
    Hw.Clock.charge t.clock "virtio_service" Hw.Cost.virtio_backend_service;
    while t.last_avail_seen < avail do
      let head = Int64.to_int (rd t t.avail_page (ring_word t t.last_avail_seen)) in
      let total = ref 0 in
      iter_chain t head (fun _ len _ -> total := !total + len);
      let data = Bytes.create !total in
      let off = ref 0 in
      iter_chain t head (fun id _ _ ->
          if !off < !total then off := !off + copy_from_page t t.bufs.(id) data ~off:!off);
      Hw.Clock.charge t.clock "virtio_copy" (float_of_int !total *. Hw.Cost.copy_byte);
      publish_used t ~head ~len:!total;
      t.last_avail_seen <- t.last_avail_seen + 1;
      handle data
    done;
    rearm_avail_event t
  end;
  n

(* Fill one posted device-writable buffer with [data] (RX semantics);
   false when the guest has no buffer credit posted. *)
let fill t ~data =
  let avail = Int64.to_int (rd t t.avail_page idx_word) in
  if t.last_avail_seen >= avail then false
  else begin
    let head = Int64.to_int (rd t t.avail_page (ring_word t t.last_avail_seen)) in
    let len = Bytes.length data in
    let off = ref 0 in
    iter_chain t head (fun id _ _ ->
        if !off < len then off := !off + copy_into_page t t.bufs.(id) data ~off:!off);
    Hw.Clock.charge t.clock "virtio_copy" (float_of_int len *. Hw.Cost.copy_byte);
    publish_used t ~head ~len;
    t.last_avail_seen <- t.last_avail_seen + 1;
    rearm_avail_event t;
    true
  end

(* Inject (or suppress) the completion interrupt for the used entries
   published since the last injection.  [force] bounds latency at batch
   boundaries; with [window = 0] every publish batch injects. *)
let complete ?(force = false) t ~inject =
  if t.unsignaled = 0 then false
  else begin
    let should =
      if force || t.window = 0 then true
      else begin
        Hw.Clock.charge t.clock "virtio_event_idx" Hw.Cost.event_idx_check;
        let ev = Int64.to_int (rd t t.avail_page (event_word t)) in
        ev >= t.complete_old && ev < t.used_idx
      end
    in
    t.complete_old <- t.used_idx;
    if should then begin
      t.interrupts <- t.interrupts + 1;
      if Hw.Probe.active () then
        Hw.Probe.emit
          (Hw.Probe.Io_completion { queue = t.name; used_idx = t.used_idx; serviced = t.unsignaled });
      t.unsignaled <- 0;
      inject ()
    end
    else t.suppressed_interrupts <- t.suppressed_interrupts + 1;
    should
  end

let kicks t = t.kicks
let suppressed_kicks t = t.suppressed_kicks
let interrupts t = t.interrupts
let suppressed_interrupts t = t.suppressed_interrupts
let serviced_total t = t.serviced_total
let name t = t.name

let ring_pages t = (t.desc_page :: t.avail_page :: t.used_page :: Array.to_list t.bufs)
