(* VirtIO split queue, laid out as real bytes in guest memory.

   The queue owns four kinds of guest pages, all allocated through the
   platform's frame allocator (so under CKI they live inside the
   delegated hPA segment and the Analysis sanitizer can audit them like
   any other guest page):

     - one descriptor-table page: 2 words per descriptor,
         word 0 = payload-buffer pfn,
         word 1 = len | flags<<32 | next<<40   (bit 0 = NEXT chain,
                                                bit 1 = device-WRITE);
     - one avail page:  word 0 flags, word 1 = avail idx (monotonic),
         words 2..2+size-1 the ring of head descriptor ids,
         word 2+size = used_event (guest-written interrupt suppression);
     - one used page:   word 0 flags, word 1 = used idx,
         words 2..2+size-1 the ring of id | total_len<<32 entries,
         word 2+size = avail_event (host-written kick suppression);
     - [size] payload-buffer pages, one per descriptor; payloads larger
       than a page ride descriptor chains (NEXT flag).

   Notification suppression is EVENT_IDX-style: [window = 0] models the
   naive path (every post kicks, every publish batch injects);
   [window >= 1] negotiates EVENT_IDX with that batch window — the
   guest kicks only when the avail idx crosses the host-written
   avail_event, the host injects only when the used idx crosses the
   guest-written used_event, and [complete ~force:true] bounds latency
   at batch boundaries.

   The guest side never raises on a full ring: [post]/[post_buffer]
   return [`Full] after an opportunistic reclaim, and the kernel's
   backpressure path runs a host service pass and retries. *)

type access = {
  read_word : Hw.Addr.pfn -> int -> int64;
  write_word : Hw.Addr.pfn -> int -> int64 -> unit;
  alloc_frame : unit -> Hw.Addr.pfn;
}

let words_per_page = Hw.Addr.entries_per_table
let bytes_per_page = words_per_page * 8
let max_size = 256

type t = {
  name : string;
  size : int;
  mutable window : int;  (** 0 = naive; >= 1 = EVENT_IDX batch window *)
  access : access;
  clock : Hw.Clock.t;
  desc_page : Hw.Addr.pfn;
  avail_page : Hw.Addr.pfn;
  used_page : Hw.Addr.pfn;
  bufs : Hw.Addr.pfn array;  (** payload page of descriptor i *)
  (* Free descriptors as a preallocated stack (pop order identical to
     the cons-list it replaces), and in-flight head bookkeeping as
     parallel arrays indexed by head id ([head_ndesc.(h) = -1] means
     "not in flight") — the guest driver's private shadow; the
     device-visible state is all in the ring pages.  Steady-state
     post/service/reclaim touch only these flat arrays: no allocation.  *)
  free_stack : int array;
  mutable n_free : int;
  head_ndesc : int array;
  head_len : int array;
  head_writes : Bytes.t;  (** 1 = device-writable (RX) chain *)
  mutable n_heads : int;  (** in-flight chain count *)
  (* guest-side shadows *)
  mutable avail_idx : int;
  mutable kick_old : int;  (** avail idx at the previous kick decision *)
  mutable last_used_seen : int;  (** used entries the guest consumed *)
  (* host-side shadows *)
  mutable last_avail_seen : int;
  mutable used_idx : int;
  mutable unsignaled : int;  (** used entries published since last irq *)
  mutable complete_old : int;  (** used idx at the previous complete *)
  (* counters *)
  mutable kicks : int;
  mutable suppressed_kicks : int;
  mutable interrupts : int;
  mutable suppressed_interrupts : int;
  mutable serviced_total : int;
}

(* Ring-page word offsets. *)
let idx_word = 1
let ring_word t i = 2 + (i mod t.size)
let event_word t = 2 + t.size

let rd t pfn i = t.access.read_word pfn i
let wr t pfn i v = t.access.write_word pfn i v

let create ?(size = 64) ?(window = 1) ~name (access : access) clock =
  if size < 2 || size > max_size then invalid_arg "Virtio.create: size must be in 2..256";
  if window < 0 then invalid_arg "Virtio.create: negative window";
  let t =
    {
      name;
      size;
      window;
      access;
      clock;
      desc_page = access.alloc_frame ();
      avail_page = access.alloc_frame ();
      used_page = access.alloc_frame ();
      bufs = Array.init size (fun _ -> access.alloc_frame ());
      free_stack = Array.init size (fun i -> size - 1 - i);
      n_free = size;
      head_ndesc = Array.make size (-1);
      head_len = Array.make size 0;
      head_writes = Bytes.make size '\000';
      n_heads = 0;
      avail_idx = 0;
      kick_old = 0;
      last_used_seen = 0;
      last_avail_seen = 0;
      used_idx = 0;
      unsignaled = 0;
      complete_old = 0;
      kicks = 0;
      suppressed_kicks = 0;
      interrupts = 0;
      suppressed_interrupts = 0;
      serviced_total = 0;
    }
  in
  (* Publish the static half of the descriptor table (buffer pfns) and
     zero the ring indices / event fields. *)
  for i = 0 to size - 1 do
    wr t t.desc_page (2 * i) (Int64.of_int t.bufs.(i));
    wr t t.desc_page ((2 * i) + 1) 0L
  done;
  wr t t.avail_page idx_word 0L;
  wr t t.avail_page (event_word t) 0L;
  wr t t.used_page idx_word 0L;
  wr t t.used_page (event_word t) 0L;
  Hw.Clock.charge clock "virtio_ring_init" (3.0 *. Hw.Cost.page_zero);
  t

let size t = t.size
let window t = t.window
let set_window t w = if w < 0 then invalid_arg "Virtio.set_window" else t.window <- w
let in_flight t = t.avail_idx - t.last_avail_seen
let unreclaimed t = t.n_heads
let free_descs t = t.n_free

(* ---------------- payload bytes <-> page words ---------------- *)

let copy_into_page t pfn data ~off =
  let len = min bytes_per_page (Bytes.length data - off) in
  let words = (len + 7) / 8 in
  for w = 0 to words - 1 do
    let v = ref 0L in
    for b = 0 to 7 do
      let i = off + (w * 8) + b in
      if i < Bytes.length data then
        v := Int64.logor !v (Int64.shift_left (Int64.of_int (Char.code (Bytes.get data i))) (8 * b))
    done;
    wr t pfn w !v
  done;
  len

let copy_from_page t pfn data ~off =
  let len = min bytes_per_page (Bytes.length data - off) in
  let words = (len + 7) / 8 in
  for w = 0 to words - 1 do
    let v = rd t pfn w in
    for b = 0 to 7 do
      let i = off + (w * 8) + b in
      if i < Bytes.length data then
        Bytes.set data i
          (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * b)) 0xFFL)))
    done
  done;
  len

(* ---------------- descriptor chains ---------------- *)

let flag_next = 1
let flag_write = 2

let write_desc t id ~len ~flags ~next =
  wr t t.desc_page ((2 * id) + 1)
    (Int64.logor (Int64.of_int (len land 0xFFFFFFFF))
       (Int64.logor
          (Int64.shift_left (Int64.of_int flags) 32)
          (Int64.shift_left (Int64.of_int next) 40)))

let read_desc t id =
  let w = rd t t.desc_page ((2 * id) + 1) in
  let len = Int64.to_int (Int64.logand w 0xFFFFFFFFL) in
  let flags = Int64.to_int (Int64.logand (Int64.shift_right_logical w 32) 0xFFL) in
  let next = Int64.to_int (Int64.logand (Int64.shift_right_logical w 40) 0xFFFFL) in
  (len, flags, next)

(* Chain walks are explicit loops over the descriptor words (the
   payload page of descriptor [id] is word [2*id] of the table, kept in
   [t.bufs] as a shadow so the walk need not re-read it): the hot
   service/reclaim/fill paths allocate no closures.

   Copy the chain's payload out into [data] (up to [limit] bytes). *)
let chain_copy_out t head data ~limit =
  let id = ref head and off = ref 0 and more = ref true in
  while !more do
    let _, flags, next = read_desc t !id in
    if !off < limit then off := !off + copy_from_page t t.bufs.(!id) data ~off:!off;
    if flags land flag_next <> 0 then id := next else more := false
  done

(* Copy [data] into the chain's payload pages. *)
let chain_copy_in t head data =
  let limit = Bytes.length data in
  let id = ref head and off = ref 0 and more = ref true in
  while !more do
    let _, flags, next = read_desc t !id in
    if !off < limit then off := !off + copy_into_page t t.bufs.(!id) data ~off:!off;
    if flags land flag_next <> 0 then id := next else more := false
  done

(* Total bytes carried by the chain. *)
let chain_len t head =
  let id = ref head and total = ref 0 and more = ref true in
  while !more do
    let len, flags, next = read_desc t !id in
    total := !total + len;
    if flags land flag_next <> 0 then id := next else more := false
  done;
  !total

(* Return every descriptor of the chain to the free stack (push order
   identical to the cons-list it replaces). *)
let chain_free t head =
  let id = ref head and more = ref true in
  while !more do
    let _, flags, next = read_desc t !id in
    t.free_stack.(t.n_free) <- !id;
    t.n_free <- t.n_free + 1;
    if flags land flag_next <> 0 then id := next else more := false
  done

(* Pop [npages] free descriptors and link them as one chain carrying
   [len] bytes (device-writable when [write]); every segment but the
   last spans a whole page.  Returns the head id. *)
let build_chain t ~npages ~len ~write =
  let flags_w = if write then flag_write else 0 in
  let head = t.free_stack.(t.n_free - 1) in
  let id = ref head in
  for k = 1 to npages - 1 do
    let next = t.free_stack.(t.n_free - 1 - k) in
    write_desc t !id ~len:bytes_per_page ~flags:(flags_w lor flag_next) ~next;
    id := next
  done;
  write_desc t !id ~len:(max 0 (len - ((npages - 1) * bytes_per_page))) ~flags:flags_w ~next:0;
  t.n_free <- t.n_free - npages;
  head

(* ---------------- guest side ---------------- *)

(* Consume published used entries: free their descriptors and (for
   device-written chains) read the payload back out of guest memory.
   Returns the device-written payloads, oldest first. *)
let reclaim t =
  let out = ref [] in
  while t.last_used_seen < t.used_idx do
    let e = rd t t.used_page (ring_word t t.last_used_seen) in
    let head = Int64.to_int (Int64.logand e 0xFFFFL) in
    let len = Int64.to_int (Int64.logand (Int64.shift_right_logical e 32) 0xFFFFFFFFL) in
    if head >= 0 && head < t.size && t.head_ndesc.(head) >= 0 then begin
      (* known in-flight chain; anything else is a forged/duplicate
         used entry: nothing to free *)
      if Bytes.get t.head_writes head <> '\000' && len > 0 then begin
        let data = Bytes.create len in
        chain_copy_out t head data ~limit:len;
        Hw.Clock.charge_id t.clock Hw.Clock.id_virtio_copy (float_of_int len *. Hw.Cost.copy_byte);
        out := data :: !out
      end;
      chain_free t head;
      t.head_ndesc.(head) <- -1;
      t.n_heads <- t.n_heads - 1
    end;
    t.last_used_seen <- t.last_used_seen + 1
  done;
  (* Re-arm interrupt suppression for the entries we just consumed. *)
  if t.window >= 1 then
    wr t t.avail_page (event_word t) (Int64.of_int (t.last_used_seen + t.window - 1));
  List.rev !out

let post_chain t ~data ~capacity ~write =
  let len = if write then capacity else Bytes.length data in
  let npages = max 1 ((len + bytes_per_page - 1) / bytes_per_page) in
  if npages > t.size then invalid_arg "Virtio.post: payload larger than the whole ring";
  let attempt () =
    if t.n_free < npages then false
    else begin
      let head = build_chain t ~npages ~len ~write in
      if not write then begin
        (* Frontend copies the payload into the DMA buffers. *)
        chain_copy_in t head data;
        Hw.Clock.charge_id t.clock Hw.Clock.id_virtio_copy (float_of_int len *. Hw.Cost.copy_byte)
      end;
      if t.head_ndesc.(head) < 0 then t.n_heads <- t.n_heads + 1;
      t.head_ndesc.(head) <- npages;
      t.head_len.(head) <- len;
      Bytes.set t.head_writes head (if write then '\001' else '\000');
      wr t t.avail_page (ring_word t t.avail_idx) (Int64.of_int head);
      t.avail_idx <- t.avail_idx + 1;
      wr t t.avail_page idx_word (Int64.of_int t.avail_idx);
      Hw.Clock.charge_id t.clock Hw.Clock.id_virtio_post Hw.Cost.virtio_frontend_work;
      true
    end
  in
  if attempt () then `Posted
  else begin
    (* Opportunistically reclaim already-published completions (a real
       driver checks the used ring before declaring the queue full). *)
    ignore (reclaim t);
    if attempt () then `Posted else `Full
  end

let post t ~data = post_chain t ~data ~capacity:0 ~write:false
let post_buffer t ~capacity = post_chain t ~data:Bytes.empty ~capacity ~write:true

(* Notify-or-not: with EVENT_IDX the guest kicks only when the new
   avail idx crosses the host-written avail_event. *)
let kick t ~doorbell =
  let rang =
    if t.avail_idx = t.kick_old then false  (* nothing new was posted *)
    else if t.window = 0 then true
    else begin
      Hw.Clock.charge_id t.clock Hw.Clock.id_virtio_event_idx Hw.Cost.event_idx_check;
      let ev = Int64.to_int (rd t t.used_page (event_word t)) in
      ev >= t.kick_old && ev < t.avail_idx
    end
  in
  let had_new = t.avail_idx <> t.kick_old in
  t.kick_old <- t.avail_idx;
  if rang then begin
    t.kicks <- t.kicks + 1;
    Hw.Clock.charge_id t.clock Hw.Clock.id_virtio_doorbell Hw.Cost.doorbell_write;
    Hw.Probe.emit_io_doorbell ~queue:t.name ~avail_idx:t.avail_idx ~in_flight:(in_flight t);
    doorbell ()
  end
  else if had_new then t.suppressed_kicks <- t.suppressed_kicks + 1;
  rang

(* ---------------- host side ---------------- *)

let publish_used t ~head ~len =
  wr t t.used_page (ring_word t t.used_idx)
    (Int64.logor (Int64.of_int (head land 0xFFFF)) (Int64.shift_left (Int64.of_int len) 32));
  t.used_idx <- t.used_idx + 1;
  wr t t.used_page idx_word (Int64.of_int t.used_idx);
  t.unsignaled <- t.unsignaled + 1;
  t.serviced_total <- t.serviced_total + 1

let rearm_avail_event t =
  if t.window >= 1 then
    wr t t.used_page (event_word t) (Int64.of_int (t.last_avail_seen + t.window - 1))

(* Service pending device-readable chains (TX semantics): read each
   payload out of guest memory, hand it to [handle], publish the used
   entry.  Returns the number of chains serviced. *)
let service t ~handle =
  let avail = Int64.to_int (rd t t.avail_page idx_word) in
  let n = avail - t.last_avail_seen in
  if n > 0 then begin
    Hw.Clock.charge_id t.clock Hw.Clock.id_virtio_service Hw.Cost.virtio_backend_service;
    while t.last_avail_seen < avail do
      let head = Int64.to_int (rd t t.avail_page (ring_word t t.last_avail_seen)) in
      let total = chain_len t head in
      let data = Bytes.create total in
      chain_copy_out t head data ~limit:total;
      Hw.Clock.charge_id t.clock Hw.Clock.id_virtio_copy
        (float_of_int total *. Hw.Cost.copy_byte);
      publish_used t ~head ~len:total;
      t.last_avail_seen <- t.last_avail_seen + 1;
      handle data
    done;
    rearm_avail_event t
  end;
  n

(* Fill one posted device-writable buffer with [data] (RX semantics);
   false when the guest has no buffer credit posted. *)
let fill t ~data =
  let avail = Int64.to_int (rd t t.avail_page idx_word) in
  if t.last_avail_seen >= avail then false
  else begin
    let head = Int64.to_int (rd t t.avail_page (ring_word t t.last_avail_seen)) in
    let len = Bytes.length data in
    chain_copy_in t head data;
    Hw.Clock.charge_id t.clock Hw.Clock.id_virtio_copy (float_of_int len *. Hw.Cost.copy_byte);
    publish_used t ~head ~len;
    t.last_avail_seen <- t.last_avail_seen + 1;
    rearm_avail_event t;
    true
  end

(* Inject (or suppress) the completion interrupt for the used entries
   published since the last injection.  [force] bounds latency at batch
   boundaries; with [window = 0] every publish batch injects. *)
let complete ?(force = false) t ~inject =
  if t.unsignaled = 0 then false
  else begin
    let should =
      if force || t.window = 0 then true
      else begin
        Hw.Clock.charge_id t.clock Hw.Clock.id_virtio_event_idx Hw.Cost.event_idx_check;
        let ev = Int64.to_int (rd t t.avail_page (event_word t)) in
        ev >= t.complete_old && ev < t.used_idx
      end
    in
    t.complete_old <- t.used_idx;
    if should then begin
      t.interrupts <- t.interrupts + 1;
      Hw.Probe.emit_io_completion ~queue:t.name ~used_idx:t.used_idx ~serviced:t.unsignaled;
      t.unsignaled <- 0;
      inject ()
    end
    else t.suppressed_interrupts <- t.suppressed_interrupts + 1;
    should
  end

let kicks t = t.kicks
let suppressed_kicks t = t.suppressed_kicks
let interrupts t = t.interrupts
let suppressed_interrupts t = t.suppressed_interrupts
let serviced_total t = t.serviced_total
let name t = t.name

let ring_pages t = (t.desc_page :: t.avail_page :: t.used_page :: Array.to_list t.bufs)
