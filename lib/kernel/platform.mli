(** The platform interface: everything a kernel needs from the
    privilege layer underneath it.

    The same model kernel runs as the native/host kernel (RunC), an HVM
    guest, a PVM guest, or a CKI guest; each backend supplies this
    record, and the paper's cost structure falls out of which
    operations are expensive on which platform. *)

type io_kind = Net_tx | Net_rx_ack | Blk_read | Blk_write | Timer | Ipi | Console

val pp_io_kind : Format.formatter -> io_kind -> unit
val show_io_kind : io_kind -> string
val equal_io_kind : io_kind -> io_kind -> bool

type aspace = int
(** Opaque address-space handle, interpreted by the backend. *)

type t = {
  name : string;
  clock : Hw.Clock.t;
  alloc_frame : unit -> Hw.Addr.pfn;
      (** one data frame for the kernel's allocator (a gPA under
          HVM/PVM; a host-physical frame under RunC/CKI) *)
  free_frame : Hw.Addr.pfn -> unit;
  as_create : unit -> aspace;
  as_destroy : aspace -> unit;
  as_switch : aspace -> unit;  (** process context switch (CR3 load) *)
  pte_install : aspace -> va:Hw.Addr.va -> pfn:Hw.Addr.pfn -> writable:bool -> user:bool -> unit;
  pte_remove : aspace -> va:Hw.Addr.va -> unit;
  pte_protect : aspace -> va:Hw.Addr.va -> writable:bool -> unit;
  fault_round_trip : unit -> unit;
      (** everything a user page fault pays besides the kernel's own
          service work (VM exits, SPT emulation, KSM calls...) *)
  fault_service_ns : float;  (** the kernel's own demand-fault service *)
  syscall_round_trip : unit -> unit;  (** full syscall entry/exit path *)
  hypercall : io_kind -> unit;  (** doorbells, timers, vCPU pause *)
  deliver_irq : unit -> unit;  (** device interrupt reaching this kernel *)
  virtualized_io : bool;
      (** I/O rides VirtIO (doorbell exits + backend service); false for
          OS-level containers using host devices natively *)
  guest_read_word : Hw.Addr.pfn -> int -> int64;
      (** read one 64-bit word of an [alloc_frame] frame (VirtIO rings
          and payload buffers are real bytes in these pages); the pfn
          is in the allocator's namespace — a gfn under HVM/PVM, an hPA
          frame under RunC/CKI *)
  guest_write_word : Hw.Addr.pfn -> int -> int64 -> unit;
}

val bare : ?name:string -> Hw.Machine.t -> t
(** Bare-hardware platform for the host kernel / RunC: direct paging,
    native syscalls, no hypercalls. *)

val charge : t -> string -> float -> unit
