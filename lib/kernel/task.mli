(** Task (process) structures and file-descriptor tables. *)

type state = Runnable | Running | Blocked | Zombie

val pp_state : Format.formatter -> state -> unit
val show_state : state -> string
val equal_state : state -> state -> bool

type file_desc = { inode : Tmpfs.inode; mutable pos : int }

type fd_object =
  | File of file_desc
  | Pipe_read of Pipe.t
  | Pipe_write of Pipe.t
  | Socket of int  (** endpoint id in the kernel's socket table *)

type t = {
  pid : int;
  parent : int;
  mm : Mm.t;
  fds : (int, fd_object) Hashtbl.t;
  mutable next_fd : int;
  mutable state : state;
  mutable exit_code : int option;
  mutable utime_ns : float;
}

val create : pid:int -> parent:int -> Mm.t -> t
val install_fd : t -> fd_object -> int

val restore_fd : t -> fd:int -> fd_object -> unit
(** Snapshot restore: re-install a descriptor at its captured number,
    keeping [next_fd] above every restored descriptor. *)
val fd : t -> int -> fd_object option
val close_fd : t -> int -> unit
val fd_count : t -> int
