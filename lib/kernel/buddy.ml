(* Binary-buddy allocator over a contiguous physical-frame range.

   This is the guest kernel's memory manager in CKI: the host delegates
   contiguous hPA segments and the guest buddy allocator hands frames
   straight to the page-fault handler — no gPA indirection. *)

let max_order = 11 (* 2^11 frames = 8 MiB blocks *)

type t = {
  base : Hw.Addr.pfn;
  frames : int;
  free_lists : Hw.Addr.pfn list array;  (** index = order *)
  order_of : (Hw.Addr.pfn, int) Hashtbl.t;  (** allocated block -> order *)
  mutable free_count : int;
}

exception Out_of_memory

let create ~base ~frames =
  if frames <= 0 then invalid_arg "Buddy.create";
  let t =
    {
      base;
      frames;
      free_lists = Array.make (max_order + 1) [];
      order_of = Hashtbl.create 256;
      free_count = frames;
    }
  in
  (* Seed free lists greedily with the largest aligned blocks. *)
  let rec seed pfn remaining =
    if remaining > 0 then begin
      let rel = pfn - base in
      let order =
        let rec fit o =
          if o = 0 then 0
          else if 1 lsl o <= remaining && rel land ((1 lsl o) - 1) = 0 then o
          else fit (o - 1)
        in
        fit max_order
      in
      t.free_lists.(order) <- pfn :: t.free_lists.(order);
      seed (pfn + (1 lsl order)) (remaining - (1 lsl order))
    end
  in
  seed base frames;
  t

let total_frames t = t.frames
let free_frames t = t.free_count

let buddy_of t pfn order = ((pfn - t.base) lxor (1 lsl order)) + t.base

(* Allocate a block of 2^order frames; returns its first pfn. *)
let alloc_order t order =
  if order < 0 || order > max_order then invalid_arg "Buddy.alloc_order";
  let rec take o =
    if o > max_order then raise Out_of_memory
    else
      match t.free_lists.(o) with
      | [] -> take (o + 1)
      | pfn :: rest ->
          t.free_lists.(o) <- rest;
          (* Split back down to the requested order. *)
          let rec split cur =
            if cur > order then begin
              let half = cur - 1 in
              let upper = pfn + (1 lsl half) in
              t.free_lists.(half) <- upper :: t.free_lists.(half);
              split half
            end
          in
          split o;
          pfn
  in
  let pfn = take order in
  Hashtbl.replace t.order_of pfn order;
  t.free_count <- t.free_count - (1 lsl order);
  pfn

let alloc t = alloc_order t 0

(* Allocate a 2 MiB-aligned 512-frame block for a huge-page mapping. *)
let alloc_huge t = alloc_order t 9

let rec coalesce t pfn order =
  if order >= max_order then t.free_lists.(order) <- pfn :: t.free_lists.(order)
  else
    let b = buddy_of t pfn order in
    if b >= t.base && b < t.base + t.frames && List.mem b t.free_lists.(order) then begin
      t.free_lists.(order) <- List.filter (fun p -> p <> b) t.free_lists.(order);
      coalesce t (min pfn b) (order + 1)
    end
    else t.free_lists.(order) <- pfn :: t.free_lists.(order)

let base t = t.base

(* Allocated block heads with orders, sorted — the allocator's logical
   state for snapshot capture (free lists are derived on restore). *)
let allocated_blocks t =
  Hashtbl.fold (fun pfn order acc -> (pfn, order) :: acc) t.order_of []
  |> List.sort compare

(* Snapshot restore: carve the specific block [pfn, pfn + 2^order) out
   of a fresh allocator, reproducing the captured allocation pattern. *)
let reserve t pfn order =
  if order < 0 || order > max_order then invalid_arg "Buddy.reserve";
  if (pfn - t.base) land ((1 lsl order) - 1) <> 0 then
    invalid_arg "Buddy.reserve: misaligned block";
  (* Find the free block containing [pfn] — it must sit at order >= the
     requested one for the reservation to be satisfiable. *)
  let containing =
    let found = ref None in
    Array.iteri
      (fun o lst ->
        if !found = None && o >= order then
          List.iter
            (fun b -> if !found = None && b <= pfn && pfn < b + (1 lsl o) then found := Some (b, o))
            lst)
      t.free_lists;
    match !found with
    | Some bo -> bo
    | None -> invalid_arg "Buddy.reserve: block not free"
  in
  let b0, o0 = containing in
  t.free_lists.(o0) <- List.filter (fun p -> p <> b0) t.free_lists.(o0);
  (* Split down, keeping the halves that do not contain [pfn] free. *)
  let rec split b o =
    if o = order then assert (b = pfn)
    else begin
      let half = o - 1 in
      let upper = b + (1 lsl half) in
      if pfn < upper then begin
        t.free_lists.(half) <- upper :: t.free_lists.(half);
        split b half
      end
      else begin
        t.free_lists.(half) <- b :: t.free_lists.(half);
        split upper half
      end
    end
  in
  split b0 o0;
  Hashtbl.replace t.order_of pfn order;
  t.free_count <- t.free_count - (1 lsl order)

let free t pfn =
  match Hashtbl.find_opt t.order_of pfn with
  | None -> invalid_arg "Buddy.free: not an allocated block head"
  | Some order ->
      Hashtbl.remove t.order_of pfn;
      t.free_count <- t.free_count + (1 lsl order);
      coalesce t pfn order

(* Sanity invariant for tests: free-list accounting matches free_count
   and every free block is inside the range. *)
let check_invariants t =
  let counted = ref 0 in
  Array.iteri
    (fun order lst ->
      List.iter
        (fun pfn ->
          if pfn < t.base || pfn + (1 lsl order) > t.base + t.frames then
            failwith "Buddy: free block out of range";
          counted := !counted + (1 lsl order))
        lst)
    t.free_lists;
  !counted = t.free_count
