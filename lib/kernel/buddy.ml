(* Binary-buddy allocator over one or more physical-frame zones.

   This is the guest kernel's memory manager in CKI: the host delegates
   hPA segments and the guest buddy allocator hands frames straight to
   the page-fault handler — no gPA indirection.  Under scatter
   delegation a container receives several discontiguous chunks; each
   becomes a zone with its own free lists (a block never spans zones),
   and allocation tries zones in delegation order, so the allocation
   stream stays deterministic. *)

let max_order = 11 (* 2^11 frames = 8 MiB blocks *)

type zone = {
  base : Hw.Addr.pfn;
  frames : int;
  free_lists : Hw.Addr.pfn list array;  (** index = order *)
  order_of : (Hw.Addr.pfn, int) Hashtbl.t;  (** allocated block -> order *)
  mutable free_count : int;
}

type t = { zones : zone array }

exception Out_of_memory

let make_zone ~base ~frames =
  if frames <= 0 then invalid_arg "Buddy.create";
  let z =
    {
      base;
      frames;
      free_lists = Array.make (max_order + 1) [];
      order_of = Hashtbl.create 256;
      free_count = frames;
    }
  in
  (* Seed free lists greedily with the largest aligned blocks. *)
  let rec seed pfn remaining =
    if remaining > 0 then begin
      let rel = pfn - base in
      let order =
        let rec fit o =
          if o = 0 then 0
          else if 1 lsl o <= remaining && rel land ((1 lsl o) - 1) = 0 then o
          else fit (o - 1)
        in
        fit max_order
      in
      z.free_lists.(order) <- pfn :: z.free_lists.(order);
      seed (pfn + (1 lsl order)) (remaining - (1 lsl order))
    end
  in
  seed base frames;
  z

let create_zones ~segments =
  if segments = [] then invalid_arg "Buddy.create_zones";
  { zones = Array.of_list (List.map (fun (base, frames) -> make_zone ~base ~frames) segments) }

let create ~base ~frames = create_zones ~segments:[ (base, frames) ]

let total_frames t = Array.fold_left (fun acc z -> acc + z.frames) 0 t.zones

let free_frames t = Array.fold_left (fun acc z -> acc + z.free_count) 0 t.zones

let zone_of t pfn =
  let found = ref None in
  Array.iter
    (fun z -> if !found = None && pfn >= z.base && pfn < z.base + z.frames then found := Some z)
    t.zones;
  match !found with
  | Some z -> z
  | None -> invalid_arg "Buddy: frame outside every zone"

let buddy_of z pfn order = ((pfn - z.base) lxor (1 lsl order)) + z.base

(* Allocate a block of 2^order frames from [z]; returns its first pfn. *)
let zone_alloc_order z order =
  let rec take o =
    if o > max_order then raise Out_of_memory
    else
      match z.free_lists.(o) with
      | [] -> take (o + 1)
      | pfn :: rest ->
          z.free_lists.(o) <- rest;
          (* Split back down to the requested order. *)
          let rec split cur =
            if cur > order then begin
              let half = cur - 1 in
              let upper = pfn + (1 lsl half) in
              z.free_lists.(half) <- upper :: z.free_lists.(half);
              split half
            end
          in
          split o;
          pfn
  in
  let pfn = take order in
  Hashtbl.replace z.order_of pfn order;
  z.free_count <- z.free_count - (1 lsl order);
  pfn

let alloc_order t order =
  if order < 0 || order > max_order then invalid_arg "Buddy.alloc_order";
  let rec try_zone i =
    if i >= Array.length t.zones then raise Out_of_memory
    else match zone_alloc_order t.zones.(i) order with
      | pfn -> pfn
      | exception Out_of_memory -> try_zone (i + 1)
  in
  try_zone 0

let alloc t = alloc_order t 0

(* Allocate a 2 MiB-aligned 512-frame block for a huge-page mapping. *)
let alloc_huge t = alloc_order t 9

let rec coalesce z pfn order =
  if order >= max_order then z.free_lists.(order) <- pfn :: z.free_lists.(order)
  else
    let b = buddy_of z pfn order in
    if b >= z.base && b < z.base + z.frames && List.mem b z.free_lists.(order) then begin
      z.free_lists.(order) <- List.filter (fun p -> p <> b) z.free_lists.(order);
      coalesce z (min pfn b) (order + 1)
    end
    else z.free_lists.(order) <- pfn :: z.free_lists.(order)

let base t = t.zones.(0).base

let zones t = Array.to_list (Array.map (fun z -> (z.base, z.frames)) t.zones)

(* Allocated block heads with orders, sorted — the allocator's logical
   state for snapshot capture (free lists are derived on restore). *)
let allocated_blocks t =
  Array.fold_left
    (fun acc z -> Hashtbl.fold (fun pfn order l -> (pfn, order) :: l) z.order_of acc)
    [] t.zones
  |> List.sort compare

(* Snapshot restore: carve the specific block [pfn, pfn + 2^order) out
   of a fresh allocator, reproducing the captured allocation pattern. *)
let reserve t pfn order =
  if order < 0 || order > max_order then invalid_arg "Buddy.reserve";
  let z = zone_of t pfn in
  if (pfn - z.base) land ((1 lsl order) - 1) <> 0 then
    invalid_arg "Buddy.reserve: misaligned block";
  (* Find the free block containing [pfn] — it must sit at order >= the
     requested one for the reservation to be satisfiable. *)
  let containing =
    let found = ref None in
    Array.iteri
      (fun o lst ->
        if !found = None && o >= order then
          List.iter
            (fun b -> if !found = None && b <= pfn && pfn < b + (1 lsl o) then found := Some (b, o))
            lst)
      z.free_lists;
    match !found with
    | Some bo -> bo
    | None -> invalid_arg "Buddy.reserve: block not free"
  in
  let b0, o0 = containing in
  z.free_lists.(o0) <- List.filter (fun p -> p <> b0) z.free_lists.(o0);
  (* Split down, keeping the halves that do not contain [pfn] free. *)
  let rec split b o =
    if o = order then assert (b = pfn)
    else begin
      let half = o - 1 in
      let upper = b + (1 lsl half) in
      if pfn < upper then begin
        z.free_lists.(half) <- upper :: z.free_lists.(half);
        split b half
      end
      else begin
        z.free_lists.(half) <- b :: z.free_lists.(half);
        split upper half
      end
    end
  in
  split b0 o0;
  Hashtbl.replace z.order_of pfn order;
  z.free_count <- z.free_count - (1 lsl order)

let free t pfn =
  let z = zone_of t pfn in
  match Hashtbl.find_opt z.order_of pfn with
  | None -> invalid_arg "Buddy.free: not an allocated block head"
  | Some order ->
      Hashtbl.remove z.order_of pfn;
      z.free_count <- z.free_count + (1 lsl order);
      coalesce z pfn order

(* Sanity invariant for tests: free-list accounting matches free_count
   and every free block is inside its zone. *)
let check_invariants t =
  Array.for_all
    (fun z ->
      let counted = ref 0 in
      Array.iteri
        (fun order lst ->
          List.iter
            (fun pfn ->
              if pfn < z.base || pfn + (1 lsl order) > z.base + z.frames then
                failwith "Buddy: free block out of range";
              counted := !counted + (1 lsl order))
            lst)
        z.free_lists;
      !counted = z.free_count)
    t.zones
