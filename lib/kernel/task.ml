(* Task (process/thread) structures and file-descriptor tables. *)

type state = Runnable | Running | Blocked | Zombie [@@deriving show { with_path = false }, eq]

type file_desc = { inode : Tmpfs.inode; mutable pos : int }

type fd_object =
  | File of file_desc
  | Pipe_read of Pipe.t
  | Pipe_write of Pipe.t
  | Socket of int  (** endpoint id in the kernel's socket table *)

type t = {
  pid : int;
  parent : int;
  mm : Mm.t;
  fds : (int, fd_object) Hashtbl.t;
  mutable next_fd : int;
  mutable state : state;
  mutable exit_code : int option;
  mutable utime_ns : float;  (** accumulated simulated CPU time *)
}

let create ~pid ~parent mm =
  {
    pid;
    parent;
    mm;
    fds = Hashtbl.create 16;
    next_fd = 3;
    state = Runnable;
    exit_code = None;
    utime_ns = 0.0;
  }

let install_fd t obj =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd obj;
  fd

(* Snapshot restore: re-install a descriptor at its captured number. *)
let restore_fd t ~fd obj =
  Hashtbl.replace t.fds fd obj;
  if fd >= t.next_fd then t.next_fd <- fd + 1

let fd t n = Hashtbl.find_opt t.fds n
let close_fd t n = Hashtbl.remove t.fds n
let fd_count t = Hashtbl.length t.fds
