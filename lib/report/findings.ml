(* Rendering for analysis findings.  The analysis library produces
   typed violations; here they are already flattened to strings, so the
   report layer stays independent of the checker's vocabulary. *)

type severity = Critical | Warning | Info

let severity_name = function
  | Critical -> "CRITICAL"
  | Warning -> "warning"
  | Info -> "info"

type t = {
  severity : severity;
  rule : string;
  subject : string;
  detail : string;
}

let make ~severity ~rule ~subject ~detail = { severity; rule; subject; detail }

let count_sev findings sev = List.length (List.filter (fun f -> f.severity = sev) findings)

let summary = function
  | [] -> "clean"
  | fs ->
      let crit = count_sev fs Critical and warn = count_sev fs Warning and info = count_sev fs Info in
      let part n what = if n = 0 then [] else [ Printf.sprintf "%d %s" n what ] in
      Printf.sprintf "%d finding%s (%s)" (List.length fs)
        (if List.length fs = 1 then "" else "s")
        (String.concat ", " (part crit "critical" @ part warn "warning" @ part info "info"))

let render ~title findings =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "== %s: %s ==\n" title (summary findings));
  (match findings with
  | [] -> ()
  | fs ->
      let w_sev = List.fold_left (fun m f -> max m (String.length (severity_name f.severity))) 0 fs in
      let w_rule = List.fold_left (fun m f -> max m (String.length f.rule)) 0 fs in
      let w_subj = List.fold_left (fun m f -> max m (String.length f.subject)) 0 fs in
      List.iter
        (fun f ->
          Buffer.add_string buf
            (Printf.sprintf "  %-*s  %-*s  %-*s  %s\n" w_sev (severity_name f.severity) w_rule
               f.rule w_subj f.subject f.detail))
        fs);
  Buffer.contents buf

let print ~title findings = print_string (render ~title findings)
