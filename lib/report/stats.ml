(* Small statistics helpers for the benchmark harness. *)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      let logs = List.map log xs in
      exp (mean logs)

let minimum xs = List.fold_left min infinity xs
let maximum xs = List.fold_left max neg_infinity xs

(* Nearest-rank percentile (p in [0,100]) of an unsorted sample. *)
let percentile xs ~p =
  match xs with
  | [] -> nan
  | _ ->
      let sorted = List.sort compare xs in
      let n = List.length sorted in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      List.nth sorted (max 0 (min (n - 1) (rank - 1)))

(* Normalize each value to [baseline] (baseline becomes 1.0). *)
let normalize ~baseline xs = List.map (fun x -> x /. baseline) xs

(* Percentage overhead of [x] relative to [baseline]. *)
let overhead_pct ~baseline x = 100.0 *. ((x /. baseline) -. 1.0)

(* Percentage reduction from [from_] to [to_]: positive = improvement. *)
let reduction_pct ~from_ ~to_ = 100.0 *. (1.0 -. (to_ /. from_))

(* Speedup of [x] over [baseline] (throughput ratio). *)
let speedup ~baseline x = x /. baseline

let pp_ns fmt v =
  if v >= 1e9 then Format.fprintf fmt "%.2f s" (v /. 1e9)
  else if v >= 1e6 then Format.fprintf fmt "%.2f ms" (v /. 1e6)
  else if v >= 1e3 then Format.fprintf fmt "%.2f us" (v /. 1e3)
  else Format.fprintf fmt "%.0f ns" v

let si v =
  if Float.abs v >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if Float.abs v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if Float.abs v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.1f" v
