(** Rendering for analysis findings (invariant violations and trace
    lints). Generic over the producing rule: the analysis library turns
    its typed violations into [t] values; this module only formats. *)

type severity = Critical | Warning | Info

val severity_name : severity -> string

type t = {
  severity : severity;
  rule : string;  (** short rule identifier, e.g. "I1-undeclared-ptp" *)
  subject : string;  (** what the finding is about, e.g. "container 0" *)
  detail : string;  (** one-line human-readable description *)
}

val make : severity:severity -> rule:string -> subject:string -> detail:string -> t

val render : title:string -> t list -> string
(** An aligned report block; an empty list renders a clean-bill line. *)

val print : title:string -> t list -> unit

val summary : t list -> string
(** One line: "3 findings (2 critical, 1 warning)" or "clean". *)
