(** Small statistics helpers for the benchmark harness. *)

val mean : float list -> float
val geomean : float list -> float
val minimum : float list -> float
val maximum : float list -> float

val percentile : float list -> p:float -> float
(** Nearest-rank percentile ([p] in 0..100) of an unsorted sample;
    [nan] on the empty list. *)

val normalize : baseline:float -> float list -> float list
(** Each value divided by [baseline]. *)

val overhead_pct : baseline:float -> float -> float
(** Percentage overhead relative to a baseline. *)

val reduction_pct : from_:float -> to_:float -> float
(** Percentage reduction (positive = improvement). *)

val speedup : baseline:float -> float -> float

val pp_ns : Format.formatter -> float -> unit
(** Human-friendly duration (ns/us/ms/s). *)

val si : float -> string
(** Short SI-suffixed number ("1.5k", "2.30M"). *)
