(** Minimal JSON emitter for benchmark artifacts ([BENCH_*.json]).

    Emission only — nothing in the repo parses JSON back, so there is
    no decoder and no external dependency. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Obj of (string * value) list

val to_string : value -> string
(** Pretty-printed (2-space indent), newline-terminated. Non-finite
    floats emit [null]. *)

val write_file : string -> value -> unit
