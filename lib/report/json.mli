(** Minimal JSON emitter + parser for benchmark artifacts
    ([BENCH_*.json]).

    The parser exists so CI can prove the checked-in artifacts are
    well-formed and carry the expected fields; it accepts exactly the
    JSON this module emits (standard JSON minus NaN/Infinity, which the
    emitter never produces) and needs no external dependency. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Obj of (string * value) list

val to_string : value -> string
(** Pretty-printed (2-space indent), newline-terminated. Non-finite
    floats emit [null]. *)

val write_file : string -> value -> unit

val parse : string -> (value, string) result
(** Recursive-descent parse of a complete JSON document. Rejects
    trailing garbage, NaN/Infinity literals, and malformed escapes;
    the error string carries a byte offset. [parse (to_string v)]
    round-trips every value the emitter can produce (non-finite floats
    come back as [Null], which is what was emitted). *)

val parse_file : string -> (value, string) result
(** [parse] over the whole contents of a file. *)

val member : string -> value -> value option
(** [member k (Obj fields)] is the first binding of [k]; [None] for
    non-objects or missing keys. *)
