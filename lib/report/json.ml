(* Minimal JSON emitter for benchmark artifacts (BENCH_*.json).

   Emission only — the repo never parses JSON back, so there is no
   decoder and no external dependency. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Obj of (string * value) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf indent v =
  let pad n = String.make (2 * n) ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no NaN/Infinity; also avoid "1." (invalid JSON). *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List vs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          emit buf (indent + 1) v)
        vs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf (indent + 1) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string v))
