(* Minimal JSON emitter + parser for benchmark artifacts
   (BENCH_*.json).

   The parser exists so CI can prove the checked-in artifacts are
   well-formed and carry the expected fields; it accepts exactly the
   JSON this module emits (standard JSON minus NaN/Infinity, which the
   emitter never produces) and needs no external dependency. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Obj of (string * value) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf indent v =
  let pad n = String.make (2 * n) ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no NaN/Infinity; also avoid "1." (invalid JSON). *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List vs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          emit buf (indent + 1) v)
        vs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf (indent + 1) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string v))

(* ---------------- parsing ---------------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else error ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then error "truncated \\u escape";
              let code =
                try int_of_string ("0x" ^ String.sub s !pos 4)
                with _ -> error "bad \\u escape"
              in
              pos := !pos + 4;
              (* artifacts are ASCII; keep the low byte like the emitter *)
              Buffer.add_char buf (Char.chr (code land 0xFF));
              go ()
          | _ -> error "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> error ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected '%c'" c)
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos) else Ok v
  | exception Parse_error msg -> Error msg

let parse_file path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse s

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
