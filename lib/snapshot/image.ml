(* The snapshot image: a deterministic, versioned, checksummed record
   of one quiesced CKI container.

   Nothing in the image is an absolute frame number: every frame is
   named either by its offset inside a delegated segment ([Seg]) or by
   its position in the auxiliary-frame table ([Aux], for KSM-private
   and kernel-image frames allocated outside the segments).  Restore
   relocates by delegating fresh segments and allocating fresh
   auxiliary frames, then re-basing every reference — so an image can
   land at any hPA on any machine.

   The on-disk form is line-oriented text: a magic+version line, an
   FNV-1a-64 checksum of the payload, then the payload.  Encoding is a
   pure function of the logical container state (all unordered
   collections are sorted), so capture∘restore∘capture is
   byte-identical — the property the tests pin. *)

type fref = Seg of { seg : int; off : int } | Aux of int

(* Frames that exist outside the delegated segments.  [Pt] frames are
   KSM-owned page-table pages (the monitor's own trees, per-vCPU
   copies, direct-map interior nodes); [Kernel_code] is the guest
   kernel image, boot-allocated host-side. *)
type aux_kind = Pt of int | Ksm_code | Ksm_data | Kernel_code

(* One present PTE: [e_bits] is the raw 64-bit entry with the frame
   field zeroed (permission, pkey and A/D bits preserved verbatim);
   the frame is carried portably in [e_target]. *)
type entry = { e_index : int; e_bits : int64; e_target : fref }

type table = {
  t_frame : fref;
  t_level : int;
  t_va : Hw.Addr.va;  (** base VA the table's slot 0 translates *)
  t_entries : entry list;
}

type root = { r_frame : fref; r_copies : fref array }
type vcpu_area = { a_l3 : fref; a_frames : fref array }

type cpu_state = {
  c_kernel : bool;
  c_pkrs : int;
  c_if : bool;
  c_gs : int;
  c_kgs : int;
  c_cr3 : fref;
}

type vma_rec = {
  v_start : Hw.Addr.va;
  v_stop : Hw.Addr.va;
  v_prot : bool * bool * bool;  (** read, write, exec *)
  v_backing : Kernel_model.Vma.backing;
}

type fd_rec = { f_fd : int; f_pos : int; f_path : string }

type task_rec = {
  tk_pid : int;
  tk_parent : int;
  tk_next_fd : int;
  tk_aspace : int;
  tk_brk : Hw.Addr.va;
  tk_cursor : Hw.Addr.va;
  tk_vmas : vma_rec list;  (** sorted by start *)
  tk_pages : (Hw.Addr.vpn * fref) list;  (** sorted by vpn *)
  tk_fds : fd_rec list;  (** sorted by fd; regular files only *)
}

type t = {
  cfg : Cki.Config.t;
  segments : int array;  (** delegated segment sizes (frames) *)
  aux : aux_kind array;
  ptps : (fref * int) list;  (** declared PTPs with levels, sorted *)
  kernel_root : fref;
  template : (int * int64 * fref) list;  (** fixed L4 slots *)
  roots : root list;  (** kernel root first, then aspace roots by id *)
  tables : table list;  (** canonical traversal order *)
  pervcpu : vcpu_area array;
  cpus : cpu_state array;
  next_pid : int;
  next_as : int;
  buddy_blocks : (int * int) list;  (** (segment-0 offset, order), sorted *)
  aspaces : (int * fref) list;  (** aspace id -> root, sorted *)
  tasks : task_rec list;  (** sorted by pid *)
  dirs : string list;  (** tmpfs directories, parents first *)
  files : (string * string) list;  (** tmpfs regular files with contents *)
}

(* v2: the direct-map subtree (tables + template slot) left the image —
   its VA layout keys on physical addresses, so restore rebuilds it
   from the new segment bases instead of relocating stale keys. *)
let version = 2
let magic = "CKI-SNAPSHOT"

(* Frame field of a PTE: bits 12..50 (mirrors Hw.Pte's encoding). *)
let pfn_mask = Int64.shift_left (Int64.of_int ((1 lsl 39) - 1)) 12
let strip_pfn e = Int64.logand e (Int64.lognot pfn_mask)
let with_pfn bits pfn = Int64.logor (strip_pfn bits) (Int64.shift_left (Int64.of_int pfn) 12)

(* ------------------------------------------------------------------ *)
(* FNV-1a 64-bit checksum                                              *)
(* ------------------------------------------------------------------ *)

let fnv1a64 s =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 1099511628211L)
    s;
  !h

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  if String.length h mod 2 <> 0 then invalid_arg "string_of_hex";
  String.init (String.length h / 2) (fun i -> Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

let fref_str = function
  | Seg { seg; off } -> Printf.sprintf "S%d.%d" seg off
  | Aux i -> Printf.sprintf "A%d" i

let aux_kind_str = function
  | Pt l -> "pt" ^ string_of_int l
  | Ksm_code -> "ksm_code"
  | Ksm_data -> "ksm_data"
  | Kernel_code -> "kernel_code"

let backing_str = function
  | Kernel_model.Vma.Anon -> "anon"
  | Kernel_model.Vma.File { inode; offset } -> Printf.sprintf "file:%d:%d" inode offset
  | Kernel_model.Vma.Stack -> "stack"
  | Kernel_model.Vma.Heap -> "heap"

let bool01 b = if b then "1" else "0"

let payload (t : t) =
  let b = Buffer.create (64 * 1024) in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let c = t.cfg in
  line "cfg %s %s %s %s %s %s %d %d" (bool01 c.Cki.Config.opt2) (bool01 c.Cki.Config.opt3)
    (bool01 c.Cki.Config.hugepages) (bool01 c.Cki.Config.pti_in_gates)
    (bool01 c.Cki.Config.emulate_pvm_syscall) (bool01 c.Cki.Config.design_pku) c.Cki.Config.vcpus
    c.Cki.Config.segment_frames;
  line "segments %d%s" (Array.length t.segments)
    (Array.fold_left (fun acc n -> acc ^ " " ^ string_of_int n) "" t.segments);
  line "aux %d" (Array.length t.aux);
  Array.iteri (fun i k -> line "k %d %s" i (aux_kind_str k)) t.aux;
  line "ptps %d" (List.length t.ptps);
  List.iter (fun (r, lvl) -> line "p %s %d" (fref_str r) lvl) t.ptps;
  line "kernel_root %s" (fref_str t.kernel_root);
  line "template %d" (List.length t.template);
  List.iter (fun (slot, bits, r) -> line "s %d %Lx %s" slot bits (fref_str r)) t.template;
  line "roots %d" (List.length t.roots);
  List.iter
    (fun r ->
      line "r %s %d%s" (fref_str r.r_frame) (Array.length r.r_copies)
        (Array.fold_left (fun acc c -> acc ^ " " ^ fref_str c) "" r.r_copies))
    t.roots;
  line "tables %d" (List.length t.tables);
  List.iter
    (fun tb ->
      line "t %s %d %d %d" (fref_str tb.t_frame) tb.t_level tb.t_va (List.length tb.t_entries);
      List.iter
        (fun e -> line "e %d %Lx %s" e.e_index e.e_bits (fref_str e.e_target))
        tb.t_entries)
    t.tables;
  line "pervcpu %d" (Array.length t.pervcpu);
  Array.iter
    (fun a ->
      line "v %s %d%s" (fref_str a.a_l3) (Array.length a.a_frames)
        (Array.fold_left (fun acc f -> acc ^ " " ^ fref_str f) "" a.a_frames))
    t.pervcpu;
  line "cpus %d" (Array.length t.cpus);
  Array.iter
    (fun c ->
      line "c %s %d %s %d %d %s" (bool01 c.c_kernel) c.c_pkrs (bool01 c.c_if) c.c_gs c.c_kgs
        (fref_str c.c_cr3))
    t.cpus;
  line "kernel %d %d" t.next_pid t.next_as;
  line "buddy %d" (List.length t.buddy_blocks);
  List.iter (fun (off, order) -> line "b %d %d" off order) t.buddy_blocks;
  line "aspaces %d" (List.length t.aspaces);
  List.iter (fun (id, r) -> line "a %d %s" id (fref_str r)) t.aspaces;
  line "tasks %d" (List.length t.tasks);
  List.iter
    (fun tk ->
      line "task %d %d %d %d %d %d %d %d %d" tk.tk_pid tk.tk_parent tk.tk_next_fd tk.tk_aspace
        tk.tk_brk tk.tk_cursor (List.length tk.tk_vmas) (List.length tk.tk_pages)
        (List.length tk.tk_fds);
      List.iter
        (fun v ->
          let r, w, x = v.v_prot in
          line "m %d %d %s%s%s %s" v.v_start v.v_stop (bool01 r) (bool01 w) (bool01 x)
            (backing_str v.v_backing))
        tk.tk_vmas;
      List.iter (fun (vpn, r) -> line "g %d %s" vpn (fref_str r)) tk.tk_pages;
      List.iter (fun f -> line "f %d %d %s" f.f_fd f.f_pos (hex_of_string f.f_path)) tk.tk_fds)
    t.tasks;
  line "dirs %d" (List.length t.dirs);
  List.iter (fun d -> line "d %s" (hex_of_string d)) t.dirs;
  line "files %d" (List.length t.files);
  List.iter (fun (p, data) -> line "F %s %s" (hex_of_string p) (hex_of_string data)) t.files;
  Buffer.contents b

let encode t =
  let p = payload t in
  Printf.sprintf "%s v%d\nchecksum %016Lx\n%s" magic version (fnv1a64 p) p

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

type decode_error =
  | Bad_magic
  | Bad_version of int
  | Bad_checksum
  | Truncated
  | Malformed of string

let show_decode_error = function
  | Bad_magic -> "bad magic (not a CKI snapshot)"
  | Bad_version v -> Printf.sprintf "unsupported image version %d (expected %d)" v version
  | Bad_checksum -> "checksum mismatch (corrupted image)"
  | Truncated -> "truncated image"
  | Malformed s -> "malformed image: " ^ s

exception Bad of decode_error

let fref_of_str s =
  try
    if s = "" then raise (Bad (Malformed "empty frame ref"))
    else if s.[0] = 'A' then Aux (int_of_string (String.sub s 1 (String.length s - 1)))
    else if s.[0] = 'S' then
      match String.split_on_char '.' (String.sub s 1 (String.length s - 1)) with
      | [ seg; off ] -> Seg { seg = int_of_string seg; off = int_of_string off }
      | _ -> raise (Bad (Malformed ("frame ref " ^ s)))
    else raise (Bad (Malformed ("frame ref " ^ s)))
  with Failure _ -> raise (Bad (Malformed ("frame ref " ^ s)))

let aux_kind_of_str = function
  | "pt1" -> Pt 1
  | "pt2" -> Pt 2
  | "pt3" -> Pt 3
  | "pt4" -> Pt 4
  | "ksm_code" -> Ksm_code
  | "ksm_data" -> Ksm_data
  | "kernel_code" -> Kernel_code
  | s -> raise (Bad (Malformed ("aux kind " ^ s)))

let backing_of_str s =
  match String.split_on_char ':' s with
  | [ "anon" ] -> Kernel_model.Vma.Anon
  | [ "stack" ] -> Kernel_model.Vma.Stack
  | [ "heap" ] -> Kernel_model.Vma.Heap
  | [ "file"; inode; offset ] -> (
      try Kernel_model.Vma.File { inode = int_of_string inode; offset = int_of_string offset }
      with Failure _ -> raise (Bad (Malformed ("backing " ^ s))))
  | _ -> raise (Bad (Malformed ("backing " ^ s)))

let decode s =
  let lines = String.split_on_char '\n' s in
  let cursor = ref lines in
  let next () =
    match !cursor with
    | [] -> raise (Bad Truncated)
    | [ "" ] -> raise (Bad Truncated) (* trailing newline remainder *)
    | l :: rest ->
        cursor := rest;
        l
  in
  let words l = String.split_on_char ' ' l in
  let ints_exn l =
    try List.map int_of_string l
    with Failure _ -> raise (Bad (Malformed (String.concat " " l)))
  in
  let expect tag l =
    match words l with
    | w :: rest when w = tag -> rest
    | _ -> raise (Bad (Malformed ("expected " ^ tag ^ ", got: " ^ l)))
  in
  let counted tag =
    match expect tag (next ()) with
    | n :: rest -> (
        (try int_of_string n with Failure _ -> raise (Bad (Malformed tag))), rest)
    | [] -> raise (Bad (Malformed tag))
  in
  let repeat n f = List.init n (fun _ -> f ()) in
  let b01 = function
    | "1" -> true
    | "0" -> false
    | s -> raise (Bad (Malformed ("bool " ^ s)))
  in
  let hex64 s = try Int64.of_string ("0x" ^ s) with Failure _ -> raise (Bad (Malformed ("hex " ^ s))) in
  try
    (* Header *)
    (match words (next ()) with
    | [ m; v ] when m = magic -> (
        match int_of_string_opt (String.sub v 1 (String.length v - 1)) with
        | Some n when v.[0] = 'v' -> if n <> version then raise (Bad (Bad_version n))
        | _ -> raise (Bad Bad_magic))
    | _ -> raise (Bad Bad_magic));
    let claimed =
      match expect "checksum" (next ()) with
      | [ h ] -> hex64 h
      | _ -> raise (Bad (Malformed "checksum"))
    in
    let p = String.concat "\n" !cursor in
    if not (Int64.equal (fnv1a64 p) claimed) then raise (Bad Bad_checksum);
    (* Payload *)
    let cfg =
      match expect "cfg" (next ()) with
      | [ o2; o3; hp; pti; pvm; pku; vcpus; segf ] ->
          {
            Cki.Config.opt2 = b01 o2;
            opt3 = b01 o3;
            hugepages = b01 hp;
            pti_in_gates = b01 pti;
            emulate_pvm_syscall = b01 pvm;
            design_pku = b01 pku;
            vcpus = int_of_string vcpus;
            segment_frames = int_of_string segf;
          }
      | _ -> raise (Bad (Malformed "cfg"))
    in
    let nseg, rest = counted "segments" in
    let segments = Array.of_list (ints_exn rest) in
    if Array.length segments <> nseg then raise (Bad (Malformed "segments"));
    let naux, _ = counted "aux" in
    let aux =
      Array.of_list
        (repeat naux (fun () ->
             match expect "k" (next ()) with
             | [ _i; k ] -> aux_kind_of_str k
             | _ -> raise (Bad (Malformed "aux entry"))))
    in
    let nptp, _ = counted "ptps" in
    let ptps =
      repeat nptp (fun () ->
          match expect "p" (next ()) with
          | [ r; lvl ] -> (fref_of_str r, int_of_string lvl)
          | _ -> raise (Bad (Malformed "ptp")))
    in
    let kernel_root =
      match expect "kernel_root" (next ()) with
      | [ r ] -> fref_of_str r
      | _ -> raise (Bad (Malformed "kernel_root"))
    in
    let ntpl, _ = counted "template" in
    let template =
      repeat ntpl (fun () ->
          match expect "s" (next ()) with
          | [ slot; bits; r ] -> (int_of_string slot, hex64 bits, fref_of_str r)
          | _ -> raise (Bad (Malformed "template slot")))
    in
    let nroots, _ = counted "roots" in
    let roots =
      repeat nroots (fun () ->
          match expect "r" (next ()) with
          | frame :: n :: copies ->
              if int_of_string n <> List.length copies then
                raise (Bad (Malformed "root copy count"));
              { r_frame = fref_of_str frame; r_copies = Array.of_list (List.map fref_of_str copies) }
          | _ -> raise (Bad (Malformed "root")))
    in
    let ntables, _ = counted "tables" in
    let tables =
      repeat ntables (fun () ->
          match expect "t" (next ()) with
          | [ frame; lvl; va; n ] ->
              let n = int_of_string n in
              let entries =
                repeat n (fun () ->
                    match expect "e" (next ()) with
                    | [ idx; bits; target ] ->
                        { e_index = int_of_string idx; e_bits = hex64 bits; e_target = fref_of_str target }
                    | _ -> raise (Bad (Malformed "entry")))
              in
              {
                t_frame = fref_of_str frame;
                t_level = int_of_string lvl;
                t_va = int_of_string va;
                t_entries = entries;
              }
          | _ -> raise (Bad (Malformed "table")))
    in
    let nvcpu, _ = counted "pervcpu" in
    let pervcpu =
      Array.of_list
        (repeat nvcpu (fun () ->
             match expect "v" (next ()) with
             | l3 :: n :: frames ->
                 if int_of_string n <> List.length frames then
                   raise (Bad (Malformed "pervcpu frame count"));
                 { a_l3 = fref_of_str l3; a_frames = Array.of_list (List.map fref_of_str frames) }
             | _ -> raise (Bad (Malformed "pervcpu"))))
    in
    let ncpu, _ = counted "cpus" in
    let cpus =
      Array.of_list
        (repeat ncpu (fun () ->
             match expect "c" (next ()) with
             | [ k; pkrs; ifl; gs; kgs; cr3 ] ->
                 {
                   c_kernel = b01 k;
                   c_pkrs = int_of_string pkrs;
                   c_if = b01 ifl;
                   c_gs = int_of_string gs;
                   c_kgs = int_of_string kgs;
                   c_cr3 = fref_of_str cr3;
                 }
             | _ -> raise (Bad (Malformed "cpu"))))
    in
    let next_pid, next_as =
      match ints_exn (expect "kernel" (next ())) with
      | [ np; na ] -> (np, na)
      | _ -> raise (Bad (Malformed "kernel"))
    in
    let nblocks, _ = counted "buddy" in
    let buddy_blocks =
      repeat nblocks (fun () ->
          match ints_exn (expect "b" (next ())) with
          | [ off; order ] -> (off, order)
          | _ -> raise (Bad (Malformed "buddy block")))
    in
    let nas, _ = counted "aspaces" in
    let aspaces =
      repeat nas (fun () ->
          match expect "a" (next ()) with
          | [ id; r ] -> (int_of_string id, fref_of_str r)
          | _ -> raise (Bad (Malformed "aspace")))
    in
    let ntasks, _ = counted "tasks" in
    let tasks =
      repeat ntasks (fun () ->
          match ints_exn (expect "task" (next ())) with
          | [ pid; parent; next_fd; aspace; brk; cursor; nvmas; npages; nfds ] ->
              let vmas =
                repeat nvmas (fun () ->
                    match expect "m" (next ()) with
                    | [ start; stop; rwx; backing ] when String.length rwx = 3 ->
                        {
                          v_start = int_of_string start;
                          v_stop = int_of_string stop;
                          v_prot =
                            ( b01 (String.make 1 rwx.[0]),
                              b01 (String.make 1 rwx.[1]),
                              b01 (String.make 1 rwx.[2]) );
                          v_backing = backing_of_str backing;
                        }
                    | _ -> raise (Bad (Malformed "vma")))
              in
              let pages =
                repeat npages (fun () ->
                    match expect "g" (next ()) with
                    | [ vpn; r ] -> (int_of_string vpn, fref_of_str r)
                    | _ -> raise (Bad (Malformed "page")))
              in
              let fds =
                repeat nfds (fun () ->
                    match expect "f" (next ()) with
                    | [ fd; pos; path ] ->
                        { f_fd = int_of_string fd; f_pos = int_of_string pos; f_path = string_of_hex path }
                    | _ -> raise (Bad (Malformed "fd")))
              in
              {
                tk_pid = pid;
                tk_parent = parent;
                tk_next_fd = next_fd;
                tk_aspace = aspace;
                tk_brk = brk;
                tk_cursor = cursor;
                tk_vmas = vmas;
                tk_pages = pages;
                tk_fds = fds;
              }
          | _ -> raise (Bad (Malformed "task")))
    in
    let ndirs, _ = counted "dirs" in
    let dirs =
      repeat ndirs (fun () ->
          match expect "d" (next ()) with
          | [ p ] -> string_of_hex p
          | _ -> raise (Bad (Malformed "dir")))
    in
    let nfiles, _ = counted "files" in
    let files =
      repeat nfiles (fun () ->
          match expect "F" (next ()) with
          | [ p; data ] -> (string_of_hex p, string_of_hex data)
          | [ p ] -> (string_of_hex p, "")
          | _ -> raise (Bad (Malformed "file")))
    in
    Ok
      {
        cfg;
        segments;
        aux;
        ptps;
        kernel_root;
        template;
        roots;
        tables;
        pervcpu;
        cpus;
        next_pid;
        next_as;
        buddy_blocks;
        aspaces;
        tasks;
        dirs;
        files;
      }
  with
  | Bad e -> Error e
  | Failure _ -> Error (Malformed "number")
  | Invalid_argument _ -> Error (Malformed "field")

let write_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (encode t))

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> decode s
  | exception Sys_error _ -> Error Truncated
