(** The snapshot image format: a deterministic, versioned, checksummed
    record of one quiesced CKI container.

    {b Position independence.} No absolute frame number appears in an
    image.  Every frame is a {!fref}: an offset inside a delegated
    segment ([Seg]), or an index into the auxiliary-frame table ([Aux])
    for frames allocated outside the segments (KSM-private page tables,
    KSM code/data, per-vCPU areas, the guest kernel image).  Restore
    delegates fresh segments, allocates fresh auxiliary frames and
    re-bases every reference — including the frame field of every PTE —
    so an image can land at any hPA on any machine.

    {b Preserved invariants.} The image carries the monitor's full
    claimed state (declared PTPs with levels, registered roots with
    their per-vCPU copies, the fixed template slots) {e and} the raw
    permission/pkey/accessed/dirty bits of every live PTE, so a restored
    container re-establishes I1–I3, W^X, the kernel-exec freeze and
    per-vCPU copy coherence exactly; the restore path re-verifies this
    with the analysis scanner rather than trusting the image.

    {b Wire form.} Line-oriented text: a [CKI-SNAPSHOT v<n>] magic
    line, an FNV-1a-64 checksum of the payload, then the payload with
    every unordered collection sorted — encoding is a pure function of
    the logical container state, so capture∘restore∘capture is
    byte-identical.  Excluded by design: container id, PCID, clock
    time, TLB contents (an empty TLB on restore is just a full flush)
    and the guest kernel's direct map — its VA layout keys on physical
    addresses, so {!Cki.Ksm.restore} rebuilds it from the new segment
    bases rather than relocating stale keys. *)

type fref = Seg of { seg : int; off : int } | Aux of int

type aux_kind = Pt of int | Ksm_code | Ksm_data | Kernel_code

type entry = {
  e_index : int;
  e_bits : int64;  (** raw PTE with the frame field zeroed *)
  e_target : fref;
}

type table = {
  t_frame : fref;
  t_level : int;
  t_va : Hw.Addr.va;  (** base VA the table's slot 0 translates *)
  t_entries : entry list;
}

type root = { r_frame : fref; r_copies : fref array }
type vcpu_area = { a_l3 : fref; a_frames : fref array }

type cpu_state = {
  c_kernel : bool;
  c_pkrs : int;
  c_if : bool;
  c_gs : int;
  c_kgs : int;
  c_cr3 : fref;
}

type vma_rec = {
  v_start : Hw.Addr.va;
  v_stop : Hw.Addr.va;
  v_prot : bool * bool * bool;  (** read, write, exec *)
  v_backing : Kernel_model.Vma.backing;
}

type fd_rec = { f_fd : int; f_pos : int; f_path : string }

type task_rec = {
  tk_pid : int;
  tk_parent : int;
  tk_next_fd : int;
  tk_aspace : int;
  tk_brk : Hw.Addr.va;
  tk_cursor : Hw.Addr.va;
  tk_vmas : vma_rec list;  (** sorted by start *)
  tk_pages : (Hw.Addr.vpn * fref) list;  (** sorted by vpn *)
  tk_fds : fd_rec list;  (** sorted by fd; regular files only *)
}

type t = {
  cfg : Cki.Config.t;
  segments : int array;  (** delegated segment sizes in frames *)
  aux : aux_kind array;
  ptps : (fref * int) list;  (** declared PTPs with levels, sorted *)
  kernel_root : fref;
  template : (int * int64 * fref) list;
      (** fixed L4 slots, without the rebuilt direct-map slot *)
  roots : root list;  (** kernel root first, then aspace roots by id *)
  tables : table list;  (** canonical traversal order *)
  pervcpu : vcpu_area array;
  cpus : cpu_state array;
  next_pid : int;
  next_as : int;
  buddy_blocks : (int * int) list;  (** (segment-0 offset, order), sorted *)
  aspaces : (int * fref) list;  (** aspace id -> root, sorted *)
  tasks : task_rec list;  (** sorted by pid *)
  dirs : string list;  (** tmpfs directories, parents first *)
  files : (string * string) list;  (** tmpfs regular files with contents *)
}

val version : int
val magic : string

val strip_pfn : int64 -> int64
(** Zero a PTE's frame field (bits 12..50), keeping every other bit. *)

val with_pfn : int64 -> Hw.Addr.pfn -> int64
(** Install a relocated frame number into a stripped PTE. *)

val fnv1a64 : string -> int64

val encode : t -> string
(** Header + checksum + payload; deterministic. *)

type decode_error =
  | Bad_magic
  | Bad_version of int
  | Bad_checksum
  | Truncated
  | Malformed of string

val show_decode_error : decode_error -> string

val decode : string -> (t, decode_error) result
(** Verifies magic, version and checksum before parsing; never raises. *)

val write_file : string -> t -> unit
val read_file : string -> (t, decode_error) result
