(** Warm pool of frozen templates serving instant scale-out.

    {!Cki.Host.Warm_pool} instantiated at {!Template.t}: [create]
    pre-boots and freezes [target] templates; {!spawn_fast} rotates to
    the next one and warm-clones it, paying neither guest-kernel boot
    nor full-image copy.  A take from a ready template is a hit; a take
    from an empty pool builds a template inline (the cold path) and is
    counted as a miss — {!refill_low_water} is the background hook that
    keeps bursts ahead of that cliff. *)

type t

type stats = { hits : int; misses : int; refills : int; size : int; served : int }

val create : ?low_water:int -> target:int -> make:(unit -> Template.t) -> unit -> t
(** [make] typically boots a container, runs its init workload, then
    {!Template.create}s it; it must raise on failure. [low_water]
    (default 0) arms {!refill_low_water}. *)

val spawn_fast : ?verify:bool -> t -> (Cki.Container.t, Template.error) result

val refill_low_water : t -> int
(** Top the pool back to target when below the low-water mark; returns
    the number of templates built. Call from the host's idle path. *)

val drain : t -> int
(** Evict every ready template; returns the number drained.  Templates
    with no outstanding clone references are destroyed (frames freed);
    templates still backing live CoW clones are {e retired} instead —
    freeing their shared frames would corrupt the clones — and freed
    later by {!reap_retired}.  The next spawn is a miss unless
    {!refill_low_water} runs first. *)

val reap_retired : t -> int
(** Destroy retired templates whose last clone reference has dropped;
    returns the number freed.  Call from the host's idle path alongside
    {!refill_low_water}. *)

val retired_count : t -> int

val size : t -> int
val prebooted : t -> int
val served : t -> int
val stats : t -> stats
