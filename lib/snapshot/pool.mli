(** Warm pool of frozen templates serving instant scale-out.

    {!Cki.Host.Warm_pool} instantiated at {!Template.t}: [create]
    pre-boots and freezes [target] templates; {!spawn_fast} rotates to
    the next one and warm-clones it, paying neither guest-kernel boot
    nor full-image copy. *)

type t

val create : target:int -> make:(unit -> Template.t) -> t
(** [make] typically boots a container, runs its init workload, then
    {!Template.create}s it; it must raise on failure. *)

val spawn_fast : ?verify:bool -> t -> (Cki.Container.t, Template.error) result

val size : t -> int
val prebooted : t -> int
val served : t -> int
