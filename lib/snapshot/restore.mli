(** Restore and warm-clone: rebuild containers from images.

    Both paths delegate a fresh segment, allocate fresh KSM-private
    frames, and rewrite every captured PTE with relocated frame numbers
    through {!Cki.Ksm.restore} — so the monitor's declared-PTP set,
    root registrations and the kernel-exec freeze are re-established,
    never trusted from the image.  Unless [verify] is [false], the
    result is checked with {!Analysis.check_machine} before being
    handed out and a finding turns into [Verify_failed].

    The {e clone} path additionally shares the template's frozen
    read-only frames: user-range leaf PTEs over shared frames are
    redirected at the template (write bit cleared, reference taken) and
    the guest kernel image is shared outright, so a clone materializes
    only metadata until writes break CoW. *)

type error =
  | Unsupported_image of string
  | Verify_failed of string

val show_error : error -> string

val restore :
  ?env:Virt.Env.t -> ?verify:bool -> Cki.Host.t -> Image.t -> (Cki.Container.t, error) result
(** Full restore onto [host] (same or different machine): fresh
    container id, PCID and hPA segment; every frame's contents conceptually
    copied (charged at {!Hw.Cost.restore_frame} per frame). *)

val clone_of :
  ?verify:bool ->
  Cki.Host.t ->
  Image.t ->
  orig_seg_bases:Hw.Addr.pfn array ->
  orig_aux:Hw.Addr.pfn array ->
  (Cki.Container.t, error) result
(** Warm clone against a live frozen template on the {e same} machine
    ([orig_*] from {!Capture.capture_full}'s map say where the
    template's frames live).  Use {!Template.clone} rather than calling
    this directly. *)

val materialized_frames : Cki.Container.t -> int
(** Frames the container has actually materialized: KSM-private state,
    own page tables and kernel image, plus resident pages minus those
    still CoW-shared with a template.  Untouched free segment frames
    are excluded — they are address space, not memory. *)
