(* Capture: walk a quiesced container into an Image.t.

   The walk starts from the monitor's registered roots (kernel root
   first, then aspace roots in id order, each followed by its per-vCPU
   copies) and records every reachable page table in discovery order —
   a canonical order, so re-capturing a restored container yields a
   byte-identical image.  A completeness sweep over the whole frame
   array then proves the image is closed: every frame the container
   owns outside its segments must have been reached. *)

type error =
  | Cow_pending of int  (** task pid with un-broken CoW pages *)
  | Unsupported_fd of { pid : int; fd : int }
  | Device_active of { queue : string; unreclaimed : int }
  | Foreign_frame of Hw.Addr.pfn
  | Unreachable_frame of Hw.Addr.pfn
  | Unregistered_root of Hw.Addr.pfn

let show_error = function
  | Cow_pending pid ->
      Printf.sprintf "task %d has un-broken CoW pages (capture a cold or fully-materialized container)" pid
  | Unsupported_fd { pid; fd } ->
      Printf.sprintf "task %d holds fd %d of an unsupported kind (pipe/socket)" pid fd
  | Device_active { queue; unreclaimed } ->
      Printf.sprintf "virtio queue %s has %d unreclaimed descriptor chains (quiesce I/O before capture)"
        queue unreclaimed
  | Foreign_frame pfn -> Printf.sprintf "page tables reference foreign frame %d" pfn
  | Unreachable_frame pfn -> Printf.sprintf "container-owned frame %d is unreachable from any root" pfn
  | Unregistered_root pfn -> Printf.sprintf "declared root %d is not an aspace or kernel root" pfn

type map = { m_seg_bases : Hw.Addr.pfn array; m_aux : Hw.Addr.pfn array }

exception Fail of error

(* Span of one entry at a level: 4 KiB at L1, 2 MiB at L2, ... *)
let span lvl = 1 lsl (Hw.Addr.page_shift + (9 * (lvl - 1)))

let capture_full (c : Cki.Container.t) : (Image.t * map, error) result =
  let ksm = c.ksm in
  let id = c.container_id in
  let machine = Cki.Host.machine c.host in
  let mem = Hw.Machine.mem machine in
  let clock = Hw.Machine.clock machine in
  let kernel = c.backend.Virt.Backend.kernel in
  let segs = Cki.Ksm.segments ksm in
  let seg_bases = Array.of_list (List.map fst segs) in
  let seg_sizes = Array.of_list (List.map snd segs) in
  let seg_of pfn =
    let found = ref None in
    Array.iteri
      (fun i base -> if pfn >= base && pfn < base + seg_sizes.(i) then found := Some (i, pfn - base))
      seg_bases;
    !found
  in
  (* Auxiliary frames, numbered in first-reference order. *)
  let aux_ids : (Hw.Addr.pfn, int) Hashtbl.t = Hashtbl.create 64 in
  let aux_rev = ref [] in
  let aux_count = ref 0 in
  let register_aux pfn =
    match Hashtbl.find_opt aux_ids pfn with
    | Some i -> i
    | None ->
        let kind =
          match (Hw.Phys_mem.owner mem pfn, Hw.Phys_mem.kind mem pfn) with
          | Hw.Phys_mem.Ksm k, Hw.Phys_mem.Page_table l when k = id -> Image.Pt l
          | Hw.Phys_mem.Ksm k, Hw.Phys_mem.Ksm_code when k = id -> Image.Ksm_code
          | Hw.Phys_mem.Ksm k, Hw.Phys_mem.Ksm_data when k = id -> Image.Ksm_data
          | Hw.Phys_mem.Container k, Hw.Phys_mem.Kernel_code when k = id -> Image.Kernel_code
          | _ -> raise (Fail (Foreign_frame pfn))
        in
        let i = !aux_count in
        incr aux_count;
        Hashtbl.replace aux_ids pfn i;
        aux_rev := (pfn, kind) :: !aux_rev;
        i
  in
  let ref_of pfn =
    match seg_of pfn with
    | Some (seg, off) -> Image.Seg { seg; off }
    | None -> Image.Aux (register_aux pfn)
  in
  (* Table walk. *)
  let visited : (Hw.Addr.pfn, unit) Hashtbl.t = Hashtbl.create 256 in
  let tables_rev = ref [] in
  let rec emit_table lvl pfn va_base =
    if not (Hashtbl.mem visited pfn) then begin
      Hashtbl.replace visited pfn ();
      let frame_ref = ref_of pfn in
      let entries = ref [] in
      let children = ref [] in
      for idx = 0 to Hw.Addr.entries_per_table - 1 do
        (* The direct-map subtree is deliberately not captured: its VA
           layout keys on this machine's physical addresses
           (va = direct_map_base + pa), so Ksm.restore rebuilds it from
           the new segment bases instead of relocating stale keys. *)
        let skip = lvl = Hw.Addr.levels && idx = Cki.Layout.l4_direct in
        let e = Hw.Phys_mem.read_entry mem ~pfn ~index:idx in
        if (not skip) && Hw.Pte.is_present e then begin
          let target = Hw.Pte.pfn e in
          entries :=
            { Image.e_index = idx; e_bits = Image.strip_pfn e; e_target = ref_of target } :: !entries;
          let leaf = lvl = 1 || (lvl = 2 && Hw.Pte.is_huge e) in
          if not leaf then children := (target, va_base + (idx * span lvl)) :: !children
        end
      done;
      Hw.Clock.charge clock "snapshot_capture_table" Hw.Cost.restore_frame;
      tables_rev :=
        { Image.t_frame = frame_ref; t_level = lvl; t_va = va_base; t_entries = List.rev !entries }
        :: !tables_rev;
      List.iter (fun (child, va) -> emit_table (lvl - 1) child va) (List.rev !children)
    end
  in
  let copies_of root =
    match Cki.Ksm.root_copies ksm root with
    | Some a -> a
    | None -> raise (Fail (Unregistered_root root))
  in
  try
    (* Quiescence: no task may still share template frames. *)
    List.iter
      (fun (task : Kernel_model.Task.t) ->
        if Kernel_model.Mm.cow_count task.Kernel_model.Task.mm > 0 then
          raise (Fail (Cow_pending task.Kernel_model.Task.pid)))
      (Kernel_model.Kernel.tasks kernel);
    (* ...and no VirtIO queue may hold in-flight or unreclaimed chains:
       capturing mid-I/O would freeze descriptors the host backend still
       owns. *)
    (match Kernel_model.Kernel.io_unreclaimed kernel with
    | [] -> ()
    | (queue, unreclaimed) :: _ -> raise (Fail (Device_active { queue; unreclaimed })));
    let kroot = Cki.Ksm.kernel_root ksm in
    let aspace_list =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.aspaces [] |> List.sort compare
    in
    (* Seed the walk in canonical order: root, its copies, next root... *)
    let roots =
      List.map
        (fun root ->
          let copies = copies_of root in
          let r = { Image.r_frame = ref_of root; r_copies = Array.map ref_of copies } in
          emit_table Hw.Addr.levels root 0;
          Array.iter (fun copy -> emit_table Hw.Addr.levels copy 0) copies;
          r)
        (kroot :: List.map snd aspace_list)
    in
    (* Every monitor-registered root must have been seeded. *)
    List.iter
      (fun (root, _) -> if not (Hashtbl.mem visited root) then raise (Fail (Unregistered_root root)))
      (Cki.Ksm.roots ksm);
    (* The direct-map interior tables are KSM-owned but excluded from
       the image (restore rebuilds them); exempt them from the closure
       sweep below. *)
    let direct_tables : (Hw.Addr.pfn, unit) Hashtbl.t = Hashtbl.create 64 in
    let rec collect_direct lvl pfn =
      if not (Hashtbl.mem direct_tables pfn) then begin
        Hashtbl.replace direct_tables pfn ();
        if lvl > 1 then
          for idx = 0 to Hw.Addr.entries_per_table - 1 do
            let e = Hw.Phys_mem.read_entry mem ~pfn ~index:idx in
            if Hw.Pte.is_present e then collect_direct (lvl - 1) (Hw.Pte.pfn e)
          done
      end
    in
    let direct_link = Hw.Phys_mem.read_entry mem ~pfn:kroot ~index:Cki.Layout.l4_direct in
    if Hw.Pte.is_present direct_link then collect_direct 3 (Hw.Pte.pfn direct_link);
    (* Completeness: every frame this container owns outside its
       segments must be in the auxiliary table by now. *)
    for pfn = 0 to Hw.Phys_mem.total_frames mem - 1 do
      match Hw.Phys_mem.owner mem pfn with
      | Hw.Phys_mem.Ksm k when k = id ->
          if not (Hashtbl.mem aux_ids pfn || Hashtbl.mem direct_tables pfn) then
            raise (Fail (Unreachable_frame pfn))
      | Hw.Phys_mem.Container k when k = id && not (Cki.Ksm.owns_frame ksm pfn) ->
          if not (Hashtbl.mem aux_ids pfn) then raise (Fail (Unreachable_frame pfn))
      | _ -> ()
    done;
    (* Monitor metadata.  The direct-map template slot is omitted along
       with its subtree. *)
    let ptps =
      Cki.Ksm.declared_ptps ksm |> List.map (fun (pfn, lvl) -> (ref_of pfn, lvl)) |> List.sort compare
    in
    let template =
      Cki.Ksm.template_slots ksm
      |> List.filter (fun slot -> slot <> Cki.Layout.l4_direct)
      |> List.map (fun slot ->
             let e = Hw.Phys_mem.read_entry mem ~pfn:kroot ~index:slot in
             (slot, Image.strip_pfn e, ref_of (Hw.Pte.pfn e)))
    in
    let pervcpu =
      Array.map
        (fun (frames, l3) -> { Image.a_l3 = ref_of l3; a_frames = Array.map ref_of frames })
        (Cki.Pervcpu.export (Cki.Ksm.pervcpu ksm))
    in
    let cpus =
      Array.map
        (fun (cpu : Hw.Cpu.t) ->
          {
            Image.c_kernel = (cpu.Hw.Cpu.mode = Hw.Cpu.Kernel);
            c_pkrs = cpu.Hw.Cpu.pkrs;
            c_if = cpu.Hw.Cpu.if_flag;
            c_gs = cpu.Hw.Cpu.gs_base;
            c_kgs = cpu.Hw.Cpu.kernel_gs_base;
            c_cr3 = ref_of cpu.Hw.Cpu.cr3;
          })
        c.cpus
    in
    (* Guest kernel state.  Buddy blocks are recorded as *linearized*
       offsets — segment sizes summed in order, plus the offset inside
       the owning segment — so a scatter-delegated (multi-zone) buddy
       round-trips without changing the image format: with a single
       segment the linear offset is exactly [pfn - base].  Blocks never
       span zones, so each block lives in exactly one segment. *)
    let seg_starts =
      let acc = Array.make (Array.length seg_sizes) 0 in
      for i = 1 to Array.length seg_sizes - 1 do
        acc.(i) <- acc.(i - 1) + seg_sizes.(i - 1)
      done;
      acc
    in
    let buddy_blocks =
      Kernel_model.Buddy.allocated_blocks c.buddy
      |> List.map (fun (pfn, order) ->
             match seg_of pfn with
             | Some (seg, off) -> (seg_starts.(seg) + off, order)
             | None -> raise (Fail (Foreign_frame pfn)))
    in
    let fs = Kernel_model.Kernel.fs kernel in
    let ino_path : (int, string) Hashtbl.t = Hashtbl.create 64 in
    let dirs_rev = ref [] in
    let files_rev = ref [] in
    let rec walk path inode =
      Hashtbl.replace ino_path (Kernel_model.Tmpfs.ino inode) (if path = "" then "/" else path);
      if Kernel_model.Tmpfs.is_dir inode then begin
        if path <> "" then dirs_rev := path :: !dirs_rev;
        List.iter
          (fun name ->
            let child = path ^ "/" ^ name in
            walk child (Kernel_model.Tmpfs.resolve fs child))
          (List.sort compare (Kernel_model.Tmpfs.readdir inode))
      end
      else
        let n = Kernel_model.Tmpfs.size inode in
        files_rev := (path, Bytes.to_string (Kernel_model.Tmpfs.read fs inode ~off:0 ~n)) :: !files_rev
    in
    walk "" (Kernel_model.Tmpfs.resolve fs "/");
    let tasks =
      List.map
        (fun (task : Kernel_model.Task.t) ->
          let mm = task.Kernel_model.Task.mm in
          let vmas = ref [] in
          Kernel_model.Mm.iter_vmas mm (fun (a : Kernel_model.Vma.area) ->
              vmas :=
                {
                  Image.v_start = a.Kernel_model.Vma.start;
                  v_stop = a.Kernel_model.Vma.stop;
                  v_prot =
                    ( a.Kernel_model.Vma.prot.Kernel_model.Vma.read,
                      a.Kernel_model.Vma.prot.Kernel_model.Vma.write,
                      a.Kernel_model.Vma.prot.Kernel_model.Vma.exec );
                  v_backing = a.Kernel_model.Vma.backing;
                }
                :: !vmas);
          let pages = ref [] in
          Kernel_model.Mm.iter_pages mm (fun vpn pfn -> pages := (vpn, ref_of pfn) :: !pages);
          let fds =
            Hashtbl.fold (fun fd obj acc -> (fd, obj) :: acc) task.Kernel_model.Task.fds []
            |> List.sort compare
            |> List.map (fun (fd, obj) ->
                   match obj with
                   | Kernel_model.Task.File f -> (
                       match Hashtbl.find_opt ino_path (Kernel_model.Tmpfs.ino f.Kernel_model.Task.inode) with
                       | Some path ->
                           { Image.f_fd = fd; f_pos = f.Kernel_model.Task.pos; f_path = path }
                       | None ->
                           raise (Fail (Unsupported_fd { pid = task.Kernel_model.Task.pid; fd })))
                   | Kernel_model.Task.Pipe_read _ | Kernel_model.Task.Pipe_write _
                   | Kernel_model.Task.Socket _ ->
                       raise (Fail (Unsupported_fd { pid = task.Kernel_model.Task.pid; fd })))
          in
          {
            Image.tk_pid = task.Kernel_model.Task.pid;
            tk_parent = task.Kernel_model.Task.parent;
            tk_next_fd = task.Kernel_model.Task.next_fd;
            tk_aspace = Kernel_model.Mm.aspace mm;
            tk_brk = Kernel_model.Mm.brk_now mm;
            tk_cursor = Kernel_model.Mm.mmap_cursor_now mm;
            tk_vmas = List.sort (fun a b -> compare a.Image.v_start b.Image.v_start) !vmas;
            tk_pages = List.sort compare !pages;
            tk_fds = fds;
          })
        (Kernel_model.Kernel.tasks kernel)
    in
    let aux = Array.of_list (List.rev_map snd !aux_rev) in
    let m_aux = Array.of_list (List.rev_map fst !aux_rev) in
    let image =
      {
        Image.cfg = c.cfg;
        segments = seg_sizes;
        aux;
        ptps;
        kernel_root = ref_of kroot;
        template;
        roots;
        tables = List.rev !tables_rev;
        pervcpu;
        cpus;
        next_pid = Kernel_model.Kernel.next_pid kernel;
        next_as = !(c.next_as);
        buddy_blocks = List.sort compare buddy_blocks;
        aspaces = List.map (fun (aid, root) -> (aid, ref_of root)) aspace_list;
        tasks;
        dirs = List.rev !dirs_rev;
        files = List.rev !files_rev;
      }
    in
    Ok (image, { m_seg_bases = seg_bases; m_aux })
  with Fail e -> Error e

let capture c = Result.map fst (capture_full c)
