(** Capture a quiesced CKI container into a position-independent image.

    The walk starts from the monitor's registered roots (kernel root
    first, then address-space roots in id order, each followed by its
    per-vCPU copies) and records every reachable page table in
    discovery order — a canonical order, so re-capturing a restored
    container yields a byte-identical image.  A completeness sweep over
    the whole frame array then proves closure: every frame the
    container owns outside its delegated segments (KSM-private state,
    the kernel image) must have been reached, and no referenced frame
    may belong to anyone else. *)

type error =
  | Cow_pending of int
      (** A task still shares CoW frames with a template; capture
          requires a fully-materialized container. *)
  | Unsupported_fd of { pid : int; fd : int }
      (** Pipes and sockets are connection state, not image state. *)
  | Device_active of { queue : string; unreclaimed : int }
      (** A VirtIO queue holds in-flight or unreclaimed descriptor
          chains; I/O must quiesce before capture. *)
  | Foreign_frame of Hw.Addr.pfn
      (** A page table references a frame outside the container. *)
  | Unreachable_frame of Hw.Addr.pfn
      (** A container-owned frame no root reaches — the image would
          silently leak it. *)
  | Unregistered_root of Hw.Addr.pfn

val show_error : error -> string

type map = {
  m_seg_bases : Hw.Addr.pfn array;  (** segment index -> live base *)
  m_aux : Hw.Addr.pfn array;  (** aux index -> live frame *)
}
(** Where the image's frames live in the captured container — consumed
    by the warm-clone path, which shares those frames CoW. *)

val capture_full : Cki.Container.t -> (Image.t * map, error) result
val capture : Cki.Container.t -> (Image.t, error) result
