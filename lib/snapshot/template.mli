(** Frozen in-memory clone templates.

    {!create} captures the image {e first} (so the image records the
    container's normal, writable state), then freezes the live
    container in place: every resident user page is downgraded to
    read-only through the KSM path — in the owning address space {e
    and} the guest kernel's direct map, its writable alias — with an
    INVLPG on every vCPU for both addresses, and the frame is marked
    shared so the allocator pins it.  The guest kernel image is marked
    shared too.

    {!clone} then builds containers whose leaf PTEs reference the
    template's frames read-only; writes break CoW per page.  A frozen
    template still passes the analysis scanner, and so must every
    clone. *)

type t

type error =
  | Capture_error of Capture.error
  | Restore_error of Restore.error
  | Freeze_error of string

val show_error : error -> string

val create : Cki.Container.t -> (t, error) result
(** Capture + freeze.  The container must be quiesced (no un-broken CoW
    pages, no live pipes/sockets); on error it is left unfrozen. *)

val clone : ?verify:bool -> t -> (Cki.Container.t, error) result
(** New container on the template's host sharing its frozen frames CoW.
    Cross-machine scale-out uses {!Restore.restore} with {!image}. *)

val container : t -> Cki.Container.t
val image : t -> Image.t
val map : t -> Capture.map

val in_use : t -> bool
(** [true] while any CoW child still references one of the template's
    shared frames (refcount > 0) — destroying it then would hand a live
    clone's memory to the next allocation. *)

val destroy : t -> unit
(** Tear the template's container down and free its frames.
    @raise Invalid_argument if {!in_use} — callers that may race live
    clones (pool drain, migration cutover) must retire the template and
    reap it once its last clone is gone. *)
