(* Restore: rebuild a container from an image, relocating every frame.

   Two modes share one engine:

   - full restore ([restore]): delegate a fresh segment, allocate fresh
     auxiliary frames, rewrite every PTE through [Ksm.restore] with
     relocated frame numbers, and charge a per-frame copy cost — the
     same image restores onto any machine;

   - warm clone ([clone_of]): same rebuild, but leaf PTEs over shared
     read-only template frames are redirected at the template's frames
     (write bit cleared, refcount taken) instead of copies, and the
     guest kernel image is shared outright.  The clone's own reserved
     frames stay unmaterialized until a write breaks CoW, so the
     incremental footprint is metadata plus dirtied pages.

   Either way the result is re-verified with the analysis scanner
   before being handed out: a restore cannot silently violate I1-I3. *)

type error =
  | Unsupported_image of string
  | Verify_failed of string

let show_error = function
  | Unsupported_image s -> "unsupported image: " ^ s
  | Verify_failed s -> "restored container failed verification:\n" ^ s

exception Fail of error

let span lvl = 1 lsl (Hw.Addr.page_shift + (9 * (lvl - 1)))

(* [share]: (template segment bases, template aux frames) — present in
   clone mode, where the template lives on the same machine. *)
let rebuild ?(env = Virt.Env.Bare_metal) ~verify ~share (host : Cki.Host.t) (image : Image.t) =
  if Array.length image.Image.segments = 0 then
    raise (Fail (Unsupported_image "image has no segments"));
  let machine = Cki.Host.machine host in
  let mem = Hw.Machine.mem machine in
  let clock = Hw.Machine.clock machine in
  let cfg = image.Image.cfg in
  let container_id = Cki.Host.fresh_container_id host in
  (* Every reference taken on a template frame, so a failed rebuild can
     give them back. *)
  let taken = ref [] in
  let take_ref pfn =
    Hw.Phys_mem.incr_ref mem pfn;
    taken := pfn :: !taken
  in
  (* Undo a partial rebuild: drop template references, reclaim the
     delegated segment(s), and free every frame the aborted container
     still owns (auxiliary frames, KSM-private state, fresh direct-map
     tables).  The fresh container id and PCID number are burned, but
     no memory leaks and no refcount stays inflated. *)
  let rollback () =
    List.iter (fun pfn -> Hw.Phys_mem.decr_ref mem pfn) !taken;
    Cki.Host.reclaim_segment host ~container:container_id;
    for pfn = 0 to Hw.Phys_mem.total_frames mem - 1 do
      match Hw.Phys_mem.owner mem pfn with
      | (Hw.Phys_mem.Ksm k | Hw.Phys_mem.Container k) when k = container_id ->
          Hw.Phys_mem.free mem pfn
      | _ -> ()
    done
  in
  try
  let pcid = Hw.Machine.fresh_pcid machine in
  let bases =
    Array.map
      (fun frames -> fst (Cki.Host.delegate_segment host ~container:container_id ~frames))
      image.Image.segments
  in
  (* Auxiliary frames: fresh allocations, except that a clone shares the
     template's (immutable, frozen) guest kernel image outright. *)
  let aux_pfns =
    Array.mapi
      (fun i kind ->
        match (kind, share) with
        | Image.Kernel_code, Some (_, orig_aux) ->
            let pfn = orig_aux.(i) in
            take_ref pfn;
            pfn
        | _ ->
            let owner, k =
              match kind with
              | Image.Pt l -> (Hw.Phys_mem.Ksm container_id, Hw.Phys_mem.Page_table l)
              | Image.Ksm_code -> (Hw.Phys_mem.Ksm container_id, Hw.Phys_mem.Ksm_code)
              | Image.Ksm_data -> (Hw.Phys_mem.Ksm container_id, Hw.Phys_mem.Ksm_data)
              | Image.Kernel_code -> (Hw.Phys_mem.Container container_id, Hw.Phys_mem.Kernel_code)
            in
            Hw.Clock.charge clock "snapshot_restore_frame" Hw.Cost.restore_frame;
            Hw.Phys_mem.alloc mem ~owner ~kind:k)
      image.Image.aux
  in
  let reloc = function
    | Image.Seg { seg; off } -> bases.(seg) + off
    | Image.Aux i -> aux_pfns.(i)
  in
  (* Is this leaf a CoW share of a frozen template frame? *)
  let shared_target = function
    | Image.Seg { seg; off } -> (
        match share with
        | Some (orig_bases, _) when Hw.Phys_mem.is_shared_ro mem (orig_bases.(seg) + off) ->
            Some (orig_bases.(seg) + off)
        | _ -> None)
    | Image.Aux _ -> None
  in
  let i_tables =
    List.map
      (fun (t : Image.table) ->
        let entries =
          List.map
            (fun (e : Image.entry) ->
              let leaf =
                t.Image.t_level = 1 || (t.Image.t_level = 2 && Hw.Pte.is_huge e.Image.e_bits)
              in
              let va = t.Image.t_va + (e.Image.e_index * span t.Image.t_level) in
              match (if leaf && Cki.Layout.in_user va then shared_target e.Image.e_target else None) with
              | Some orig ->
                  (* Share the template's frame read-only; the first
                     write breaks CoW through the KSM path. *)
                  take_ref orig;
                  Hw.Clock.charge clock "snapshot_cow_map" Hw.Cost.cow_map_pte;
                  (e.Image.e_index, Hw.Pte.with_writable (Image.with_pfn e.Image.e_bits orig) false)
              | None -> (e.Image.e_index, Image.with_pfn e.Image.e_bits (reloc e.Image.e_target)))
            t.Image.t_entries
        in
        (reloc t.Image.t_frame, entries))
      image.Image.tables
  in
  let pervcpu =
    Cki.Pervcpu.import
      (Array.map
         (fun (a : Image.vcpu_area) -> (Array.map reloc a.Image.a_frames, reloc a.Image.a_l3))
         image.Image.pervcpu)
  in
  let ksm =
    Cki.Ksm.restore mem clock ~container_id ~cfg ~pervcpu
      {
        Cki.Ksm.i_segments =
          Array.to_list (Array.mapi (fun i base -> (base, image.Image.segments.(i))) bases);
        i_ptps = List.map (fun (r, lvl) -> (reloc r, lvl)) image.Image.ptps;
        i_roots =
          List.map
            (fun (r : Image.root) -> (reloc r.Image.r_frame, Array.map reloc r.Image.r_copies))
            image.Image.roots;
        i_kernel_root = reloc image.Image.kernel_root;
        i_template =
          List.map
            (fun (slot, bits, target) -> (slot, Image.with_pfn bits (reloc target)))
            image.Image.template;
        i_tables;
      }
  in
  (* Guest buddy allocator: same block layout, relocated bases — one
     zone per delegated segment.  Block offsets in the image are
     linearized over the segment sizes (see capture); map each back to
     its owning segment before reserving.  A full restore pays the copy
     of every allocated frame's contents; a clone shares them and pays
     per-PTE above. *)
  let buddy =
    Kernel_model.Buddy.create_zones
      ~segments:(Array.to_list (Array.mapi (fun i base -> (base, image.Image.segments.(i))) bases))
  in
  let seg_starts =
    let acc = Array.make (Array.length image.Image.segments) 0 in
    for i = 1 to Array.length acc - 1 do
      acc.(i) <- acc.(i - 1) + image.Image.segments.(i - 1)
    done;
    acc
  in
  let pfn_of_linear off =
    let seg = ref 0 in
    Array.iteri
      (fun i start -> if off >= start && off < start + image.Image.segments.(i) then seg := i)
      seg_starts;
    bases.(!seg) + (off - seg_starts.(!seg))
  in
  List.iter
    (fun (off, order) ->
      Kernel_model.Buddy.reserve buddy (pfn_of_linear off) order;
      if share = None then
        Hw.Clock.charge clock "snapshot_restore_frame"
          (float_of_int (1 lsl order) *. Hw.Cost.restore_frame))
    image.Image.buddy_blocks;
  let aspaces = Hashtbl.create 16 in
  List.iter (fun (aid, r) -> Hashtbl.replace aspaces aid (reloc r)) image.Image.aspaces;
  let next_as = ref image.Image.next_as in
  let c =
    Cki.Container.assemble ~env ~cfg host ~container_id ~pcid ~ksm ~buddy ~aspaces ~next_as ()
  in
  let kernel = c.Cki.Container.backend.Virt.Backend.kernel in
  let platform = c.Cki.Container.backend.Virt.Backend.platform in
  Kernel_model.Kernel.set_next_pid kernel image.Image.next_pid;
  (* Filesystem. *)
  let fs = Kernel_model.Kernel.fs kernel in
  List.iter (fun path -> ignore (Kernel_model.Tmpfs.mkdir fs path)) image.Image.dirs;
  List.iter
    (fun (path, data) ->
      let inode = Kernel_model.Tmpfs.open_or_create fs path in
      if String.length data > 0 then
        ignore (Kernel_model.Tmpfs.write fs inode ~off:0 (Bytes.of_string data)))
    image.Image.files;
  (* Tasks. *)
  List.iter
    (fun (tk : Image.task_rec) ->
      let mm =
        Kernel_model.Mm.restore platform ~aspace:tk.Image.tk_aspace ~brk:tk.Image.tk_brk
          ~mmap_cursor:tk.Image.tk_cursor
      in
      List.iter
        (fun (v : Image.vma_rec) ->
          let read, write, exec = v.Image.v_prot in
          Kernel_model.Mm.add_vma mm ~start:v.Image.v_start ~stop:v.Image.v_stop
            ~prot:{ Kernel_model.Vma.read; write; exec }
            ~backing:v.Image.v_backing)
        tk.Image.tk_vmas;
      List.iter
        (fun (vpn, target) ->
          match shared_target target with
          | Some orig ->
              Kernel_model.Mm.adopt_page mm ~vpn ~pfn:orig;
              Kernel_model.Mm.mark_cow mm ~vpn ~shared:orig ~own:(reloc target)
          | None -> Kernel_model.Mm.adopt_page mm ~vpn ~pfn:(reloc target))
        tk.Image.tk_pages;
      if share <> None then
        Kernel_model.Mm.set_release_shared mm (fun pfn -> Hw.Phys_mem.decr_ref mem pfn);
      let task = Kernel_model.Task.create ~pid:tk.Image.tk_pid ~parent:tk.Image.tk_parent mm in
      List.iter
        (fun (f : Image.fd_rec) ->
          let inode = Kernel_model.Tmpfs.resolve fs f.Image.f_path in
          Kernel_model.Task.restore_fd task ~fd:f.Image.f_fd
            (Kernel_model.Task.File { Kernel_model.Task.inode; pos = f.Image.f_pos }))
        tk.Image.tk_fds;
      task.Kernel_model.Task.next_fd <- tk.Image.tk_next_fd;
      Kernel_model.Kernel.restore_task kernel task)
    image.Image.tasks;
  (* vCPU state (PCID is fresh; an empty TLB is just a full flush). *)
  Array.iteri
    (fun i (s : Image.cpu_state) ->
      if i < Array.length c.Cki.Container.cpus then begin
        let cpu = c.Cki.Container.cpus.(i) in
        cpu.Hw.Cpu.mode <- (if s.Image.c_kernel then Hw.Cpu.Kernel else Hw.Cpu.User);
        cpu.Hw.Cpu.pkrs <- s.Image.c_pkrs;
        cpu.Hw.Cpu.if_flag <- s.Image.c_if;
        cpu.Hw.Cpu.gs_base <- s.Image.c_gs;
        cpu.Hw.Cpu.kernel_gs_base <- s.Image.c_kgs;
        cpu.Hw.Cpu.cr3 <- reloc s.Image.c_cr3
      end)
    image.Image.cpus;
  if verify then begin
    match Analysis.check_machine ~containers:[ c ] with
    | [] -> ()
    | violations ->
        raise
          (Fail
             (Verify_failed
                (Analysis.report
                   ~title:(Printf.sprintf "container %d post-restore" container_id)
                   { Analysis.violations; lints = [] })))
  end;
  c
  with e ->
    rollback ();
    raise e

let restore ?env ?(verify = true) host image =
  match rebuild ?env ~verify ~share:None host image with
  | c -> Ok c
  | exception Fail e -> Error e

let clone_of ?(verify = true) host image ~orig_seg_bases ~orig_aux =
  match rebuild ~verify ~share:(Some (orig_seg_bases, orig_aux)) host image with
  | c -> Ok c
  | exception Fail e -> Error e

(* Frames a container has actually materialized: its KSM-private state,
   its own page tables and kernel image, and resident pages minus those
   still shared with a template.  Untouched free segment frames are
   excluded on both sides of a comparison — they are address space, not
   memory. *)
let materialized_frames (c : Cki.Container.t) =
  let mem = Hw.Machine.mem (Cki.Host.machine c.Cki.Container.host) in
  let id = c.Cki.Container.container_id in
  let meta = ref 0 in
  for pfn = 0 to Hw.Phys_mem.total_frames mem - 1 do
    match (Hw.Phys_mem.owner mem pfn, Hw.Phys_mem.kind mem pfn) with
    | Hw.Phys_mem.Ksm k, _ when k = id -> incr meta
    | Hw.Phys_mem.Container k, (Hw.Phys_mem.Page_table _ | Hw.Phys_mem.Kernel_code) when k = id ->
        incr meta
    | _ -> ()
  done;
  let kernel = c.Cki.Container.backend.Virt.Backend.kernel in
  List.fold_left
    (fun acc (task : Kernel_model.Task.t) ->
      let mm = task.Kernel_model.Task.mm in
      acc + Kernel_model.Mm.resident_pages mm - Kernel_model.Mm.cow_count mm)
    !meta
    (Kernel_model.Kernel.tasks kernel)
