(* The warm pool: pre-frozen templates serving spawn_fast.

   A thin instantiation of [Cki.Host.Warm_pool] (which is polymorphic
   so lib/core does not depend on lib/snapshot) at [Template.t]:
   templates are immutable once frozen, so the pool rotates them and
   every spawn_fast is a warm clone.  The stats triple (hits / misses /
   refills) is what the fleet bench gates on: a scale-out burst that
   outruns the low-water refill shows up as misses — cold template
   builds on the spawn path — instead of disappearing into the
   latency. *)

type t = { pool : Template.t Cki.Host.Warm_pool.t }

type stats = { hits : int; misses : int; refills : int; size : int; served : int }

let create ?low_water ~target ~make () =
  { pool = Cki.Host.Warm_pool.create ?low_water ~target ~make () }

let spawn_fast ?verify t = Template.clone ?verify (Cki.Host.Warm_pool.take t.pool)
let refill_low_water t = Cki.Host.Warm_pool.refill_low_water t.pool
let drain t = Cki.Host.Warm_pool.drain t.pool
let size t = Cki.Host.Warm_pool.size t.pool
let prebooted t = Cki.Host.Warm_pool.prebooted t.pool
let served t = Cki.Host.Warm_pool.served t.pool

let stats t =
  {
    hits = Cki.Host.Warm_pool.hits t.pool;
    misses = Cki.Host.Warm_pool.misses t.pool;
    refills = Cki.Host.Warm_pool.refills t.pool;
    size = Cki.Host.Warm_pool.size t.pool;
    served = Cki.Host.Warm_pool.served t.pool;
  }
