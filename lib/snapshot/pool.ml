(* The warm pool: pre-frozen templates serving spawn_fast.

   A thin instantiation of [Cki.Host.Warm_pool] (which is polymorphic
   so lib/core does not depend on lib/snapshot) at [Template.t]:
   templates are immutable once frozen, so the pool rotates them and
   every spawn_fast is a warm clone.  The stats triple (hits / misses /
   refills) is what the fleet bench gates on: a scale-out burst that
   outruns the low-water refill shows up as misses — cold template
   builds on the spawn path — instead of disappearing into the
   latency.

   Draining is where template lifetime gets subtle: a drained template
   may still back live CoW clones (spawned before the drain, or the
   template is mid-migration), and freeing its shared frames then would
   hand a clone's memory to the next allocation.  [drain] therefore
   destroys only templates with no outstanding references and parks the
   rest on a retired list; [reap_retired] — called from the same idle
   path as [refill_low_water] — frees them once their last clone is
   gone.  [Template.destroy] carries the refcount assertion backing
   this up. *)

type t = {
  pool : Template.t Cki.Host.Warm_pool.t;
  mutable retired : Template.t list;  (** drained but still referenced by clones *)
}

type stats = { hits : int; misses : int; refills : int; size : int; served : int }

let create ?low_water ~target ~make () =
  { pool = Cki.Host.Warm_pool.create ?low_water ~target ~make (); retired = [] }

let spawn_fast ?verify t = Template.clone ?verify (Cki.Host.Warm_pool.take t.pool)
let refill_low_water t = Cki.Host.Warm_pool.refill_low_water t.pool

let drain t =
  let items = Cki.Host.Warm_pool.drain t.pool in
  List.iter
    (fun tpl ->
      if Template.in_use tpl then t.retired <- tpl :: t.retired else Template.destroy tpl)
    items;
  List.length items

let reap_retired t =
  let free, busy = List.partition (fun tpl -> not (Template.in_use tpl)) t.retired in
  List.iter Template.destroy free;
  t.retired <- busy;
  List.length free

let retired_count t = List.length t.retired
let size t = Cki.Host.Warm_pool.size t.pool
let prebooted t = Cki.Host.Warm_pool.prebooted t.pool
let served t = Cki.Host.Warm_pool.served t.pool

let stats t =
  {
    hits = Cki.Host.Warm_pool.hits t.pool;
    misses = Cki.Host.Warm_pool.misses t.pool;
    refills = Cki.Host.Warm_pool.refills t.pool;
    size = Cki.Host.Warm_pool.size t.pool;
    served = Cki.Host.Warm_pool.served t.pool;
  }
