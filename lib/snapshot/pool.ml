(* The warm pool: pre-frozen templates serving spawn_fast.

   A thin instantiation of [Cki.Host.Warm_pool] (which is polymorphic
   so lib/core does not depend on lib/snapshot) at [Template.t]:
   templates are immutable once frozen, so the pool rotates them and
   every spawn_fast is a warm clone. *)

type t = { pool : Template.t Cki.Host.Warm_pool.t }

let create ~target ~make = { pool = Cki.Host.Warm_pool.create ~target ~make }
let spawn_fast ?verify t = Template.clone ?verify (Cki.Host.Warm_pool.take t.pool)
let size t = Cki.Host.Warm_pool.size t.pool
let prebooted t = Cki.Host.Warm_pool.prebooted t.pool
let served t = Cki.Host.Warm_pool.served t.pool
