(* A frozen in-memory clone template.

   Template.create captures the image first (so the image records the
   container's normal, writable state — what restores and clones should
   reproduce), then freezes the live container in place:

   - every resident user page is downgraded to read-only through the
     KSM path, in both the task's address space and the guest kernel's
     direct map (the writable alias), with an INVLPG on every vCPU for
     both virtual addresses — the same downgrade+shootdown discipline
     the lint engine enforces everywhere else;
   - the page's frame and the guest kernel image's frames are marked
     shared ([Phys_mem.set_shared_ro]), which pins them: the allocator
     refuses to free a shared frame while references remain.

   Clones then point their leaf PTEs at these frames read-only and
   materialize private copies only when written. *)

type t = {
  container : Cki.Container.t;
  image : Image.t;
  map : Capture.map;
}

type error =
  | Capture_error of Capture.error
  | Restore_error of Restore.error
  | Freeze_error of string

let show_error = function
  | Capture_error e -> "capture: " ^ Capture.show_error e
  | Restore_error e -> "clone: " ^ Restore.show_error e
  | Freeze_error s -> "freeze: " ^ s

exception Freeze of string

let ksm_exn label = function
  | Ok v -> v
  | Error e -> raise (Freeze (Printf.sprintf "%s rejected: %s" label (Cki.Ksm.show_error e)))

let freeze (c : Cki.Container.t) (image : Image.t) (map : Capture.map) =
  let ksm = c.Cki.Container.ksm in
  let mem = Hw.Machine.mem (Cki.Host.machine c.Cki.Container.host) in
  let kroot = Cki.Ksm.kernel_root ksm in
  let kernel = c.Cki.Container.backend.Virt.Backend.kernel in
  let invlpg_all va =
    Array.iter (fun cpu -> Hw.Cpu.exec_priv_exn cpu (Hw.Priv.Invlpg va)) c.Cki.Container.cpus
  in
  List.iter
    (fun (task : Kernel_model.Task.t) ->
      let mm = task.Kernel_model.Task.mm in
      let root =
        match Hashtbl.find_opt c.Cki.Container.aspaces (Kernel_model.Mm.aspace mm) with
        | Some r -> r
        | None -> raise (Freeze "task address space has no root")
      in
      let pages = ref [] in
      Kernel_model.Mm.iter_pages mm (fun vpn pfn -> pages := (vpn, pfn) :: !pages);
      List.iter
        (fun (vpn, pfn) ->
          let va = Hw.Addr.va_of_vpn vpn in
          let dva = Cki.Layout.direct_va_of_pa (Hw.Addr.pa_of_pfn pfn) in
          ksm_exn "guest_protect(user)" (Cki.Ksm.guest_protect ksm ~root ~va ~writable:false);
          ksm_exn "guest_protect(direct)"
            (Cki.Ksm.guest_protect ksm ~root:kroot ~va:dva ~writable:false);
          invlpg_all va;
          invlpg_all dva;
          (* Mirror the downgrade in the mm model: a template write must
             fault, not silently hit a frame the clones share. *)
          Kernel_model.Mm.freeze_page mm ~vpn;
          Hw.Phys_mem.set_shared_ro mem pfn true)
        (List.sort compare !pages))
    (Kernel_model.Kernel.tasks kernel);
  (* The guest kernel image is immutable (exec-frozen at boot): clones
     share it outright rather than copying it. *)
  Array.iteri
    (fun i kind ->
      if kind = Image.Kernel_code then Hw.Phys_mem.set_shared_ro mem map.Capture.m_aux.(i) true)
    image.Image.aux

let create (c : Cki.Container.t) : (t, error) result =
  match Capture.capture_full c with
  | Error e -> Error (Capture_error e)
  | Ok (image, map) -> (
      match freeze c image map with
      | () -> Ok { container = c; image; map }
      | exception Freeze s -> Error (Freeze_error s))

let clone ?verify t =
  Restore.clone_of ?verify t.container.Cki.Container.host t.image
    ~orig_seg_bases:t.map.Capture.m_seg_bases ~orig_aux:t.map.Capture.m_aux
  |> Result.map_error (fun e -> Restore_error e)

let container t = t.container
let image t = t.image
let map t = t.map

(* Does any of this template's shared frames still carry a clone
   reference?  The scan mirrors [Container.destroy]'s own pre-check:
   shared_ro frames owned by the template container with refcount > 0
   are exactly the frames live CoW children still point at. *)
let in_use t =
  let c = t.container in
  let mem = Hw.Machine.mem (Cki.Host.machine c.Cki.Container.host) in
  let id = c.Cki.Container.container_id in
  let used = ref false in
  for pfn = 0 to Hw.Phys_mem.total_frames mem - 1 do
    match Hw.Phys_mem.owner mem pfn with
    | (Hw.Phys_mem.Container k | Hw.Phys_mem.Ksm k) when k = id ->
        if Hw.Phys_mem.is_shared_ro mem pfn && Hw.Phys_mem.refcount mem pfn > 0 then used := true
    | _ -> ()
  done;
  !used

(* Tear a template down.  The refcount assertion is the point: freeing
   a frame a CoW child still references would hand the child's memory
   to the next allocation.  Callers that may race live clones (pool
   drain, migration cutover) must check {!in_use} and retire instead. *)
let destroy t =
  if in_use t then
    invalid_arg "Template.destroy: shared frames still referenced by live clones";
  Cki.Container.destroy t.container
