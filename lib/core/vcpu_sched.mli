(** Host-side vCPU scheduling with timer preemption.

    Preemption relies on the interrupt-abuse defences of Section 4.4:
    the timer always reaches the host through the container's interrupt
    gate — the guest cannot disable interrupts, re-point the IDT, or
    forge vectors — so a deadlooping guest kernel is preempted on
    schedule and DoS is contained to its own timeslice (property S9). *)

type vcpu_entry = {
  container : Container.t;
  vcpu : int;
  mutable work : (unit -> unit) Queue.t;
  mutable executed : int;
  mutable slices : int;
  mutable spinning : bool;
}

type t

val create : ?slice_ns:float -> Host.t -> t
(** Default timeslice 1 ms. *)

val add_vcpu : t -> Container.t -> vcpu:int -> vcpu_entry
val submit_work : vcpu_entry -> (unit -> unit) -> unit

val mark_spinning : vcpu_entry -> unit
(** Model a compromised guest that deadloops, burning whole slices. *)

val run_slice : t -> vcpu_entry -> unit
(** One timeslice: virtual-interrupt injection, guest work (or spin),
    timer preemption through the interrupt gate. *)

val run : ?after_slice:(unit -> unit) -> t -> slices:int -> unit
(** Round-robin for a total number of timeslices. [after_slice] runs in
    host context between slices — the I/O plane's device-service window
    (flush coalesced queues, pump the switch). *)

val preemptions : t -> int
val entries : t -> vcpu_entry list
