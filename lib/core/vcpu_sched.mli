(** Host-side vCPU scheduling with timer preemption and CPU quotas.

    Preemption relies on the interrupt-abuse defences of Section 4.4:
    the timer always reaches the host through the container's interrupt
    gate — the guest cannot disable interrupts, re-point the IDT, or
    forge vectors — so a deadlooping guest kernel is preempted on
    schedule and DoS is contained to its own timeslice (property S9).

    Quotas follow cgroup [cpu.max] semantics: at most [budget_ns] of
    guest runtime per [period_ns] window, throttled in between. *)

type vcpu_entry = {
  container : Container.t;
  vcpu : int;
  mutable work : (unit -> unit) Queue.t;
  mutable executed : int;
  mutable slices : int;
  mutable spinning : bool;
  quota : (float * float) option;  (** (period_ns, budget_ns) *)
  mutable q_used : float;
  mutable q_period_start : float;
  mutable throttles : int;
}

type t

val create : ?slice_ns:float -> Host.t -> t
(** Default timeslice 1 ms. *)

val add_vcpu : ?quota:float * float -> t -> Container.t -> vcpu:int -> vcpu_entry
(** [quota] is [(period_ns, budget_ns)]: the vCPU may consume at most
    [budget_ns] of runtime per [period_ns] window, then it is skipped
    (throttled) until the window rolls over.
    @raise Invalid_argument unless both are positive. *)

val remove_vcpu : t -> vcpu_entry -> unit
(** Drop the entry from the round-robin (fleet scale-in); pending work
    on it is abandoned. *)

val submit_work : vcpu_entry -> (unit -> unit) -> unit

val mark_spinning : vcpu_entry -> unit
(** Model a compromised guest that deadloops, burning whole slices. *)

val throttled : t -> vcpu_entry -> bool
(** Whether the entry's budget is exhausted in the current window
    (refreshes the window first). *)

val run_slice : t -> vcpu_entry -> unit
(** One timeslice: virtual-interrupt injection, guest work (or spin),
    timer preemption through the interrupt gate.  Consumed runtime is
    charged against the entry's quota; direct callers bypass the
    throttle check. *)

val run : ?after_slice:(unit -> unit) -> t -> slices:int -> unit
(** Round-robin for a total number of timeslices. [after_slice] runs in
    host context between slices — the I/O plane's device-service window
    (flush coalesced queues, pump the switch).  Throttled vCPUs are
    skipped without consuming a slice; when every vCPU is throttled the
    clock idles forward to the earliest refill, so a hard cap shows up
    as latency rather than livelock. *)

val preemptions : t -> int

val throttle_events : t -> int
(** Total throttled skips across all entries. *)

val entries : t -> vcpu_entry list
