(* A CKI secure container: guest kernel + KSM + gates on a delegated
   hPA segment, exposed through the common [Virt.Backend.t] interface.

   The platform wiring is where the paper's performance structure
   lives:
     - page faults: handled by the guest kernel natively; the only
       extra cost is two KSM calls (PTE update + iret) — 77 ns;
     - syscalls: fully native (OPT1 no redirection, OPT2 no page-table
       switch, OPT3 native sysret/swapgs);
     - address-space switches: a KSM call validating CR3 against the
       declared roots, loading the per-vCPU copy;
     - I/O and timers: hypercalls through the hypercall gate (390 ns),
       with no L0 intervention even in nested clouds;
     - single-stage translation: the guest buddy allocator hands out
       host-physical frames directly. *)

type t = {
  backend : Virt.Backend.t;
  host : Host.t;
  ksm : Ksm.t;
  gates : Gates.t;
  cpus : Hw.Cpu.t array;
  buddy : Kernel_model.Buddy.t;
  cfg : Config.t;
  container_id : int;
  pcid : int;
  mutable current_vcpu : int;
  aspaces : (int, Hw.Addr.pfn) Hashtbl.t;  (** aspace id -> guest root PTP *)
  next_as : int ref;  (** next aspace id (snapshotted, so ids are stable) *)
}

let backend t = t.backend
let ksm t = t.ksm
let gates t = t.gates
let cpu t i = t.cpus.(i)
let buddy t = t.buddy
let container_id t = t.container_id
let pcid t = t.pcid

(* Run the guest kernel's vCPU state: kernel mode with guest rights. *)
let enter_guest_kernel (cpu : Hw.Cpu.t) =
  cpu.Hw.Cpu.mode <- Hw.Cpu.Kernel;
  cpu.Hw.Cpu.pkrs <- Hw.Pks.pkrs_guest

(* Wire a container from already-constructed parts.  [create] calls
   this after trusted KSM boot; snapshot restore/clone call it with a
   KSM, buddy and address-space table rebuilt from an image (so the
   platform closures, gates and vCPUs are identical either way). *)
let assemble ?(env = Virt.Env.Bare_metal) ~cfg (host : Host.t) ~container_id ~pcid ~ksm ~buddy
    ~aspaces ~next_as () : t =
  let machine = Host.machine host in
  let clock = Hw.Machine.clock machine in
  let gates =
    Gates.create ~ksm ~cfg ~clock ~host_cr3:(Host.host_root host) ~host_pcid:(Host.host_pcid host)
  in
  let cpus =
    Array.init cfg.Config.vcpus (fun id ->
        let cpu = Hw.Cpu.create ~id clock in
        cpu.Hw.Cpu.cr3 <- Ksm.kernel_root ksm;
        cpu.Hw.Cpu.pcid <- pcid;
        enter_guest_kernel cpu;
        cpu)
  in
  let vcpu0 () = cpus.(0) in
  let hypercall kind =
    match
      Gates.hypercall gates (vcpu0 ()) ~vcpu:0 ~request:kind (Host.handle_hypercall host)
    with
    | Ok () -> ()
    | Error e -> failwith ("CKI hypercall gate error: " ^ Gates.show_error e)
  in
  let ksm_exn label = function
    | Ok v -> v
    | Error e -> failwith (Printf.sprintf "KSM %s rejected: %s" label (Ksm.show_error e))
  in
  let root_of id =
    match Hashtbl.find_opt aspaces id with
    | Some r -> r
    | None -> invalid_arg "cki: unknown address space"
  in
  let platform =
    {
      Kernel_model.Platform.name = "cki";
      clock;
      (* Single-stage translation: the buddy hands out hPA frames. *)
      alloc_frame = (fun () -> Kernel_model.Buddy.alloc buddy);
      free_frame = (fun pfn -> Kernel_model.Buddy.free buddy pfn);
      as_create =
        (fun () ->
          let id = !next_as in
          incr next_as;
          let root = Kernel_model.Buddy.alloc buddy in
          ksm_exn "declare_root" (Ksm.declare_root ksm ~pfn:root);
          Hashtbl.replace aspaces id root;
          id);
      as_destroy =
        (fun id ->
          let root = root_of id in
          ksm_exn "release_root"
            (Ksm.release_root ksm ~root ~free_ptp:(fun pfn -> Kernel_model.Buddy.free buddy pfn));
          Kernel_model.Buddy.free buddy root;
          Hashtbl.remove aspaces id);
      as_switch =
        (fun id ->
          let root = root_of id in
          let copy = ksm_exn "load_cr3" (Ksm.load_cr3 ksm ~vcpu:0 ~root) in
          Hw.Cpu.load_cr3 (vcpu0 ()) ~root:copy ~pcid);
      pte_install =
        (fun id ~va ~pfn ~writable ~user ->
          let root = root_of id in
          ksm_exn "guest_map"
            (Ksm.guest_map ksm ~root ~va ~pfn
               ~flags:{ Hw.Pte.default_flags with writable; user; nx = true }
               ~alloc_ptp:(fun () -> Kernel_model.Buddy.alloc buddy)));
      pte_remove =
        (fun id ~va -> ksm_exn "guest_unmap" (Ksm.guest_unmap ksm ~root:(root_of id) ~va));
      pte_protect =
        (fun id ~va ~writable ->
          ksm_exn "guest_protect" (Ksm.guest_protect ksm ~root:(root_of id) ~va ~writable));
      fault_round_trip =
        (fun () ->
          (* The guest kernel fields the fault itself; returning to the
             interrupted context needs iret via the KSM. *)
          Ksm.iret ksm;
          if cfg.Config.design_pku then
            (* Design-PKU ablation (Section 3.1): the guest kernel sits
               in ring 3, so the host must inject the fault across the
               ring boundary. *)
            Hw.Clock.charge clock "pku_fault_injection" 750.0);
      fault_service_ns = Hw.Cost.pf_handler_cki;
      syscall_round_trip =
        (fun () ->
          Hw.Clock.charge clock "syscall" Hw.Cost.syscall_entry_exit;
          if not cfg.Config.opt2 then
            (* ablation: page-table switch to/from the guest kernel *)
            Hw.Clock.charge clock "cki_wo_opt2" (2.0 *. Hw.Cost.cr3_switch);
          if not cfg.Config.opt3 then
            (* ablation: sysret/swapgs via KSM -> two PKS switches *)
            Hw.Clock.charge clock "cki_wo_opt3" (2.0 *. Hw.Cost.pks_switch);
          if cfg.Config.emulate_pvm_syscall then begin
            Hw.Clock.charge clock "pvm_sys_emul_mode" (2.0 *. Hw.Cost.extra_mode_switch);
            Hw.Clock.charge clock "pvm_sys_emul_cr3" (2.0 *. Hw.Cost.cr3_switch)
          end);
      hypercall;
      deliver_irq =
        (fun () ->
          (* Hardware interrupt during guest execution: interrupt gate
             -> host handler -> virtual interrupt on resume. *)
          match
            Gates.interrupt gates (vcpu0 ()) ~vcpu:0 ~vector:Hw.Idt.vec_virtio_net
              ~kind:Hw.Idt.Hardware (fun v -> Host.handle_hw_interrupt host ~vector:v)
          with
          | Ok () ->
              Host.inject_virq host;
              if Virt.Env.is_nested env then
                Hw.Clock.charge clock "nested_irq_extra" Hw.Cost.nested_irq_extra
          | Error e -> failwith ("CKI interrupt gate error: " ^ Gates.show_error e));
      virtualized_io = true;
      (* Single-stage: the buddy hands out real hPA frames inside the
         delegated segment, so ring bytes are directly addressable (and
         the Analysis sanitizer audits them like any guest page). *)
      guest_read_word =
        (fun pfn index -> Hw.Phys_mem.read_entry (Hw.Machine.mem machine) ~pfn ~index);
      guest_write_word =
        (fun pfn index v -> Hw.Phys_mem.write_entry (Hw.Machine.mem machine) ~pfn ~index v);
    }
  in
  let kernel = Kernel_model.Kernel.create platform in
  let label =
    match Config.label cfg with
    | "CKI" -> "CKI-" ^ Virt.Env.suffix env
    | other -> other
  in
  let backend =
    {
      Virt.Backend.label;
      backend_name = "cki";
      env;
      kernel;
      platform;
      clock;
      walk_refs = Hw.Cost.walk_refs_native;
      walk_refs_huge = Hw.Cost.walk_refs_native_huge;
      supports_hypercall = true;
      empty_hypercall = (fun () -> hypercall Kernel_model.Platform.Console);
      guest_user_kernel_isolated = true;
    }
  in
  let t =
    {
      backend;
      host;
      ksm;
      gates;
      cpus;
      buddy;
      cfg;
      container_id;
      pcid;
      current_vcpu = 0;
      aspaces;
      next_as;
    }
  in
  if Hw.Probe.active () then Hw.Probe.emit (Hw.Probe.Container_boot { container = container_id; pcid });
  t

let create ?(env = Virt.Env.Bare_metal) ?(cfg = Config.default) (host : Host.t) : t =
  let machine = Host.machine host in
  let mem = Hw.Machine.mem machine in
  let clock = Hw.Machine.clock machine in
  let container_id = Host.fresh_container_id host in
  let pcid = Hw.Machine.fresh_pcid machine in
  (* Policy-dispatching delegation: one contiguous segment under
     first-fit, possibly several chunks under scatter.  The KSM's
     direct map and the buddy's zones both take the same list. *)
  let segments = Host.delegate host ~container:container_id ~frames:cfg.Config.segment_frames in
  let ksm = Ksm.create mem clock ~container_id ~cfg ~segments in
  let buddy = Kernel_model.Buddy.create_zones ~segments in
  let aspaces = Hashtbl.create 16 in
  let next_as = ref 0 in
  (* Cold boot pays the guest kernel's own boot sequence on top of the
     KSM construction — the cost snapshot restore and warm clones
     amortize away. *)
  Hw.Clock.charge clock "guest_kernel_boot" Hw.Cost.guest_kernel_boot;
  assemble ~env ~cfg host ~container_id ~pcid ~ksm ~buddy ~aspaces ~next_as ()

(* Tear a container down completely, returning every frame to the host.

   The inverse of [create]/restore/clone, and the operation the fleet's
   scale-in and churn lean on.  Order matters:

   1. drop the CoW references this container holds on *other*
      containers' frozen template frames — found by walking its live
      page tables (every present leaf whose target is a shared
      read-only frame the container does not own took exactly one
      reference at clone time; CoW breaks already released theirs);
   2. reclaim the delegated segments;
   3. sweep every remaining frame the container or its KSM owns
      (KSM-private state, page tables, a private kernel image).

   A frozen template cannot be destroyed while clones still reference
   its frames — the shared-frame scan refuses first, so a mistake
   cannot strand clones over freed memory. *)
let destroy t =
  let machine = Host.machine t.host in
  let mem = Hw.Machine.mem machine in
  let id = t.container_id in
  for pfn = 0 to Hw.Phys_mem.total_frames mem - 1 do
    match Hw.Phys_mem.owner mem pfn with
    | (Hw.Phys_mem.Container k | Hw.Phys_mem.Ksm k) when k = id ->
        if Hw.Phys_mem.is_shared_ro mem pfn && Hw.Phys_mem.refcount mem pfn > 0 then
          invalid_arg
            (Printf.sprintf
               "Container.destroy: container %d is a frozen template with live clones (frame %d \
                still referenced)"
               id pfn)
    | _ -> ()
  done;
  (* 1. Release CoW references on foreign shared frames. *)
  let visited : (Hw.Addr.pfn, unit) Hashtbl.t = Hashtbl.create 256 in
  let rec walk lvl pfn =
    if not (Hashtbl.mem visited pfn) then begin
      Hashtbl.replace visited pfn ();
      for idx = 0 to Hw.Addr.entries_per_table - 1 do
        let e = Hw.Phys_mem.read_entry mem ~pfn ~index:idx in
        if Hw.Pte.is_present e then begin
          let target = Hw.Pte.pfn e in
          let leaf = lvl = 1 || (lvl = 2 && Hw.Pte.is_huge e) in
          if leaf then begin
            let foreign =
              match Hw.Phys_mem.owner mem target with
              | Hw.Phys_mem.Container k | Hw.Phys_mem.Ksm k -> k <> id
              | _ -> false
            in
            if foreign && Hw.Phys_mem.is_shared_ro mem target then
              Hw.Phys_mem.decr_ref mem target
          end
          else walk (lvl - 1) target
        end
      done
    end
  in
  List.iter
    (fun (root, copies) ->
      walk Hw.Addr.levels root;
      Array.iter (fun copy -> walk Hw.Addr.levels copy) copies)
    (Ksm.roots t.ksm);
  (* 2 + 3. Reclaim the segments, then let the KSM sweep stragglers
     (KSM state, page tables, kernel image) — stripping a template's
     shared_ro tag is a TCB operation. *)
  Host.reclaim_segment t.host ~container:id;
  Ksm.scrub_owned t.ksm

(* Convenience: build a host + container in one step (examples). *)
let create_standalone ?(env = Virt.Env.Bare_metal) ?(cfg = Config.default) ?(mem_mib = 512) () =
  let machine = Hw.Machine.create ~mem_mib () in
  let host = Host.create machine in
  create ~env ~cfg host
