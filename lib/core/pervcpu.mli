(** Per-vCPU areas and their page-table subtrees.

    Each vCPU owns a small KSM-private area (secure stack, saved vCPU
    context, exit-reason mailbox). Every per-vCPU page-table copy maps
    {e its} vCPU's area at the constant virtual address
    {!Layout.pervcpu_base}, so gate code locates it without trusting
    the guest-controlled [kernel_gs] register (Figure 8c). *)

type area = {
  vcpu : int;
  frames : Hw.Addr.pfn array;
  l3_root : Hw.Addr.pfn;  (** subtree spliced into L4 copies *)
  mutable saved_guest_context : int;
  mutable saved_host_context : int;
  mutable exit_reason : exit_reason option;
  mutable stack_depth : int;
}

and exit_reason =
  | Exit_hypercall of Kernel_model.Platform.io_kind
  | Exit_interrupt of int
  | Exit_fault of string

val pp_exit_reason : Format.formatter -> exit_reason -> unit
val show_exit_reason : exit_reason -> string

type t

val create : Hw.Phys_mem.t -> container_id:int -> vcpus:int -> t
(** Allocate KSM-owned area frames and build each vCPU's l3/l2/l1
    subtree mapping them (pkey_ksm) at the constant address. *)

val export : t -> (Hw.Addr.pfn array * Hw.Addr.pfn) array
(** Physical layout per vCPU: (area frames, l3 subtree root). Transient
    gate state is excluded — capture requires a quiesced container. *)

val import : (Hw.Addr.pfn array * Hw.Addr.pfn) array -> t
(** Rebuild from already-allocated frames (snapshot restore); table
    contents are restored separately, transient state re-zeroed. *)

val vcpus : t -> int
val area : t -> int -> area

val l4_entry : t -> int -> Hw.Pte.t
(** The L4 entry splicing a vCPU's subtree into a top-level copy. *)

val accessible_with : pkrs:Hw.Pks.rights -> bool
(** Gate-side check: touching the area requires monitor rights; with
    guest rights this is the fault that defeats interrupt forgery. *)

val push_stack : area -> unit
val pop_stack : area -> unit
