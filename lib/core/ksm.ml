(* The Kernel Security Monitor.

   One KSM instance lives inside each container's address space,
   PKS-isolated from the guest kernel it supervises.  It owns the
   privileged operations that touch only container-private data:

     - page-table-page (PTP) declaration and PTE updates, enforcing the
       nested-kernel-style invariants of Section 4.3:
         I1. only declared frames are used as PTPs;
         I2. declared PTPs are read-only to the guest (pkey_ptp);
         I3. only a declared top-level PTP can be loaded into CR3;
       plus: no PTE may target KSM/host memory, no declared PTP may be
       mapped (writable or at all) by a guest PTE, no *new*
       kernel-executable mappings;
     - per-vCPU top-level PTP copies that splice the KSM region and the
       per-vCPU area into every activated page table;
     - CR3 loads (validated against I3, redirected to the vCPU's copy);
     - iret on behalf of the guest. *)

type page_state =
  | Guest_data
  | Guest_ptp of int  (** declared PTP at level 1..4 *)
  | Ksm_private
[@@deriving show { with_path = false }, eq]

type desc = {
  mutable state : page_state;
  mutable ptp_map_count : int;  (** times mapped while a declared PTP *)
}

type root_info = { copies : Hw.Addr.pfn array (* per vCPU *) }

type error =
  | Not_guest_frame of Hw.Addr.pfn
  | Already_declared of Hw.Addr.pfn
  | Not_declared of Hw.Addr.pfn
  | Wrong_level of { expected : int; got : int }
  | Ptp_mapped_twice of Hw.Addr.pfn
  | Targets_monitor_memory of Hw.Addr.va
  | Maps_declared_ptp of Hw.Addr.pfn
  | Kernel_executable_mapping of Hw.Addr.va
  | Undeclared_root of Hw.Addr.pfn
  | Reserved_range of Hw.Addr.va
  | Bad_vcpu of int
[@@deriving show { with_path = false }]

type t = {
  container_id : int;
  mem : Hw.Phys_mem.t;
  clock : Hw.Clock.t;
  cfg : Config.t;
  segments : (Hw.Addr.pfn * int) list;  (** delegated (base, frames) *)
  descs : (Hw.Addr.pfn, desc) Hashtbl.t;
  roots : (Hw.Addr.pfn, root_info) Hashtbl.t;
  pervcpu : Pervcpu.t;
  kernel_root : Hw.Addr.pfn;  (** the guest kernel's boot address space *)
  template : (int * int64) list;  (** fixed L4 slots: direct map, image, KSM *)
  mutable kernel_exec_frozen : bool;  (** no new kernel-exec mappings *)
  mutable ksm_calls : int;
  idt : Hw.Idt.t;  (** container IDT, resident in KSM memory *)
}

let owns_frame t pfn = List.exists (fun (b, n) -> pfn >= b && pfn < b + n) t.segments

let desc t pfn =
  match Hashtbl.find_opt t.descs pfn with
  | Some d -> d
  | None ->
      let d = { state = Guest_data; ptp_map_count = 0 } in
      Hashtbl.replace t.descs pfn d;
      d

(* ------------------------------------------------------------------ *)
(* Boot-time construction (trusted initialization)                     *)
(* ------------------------------------------------------------------ *)

let alloc_ksm_frame t kind = Hw.Phys_mem.alloc t.mem ~owner:(Hw.Phys_mem.Ksm t.container_id) ~kind

let write_raw t ~pfn ~index v = Hw.Phys_mem.write_entry t.mem ~pfn ~index v
let read_raw t ~pfn ~index = Hw.Phys_mem.read_entry t.mem ~pfn ~index

(* Build a subtree mapping [pages] 4-KiB pages starting at [va_base]
   backed by [frame_of i], with [pkey]; returns the L3 root to splice
   at L4.  Only supports regions within one L4 slot. *)
let build_subtree t ~va_base ~pages ~frame_of ~pkey ~user ~writable ~nx =
  let l3 = alloc_ksm_frame t (Hw.Phys_mem.Page_table 3) in
  let l2s : (int, Hw.Addr.pfn) Hashtbl.t = Hashtbl.create 8 in
  let l1s : (int, Hw.Addr.pfn) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to pages - 1 do
    let va = va_base + (i * Hw.Addr.page_size) in
    let i3 = Hw.Addr.index_at_level ~lvl:3 va in
    let l2 =
      match Hashtbl.find_opt l2s i3 with
      | Some p -> p
      | None ->
          let p = alloc_ksm_frame t (Hw.Phys_mem.Page_table 2) in
          Hashtbl.replace l2s i3 p;
          write_raw t ~pfn:l3 ~index:i3
            (Hw.Pte.make ~pfn:p ~flags:{ Hw.Pte.default_flags with writable = true });
          p
    in
    let i2 = Hw.Addr.index_at_level ~lvl:2 va in
    let l1 =
      match Hashtbl.find_opt l1s ((i3 * 512) + i2) with
      | Some p -> p
      | None ->
          let p = alloc_ksm_frame t (Hw.Phys_mem.Page_table 1) in
          Hashtbl.replace l1s ((i3 * 512) + i2) p;
          write_raw t ~pfn:l2 ~index:i2
            (Hw.Pte.make ~pfn:p ~flags:{ Hw.Pte.default_flags with writable = true });
          p
    in
    write_raw t ~pfn:l1 ~index:(Hw.Addr.index_at_level ~lvl:1 va)
      (Hw.Pte.make ~pfn:(frame_of i) ~flags:{ Hw.Pte.writable; user; nx; huge = false; pkey })
  done;
  l3

let ksm_code_pages = 16
let kernel_image_pages = 64

(* Direct map of the delegated hPA segments (4-KiB PTEs so declared
   PTPs can be individually re-tagged pkey_ptp).  The layout is a pure
   function of the segment bases (va = direct_map_base + pa), which is
   why snapshot restore rebuilds it from the *new* segments instead of
   importing the captured subtree: imported leaves would still key on
   the old machine's PAs and every later retag (I2) would miss. *)
let build_direct_map t segments =
  let seg_frames = List.concat_map (fun (b, n) -> List.init n (fun i -> b + i)) segments in
  let seg_array = Array.of_list seg_frames in
  match segments with
  | [] -> invalid_arg "Ksm: no delegated segments"
  | (base, _) :: _ ->
      build_subtree t
        ~va_base:(Layout.direct_va_of_pa (Hw.Addr.pa_of_pfn base))
        ~pages:(Array.length seg_array)
        ~frame_of:(fun i -> seg_array.(i))
        ~pkey:Hw.Pks.pkey_guest ~user:false ~writable:true ~nx:true

(* Find the direct-map leaf location of [pfn] so its pkey can be
   retagged; the direct map is KSM-built, so the walk is internal. *)
let direct_map_leaf t pfn =
  let va = Layout.direct_va_of_pa (Hw.Addr.pa_of_pfn pfn) in
  let rec go lvl table =
    let idx = Hw.Addr.index_at_level ~lvl va in
    if lvl = 1 then (table, idx)
    else
      let e = read_raw t ~pfn:table ~index:idx in
      if not (Hw.Pte.is_present e) then invalid_arg "Ksm: frame missing from direct map"
      else go (lvl - 1) (Hw.Pte.pfn e)
  in
  go 4 t.kernel_root

let retag_direct_map t pfn ~pkey =
  match direct_map_leaf t pfn with
  | table, idx ->
      let e = read_raw t ~pfn:table ~index:idx in
      write_raw t ~pfn:table ~index:idx (Hw.Pte.with_pkey e pkey)
  | exception Invalid_argument _ -> ()

(* The container IDT lives in KSM memory: all hardware vectors request
   IST + the PKS-switch extension (Section 4.4); page fault + #GP
   vector to the guest kernel's own handlers (fast path, no PKS
   switch).  Deterministic, so snapshot restore rebuilds it verbatim. *)
let build_idt idt =
  List.iter
    (fun v ->
      Hw.Idt.set idt
        { Hw.Idt.vector = v; handler = "cki_interrupt_gate"; ist = Some 1; pks_switch = true;
          user_invocable = false })
    [ Hw.Idt.vec_timer; Hw.Idt.vec_virtio_net; Hw.Idt.vec_virtio_blk; Hw.Idt.vec_ipi ];
  List.iter
    (fun v ->
      Hw.Idt.set idt
        { Hw.Idt.vector = v; handler = "guest_fault_entry"; ist = None; pks_switch = false;
          user_invocable = false })
    [ Hw.Idt.vec_page_fault; Hw.Idt.vec_gp_fault ];
  Hw.Idt.lock idt

let create mem clock ~container_id ~cfg ~segments =
  let vcpus = cfg.Config.vcpus in
  let pervcpu = Pervcpu.create mem ~container_id ~vcpus in
  let t =
    {
      container_id;
      mem;
      clock;
      cfg;
      segments;
      descs = Hashtbl.create 4096;
      roots = Hashtbl.create 16;
      pervcpu;
      kernel_root = 0;
      template = [];
      kernel_exec_frozen = false;
      ksm_calls = 0;
      idt = Hw.Idt.create ();
    }
  in
  (* KSM code/data region. *)
  let ksm_frames = Array.init ksm_code_pages (fun _ -> alloc_ksm_frame t Hw.Phys_mem.Ksm_code) in
  let ksm_l3 =
    build_subtree t ~va_base:Layout.ksm_base ~pages:ksm_code_pages
      ~frame_of:(fun i -> ksm_frames.(i))
      ~pkey:Hw.Pks.pkey_ksm ~user:false ~writable:true ~nx:false
  in
  (* Guest kernel image: kernel-executable, read-only, frozen at boot. *)
  let image_frames =
    Array.init kernel_image_pages (fun _ ->
        Hw.Phys_mem.alloc mem ~owner:(Hw.Phys_mem.Container container_id)
          ~kind:Hw.Phys_mem.Kernel_code)
  in
  let image_l3 =
    build_subtree t ~va_base:Layout.kernel_image_base ~pages:kernel_image_pages
      ~frame_of:(fun i -> image_frames.(i))
      ~pkey:Hw.Pks.pkey_guest ~user:false ~writable:false ~nx:false
  in
  let direct_l3 = build_direct_map t segments in
  let mk_link pfn = Hw.Pte.make ~pfn ~flags:{ Hw.Pte.default_flags with writable = true } in
  let template =
    [
      (Layout.l4_direct, mk_link direct_l3);
      (Layout.l4_kernel_image, mk_link image_l3);
      (Layout.l4_ksm, mk_link ksm_l3);
    ]
  in
  build_idt t.idt;
  let t = { t with template } in
  (* The guest kernel's boot address space: a KSM-owned root so boot is
     trusted; guest process roots come later from guest memory. *)
  let kernel_root = alloc_ksm_frame t (Hw.Phys_mem.Page_table 4) in
  List.iter (fun (idx, e) -> write_raw t ~pfn:kernel_root ~index:idx e) template;
  let t = { t with kernel_root } in
  Hashtbl.replace t.roots kernel_root
    {
      copies =
        Array.init vcpus (fun v ->
            let copy = alloc_ksm_frame t (Hw.Phys_mem.Page_table 4) in
            List.iter (fun (idx, e) -> write_raw t ~pfn:copy ~index:idx e) template;
            write_raw t ~pfn:copy ~index:Layout.l4_pervcpu (Pervcpu.l4_entry pervcpu v);
            copy);
    };
  t.kernel_exec_frozen <- true;
  t

(* ------------------------------------------------------------------ *)
(* Snapshot restore (trusted reconstruction)                           *)
(* ------------------------------------------------------------------ *)

(* Everything a restored monitor needs, with all frame numbers already
   relocated into the new delegation / fresh KSM allocations by the
   snapshot layer.  Table contents are written here — through the
   monitor, never by the guest — so a restored container's page tables
   are monitor-authored exactly like a booted one's. *)
type import = {
  i_segments : (Hw.Addr.pfn * int) list;
  i_ptps : (Hw.Addr.pfn * int) list;  (** declared PTPs with levels *)
  i_roots : (Hw.Addr.pfn * Hw.Addr.pfn array) list;  (** root, per-vCPU copies *)
  i_kernel_root : Hw.Addr.pfn;
  i_template : (int * int64) list;
      (** fixed L4 slots, relocated entries — {e without} the direct-map
          slot, whose subtree is rebuilt from [i_segments] here *)
  i_tables : (Hw.Addr.pfn * (int * int64) list) list;
      (** every live table's non-empty entries, relocated *)
}

let restore mem clock ~container_id ~cfg ~pervcpu (imp : import) =
  let t =
    {
      container_id;
      mem;
      clock;
      cfg;
      segments = imp.i_segments;
      descs = Hashtbl.create 4096;
      roots = Hashtbl.create 16;
      pervcpu;
      kernel_root = imp.i_kernel_root;
      template = imp.i_template;
      kernel_exec_frozen = false;
      ksm_calls = 0;
      idt = Hw.Idt.create ();
    }
  in
  build_idt t.idt;
  (* Declared-PTP metadata (I1/I2 claims) before table contents, so the
     frame kinds match what the imported trees reference. *)
  List.iter
    (fun (pfn, lvl) ->
      Hashtbl.replace t.descs pfn { state = Guest_ptp lvl; ptp_map_count = 0 };
      Hw.Phys_mem.set_kind mem pfn (Hw.Phys_mem.Page_table lvl))
    imp.i_ptps;
  List.iter
    (fun (pfn, entries) ->
      Hw.Phys_mem.clear_table mem pfn;
      List.iter (fun (index, v) -> write_raw t ~pfn ~index v) entries;
      Hw.Clock.charge clock "snapshot_restore_table" Hw.Cost.restore_frame)
    imp.i_tables;
  List.iter (fun (root, copies) -> Hashtbl.replace t.roots root { copies }) imp.i_roots;
  (* The direct map is never imported: its VA layout keys on physical
     addresses (va = direct_map_base + pa), so a relocated import would
     leave leaves filed under the old machine's PAs — and every
     post-restore PTP declaration would retag the wrong leaf (or none),
     leaving a guest-writable alias of a page-table page.  Rebuild it
     from the new segment bases and splice it into every root. *)
  let direct_l3 = build_direct_map t imp.i_segments in
  let rec charge_direct lvl pfn =
    Hw.Clock.charge clock "snapshot_restore_table" Hw.Cost.restore_frame;
    if lvl > 1 then
      for idx = 0 to Hw.Addr.entries_per_table - 1 do
        let e = read_raw t ~pfn ~index:idx in
        if Hw.Pte.is_present e then charge_direct (lvl - 1) (Hw.Pte.pfn e)
      done
  in
  charge_direct 3 direct_l3;
  let direct_link =
    Hw.Pte.make ~pfn:direct_l3 ~flags:{ Hw.Pte.default_flags with writable = true }
  in
  write_raw t ~pfn:t.kernel_root ~index:Layout.l4_direct direct_link;
  List.iter
    (fun (root, copies) ->
      write_raw t ~pfn:root ~index:Layout.l4_direct direct_link;
      Array.iter (fun copy -> write_raw t ~pfn:copy ~index:Layout.l4_direct direct_link) copies)
    imp.i_roots;
  (* Re-establish I2 in the fresh direct map: every declared PTP's leaf
     is retagged pkey_ptp, exactly as declare_ptp did on the captured
     machine. *)
  List.iter (fun (pfn, _lvl) -> retag_direct_map t pfn ~pkey:Hw.Pks.pkey_ptp) imp.i_ptps;
  t.kernel_exec_frozen <- true;
  { t with template = (Layout.l4_direct, direct_link) :: imp.i_template }

(* ------------------------------------------------------------------ *)
(* Gate-accounted entry points                                         *)
(* ------------------------------------------------------------------ *)

let charge_call t =
  t.ksm_calls <- t.ksm_calls + 1;
  Hw.Clock.charge t.clock "ksm_call" Hw.Cost.ksm_call;
  if t.cfg.Config.pti_in_gates then begin
    Hw.Clock.charge t.clock "gate_pti" Hw.Cost.pti_overhead;
    Hw.Clock.charge t.clock "gate_ibrs" Hw.Cost.ibrs_overhead
  end

(* Probe hooks: report each entry point's outcome, and every PTE
   permission downgrade (the events the trace linter correlates with
   TLB shootdowns). *)
let traced t ~op (r : ('a, error) result) : ('a, error) result =
  if Hw.Probe.active () then
    Hw.Probe.emit
      (Hw.Probe.Ksm_op
         { container = t.container_id; op; ok = (match r with Ok _ -> true | Error _ -> false) });
  r

let trace_downgrade t ~root ~va ~unmapped =
  if Hw.Probe.active () then
    Hw.Probe.emit
      (Hw.Probe.Pte_downgrade
         { container = t.container_id; root; vpn = Hw.Addr.vpn_of_va va; unmapped })

(* Declare [pfn] as a PTP at [level] (invariants I1 + I2). *)
let declare_ptp t ~pfn ~level : (unit, error) result =
  charge_call t;
  if not (owns_frame t pfn) then Error (Not_guest_frame pfn)
  else if level < 1 || level > 4 then Error (Wrong_level { expected = 1; got = level })
  else
    let d = desc t pfn in
    match d.state with
    | Guest_ptp _ | Ksm_private -> Error (Already_declared pfn)
    | Guest_data ->
        d.state <- Guest_ptp level;
        Hw.Phys_mem.set_kind t.mem pfn (Hw.Phys_mem.Page_table level);
        Hw.Phys_mem.clear_table t.mem pfn;
        (* I2: the guest's direct-map view of this frame becomes
           read-only via pkey_ptp. *)
        retag_direct_map t pfn ~pkey:Hw.Pks.pkey_ptp;
        Ok ()

let undeclare_ptp t ~pfn : (unit, error) result =
  if not (owns_frame t pfn) then Error (Not_guest_frame pfn)
  else
    let d = desc t pfn in
    match d.state with
    | Guest_data | Ksm_private -> Error (Not_declared pfn)
    | Guest_ptp _ ->
        d.state <- Guest_data;
        d.ptp_map_count <- 0;
        Hw.Phys_mem.set_kind t.mem pfn Hw.Phys_mem.Data;
        retag_direct_map t pfn ~pkey:Hw.Pks.pkey_guest;
        Ok ()

(* Validate a prospective leaf mapping va -> pfn with [flags]. *)
let check_leaf t ~va ~pfn ~(flags : Hw.Pte.flags) : (unit, error) result =
  if Layout.in_ksm va || Layout.in_pervcpu va then Error (Reserved_range va)
  else if not (owns_frame t pfn) then Error (Targets_monitor_memory va)
  else
    let d = desc t pfn in
    match d.state with
    | Ksm_private -> Error (Targets_monitor_memory va)
    | Guest_ptp _ -> Error (Maps_declared_ptp pfn)
    | Guest_data ->
        if t.kernel_exec_frozen && (not flags.Hw.Pte.user) && not flags.Hw.Pte.nx then
          Error (Kernel_executable_mapping va)
        else Ok ()

(* Propagate a write of top-level slot [idx] to all per-vCPU copies
   (the user-range slots only; fixed slots are KSM-managed). *)
let propagate_top t ~root ~idx v =
  match Hashtbl.find_opt t.roots root with
  | None -> ()
  | Some info -> Array.iter (fun copy -> write_raw t ~pfn:copy ~index:idx v) info.copies

(* The validated PTE-update path (one KSM call): installs va -> pfn in
   the page table rooted at [root], allocating intermediate PTPs via
   [alloc_ptp] (guest frames, declared inline).  Huge leaves sit at
   level 2. *)
let guest_map t ~root ~va ~pfn ~(flags : Hw.Pte.flags) ~alloc_ptp : (unit, error) result =
  charge_call t;
  let leaf_level = if flags.Hw.Pte.huge then 2 else 1 in
  match (desc t root).state with
  | (Guest_data | Ksm_private) when not (Hashtbl.mem t.roots root) -> Error (Undeclared_root root)
  | _ -> (
      match check_leaf t ~va ~pfn ~flags with
      | Error e -> Error e
      | Ok () ->
          let rec go lvl table =
            let idx = Hw.Addr.index_at_level ~lvl va in
            if lvl = leaf_level then begin
              write_raw t ~pfn:table ~index:idx (Hw.Pte.make ~pfn ~flags);
              if lvl = 4 then propagate_top t ~root ~idx (Hw.Pte.make ~pfn ~flags);
              Ok ()
            end
            else
              let e = read_raw t ~pfn:table ~index:idx in
              if Hw.Pte.is_present e then go (lvl - 1) (Hw.Pte.pfn e)
              else
                let new_ptp = alloc_ptp () in
                match
                  if owns_frame t new_ptp then begin
                    (* Inline declaration: the guest passed a fresh frame
                       to become a PTP at lvl-1. *)
                    let d = desc t new_ptp in
                    match d.state with
                    | Guest_data ->
                        d.state <- Guest_ptp (lvl - 1);
                        d.ptp_map_count <- 1;
                        Hw.Phys_mem.set_kind t.mem new_ptp (Hw.Phys_mem.Page_table (lvl - 1));
                        Hw.Phys_mem.clear_table t.mem new_ptp;
                        retag_direct_map t new_ptp ~pkey:Hw.Pks.pkey_ptp;
                        Ok ()
                    | Guest_ptp _ | Ksm_private -> Error (Already_declared new_ptp)
                  end
                  else Error (Not_guest_frame new_ptp)
                with
                | Error e -> Error e
                | Ok () ->
                    let link =
                      Hw.Pte.make ~pfn:new_ptp
                        ~flags:{ Hw.Pte.default_flags with writable = true; user = true }
                    in
                    write_raw t ~pfn:table ~index:idx link;
                    if lvl = 4 then propagate_top t ~root ~idx link;
                    go (lvl - 1) new_ptp
          in
          go 4 root)

let guest_unmap t ~root ~va : (unit, error) result =
  charge_call t;
  if not (Hashtbl.mem t.roots root) then Error (Undeclared_root root)
  else if Layout.in_ksm va || Layout.in_pervcpu va then Error (Reserved_range va)
  else begin
    let rec go lvl table =
      let idx = Hw.Addr.index_at_level ~lvl va in
      let e = read_raw t ~pfn:table ~index:idx in
      if not (Hw.Pte.is_present e) then ()
      else if lvl = 1 || (lvl = 2 && Hw.Pte.is_huge e) then begin
        write_raw t ~pfn:table ~index:idx Hw.Pte.empty;
        trace_downgrade t ~root ~va ~unmapped:true;
        if lvl = 4 then propagate_top t ~root ~idx Hw.Pte.empty
      end
      else go (lvl - 1) (Hw.Pte.pfn e)
    in
    go 4 root;
    Ok ()
  end

let guest_protect t ~root ~va ~writable : (unit, error) result =
  charge_call t;
  if not (Hashtbl.mem t.roots root) then Error (Undeclared_root root)
  else if Layout.in_ksm va || Layout.in_pervcpu va then Error (Reserved_range va)
  else begin
    let rec go lvl table =
      let idx = Hw.Addr.index_at_level ~lvl va in
      let e = read_raw t ~pfn:table ~index:idx in
      if not (Hw.Pte.is_present e) then ()
      else if lvl = 1 || (lvl = 2 && Hw.Pte.is_huge e) then begin
        if (not writable) && Hw.Pte.is_writable e then
          trace_downgrade t ~root ~va ~unmapped:false;
        write_raw t ~pfn:table ~index:idx (Hw.Pte.with_writable e writable)
      end
      else go (lvl - 1) (Hw.Pte.pfn e)
    in
    go 4 root;
    Ok ()
  end

(* Declare a guest frame as a top-level PTP and build its per-vCPU
   copies (invariant I3 + Section 4.3 "per-vCPU page table"). *)
let declare_root t ~pfn : (unit, error) result =
  match declare_ptp t ~pfn ~level:4 with
  | Error e -> Error e
  | Ok () ->
      List.iter (fun (idx, e) -> write_raw t ~pfn ~index:idx e) t.template;
      let copies =
        Array.init (Pervcpu.vcpus t.pervcpu) (fun v ->
            let copy = alloc_ksm_frame t (Hw.Phys_mem.Page_table 4) in
            for idx = 0 to Hw.Addr.entries_per_table - 1 do
              write_raw t ~pfn:copy ~index:idx (read_raw t ~pfn ~index:idx)
            done;
            write_raw t ~pfn:copy ~index:Layout.l4_pervcpu (Pervcpu.l4_entry t.pervcpu v);
            copy)
      in
      Hashtbl.replace t.roots pfn { copies };
      Ok ()

(* Validated CR3 load: only declared top-level PTPs; the loaded value
   is the caller vCPU's copy (which maps that vCPU's area). *)
let load_cr3 t ~vcpu ~root : (Hw.Addr.pfn, error) result =
  charge_call t;
  if vcpu < 0 || vcpu >= Pervcpu.vcpus t.pervcpu then Error (Bad_vcpu vcpu)
  else
    match Hashtbl.find_opt t.roots root with
    | None -> Error (Undeclared_root root)
    | Some info -> Ok info.copies.(vcpu)

(* Read a top-level PTE, propagating accessed/dirty bits from the
   per-vCPU copies into the original (Section 4.3). *)
let read_top_pte t ~root ~idx : (int64, error) result =
  match Hashtbl.find_opt t.roots root with
  | None -> Error (Undeclared_root root)
  | Some info ->
      let acc = ref (read_raw t ~pfn:root ~index:idx) in
      Array.iter
        (fun copy ->
          let e = read_raw t ~pfn:copy ~index:idx in
          if Hw.Pte.is_accessed e then acc := Hw.Pte.mark_accessed !acc;
          if Hw.Pte.is_dirty e then acc := Hw.Pte.mark_dirty !acc)
        info.copies;
      write_raw t ~pfn:root ~index:idx !acc;
      Ok !acc

(* iret executed by the KSM on the guest's behalf (Table 3). *)
let iret t = charge_call t

(* Release a process address space: undeclare + return its user-range
   PTPs through [free_ptp]; the KSM-owned copies are freed. *)
let release_root t ~root ~free_ptp : (unit, error) result =
  match Hashtbl.find_opt t.roots root with
  | None -> Error (Undeclared_root root)
  | Some info ->
      let rec free_subtree lvl table =
        if lvl > 1 then
          for idx = 0 to Hw.Addr.entries_per_table - 1 do
            let e = read_raw t ~pfn:table ~index:idx in
            if Hw.Pte.is_present e && not (Hw.Pte.is_huge e) then begin
              let child = Hw.Pte.pfn e in
              if owns_frame t child then begin
                free_subtree (lvl - 1) child;
                ignore (undeclare_ptp t ~pfn:child);
                free_ptp child
              end
            end
          done
      in
      (* Only the user-range slots hold guest-owned subtrees. *)
      for idx = 0 to Layout.l4_user_max do
        let e = read_raw t ~pfn:root ~index:idx in
        if Hw.Pte.is_present e then begin
          let child = Hw.Pte.pfn e in
          if owns_frame t child then begin
            free_subtree 3 child;
            ignore (undeclare_ptp t ~pfn:child);
            free_ptp child
          end
        end
      done;
      Array.iter (fun copy -> Hw.Phys_mem.free t.mem copy) info.copies;
      Hashtbl.remove t.roots root;
      (match undeclare_ptp t ~pfn:root with Ok () | Error _ -> ());
      Ok ()

(* ------------------------------------------------------------------ *)
(* Traced entry points (shadow the raw implementations above so every  *)
(* guest-visible operation leaves a Ksm_op event in the trace).        *)
(* ------------------------------------------------------------------ *)

let declare_ptp t ~pfn ~level = traced t ~op:"declare_ptp" (declare_ptp t ~pfn ~level)
let undeclare_ptp t ~pfn = traced t ~op:"undeclare_ptp" (undeclare_ptp t ~pfn)

let guest_map t ~root ~va ~pfn ~flags ~alloc_ptp =
  traced t ~op:"guest_map" (guest_map t ~root ~va ~pfn ~flags ~alloc_ptp)

let guest_unmap t ~root ~va = traced t ~op:"guest_unmap" (guest_unmap t ~root ~va)

let guest_protect t ~root ~va ~writable =
  traced t ~op:"guest_protect" (guest_protect t ~root ~va ~writable)

let declare_root t ~pfn = traced t ~op:"declare_root" (declare_root t ~pfn)
let load_cr3 t ~vcpu ~root = traced t ~op:"load_cr3" (load_cr3 t ~vcpu ~root)
let release_root t ~root ~free_ptp = traced t ~op:"release_root" (release_root t ~root ~free_ptp)

let kernel_root t = t.kernel_root
let idt t = t.idt
let pervcpu t = t.pervcpu
let ksm_call_count t = t.ksm_calls
let is_declared_ptp t pfn = match (desc t pfn).state with Guest_ptp _ -> true | Guest_data | Ksm_private -> false
let root_copies t root = Option.map (fun i -> i.copies) (Hashtbl.find_opt t.roots root)

(* ------------------------------------------------------------------ *)
(* Read-only introspection for the analysis library.  These expose     *)
(* the monitor's *claimed* state so an external scanner can re-derive  *)
(* the machine's actual state and cross-check — they perform no        *)
(* validation themselves.                                              *)
(* ------------------------------------------------------------------ *)

let segments t = t.segments

let page_state_of t pfn =
  match Hashtbl.find_opt t.descs pfn with Some d -> d.state | None -> Guest_data

let declared_ptps t =
  Hashtbl.fold
    (fun pfn d acc -> match d.state with Guest_ptp lvl -> (pfn, lvl) :: acc | _ -> acc)
    t.descs []

let roots t = Hashtbl.fold (fun pfn info acc -> (pfn, info.copies) :: acc) t.roots []

(* Final teardown sweep: free every frame still owned by this container
   or its KSM, clearing a frozen template's shared_ro tag first so the
   frame returns to the host clean.  The KSM is the only component
   trusted to strip that tag; the caller (Container.destroy) must
   already have verified no clone still references these frames and
   dropped this container's own CoW references to foreign frames. *)
let scrub_owned t =
  let mem = t.mem in
  let id = t.container_id in
  for pfn = 0 to Hw.Phys_mem.total_frames mem - 1 do
    match Hw.Phys_mem.owner mem pfn with
    | (Hw.Phys_mem.Container k | Hw.Phys_mem.Ksm k) when k = id ->
        if Hw.Phys_mem.is_shared_ro mem pfn then Hw.Phys_mem.set_shared_ro mem pfn false;
        Hw.Phys_mem.free mem pfn
    | _ -> ()
  done
let template_slots t = List.map fst t.template
let kernel_exec_frozen t = t.kernel_exec_frozen
