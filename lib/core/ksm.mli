(** The Kernel Security Monitor.

    One KSM lives inside each container's address space, PKS-isolated
    from the guest kernel it supervises. It owns the privileged
    operations that touch only container-private data (Section 4.3):

    - page-table-page (PTP) declaration and PTE updates, enforcing the
      nested-kernel-style invariants:
      {ul {- I1: only declared frames are used as PTPs;}
          {- I2: declared PTPs are read-only to the guest (pkey_ptp);}
          {- I3: only a declared top-level PTP can be loaded into CR3;}}
      plus: no PTE may target KSM/host memory, no declared PTP may be
      mapped by a guest PTE, and no {e new} kernel-executable mappings
      after boot (so the guest can never forge a [wrpkrs]);
    - per-vCPU top-level PTP copies that splice the KSM region and the
      per-vCPU area into every activated page table;
    - validated CR3 loads;
    - [iret] on the guest's behalf.

    Each entry point charges one KSM-call gate cost
    ({!Hw.Cost.ksm_call}); none of them pays PTI/IBRS because only
    container-private data is mapped in the KSM (Section 3.3). *)

type page_state = Guest_data | Guest_ptp of int | Ksm_private

val pp_page_state : Format.formatter -> page_state -> unit
val show_page_state : page_state -> string
val equal_page_state : page_state -> page_state -> bool

type error =
  | Not_guest_frame of Hw.Addr.pfn
  | Already_declared of Hw.Addr.pfn
  | Not_declared of Hw.Addr.pfn
  | Wrong_level of { expected : int; got : int }
  | Ptp_mapped_twice of Hw.Addr.pfn
  | Targets_monitor_memory of Hw.Addr.va
  | Maps_declared_ptp of Hw.Addr.pfn
  | Kernel_executable_mapping of Hw.Addr.va
  | Undeclared_root of Hw.Addr.pfn
  | Reserved_range of Hw.Addr.va
  | Bad_vcpu of int

val pp_error : Format.formatter -> error -> unit
val show_error : error -> string

type t

val create :
  Hw.Phys_mem.t ->
  Hw.Clock.t ->
  container_id:int ->
  cfg:Config.t ->
  segments:(Hw.Addr.pfn * int) list ->
  t
(** Trusted boot-time construction: builds the KSM region, the guest
    kernel image, the direct map of the delegated segments (4 KiB PTEs
    so PTPs can be individually re-tagged), the container IDT (locked),
    the guest kernel's boot address space and its per-vCPU copies, then
    freezes kernel-executable mappings. *)

(** {2 Snapshot restore} *)

type import = {
  i_segments : (Hw.Addr.pfn * int) list;
  i_ptps : (Hw.Addr.pfn * int) list;  (** declared PTPs with levels *)
  i_roots : (Hw.Addr.pfn * Hw.Addr.pfn array) list;  (** root, per-vCPU copies *)
  i_kernel_root : Hw.Addr.pfn;
  i_template : (int * int64) list;
      (** fixed L4 slots, relocated entries — {e without} the direct-map
          slot, whose subtree is rebuilt from [i_segments] *)
  i_tables : (Hw.Addr.pfn * (int * int64) list) list;
      (** every live table's non-empty entries, relocated *)
}

val restore :
  Hw.Phys_mem.t ->
  Hw.Clock.t ->
  container_id:int ->
  cfg:Config.t ->
  pervcpu:Pervcpu.t ->
  import ->
  t
(** Trusted reconstruction from a snapshot (the restore analogue of
    {!create}): rebuilds the locked IDT deterministically, restores
    declared-PTP metadata and root registrations, and writes every live
    table's relocated entries through the monitor.  The direct map is
    {e not} imported: its VA layout keys on physical addresses
    (va = direct_map_base + pa), so it is rebuilt from the new segment
    bases, spliced into every root and per-vCPU copy, and every
    declared PTP's fresh leaf is retagged pkey_ptp — so PTPs declared
    {e after} restore keep hitting the right leaf (I2).  All frame
    numbers in [import] must already be relocated; the caller
    (lib/snapshot) verifies the result with the analysis scanner, so a
    restore cannot silently violate I1-I3. *)

val owns_frame : t -> Hw.Addr.pfn -> bool
(** Does [pfn] belong to the container's delegated segments? *)

val declare_ptp : t -> pfn:Hw.Addr.pfn -> level:int -> (unit, error) result
(** Declare a guest frame as a PTP (invariants I1 + I2: the frame's
    direct-map PTE is re-tagged pkey_ptp). *)

val undeclare_ptp : t -> pfn:Hw.Addr.pfn -> (unit, error) result

val check_leaf : t -> va:Hw.Addr.va -> pfn:Hw.Addr.pfn -> flags:Hw.Pte.flags -> (unit, error) result
(** Validate a prospective leaf mapping (exposed for tests). *)

val guest_map :
  t ->
  root:Hw.Addr.pfn ->
  va:Hw.Addr.va ->
  pfn:Hw.Addr.pfn ->
  flags:Hw.Pte.flags ->
  alloc_ptp:(unit -> Hw.Addr.pfn) ->
  (unit, error) result
(** The validated PTE-update path (one KSM call): install va -> pfn in
    the table rooted at [root], declaring intermediate PTPs from
    [alloc_ptp] inline; top-level writes propagate to the per-vCPU
    copies. Huge leaves sit at level 2 when [flags.huge]. *)

val guest_unmap : t -> root:Hw.Addr.pfn -> va:Hw.Addr.va -> (unit, error) result
val guest_protect : t -> root:Hw.Addr.pfn -> va:Hw.Addr.va -> writable:bool -> (unit, error) result

val declare_root : t -> pfn:Hw.Addr.pfn -> (unit, error) result
(** Declare a top-level PTP: splices the fixed kernel/KSM subtrees into
    it and builds one copy per vCPU, each mapping that vCPU's area at
    the constant address (Section 4.2/4.3). *)

val load_cr3 : t -> vcpu:int -> root:Hw.Addr.pfn -> (Hw.Addr.pfn, error) result
(** Validated CR3 load (invariant I3); returns the vCPU's copy. *)

val read_top_pte : t -> root:Hw.Addr.pfn -> idx:int -> (int64, error) result
(** Read a top-level PTE, propagating accessed/dirty bits from the
    per-vCPU copies into the original. *)

val iret : t -> unit
(** [iret] executed by the KSM on the guest's behalf (Table 3). *)

val release_root :
  t -> root:Hw.Addr.pfn -> free_ptp:(Hw.Addr.pfn -> unit) -> (unit, error) result
(** Tear down a process address space: undeclare and return its
    user-range PTPs, free the KSM-owned copies. *)

val kernel_root : t -> Hw.Addr.pfn
(** The guest kernel's boot address space root. *)

val idt : t -> Hw.Idt.t
(** The container IDT — resident in KSM memory, locked at boot. *)

val pervcpu : t -> Pervcpu.t
val ksm_call_count : t -> int
val is_declared_ptp : t -> Hw.Addr.pfn -> bool
val root_copies : t -> Hw.Addr.pfn -> Hw.Addr.pfn array option

(** {2 Read-only introspection}

    Exposed for the analysis library's whole-machine scanner, which
    re-walks the live page tables from scratch and cross-checks the
    result against the monitor's claimed state. These accessors perform
    no validation — using them cannot launder a check through the KSM's
    own enforcement paths. *)

val segments : t -> (Hw.Addr.pfn * int) list
(** The delegated hPA segments [(base, frames)]. *)

val page_state_of : t -> Hw.Addr.pfn -> page_state
(** The monitor's claimed state for a frame (undeclared frames read as
    [Guest_data]). *)

val declared_ptps : t -> (Hw.Addr.pfn * int) list
(** All frames currently declared as PTPs, with their levels. *)

val roots : t -> (Hw.Addr.pfn * Hw.Addr.pfn array) list
(** All declared top-level PTPs with their per-vCPU copies. *)

val scrub_owned : t -> unit
(** Teardown sweep: free every frame this container or its KSM still
    owns, stripping a template's shared-read-only tag first.  Only the
    KSM may strip that tag; {!Container.destroy} calls this last, after
    verifying no clone still references the frames. *)

val template_slots : t -> int list
(** The fixed L4 indices the KSM splices into every root. *)

val kernel_exec_frozen : t -> bool
(** Whether new kernel-executable mappings are refused (set at boot). *)
