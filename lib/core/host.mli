(** The CKI host-kernel side: hPA-segment delegation, VirtIO backends,
    hardware-interrupt handling and virtual-interrupt injection
    (Sections 3.3, 4.2 "slow paths").

    In a nested cloud the host kernel {e is} the L1 kernel; a CKI exit
    never involves L0, so the costs here are environment-independent. *)

type delegated = { base : Hw.Addr.pfn; frames : int; container : int }

(** Segment-delegation policy. [First_fit] is the paper's acknowledged
    fragmentation limitation (the whole request must be one contiguous
    run); [Scatter] — the default — falls back to adaptively splitting
    the request into smaller contiguous chunks, so delegation survives
    heavy container churn. *)
type policy = First_fit | Scatter

val scatter_min_chunk : int
(** Smallest chunk scatter delegation will take (bounds a container's
    zone count). *)

type t

val create : ?policy:policy -> ?first_container:int -> Hw.Machine.t -> t
(** Default policy is [Scatter]. [first_container] (default 1) offsets
    the container-id counter so several host instances sharing one
    machine (fleet host slices) keep machine-wide-unique ids. *)

val machine : t -> Hw.Machine.t
val host_root : t -> Hw.Addr.pfn
val host_pcid : t -> int
val policy : t -> policy
val set_policy : t -> policy -> unit
val fresh_container_id : t -> int

val delegate_segment : t -> container:int -> frames:int -> Hw.Addr.pfn * int
(** First-fit contiguous hPA delegation — fragmentation-prone by
    design (the paper's acknowledged limitation).
    @raise Hw.Phys_mem.Out_of_memory when no sufficient run exists. *)

val delegate_scatter : t -> container:int -> frames:int -> (Hw.Addr.pfn * int) list
(** Scatter delegation: contiguous when a run exists (layout identical
    to first-fit on an unfragmented host), otherwise split adaptively —
    the attempted chunk halves on each contiguous failure down to
    {!scatter_min_chunk}. Partial allocations are rolled back.
    @raise Hw.Phys_mem.Out_of_memory when free runs of at least the
    minimum chunk cannot cover the request. *)

val delegate : t -> container:int -> frames:int -> (Hw.Addr.pfn * int) list
(** Policy-dispatching delegation: one segment under [First_fit],
    possibly several under [Scatter]. *)

val reclaim_segment : t -> container:int -> unit
val delegations_of : t -> container:int -> delegated list

val handle_hypercall : t -> Kernel_model.Platform.io_kind -> unit
(** Host-side handler for the global-data privileged operations:
    VirtIO doorbells, timers, vCPU pause, IPIs. *)

val handle_hw_interrupt : t -> vector:int -> unit
val inject_virq : t -> unit
val hypercall_count : t -> int
val injected_virqs : t -> int
val hw_interrupt_count : t -> int

val doorbell_count : t -> int
(** Device-doorbell hypercalls (Net/Blk kinds) handled. *)

(** Warm pool of pre-booted clone templates. Polymorphic in the
    template type so lib/core does not depend on lib/snapshot; the
    snapshot layer instantiates it with frozen templates and serves
    [spawn_fast] from it. Templates are immutable once frozen, so
    {!Warm_pool.take} rotates rather than consumes. *)
module Warm_pool : sig
  type 'a t

  val create : ?low_water:int -> target:int -> make:(unit -> 'a) -> unit -> 'a t
  (** Pre-boot [target] templates with [make]. [low_water] (default 0)
      arms {!refill_low_water}. *)

  val take : 'a t -> 'a
  (** Next ready template (round-robin); falls back to [make] — and
      keeps the new template in the pool — when empty. A take from a
      ready template counts as a hit, an inline build as a miss. *)

  val refill_low_water : 'a t -> int
  (** Background-refill hook: when the ready count has dipped below the
      low-water mark, rebuild up to target; returns templates built. *)

  val drain : 'a t -> 'a list
  (** Empty the ready queue (simulating template eviction); returns the
      drained templates so the caller can decide their fate — only the
      snapshot layer knows whether one still backs live CoW clones and
      must be retired rather than destroyed. The next {!take} is a miss
      unless {!refill_low_water} runs first. *)

  val size : 'a t -> int
  val prebooted : 'a t -> int
  val served : 'a t -> int
  val hits : 'a t -> int
  val misses : 'a t -> int
  val refills : 'a t -> int
end
