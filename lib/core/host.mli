(** The CKI host-kernel side: hPA-segment delegation, VirtIO backends,
    hardware-interrupt handling and virtual-interrupt injection
    (Sections 3.3, 4.2 "slow paths").

    In a nested cloud the host kernel {e is} the L1 kernel; a CKI exit
    never involves L0, so the costs here are environment-independent. *)

type delegated = { base : Hw.Addr.pfn; frames : int; container : int }

type t

val create : Hw.Machine.t -> t
val machine : t -> Hw.Machine.t
val host_root : t -> Hw.Addr.pfn
val host_pcid : t -> int
val fresh_container_id : t -> int

val delegate_segment : t -> container:int -> frames:int -> Hw.Addr.pfn * int
(** First-fit contiguous hPA delegation — fragmentation-prone by
    design (the paper's acknowledged limitation).
    @raise Hw.Phys_mem.Out_of_memory when no sufficient run exists. *)

val reclaim_segment : t -> container:int -> unit
val delegations_of : t -> container:int -> delegated list

val handle_hypercall : t -> Kernel_model.Platform.io_kind -> unit
(** Host-side handler for the global-data privileged operations:
    VirtIO doorbells, timers, vCPU pause, IPIs. *)

val handle_hw_interrupt : t -> vector:int -> unit
val inject_virq : t -> unit
val hypercall_count : t -> int
val injected_virqs : t -> int
val hw_interrupt_count : t -> int

val doorbell_count : t -> int
(** Device-doorbell hypercalls (Net/Blk kinds) handled. *)

(** Warm pool of pre-booted clone templates. Polymorphic in the
    template type so lib/core does not depend on lib/snapshot; the
    snapshot layer instantiates it with frozen templates and serves
    [spawn_fast] from it. Templates are immutable once frozen, so
    {!Warm_pool.take} rotates rather than consumes. *)
module Warm_pool : sig
  type 'a t

  val create : target:int -> make:(unit -> 'a) -> 'a t
  (** Pre-boot [target] templates with [make]. *)

  val take : 'a t -> 'a
  (** Next ready template (round-robin); falls back to [make] — and
      keeps the new template in the pool — when empty. *)

  val size : 'a t -> int
  val prebooted : 'a t -> int
  val served : 'a t -> int
end
