(* The three switch gates of Section 4.2 (Figure 8), simulated against
   real CPU state so their security checks are executable:

     - KSM call gate: wrpkrs to 0, secure-stack switch (per-vCPU area
       found at a constant VA — no trusted gs), handler, wrpkrs back,
       post-write check against ROP-style PKRS tampering;
     - hypercall gate: wrpkrs to 0 + full context switch to the host
       kernel (CR3, registers, IBRS towards the host);
     - interrupt gate: entered by *hardware* interrupt delivery, which
       (extension E4) saves PKRS and zeroes it before the first gate
       instruction — there is no wrpkrs in the gate to abuse, and a
       guest jumping to the gate entry keeps PKRS_GUEST and faults on
       the per-vCPU area. *)

type error =
  | Pkrs_tamper_detected  (** post-wrpkrs check failed: ROP abuse *)
  | Forgery_detected  (** gate entered without hardware PKRS switch *)
  | Not_kernel_mode
[@@deriving show { with_path = false }, eq]

type t = {
  ksm : Ksm.t;
  cfg : Config.t;
  clock : Hw.Clock.t;
  host_cr3 : Hw.Addr.pfn;
  host_pcid : int;
  mutable forged_interrupts_blocked : int;
  mutable tampers_blocked : int;
}

let create ~ksm ~cfg ~clock ~host_cr3 ~host_pcid =
  { ksm; cfg; clock; host_cr3; host_pcid; forged_interrupts_blocked = 0; tampers_blocked = 0 }

(* The switch_pks macro of Figure 8a: write PKRS then verify the write
   took the intended value.  [tamper] simulates an attacker reaching
   the wrpkrs with a register holding a different value. *)
let switch_pks (cpu : Hw.Cpu.t) ~target ?tamper () : (unit, error) result =
  let written = match tamper with Some v -> v | None -> target in
  match Hw.Cpu.exec_priv cpu (Hw.Priv.Wrpkrs written) with
  | Error _ -> Error Not_kernel_mode
  | Ok () ->
      if cpu.Hw.Cpu.pkrs <> target && Hw.Mutation.knobs.Hw.Mutation.gate_verify_wrpkrs then
        Error Pkrs_tamper_detected
      else Ok ()

(* KSM call gate (Figure 8a).  Runs [f] with monitor rights on the
   vCPU's secure stack.  [tamper_entry]/[tamper_exit] simulate an
   attacker reaching either wrpkrs with a chosen register value; the
   interesting attack is ROP-ing to the *exit* wrpkrs with a permissive
   value, which the post-write check catches. *)
(* Probe hooks: each gate emits an enter/exit event pair so the trace
   linter can verify PKRS is restored on every path. *)
let trace_enter (cpu : Hw.Cpu.t) gate ~pkrs =
  if Hw.Probe.active () then
    Hw.Probe.emit (Hw.Probe.Gate_enter { cpu = cpu.Hw.Cpu.id; gate; pkrs })

let trace_exit (cpu : Hw.Cpu.t) gate ~entry_pkrs =
  if Hw.Probe.active () then
    Hw.Probe.emit
      (Hw.Probe.Gate_exit { cpu = cpu.Hw.Cpu.id; gate; entry_pkrs; pkrs = cpu.Hw.Cpu.pkrs })

let ksm_call (t : t) (cpu : Hw.Cpu.t) ~vcpu ?tamper_entry ?tamper_exit (f : unit -> 'a) :
    ('a, error) result =
  if cpu.Hw.Cpu.mode <> Hw.Cpu.Kernel then Error Not_kernel_mode
  else
    let saved = cpu.Hw.Cpu.pkrs in
    trace_enter cpu Hw.Probe.Ksm_call_gate ~pkrs:saved;
    let abort e =
      if e = Pkrs_tamper_detected then t.tampers_blocked <- t.tampers_blocked + 1;
      cpu.Hw.Cpu.pkrs <- saved;
      trace_exit cpu Hw.Probe.Ksm_call_gate ~entry_pkrs:saved;
      Error e
    in
    match switch_pks cpu ~target:Hw.Pks.all_access ?tamper:tamper_entry () with
    | Error e -> abort e
    | Ok () ->
        (* gs is untrusted: the secure stack is found at the constant
           per-vCPU VA, which needs monitor rights. *)
        assert (Pervcpu.accessible_with ~pkrs:cpu.Hw.Cpu.pkrs);
        let area = Pervcpu.area (Ksm.pervcpu t.ksm) vcpu in
        Pervcpu.push_stack area;
        let result = f () in
        Pervcpu.pop_stack area;
        (match switch_pks cpu ~target:saved ?tamper:tamper_exit () with
        | Ok () ->
            trace_exit cpu Hw.Probe.Ksm_call_gate ~entry_pkrs:saved;
            Ok result
        | Error e -> abort e)

(* Hypercall gate (Figure 8b, left): full exit to the host kernel.
   [tamper_entry]/[tamper_exit] simulate an attacker reaching either
   wrpkrs with a chosen register value, exactly as in [ksm_call]. *)
let hypercall (t : t) (cpu : Hw.Cpu.t) ~vcpu ?tamper_entry ?tamper_exit
    ~(request : Kernel_model.Platform.io_kind)
    (host_handler : Kernel_model.Platform.io_kind -> unit) : (unit, error) result =
  if cpu.Hw.Cpu.mode <> Hw.Cpu.Kernel then Error Not_kernel_mode
  else
    let guest_pkrs = cpu.Hw.Cpu.pkrs in
    let guest_cr3 = cpu.Hw.Cpu.cr3 in
    let guest_pcid = cpu.Hw.Cpu.pcid in
    trace_enter cpu Hw.Probe.Hypercall_gate ~pkrs:guest_pkrs;
    let abort e =
      if e = Pkrs_tamper_detected then t.tampers_blocked <- t.tampers_blocked + 1;
      cpu.Hw.Cpu.pkrs <- guest_pkrs;
      trace_exit cpu Hw.Probe.Hypercall_gate ~entry_pkrs:guest_pkrs;
      Error e
    in
    match switch_pks cpu ~target:Hw.Pks.all_access ?tamper:tamper_entry () with
    | Error e -> abort e
    | Ok () ->
        let area = Pervcpu.area (Ksm.pervcpu t.ksm) vcpu in
        area.Pervcpu.exit_reason <- Some (Pervcpu.Exit_hypercall request);
        area.Pervcpu.saved_guest_context <- area.Pervcpu.saved_guest_context + 1;
        (* exit_to_host: CR3 to the host kernel, registers, IBRS. *)
        cpu.Hw.Cpu.cr3 <- t.host_cr3;
        cpu.Hw.Cpu.pcid <- t.host_pcid;
        Hw.Clock.charge t.clock "cki_hypercall" Hw.Cost.cki_hypercall;
        host_handler request;
        (* resume: restore guest context *)
        cpu.Hw.Cpu.cr3 <- guest_cr3;
        cpu.Hw.Cpu.pcid <- guest_pcid;
        area.Pervcpu.exit_reason <- None;
        (match switch_pks cpu ~target:guest_pkrs ?tamper:tamper_exit () with
        | Ok () ->
            trace_exit cpu Hw.Probe.Hypercall_gate ~entry_pkrs:guest_pkrs;
            Ok ()
        | Error e -> abort e)

(* Interrupt gate (Figure 8b, right).  [kind] is how control reached
   the gate: [Hardware] delivery applies extension E4 (PKRS saved and
   zeroed by the CPU); a guest jumping here directly is [Software] and
   must be caught. *)
let interrupt (t : t) (cpu : Hw.Cpu.t) ~vcpu ~vector ~(kind : Hw.Idt.delivery)
    (host_handler : int -> unit) : (unit, error) result =
  let entry = Hw.Idt.deliver (Ksm.idt t.ksm) cpu ~kind vector in
  ignore entry;
  (* The value the extended iret must restore on exit: the PKRS the
     hardware saved at delivery (top of the E4 stack), or — on a forged
     software entry, where nothing was saved — the current rights. *)
  let expected_pkrs =
    match cpu.Hw.Cpu.saved_pkrs with r :: _ -> r | [] -> cpu.Hw.Cpu.pkrs
  in
  trace_enter cpu Hw.Probe.Interrupt_gate ~pkrs:expected_pkrs;
  (* First gate action: save IRQ info into the per-vCPU area.  With
     PKRS still at PKRS_GUEST (forged entry) this access faults. *)
  if
    Hw.Mutation.knobs.Hw.Mutation.gate_forgery_check
    && not (Pervcpu.accessible_with ~pkrs:cpu.Hw.Cpu.pkrs)
  then begin
    t.forged_interrupts_blocked <- t.forged_interrupts_blocked + 1;
    trace_exit cpu Hw.Probe.Interrupt_gate ~entry_pkrs:expected_pkrs;
    Error Forgery_detected
  end
  else begin
    let area = Pervcpu.area (Ksm.pervcpu t.ksm) vcpu in
    area.Pervcpu.exit_reason <- Some (Pervcpu.Exit_interrupt vector);
    Hw.Clock.charge t.clock "cki_irq_exit" Hw.Cost.irq_delivery;
    host_handler vector;
    area.Pervcpu.exit_reason <- None;
    (* iret with PKRS = 0 (allowed), restoring the saved PKRS (E4). *)
    let r =
      match Hw.Cpu.exec_priv cpu Hw.Priv.Iret with
      | Ok () -> Ok ()
      | Error _ -> Error Not_kernel_mode
    in
    trace_exit cpu Hw.Probe.Interrupt_gate ~entry_pkrs:expected_pkrs;
    r
  end

let forged_blocked t = t.forged_interrupts_blocked
let tampers_blocked t = t.tampers_blocked
