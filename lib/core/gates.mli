(** The three switch gates of Section 4.2 (Figure 8), simulated against
    real CPU state so their security checks are executable.

    - {b KSM call gate}: wrpkrs to 0, secure-stack switch (the per-vCPU
      area is found at a constant VA — no trusted [gs]), handler,
      wrpkrs back, post-write check against ROP-style PKRS tampering.
    - {b Hypercall gate}: wrpkrs to 0 plus a full context switch to the
      host kernel (CR3, registers, IBRS towards the host).
    - {b Interrupt gate}: entered only by hardware delivery, which
      (extension E4) saves PKRS and zeroes it before the first gate
      instruction; a guest jumping to the gate entry keeps PKRS_GUEST
      and faults on the per-vCPU area — forgery is detected. *)

type error =
  | Pkrs_tamper_detected  (** post-wrpkrs check failed: ROP abuse *)
  | Forgery_detected  (** gate entered without the hardware PKRS switch *)
  | Not_kernel_mode

val pp_error : Format.formatter -> error -> unit
val show_error : error -> string
val equal_error : error -> error -> bool

type t

val create :
  ksm:Ksm.t ->
  cfg:Config.t ->
  clock:Hw.Clock.t ->
  host_cr3:Hw.Addr.pfn ->
  host_pcid:int ->
  t

val switch_pks :
  Hw.Cpu.t -> target:Hw.Pks.rights -> ?tamper:Hw.Pks.rights -> unit -> (unit, error) result
(** The [switch_pks] macro of Figure 8a: write PKRS, then verify the
    write took the intended value. [tamper] simulates an attacker
    reaching the wrpkrs with a different register value. *)

val ksm_call :
  t ->
  Hw.Cpu.t ->
  vcpu:int ->
  ?tamper_entry:Hw.Pks.rights ->
  ?tamper_exit:Hw.Pks.rights ->
  (unit -> 'a) ->
  ('a, error) result
(** Run a handler with monitor rights on the vCPU's secure stack. The
    interesting attack is ROP-ing to the {e exit} wrpkrs with a
    permissive value; the post-write check catches it and the gate
    aborts with guest rights restored. *)

val hypercall :
  t ->
  Hw.Cpu.t ->
  vcpu:int ->
  ?tamper_entry:Hw.Pks.rights ->
  ?tamper_exit:Hw.Pks.rights ->
  request:Kernel_model.Platform.io_kind ->
  (Kernel_model.Platform.io_kind -> unit) ->
  (unit, error) result
(** Full exit to the host kernel: saves the guest context in the
    per-vCPU area, switches to the host CR3/PCID, runs the host
    handler, restores. Charges {!Hw.Cost.cki_hypercall}.
    [tamper_entry]/[tamper_exit] simulate an attacker reaching either
    wrpkrs with a chosen register value, as in {!ksm_call}; a detected
    tamper aborts with guest rights restored. *)

val interrupt :
  t ->
  Hw.Cpu.t ->
  vcpu:int ->
  vector:int ->
  kind:Hw.Idt.delivery ->
  (int -> unit) ->
  (unit, error) result
(** Interrupt gate. [kind = Hardware] applies extension E4 (PKRS saved
    and zeroed by the CPU); [Software] models a guest jumping to the
    gate entry, which must yield [Forgery_detected]. *)

val forged_blocked : t -> int
val tampers_blocked : t -> int
