(* The CKI host-kernel side: hPA segment delegation, vCPU scheduling,
   VirtIO backends, hardware-interrupt handling and virtual-interrupt
   injection (Sections 3.3 and 4.2, "slow paths").

   In a nested cloud the host kernel *is* the L1 kernel; the crucial
   property is that a CKI exit never involves the L0 hypervisor, so the
   costs here are environment-independent. *)

type delegated = { base : Hw.Addr.pfn; frames : int; container : int }

type t = {
  machine : Hw.Machine.t;
  clock : Hw.Clock.t;
  host_root : Hw.Addr.pfn;  (** host kernel page-table root *)
  host_pcid : int;
  mutable delegations : delegated list;
  mutable next_container : int;
  mutable hypercalls : int;
  mutable injected_virqs : int;
  mutable hw_interrupts : int;
  mutable doorbells : int;  (** device-doorbell hypercalls (Net/Blk) *)
}

let create (machine : Hw.Machine.t) =
  let mem = Hw.Machine.mem machine in
  let host_root = Hw.Phys_mem.alloc mem ~owner:Hw.Phys_mem.Host ~kind:(Hw.Phys_mem.Page_table 4) in
  {
    machine;
    clock = Hw.Machine.clock machine;
    host_root;
    host_pcid = 0;
    delegations = [];
    next_container = 1;
    hypercalls = 0;
    injected_virqs = 0;
    hw_interrupts = 0;
    doorbells = 0;
  }

let machine t = t.machine
let host_root t = t.host_root
let host_pcid t = t.host_pcid

let fresh_container_id t =
  let id = t.next_container in
  t.next_container <- id + 1;
  id

(* Delegate a contiguous hPA segment to [container].  First-fit over
   physical memory — the fragmentation-prone allocation the paper
   acknowledges as CKI's limitation. *)
let delegate_segment t ~container ~frames =
  let mem = Hw.Machine.mem t.machine in
  let base =
    Hw.Phys_mem.alloc_contiguous mem ~owner:(Hw.Phys_mem.Container container)
      ~kind:Hw.Phys_mem.Data ~count:frames
  in
  t.delegations <- { base; frames; container } :: t.delegations;
  (base, frames)

let reclaim_segment t ~container =
  let mem = Hw.Machine.mem t.machine in
  let mine, rest = List.partition (fun d -> d.container = container) t.delegations in
  List.iter
    (fun d ->
      for pfn = d.base to d.base + d.frames - 1 do
        if not (Hw.Phys_mem.is_free mem pfn) then Hw.Phys_mem.free mem pfn
      done)
    mine;
  t.delegations <- rest

let delegations_of t ~container = List.filter (fun d -> d.container = container) t.delegations

(* Host-side handler for hypercall requests (the global-data privileged
   operations of Section 3.3: VirtIO, timers, vCPU pause, IPIs). *)
let handle_hypercall t (kind : Kernel_model.Platform.io_kind) =
  t.hypercalls <- t.hypercalls + 1;
  match kind with
  | Kernel_model.Platform.Net_tx | Kernel_model.Platform.Net_rx_ack
  | Kernel_model.Platform.Blk_read | Kernel_model.Platform.Blk_write ->
      (* A device doorbell: the MMIO write lands in the host backend.
         The VirtIO service cost is charged by the queue owner
         (Kernel_model.Virtio.service); here only the write itself. *)
      t.doorbells <- t.doorbells + 1;
      Hw.Clock.charge t.clock "doorbell_write" Hw.Cost.doorbell_write
  | Kernel_model.Platform.Timer -> Hw.Clock.charge t.clock "host_timer_setup" 120.0
  | Kernel_model.Platform.Ipi -> Hw.Clock.charge t.clock "host_ipi" 200.0
  | Kernel_model.Platform.Console -> ()

(* A hardware interrupt arrived while a container vCPU was running: the
   interrupt gate redirected it here; handle and inject a virtual
   interrupt on resume. *)
let handle_hw_interrupt t ~vector =
  ignore vector;
  t.hw_interrupts <- t.hw_interrupts + 1;
  Hw.Clock.charge t.clock "host_irq_handler" Hw.Cost.irq_delivery

let inject_virq t =
  t.injected_virqs <- t.injected_virqs + 1;
  Hw.Clock.charge t.clock "virq_inject" Hw.Cost.virq_inject

let hypercall_count t = t.hypercalls
let injected_virqs t = t.injected_virqs
let hw_interrupt_count t = t.hw_interrupts
let doorbell_count t = t.doorbells

(* ------------------------------------------------------------------ *)
(* Warm pool: pre-booted clone templates for instant scale-out         *)
(* ------------------------------------------------------------------ *)

(* Polymorphic so lib/core need not depend on lib/snapshot: the host
   manages the pool discipline (pre-boot N, rotate, refill on miss);
   the snapshot layer supplies the template type and the clone step. *)
module Warm_pool = struct
  type 'a t = {
    make : unit -> 'a;
    target : int;
    ready : 'a Queue.t;
    mutable prebooted : int;  (** templates ever built (pre-boot + misses) *)
    mutable served : int;  (** take requests served *)
  }

  let refill p =
    while Queue.length p.ready < p.target do
      Queue.add (p.make ()) p.ready;
      p.prebooted <- p.prebooted + 1
    done

  let create ~target ~make =
    if target < 0 then invalid_arg "Warm_pool.create";
    let p = { make; target; ready = Queue.create (); prebooted = 0; served = 0 } in
    refill p;
    p

  (* Templates are immutable once frozen, so a take rotates rather than
     consumes: the same template serves an unbounded number of clones. *)
  let take p =
    p.served <- p.served + 1;
    match Queue.take_opt p.ready with
    | Some x ->
        Queue.add x p.ready;
        x
    | None ->
        let x = p.make () in
        p.prebooted <- p.prebooted + 1;
        Queue.add x p.ready;
        x

  let size p = Queue.length p.ready
  let prebooted p = p.prebooted
  let served p = p.served
end
